// Command emdata materializes the synthetic benchmark datasets and
// exports them as CSV or JSON-lines files.
//
// Usage:
//
//	emdata -list                       # dataset statistics (Table 1)
//	emdata -dataset wdc -split test -format csv > wdc_test.csv
//	emdata -all -dir ./data            # export everything
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"

	"llm4em/internal/datasets"
	"llm4em/internal/entity"
)

func main() {
	list := flag.Bool("list", false, "print dataset statistics")
	key := flag.String("dataset", "", "dataset key (wdc, ab, wa, ag, ds, da)")
	split := flag.String("split", "test", "split: train, val or test")
	format := flag.String("format", "csv", "output format: csv or jsonl")
	all := flag.Bool("all", false, "export every dataset and split")
	dir := flag.String("dir", ".", "output directory for -all")
	flag.Parse()

	switch {
	case *list:
		fmt.Printf("%-6s %-16s %-12s %-12s  train(p/n)   val(p/n)    test(p/n)\n",
			"key", "name", "scenario", "domain")
		for _, k := range datasets.Keys() {
			ds := datasets.MustLoad(k)
			c := ds.Counts()
			fmt.Printf("%-6s %-16s %-12s %-12s  %5d/%-6d %4d/%-6d %4d/%-6d\n",
				k, ds.Name, ds.Scenario, ds.Schema.Domain,
				c.TrainPos, c.TrainNeg, c.ValPos, c.ValNeg, c.TestPos, c.TestNeg)
		}
	case *all:
		for _, k := range datasets.Keys() {
			ds := datasets.MustLoad(k)
			for name, pairs := range map[string][]entity.Pair{
				"train": ds.Train, "val": ds.Val, "test": ds.Test,
			} {
				path := filepath.Join(*dir, fmt.Sprintf("%s_%s.%s", k, name, *format))
				fail(export(ds, pairs, path, *format))
				fmt.Println("wrote", path)
			}
		}
	case *key != "":
		ds, err := datasets.Load(*key)
		fail(err)
		pairs := ds.Test
		switch *split {
		case "train":
			pairs = ds.Train
		case "val":
			pairs = ds.Val
		case "test":
		default:
			fail(fmt.Errorf("unknown split %q", *split))
		}
		if *format == "jsonl" {
			fail(ds.WriteJSONL(os.Stdout, pairs))
		} else {
			fail(ds.WriteCSV(os.Stdout, pairs))
		}
	default:
		flag.Usage()
		os.Exit(2)
	}
}

func export(ds *datasets.Dataset, pairs []entity.Pair, path, format string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	if format == "jsonl" {
		return ds.WriteJSONL(f, pairs)
	}
	return ds.WriteCSV(f, pairs)
}

func fail(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, "emdata:", err)
		os.Exit(1)
	}
}
