// Command emblock runs the full deduplication pipeline over a record
// collection: blocking into candidate pairs, LLM matching, and
// clustering into entities.
//
// The input is a CSV file with a header of "id" followed by attribute
// columns; the output lists one cluster per line. With -demo, a dirty
// collection is derived from the WDC Products benchmark instead.
//
// Usage:
//
//	emblock -demo -records 200
//	emblock -in offers.csv -model GPT-mini -candidates 5
package main

import (
	"encoding/csv"
	"flag"
	"fmt"
	"io"
	"os"

	"llm4em"
	"llm4em/internal/blocking"
	"llm4em/internal/datasets"
	"llm4em/internal/entity"
)

func main() {
	in := flag.String("in", "", "input CSV (header: id,<attr>,<attr>,...)")
	demo := flag.Bool("demo", false, "use a dirty collection derived from WDC Products")
	records := flag.Int("records", 200, "number of records in -demo mode")
	model := flag.String("model", "GPT-mini", "matching model")
	designName := flag.String("design", "domain-complex-force", "prompt design")
	candidates := flag.Int("candidates", 5, "max blocking candidates per record")
	flag.Parse()

	var recs []entity.Record
	var domain llm4em.Domain
	switch {
	case *demo:
		recs, domain = demoCollection(*records)
	case *in != "":
		f, err := os.Open(*in)
		fail(err)
		defer f.Close()
		var err2 error
		recs, err2 = readRecords(f)
		fail(err2)
		domain = llm4em.Product
	default:
		flag.Usage()
		os.Exit(2)
	}
	fmt.Printf("collection: %d records\n", len(recs))

	blocker := &blocking.TokenBlocker{MaxCandidates: *candidates}
	cands := blocker.Dedup(recs)
	fmt.Printf("blocking: %d candidate pairs\n", len(cands))

	client, err := llm4em.NewModel(*model)
	fail(err)
	design, err := llm4em.DesignByName(*designName)
	fail(err)
	matcher := llm4em.Matcher{Client: client, Design: design, Domain: domain}
	decisions := make([]bool, len(cands))
	matches := 0
	for i, c := range cands {
		d, err := matcher.MatchPair(c)
		fail(err)
		decisions[i] = d.Match
		if d.Match {
			matches++
		}
	}
	fmt.Printf("matching: %d duplicates found\n", matches)

	clusters := blocking.Cluster(cands, decisions)
	fmt.Printf("clustering: %d entities\n\n", len(clusters))
	for _, c := range clusters {
		if len(c) > 1 {
			fmt.Println(joinIDs(c))
		}
	}
}

// demoCollection builds a dirty record collection from the WDC test
// split.
func demoCollection(n int) ([]entity.Record, llm4em.Domain) {
	ds := datasets.MustLoad("wdc")
	var recs []entity.Record
	seen := map[string]bool{}
	for _, p := range ds.Test {
		for _, r := range []entity.Record{p.A, p.B} {
			if !seen[r.ID] {
				recs = append(recs, r)
				seen[r.ID] = true
			}
			if len(recs) == n {
				return recs, ds.Schema.Domain
			}
		}
	}
	return recs, ds.Schema.Domain
}

// readRecords parses an id,<attr>... CSV into records.
func readRecords(r io.Reader) ([]entity.Record, error) {
	cr := csv.NewReader(r)
	header, err := cr.Read()
	if err != nil {
		return nil, fmt.Errorf("read header: %w", err)
	}
	if len(header) < 2 || header[0] != "id" {
		return nil, fmt.Errorf("header must be id,<attr>,..., got %v", header)
	}
	var out []entity.Record
	for {
		row, err := cr.Read()
		if err == io.EOF {
			break
		}
		if err != nil {
			return nil, err
		}
		rec := entity.Record{ID: row[0], Attrs: make([]entity.Attr, len(header)-1)}
		for i, name := range header[1:] {
			rec.Attrs[i] = entity.Attr{Name: name, Value: row[i+1]}
		}
		out = append(out, rec)
	}
	return out, nil
}

func joinIDs(ids []string) string {
	out := ""
	for i, id := range ids {
		if i > 0 {
			out += ", "
		}
		out += id
	}
	return out
}

func fail(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, "emblock:", err)
		os.Exit(1)
	}
}
