// Command emexperiments regenerates the tables and figures of the
// paper's evaluation section.
//
// Usage:
//
//	emexperiments -table 3            # print one table
//	emexperiments -table all          # print every table (1-13)
//	emexperiments -figure 4           # print one figure
//	emexperiments -maxtest 200        # scale down the test splits
//	emexperiments -robustness         # dirty-data corruption sweep
//	emexperiments -crossdomain        # leave-one-dataset-out transfer
//	emexperiments -strategies         # prompt-strategy × band-width ablation
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"llm4em/internal/datasets"
	"llm4em/internal/experiments"
	"llm4em/internal/llm"
)

var renderMarkdown bool

func main() {
	table := flag.String("table", "", "table number 1-13, or 'all'")
	figure := flag.Int("figure", 0, "figure number 1-6")
	ablations := flag.Bool("ablations", false, "run the ablation studies")
	pr := flag.Bool("pr", false, "print zero-shot precision/recall instead of F1 tables")
	futurework := flag.Bool("futurework", false, "run the Section 7.2 future-work error-profile comparison")
	maxTest := flag.Int("maxtest", 0, "cap test pairs per dataset (0 = full)")
	epochs := flag.Int("epochs", 10, "fine-tuning epochs")
	workers := flag.Int("workers", 0, "concurrent model calls per evaluation (0 = pipeline default)")
	format := flag.String("format", "text", "output format: text or md")
	report := flag.String("report", "", "write the complete markdown report to this file")
	diagnostics := flag.Bool("diagnostics", false, "print the benchmark difficulty diagnostics")
	robustness := flag.Bool("robustness", false, "run the dirty-data corruption sweep")
	crossdomain := flag.Bool("crossdomain", false, "run the leave-one-dataset-out threshold transfer eval")
	seed := flag.String("seed", "", "sweep seed for -robustness/-strategies (defaults per harness)")
	kinds := flag.String("kinds", "", "comma-separated corruption kinds for -robustness (default all)")
	levels := flag.String("levels", "", "comma-separated corruption levels for -robustness (default 1,2,3)")
	model := flag.String("model", llm.GPTMini, "model answering the uncertain band for -robustness/-crossdomain")
	robustOut := flag.String("robust-out", "", "write the full robustness markdown report to this file")
	strategies := flag.Bool("strategies", false, "run the prompt-strategy × band-width ablation")
	strategiesOut := flag.String("strategies-out", "", "write the full strategy ablation markdown report to this file")
	flag.Parse()

	if *table == "" && *figure == 0 && !*ablations && !*pr && !*futurework && *report == "" &&
		!*diagnostics && !*robustness && !*crossdomain && *robustOut == "" &&
		!*strategies && *strategiesOut == "" {
		flag.Usage()
		os.Exit(2)
	}

	renderMarkdown = *format == "md"
	cfg := experiments.Default()
	cfg.MaxTest = *maxTest
	cfg.FTEpochs = *epochs
	cfg.Workers = *workers
	s := experiments.NewSession(cfg)

	if *strategies || *strategiesOut != "" {
		scfg := experiments.StrategiesConfig{
			Model:   *model,
			Seed:    *seed,
			Workers: *workers,
		}
		if *strategiesOut != "" {
			f, err := os.Create(*strategiesOut)
			fail(err)
			fail(experiments.WriteStrategiesReport(f, scfg))
			fail(f.Close())
			fmt.Println("wrote", *strategiesOut)
			return
		}
		cells, err := experiments.Strategies(scfg)
		fail(err)
		renderOne(experiments.StrategiesTable(cells))
		return
	}

	if *robustness || *crossdomain || *robustOut != "" {
		rcfg := experiments.RobustnessConfig{
			Model:    *model,
			Seed:     *seed,
			MaxPairs: *maxTest,
			Workers:  *workers,
		}
		fail(parseKinds(*kinds, &rcfg))
		fail(parseLevels(*levels, &rcfg))
		if *robustOut != "" {
			f, err := os.Create(*robustOut)
			fail(err)
			fail(experiments.WriteRobustnessReport(f, rcfg))
			fail(f.Close())
			fmt.Println("wrote", *robustOut)
			return
		}
		if *robustness {
			cells, err := experiments.Robustness(rcfg)
			fail(err)
			renderOne(experiments.RobustnessTable(cells))
		}
		if *crossdomain {
			rows, err := experiments.CrossDomain(experiments.CrossDomainConfig{
				Model:          *model,
				MaxCalibration: *maxTest,
				MaxTest:        *maxTest,
				Workers:        *workers,
			})
			fail(err)
			renderOne(experiments.CrossDomainTable(rows))
		}
		return
	}

	if *diagnostics {
		t := experiments.DatasetDiagnostics(cfg)
		if renderMarkdown {
			fmt.Println(t.Markdown())
		} else {
			t.Fprint(os.Stdout)
		}
		return
	}

	if *report != "" {
		f, err := os.Create(*report)
		fail(err)
		defer f.Close()
		fail(experiments.WriteReport(f, s))
		fmt.Println("wrote", *report)
		return
	}

	if *futurework {
		t, err := experiments.ErrorProfiles(s, "wa", []string{"GPT-4", "GPT-mini", "Llama3.1"})
		fail(err)
		t.Fprint(os.Stdout)
		return
	}

	if *pr {
		ts, err := experiments.PrecisionRecall(s)
		fail(err)
		for _, t := range ts {
			t.Fprint(os.Stdout)
			fmt.Println()
		}
		return
	}

	if *ablations {
		ts, err := experiments.Ablations(s)
		fail(err)
		for _, t := range ts {
			t.Fprint(os.Stdout)
			fmt.Println()
		}
		return
	}

	if *figure != 0 {
		out, err := experiments.Figure(s, *figure)
		fail(err)
		fmt.Println(out)
		return
	}

	var numbers []int
	if *table == "all" {
		for i := 1; i <= 13; i++ {
			numbers = append(numbers, i)
		}
	} else {
		n, err := strconv.Atoi(*table)
		fail(err)
		numbers = []int{n}
	}
	for _, n := range numbers {
		fail(printTable(s, n))
		fmt.Println()
	}
}

func printTable(s *experiments.Session, n int) error {
	render := func(t *experiments.Table) {
		if renderMarkdown {
			fmt.Println(t.Markdown())
			return
		}
		t.Fprint(os.Stdout)
	}
	single := func(t *experiments.Table, err error) error {
		if err != nil {
			return err
		}
		render(t)
		return nil
	}
	multi := func(ts []*experiments.Table, err error) error {
		if err != nil {
			return err
		}
		for _, t := range ts {
			render(t)
			fmt.Println()
		}
		return nil
	}
	switch n {
	case 1:
		t := experiments.Table1(s.Cfg)
		render(t)
		return nil
	case 2:
		return multi(experiments.Table2(s))
	case 3:
		return single(experiments.Table3(s))
	case 4:
		return single(experiments.Table4(s))
	case 5:
		return multi(experiments.Table5(s))
	case 6:
		return single(experiments.Table6(s))
	case 7:
		return single(experiments.Table7(s, experiments.FTDefaults()))
	case 8:
		return single(experiments.Table8(s))
	case 9:
		return single(experiments.Table9(s))
	case 10:
		return multi(experiments.Table10(s))
	case 11:
		return single(experiments.Table11(s))
	case 12:
		return single(experiments.Table12(s))
	case 13:
		return single(experiments.Table13(s))
	default:
		return fmt.Errorf("unknown table %d (tables 1-13 exist)", n)
	}
}

// renderOne prints a table in the selected format.
func renderOne(t *experiments.Table) {
	if renderMarkdown {
		fmt.Println(t.Markdown())
		return
	}
	t.Fprint(os.Stdout)
	fmt.Println()
}

// parseKinds fills the corruption kinds of a robustness config from a
// comma-separated flag value.
func parseKinds(list string, cfg *experiments.RobustnessConfig) error {
	if list == "" {
		return nil
	}
	for _, part := range strings.Split(list, ",") {
		kind, err := datasets.ParseCorruptionKind(part)
		if err != nil {
			return err
		}
		cfg.Kinds = append(cfg.Kinds, kind)
	}
	return nil
}

// parseLevels fills the corruption levels of a robustness config from
// a comma-separated flag value.
func parseLevels(list string, cfg *experiments.RobustnessConfig) error {
	if list == "" {
		return nil
	}
	for _, part := range strings.Split(list, ",") {
		n, err := strconv.Atoi(strings.TrimSpace(part))
		if err != nil || n < 0 {
			return fmt.Errorf("bad corruption level %q", part)
		}
		cfg.Levels = append(cfg.Levels, n)
	}
	return nil
}

func fail(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, "emexperiments:", err)
		os.Exit(1)
	}
}
