// Command emexplain demonstrates the explanation and error-analysis
// pipelines of the paper's Sections 6 and 7: it matches a slice of a
// benchmark, generates structured explanations, aggregates them into
// global attribute importances, discovers error classes from the
// wrong decisions, and classifies one error.
//
// Usage:
//
//	emexplain -dataset wa -pairs 300
package main

import (
	"flag"
	"fmt"
	"os"

	"llm4em"
	"llm4em/internal/core"
	"llm4em/internal/datasets"
	"llm4em/internal/errorclass"
	"llm4em/internal/explain"
	"llm4em/internal/llm"
)

func main() {
	key := flag.String("dataset", "wa", "dataset key")
	n := flag.Int("pairs", 300, "number of test pairs to analyze")
	flag.Parse()

	ds, err := datasets.Load(*key)
	fail(err)
	pairs := ds.Test
	if *n < len(pairs) {
		pairs = pairs[:*n]
	}
	client := llm.MustNew(llm.GPT4)
	design, err := llm4em.DesignByName("domain-complex-force")
	fail(err)

	fmt.Printf("Matching %d pairs of %s with GPT-4 …\n", len(pairs), ds.Name)
	matcher := &core.Matcher{Client: client, Design: design, Domain: ds.Schema.Domain}
	res, err := matcher.EvaluateKeeping(pairs)
	fail(err)
	fmt.Printf("F1 = %.2f (P %.2f / R %.2f)\n\n", res.F1(), res.Confusion.Precision(), res.Confusion.Recall())

	fmt.Println("Generating structured explanations …")
	exps, err := explain.GenerateAll(client, design, ds.Schema.Domain, pairs)
	fail(err)

	fmt.Println("\nGlobal attribute importance (top 5 by frequency):")
	rows := explain.Aggregate(exps)
	limit := 5
	if len(rows) < limit {
		limit = len(rows)
	}
	fmt.Printf("%-12s %8s %10s %8s %10s\n", "attribute", "M freq", "M imp", "N freq", "N imp")
	for _, r := range rows[:limit] {
		fmt.Printf("%-12s %8.2f %10.2f %8.2f %10.2f\n",
			r.Attribute, r.MatchFreq, r.MatchMean, r.NonFreq, r.NonMean)
	}
	corr := explain.CorrelationWithStringSims(exps)
	fmt.Printf("\nExplanation similarity correlation: Cosine %.2f, Generalized Jaccard %.2f (n=%d)\n",
		corr.Cosine, corr.GeneralizedJaccard, corr.Samples)

	fps, fns := errorclass.CollectErrors(res.Decisions, exps)
	fmt.Printf("\nErrors: %d false positives, %d false negatives\n", len(fps), len(fns))
	if len(fps) == 0 {
		return
	}
	turbo := llm.MustNew(llm.GPT4Turbo)
	classes, err := errorclass.Discover(turbo, ds.Schema.Domain, fps, true)
	fail(err)
	fmt.Println("\nGenerated false-positive error classes:")
	for i, cc := range errorclass.CountByExpert(classes, fps) {
		fmt.Printf("%d. %s (%d errors)\n   %s\n", i+1, cc.Class.Name, cc.Errors, cc.Class.Description)
	}
	assigned, err := errorclass.Assign(turbo, classes, fps[0])
	fail(err)
	fmt.Printf("\nClasses assigned to the first false positive: %v\n", keysOf(assigned))
}

func keysOf(m map[int]bool) []int {
	var out []int
	for i := range m {
		out = append(out, i+1)
	}
	for i := 0; i < len(out); i++ {
		for j := i + 1; j < len(out); j++ {
			if out[j] < out[i] {
				out[i], out[j] = out[j], out[i]
			}
		}
	}
	return out
}

func fail(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, "emexplain:", err)
		os.Exit(1)
	}
}
