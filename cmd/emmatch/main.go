// Command emmatch matches a single pair of entity descriptions with a
// chosen model and prompt design and prints the prompt, the model's
// answer and the parsed decision.
//
// Usage:
//
//	emmatch -model GPT-4 -design general-complex-force \
//	    -a "Sony DSC-120B digital camera 348.00" \
//	    -b "sony dsc120b camera black 351.99"
//
//	emmatch -model GPT-4 -dataset wdc -pairs 5   # match dataset pairs
//
// Dataset and CSV evaluations run on the concurrent matching
// pipeline; -workers, -cache and -retries tune its worker pool,
// prompt cache and transient-error retry.
package main

import (
	"flag"
	"fmt"
	"os"

	"llm4em"
	"llm4em/internal/datasets"
)

func main() {
	model := flag.String("model", "GPT-4", "model name (GPT-mini, GPT-4, GPT-4o, Llama2, Llama3.1, Mixtral)")
	designName := flag.String("design", "general-complex-force", "prompt design name")
	a := flag.String("a", "", "first entity description")
	b := flag.String("b", "", "second entity description")
	domainName := flag.String("domain", "product", "domain: product or publication")
	dataset := flag.String("dataset", "", "match the first pairs of a benchmark instead of -a/-b")
	csvPath := flag.String("csv", "", "evaluate labelled pairs from a CSV file (emdata export layout)")
	pairs2 := flag.Int("pairs", 5, "number of pairs to match with -dataset or -csv")
	verbose := flag.Bool("v", false, "print full prompts")
	workers := flag.Int("workers", 0, "concurrent model calls (0 = pipeline default)")
	cacheSize := flag.Int("cache", 0, "prompt-cache entries (0 = pipeline default, negative disables)")
	retries := flag.Int("retries", 0, "retries for transient model errors (0 = pipeline default, negative disables)")
	flag.Parse()

	client, err := llm4em.NewModel(*model)
	fail(err)
	design, err := llm4em.DesignByName(*designName)
	fail(err)

	domain := llm4em.Product
	if *domainName == "publication" {
		domain = llm4em.Publication
	}

	if *csvPath != "" {
		f, err := os.Open(*csvPath)
		fail(err)
		defer f.Close()
		schema, pairs, err := datasets.ReadCSVPairs(f)
		fail(err)
		matcher := llm4em.Matcher{
			Client: client, Design: design, Domain: schema.Domain,
			Workers: *workers, CacheSize: *cacheSize, MaxRetries: *retries,
		}
		n := *pairs2
		if n <= 0 || n > len(pairs) {
			n = len(pairs)
		}
		res, err := matcher.Evaluate(pairs[:n])
		fail(err)
		fmt.Printf("%s on %s (%d pairs): F1 = %.2f (P %.2f / R %.2f), mean %.0f prompt tokens\n",
			*model, *csvPath, n, res.F1(), res.Confusion.Precision(), res.Confusion.Recall(), res.MeanPromptTokens())
		return
	}

	if *dataset != "" {
		ds, err := llm4em.LoadDataset(*dataset)
		fail(err)
		matcher := llm4em.Matcher{
			Client: client, Design: design, Domain: ds.Schema.Domain,
			Workers: *workers, CacheSize: *cacheSize, MaxRetries: *retries,
		}
		n := *pairs2
		if n <= 0 || n > len(ds.Test) {
			n = len(ds.Test)
		}
		// Stream decisions so progress appears as pairs complete rather
		// than after the whole run.
		decisions, wait := matcher.Stream(ds.Test[:n])
		correct := 0
		for d := range decisions {
			p := d.Pair
			verdict := "✗"
			if d.Correct() {
				verdict = "✓"
				correct++
			}
			fmt.Printf("%s gold=%v predicted=%v (%.0fms)\n  A: %s\n  B: %s\n  answer: %s\n",
				verdict, p.Match, d.Match, float64(d.Usage.Latency.Milliseconds()), p.A.Serialize(), p.B.Serialize(), d.Answer)
			if *verbose {
				fmt.Printf("  prompt:\n%s\n", d.Prompt)
			}
		}
		_, err = wait()
		fail(err)
		fmt.Printf("%d/%d correct\n", correct, n)
		return
	}

	if *a == "" || *b == "" {
		fmt.Fprintln(os.Stderr, "emmatch: provide -a and -b, or -dataset")
		os.Exit(2)
	}
	pair := llm4em.Pair{
		ID: "cli",
		A:  llm4em.Record{ID: "a", Attrs: []llm4em.Attr{{Name: "description", Value: *a}}},
		B:  llm4em.Record{ID: "b", Attrs: []llm4em.Attr{{Name: "description", Value: *b}}},
	}
	matcher := llm4em.Matcher{Client: client, Design: design, Domain: domain}
	d, err := matcher.MatchPair(pair)
	fail(err)
	if *verbose {
		fmt.Printf("[PROMPT]\n%s\n\n", d.Prompt)
	}
	fmt.Printf("[%s ANSWER]\n%s\n\n[DECISION] match=%v (prompt %d tokens, completion %d tokens, %.2fs)\n",
		*model, d.Answer, d.Match, d.Usage.PromptTokens, d.Usage.CompletionTokens, d.Usage.Latency.Seconds())
}

func fail(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, "emmatch:", err)
		os.Exit(1)
	}
}
