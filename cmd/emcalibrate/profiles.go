package main

import (
	"fmt"

	"llm4em/internal/llm"
)

// printProfiles dumps the calibrated capability constants of every
// model — the transparency view of the simulation substrate.
func printProfiles() {
	fmt.Printf("%-14s %5s %5s %5s %6s %6s %6s %6s %6s %6s\n",
		"model", "fid", "noise", "sens", "hedge", "force", "icl", "rule", "conj", "verb")
	names := append(llm.StudyModels(), llm.AdditionalModels()...)
	for _, name := range names {
		p, ok := llm.ProfileByName(name)
		if !ok {
			continue
		}
		fmt.Printf("%-14s %5.2f %5.2f %5.2f %6.2f %6.2f %6.2f %6.2f %6.2f %6d\n",
			name, p.WeightFidelity, p.NoiseSigma, p.PromptSensitivity,
			p.HedgeRate, p.ForceCompliance, p.ICLGain, p.RuleUtilization,
			p.RuleConjunctive, p.FreeVerbosity)
	}
}
