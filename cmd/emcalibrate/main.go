// Command emcalibrate is the developer-facing calibration harness
// used to tune the simulation substrate against the paper:
//
//	emcalibrate oracle            # ideal-weight F1 per dataset (difficulty bands)
//	emcalibrate inspect wdc       # hardest matches / easiest non-matches
//	emcalibrate zeroshot [keys]   # Table 2/3-style zero-shot matrix
//	emcalibrate plm               # PLM in-domain and unseen-transfer check
//	emcalibrate plmsweep wdc ag   # PLM training hyperparameter sweep
package main

import (
	"fmt"
	"os"
	"sort"

	"llm4em/internal/datasets"
	"llm4em/internal/eval"
	"llm4em/internal/features"
)

func main() {
	if len(os.Args) < 2 {
		usage()
	}
	switch os.Args[1] {
	case "oracle":
		oracleSweep()
	case "inspect":
		if len(os.Args) < 3 {
			usage()
		}
		inspect(os.Args[2], 8)
	case "zeroshot":
		keys := datasets.Keys()
		if len(os.Args) > 2 {
			keys = os.Args[2:]
		}
		models := []string{"GPT-mini", "GPT-4", "GPT-4o", "Llama2", "Llama3.1", "Mixtral"}
		zeroShotTable(keys, models)
	case "plm":
		plmCheck()
	case "plmsweep":
		plmSweep(os.Args[2:])
	case "profiles":
		printProfiles()
	default:
		usage()
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, "usage: emcalibrate oracle | inspect <dataset> | zeroshot [datasets] | plm | plmsweep <datasets> | profiles")
	os.Exit(2)
}

// oracleSweep reports the ideal-weight matcher per dataset: score
// distributions, F1 at the zero threshold, and the best achievable
// threshold — the difficulty-band calibration view.
func oracleSweep() {
	ws := features.Ideal()
	for _, key := range datasets.Keys() {
		d := datasets.MustLoad(key)
		var posScores, negScores []float64
		type scored struct {
			s     float64
			match bool
		}
		var all []scored
		for _, p := range d.Test {
			v, pres := features.PairFeaturesText(p.A.Serialize(), p.B.Serialize())
			s := ws.Score(v, pres)
			all = append(all, scored{s, p.Match})
			if p.Match {
				posScores = append(posScores, s)
			} else {
				negScores = append(negScores, s)
			}
		}
		sort.Slice(all, func(i, j int) bool { return all[i].s < all[j].s })
		bestF1, bestT := 0.0, 0.0
		for i := 0; i <= 200; i++ {
			t := -4 + float64(i)*0.05
			var c eval.Confusion
			for _, x := range all {
				c.Add(x.match, x.s > t)
			}
			if f := c.F1(); f > bestF1 {
				bestF1, bestT = f, t
			}
		}
		var c0 eval.Confusion
		for _, x := range all {
			c0.Add(x.match, x.s > 0)
		}
		fmt.Printf("%-4s posMean=%+.2f negMean=%+.2f  F1@0=%.1f (P=%.2f R=%.2f)  bestF1=%.1f @t=%+.2f\n",
			key, eval.Mean(posScores), eval.Mean(negScores), c0.F1(), c0.Precision(), c0.Recall(), bestF1, bestT)
	}
}
