package main

import (
	"fmt"
	"os"

	"llm4em/internal/core"
	"llm4em/internal/datasets"
	"llm4em/internal/eval"
	"llm4em/internal/llm"
	"llm4em/internal/prompt"
)

// zeroShotTable prints the Table 2/3 analogue: F1 per model and
// prompt design, per dataset and averaged.
func zeroShotTable(keys []string, models []string) {
	designs := prompt.Designs()
	// f1[model][design][dataset]
	f1 := map[string]map[string]map[string]float64{}
	for _, mn := range models {
		f1[mn] = map[string]map[string]float64{}
		model := llm.MustNew(mn)
		for _, dn := range designs {
			f1[mn][dn.Name] = map[string]float64{}
			for _, key := range keys {
				ds := datasets.MustLoad(key)
				m := core.Matcher{Client: model, Design: dn, Domain: ds.Schema.Domain}
				res, err := m.Evaluate(ds.Test)
				if err != nil {
					fmt.Fprintln(os.Stderr, err)
					os.Exit(1)
				}
				f1[mn][dn.Name][key] = res.F1()
			}
		}
	}
	for _, key := range keys {
		fmt.Printf("== %s ==\n%-24s", key, "prompt")
		for _, mn := range models {
			fmt.Printf("%10s", mn)
		}
		fmt.Println()
		for _, dn := range designs {
			fmt.Printf("%-24s", dn.Name)
			for _, mn := range models {
				fmt.Printf("%10.2f", f1[mn][dn.Name][key])
			}
			fmt.Println()
		}
		fmt.Printf("%-24s", "mean/sd")
		for _, mn := range models {
			var xs []float64
			for _, dn := range designs {
				xs = append(xs, f1[mn][dn.Name][key])
			}
			fmt.Printf("%5.1f/%4.1f", eval.Mean(xs), eval.StdDev(xs))
		}
		fmt.Println()
	}
	// Averages over datasets (Table 3).
	fmt.Printf("== average over datasets ==\n%-24s", "prompt")
	for _, mn := range models {
		fmt.Printf("%10s", mn)
	}
	fmt.Println()
	var meanByModel = map[string][]float64{}
	for _, dn := range designs {
		fmt.Printf("%-24s", dn.Name)
		for _, mn := range models {
			var xs []float64
			for _, key := range keys {
				xs = append(xs, f1[mn][dn.Name][key])
			}
			avg := eval.Mean(xs)
			meanByModel[mn] = append(meanByModel[mn], avg)
			fmt.Printf("%10.2f", avg)
		}
		fmt.Println()
	}
	fmt.Printf("%-24s", "mean")
	for _, mn := range models {
		fmt.Printf("%10.2f", eval.Mean(meanByModel[mn]))
	}
	fmt.Printf("\n%-24s", "stddev")
	for _, mn := range models {
		fmt.Printf("%10.2f", eval.StdDev(meanByModel[mn]))
	}
	fmt.Println()
}
