package main

import (
	"fmt"

	"llm4em/internal/datasets"
	"llm4em/internal/plm"
)

// plmSweep tries training hyperparameters on selected datasets.
func plmSweep(keys []string) {
	for _, key := range keys {
		ds := datasets.MustLoad(key)
		for _, opt := range []plm.Options{
			{Epochs: 14, LearningRate: 0.14},
			{Epochs: 30, LearningRate: 0.20},
			{Epochs: 50, LearningRate: 0.25},
		} {
			for _, v := range []plm.Variant{plm.RoBERTa, plm.Ditto} {
				m := plm.New(v)
				m.Train(ds.TrainVal(), key, opt)
				in := m.Evaluate(ds.Test)
				fmt.Printf("%-8s %-4s ep=%d lr=%.2f F1=%.2f (P=%.2f R=%.2f)\n",
					v, key, opt.Epochs, opt.LearningRate, in.F1(), in.Precision(), in.Recall())
			}
		}
	}
}
