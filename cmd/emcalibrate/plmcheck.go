package main

import (
	"fmt"

	"llm4em/internal/datasets"
	"llm4em/internal/plm"
)

// plmCheck trains both PLM baselines on each dataset and reports
// in-domain F1 plus transfer to the WDC test set (Table 4 shape).
func plmCheck() {
	wdc := datasets.MustLoad("wdc")
	for _, key := range datasets.Keys() {
		ds := datasets.MustLoad(key)
		for _, v := range []plm.Variant{plm.RoBERTa, plm.Ditto} {
			m := plm.New(v)
			m.Train(ds.TrainVal(), key, plm.DefaultOptions())
			m.FitThreshold(ds.Val)
			in := m.Evaluate(ds.Test)
			line := fmt.Sprintf("%-8s %-4s in-domain F1=%.2f", v, key, in.F1())
			if key != "wdc" {
				tr := m.Evaluate(wdc.Test)
				line += fmt.Sprintf("  ->WDC F1=%.2f", tr.F1())
			}
			fmt.Println(line)
		}
	}
}
