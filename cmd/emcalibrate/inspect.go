package main

import (
	"fmt"
	"sort"

	"llm4em/internal/datasets"
	"llm4em/internal/features"
)

// inspect prints the worst-scoring matches and best-scoring
// non-matches of a dataset's test split.
func inspect(key string, n int) {
	d := datasets.MustLoad(key)
	ws := features.Ideal()
	type scored struct {
		s    float64
		a, b string
		m    bool
	}
	var pos, neg []scored
	for _, p := range d.Test {
		v, pres := features.PairFeaturesText(p.A.Serialize(), p.B.Serialize())
		s := ws.Score(v, pres)
		sc := scored{s, p.A.Serialize(), p.B.Serialize(), p.Match}
		if p.Match {
			pos = append(pos, sc)
		} else {
			neg = append(neg, sc)
		}
	}
	sort.Slice(pos, func(i, j int) bool { return pos[i].s < pos[j].s })
	sort.Slice(neg, func(i, j int) bool { return neg[i].s > neg[j].s })
	fmt.Printf("== %s: lowest-scoring MATCHES ==\n", key)
	for _, x := range pos[:n] {
		fmt.Printf("  %+.2f  A: %s\n         B: %s\n", x.s, x.a, x.b)
	}
	fmt.Printf("== %s: highest-scoring NON-MATCHES ==\n", key)
	for _, x := range neg[:n] {
		fmt.Printf("  %+.2f  A: %s\n         B: %s\n", x.s, x.a, x.b)
	}
}
