package main

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"log/slog"
	"net/http"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"llm4em"
	"llm4em/internal/telemetry"
)

// server exposes a resolution store over HTTP JSON. The canonical API
// lives under the /v1 prefix:
//
//	POST /v1/records       {"records":[{"id","attrs":[{"name","value"}]}]} — ingest
//	POST /v1/resolve       {"id","attrs":[...]} — resolve one query record
//	GET  /v1/entities/{id} — entity group containing the ID
//	GET  /v1/stats         — store and engine counters (JSON)
//	GET  /v1/metrics       — Prometheus text exposition
//	GET  /v1/healthz       — liveness: store can still serve mutations
//	GET  /v1/readyz        — readiness: recovery/preload done and store live
//
// Every route is also served unprefixed (POST /records, …) with the
// same shapes for pre-v1 clients; those aliases answer with a
// "Deprecation: true" header and a Link to the /v1 successor so
// callers can migrate without a flag day.
type server struct {
	store *llm4em.Store
	tel   *llm4em.Telemetry
	log   *slog.Logger
	ready *atomic.Bool
	// resolveTimeout bounds each POST /resolve; zero means unbounded.
	resolveTimeout time.Duration

	// statsMu/statsIn single-flight concurrent GET /stats calls: the
	// snapshot walks every shard and several locks, so simultaneous
	// scrapers share one computation instead of piling onto the store.
	// Sequential calls always compute fresh.
	statsMu sync.Mutex
	statsIn *statsCall
}

// handlerConfig wires the pieces of the HTTP front end together.
type handlerConfig struct {
	store *llm4em.Store
	// tel carries the process metrics; the HTTP layer registers its
	// request families on the same registry so GET /metrics covers
	// everything. Nil disables HTTP metrics and tracing IDs still work.
	tel *llm4em.Telemetry
	// log receives per-request access lines. Nil falls back to
	// slog.Default().
	log *slog.Logger
	// ready gates GET /readyz; nil means always ready.
	ready *atomic.Bool
	// resolveTimeout caps each POST /resolve's wall clock (the
	// -resolve-timeout flag); zero leaves requests unbounded. The
	// deadline propagates through the store into in-flight LLM calls;
	// with the resilience layer enabled an expired escalation degrades
	// to a deferred local verdict instead of failing the request.
	resolveTimeout time.Duration
}

// newHandler wires the endpoints onto a mux.
func newHandler(cfg handlerConfig) http.Handler {
	if cfg.log == nil {
		cfg.log = slog.Default()
	}
	if cfg.ready == nil {
		cfg.ready = &atomic.Bool{}
		cfg.ready.Store(true)
	}
	s := &server{store: cfg.store, tel: cfg.tel, log: cfg.log, ready: cfg.ready,
		resolveTimeout: cfg.resolveTimeout}
	mux := http.NewServeMux()
	routes := []struct {
		method, path, name string
		h                  http.HandlerFunc
	}{
		{"POST", "/records", "records", s.addRecords},
		{"POST", "/resolve", "resolve", s.resolve},
		{"GET", "/entities/{id}", "entities", s.entity},
		{"GET", "/stats", "stats", s.stats},
		{"GET", "/metrics", "metrics", s.metrics},
		{"GET", "/healthz", "healthz", s.healthz},
		{"GET", "/readyz", "readyz", s.readyz},
	}
	for _, rt := range routes {
		mux.HandleFunc(rt.method+" /v1"+rt.path, s.instrument(rt.name, rt.h))
		mux.HandleFunc(rt.method+" "+rt.path, s.instrument(rt.name, deprecatedAlias(rt.h)))
	}
	return mux
}

// deprecatedAlias wraps a handler serving a legacy unprefixed route:
// the response carries a Deprecation header (RFC 9745) and a Link to
// the /v1 successor of the exact request path, so clients still on
// the pre-v1 surface learn where to move without breaking. The link
// target uses the escaped path — the percent-decoded r.URL.Path would
// not round-trip an ID like a%2Fb back to the same resource.
func deprecatedAlias(h http.HandlerFunc) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Deprecation", "true")
		w.Header().Set("Link", fmt.Sprintf("</v1%s>; rel=\"successor-version\"", r.URL.EscapedPath()))
		h(w, r)
	}
}

// probeRoutes are scraped/polled constantly; their access lines log at
// Debug so steady-state logs stay readable.
var probeRoutes = map[string]bool{"metrics": true, "healthz": true, "readyz": true, "stats": true}

// statusWriter captures the response status for metrics and the
// access log.
type statusWriter struct {
	http.ResponseWriter
	status int
}

func (w *statusWriter) WriteHeader(code int) {
	w.status = code
	w.ResponseWriter.WriteHeader(code)
}

// instrument wraps a handler with the cross-cutting request concerns:
// X-Request-ID propagation (inbound header reused, otherwise a fresh
// trace ID), a telemetry.Trace in the request context so
// ResolveContext records per-stage spans under the same ID, a
// per-route latency histogram and status-class counters on the shared
// registry, and a structured access log line carrying the trace ID.
func (s *server) instrument(route string, h http.HandlerFunc) http.HandlerFunc {
	var hist *telemetry.Histogram
	var classes map[int]*telemetry.Counter
	if reg := s.tel.Registry(); reg != nil {
		hist = reg.Histogram("em_http_request_seconds",
			"HTTP request latency by route", telemetry.DurationBuckets(), "route", route)
		classes = map[int]*telemetry.Counter{}
		for _, class := range []string{"2xx", "3xx", "4xx", "5xx"} {
			classes[int(class[0]-'0')] = reg.Counter("em_http_responses_total",
				"HTTP responses by route and status class", "class", class, "route", route)
		}
	}
	return func(w http.ResponseWriter, r *http.Request) {
		t0 := time.Now()
		tr := llm4em.NewTrace(r.Header.Get("X-Request-ID"))
		w.Header().Set("X-Request-ID", tr.ID())
		sw := &statusWriter{ResponseWriter: w, status: http.StatusOK}
		h(sw, r.WithContext(llm4em.ContextWithTrace(r.Context(), tr)))
		elapsed := time.Since(t0)
		hist.Observe(elapsed.Seconds())
		if c, ok := classes[sw.status/100]; ok {
			c.Inc()
		}
		level := slog.LevelInfo
		if probeRoutes[route] {
			level = slog.LevelDebug
		}
		s.log.LogAttrs(r.Context(), level, "request",
			slog.String("trace_id", tr.ID()),
			slog.String("method", r.Method),
			slog.String("path", r.URL.Path),
			slog.Int("status", sw.status),
			slog.Duration("duration", elapsed),
		)
	}
}

// Wire form of an entity record. Attributes are an ordered list
// because serialization concatenates values in schema order.
type recordJSON struct {
	ID    string     `json:"id"`
	Attrs []attrJSON `json:"attrs"`
}

type attrJSON struct {
	Name  string `json:"name"`
	Value string `json:"value"`
}

func (r recordJSON) toRecord() llm4em.Record {
	rec := llm4em.Record{ID: r.ID}
	for _, a := range r.Attrs {
		rec.Attrs = append(rec.Attrs, llm4em.Attr{Name: a.Name, Value: a.Value})
	}
	return rec
}

func fromRecord(r llm4em.Record) recordJSON {
	out := recordJSON{ID: r.ID, Attrs: []attrJSON{}}
	for _, a := range r.Attrs {
		out.Attrs = append(out.Attrs, attrJSON{Name: a.Name, Value: a.Value})
	}
	return out
}

type decisionJSON struct {
	CandidateID string  `json:"candidate_id"`
	BlockScore  float64 `json:"block_score"`
	Probability float64 `json:"probability"`
	Match       bool    `json:"match"`
	Method      string  `json:"method"`
	Answer      string  `json:"answer,omitempty"`
	Cached      bool    `json:"cached,omitempty"`
	Batched     bool    `json:"batched,omitempty"`
	Journaled   bool    `json:"journaled,omitempty"`
	Deferred    bool    `json:"deferred,omitempty"`
}

type costJSON struct {
	Candidates       int          `json:"candidates"`
	LocalAccepts     int          `json:"local_accepts"`
	LocalRejects     int          `json:"local_rejects"`
	LLMPairs         int          `json:"llm_pairs"`
	CacheHits        int          `json:"cache_hits"`
	BatchedPairs     int          `json:"batched_pairs,omitempty"`
	Batches          int          `json:"batches,omitempty"`
	BatchFallbacks   int          `json:"batch_fallbacks,omitempty"`
	GroupFallbacks   int          `json:"group_fallbacks,omitempty"`
	BudgetDecided    int          `json:"budget_decided"`
	DeferredPairs    int          `json:"deferred_pairs,omitempty"`
	JournalHits      int          `json:"journal_hits"`
	PromptTokens     int          `json:"prompt_tokens"`
	CompletionTokens int          `json:"completion_tokens"`
	Cents            float64      `json:"cents"`
	Priced           bool         `json:"priced"`
	LocalFraction    float64      `json:"local_fraction"`
	Strategies       strategyJSON `json:"strategies"`
}

// strategyJSON breaks LLM usage down by the prompt strategy that
// issued it, mirroring CostReport's per-strategy StrategyUsage fields.
type strategyJSON struct {
	Match   usageJSON `json:"match"`
	Compare usageJSON `json:"compare"`
	Select  usageJSON `json:"select"`
	Reason  usageJSON `json:"reason"`
}

type usageJSON struct {
	Calls            uint64 `json:"calls"`
	Pairs            uint64 `json:"pairs"`
	PromptTokens     uint64 `json:"prompt_tokens"`
	CompletionTokens uint64 `json:"completion_tokens"`
}

func fromUsage(u llm4em.StrategyUsage) usageJSON {
	return usageJSON{
		Calls:            uint64(u.Calls),
		Pairs:            uint64(u.Pairs),
		PromptTokens:     uint64(u.PromptTokens),
		CompletionTokens: uint64(u.CompletionTokens),
	}
}

func fromTotals(t llm4em.StrategyTotals) usageJSON {
	return usageJSON{
		Calls:            t.Calls,
		Pairs:            t.Pairs,
		PromptTokens:     t.PromptTokens,
		CompletionTokens: t.CompletionTokens,
	}
}

func fromCost(c llm4em.CostReport) costJSON {
	return costJSON{
		Candidates:       c.Candidates,
		LocalAccepts:     c.LocalAccepts,
		LocalRejects:     c.LocalRejects,
		LLMPairs:         c.LLMPairs,
		CacheHits:        c.CacheHits,
		BatchedPairs:     c.BatchedPairs,
		Batches:          c.Batches,
		BatchFallbacks:   c.BatchFallbacks,
		GroupFallbacks:   c.GroupFallbacks,
		BudgetDecided:    c.BudgetDecided,
		DeferredPairs:    c.DeferredPairs,
		JournalHits:      c.JournalHits,
		PromptTokens:     c.PromptTokens,
		CompletionTokens: c.CompletionTokens,
		Cents:            c.Cents,
		Priced:           c.Priced,
		LocalFraction:    c.LocalFraction(),
		Strategies: strategyJSON{
			Match:   fromUsage(c.MatchUsage),
			Compare: fromUsage(c.CompareUsage),
			Select:  fromUsage(c.SelectUsage),
			Reason:  fromUsage(c.ReasonUsage),
		},
	}
}

// addRecords handles POST /records. Accepted bodies:
//
//	{"records":[{...},...]}   wrapper object (original form)
//	[{...},...]               bare JSON array of records
//	{...}                     single record object
//	{...}\n{...}\n            NDJSON (Content-Type application/x-ndjson)
//
// Every form routes through Store.AddBatch, so a bulk ingest pays one
// handler and one lock round-trip per shard instead of one per
// record.
func (s *server) addRecords(w http.ResponseWriter, r *http.Request) {
	recs, err := decodeRecordsBody(r)
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	if len(recs) == 0 {
		writeError(w, http.StatusBadRequest, fmt.Errorf("no records in body"))
		return
	}
	batch := make([]llm4em.Record, len(recs))
	for i, rj := range recs {
		batch[i] = rj.toRecord()
	}
	if err := s.store.AddBatch(batch); err != nil {
		status := http.StatusBadRequest
		if errors.Is(err, llm4em.ErrDuplicateRecordID) {
			status = http.StatusConflict
		}
		added := 0
		var be *llm4em.BatchError
		if errors.As(err, &be) {
			added = be.Added
		}
		writeError(w, status, fmt.Errorf("after %d added: %w", added, err))
		return
	}
	writeJSON(w, http.StatusOK, map[string]any{
		"added":   len(batch),
		"records": s.store.Len(),
	})
}

// decodeRecordsBody parses the accepted POST /records body shapes
// into a record list.
func decodeRecordsBody(r *http.Request) ([]recordJSON, error) {
	if strings.Contains(r.Header.Get("Content-Type"), "ndjson") {
		dec := json.NewDecoder(r.Body)
		var out []recordJSON
		for {
			var rec recordJSON
			if err := dec.Decode(&rec); err == io.EOF {
				return out, nil
			} else if err != nil {
				return nil, fmt.Errorf("decode ndjson record %d: %w", len(out)+1, err)
			}
			out = append(out, rec)
		}
	}
	body, err := io.ReadAll(r.Body)
	if err != nil {
		return nil, fmt.Errorf("read body: %w", err)
	}
	trimmed := bytes.TrimLeft(body, " \t\r\n")
	if len(trimmed) > 0 && trimmed[0] == '[' {
		var out []recordJSON
		if err := json.Unmarshal(body, &out); err != nil {
			return nil, fmt.Errorf("decode record array: %w", err)
		}
		return out, nil
	}
	// An object: either the {"records":[...]} wrapper or one record.
	var obj struct {
		Records []recordJSON `json:"records"`
		ID      string       `json:"id"`
		Attrs   []attrJSON   `json:"attrs"`
	}
	if err := json.Unmarshal(body, &obj); err != nil {
		return nil, fmt.Errorf("decode body: %w", err)
	}
	if obj.Records != nil {
		return obj.Records, nil
	}
	if obj.ID != "" || obj.Attrs != nil {
		return []recordJSON{{ID: obj.ID, Attrs: obj.Attrs}}, nil
	}
	return nil, nil
}

// resolve handles POST /resolve. The request context carries the
// trace the instrument middleware attached, so the store's per-stage
// spans land under this request's X-Request-ID.
func (s *server) resolve(w http.ResponseWriter, r *http.Request) {
	var body recordJSON
	if err := json.NewDecoder(r.Body).Decode(&body); err != nil {
		writeError(w, http.StatusBadRequest, fmt.Errorf("decode body: %w", err))
		return
	}
	ctx := r.Context()
	if s.resolveTimeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, s.resolveTimeout)
		defer cancel()
	}
	res, err := s.store.ResolveContext(ctx, body.toRecord())
	if err != nil {
		// Malformed queries are the caller's fault, shed load asks the
		// client to back off, an expired deadline is a gateway timeout;
		// anything else is a matching-backend failure.
		status := http.StatusBadGateway
		switch {
		case errors.Is(err, llm4em.ErrNoRecordID):
			status = http.StatusBadRequest
		case errors.Is(err, llm4em.ErrOverloaded):
			status = http.StatusServiceUnavailable
			w.Header().Set("Retry-After", "1")
		case errors.Is(err, context.DeadlineExceeded):
			status = http.StatusGatewayTimeout
		}
		writeError(w, status, err)
		return
	}
	decisions := make([]decisionJSON, len(res.Decisions))
	for i, d := range res.Decisions {
		decisions[i] = decisionJSON{
			CandidateID: d.CandidateID,
			BlockScore:  d.BlockScore,
			Probability: d.Probability,
			Match:       d.Match,
			Method:      string(d.Method),
			Answer:      d.Answer,
			Cached:      d.Cached,
			Batched:     d.Batched,
			Journaled:   d.Journaled,
			Deferred:    d.Deferred,
		}
	}
	writeJSON(w, http.StatusOK, map[string]any{
		"query_id":  res.Query.ID,
		"entity_id": res.EntityID,
		"matched":   res.Matched(),
		"members":   res.Members,
		"decisions": decisions,
		"cost":      fromCost(res.Cost),
	})
}

// entity handles GET /entities/{id}.
func (s *server) entity(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	members, ok := s.store.Entity(id)
	if !ok {
		writeError(w, http.StatusNotFound, fmt.Errorf("unknown ID %q", id))
		return
	}
	records := []recordJSON{}
	entityID := members[0]
	for _, m := range members {
		if rec, stored := s.store.Record(m); stored {
			records = append(records, fromRecord(rec))
		}
	}
	writeJSON(w, http.StatusOK, map[string]any{
		"entity_id": entityID,
		"members":   members,
		"records":   records,
	})
}

// statsCall is one in-flight Stats snapshot shared by concurrent
// GET /stats callers.
type statsCall struct {
	done chan struct{}
	val  llm4em.StoreStats
}

// snapshotStats returns a store stats snapshot, coalescing concurrent
// callers onto a single computation. The result of a shared call is
// at most one snapshot old — never cached across sequential requests.
func (s *server) snapshotStats() llm4em.StoreStats {
	s.statsMu.Lock()
	if c := s.statsIn; c != nil {
		s.statsMu.Unlock()
		<-c.done
		return c.val
	}
	c := &statsCall{done: make(chan struct{})}
	s.statsIn = c
	s.statsMu.Unlock()

	c.val = s.store.Stats()

	s.statsMu.Lock()
	s.statsIn = nil
	s.statsMu.Unlock()
	close(c.done)
	return c.val
}

// stats handles GET /stats.
func (s *server) stats(w http.ResponseWriter, r *http.Request) {
	st := s.snapshotStats()
	w.Header().Set("Cache-Control", "no-store")
	writeJSON(w, http.StatusOK, map[string]any{
		"records":           st.Records,
		"entities":          st.Entities,
		"resolves":          st.Resolves,
		"candidate_pairs":   st.Candidates,
		"local_accepts":     st.LocalAccepts,
		"local_rejects":     st.LocalRejects,
		"llm_pairs":         st.LLMPairs,
		"batched_pairs":     st.BatchedPairs,
		"batch_fallbacks":   st.BatchFallbacks,
		"group_fallbacks":   st.GroupFallbacks,
		"budget_decided":    st.BudgetDecided,
		"journal_hits":      st.JournalHits,
		"local_fraction":    st.LocalFraction(),
		"prompt_tokens":     st.PromptTokens,
		"completion_tokens": st.CompletionTokens,
		"cents":             st.Cents,
		"priced":            st.Priced,
		"strategies": strategyJSON{
			Match:   fromTotals(st.MatchStrategy),
			Compare: fromTotals(st.CompareStrategy),
			Select:  fromTotals(st.SelectStrategy),
			Reason:  fromTotals(st.ReasonStrategy),
		},
		"engine": map[string]any{
			"client_calls": st.Engine.ClientCalls,
			"cache_hits":   st.Engine.CacheHits,
			"retries":      st.Engine.Retries,
		},
		"dispatch": map[string]any{
			"enabled":            st.Dispatch.Enabled,
			"batches":            st.Dispatch.Batches,
			"batched_pairs":      st.Dispatch.BatchedPairs,
			"mean_batch_size":    st.Dispatch.MeanBatchSize(),
			"single_pair_calls":  st.Dispatch.SinglePairCalls,
			"parse_fallbacks":    st.Dispatch.ParseFallbacks,
			"fallback_pairs":     st.Dispatch.FallbackPairs,
			"single_flight_hits": st.Dispatch.SingleFlightHits,
			"group_calls":        st.Dispatch.GroupCalls,
			"grouped_pairs":      st.Dispatch.GroupedPairs,
			"group_fallbacks":    st.Dispatch.GroupParseFallbacks,
			"group_fb_pairs":     st.Dispatch.GroupFallbackPairs,
			"cache_hits":         st.Dispatch.CacheHits,
			"size_flushes":       st.Dispatch.SizeFlushes,
			"deadline_flushes":   st.Dispatch.DeadlineFlushes,
			"drain_flushes":      st.Dispatch.DrainFlushes,
		},
		"resilience": map[string]any{
			"enabled":        st.Resilience.Enabled,
			"breaker_state":  st.Resilience.BreakerState,
			"breaker_trips":  st.Resilience.BreakerTrips,
			"shed":           st.Resilience.Shed,
			"in_flight":      st.Resilience.InFlight,
			"waiting":        st.Resilience.Waiting,
			"deferred_queue": st.Resilience.DeferredQueue,
			"deferred_pairs": st.Resilience.DeferredPairs,
			"redecided":      st.Resilience.Redecided,
		},
		"persist": map[string]any{
			"enabled":             st.Persist.Enabled,
			"dir":                 st.Persist.Dir,
			"recovered_records":   st.Persist.RecoveredRecords,
			"recovered_decisions": st.Persist.RecoveredDecisions,
			"recovered_resolves":  st.Persist.RecoveredResolves,
			"truncated_tail":      st.Persist.TruncatedTail,
			"wal_entries":         st.Persist.WALEntries,
			"wal_bytes":           st.Persist.WALBytes,
			"snapshots":           st.Persist.Snapshots,
			"journal_size":        st.Persist.JournalSize,
			"journal_hits":        st.Persist.JournalHits,
		},
		"telemetry": s.telemetryJSON(),
	})
}

// telemetryJSON surfaces the headline telemetry counters in the JSON
// stats for callers that do not scrape /metrics. All reads are
// nil-safe, so a telemetry-less server reports zeros with
// "enabled": false.
func (s *server) telemetryJSON() map[string]any {
	t := s.tel
	out := map[string]any{"enabled": t != nil}
	if t == nil {
		return out
	}
	out["resolve_total"] = t.ResolveTotal.Value()
	out["resolve_errors"] = t.ResolveErrors.Value()
	out["slow_resolves"] = t.SlowResolves.Value()
	out["resolve_p50_ms"] = t.ResolveSeconds.Quantile(0.50) * 1e3
	out["resolve_p95_ms"] = t.ResolveSeconds.Quantile(0.95) * 1e3
	out["resolve_p99_ms"] = t.ResolveSeconds.Quantile(0.99) * 1e3
	return out
}

// metrics handles GET /metrics: the Prometheus text exposition of
// every registered family (empty without telemetry).
func (s *server) metrics(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	w.Header().Set("Cache-Control", "no-store")
	_ = s.tel.WritePrometheus(w)
}

// healthz handles GET /healthz: 200 while the store can serve
// mutations, 503 once the dispatcher or WAL has been closed.
func (s *server) healthz(w http.ResponseWriter, r *http.Request) {
	if !s.store.Live() {
		writeJSON(w, http.StatusServiceUnavailable, map[string]string{"status": "closed"})
		return
	}
	writeJSON(w, http.StatusOK, map[string]string{"status": "ok"})
}

// readyz handles GET /readyz: 200 once recovery/preload finished and
// the store is live — the gate for load balancers and rollout probes.
// A store serving degraded (LLM breaker open, uncertain pairs
// answered locally and deferred) stays ready — pulling the replica
// would turn a partial outage into a total one — but the response is
// annotated so operators and rollout tooling can see the mode.
func (s *server) readyz(w http.ResponseWriter, r *http.Request) {
	if !s.ready.Load() || !s.store.Live() {
		writeJSON(w, http.StatusServiceUnavailable, map[string]string{"status": "not ready"})
		return
	}
	body := map[string]string{"status": "ready"}
	if mode := s.store.Degraded(); mode != "" {
		body["degraded"] = mode
	}
	writeJSON(w, http.StatusOK, body)
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(v)
}

func writeError(w http.ResponseWriter, status int, err error) {
	writeJSON(w, status, map[string]string{"error": err.Error()})
}
