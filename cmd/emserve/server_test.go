package main

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync/atomic"
	"testing"

	"llm4em"
)

// newTestServer builds a handler over a GPT-mini store (deterministic
// simulated model — no network).
func newTestServer(t *testing.T) *httptest.Server {
	t.Helper()
	model, err := llm4em.NewModel(llm4em.GPTMini)
	if err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(newHandler(handlerConfig{store: llm4em.NewStore(model, llm4em.StoreOptions{
		Domain: llm4em.Product,
	})}))
	t.Cleanup(srv.Close)
	return srv
}

func postJSON(t *testing.T, url, body string) (*http.Response, map[string]any) {
	t.Helper()
	resp, err := http.Post(url, "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	return resp, decodeBody(t, resp)
}

func getJSON(t *testing.T, url string) (*http.Response, map[string]any) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	return resp, decodeBody(t, resp)
}

func decodeBody(t *testing.T, resp *http.Response) map[string]any {
	t.Helper()
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); ct != "application/json" {
		t.Fatalf("Content-Type = %q, want application/json", ct)
	}
	var m map[string]any
	if err := json.NewDecoder(resp.Body).Decode(&m); err != nil {
		t.Fatalf("decode response: %v", err)
	}
	return m
}

const seedBody = `{"records":[
	{"id":"r1","attrs":[{"name":"title","value":"sony dsc120b cybershot camera black"},{"name":"price","value":"348.00"}]},
	{"id":"r2","attrs":[{"name":"title","value":"makita impact drill kit 18v"},{"name":"price","value":"129.00"}]},
	{"id":"r3","attrs":[{"name":"title","value":"epson workforce 845 printer"},{"name":"price","value":"199.00"}]}
]}`

// TestServerEndToEnd is the acceptance flow: seed records, resolve a
// query, read the entity back, check the stats — all over HTTP JSON.
func TestServerEndToEnd(t *testing.T) {
	srv := newTestServer(t)

	// Ingest.
	resp, body := postJSON(t, srv.URL+"/v1/records", seedBody)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("POST /v1/records = %d: %v", resp.StatusCode, body)
	}
	if body["added"].(float64) != 3 || body["records"].(float64) != 3 {
		t.Fatalf("ingest response %v", body)
	}

	// Resolve a near-duplicate of r1.
	resp, body = postJSON(t, srv.URL+"/v1/resolve",
		`{"id":"q1","attrs":[{"name":"title","value":"Sony DSC-120B Cybershot camera (black)"},{"name":"price","value":"351.00"}]}`)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("POST /v1/resolve = %d: %v", resp.StatusCode, body)
	}
	if body["query_id"] != "q1" {
		t.Errorf("query_id = %v", body["query_id"])
	}
	if body["matched"] != true {
		t.Fatalf("near-duplicate did not match: %v", body)
	}
	if body["entity_id"] != "q1" { // smallest member of {q1, r1}
		t.Errorf("entity_id = %v, want q1", body["entity_id"])
	}
	members, _ := body["members"].([]any)
	if len(members) != 2 || members[0] != "q1" || members[1] != "r1" {
		t.Errorf("members = %v, want [q1 r1]", members)
	}
	decisions, _ := body["decisions"].([]any)
	if len(decisions) == 0 {
		t.Fatal("no decisions in resolve response")
	}
	d0 := decisions[0].(map[string]any)
	for _, key := range []string{"candidate_id", "block_score", "probability", "match", "method"} {
		if _, ok := d0[key]; !ok {
			t.Errorf("decision missing %q: %v", key, d0)
		}
	}
	cost, _ := body["cost"].(map[string]any)
	if cost == nil || cost["candidates"].(float64) < 1 {
		t.Fatalf("cost report %v", cost)
	}
	if cost["priced"] != true {
		t.Error("GPT-mini resolve should be priced")
	}

	// Entity lookup for a member that was only a stored record.
	resp, body = getJSON(t, srv.URL+"/v1/entities/r1")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET /v1/entities/r1 = %d: %v", resp.StatusCode, body)
	}
	if body["entity_id"] != "q1" {
		t.Errorf("entity_id = %v", body["entity_id"])
	}
	records, _ := body["records"].([]any)
	if len(records) != 1 { // only r1 is a stored record; q1 was a query
		t.Errorf("entity records = %v, want just r1", records)
	}

	// Stats reflect the flow.
	resp, body = getJSON(t, srv.URL+"/v1/stats")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET /v1/stats = %d", resp.StatusCode)
	}
	if body["records"].(float64) != 3 || body["resolves"].(float64) != 1 {
		t.Errorf("stats = %v", body)
	}
	if body["entities"].(float64) != 3 { // {q1,r1}, {r2}, {r3}
		t.Errorf("entities = %v, want 3", body["entities"])
	}
	if _, ok := body["engine"].(map[string]any); !ok {
		t.Errorf("stats missing engine block: %v", body)
	}
}

// TestAPIVersioning pins the /v1 surface: canonical routes answer
// without deprecation metadata, while the legacy unprefixed aliases
// serve the same shapes and flag themselves with a Deprecation header
// plus a Link to the /v1 successor.
func TestAPIVersioning(t *testing.T) {
	srv := newTestServer(t)
	if resp, body := postJSON(t, srv.URL+"/v1/records", seedBody); resp.StatusCode != http.StatusOK {
		t.Fatalf("POST /v1/records = %d: %v", resp.StatusCode, body)
	}

	// Canonical routes carry no deprecation metadata.
	resp, _ := getJSON(t, srv.URL+"/v1/stats")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET /v1/stats = %d", resp.StatusCode)
	}
	if d := resp.Header.Get("Deprecation"); d != "" {
		t.Errorf("/v1/stats carries Deprecation %q", d)
	}

	// Legacy aliases serve the same shapes, flagged as deprecated.
	for _, path := range []string{"/stats", "/entities/r1", "/healthz", "/readyz"} {
		resp, body := getJSON(t, srv.URL+path)
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("GET %s = %d: %v", path, resp.StatusCode, body)
		}
		if d := resp.Header.Get("Deprecation"); d != "true" {
			t.Errorf("GET %s: Deprecation = %q, want \"true\"", path, d)
		}
		want := fmt.Sprintf("</v1%s>; rel=\"successor-version\"", path)
		if l := resp.Header.Get("Link"); l != want {
			t.Errorf("GET %s: Link = %q, want %q", path, l, want)
		}
	}

	// The Link target preserves percent-escapes: a decoded path would
	// point an ID like a%2Fb at a different resource.
	resp, _ = getJSON(t, srv.URL+"/entities/a%2Fb")
	if want := `</v1/entities/a%2Fb>; rel="successor-version"`; resp.Header.Get("Link") != want {
		t.Errorf("escaped-ID alias Link = %q, want %q", resp.Header.Get("Link"), want)
	}

	// Legacy and /v1 answer from the same store.
	_, legacy := getJSON(t, srv.URL+"/stats")
	_, v1 := getJSON(t, srv.URL+"/v1/stats")
	if legacy["records"] != v1["records"] || legacy["records"].(float64) != 3 {
		t.Errorf("alias and /v1 disagree: legacy %v, v1 %v", legacy["records"], v1["records"])
	}

	// A versioned POST alias too: resolve through the legacy route.
	resp, body := postJSON(t, srv.URL+"/resolve",
		`{"id":"q-alias","attrs":[{"name":"title","value":"epson workforce 845 printer"}]}`)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("legacy POST /resolve = %d: %v", resp.StatusCode, body)
	}
	if resp.Header.Get("Deprecation") != "true" {
		t.Error("legacy POST /resolve missing Deprecation header")
	}
}

func TestServerErrorPaths(t *testing.T) {
	srv := newTestServer(t)

	resp, _ := postJSON(t, srv.URL+"/records", `{"records":[]}`)
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("empty ingest = %d, want 400", resp.StatusCode)
	}
	resp, _ = postJSON(t, srv.URL+"/records", `not json`)
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("bad JSON = %d, want 400", resp.StatusCode)
	}
	if _, body := postJSON(t, srv.URL+"/records", seedBody); body["added"].(float64) != 3 {
		t.Fatalf("seed failed: %v", body)
	}
	resp, body := postJSON(t, srv.URL+"/records",
		`{"records":[{"id":"r1","attrs":[{"name":"title","value":"again"}]}]}`)
	if resp.StatusCode != http.StatusConflict {
		t.Errorf("duplicate ingest = %d, want 409: %v", resp.StatusCode, body)
	}
	resp, _ = postJSON(t, srv.URL+"/resolve", `{"attrs":[{"name":"title","value":"no id"}]}`)
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("resolve without ID = %d, want 400", resp.StatusCode)
	}
	resp, _ = getJSON(t, srv.URL+"/entities/ghost")
	if resp.StatusCode != http.StatusNotFound {
		t.Errorf("unknown entity = %d, want 404", resp.StatusCode)
	}
	// Wrong methods fall through to 405 via the method-scoped mux.
	resp, err := http.Get(srv.URL + "/resolve")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Errorf("GET /resolve = %d, want 405", resp.StatusCode)
	}
}

// TestServerPersistenceAcrossRestart is the serving-side durability
// flow: ingest and resolve against a persistent store, shut it down
// the way main does (drain, then Close), bring up a second server on
// the same directory, and expect the state — and the already-paid
// LLM decisions — to be there.
func TestServerPersistenceAcrossRestart(t *testing.T) {
	dir := t.TempDir()
	open := func() (*llm4em.Store, *httptest.Server) {
		model, err := llm4em.NewModel(llm4em.GPTMini)
		if err != nil {
			t.Fatal(err)
		}
		store, err := llm4em.OpenStore(model, llm4em.StoreOptions{
			Domain:     llm4em.Product,
			PersistDir: dir,
		})
		if err != nil {
			t.Fatal(err)
		}
		srv := httptest.NewServer(newHandler(handlerConfig{store: store}))
		return store, srv
	}

	store, srv := open()
	if resp, body := postJSON(t, srv.URL+"/records", seedBody); resp.StatusCode != http.StatusOK {
		t.Fatalf("seed: %v", body)
	}
	resolveBody := `{"id":"q1","attrs":[{"name":"title","value":"Sony DSC-120B Cybershot camera (black)"},{"name":"price","value":"351.00"}]}`
	if resp, body := postJSON(t, srv.URL+"/resolve", resolveBody); resp.StatusCode != http.StatusOK || body["matched"] != true {
		t.Fatalf("resolve: %v", body)
	}
	_, body := getJSON(t, srv.URL+"/stats")
	persistBlock, _ := body["persist"].(map[string]any)
	if persistBlock == nil || persistBlock["enabled"] != true || persistBlock["wal_entries"].(float64) == 0 {
		t.Fatalf("stats persist block = %v", persistBlock)
	}
	// Graceful shutdown: drain, then flush + final snapshot.
	srv.Close()
	if err := store.Close(); err != nil {
		t.Fatal(err)
	}

	_, srv2 := open()
	defer srv2.Close()
	_, body = getJSON(t, srv2.URL+"/stats")
	if body["records"].(float64) != 3 || body["resolves"].(float64) != 1 {
		t.Fatalf("recovered stats = %v", body)
	}
	pb, _ := body["persist"].(map[string]any)
	if pb["recovered_records"].(float64) != 3 || pb["recovered_resolves"].(float64) != 1 {
		t.Errorf("recovery counters = %v", pb)
	}
	// The pre-restart merge survived.
	resp, body := getJSON(t, srv2.URL+"/entities/r1")
	if resp.StatusCode != http.StatusOK || body["entity_id"] != "q1" {
		t.Errorf("recovered entity = %v", body)
	}
	// Re-resolving the same query replays the journal: no LLM pairs.
	_, body = postJSON(t, srv2.URL+"/resolve", resolveBody)
	cost, _ := body["cost"].(map[string]any)
	if cost["llm_pairs"].(float64) != 0 || cost["journal_hits"].(float64) == 0 {
		t.Errorf("re-resolve cost after restart = %v", cost)
	}
	decisions, _ := body["decisions"].([]any)
	for _, d := range decisions {
		if d.(map[string]any)["journaled"] != true {
			t.Errorf("decision not journaled after restart: %v", d)
		}
	}
}

// TestServerConcurrentResolves drives the handler with parallel
// requests — the serving scenario the store's sharding exists for.
func TestServerConcurrentResolves(t *testing.T) {
	srv := newTestServer(t)
	if resp, body := postJSON(t, srv.URL+"/records", seedBody); resp.StatusCode != http.StatusOK {
		t.Fatalf("seed: %v", body)
	}
	done := make(chan error, 8)
	for i := 0; i < 8; i++ {
		go func(i int) {
			body := fmt.Sprintf(
				`{"id":"q%d","attrs":[{"name":"title","value":"sony dsc120b cybershot camera black"}]}`, i)
			resp, err := http.Post(srv.URL+"/resolve", "application/json", strings.NewReader(body))
			if err == nil {
				resp.Body.Close()
				if resp.StatusCode != http.StatusOK {
					err = fmt.Errorf("status %d", resp.StatusCode)
				}
			}
			done <- err
		}(i)
	}
	for i := 0; i < 8; i++ {
		if err := <-done; err != nil {
			t.Fatal(err)
		}
	}
	_, body := getJSON(t, srv.URL+"/stats")
	if body["resolves"].(float64) != 8 {
		t.Errorf("resolves = %v, want 8", body["resolves"])
	}
	// All eight queries joined r1's entity.
	_, body = getJSON(t, srv.URL+"/entities/r1")
	if members := body["members"].([]any); len(members) != 9 {
		t.Errorf("entity has %d members, want 9", len(members))
	}
}

// TestServerDispatchStats: a dispatcher-enabled store serves
// concurrent resolves through batched prompts and reports the batch
// counters under /stats "dispatch"; shutdown via store.Close drains
// cleanly.
func TestServerDispatchStats(t *testing.T) {
	model, err := llm4em.NewModel(llm4em.GPTMini)
	if err != nil {
		t.Fatal(err)
	}
	store := llm4em.NewStore(model, llm4em.StoreOptions{
		Domain:        llm4em.Product,
		DispatchPairs: 8,
	})
	srv := httptest.NewServer(newHandler(handlerConfig{store: store}))
	t.Cleanup(srv.Close)

	if resp, body := postJSON(t, srv.URL+"/records", seedBody); resp.StatusCode != http.StatusOK {
		t.Fatalf("seed: %v", body)
	}
	done := make(chan error, 8)
	for i := 0; i < 8; i++ {
		go func(i int) {
			body := fmt.Sprintf(
				`{"id":"q%d","attrs":[{"name":"title","value":"sony dsc120b cybershot camera black"}]}`, i)
			resp, err := http.Post(srv.URL+"/resolve", "application/json", strings.NewReader(body))
			if err == nil {
				resp.Body.Close()
				if resp.StatusCode != http.StatusOK {
					err = fmt.Errorf("status %d", resp.StatusCode)
				}
			}
			done <- err
		}(i)
	}
	for i := 0; i < 8; i++ {
		if err := <-done; err != nil {
			t.Fatal(err)
		}
	}

	_, body := getJSON(t, srv.URL+"/stats")
	dispatch, ok := body["dispatch"].(map[string]any)
	if !ok {
		t.Fatalf("stats carry no dispatch block: %v", body)
	}
	if dispatch["enabled"] != true {
		t.Errorf("dispatch.enabled = %v, want true", dispatch["enabled"])
	}
	if body["resolves"].(float64) != 8 {
		t.Errorf("resolves = %v, want 8", body["resolves"])
	}
	if err := store.Close(); err != nil {
		t.Fatalf("close dispatcher-enabled store: %v", err)
	}
}

// TestMetricsHealthReady covers the observability endpoints: the
// Prometheus exposition populates after traffic, readiness flips with
// the gate, health degrades once the store is closed, and every
// response carries an X-Request-ID.
func TestMetricsHealthReady(t *testing.T) {
	model, err := llm4em.NewModel(llm4em.GPTMini)
	if err != nil {
		t.Fatal(err)
	}
	tel := llm4em.NewTelemetry(llm4em.TelemetryOptions{})
	store := llm4em.NewStore(model, llm4em.StoreOptions{
		Domain:        llm4em.Product,
		DispatchPairs: 8,
		Telemetry:     tel,
	})
	ready := &atomic.Bool{}
	srv := httptest.NewServer(newHandler(handlerConfig{store: store, tel: tel, ready: ready}))
	t.Cleanup(srv.Close)

	// Not ready until the gate flips; healthy the whole time.
	resp, _ := getJSON(t, srv.URL+"/readyz")
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Errorf("readyz before gate = %d, want 503", resp.StatusCode)
	}
	resp, _ = getJSON(t, srv.URL+"/healthz")
	if resp.StatusCode != http.StatusOK {
		t.Errorf("healthz = %d, want 200", resp.StatusCode)
	}
	ready.Store(true)
	resp, _ = getJSON(t, srv.URL+"/readyz")
	if resp.StatusCode != http.StatusOK {
		t.Errorf("readyz after gate = %d, want 200", resp.StatusCode)
	}
	if resp.Header.Get("X-Request-ID") == "" {
		t.Error("response missing X-Request-ID")
	}

	// Inbound request IDs are propagated.
	req, _ := http.NewRequest("GET", srv.URL+"/healthz", nil)
	req.Header.Set("X-Request-ID", "trace-from-lb")
	echoResp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	echoResp.Body.Close()
	if got := echoResp.Header.Get("X-Request-ID"); got != "trace-from-lb" {
		t.Errorf("X-Request-ID = %q, want propagated trace-from-lb", got)
	}

	// Drive traffic so the store-level families populate.
	if resp, body := postJSON(t, srv.URL+"/records", seedBody); resp.StatusCode != http.StatusOK {
		t.Fatalf("seed: %v", body)
	}
	if resp, body := postJSON(t, srv.URL+"/resolve",
		`{"id":"q1","attrs":[{"name":"title","value":"sony dsc120b cybershot camera black"}]}`); resp.StatusCode != http.StatusOK {
		t.Fatalf("resolve: %v", body)
	}

	mresp, err := http.Get(srv.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer mresp.Body.Close()
	if ct := mresp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Errorf("metrics Content-Type = %q", ct)
	}
	raw, err := io.ReadAll(mresp.Body)
	if err != nil {
		t.Fatal(err)
	}
	exposition := string(raw)
	for _, want := range []string{
		"# TYPE em_resolve_total counter",
		"# TYPE em_resolve_stage_seconds histogram",
		`em_resolve_stage_seconds_bucket{stage="block",le="+Inf"}`,
		`em_cascade_outcomes_total{outcome="accept"}`,
		"em_blocking_queries_total",
		"# TYPE em_http_request_seconds histogram",
		`em_http_responses_total{class="2xx",route="resolve"} 1`,
		"em_resolve_total 1",
	} {
		if !strings.Contains(exposition, want) {
			t.Errorf("exposition missing %q", want)
		}
	}
	// Every non-comment line is "name{labels} value" with a numeric value.
	for _, line := range strings.Split(strings.TrimSpace(exposition), "\n") {
		if strings.HasPrefix(line, "#") {
			continue
		}
		fields := strings.Fields(line)
		if len(fields) != 2 {
			t.Errorf("malformed exposition line %q", line)
		}
	}

	// Closing the dispatcher-enabled store degrades health and
	// readiness.
	if err := store.Close(); err != nil {
		t.Fatal(err)
	}
	resp, _ = getJSON(t, srv.URL+"/healthz")
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Errorf("healthz after close = %d, want 503", resp.StatusCode)
	}
	resp, _ = getJSON(t, srv.URL+"/readyz")
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Errorf("readyz after close = %d, want 503", resp.StatusCode)
	}
}

// TestStatsTelemetryBlock: /stats surfaces the telemetry counters and
// is marked uncacheable.
func TestStatsTelemetryBlock(t *testing.T) {
	model, err := llm4em.NewModel(llm4em.GPTMini)
	if err != nil {
		t.Fatal(err)
	}
	tel := llm4em.NewTelemetry(llm4em.TelemetryOptions{})
	store := llm4em.NewStore(model, llm4em.StoreOptions{Domain: llm4em.Product, Telemetry: tel})
	srv := httptest.NewServer(newHandler(handlerConfig{store: store, tel: tel}))
	t.Cleanup(srv.Close)

	if resp, body := postJSON(t, srv.URL+"/records", seedBody); resp.StatusCode != http.StatusOK {
		t.Fatalf("seed: %v", body)
	}
	if resp, body := postJSON(t, srv.URL+"/resolve",
		`{"id":"q1","attrs":[{"name":"title","value":"sony dsc120b cybershot camera black"}]}`); resp.StatusCode != http.StatusOK {
		t.Fatalf("resolve: %v", body)
	}
	resp, body := getJSON(t, srv.URL+"/stats")
	if cc := resp.Header.Get("Cache-Control"); cc != "no-store" {
		t.Errorf("Cache-Control = %q, want no-store", cc)
	}
	telBlock, _ := body["telemetry"].(map[string]any)
	if telBlock == nil || telBlock["enabled"] != true {
		t.Fatalf("stats telemetry block = %v", telBlock)
	}
	if telBlock["resolve_total"].(float64) != 1 {
		t.Errorf("telemetry.resolve_total = %v, want 1", telBlock["resolve_total"])
	}
	if telBlock["resolve_p95_ms"].(float64) <= 0 {
		t.Errorf("telemetry.resolve_p95_ms = %v, want > 0", telBlock["resolve_p95_ms"])
	}

	// Concurrent scrapers share snapshots without erroring.
	done := make(chan error, 4)
	for i := 0; i < 4; i++ {
		go func() {
			resp, err := http.Get(srv.URL + "/stats")
			if err == nil {
				resp.Body.Close()
				if resp.StatusCode != http.StatusOK {
					err = fmt.Errorf("status %d", resp.StatusCode)
				}
			}
			done <- err
		}()
	}
	for i := 0; i < 4; i++ {
		if err := <-done; err != nil {
			t.Fatal(err)
		}
	}
}

// TestAddRecordsBodyShapes covers the bulk-ingest body forms: bare
// JSON array, single object and NDJSON all route through AddBatch.
func TestAddRecordsBodyShapes(t *testing.T) {
	srv := newTestServer(t)

	// Bare JSON array.
	resp, body := postJSON(t, srv.URL+"/records",
		`[{"id":"a1","attrs":[{"name":"title","value":"sony camera"}]},
		  {"id":"a2","attrs":[{"name":"title","value":"epson printer"}]}]`)
	if resp.StatusCode != http.StatusOK || body["added"].(float64) != 2 {
		t.Fatalf("array body: %d %v", resp.StatusCode, body)
	}

	// Single record object.
	resp, body = postJSON(t, srv.URL+"/records",
		`{"id":"a3","attrs":[{"name":"title","value":"makita drill"}]}`)
	if resp.StatusCode != http.StatusOK || body["added"].(float64) != 1 {
		t.Fatalf("single-object body: %d %v", resp.StatusCode, body)
	}

	// NDJSON.
	nd := `{"id":"a4","attrs":[{"name":"title","value":"canon eos camera"}]}
{"id":"a5","attrs":[{"name":"title","value":"bose soundlink speaker"}]}
`
	httpResp, err := http.Post(srv.URL+"/records", "application/x-ndjson", strings.NewReader(nd))
	if err != nil {
		t.Fatal(err)
	}
	body = decodeBody(t, httpResp)
	if httpResp.StatusCode != http.StatusOK || body["added"].(float64) != 2 {
		t.Fatalf("ndjson body: %d %v", httpResp.StatusCode, body)
	}
	if body["records"].(float64) != 5 {
		t.Fatalf("store holds %v records, want 5", body["records"])
	}

	// A batch with an in-batch duplicate is rejected atomically.
	resp, body = postJSON(t, srv.URL+"/records",
		`[{"id":"d1","attrs":[{"name":"title","value":"x"}]},
		  {"id":"d1","attrs":[{"name":"title","value":"y"}]}]`)
	if resp.StatusCode != http.StatusConflict {
		t.Fatalf("in-batch duplicate: status %d, want 409 (%v)", resp.StatusCode, body)
	}
	if _, getOne := getJSON(t, srv.URL+"/entities/d1"); getOne["error"] == nil {
		t.Fatal("rejected batch leaked a record into the store")
	}
}
