// Command emserve serves an online entity-resolution store over HTTP
// JSON — the request-serving front door of the system. Records are
// ingested with POST /records, queries resolved with POST /resolve,
// and entity groups read back with GET /entities/{id}; GET /stats
// reports how many candidate pairs the cascade decided locally versus
// escalating to the LLM.
//
// Uncertain pairs from concurrent resolves are coalesced into
// batched prompts by a cross-request micro-batching dispatcher
// (-dispatch-pairs, default 16; 0 disables), so heavy traffic pays
// far fewer LLM round-trips than it resolves pairs. GET /stats
// reports the dispatcher's batch counters under "dispatch".
//
// The prompt formulation for the uncertain band is selectable with
// -strategy (match|compare|select): compare and select answer all of
// a query's uncertain candidates with one grouped prompt instead of
// one prompt per pair, and -reason-tier re-decides pairs whose first
// LLM verdict conflicts with the local scorer through a structured
// multi-step reasoning prompt. GET /stats reports per-strategy calls,
// pairs and tokens under "strategies"; see docs/STRATEGIES.md.
//
// The process is fully instrumented: GET /metrics serves Prometheus
// text exposition covering per-stage resolve latency, cascade
// outcomes, dispatcher batching, LLM calls and WAL/snapshot
// durability; GET /healthz and GET /readyz are the liveness and
// readiness probes (readiness flips on after recovery and preload
// finish). Every response carries an X-Request-ID header (inbound
// values are propagated), access logs are structured (-log-format
// json|text), and resolves slower than -slow-resolve emit one
// structured exemplar line with the trace ID and per-stage durations.
//
// LLM escalations are fault-tolerant by default (-resilience): a
// circuit breaker trips after repeated backend failures
// (-breaker-failures, -breaker-cooldown) and a load shedder bounds
// concurrent and queued escalations (-llm-concurrency, -llm-queue;
// shed resolves answer 503 with Retry-After). While the breaker is
// open — or a -resolve-timeout deadline expires mid-escalation — the
// uncertain band is answered by the local scorer with decisions
// marked "deferred", and a background re-escalator replays them
// against the LLM once it recovers (-deferred-retry). GET /readyz
// stays 200 but annotates the degraded mode; GET /stats reports
// breaker state, shed counts and deferred queue depth under
// "resilience". The -chaos-outage flag fails every LLM call for a
// window after boot, for fault drills (scripts/chaos_smoke.sh).
//
// With -persist, the store is durable: records and match decisions
// are journaled to a write-ahead log in the directory and compacted
// into snapshots; restarting the server recovers the full state —
// including already-paid LLM decisions — from disk. SIGINT/SIGTERM
// shut down gracefully: in-flight requests drain (bounded by
// -shutdown-timeout), then the dispatcher is drained and the store
// flushes and writes a final snapshot.
//
// Usage:
//
//	emserve -addr :8080 -model GPT-mini
//	emserve -demo -records 200              # preload WDC offers
//	emserve -persist ./emserve-data         # durable store
//	emserve -pprof 6060                     # profiling on 127.0.0.1:6060
//	emserve -log-format json -slow-resolve 250ms
//
// Quickstart:
//
//	curl -s localhost:8080/stats
//	curl -s localhost:8080/metrics | grep em_resolve
//	curl -s -X POST localhost:8080/records -d \
//	  '{"records":[{"id":"r1","attrs":[{"name":"title","value":"sony dsc120b camera black"}]}]}'
//	curl -s -X POST localhost:8080/resolve -d \
//	  '{"id":"q1","attrs":[{"name":"title","value":"Sony DSC-120B camera (black)"}]}'
//	curl -s localhost:8080/entities/q1
//
// POST /records also accepts a bare JSON array of records, a single
// record object, or NDJSON (Content-Type: application/x-ndjson, one
// record per line); every form is ingested as one batch.
//
// Profiling quickstart (-pprof <port>, loopback only):
//
//	go tool pprof "http://127.0.0.1:6060/debug/pprof/profile?seconds=10"
//	go tool pprof http://127.0.0.1:6060/debug/pprof/heap
//	curl -s "http://127.0.0.1:6060/debug/pprof/trace?seconds=5" -o trace.out && go tool trace trace.out
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log/slog"
	"net"
	"net/http"
	_ "net/http/pprof" // -pprof flag: profiling endpoint on a localhost-only port
	"os"
	"os/signal"
	"sync/atomic"
	"syscall"
	"time"

	"llm4em"
	"llm4em/internal/chaos"
	"llm4em/internal/datasets"
	"llm4em/internal/entity"
)

func main() {
	addr := flag.String("addr", ":8080", "listen address")
	model := flag.String("model", "GPT-mini", "matching model for the uncertain band")
	designName := flag.String("design", "domain-complex-force", "prompt design")
	domainName := flag.String("domain", "product", "topical domain: product or publication")
	accept := flag.Float64("accept", 0, "cascade accept-above probability (0 = default)")
	reject := flag.Float64("reject", 0, "cascade reject-below probability (0 = default)")
	llmBudget := flag.Int("llm-budget", 0, "max LLM pairs per resolve (0 = unlimited, negative = none)")
	maxCents := flag.Float64("max-cents", 0, "max estimated cents per resolve (0 = uncapped)")
	noCascade := flag.Bool("no-cascade", false, "send every candidate pair to the LLM")
	strategyName := flag.String("strategy", "match", "uncertain-band prompt strategy: match, compare or select")
	reasonTier := flag.Bool("reason-tier", false, "re-decide pairs whose LLM verdict conflicts with the local scorer via a structured reasoning prompt")
	shards := flag.Int("shards", 0, "index shards (0 = default)")
	candidates := flag.Int("candidates", 0, "max blocking candidates per resolve (0 = default)")
	deferExtraction := flag.Bool("defer-extraction", false, "skip feature extraction at ingest; extract lazily (and cache) when a record first surfaces as a candidate — faster bulk loads")
	workers := flag.Int("workers", 0, "LLM pipeline workers (0 = default)")
	dispatchPairs := flag.Int("dispatch-pairs", 16, "coalesce uncertain pairs from concurrent resolves into batched prompts of up to N pairs (0 = one round-trip per pair)")
	dispatchFlush := flag.Duration("dispatch-flush", 0, "max wait for batch-mates before a partial batch is flushed (0 = default)")
	demo := flag.Bool("demo", false, "preload records derived from WDC Products")
	records := flag.Int("records", 200, "number of records to preload in -demo mode")
	persistDir := flag.String("persist", "", "durability directory (WAL + snapshots); empty = in-memory")
	pprofPort := flag.Int("pprof", 0, "expose net/http/pprof on 127.0.0.1:<port> (0 = disabled)")
	snapshotEvery := flag.Int("snapshot-every", 0, "WAL appends between snapshots (0 = default, negative = only on shutdown)")
	syncEvery := flag.Int("sync-every", 0, "fsync the WAL every N appends (0 = only on snapshot/shutdown)")
	shutdownTimeout := flag.Duration("shutdown-timeout", 10*time.Second, "max time to drain in-flight requests on SIGINT/SIGTERM")
	logFormat := flag.String("log-format", "text", "log output format: text or json")
	logLevel := flag.String("log-level", "info", "minimum log level: debug, info, warn or error")
	slowResolve := flag.Duration("slow-resolve", time.Second, "resolve latency above which one structured exemplar line is logged (0 = disabled)")
	resilienceOn := flag.Bool("resilience", true, "enable the fault-tolerance layer: circuit breaker, load shedding and deferred-decision degradation for LLM escalations")
	breakerFailures := flag.Int("breaker-failures", 0, "consecutive LLM failures that trip the circuit breaker (0 = default)")
	breakerCooldown := flag.Duration("breaker-cooldown", 0, "open-breaker cooldown before the backend is probed again (0 = default)")
	llmConcurrency := flag.Int("llm-concurrency", 0, "max concurrent LLM escalations before callers queue (0 = default)")
	llmQueue := flag.Int("llm-queue", 0, "max queued LLM escalations before resolves are shed with 503 (0 = default)")
	deferredRetry := flag.Duration("deferred-retry", 0, "poll interval for re-escalating deferred pairs once the breaker closes (0 = default)")
	resolveTimeout := flag.Duration("resolve-timeout", 0, "per-request deadline for POST /resolve; expired escalations degrade to deferred local verdicts (0 = none)")
	chaosOutage := flag.Duration("chaos-outage", 0, "chaos harness: fail every LLM call for this long after boot (0 = disabled)")
	flag.Parse()

	logger, err := buildLogger(*logFormat, *logLevel)
	fail(err)
	slog.SetDefault(logger)
	srvLog := logger.With("component", "emserve")

	var client llm4em.Client
	client, err = llm4em.NewModel(*model)
	fail(err)
	if *chaosOutage > 0 {
		// The chaos wrapper sits between the store and the model, so an
		// outage window exercises the real breaker/degradation path the
		// way a hosted-API incident would.
		wrapped := chaos.Wrap(client, chaos.ClientOptions{})
		wrapped.OutageFor(*chaosOutage)
		client = wrapped
	}
	strategy, err := llm4em.ParseStrategy(*strategyName)
	fail(err)
	design, err := llm4em.DesignByName(*designName)
	fail(err)
	domain := llm4em.Product
	switch *domainName {
	case "product":
	case "publication":
		domain = llm4em.Publication
	default:
		fail(fmt.Errorf("unknown domain %q", *domainName))
	}

	tel := llm4em.NewTelemetry(llm4em.TelemetryOptions{
		Logger:      logger.With("component", "resolve"),
		SlowResolve: *slowResolve,
	})

	// Readiness stays false until recovery and preload are done, so a
	// load balancer never routes to a replica still replaying its WAL.
	ready := &atomic.Bool{}

	store, err := llm4em.OpenStore(client, llm4em.StoreOptions{
		Shards:          *shards,
		MaxCandidates:   *candidates,
		DeferExtraction: *deferExtraction,
		Design:          design,
		Domain:          domain,
		Workers:         *workers,
		DispatchPairs:   *dispatchPairs,
		DispatchFlush:   *dispatchFlush,
		PersistDir:      *persistDir,
		SnapshotEvery:   *snapshotEvery,
		SyncEvery:       *syncEvery,
		Telemetry:       tel,
		Resilience: llm4em.ResilienceOptions{
			Enabled: *resilienceOn,
			Breaker: llm4em.BreakerOptions{
				ConsecutiveFailures: *breakerFailures,
				Cooldown:            *breakerCooldown,
			},
			Shed: llm4em.ShedOptions{
				MaxConcurrent: *llmConcurrency,
				MaxQueue:      *llmQueue,
			},
			RetryInterval: *deferredRetry,
		},
		Cascade: llm4em.CascadeOptions{
			AcceptAbove:        *accept,
			RejectBelow:        *reject,
			LLMBudget:          *llmBudget,
			MaxCentsPerResolve: *maxCents,
			Disable:            *noCascade,
			Strategy:           strategy,
			ReasonTier:         *reasonTier,
		},
	})
	fail(err)
	if ps := store.Stats().Persist; ps.Enabled {
		srvLog.Info("persist recovered",
			"dir", ps.Dir,
			"records", ps.RecoveredRecords,
			"decisions", ps.RecoveredDecisions,
			"resolves", ps.RecoveredResolves,
			"torn_tail", ps.TruncatedTail)
	}

	if *demo {
		// Per-record, skipping duplicates: a recovered store holds some
		// or all of the demo collection already, and a batch insert
		// would stop at the first one.
		added := 0
		for _, r := range demoCollection(*records) {
			switch err := store.Add(r); {
			case err == nil:
				added++
			case errors.Is(err, llm4em.ErrDuplicateRecordID):
				// already recovered from disk
			default:
				fail(err)
			}
		}
		srvLog.Info("demo records preloaded", "added", added, "stored", store.Len())
	}
	ready.Store(true)

	var pprofSrv *http.Server
	if *pprofPort > 0 {
		// Profiling endpoint on a loopback-only port, separate from the
		// serving mux: the pprof import registers its handlers on
		// http.DefaultServeMux, which the API server never uses. The
		// listener is bound synchronously so a taken port fails startup
		// instead of logging from a goroutine after the fact, and the
		// explicit server handle has a shutdown path in the drain below.
		pprofAddr := fmt.Sprintf("127.0.0.1:%d", *pprofPort)
		ln, err := net.Listen("tcp", pprofAddr)
		fail(err)
		pprofSrv = &http.Server{Handler: http.DefaultServeMux}
		go func() {
			srvLog.Info("pprof listening", "url", fmt.Sprintf("http://%s/debug/pprof/", pprofAddr))
			if err := pprofSrv.Serve(ln); err != nil && !errors.Is(err, http.ErrServerClosed) {
				srvLog.Error("pprof server failed", "error", err)
			}
		}()
	}

	if *chaosOutage > 0 {
		srvLog.Warn("chaos outage window active: every LLM call fails", "duration", *chaosOutage)
	}

	// Slowloris-resistant server limits: a stalled client cannot pin a
	// connection open indefinitely. Handlers that stream (none today)
	// would need per-route overrides before raising these.
	srv := &http.Server{
		Addr: *addr,
		Handler: newHandler(handlerConfig{
			store:          store,
			tel:            tel,
			log:            logger.With("component", "http"),
			ready:          ready,
			resolveTimeout: *resolveTimeout,
		}),
		ReadHeaderTimeout: 5 * time.Second,
		ReadTimeout:       30 * time.Second,
		IdleTimeout:       120 * time.Second,
	}
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	serveErr := make(chan error, 1)
	go func() { serveErr <- srv.ListenAndServe() }()
	srvLog.Info("listening", "model", *model, "design", *designName, "addr", *addr)

	select {
	case err := <-serveErr:
		fail(err)
	case <-ctx.Done():
		stop() // restore default signal handling: a second signal kills hard
		srvLog.Info("shutting down, draining in-flight requests", "max", *shutdownTimeout)
		sctx, cancel := context.WithTimeout(context.Background(), *shutdownTimeout)
		defer cancel()
		if err := srv.Shutdown(sctx); err != nil {
			srvLog.Warn("drain incomplete", "error", err)
		}
		if pprofSrv != nil {
			if err := pprofSrv.Close(); err != nil {
				srvLog.Warn("close pprof server", "error", err)
			}
		}
		// Flush and snapshot after the last request has finished, so
		// the final state on disk includes everything that was served.
		if err := store.Close(); err != nil {
			srvLog.Error("close store", "error", err)
			os.Exit(1)
		}
		srvLog.Info("state flushed, bye")
	}
}

// buildLogger constructs the process logger from the -log-format and
// -log-level flags. Logs go to stderr, keeping stdout clean for
// piping.
func buildLogger(format, level string) (*slog.Logger, error) {
	var lvl slog.Level
	if err := lvl.UnmarshalText([]byte(level)); err != nil {
		return nil, fmt.Errorf("unknown log level %q", level)
	}
	opts := &slog.HandlerOptions{Level: lvl}
	switch format {
	case "text":
		return slog.New(slog.NewTextHandler(os.Stderr, opts)), nil
	case "json":
		return slog.New(slog.NewJSONHandler(os.Stderr, opts)), nil
	default:
		return nil, fmt.Errorf("unknown log format %q (want text or json)", format)
	}
}

// demoCollection builds a dirty record collection from the WDC test
// split, as cmd/emblock does.
func demoCollection(n int) []entity.Record {
	ds := datasets.MustLoad("wdc")
	var recs []entity.Record
	seen := map[string]bool{}
	for _, p := range ds.Test {
		for _, r := range []entity.Record{p.A, p.B} {
			if !seen[r.ID] {
				recs = append(recs, r)
				seen[r.ID] = true
			}
			if len(recs) == n {
				return recs
			}
		}
	}
	return recs
}

func fail(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, "emserve:", err)
		os.Exit(1)
	}
}
