// Command emserve serves an online entity-resolution store over HTTP
// JSON — the request-serving front door of the system. Records are
// ingested with POST /records, queries resolved with POST /resolve,
// and entity groups read back with GET /entities/{id}; GET /stats
// reports how many candidate pairs the cascade decided locally versus
// escalating to the LLM.
//
// Usage:
//
//	emserve -addr :8080 -model GPT-mini
//	emserve -demo -records 200              # preload WDC offers
//
// Quickstart:
//
//	curl -s localhost:8080/stats
//	curl -s -X POST localhost:8080/records -d \
//	  '{"records":[{"id":"r1","attrs":[{"name":"title","value":"sony dsc120b camera black"}]}]}'
//	curl -s -X POST localhost:8080/resolve -d \
//	  '{"id":"q1","attrs":[{"name":"title","value":"Sony DSC-120B camera (black)"}]}'
//	curl -s localhost:8080/entities/q1
package main

import (
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"

	"llm4em"
	"llm4em/internal/datasets"
	"llm4em/internal/entity"
)

func main() {
	addr := flag.String("addr", ":8080", "listen address")
	model := flag.String("model", "GPT-mini", "matching model for the uncertain band")
	designName := flag.String("design", "domain-complex-force", "prompt design")
	domainName := flag.String("domain", "product", "topical domain: product or publication")
	accept := flag.Float64("accept", 0, "cascade accept-above probability (0 = default)")
	reject := flag.Float64("reject", 0, "cascade reject-below probability (0 = default)")
	llmBudget := flag.Int("llm-budget", 0, "max LLM pairs per resolve (0 = unlimited, negative = none)")
	maxCents := flag.Float64("max-cents", 0, "max estimated cents per resolve (0 = uncapped)")
	noCascade := flag.Bool("no-cascade", false, "send every candidate pair to the LLM")
	shards := flag.Int("shards", 0, "index shards (0 = default)")
	candidates := flag.Int("candidates", 0, "max blocking candidates per resolve (0 = default)")
	workers := flag.Int("workers", 0, "LLM pipeline workers (0 = default)")
	demo := flag.Bool("demo", false, "preload records derived from WDC Products")
	records := flag.Int("records", 200, "number of records to preload in -demo mode")
	flag.Parse()

	client, err := llm4em.NewModel(*model)
	fail(err)
	design, err := llm4em.DesignByName(*designName)
	fail(err)
	domain := llm4em.Product
	switch *domainName {
	case "product":
	case "publication":
		domain = llm4em.Publication
	default:
		fail(fmt.Errorf("unknown domain %q", *domainName))
	}

	store := llm4em.NewStore(client, llm4em.StoreOptions{
		Shards:        *shards,
		MaxCandidates: *candidates,
		Design:        design,
		Domain:        domain,
		Workers:       *workers,
		Cascade: llm4em.CascadeOptions{
			AcceptAbove:        *accept,
			RejectBelow:        *reject,
			LLMBudget:          *llmBudget,
			MaxCentsPerResolve: *maxCents,
			Disable:            *noCascade,
		},
	})

	if *demo {
		recs := demoCollection(*records)
		fail(store.AddBatch(recs))
		log.Printf("preloaded %d WDC records", len(recs))
	}

	log.Printf("emserve: model %s, design %s, listening on %s", *model, *designName, *addr)
	fail(http.ListenAndServe(*addr, newHandler(store)))
}

// demoCollection builds a dirty record collection from the WDC test
// split, as cmd/emblock does.
func demoCollection(n int) []entity.Record {
	ds := datasets.MustLoad("wdc")
	var recs []entity.Record
	seen := map[string]bool{}
	for _, p := range ds.Test {
		for _, r := range []entity.Record{p.A, p.B} {
			if !seen[r.ID] {
				recs = append(recs, r)
				seen[r.ID] = true
			}
			if len(recs) == n {
				return recs
			}
		}
	}
	return recs
}

func fail(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, "emserve:", err)
		os.Exit(1)
	}
}
