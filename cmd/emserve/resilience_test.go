package main

import (
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"llm4em"
	"llm4em/internal/chaos"
	"llm4em/internal/llm"
)

// fastResilience trips the breaker on the first failure and drains
// the deferred queue within milliseconds, so outage tests converge
// quickly.
func fastResilience() llm4em.ResilienceOptions {
	return llm4em.ResilienceOptions{
		Enabled: true,
		Breaker: llm4em.BreakerOptions{
			ConsecutiveFailures: 1,
			// Long enough that the breaker is still open (not probing
			// half-open) while the test asserts the degraded mode, short
			// enough that recovery converges well inside the wait bound.
			Cooldown: 500 * time.Millisecond,
		},
		RetryInterval: 2 * time.Millisecond,
	}
}

// newResilientServer builds a handler over a store with the given
// client and resilience configuration, every candidate pair routed to
// the LLM (cascade disabled) so outages are guaranteed to matter.
func newResilientServer(t *testing.T, client llm4em.Client, opts llm4em.StoreOptions) *httptest.Server {
	t.Helper()
	opts.Domain = llm4em.Product
	opts.Cascade = llm4em.CascadeOptions{Disable: true}
	store := llm4em.NewStore(client, opts)
	t.Cleanup(func() { store.Close() })
	srv := httptest.NewServer(newHandler(handlerConfig{store: store}))
	t.Cleanup(srv.Close)
	return srv
}

// waitStats polls GET /stats until cond approves the resilience
// block.
func waitStats(t *testing.T, url string, what string, cond func(map[string]any) bool) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		_, body := getJSON(t, url+"/stats")
		if res, ok := body["resilience"].(map[string]any); ok && cond(res) {
			return
		}
		time.Sleep(2 * time.Millisecond)
	}
	t.Fatalf("timed out waiting for %s", what)
}

// TestServerDegradedModeUnderOutage drives the serving path through a
// full LLM outage: resolves keep answering 200 with decisions marked
// deferred, /readyz stays ready but annotated, /stats exposes the
// breaker and queue, and recovery drains the deferred pairs.
func TestServerDegradedModeUnderOutage(t *testing.T) {
	model, err := llm4em.NewModel(llm4em.GPTMini)
	if err != nil {
		t.Fatal(err)
	}
	wrapped := chaos.Wrap(model, chaos.ClientOptions{})
	srv := newResilientServer(t, wrapped, llm4em.StoreOptions{Resilience: fastResilience()})

	resp, body := postJSON(t, srv.URL+"/records", seedBody)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("POST /records = %d: %v", resp.StatusCode, body)
	}

	wrapped.SetOutage(true)
	resp, body = postJSON(t, srv.URL+"/resolve",
		`{"id":"q1","attrs":[{"name":"title","value":"sony dsc120b cybershot camera black"},{"name":"price","value":"348.00"}]}`)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("POST /resolve during outage = %d: %v", resp.StatusCode, body)
	}
	decisions := body["decisions"].([]any)
	if len(decisions) == 0 {
		t.Fatal("resolve returned no decisions")
	}
	for _, d := range decisions {
		dm := d.(map[string]any)
		if dm["deferred"] != true || dm["method"] != string(llm4em.MethodDeferred) {
			t.Fatalf("outage decision not deferred: %v", dm)
		}
	}

	resp, body = getJSON(t, srv.URL+"/readyz")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET /readyz during outage = %d, want 200 (degraded replicas stay ready)", resp.StatusCode)
	}
	if body["degraded"] != "llm_breaker_open" {
		t.Fatalf("readyz degraded = %v, want llm_breaker_open", body["degraded"])
	}

	_, body = getJSON(t, srv.URL+"/stats")
	res := body["resilience"].(map[string]any)
	if res["enabled"] != true || res["breaker_state"] != "open" {
		t.Fatalf("stats resilience block during outage: %v", res)
	}
	if res["deferred_pairs"].(float64) == 0 || res["deferred_queue"].(float64) == 0 {
		t.Fatalf("no deferred pairs surfaced in stats: %v", res)
	}

	wrapped.SetOutage(false)
	waitStats(t, srv.URL, "deferred queue drain", func(res map[string]any) bool {
		return res["deferred_queue"].(float64) == 0 && res["redecided"].(float64) > 0
	})
	resp, body = getJSON(t, srv.URL+"/readyz")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET /readyz after recovery = %d", resp.StatusCode)
	}
	if _, still := body["degraded"]; still {
		t.Fatalf("readyz still degraded after recovery: %v", body)
	}
}

// gateClient blocks every call until released, so tests control how
// many escalations are in flight.
type gateClient struct {
	mu      sync.Mutex
	entered chan struct{}
	release chan struct{}
}

func newGateClient() *gateClient {
	return &gateClient{entered: make(chan struct{}, 8), release: make(chan struct{})}
}

func (c *gateClient) Name() string { return "gate" }

func (c *gateClient) Chat(messages []llm.Message) (llm.Response, error) {
	c.entered <- struct{}{}
	<-c.release
	return llm.Response{Content: "No.", PromptTokens: 4, CompletionTokens: 2}, nil
}

// TestServerShedsWith503 fills the escalation slots and queue, then
// checks the next resolve is rejected with 503 and a Retry-After
// hint instead of piling on.
func TestServerShedsWith503(t *testing.T) {
	client := newGateClient()
	opts := llm4em.StoreOptions{Resilience: llm4em.ResilienceOptions{
		Enabled: true,
		Shed:    llm4em.ShedOptions{MaxConcurrent: 1, MaxQueue: 1},
	}}
	srv := newResilientServer(t, client, opts)

	resp, body := postJSON(t, srv.URL+"/records", seedBody)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("POST /records = %d: %v", resp.StatusCode, body)
	}

	// Distinct titles: identical prompts would coalesce in the
	// engine's single-flight cache and never occupy a second slot.
	resolveBody := func(i byte) string {
		return `{"id":"qs` + string('0'+i) + `","attrs":[{"name":"title","value":"sony dsc120b cybershot camera black v` + string('0'+i) + `"}]}`
	}
	statuses := make(chan int, 2)
	var wg sync.WaitGroup
	for i := byte(1); i <= 2; i++ {
		wg.Add(1)
		go func(i byte) {
			defer wg.Done()
			resp, err := http.Post(srv.URL+"/resolve", "application/json", strings.NewReader(resolveBody(i)))
			if err != nil {
				t.Error(err)
				return
			}
			resp.Body.Close()
			statuses <- resp.StatusCode
		}(i)
	}
	// First escalation holds the slot; the second waits in the queue.
	<-client.entered
	waitStats(t, srv.URL, "one queued escalation", func(res map[string]any) bool {
		return res["waiting"].(float64) == 1
	})

	// Slot and queue full: the third resolve is shed immediately.
	resp, body = postJSON(t, srv.URL+"/resolve", resolveBody(3))
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("shed resolve = %d: %v, want 503", resp.StatusCode, body)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Fatal("503 without Retry-After header")
	}

	close(client.release) // let the two held resolves finish
	wg.Wait()
	close(statuses)
	for s := range statuses {
		if s != http.StatusOK {
			t.Fatalf("held resolve finished with %d", s)
		}
	}
}

// TestServerResolveTimeout pins the two deadline behaviours: with
// resilience enabled an expired escalation degrades into deferred
// local verdicts (200), and without it the request surfaces 504.
func TestServerResolveTimeout(t *testing.T) {
	model, err := llm4em.NewModel(llm4em.GPTMini)
	if err != nil {
		t.Fatal(err)
	}
	build := func(resilient bool) *httptest.Server {
		wrapped := chaos.Wrap(model, chaos.ClientOptions{HangRate: 1})
		store := llm4em.NewStore(wrapped, llm4em.StoreOptions{
			Domain:  llm4em.Product,
			Cascade: llm4em.CascadeOptions{Disable: true},
			Resilience: llm4em.ResilienceOptions{
				Enabled:       resilient,
				RetryInterval: time.Hour, // keep the re-escalator quiet
			},
		})
		t.Cleanup(func() { store.Close() })
		srv := httptest.NewServer(newHandler(handlerConfig{
			store:          store,
			resolveTimeout: 50 * time.Millisecond,
		}))
		t.Cleanup(srv.Close)
		resp, body := postJSON(t, srv.URL+"/records", seedBody)
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("POST /records = %d: %v", resp.StatusCode, body)
		}
		return srv
	}
	query := `{"id":"q1","attrs":[{"name":"title","value":"sony dsc120b cybershot camera black"}]}`

	srv := build(true)
	resp, body := postJSON(t, srv.URL+"/resolve", query)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("resolve with deadline+resilience = %d: %v, want 200", resp.StatusCode, body)
	}
	for _, d := range body["decisions"].([]any) {
		if dm := d.(map[string]any); dm["deferred"] != true {
			t.Fatalf("deadline-expired decision not deferred: %v", dm)
		}
	}

	srv = build(false)
	resp, body = postJSON(t, srv.URL+"/resolve", query)
	if resp.StatusCode != http.StatusGatewayTimeout {
		t.Fatalf("resolve with deadline, no resilience = %d: %v, want 504", resp.StatusCode, body)
	}
}
