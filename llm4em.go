// Package llm4em is the public facade of the llm4em library: a Go
// implementation of "Entity Matching using Large Language Models"
// (Peeters, Steiner, Bizer — EDBT 2025).
//
// The library matches pairs of entity descriptions with (simulated)
// large language models. The central workflow is:
//
//	model, _ := llm4em.NewModel(llm4em.GPT4)
//	design, _ := llm4em.DesignByName("general-complex-force")
//	matcher := llm4em.Matcher{Client: model, Design: design, Domain: llm4em.Product}
//	decision, err := matcher.MatchPair(pair)
//
// Evaluations over pair sets (Matcher.Evaluate, Matcher.Stream,
// BatchMatcher.Evaluate) run on a concurrent matching pipeline: a
// bounded worker pool that deduplicates identical prompts through an
// LRU response cache and retries transient client errors with
// backoff. The Workers, CacheSize and MaxRetries fields of Matcher
// and BatchMatcher tune it; zero values select sensible defaults.
//
// For online serving, llm4em.NewStore returns an incremental
// entity-resolution store: records are indexed as they arrive,
// queries resolve against a sharded inverted IDF index, and a cascade
// matcher answers confident candidate pairs with a local calibrated
// scorer so only the uncertain band reaches the LLM. With
// StoreOptions.DispatchPairs set, uncertain pairs from concurrent
// Resolve calls are additionally coalesced into batched prompts by a
// cross-request micro-batching dispatcher, cutting LLM round-trips
// under load. The emserve command exposes the store over HTTP JSON.
//
// Training data can be plugged in as in-context demonstrations
// (llm4em.NewRelatedSelector, …), textual matching rules
// (llm4em.HandwrittenRules, llm4em.LearnRules) or fine-tuning
// (llm4em.FineTune). The six synthetic benchmark datasets of the
// paper are available through llm4em.LoadDataset, and the experiment
// harness regenerating the paper's tables through the emexperiments
// command.
package llm4em

import (
	"context"
	"time"

	"llm4em/internal/blocking"
	"llm4em/internal/core"
	"llm4em/internal/datasets"
	"llm4em/internal/entity"
	"llm4em/internal/explain"
	"llm4em/internal/finetune"
	"llm4em/internal/icl"
	"llm4em/internal/llm"
	"llm4em/internal/pipeline"
	"llm4em/internal/prompt"
	"llm4em/internal/resilience"
	"llm4em/internal/resolve"
	"llm4em/internal/rules"
	"llm4em/internal/telemetry"
)

// Core data model.
type (
	// Record is one entity description.
	Record = entity.Record
	// Attr is a named attribute value.
	Attr = entity.Attr
	// Pair is a labelled pair of entity descriptions.
	Pair = entity.Pair
	// Schema fixes a dataset's attributes and domain.
	Schema = entity.Schema
	// Domain is the topical domain of a matching task.
	Domain = entity.Domain
)

// Topical domains.
const (
	Product     = entity.Product
	Publication = entity.Publication
)

// Matching pipeline.
type (
	// Matcher is the LLM-based matching pipeline.
	Matcher = core.Matcher
	// BatchMatcher packs several pairs into one prompt (Section 8).
	BatchMatcher = core.BatchMatcher
	// Decision is the outcome of matching one pair.
	Decision = core.Decision
	// Result aggregates an evaluation run.
	Result = core.Result
	// DemoSelector supplies in-context demonstrations.
	DemoSelector = core.DemoSelector
)

// ParseAnswer converts a model reply into a matching decision using
// the paper's rule (lower-case, parse for the word "yes").
func ParseAnswer(answer string) bool { return core.ParseAnswer(answer) }

// ParseBatchAnswers reads the numbered Yes/No lines of a batched
// reply into a decision slice of length n.
func ParseBatchAnswers(answer string, n int) []bool { return core.ParseBatchAnswers(answer, n) }

// Concurrent execution engine.
type (
	// Engine is the concurrent prompt-execution engine underneath
	// Matcher and BatchMatcher: bounded worker pool, LRU prompt cache,
	// transient-error retry. Use it directly to run raw prompts or
	// custom matching loops at scale.
	Engine = pipeline.Engine
	// EngineOptions tunes an Engine.
	EngineOptions = pipeline.Options
	// EngineStats counts client calls, cache hits and retries.
	EngineStats = pipeline.Stats
)

// NewEngine returns a concurrent execution engine over the client.
func NewEngine(client Client, opts EngineOptions) *Engine { return pipeline.New(client, opts) }

// TransientError marks an error as retryable so the pipeline retries
// it with backoff. Custom Client implementations wrap rate limits,
// timeouts and 5xx-style failures with it.
func TransientError(err error) error { return pipeline.Transient(err) }

// IsTransientError reports whether an error is marked retryable.
func IsTransientError(err error) bool { return pipeline.IsTransient(err) }

// Online entity resolution.
type (
	// Store is the online entity-resolution store: a sharded,
	// incremental inverted IDF index over added records, a cascade
	// matcher that answers confident candidate pairs with a local
	// calibrated scorer and escalates only the uncertain band to the
	// LLM, and an incremental union-find folding decisions into entity
	// groups. Safe for concurrent use; cmd/emserve exposes it over
	// HTTP.
	Store = resolve.Store
	// StoreOptions configures a Store (shards, blocking thresholds,
	// prompt design, cascade, pipeline knobs).
	StoreOptions = resolve.Options
	// CascadeOptions tunes the cascade matcher's accept/reject
	// thresholds, LLM/cost budgets, and the prompt strategy for the
	// uncertain band (Strategy, ReasonTier).
	CascadeOptions = resolve.CascadeOptions
	// ResolveResult is the outcome of resolving one query record.
	ResolveResult = resolve.Result
	// ResolveDecision is the outcome of one candidate pair within a
	// Resolve call.
	ResolveDecision = resolve.PairDecision
	// CostReport accounts one Resolve call: cascade split, LLM spend
	// and per-strategy usage.
	CostReport = resolve.CostReport
	// StrategyUsage is one prompt strategy's share of a Resolve call's
	// LLM activity inside a CostReport (calls, pairs, tokens).
	StrategyUsage = resolve.StrategyUsage
	// StrategyTotals is the lifetime counterpart of StrategyUsage
	// inside StoreStats.
	StrategyTotals = resolve.StrategyTotals
	// StoreStats snapshots a store's lifetime counters.
	StoreStats = resolve.Stats
	// StoreDispatchStats snapshots the cross-request micro-batching
	// dispatcher's counters (batches issued, pairs batched, fallbacks,
	// single-flight and cache hits). Enabled is false for stores built
	// without StoreOptions.DispatchPairs.
	StoreDispatchStats = resolve.DispatchStats
	// StorePersistStats snapshots the durability counters of a
	// persistent store: recovery counts, WAL and snapshot activity.
	StorePersistStats = resolve.PersistStats
	// BatchError reports a partially applied Store.AddBatch: Added
	// records are in the store, and errors.Is still matches the typed
	// cause (e.g. ErrDuplicateRecordID) through Unwrap.
	BatchError = resolve.BatchError
)

// Blocking index configuration (v1). Set StoreOptions.Blocking to a
// BlockingOptions value to tune the candidate index explicitly; the
// nil-vs-set pointer fields distinguish "use the default" from a
// literal zero where the old flat float fields could not.
type (
	// BlockingOptions is the v1 configuration of the candidate index:
	// explicit *float64 thresholds (nil selects the default, a set
	// pointer — including BlockingFloat(0) — is taken literally) plus
	// the postings Compression and top-K Pruning knobs.
	BlockingOptions = blocking.IndexOptions
	// BlockingCompression selects the postings representation of the
	// candidate index.
	BlockingCompression = blocking.Compression
	// BlockingPruning selects the top-K scoring strategy of the
	// candidate index.
	BlockingPruning = blocking.Pruning
)

// Candidate-index compression and pruning modes.
const (
	CompressionAuto   = blocking.CompressionAuto
	CompressionVarint = blocking.CompressionVarint
	CompressionNone   = blocking.CompressionNone
	PruningAuto       = blocking.PruningAuto
	PruningBlockMax   = blocking.PruningBlockMax
	PruningOff        = blocking.PruningOff
)

// BlockingFloat returns a pointer to v — the set form the explicit
// BlockingOptions threshold fields take. BlockingFloat(0) requests a
// literal zero where nil would select the default.
func BlockingFloat(v float64) *float64 { return blocking.Float(v) }

// NewStore returns an empty online resolution store over the client.
// The store is in-memory; use OpenStore for a durable one.
func NewStore(client Client, opts StoreOptions) *Store { return resolve.New(client, opts) }

// OpenStore returns an online resolution store over the client,
// durably backed by opts.PersistDir when that field is set: every
// ingested record and match decision is journaled to a write-ahead
// log and periodically compacted into a snapshot. Opening an existing
// directory recovers the previous state — records, entity groups,
// decision journal and cost totals — without re-invoking the LLM,
// tolerating a torn WAL tail from a crash mid-append. Journaled pairs
// short-circuit later Resolve calls. Shut down with Store.Close
// (flush + final snapshot); Store.Checkpoint and Store.Flush force a
// compaction or an fsync between the automatic cadences. With an
// empty PersistDir, OpenStore equals NewStore.
func OpenStore(client Client, opts StoreOptions) (*Store, error) { return resolve.Open(client, opts) }

// Typed store errors, matched with errors.Is.
var (
	// ErrNoRecordID marks a record or query with an empty ID.
	ErrNoRecordID = resolve.ErrNoID
	// ErrDuplicateRecordID marks an Add of an already-stored ID.
	ErrDuplicateRecordID = resolve.ErrDuplicateID
)

// Fault tolerance. With StoreOptions.Resilience enabled, a store
// wraps its LLM escalations in a circuit breaker and a concurrency
// shedder, and degrades gracefully when the backend is down: the
// uncertain band is answered by the local scorer, the decisions are
// marked Deferred, and a background re-escalator replays them against
// the LLM once the breaker closes — converging to the decisions a
// healthy run would have made. Store.ResolveContext propagates a
// per-request deadline into in-flight LLM work; Store.Degraded
// reports the active degraded mode for readiness probes.
type (
	// ResilienceOptions enables and tunes the store's fault-tolerance
	// layer (breaker, shedder, deferred re-escalation, hedging).
	ResilienceOptions = resolve.ResilienceOptions
	// BreakerOptions tunes the circuit breaker's trip and recovery
	// behaviour.
	BreakerOptions = resilience.BreakerOptions
	// ShedOptions bounds concurrent and queued LLM escalations.
	ShedOptions = resilience.ShedOptions
	// ResilienceStats snapshots the fault-tolerance layer inside
	// StoreStats: breaker state, shed counts, deferred queue depth.
	ResilienceStats = resolve.ResilienceStats
	// ContextClient is the optional context-aware extension of Client:
	// implement it so per-request deadlines cancel in-flight calls.
	ContextClient = llm.ContextClient
)

// MethodDeferred marks a decision answered by the local scorer while
// the LLM was unavailable; the re-escalator later replaces it with
// the model's verdict.
const MethodDeferred = resolve.MethodDeferred

// Typed fault-tolerance errors, matched with errors.Is.
var (
	// ErrOverloaded marks an escalation rejected by the load shedder;
	// callers should retry later (emserve answers 503).
	ErrOverloaded = resilience.ErrShed
	// ErrBreakerOpen marks a call rejected by an open circuit breaker.
	// Stores degrade instead of surfacing it; direct users of the
	// resilience guard see it.
	ErrBreakerOpen = resilience.ErrOpen
)

// TransientErrorAfter is TransientError carrying a retry-after hint,
// the way a 429 response carries a Retry-After header: the pipeline
// sleeps exactly the hinted duration before the next attempt instead
// of its jittered exponential backoff.
func TransientErrorAfter(err error, retryAfter time.Duration) error {
	return pipeline.TransientAfter(err, retryAfter)
}

// RetryAfterHint extracts the retry-after hint attached by
// TransientErrorAfter, reporting false when err carries none.
func RetryAfterHint(err error) (time.Duration, bool) { return pipeline.RetryAfter(err) }

// Telemetry and request tracing.
type (
	// Telemetry is a dependency-free metrics handle: atomic counters,
	// gauges and latency histograms for every layer of the store
	// (resolve stages, cascade outcomes, dispatcher batches, LLM calls,
	// WAL/snapshot durability), rendered as Prometheus text exposition
	// via WritePrometheus. Wire one into StoreOptions.Telemetry; a nil
	// handle disables all instrumentation.
	Telemetry = telemetry.Telemetry
	// TelemetryOptions configures a Telemetry handle: the slow-resolve
	// exemplar threshold and the slog logger it writes to.
	TelemetryOptions = telemetry.Options
	// Trace is a per-request span record: attach one to a context with
	// ContextWithTrace and Store.ResolveContext fills in per-stage
	// durations under the request's trace ID.
	Trace = telemetry.Trace
)

// NewTelemetry builds a telemetry handle with every store metric
// family registered.
func NewTelemetry(opts TelemetryOptions) *Telemetry { return telemetry.New(opts) }

// NewTrace returns a request trace. An empty id generates one.
func NewTrace(id string) *Trace { return telemetry.NewTrace(id) }

// ContextWithTrace attaches a request trace to a context for
// Store.ResolveContext.
func ContextWithTrace(ctx context.Context, t *Trace) context.Context {
	return telemetry.WithTrace(ctx, t)
}

// TraceFromContext returns the trace attached to the context, or nil.
func TraceFromContext(ctx context.Context) *Trace { return telemetry.FromContext(ctx) }

// Language models.
type (
	// Client is the chat interface of all models.
	Client = llm.Client
	// Model is a simulated LLM.
	Model = llm.Model
	// Message is one chat turn.
	Message = llm.Message
	// Response is a chat reply with usage accounting.
	Response = llm.Response
	// Adapter is the state of a fine-tuned model variant.
	Adapter = llm.Adapter
)

// Model names of the study.
const (
	GPTMini = llm.GPTMini
	GPT4    = llm.GPT4
	GPT4o   = llm.GPT4o
	Llama2  = llm.Llama2
	Llama31 = llm.Llama31
	Mixtral = llm.Mixtral
)

// NewModel returns the simulated model with the given study name.
func NewModel(name string) (*Model, error) { return llm.New(name) }

// StudyModels lists the six models of the study.
func StudyModels() []string { return llm.StudyModels() }

// Prompt construction.
type (
	// Design is a zero-shot prompt design.
	Design = prompt.Design
	// Spec fully describes a prompt to build.
	Spec = prompt.Spec
	// Strategy selects the prompt formulation for a query's uncertain
	// candidate band: StrategyMatch (independent pairwise prompts),
	// StrategyCompare or StrategySelect (one grouped prompt per
	// escalated query). Set it via CascadeOptions.Strategy.
	Strategy = prompt.Strategy
)

// Uncertain-band prompt strategies.
const (
	StrategyMatch   = prompt.StrategyMatch
	StrategyCompare = prompt.StrategyCompare
	StrategySelect  = prompt.StrategySelect
)

// Strategies returns the uncertain-band strategies in ablation order.
func Strategies() []Strategy { return prompt.Strategies() }

// ParseStrategy maps a flag value ("match", "compare", "select"; ""
// selects StrategyMatch) to a Strategy.
func ParseStrategy(name string) (Strategy, error) { return prompt.ParseStrategy(name) }

// Designs returns the ten prompt designs of the study.
func Designs() []Design { return prompt.Designs() }

// DesignByName returns a design by its table name, e.g.
// "general-complex-force".
func DesignByName(name string) (Design, error) { return prompt.DesignByName(name) }

// Datasets.

// Dataset is one materialized benchmark.
type Dataset = datasets.Dataset

// LoadDataset materializes a benchmark by key: wdc, ab, wa, ag, ds,
// da.
func LoadDataset(key string) (*Dataset, error) { return datasets.Load(key) }

// DatasetKeys lists the benchmark keys in the paper's order.
func DatasetKeys() []string { return datasets.Keys() }

// In-context learning.

// NewRandomSelector selects demonstrations uniformly from the pool.
func NewRandomSelector(pool []Pair, seed string) DemoSelector { return icl.NewRandom(pool, seed) }

// NewRelatedSelector selects the most similar demonstrations by
// Generalized Jaccard similarity.
func NewRelatedSelector(pool []Pair) DemoSelector { return icl.NewRelated(pool) }

// NewHandpickedSelector serves a fixed, curated demonstration set.
func NewHandpickedSelector(demos []Pair) DemoSelector { return icl.NewHandpicked(demos) }

// CurateHandpicked emulates a data engineer curating diverse
// corner-case demonstrations from a training pool.
func CurateHandpicked(pool []Pair, n int) []Pair { return icl.CurateHandpicked(pool, n) }

// Matching rules.

// HandwrittenRules returns the handwritten rule set for a domain.
func HandwrittenRules(domain Domain) []string { return rules.Handwritten(domain) }

// LearnRules asks a model to derive matching rules from labelled
// examples.
func LearnRules(client Client, domain Domain, examples []Pair) ([]string, error) {
	return rules.Learn(client, domain, examples)
}

// Fine-tuning.

// FineTuneOptions configures FineTune.
type FineTuneOptions = finetune.Options

// FineTune fits an adapter for a model on a dataset (train +
// validation pools) and returns the fine-tuned client.
func FineTune(model string, ds *Dataset, opts FineTuneOptions) (*Model, error) {
	adapter, err := finetune.Train(model, ds, opts)
	if err != nil {
		return nil, err
	}
	return llm.NewFineTuned(model, adapter)
}

// Explanations.
type (
	// Explanation is a parsed structured explanation of a decision.
	Explanation = explain.Explanation
	// ExplanationAttribute is one attribute row of an explanation.
	ExplanationAttribute = explain.Attribute
)

// Explain runs the two-turn explanation conversation of the paper's
// Section 6 for one pair.
func Explain(client Client, design Design, domain Domain, pair Pair) (Explanation, error) {
	return explain.Generate(client, design, domain, pair)
}
