// Bibliographic matching: the second domain of the study — matching
// publication records between DBLP and Google Scholar.
//
// The example shows the privacy-sensitive deployment path of the
// paper's conclusion: if hosted models are not an option, fine-tune a
// locally runnable open-source model on the available training data
// and match on local hardware.
package main

import (
	"fmt"
	"log"

	"llm4em"
)

func main() {
	ds, err := llm4em.LoadDataset("ds")
	if err != nil {
		log.Fatal(err)
	}
	test := ds.Test[:300]
	design, err := llm4em.DesignByName("domain-simple-force")
	if err != nil {
		log.Fatal(err)
	}

	// Baseline: the open-source model out of the box.
	base, err := llm4em.NewModel(llm4em.Llama31)
	if err != nil {
		log.Fatal(err)
	}
	zero := llm4em.Matcher{Client: base, Design: design, Domain: ds.Schema.Domain}
	zeroRes, err := zero.Evaluate(test)
	if err != nil {
		log.Fatal(err)
	}

	// Fine-tune Llama 3.1 on the DBLP-Scholar development data
	// (10 epochs with the domain-simple-force prompt, as in the
	// paper's Section 4.3).
	fmt.Println("fine-tuning Llama3.1 on DBLP-Scholar …")
	tuned, err := llm4em.FineTune(llm4em.Llama31, ds, llm4em.FineTuneOptions{Epochs: 10})
	if err != nil {
		log.Fatal(err)
	}
	ft := llm4em.Matcher{Client: tuned, Design: design, Domain: ds.Schema.Domain}
	ftRes, err := ft.Evaluate(test)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("\nDBLP-Scholar (300 test pairs):\n")
	fmt.Printf("  Llama3.1 zero-shot:  F1 = %6.2f  (%.2fs per record pair)\n",
		zeroRes.F1(), zeroRes.MeanLatency().Seconds())
	fmt.Printf("  Llama3.1 fine-tuned: F1 = %6.2f  (%.2fs per record pair, quantized local deployment)\n",
		ftRes.F1(), ftRes.MeanLatency().Seconds())

	// Show one publication pair and the model's raw answer.
	d, err := ft.MatchPair(test[0])
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nexample pair:\n  DBLP:    %s\n  Scholar: %s\n  answer:  %s (gold match=%v)\n",
		d.Pair.A.Serialize(), d.Pair.B.Serialize(), d.Answer, d.Pair.Match)
}
