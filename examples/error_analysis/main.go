// Error analysis: the Section 6/7 workflow — generate structured
// explanations for matching decisions, aggregate them into global
// attribute importances, and let the LLM discover error classes from
// its own mistakes.
package main

import (
	"fmt"
	"log"

	"llm4em"
	"llm4em/internal/core"
	"llm4em/internal/datasets"
	"llm4em/internal/errorclass"
	"llm4em/internal/explain"
	"llm4em/internal/llm"
)

func main() {
	ds, err := datasets.Load("wa")
	if err != nil {
		log.Fatal(err)
	}
	pairs := ds.Test[:400]
	client := llm.MustNew(llm.GPT4)
	design, err := llm4em.DesignByName("domain-complex-force")
	if err != nil {
		log.Fatal(err)
	}

	// 1. Match and keep the per-pair decisions.
	matcher := &core.Matcher{Client: client, Design: design, Domain: ds.Schema.Domain}
	res, err := matcher.EvaluateKeeping(pairs)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("matched %d pairs: F1 = %.2f\n", len(pairs), res.F1())

	// 2. Ask the model to explain one decision (two-turn
	// conversation, Figure 4).
	exp, err := llm4em.Explain(client, design, ds.Schema.Domain, pairs[0])
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nstructured explanation for pair %s (predicted match=%v):\n", pairs[0].ID, exp.Predicted)
	for _, a := range exp.Attributes {
		fmt.Printf("  %-10s importance %+5.2f similarity %.2f\n", a.Name, a.Importance, a.Similarity)
	}

	// 3. Generate explanations for every pair and aggregate.
	exps, err := explain.GenerateAll(client, design, ds.Schema.Domain, pairs)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nglobal attribute importance (Table 10 style):")
	for i, r := range explain.Aggregate(exps) {
		if i == 5 {
			break
		}
		fmt.Printf("  %-10s matches: freq %.2f imp %+5.2f | non-matches: freq %.2f imp %+5.2f\n",
			r.Attribute, r.MatchFreq, r.MatchMean, r.NonFreq, r.NonMean)
	}

	// 4. Discover error classes from the wrong decisions.
	fps, fns := errorclass.CollectErrors(res.Decisions, exps)
	fmt.Printf("\n%d false positives, %d false negatives\n", len(fps), len(fns))
	turbo := llm.MustNew(llm.GPT4Turbo)
	for _, block := range []struct {
		label string
		cases []errorclass.Case
		fp    bool
	}{
		{"false positives", fps, true},
		{"false negatives", fns, false},
	} {
		if len(block.cases) == 0 {
			continue
		}
		classes, err := errorclass.Discover(turbo, ds.Schema.Domain, block.cases, block.fp)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("\nerror classes for %s:\n", block.label)
		for _, cc := range errorclass.CountByExpert(classes, block.cases) {
			fmt.Printf("  [%2d errors] %s\n", cc.Errors, cc.Class.Name)
		}
	}
}
