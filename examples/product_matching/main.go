// Product matching: the e-commerce scenario that motivates the paper
// — matching offers from different vendors, e.g. for price tracking.
//
// The example compares the strategies of the study on a slice of the
// Walmart-Amazon benchmark: zero-shot prompting, in-context learning
// with related demonstrations, and domain rules, and shows how the
// best strategy depends on the model.
package main

import (
	"fmt"
	"log"

	"llm4em"
)

func main() {
	ds, err := llm4em.LoadDataset("wa")
	if err != nil {
		log.Fatal(err)
	}
	test := ds.Test[:300]
	design, err := llm4em.DesignByName("general-complex-force")
	if err != nil {
		log.Fatal(err)
	}

	// Demonstration pool and rules, both built from the training data
	// a practitioner would have.
	related := llm4em.NewRelatedSelector(ds.TrainVal())
	productRules := llm4em.HandwrittenRules(llm4em.Product)

	fmt.Println("strategy comparison on Walmart-Amazon (300 test pairs):")
	fmt.Printf("%-10s %12s %18s %12s\n", "model", "zero-shot", "few-shot related", "rules")
	for _, name := range []string{llm4em.GPT4, llm4em.GPTMini, llm4em.Mixtral} {
		model, err := llm4em.NewModel(name)
		if err != nil {
			log.Fatal(err)
		}
		// One matcher per strategy: a Matcher carries its own engine
		// state and must not be copied once used.
		zero := llm4em.Matcher{Client: model, Design: design, Domain: ds.Schema.Domain}
		zeroRes, err := zero.Evaluate(test)
		if err != nil {
			log.Fatal(err)
		}
		few := llm4em.Matcher{Client: model, Design: design, Domain: ds.Schema.Domain, Demos: related, Shots: 10}
		fewRes, err := few.Evaluate(test)
		if err != nil {
			log.Fatal(err)
		}
		ruled := llm4em.Matcher{Client: model, Design: design, Domain: ds.Schema.Domain, Rules: productRules}
		ruledRes, err := ruled.Evaluate(test)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-10s %12.2f %18.2f %12.2f\n", name, zeroRes.F1(), fewRes.F1(), ruledRes.F1())
	}
	fmt.Println("\nNote how rules rescue Mixtral while demonstrations barely help it —")
	fmt.Println("the usefulness of each strategy depends on the model (Section 4).")
}
