// Serving: run an online entity-resolution store — the deployment
// shape behind cmd/emserve. Records are added incrementally, queries
// resolve against the sharded IDF index, and a cascade matcher
// answers confident candidate pairs with the local calibrated scorer
// so only the genuinely uncertain band pays for an LLM call.
package main

import (
	"fmt"
	"log"

	"llm4em"
)

func offer(id, title, price string) llm4em.Record {
	return llm4em.Record{ID: id, Attrs: []llm4em.Attr{
		{Name: "title", Value: title},
		{Name: "price", Value: price},
	}}
}

func main() {
	// 1. Build a store over GPT-mini — the cheap hosted model is the
	// natural choice when the cascade only escalates hard pairs.
	model, err := llm4em.NewModel(llm4em.GPTMini)
	if err != nil {
		log.Fatal(err)
	}
	store := llm4em.NewStore(model, llm4em.StoreOptions{
		Domain: llm4em.Product,
		Cascade: llm4em.CascadeOptions{
			AcceptAbove: 0.90, // accept locally at >= 90% probability
			RejectBelow: 0.15, // reject locally at <= 15%
		},
	})

	// 2. Ingest a small catalog.
	catalog := []llm4em.Record{
		offer("r1", "Sony DSC-120B Cybershot camera black", "348.00"),
		offer("r2", "sony dsc120b cyber-shot digital camera (black)", "351.00"),
		offer("r3", "Makita XDT13 impact driver kit 18V", "129.00"),
		offer("r4", "Epson WorkForce 845 all-in-one printer", "199.00"),
	}
	if err := store.AddBatch(catalog); err != nil {
		log.Fatal(err)
	}

	// 3. Resolve incoming offers. Each result reports which cascade
	// stage decided every candidate pair and what the LLM share cost.
	queries := []llm4em.Record{
		offer("q1", "SONY Cyber-shot DSC120B camera, black", "349.99"),
		offer("q2", "bosch gsr cordless drill driver", "99.00"),
		// q3 is genuinely ambiguous (same product line as r3, no model
		// number): the cascade escalates it to the LLM.
		{ID: "q3", Attrs: []llm4em.Attr{
			{Name: "title", Value: "makita impact driver kit 18v with case"},
		}},
	}
	for _, q := range queries {
		res, err := store.Resolve(q)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%s -> entity %s (matched=%v)\n", q.ID, res.EntityID, res.Matched())
		for _, d := range res.Decisions {
			fmt.Printf("  vs %-3s p=%.2f %-15s match=%v\n",
				d.CandidateID, d.Probability, d.Method, d.Match)
		}
		fmt.Printf("  cost: %d/%d pairs to the LLM (%.0f%% local), %.4f cents\n",
			res.Cost.LLMPairs, res.Cost.Candidates,
			100*res.Cost.LocalFraction(), res.Cost.Cents)
	}

	// 4. Entity groups fold transitively: r1 and r2 were separate
	// records until q1 matched both.
	fmt.Println("\nentities:")
	for _, group := range store.Snapshot() {
		fmt.Printf("  %v\n", group)
	}

	// 5. Lifetime counters — the numbers a deployment would watch.
	st := store.Stats()
	fmt.Printf("\nstats: %d records, %d entities, %d resolves, %.0f%% of pairs decided locally\n",
		st.Records, st.Entities, st.Resolves, 100*st.LocalFraction())
}
