// Quickstart: match two product offers with an LLM, inspect the
// generated answer, and evaluate a small benchmark slice.
package main

import (
	"fmt"
	"log"

	"llm4em"
)

func main() {
	// 1. Pick a model and a prompt design. GPT-4 with the
	// general-complex-force design is the strongest zero-shot setup of
	// the study.
	model, err := llm4em.NewModel(llm4em.GPT4)
	if err != nil {
		log.Fatal(err)
	}
	design, err := llm4em.DesignByName("general-complex-force")
	if err != nil {
		log.Fatal(err)
	}
	matcher := llm4em.Matcher{Client: model, Design: design, Domain: llm4em.Product}

	// 2. Match a pair of entity descriptions.
	pair := llm4em.Pair{
		ID: "quickstart",
		A: llm4em.Record{ID: "offer-1", Attrs: []llm4em.Attr{
			{Name: "title", Value: "DYMO D1 Tape 12mm x 7m"},
			{Name: "price", Value: "12.99"},
		}},
		B: llm4em.Record{ID: "offer-2", Attrs: []llm4em.Attr{
			{Name: "title", Value: "dymo d1 label cassette tape 12mm"},
			{Name: "price", Value: "13.50"},
		}},
	}
	decision, err := matcher.MatchPair(pair)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("model answer: %q\nparsed decision: match=%v\n\n", decision.Answer, decision.Match)

	// 3. Evaluate on a slice of the WDC Products benchmark.
	// Evaluation runs on the concurrent matching pipeline; Workers,
	// CacheSize and MaxRetries tune its pool, prompt cache and retry
	// (zero values select the defaults).
	ds, err := llm4em.LoadDataset("wdc")
	if err != nil {
		log.Fatal(err)
	}
	matcher.Domain = ds.Schema.Domain
	matcher.Workers = 8
	result, err := matcher.Evaluate(ds.Test[:200])
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("WDC Products (200 test pairs): F1 = %.2f, precision = %.2f, recall = %.2f\n",
		result.F1(), result.Confusion.Precision(), result.Confusion.Recall())
	fmt.Printf("mean prompt length: %.0f tokens, mean latency: %.2fs\n",
		result.MeanPromptTokens(), result.MeanLatency().Seconds())
}
