// End-to-end deduplication: the full integration pipeline the paper's
// introduction motivates — block a dirty offer collection into
// candidate pairs, match the candidates with an LLM, and cluster the
// decisions into entities (e.g. for price tracking across vendors).
package main

import (
	"fmt"
	"log"

	"llm4em"
	"llm4em/internal/blocking"
	"llm4em/internal/datasets"
	"llm4em/internal/entity"
)

func main() {
	// Build a dirty offer collection from the WDC Products test split:
	// both sides of the first pairs, so the collection contains
	// duplicates.
	ds, err := datasets.Load("wdc")
	if err != nil {
		log.Fatal(err)
	}
	var records []entity.Record
	seen := map[string]bool{}
	for _, p := range ds.Test[:150] {
		for _, r := range []entity.Record{p.A, p.B} {
			if !seen[r.ID] {
				records = append(records, r)
				seen[r.ID] = true
			}
		}
	}
	fmt.Printf("collection: %d offers\n", len(records))

	// 1. Blocking: reduce the quadratic pair space.
	blocker := &blocking.TokenBlocker{MaxCandidates: 5}
	candidates := blocker.Dedup(records)
	total := len(records) * (len(records) - 1) / 2
	fmt.Printf("blocking: %d candidate pairs (%.1f%% of the %d possible)\n",
		len(candidates), 100*float64(len(candidates))/float64(total), total)

	// 2. Matching: decide each candidate with GPT-mini (the
	// cost-efficient hosted model).
	model, err := llm4em.NewModel(llm4em.GPTMini)
	if err != nil {
		log.Fatal(err)
	}
	design, err := llm4em.DesignByName("domain-complex-force")
	if err != nil {
		log.Fatal(err)
	}
	matcher := llm4em.Matcher{Client: model, Design: design, Domain: ds.Schema.Domain}
	decisions := make([]bool, len(candidates))
	matches := 0
	for i, c := range candidates {
		d, err := matcher.MatchPair(c)
		if err != nil {
			log.Fatal(err)
		}
		decisions[i] = d.Match
		if d.Match {
			matches++
		}
	}
	fmt.Printf("matching: %d of %d candidates decided as duplicates\n", matches, len(candidates))

	// 3. Clustering: union-find over the positive decisions.
	clusters := blocking.Cluster(candidates, decisions)
	multi := 0
	var example []string
	for _, c := range clusters {
		if len(c) > 1 {
			multi++
			if example == nil {
				example = c
			}
		}
	}
	fmt.Printf("clustering: %d entities, %d with more than one offer\n", len(clusters), multi)
	if example != nil {
		fmt.Println("\nexample duplicate cluster:")
		byID := map[string]entity.Record{}
		for _, r := range records {
			byID[r.ID] = r
		}
		for _, id := range example {
			fmt.Printf("  - %s\n", byID[id].Serialize())
		}
	}
}
