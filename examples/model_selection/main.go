// Model selection: the Section 5 cost/quality trade-off — compare
// matching quality, per-pair cost and latency across hosted models
// and a locally fine-tuned alternative to pick a deployment.
package main

import (
	"fmt"
	"log"

	"llm4em"
	"llm4em/internal/cost"
)

func main() {
	ds, err := llm4em.LoadDataset("wdc")
	if err != nil {
		log.Fatal(err)
	}
	test := ds.Test[:300]
	design, err := llm4em.DesignByName("domain-complex-force")
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("deployment comparison on WDC Products (300 test pairs):")
	fmt.Printf("%-22s %8s %14s %12s\n", "deployment", "F1", "cost/1k pairs", "latency/pair")

	for _, name := range []string{llm4em.GPTMini, llm4em.GPT4o, llm4em.GPT4} {
		model, err := llm4em.NewModel(name)
		if err != nil {
			log.Fatal(err)
		}
		m := llm4em.Matcher{Client: model, Design: design, Domain: ds.Schema.Domain}
		res, err := m.Evaluate(test)
		if err != nil {
			log.Fatal(err)
		}
		pricing, _ := cost.For(name)
		cents := cost.PerPromptCents(pricing, res.MeanPromptTokens(), res.MeanCompletionTokens())
		fmt.Printf("%-22s %8.2f %13.2f¢ %11.2fs\n",
			name+" (hosted)", res.F1(), cents*1000, res.MeanLatency().Seconds())
	}

	// Fine-tuned hosted GPT-mini: the paper's best cost/quality spot
	// when training data exists.
	tuned, err := llm4em.FineTune(llm4em.GPTMini, ds, llm4em.FineTuneOptions{Epochs: 10})
	if err != nil {
		log.Fatal(err)
	}
	m := llm4em.Matcher{Client: tuned, Design: design, Domain: ds.Schema.Domain}
	res, err := m.Evaluate(test)
	if err != nil {
		log.Fatal(err)
	}
	ftPricing, _ := cost.ForFineTuned(llm4em.GPTMini)
	cents := cost.PerPromptCents(ftPricing.Inference, res.MeanPromptTokens(), res.MeanCompletionTokens())
	fmt.Printf("%-22s %8.2f %13.2f¢ %11.2fs\n",
		"GPT-mini (fine-tuned)", res.F1(), cents*1000, res.MeanLatency().Seconds())

	// Local open-source model: no API cost, slower hardware.
	local, err := llm4em.NewModel(llm4em.Llama31)
	if err != nil {
		log.Fatal(err)
	}
	lm := llm4em.Matcher{Client: local, Design: design, Domain: ds.Schema.Domain}
	lres, err := lm.Evaluate(test)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%-22s %8.2f %14s %11.2fs\n",
		"Llama3.1 (local)", lres.F1(), "GPU only", lres.MeanLatency().Seconds())

	fmt.Println("\nRule of thumb (paper, Section 9): with training data, fine-tuning the cheap")
	fmt.Println("hosted model gives near-GPT-4 quality at a fraction of the cost; without")
	fmt.Println("training data, GPT-4 zero-shot; with privacy constraints, a local model.")
}
