// Durability: run an online resolution store backed by a write-ahead
// log and snapshots, kill it, and reopen it — the recovered store has
// every record, every entity group and every already-paid match
// decision, so nothing is sent to the LLM twice across restarts.
package main

import (
	"fmt"
	"log"
	"os"

	"llm4em"
)

func offer(id, title string) llm4em.Record {
	return llm4em.Record{ID: id, Attrs: []llm4em.Attr{{Name: "title", Value: title}}}
}

func main() {
	dir, err := os.MkdirTemp("", "llm4em-durable")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)

	model, err := llm4em.NewModel(llm4em.GPTMini)
	if err != nil {
		log.Fatal(err)
	}
	opts := llm4em.StoreOptions{
		Domain:     llm4em.Product,
		PersistDir: dir, // WAL + snapshots live here
	}

	// 1. First process lifetime: ingest and resolve. Every record and
	// every match decision is journaled to the WAL as it happens.
	store, err := llm4em.OpenStore(model, opts)
	if err != nil {
		log.Fatal(err)
	}
	if err := store.AddBatch([]llm4em.Record{
		offer("r1", "Sony DSC-120B Cybershot camera black"),
		offer("r2", "Makita XDT13 impact driver kit 18V"),
	}); err != nil {
		log.Fatal(err)
	}
	res, err := store.Resolve(offer("q1", "sony dsc120b cyber-shot camera (black)"))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("before crash: q1 -> entity %s, %d candidate pairs, %d to the LLM\n",
		res.EntityID, res.Cost.Candidates, res.Cost.LLMPairs)
	// No Close: simulate a crash. The WAL retains everything; only an
	// OS-level crash could lose unsynced appends (tune SyncEvery).

	// 2. Second process lifetime: reopen the directory. Recovery
	// rebuilds the index, the entity groups and the decision journal
	// from snapshot + WAL without a single LLM call.
	store2, err := llm4em.OpenStore(model, opts)
	if err != nil {
		log.Fatal(err)
	}
	ps := store2.Stats().Persist
	fmt.Printf("recovered: %d records, %d decisions, %d resolves (torn tail: %v)\n",
		ps.RecoveredRecords, ps.RecoveredDecisions, ps.RecoveredResolves, ps.TruncatedTail)

	// 3. Re-resolving a seen query is served from the durable decision
	// journal — zero LLM pairs, decisions marked Journaled.
	res, err = store2.Resolve(offer("q1", "sony dsc120b cyber-shot camera (black)"))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("after recovery: q1 -> entity %s, journal hits %d, LLM pairs %d\n",
		res.EntityID, res.Cost.JournalHits, res.Cost.LLMPairs)
	for _, d := range res.Decisions {
		fmt.Printf("  vs %s: match=%v method=%s journaled=%v\n",
			d.CandidateID, d.Match, d.Method, d.Journaled)
	}

	// 4. Clean shutdown: drain, flush, final snapshot + compaction.
	if err := store2.Close(); err != nil {
		log.Fatal(err)
	}
	fmt.Println("closed: state compacted into snapshot")
}
