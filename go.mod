module llm4em

go 1.23
