package llm4em_test

import (
	"errors"
	"strings"
	"testing"

	"llm4em"
)

func TestFacadeMatchingWorkflow(t *testing.T) {
	model, err := llm4em.NewModel(llm4em.GPT4)
	if err != nil {
		t.Fatal(err)
	}
	design, err := llm4em.DesignByName("general-complex-force")
	if err != nil {
		t.Fatal(err)
	}
	matcher := llm4em.Matcher{Client: model, Design: design, Domain: llm4em.Product}
	pair := llm4em.Pair{
		ID:    "facade",
		A:     llm4em.Record{ID: "a", Attrs: []llm4em.Attr{{Name: "title", Value: "Sony DSC-120B camera black"}, {Name: "price", Value: "348.00"}}},
		B:     llm4em.Record{ID: "b", Attrs: []llm4em.Attr{{Name: "title", Value: "sony dsc120b camera black"}, {Name: "price", Value: "351.00"}}},
		Match: true,
	}
	d, err := matcher.MatchPair(pair)
	if err != nil {
		t.Fatal(err)
	}
	if !d.Match {
		t.Errorf("facade matcher failed on easy pair: %q", d.Answer)
	}
}

func TestFacadeDatasets(t *testing.T) {
	keys := llm4em.DatasetKeys()
	if len(keys) != 6 {
		t.Fatalf("DatasetKeys = %v", keys)
	}
	ds, err := llm4em.LoadDataset("wdc")
	if err != nil {
		t.Fatal(err)
	}
	if ds.Name != "WDC Products" {
		t.Errorf("dataset name = %q", ds.Name)
	}
	if _, err := llm4em.LoadDataset("bogus"); err == nil {
		t.Error("unknown dataset should error")
	}
}

func TestFacadeSelectorsAndRules(t *testing.T) {
	ds, err := llm4em.LoadDataset("wdc")
	if err != nil {
		t.Fatal(err)
	}
	pool := ds.TrainVal()
	for name, sel := range map[string]llm4em.DemoSelector{
		"random":     llm4em.NewRandomSelector(pool, "seed"),
		"related":    llm4em.NewRelatedSelector(pool),
		"handpicked": llm4em.NewHandpickedSelector(llm4em.CurateHandpicked(pool, 10)),
	} {
		demos := sel.Select(ds.Test[0], 6)
		if len(demos) != 6 {
			t.Errorf("%s selector returned %d demos", name, len(demos))
		}
	}
	rules := llm4em.HandwrittenRules(llm4em.Product)
	if len(rules) == 0 {
		t.Error("no handwritten rules")
	}
	model, _ := llm4em.NewModel(llm4em.GPT4)
	learned, err := llm4em.LearnRules(model, llm4em.Product, llm4em.CurateHandpicked(pool, 10))
	if err != nil {
		t.Fatal(err)
	}
	if len(learned) == 0 {
		t.Error("no learned rules")
	}
}

func TestFacadeFineTuneAndExplain(t *testing.T) {
	ds, err := llm4em.LoadDataset("ab")
	if err != nil {
		t.Fatal(err)
	}
	tuned, err := llm4em.FineTune(llm4em.GPTMini, ds, llm4em.FineTuneOptions{Epochs: 3})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(tuned.Name(), "ft-ab") {
		t.Errorf("fine-tuned name = %q", tuned.Name())
	}
	model, _ := llm4em.NewModel(llm4em.GPT4)
	design, _ := llm4em.DesignByName("domain-complex-force")
	exp, err := llm4em.Explain(model, design, ds.Schema.Domain, ds.Test[0])
	if err != nil {
		t.Fatal(err)
	}
	if len(exp.Attributes) == 0 {
		t.Error("explanation has no attributes")
	}
}

func TestFacadeParseAnswer(t *testing.T) {
	if !llm4em.ParseAnswer("Yes, they match.") || llm4em.ParseAnswer("Probably not.") {
		t.Error("ParseAnswer facade broken")
	}
}

func TestFacadeStudyModels(t *testing.T) {
	models := llm4em.StudyModels()
	if len(models) != 6 {
		t.Fatalf("StudyModels = %v", models)
	}
	for _, name := range models {
		if _, err := llm4em.NewModel(name); err != nil {
			t.Errorf("NewModel(%s): %v", name, err)
		}
	}
}

func TestFacadeEngine(t *testing.T) {
	model, err := llm4em.NewModel(llm4em.GPTMini)
	if err != nil {
		t.Fatal(err)
	}
	eng := llm4em.NewEngine(model, llm4em.EngineOptions{Workers: 4})
	prompts := []string{"Do 'a' and 'a' match?", "Do 'a' and 'a' match?"}
	completions, err := eng.CompleteAll(prompts)
	if err != nil {
		t.Fatal(err)
	}
	// Exactly one of the two identical prompts hits the client; which
	// copy coalesces onto the other depends on scheduling.
	if len(completions) != 2 || completions[0].Cached == completions[1].Cached {
		t.Fatalf("exactly one duplicate should be served from cache: %+v", completions)
	}
	if s := eng.Stats(); s.ClientCalls != 1 || s.CacheHits != 1 {
		t.Fatalf("stats = %+v, want 1 call and 1 hit", s)
	}
}

func TestFacadeTransientErrors(t *testing.T) {
	err := errors.New("429 too many requests")
	if llm4em.IsTransientError(err) {
		t.Error("plain error must not be transient")
	}
	if !llm4em.IsTransientError(llm4em.TransientError(err)) {
		t.Error("TransientError must mark errors retryable")
	}
}

func TestFacadeBatchMatcher(t *testing.T) {
	ds, err := llm4em.LoadDataset("wdc")
	if err != nil {
		t.Fatal(err)
	}
	model, err := llm4em.NewModel(llm4em.GPT4)
	if err != nil {
		t.Fatal(err)
	}
	m := llm4em.BatchMatcher{Client: model, Domain: ds.Schema.Domain, BatchSize: 5, Workers: 4}
	r, err := m.Evaluate(ds.Test[:20])
	if err != nil {
		t.Fatal(err)
	}
	if r.Requests != 4 {
		t.Fatalf("requests = %d, want 4", r.Requests)
	}
	if got := llm4em.ParseBatchAnswers("1) Yes\n2) No", 2); !got[0] || got[1] {
		t.Fatalf("ParseBatchAnswers facade broken: %v", got)
	}
}

func TestFacadeStore(t *testing.T) {
	model, err := llm4em.NewModel(llm4em.GPTMini)
	if err != nil {
		t.Fatal(err)
	}
	store := llm4em.NewStore(model, llm4em.StoreOptions{
		Domain:  llm4em.Product,
		Cascade: llm4em.CascadeOptions{AcceptAbove: 0.9, RejectBelow: 0.15},
	})
	recs := []llm4em.Record{
		{ID: "r1", Attrs: []llm4em.Attr{{Name: "title", Value: "Sony DSC-120B camera black"}}},
		{ID: "r2", Attrs: []llm4em.Attr{{Name: "title", Value: "Makita impact drill kit"}}},
	}
	for _, r := range recs {
		if err := store.Add(r); err != nil {
			t.Fatal(err)
		}
	}
	res, err := store.Resolve(llm4em.Record{
		ID:    "q1",
		Attrs: []llm4em.Attr{{Name: "title", Value: "sony dsc120b camera black"}},
	})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Matched() {
		t.Fatalf("store missed an easy match: %+v", res)
	}
	if ent, ok := store.Entity("r1"); !ok || len(ent) != 2 {
		t.Errorf("Entity(r1) = %v %v, want q1+r1", ent, ok)
	}
	st := store.Stats()
	if st.Records != 2 || st.Resolves != 1 {
		t.Errorf("stats = %+v", st)
	}
	if got := len(store.Snapshot()); got != 2 {
		t.Errorf("snapshot has %d entities, want 2", got)
	}
}
