//go:build unix

package blocking

import (
	"os"
	"syscall"
)

// mmapSupported gates the mmap snapshot serving path per platform.
const mmapSupported = true

// mmapFile maps size bytes of f read-only. The returned release
// function unmaps; the file descriptor itself may be closed as soon as
// mmapFile returns (the mapping keeps the pages alive).
func mmapFile(f *os.File, size int) ([]byte, func() error, error) {
	data, err := syscall.Mmap(int(f.Fd()), 0, size, syscall.PROT_READ, syscall.MAP_SHARED)
	if err != nil {
		return nil, nil, err
	}
	return data, func() error { return syscall.Munmap(data) }, nil
}
