package blocking

import (
	"reflect"
	"strings"
	"testing"

	"llm4em/internal/datasets"
	"llm4em/internal/entity"
)

// corruptedCollection builds the record set the dirty-data
// differential test runs over: realistic product and bibliographic
// shapes pushed through every corruption kind, plus the degenerate
// shapes blocking must rank identically on both paths — unicode
// values, empty and all-empty fields, and a megabyte-sized blob value.
func corruptedCollection() []entity.Record {
	prod := entity.Schema{Domain: entity.Product,
		Attributes: []string{"brand", "title", "modelno", "price"}}
	bib := entity.Schema{Domain: entity.Publication,
		Attributes: []string{"authors", "title", "venue", "year"}}
	base := []entity.Record{
		prod.NewRecord("p1", "sony", "cybershot digital camera pro", "dsc-120b", "348.00"),
		prod.NewRecord("p2", "canon", "powershot camera silver 8gb", "sx620", "219.99"),
		prod.NewRecord("p3", "sony", "alpha mirrorless camera body", "a7iii", "1998.00"),
		bib.NewRecord("b1", "j smith a jones", "scalable entity matching systems", "vldb", "2004"),
		bib.NewRecord("b2", "m garcia", "approximate joins revisited", "sigmod conference", "2007"),
	}
	recs := append([]entity.Record{}, base...)
	for _, kind := range datasets.CorruptionKinds() {
		c := datasets.ForLevel("blocking-differential", kind, 2)
		for _, r := range base {
			cr := c.Corrupt(r)
			cr.ID = r.ID + "-" + string(kind)
			recs = append(recs, cr)
		}
	}
	recs = append(recs,
		entity.Record{ID: "uni", Attrs: []entity.Attr{
			{Name: "title", Value: "Čamera Ñikon ソニー φωτο émile"},
			{Name: "brand", Value: "ñikon"},
		}},
		entity.Record{ID: "empty-fields", Attrs: []entity.Attr{
			{Name: "title", Value: ""},
			{Name: "brand", Value: "sony"},
			{Name: "price", Value: ""},
		}},
		entity.Record{ID: "all-empty", Attrs: []entity.Attr{
			{Name: "title", Value: ""},
		}},
		entity.Record{ID: "blob", Attrs: []entity.Attr{
			{Name: "title", Value: "camera " + strings.Repeat("blobword ", 1<<17) + "sony"},
		}},
	)
	return recs
}

// TestQueryMatchesReferenceCorrupted extends the hot-path differential
// test to dirty-data inputs: on corrupted, unicode, empty-field and
// megabyte-blob records, the zero-allocation path must rank
// byte-identically (order AND scores) to the reference implementation
// for every query drawn from the same dirty collection.
func TestQueryMatchesReferenceCorrupted(t *testing.T) {
	recs := corruptedCollection()
	for _, stopFrac := range []float64{0, 0.3, 1} {
		ix := NewIndex(recs, stopFrac)
		queries := []string{
			"sony camera",
			"",
			"Čamera ソニー émile",
			"blobword camera",
			recs[len(recs)-1].Serialize(), // the megabyte blob itself
		}
		for _, r := range recs {
			queries = append(queries, r.Serialize())
		}
		for qi, text := range queries {
			for _, maxCandidates := range []int{0, 3, 1000} {
				got := ix.Query(text, maxCandidates, 0)
				want := referenceQuery(recs, stopFrac, text, maxCandidates, 0)
				if len(got) == 0 && len(want) == 0 {
					continue
				}
				if !reflect.DeepEqual(got, want) {
					t.Fatalf("stop=%v query %d (max=%d): hot path diverges from reference\n got %v\nwant %v",
						stopFrac, qi, maxCandidates, got, want)
				}
			}
		}
	}
}
