// Package blocking provides candidate generation for end-to-end
// matching pipelines. The paper's experiments start from given record
// pairs; a deployed matcher (the "central step in most data
// integration pipelines" of the introduction) first needs a blocker
// that reduces the quadratic pair space to likely candidates, and a
// clusterer that turns pairwise decisions into entity groups.
package blocking

import (
	"math"
	"sort"

	"llm4em/internal/entity"
	"llm4em/internal/tokenize"
)

// TokenBlocker generates candidate pairs by shared-token overlap with
// inverse-document-frequency weighting: pairs sharing rare tokens
// (model numbers, distinctive title words) are ranked first.
type TokenBlocker struct {
	// MaxCandidates is the maximum number of candidates kept per left
	// record (default 10).
	MaxCandidates int
	// MinScore is the minimum summed IDF weight for a candidate
	// (default 1.0).
	MinScore float64
	// StopDocFrac drops tokens occurring in more than this fraction
	// of records from the index (default 0.2).
	StopDocFrac float64
}

func (b *TokenBlocker) maxCandidates() int {
	if b.MaxCandidates <= 0 {
		return 10
	}
	return b.MaxCandidates
}

func (b *TokenBlocker) minScore() float64 {
	if b.MinScore <= 0 {
		return 1.0
	}
	return b.MinScore
}

func (b *TokenBlocker) stopDocFrac() float64 {
	if b.StopDocFrac <= 0 {
		return 0.2
	}
	return b.StopDocFrac
}

// Candidates blocks two record collections and returns unlabelled
// candidate pairs, ranked per left record by IDF-weighted token
// overlap.
func (b *TokenBlocker) Candidates(left, right []entity.Record) []entity.Pair {
	index, idf := buildIndex(right, b.stopDocFrac())
	var out []entity.Pair
	for _, l := range left {
		scores := map[int]float64{}
		seen := map[string]bool{}
		for _, t := range tokenize.Words(l.Serialize()) {
			if seen[t] {
				continue
			}
			seen[t] = true
			w, ok := idf[t]
			if !ok {
				continue
			}
			for _, ri := range index[t] {
				scores[ri] += w
			}
		}
		type cand struct {
			ri    int
			score float64
		}
		cands := make([]cand, 0, len(scores))
		for ri, sc := range scores {
			if sc >= b.minScore() {
				cands = append(cands, cand{ri, sc})
			}
		}
		sort.Slice(cands, func(i, j int) bool {
			if cands[i].score != cands[j].score {
				return cands[i].score > cands[j].score
			}
			return cands[i].ri < cands[j].ri
		})
		if len(cands) > b.maxCandidates() {
			cands = cands[:b.maxCandidates()]
		}
		for _, c := range cands {
			out = append(out, entity.Pair{
				ID: l.ID + "|" + right[c.ri].ID,
				A:  l,
				B:  right[c.ri],
			})
		}
	}
	return out
}

// Dedup blocks one collection against itself, returning each
// unordered candidate pair once and never pairing a record with
// itself.
func (b *TokenBlocker) Dedup(records []entity.Record) []entity.Pair {
	raw := b.Candidates(records, records)
	seen := map[string]bool{}
	pos := map[string]int{}
	for i, r := range records {
		pos[r.ID] = i
	}
	out := raw[:0]
	for _, p := range raw {
		if p.A.ID == p.B.ID {
			continue
		}
		i, j := pos[p.A.ID], pos[p.B.ID]
		if j < i {
			i, j = j, i
		}
		key := records[i].ID + "|" + records[j].ID
		if seen[key] {
			continue
		}
		seen[key] = true
		out = append(out, entity.Pair{ID: key, A: records[i], B: records[j]})
	}
	return out
}

// buildIndex builds an inverted token index with IDF weights over the
// records, dropping tokens more frequent than stopFrac.
func buildIndex(records []entity.Record, stopFrac float64) (map[string][]int, map[string]float64) {
	index := map[string][]int{}
	for i, r := range records {
		seen := map[string]bool{}
		for _, t := range tokenize.Words(r.Serialize()) {
			if !seen[t] {
				index[t] = append(index[t], i)
				seen[t] = true
			}
		}
	}
	n := float64(len(records))
	idf := map[string]float64{}
	for t, postings := range index {
		df := float64(len(postings))
		// Drop stop tokens: frequent both relatively and absolutely,
		// so tiny collections keep their vocabulary.
		if df/n > stopFrac && df >= 5 {
			delete(index, t)
			continue
		}
		idf[t] = math.Log(1 + n/df)
	}
	return index, idf
}

// PairRecall measures which fraction of gold matching pairs survived
// blocking — the standard blocker quality metric.
func PairRecall(candidates []entity.Pair, gold []entity.Pair) float64 {
	if len(gold) == 0 {
		return 1
	}
	have := map[string]bool{}
	for _, c := range candidates {
		have[c.A.ID+"|"+c.B.ID] = true
		have[c.B.ID+"|"+c.A.ID] = true
	}
	hit := 0
	for _, g := range gold {
		if have[g.A.ID+"|"+g.B.ID] {
			hit++
		}
	}
	return float64(hit) / float64(len(gold))
}

// Cluster groups records into entities from pairwise match decisions
// using union-find over the decided-match pairs. It returns the
// clusters as slices of record IDs, sorted for determinism.
func Cluster(pairs []entity.Pair, decisions []bool) [][]string {
	parent := map[string]string{}
	var find func(string) string
	find = func(x string) string {
		if parent[x] == "" || parent[x] == x {
			parent[x] = x
			return x
		}
		root := find(parent[x])
		parent[x] = root
		return root
	}
	union := func(a, b string) {
		ra, rb := find(a), find(b)
		if ra != rb {
			if rb < ra {
				ra, rb = rb, ra
			}
			parent[rb] = ra
		}
	}
	for i, p := range pairs {
		find(p.A.ID)
		find(p.B.ID)
		if i < len(decisions) && decisions[i] {
			union(p.A.ID, p.B.ID)
		}
	}
	groups := map[string][]string{}
	for id := range parent {
		root := find(id)
		groups[root] = append(groups[root], id)
	}
	out := make([][]string, 0, len(groups))
	for _, g := range groups {
		sort.Strings(g)
		out = append(out, g)
	}
	sort.Slice(out, func(i, j int) bool { return out[i][0] < out[j][0] })
	return out
}
