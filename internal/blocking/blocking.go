// Package blocking provides candidate generation for end-to-end
// matching pipelines. The paper's experiments start from given record
// pairs; a deployed matcher (the "central step in most data
// integration pipelines" of the introduction) first needs a blocker
// that reduces the quadratic pair space to likely candidates, and a
// clusterer that turns pairwise decisions into entity groups.
package blocking

import "llm4em/internal/entity"

// ExplicitZero requests a literal zero for the deprecated TokenBlocker
// threshold fields whose zero value selects a package default.
//
// Deprecated: set the corresponding IndexOptions field in
// TokenBlocker.Opts to Float(0) instead — the explicit pointer fields
// distinguish "unset" from "literal zero" without a sentinel.
const ExplicitZero = -1

// TokenBlocker generates candidate pairs by shared-token overlap with
// inverse-document-frequency weighting: pairs sharing rare tokens
// (model numbers, distinctive title words) are ranked first.
type TokenBlocker struct {
	// MaxCandidates is the maximum number of candidates kept per left
	// record (default 10).
	MaxCandidates int
	// Opts configures thresholds and the index representation: explicit
	// MinScore/StopDocFrac (nil selects the default, Float(0) a literal
	// zero) plus the Compression and Pruning knobs Candidates builds
	// its throwaway index with. A set Opts field wins over the
	// deprecated flat field below.
	Opts IndexOptions
	// MinScore is the minimum summed IDF weight for a candidate. The
	// zero value selects the default 1.0; a negative value
	// (ExplicitZero) accepts any positive overlap.
	//
	// Deprecated: set Opts.MinScore (Float(v); Float(0) replaces the
	// sentinel).
	MinScore float64
	// StopDocFrac drops tokens occurring in more than this fraction of
	// records (and in at least 5 of them) from the index. The zero
	// value selects the default 0.2; a negative value (ExplicitZero)
	// requests a literal zero fraction, any value >= 1 disables
	// stop-token filtering.
	//
	// Deprecated: set Opts.StopDocFrac (Float(v); Float(0) replaces the
	// sentinel).
	StopDocFrac float64
}

func (b *TokenBlocker) maxCandidates() int {
	if b.MaxCandidates <= 0 {
		return 10
	}
	return b.MaxCandidates
}

// indexOptions folds the deprecated flat threshold fields into the v1
// options struct: a set Opts pointer field wins, a non-zero legacy
// field (sentinels included — the IndexOptions resolvers map negatives
// to literal zero the same way) fills an unset one.
func (b *TokenBlocker) indexOptions() IndexOptions {
	o := b.Opts
	if o.MinScore == nil && b.MinScore != 0 {
		o.MinScore = Float(b.MinScore)
	}
	if o.StopDocFrac == nil && b.StopDocFrac != 0 {
		o.StopDocFrac = Float(b.StopDocFrac)
	}
	return o
}

func (b *TokenBlocker) minScore() float64 { return b.indexOptions().minScore() }

// Candidates blocks two record collections and returns unlabelled
// candidate pairs, ranked per left record by IDF-weighted token
// overlap. The index over right is built afresh; callers blocking
// repeatedly against a stable collection should build an Index once
// and use CandidatesIndexed.
func (b *TokenBlocker) Candidates(left, right []entity.Record) []entity.Pair {
	return b.CandidatesIndexed(left, BuildIndex(right, b.indexOptions()))
}

// CandidatesIndexed blocks the left records against a prebuilt Index,
// applying the blocker's candidate and score thresholds. The index's
// own stop-token fraction governs token filtering.
func (b *TokenBlocker) CandidatesIndexed(left []entity.Record, ix *Index) []entity.Pair {
	var out []entity.Pair
	for _, l := range left {
		for _, c := range ix.Query(l.Serialize(), b.maxCandidates(), b.minScore()) {
			r := ix.Record(c.Pos)
			out = append(out, entity.Pair{
				ID: l.ID + "|" + r.ID,
				A:  l,
				B:  r,
			})
		}
	}
	return out
}

// Dedup blocks one collection against itself, returning each
// unordered candidate pair once and never pairing a record with
// itself.
func (b *TokenBlocker) Dedup(records []entity.Record) []entity.Pair {
	raw := b.Candidates(records, records)
	seen := map[string]bool{}
	pos := map[string]int{}
	for i, r := range records {
		pos[r.ID] = i
	}
	out := raw[:0]
	for _, p := range raw {
		if p.A.ID == p.B.ID {
			continue
		}
		i, j := pos[p.A.ID], pos[p.B.ID]
		if j < i {
			i, j = j, i
		}
		key := records[i].ID + "|" + records[j].ID
		if seen[key] {
			continue
		}
		seen[key] = true
		out = append(out, entity.Pair{ID: key, A: records[i], B: records[j]})
	}
	return out
}

// PairRecall measures which fraction of gold matching pairs survived
// blocking — the standard blocker quality metric.
func PairRecall(candidates []entity.Pair, gold []entity.Pair) float64 {
	if len(gold) == 0 {
		return 1
	}
	have := map[string]bool{}
	for _, c := range candidates {
		have[c.A.ID+"|"+c.B.ID] = true
		have[c.B.ID+"|"+c.A.ID] = true
	}
	hit := 0
	for _, g := range gold {
		if have[g.A.ID+"|"+g.B.ID] {
			hit++
		}
	}
	return float64(hit) / float64(len(gold))
}

// Cluster groups records into entities from pairwise match decisions
// using union-find over the decided-match pairs. It returns the
// clusters as slices of record IDs, sorted for determinism. Pairs
// beyond the length of decisions count as non-matches; surplus
// decisions are ignored.
func Cluster(pairs []entity.Pair, decisions []bool) [][]string {
	u := NewUnionFind()
	for i, p := range pairs {
		u.Add(p.A.ID)
		u.Add(p.B.ID)
		if i < len(decisions) && decisions[i] {
			u.Union(p.A.ID, p.B.ID)
		}
	}
	return u.Groups()
}
