package blocking

import "encoding/binary"

// Compressed postings: each token's ascending record positions are
// delta-encoded as uvarints into one contiguous byte stream, sealed
// into blocks of postingBlock entries. Every sealed block carries skip
// metadata — its last position and its end offset in the stream — so
// a seeking cursor (the block-max pruning path) jumps over blocks
// whose last position cannot reach the target without decoding a
// byte. The stream stays append-friendly: a new position appends one
// uvarint and, on a block boundary, one metadata entry.
//
// A posting list can span at most two segments: an immutable base
// aliasing an mmap'ed snapshot (see snapshot.go) and a heap extension
// receiving post-open Adds. Both present the same segView shape to
// the cursor; live indexes have only the heap segment.

// postingBlock is the number of postings per sealed block. 128 keeps
// block metadata under 7% of the stream bytes while skipping decodes
// in useful chunks.
const postingBlock = 128

// postingList is the live (heap) representation of one token's
// postings. The zero value is an empty list; the delta base of the
// first entry is passed into add, so an overlay list extending a
// mapped segment chains its deltas off the segment's last position.
type postingList struct {
	df      int32  // postings in this list (document frequency share)
	lastPos int32  // last appended position
	stream  []byte // uvarint deltas: sealed blocks then the unsealed tail
	last    []int32
	end     []uint32
}

// add appends one position (strictly greater than the previous). base
// is the position preceding the list's first entry: -1 for a fresh
// list, the mapped segment's last position for an overlay extension.
func (p *postingList) add(pos, base int32) {
	prev := p.lastPos
	if p.df == 0 {
		prev = base
	}
	p.stream = binary.AppendUvarint(p.stream, uint64(pos-prev))
	p.df++
	p.lastPos = pos
	if p.df%postingBlock == 0 {
		p.last = append(p.last, pos)
		p.end = append(p.end, uint32(len(p.stream)))
	}
}

// segView is one posting segment as the cursor sees it: the varint
// stream plus sealed-block skip metadata in one of two encodings —
// metaLE for mapped segments (8 bytes per block, little-endian
// {last u32, end u32}, read straight off the map) or lastS/endS for
// live lists.
type segView struct {
	stream  []byte
	metaLE  []byte
	lastS   []int32
	endS    []uint32
	nBlocks int
	count   int
	base    int32 // position preceding the first entry
	lastPos int32 // last position in the segment
}

func (s *segView) blockLast(i int) int32 {
	if s.metaLE != nil {
		return int32(binary.LittleEndian.Uint32(s.metaLE[i*8:]))
	}
	return s.lastS[i]
}

func (s *segView) blockEnd(i int) uint32 {
	if s.metaLE != nil {
		return binary.LittleEndian.Uint32(s.metaLE[i*8+4:])
	}
	return s.endS[i]
}

// liveSeg wraps a postingList as a segView.
func liveSeg(p *postingList, base int32) segView {
	return segView{
		stream:  p.stream,
		lastS:   p.last,
		endS:    p.end,
		nBlocks: len(p.last),
		count:   int(p.df),
		base:    base,
		lastPos: p.lastPos,
	}
}

// plCursor iterates one token's postings across its segments in
// ascending position order, with block-skipping seeks. Zero postings
// are never constructed into a cursor (callers skip df == 0 tokens).
type plCursor struct {
	segs [2]segView
	nseg int

	seg  int   // current segment
	blk  int   // current block (nBlocks = the unsealed tail)
	brem int   // entries left to decode in the current block
	idx  int   // entries consumed in the current segment
	off  int   // byte offset of the next uvarint in the segment stream
	cur  int32 // current position; valid after the first next()
	done bool

	// decoded counts postings this cursor decoded; skipped counts
	// postings jumped over without decoding (whole blocks and whole
	// segments). Both feed telemetry.
	decoded uint64
	skipped uint64
}

// reset points the cursor before the first entry of the segments.
func (c *plCursor) reset(segs [2]segView, nseg int) {
	c.segs = segs
	c.nseg = nseg
	c.seg = 0
	c.enterSegment()
	c.done = nseg == 0
	c.decoded = 0
	c.skipped = 0
}

// enterSegment initializes the per-segment decode state.
func (c *plCursor) enterSegment() {
	c.blk = 0
	c.idx = 0
	c.off = 0
	if c.seg < c.nseg {
		s := &c.segs[c.seg]
		c.cur = s.base
		c.brem = c.blockEntries(s, 0)
	}
}

// blockEntries returns how many entries block i holds (sealed blocks
// are full; the tail holds the remainder).
func (c *plCursor) blockEntries(s *segView, i int) int {
	if i < s.nBlocks {
		return postingBlock
	}
	return s.count - s.nBlocks*postingBlock
}

// next advances to the following posting. Returns false when the
// cursor is exhausted.
func (c *plCursor) next() bool {
	for {
		if c.done {
			return false
		}
		s := &c.segs[c.seg]
		if c.idx < s.count {
			if c.brem == 0 {
				c.blk++
				c.brem = c.blockEntries(s, c.blk)
			}
			d, n := uvarint(s.stream, c.off)
			c.off += n
			c.cur += int32(d)
			c.idx++
			c.brem--
			c.decoded++
			return true
		}
		if c.seg+1 >= c.nseg {
			c.done = true
			return false
		}
		c.seg++
		c.enterSegment()
	}
}

// seek advances the cursor to the first posting >= target, skipping
// sealed blocks (and whole segments) whose last position is below the
// target without decoding them. The cursor must be positioned on an
// entry (next returned true) with cur < target.
func (c *plCursor) seek(target int32) bool {
	for {
		if c.done {
			return false
		}
		s := &c.segs[c.seg]
		if s.lastPos < target {
			// The whole remainder of this segment is below the target.
			c.skipped += uint64(s.count - c.idx)
			if c.seg+1 >= c.nseg {
				c.done = true
				return false
			}
			c.seg++
			c.enterSegment()
			continue
		}
		// Skip sealed blocks that end below the target. brem counts the
		// undecoded remainder of the current block; a skipped block
		// contributes all of it.
		for c.blk < s.nBlocks && s.blockLast(c.blk) < target {
			c.skipped += uint64(c.brem)
			c.cur = s.blockLast(c.blk)
			c.off = int(s.blockEnd(c.blk))
			c.idx = (c.blk + 1) * postingBlock
			c.blk++
			c.brem = c.blockEntries(s, c.blk)
		}
		// Linear decode within the first block that can contain the
		// target.
		for c.cur < target {
			if !c.next() {
				return false
			}
		}
		return true
	}
}

// uvarint decodes one uvarint from b at off, returning the value and
// the encoded length. The single-byte case — the overwhelming
// majority for delta-encoded postings — stays branch-cheap.
func uvarint(b []byte, off int) (uint64, int) {
	v := uint64(b[off])
	if v < 0x80 {
		return v, 1
	}
	v &= 0x7f
	shift := 7
	n := 1
	for {
		x := b[off+n]
		n++
		v |= uint64(x&0x7f) << shift
		if x < 0x80 {
			return v, n
		}
		shift += 7
	}
}
