package blocking

import (
	"fmt"
	"math"
	"path/filepath"
	"reflect"
	"sort"
	"testing"

	"llm4em/internal/detrand"
	"llm4em/internal/entity"
	"llm4em/internal/tokenize"
)

// referenceQuery is the pre-interning Index.Query implementation —
// string-keyed postings rebuilt per call, map scratch, full sort —
// kept as the semantic oracle for the hot-path rewrite. It must
// produce byte-identical rankings (order and float64 scores) to
// Index.Query on any input.
func referenceQuery(records []entity.Record, stopFrac float64, text string, maxCandidates int, minScore float64) []Candidate {
	stopFrac = math.Max(stopFrac, 0)
	postings := map[string][]int{}
	for pos, r := range records {
		seen := map[string]bool{}
		for _, t := range tokenize.Words(r.Serialize()) {
			if !seen[t] {
				postings[t] = append(postings[t], pos)
				seen[t] = true
			}
		}
	}
	n := float64(len(records))
	scores := map[int]float64{}
	seen := map[string]bool{}
	for _, t := range tokenize.Words(text) {
		if seen[t] {
			continue
		}
		seen[t] = true
		post := postings[t]
		df := float64(len(post))
		if df == 0 {
			continue
		}
		if df/n > stopFrac && df >= stopMinDocs {
			continue
		}
		w := math.Log(1 + n/df)
		for _, pos := range post {
			scores[pos] += w
		}
	}
	cands := make([]Candidate, 0, len(scores))
	for pos, sc := range scores {
		if sc >= minScore {
			cands = append(cands, Candidate{Pos: pos, Score: sc})
		}
	}
	sort.Slice(cands, func(i, j int) bool {
		if cands[i].Score != cands[j].Score {
			return cands[i].Score > cands[j].Score
		}
		return cands[i].Pos < cands[j].Pos
	})
	if maxCandidates > 0 && len(cands) > maxCandidates {
		cands = cands[:maxCandidates]
	}
	return cands
}

// randomRecords generates a collection with deliberate score ties:
// few distinct tokens, many records sharing exact token sets, so the
// top-K heap's tie-breaking is exercised hard.
func randomRecords(rng *detrand.RNG, n int) []entity.Record {
	pool := []string{"sony", "canon", "camera", "printer", "pro", "x100", "x200", "dock", "kit", "blue"}
	recs := make([]entity.Record, n)
	for i := range recs {
		k := 1 + rng.Intn(4)
		title := ""
		for w := 0; w < k; w++ {
			if w > 0 {
				title += " "
			}
			title += pool[rng.Intn(len(pool))]
		}
		recs[i] = entity.Record{
			ID:    fmt.Sprintf("r%03d", i),
			Attrs: []entity.Attr{{Name: "title", Value: title}},
		}
	}
	return recs
}

// TestQueryMatchesReference is the differential test of the hot-path
// rewrite: interned-ID postings + cached IDF + epoch scratch + top-K
// heap must rank byte-identically (order AND scores, including ties)
// to the old map-and-sort implementation, across randomized
// workloads, stop-token settings, bounds and score floors.
func TestQueryMatchesReference(t *testing.T) {
	rng := detrand.New("hotpath-differential")
	for round := 0; round < 20; round++ {
		n := 5 + rng.Intn(60)
		recs := randomRecords(rng, n)
		stopFrac := []float64{0, 0.2, 0.5, 1}[rng.Intn(4)]
		ix := NewIndex(recs, stopFrac)
		for q := 0; q < 15; q++ {
			var text string
			if rng.Intn(3) == 0 {
				text = "unknown tokens only zzz"
			} else {
				text = recs[rng.Intn(n)].Serialize() + " " + recs[rng.Intn(n)].Serialize()
			}
			maxCandidates := []int{0, 1, 3, 10, 1000}[rng.Intn(5)]
			minScore := []float64{0, 0.5, 1.0}[rng.Intn(3)]
			got := ix.Query(text, maxCandidates, minScore)
			want := referenceQuery(recs, stopFrac, text, maxCandidates, minScore)
			if len(got) == 0 && len(want) == 0 {
				continue
			}
			if !reflect.DeepEqual(got, want) {
				t.Fatalf("round %d query %q (max=%d min=%v stop=%v):\n got %v\nwant %v",
					round, text, maxCandidates, minScore, stopFrac, got, want)
			}
		}
	}
}

// TestQueryTokensMatchesQuery: the pre-split fanout entry point must
// be exactly Query over the same text.
func TestQueryTokensMatchesQuery(t *testing.T) {
	rng := detrand.New("hotpath-tokens")
	recs := randomRecords(rng, 40)
	ix := NewIndex(recs, 0.2)
	for q := 0; q < 25; q++ {
		text := recs[rng.Intn(len(recs))].Serialize() + " Extra-Words x100"
		got := ix.QueryTokens(tokenize.Words(text), 5, 0)
		want := ix.Query(text, 5, 0)
		if len(got) == 0 && len(want) == 0 {
			continue
		}
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("query %q: QueryTokens %v != Query %v", text, got, want)
		}
	}
}

// TestIndexQueryEmpty pins the n==0 guard: querying an empty index —
// or one emptied of matching tokens — returns nil instead of relying
// on every downstream loop tolerating the degenerate state.
func TestIndexQueryEmpty(t *testing.T) {
	ix := NewIndex(nil, 0.2)
	if got := ix.Query("sony camera", 10, 0); got != nil {
		t.Fatalf("empty-index Query = %v, want nil", got)
	}
	if got := ix.QueryTokens([]string{"sony"}, 10, 0); got != nil {
		t.Fatalf("empty-index QueryTokens = %v, want nil", got)
	}
	// The guard is about emptiness, not brokenness: the index works
	// normally once the first record arrives.
	ix.Add(rec("a", "sony camera"))
	if got := ix.Query("sony camera", 10, 0); len(got) != 1 || got[0].Pos != 0 {
		t.Fatalf("post-Add Query = %v, want the added record", got)
	}
	if got := ix.QueryTokens(nil, 10, 0); got != nil {
		t.Fatalf("nil-token query = %v, want nil", got)
	}
}

// TestAddSerializedMatchesAdd pins that handing a precomputed
// serialization to the index is exactly Add.
func TestAddSerializedMatchesAdd(t *testing.T) {
	r := rec("a", "sony camera x100")
	viaAdd := NewIndex(nil, 0.2)
	viaAdd.Add(r)
	viaText := NewIndex(nil, 0.2)
	viaText.AddSerialized(r, r.Serialize())
	a := viaAdd.Query("sony camera x100", 0, 0)
	b := viaText.Query("sony camera x100", 0, 0)
	if !reflect.DeepEqual(a, b) {
		t.Fatalf("AddSerialized diverges from Add: %v vs %v", a, b)
	}
}

// TestQueryAllocBudget pins Query's allocation budget: with a warm
// scratch pool, a bounded query allocates only its result slice. The
// pre-rewrite implementation used 14 allocations on this workload; a
// budget of 2 leaves room for a pool miss without masking a
// regression back to per-token or per-map allocation.
func TestQueryAllocBudget(t *testing.T) {
	rng := detrand.New("hotpath-allocs")
	recs := randomRecords(rng, 200)
	ix := NewIndex(recs, 0.2)
	text := recs[7].Serialize()
	ix.Query(text, 5, 0) // warm the scratch pool
	avg := testing.AllocsPerRun(200, func() {
		ix.Query(text, 5, 0)
	})
	if avg > 2 {
		t.Fatalf("Query allocates %.1f times per call, budget 2", avg)
	}
}

// TestQuerySparseMatchesDense forces the sparse accumulator (the
// large-collection exhaustive path, normally gated behind
// denseScoreRecords) and pins it byte-identical to the reference
// oracle across every storage mode: fresh compressed, CompressionNone
// and mmap-snapshot-backed, with bounded, unbounded, floored and
// tie-heavy workloads.
func TestQuerySparseMatchesDense(t *testing.T) {
	old := denseScoreRecords
	denseScoreRecords = 1 // every query takes the sparse path
	defer func() { denseScoreRecords = old }()

	rng := detrand.New("sparse-differential")
	for round := 0; round < 10; round++ {
		n := 5 + rng.Intn(120)
		recs := randomRecords(rng, n)
		stopFrac := []float64{0, 0.2, 0.5, 1}[rng.Intn(4)]
		fresh := BuildIndex(recs, IndexOptions{StopDocFrac: Float(stopFrac), Pruning: PruningOff})
		raw := BuildIndex(recs, IndexOptions{
			StopDocFrac: Float(stopFrac),
			Compression: CompressionNone,
			Pruning:     PruningOff,
		})
		path := filepath.Join(t.TempDir(), "sparse.emx")
		if err := fresh.WriteSnapshot(path); err != nil {
			t.Fatal(err)
		}
		mapped, err := OpenMapped(path, IndexOptions{StopDocFrac: Float(stopFrac), Pruning: PruningOff})
		if err != nil {
			t.Fatal(err)
		}
		for q := 0; q < 10; q++ {
			var text string
			if rng.Intn(3) == 0 {
				text = "unknown tokens only zzz"
			} else {
				text = recs[rng.Intn(n)].Serialize() + " " + recs[rng.Intn(n)].Serialize()
			}
			maxCandidates := []int{0, 1, 3, 10, 1000}[rng.Intn(5)]
			minScore := []float64{0, 0.5, 1.0}[rng.Intn(3)]
			want := referenceQuery(recs, stopFrac, text, maxCandidates, minScore)
			for label, ix := range map[string]*Index{"fresh": fresh, "raw": raw, "mapped": mapped} {
				got := ix.Query(text, maxCandidates, minScore)
				if len(got) == 0 && len(want) == 0 {
					continue
				}
				if !reflect.DeepEqual(got, want) {
					t.Fatalf("round %d %s query %q (max=%d min=%v stop=%v):\n got %v\nwant %v",
						round, label, text, maxCandidates, minScore, stopFrac, got, want)
				}
			}
		}
		mapped.Close()
	}
}
