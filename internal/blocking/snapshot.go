package blocking

import (
	"bufio"
	"bytes"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"

	"llm4em/internal/entity"
	"llm4em/internal/tokenize"
)

// EMIX v1 — the mmap-friendly index snapshot format. Everything a
// query needs lives in the file at stable offsets, so OpenMapped costs
// a header validation and an mmap, never an ingest replay: token
// lookup goes through an open-addressing hash section, postings are
// the same delta+varint streams the live index appends (postings.go)
// with their sealed-block skip metadata alongside, and records decode
// lazily per access.
//
// Layout (all integers little-endian, every section page-aligned):
//
//	header page:  "EMIX" | pad u32 | version u64 | nRecords u64 |
//	              nTokens u64 | nBlocks u64 | 8 x section {off u64, len u64} |
//	              crc32 of the preceding bytes
//	tokenTable:   nTokens fixed 36-byte entries —
//	              postOff u64, postLen u32, df u32, lastPos u32,
//	              blockOff u32 (index into blockMeta), nBlocks u32,
//	              tokOff u32, tokLen u32
//	tokenBytes:   concatenated token strings in ID order
//	tokenHash:    power-of-two open-addressing table, u32 = token ID + 1,
//	              zero empty, keyed by FNV-1a 64 of the token bytes
//	blockMeta:    8 bytes per sealed block: last position u32, end offset u32
//	postings:     concatenated per-token varint streams
//	recordBytes:  per record: uvarint-framed ID, attr count, then
//	              uvarint-framed name/value per attribute
//	recordIndex:  nRecords+1 u64 offsets into recordBytes
//	recordHash:   power-of-two open-addressing table, u32 = position + 1,
//	              zero empty, keyed by FNV-1a 64 of the record ID —
//	              by-ID lookup without rebuilding an in-memory map
//
// The writer goes to a temp file and renames into place, so a torn
// write never shadows a good snapshot; validation at open is the O(1)
// header pass (magic, version, header CRC, section-size consistency)
// plus one structural sweep of the token table's per-entry offsets,
// so damaged data pages (bit rot past the rename's atomicity) that
// would send tokenSeg out of range surface as ErrSnapshotTorn at
// open — where callers can rebuild — not as a panic at query time.
// The hash tables and the record index are range-clamped at each
// probe/decode instead of swept (keeping the open O(nTokens), which
// the restart benchmarks gate); only the varint stream bytes stay
// trusted — validating them would mean decoding every posting, the
// replay cost the format exists to avoid.

// MmapSupported reports whether this platform can serve index
// snapshots through OpenMapped. A WriteSnapshot succeeds everywhere
// (plain file I/O), so a caller about to make an index snapshot the
// authoritative carrier of its records — the resolve store's
// checkpoints — must consult this first: committing a snapshot the
// same build can never map back silently degrades the next open to
// whatever other state exists.
const MmapSupported = mmapSupported

// Typed snapshot errors. Callers that open snapshots opportunistically
// (the resolve store) match these to fall back to an ingest replay.
var (
	// ErrSnapshotVersion reports a snapshot written by an incompatible
	// format version — newer, or older after a breaking bump.
	ErrSnapshotVersion = errors.New("blocking: unsupported index snapshot version")
	// ErrSnapshotTorn reports a snapshot file that fails structural
	// validation: truncated, corrupt, or not an index snapshot at all.
	ErrSnapshotTorn = errors.New("blocking: torn or corrupt index snapshot")
)

const (
	emixMagic    = "EMIX"
	emixVersion  = 1
	emixPage     = 4096
	emixSections = 8
	// emixHeaderSize is the used prefix of the header page: magic+pad
	// (8), three u64 counts after the version (32), the section table,
	// and the trailing CRC.
	emixHeaderSize = 8 + 32 + emixSections*16 + 4
	tokEntrySize   = 36
)

// Section indices in the header table, in file order.
const (
	secTokenTable = iota
	secTokenBytes
	secTokenHash
	secBlockMeta
	secPostings
	secRecordBytes
	secRecordIndex
	secRecordHash
)

// mappedIndex is the read-only mmap'ed base of an OpenMapped Index:
// section slices aliasing the map, plus the counts the header pins.
type mappedIndex struct {
	data     []byte
	unmap    func() error
	nRecords uint32
	nTokens  uint32
	hashMask uint32
	recMask  uint32
	tokTab   []byte
	tokBytes []byte
	tokHash  []byte
	meta     []byte
	posts    []byte
	recBytes []byte
	recIdx   []byte
	recHash  []byte
}

func (m *mappedIndex) entry(id uint32) []byte {
	return m.tokTab[int(id)*tokEntrySize : int(id)*tokEntrySize+tokEntrySize]
}

func (m *mappedIndex) tokenDF(id uint32) int32 {
	return int32(binary.LittleEndian.Uint32(m.entry(id)[12:]))
}

func (m *mappedIndex) tokenLastPos(id uint32) int32 {
	return int32(binary.LittleEndian.Uint32(m.entry(id)[16:]))
}

func (m *mappedIndex) token(id uint32) []byte {
	e := m.entry(id)
	off := binary.LittleEndian.Uint32(e[28:])
	n := binary.LittleEndian.Uint32(e[32:])
	return m.tokBytes[off : off+n]
}

// tokenSeg wraps a token's mapped postings as the cursor's segment
// view: stream bytes and block metadata straight off the map.
func (m *mappedIndex) tokenSeg(id uint32) segView {
	e := m.entry(id)
	postOff := binary.LittleEndian.Uint64(e[0:])
	postLen := binary.LittleEndian.Uint32(e[8:])
	df := binary.LittleEndian.Uint32(e[12:])
	lastPos := int32(binary.LittleEndian.Uint32(e[16:]))
	blockOff := binary.LittleEndian.Uint32(e[20:])
	nBlocks := binary.LittleEndian.Uint32(e[24:])
	return segView{
		stream:  m.posts[postOff : postOff+uint64(postLen)],
		metaLE:  m.meta[blockOff*8 : (blockOff+nBlocks)*8],
		nBlocks: int(nBlocks),
		count:   int(df),
		base:    -1,
		lastPos: lastPos,
	}
}

// lookup probes the mapped token hash for a token given as bytes. A
// slot whose value exceeds the token count is data rot (the hash
// pages are not CRC-covered) and reads as a miss rather than indexing
// the token table out of range.
func (m *mappedIndex) lookup(tok []byte) (uint32, bool) {
	i := uint32(fnv64(tok)) & m.hashMask
	for {
		v := binary.LittleEndian.Uint32(m.tokHash[i*4:])
		if v == 0 || v > m.nTokens {
			return 0, false
		}
		if bytes.Equal(m.token(v-1), tok) {
			return v - 1, true
		}
		i = (i + 1) & m.hashMask
	}
}

// lookupString is lookup for a string token, allocation-free.
func (m *mappedIndex) lookupString(tok string) (uint32, bool) {
	i := uint32(fnv64String(tok)) & m.hashMask
	for {
		v := binary.LittleEndian.Uint32(m.tokHash[i*4:])
		if v == 0 || v > m.nTokens {
			return 0, false
		}
		if bytesEqString(m.token(v-1), tok) {
			return v - 1, true
		}
		i = (i + 1) & m.hashMask
	}
}

// record decodes the record at a mapped position. Field strings are
// copied out of the map, so a returned Record outlives Close. Index
// offsets that do not frame a slice of the record bytes — data rot in
// the uncovered record-index pages — decode as an empty record
// instead of slicing out of range.
func (m *mappedIndex) record(pos int) entity.Record {
	off := binary.LittleEndian.Uint64(m.recIdx[pos*8:])
	end := binary.LittleEndian.Uint64(m.recIdx[(pos+1)*8:])
	if off > end || end > uint64(len(m.recBytes)) {
		return entity.Record{}
	}
	b := m.recBytes[off:end]
	var r entity.Record
	r.ID, b = readLenPrefixed(b)
	nAttrs, n := binary.Uvarint(b)
	if n <= 0 {
		return r
	}
	b = b[n:]
	// An attribute takes at least two bytes, so a count the remaining
	// bytes cannot hold is data damage — decode what frames cleanly
	// rather than sizing an allocation from a rotten length.
	if nAttrs > uint64(len(b))/2 {
		nAttrs = uint64(len(b)) / 2
	}
	r.Attrs = make([]entity.Attr, nAttrs)
	for i := range r.Attrs {
		r.Attrs[i].Name, b = readLenPrefixed(b)
		r.Attrs[i].Value, b = readLenPrefixed(b)
	}
	return r
}

// recordID returns the ID bytes of the record at a mapped position,
// aliasing the map — no record decode, no allocation.
func (m *mappedIndex) recordID(pos int) []byte {
	off := binary.LittleEndian.Uint64(m.recIdx[pos*8:])
	if off > uint64(len(m.recBytes)) {
		return nil // rotten index entry: no ID can match
	}
	b := m.recBytes[off:]
	v, n := binary.Uvarint(b)
	if n <= 0 || v > uint64(len(b)-n) {
		return nil // rotten framing: no ID can match
	}
	return b[n : n+int(v)]
}

// recordPos probes the mapped record-ID hash. With duplicate IDs in
// the snapshotted collection (legal for a bare Index; the resolve
// store never produces them) the lowest position wins. A slot value
// past the record count is data rot and reads as a miss.
func (m *mappedIndex) recordPos(id string) (int32, bool) {
	i := uint32(fnv64String(id)) & m.recMask
	for {
		v := binary.LittleEndian.Uint32(m.recHash[i*4:])
		if v == 0 || v > m.nRecords {
			return 0, false
		}
		if bytesEqString(m.recordID(int(v-1)), id) {
			return int32(v - 1), true
		}
		i = (i + 1) & m.recMask
	}
}

// readLenPrefixed decodes one uvarint-framed string. A frame the
// remaining bytes cannot hold — rotten data the structural open-time
// checks cannot see inside record bytes — yields an empty string and
// no remainder instead of slicing out of range.
func readLenPrefixed(b []byte) (string, []byte) {
	v, n := binary.Uvarint(b)
	if n <= 0 || v > uint64(len(b)-n) {
		return "", nil
	}
	return string(b[n : n+int(v)]), b[n+int(v):]
}

func fnv64(b []byte) uint64 {
	h := uint64(14695981039346656037)
	for _, c := range b {
		h ^= uint64(c)
		h *= 1099511628211
	}
	return h
}

func fnv64String(s string) uint64 {
	h := uint64(14695981039346656037)
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= 1099511628211
	}
	return h
}

func bytesEqString(b []byte, s string) bool {
	if len(b) != len(s) {
		return false
	}
	for i := 0; i < len(b); i++ {
		if b[i] != s[i] {
			return false
		}
	}
	return true
}

// tokenOf returns the token string of an ID across the mapped base and
// the live vocab (snapshot-writer path; allocates for mapped tokens).
func (ix *Index) tokenOf(id uint32) string {
	if s := ix.snapTokens(); id >= s {
		return ix.vocab.Token(id - s)
	}
	return string(ix.snap.token(id))
}

// postingsForWrite produces one token's full posting stream and block
// metadata (little-endian 8-byte entries) for the snapshot writer.
// Fresh compressed lists and untouched mapped segments are returned
// verbatim; overlay extensions of mapped tokens are re-encoded through
// a cursor so sealed-block boundaries stay aligned to postingBlock
// entries; CompressionNone postings are varint-encoded here (the
// snapshot format is always compressed).
func (ix *Index) postingsForWrite(id uint32) (stream, meta []byte, df uint32, lastPos int32) {
	switch {
	case !ix.compressed:
		var pl postingList
		for _, pos := range ix.postsRaw[id] {
			pl.add(pos, -1)
		}
		return pl.stream, plMetaLE(&pl), uint32(pl.df), pl.lastPos
	case ix.snap == nil:
		pl := &ix.posts[id]
		return pl.stream, plMetaLE(pl), uint32(pl.df), pl.lastPos
	default:
		base := id < ix.snap.nTokens && ix.snap.tokenDF(id) > 0
		ov := ix.overlay[id]
		if ov == nil || ov.df == 0 {
			if !base {
				return nil, nil, 0, -1
			}
			seg := ix.snap.tokenSeg(id)
			return seg.stream, seg.metaLE, uint32(seg.count), seg.lastPos
		}
		if !base {
			return ov.stream, plMetaLE(ov), uint32(ov.df), ov.lastPos
		}
		var c plCursor
		ix.initCursor(&c, id)
		var pl postingList
		for c.next() {
			pl.add(c.cur, -1)
		}
		return pl.stream, plMetaLE(&pl), uint32(pl.df), pl.lastPos
	}
}

// plMetaLE converts a live list's block metadata to the wire encoding.
func plMetaLE(p *postingList) []byte {
	m := make([]byte, 0, len(p.last)*8)
	for i := range p.last {
		m = binary.LittleEndian.AppendUint32(m, uint32(p.last[i]))
		m = binary.LittleEndian.AppendUint32(m, p.end[i])
	}
	return m
}

// WriteSnapshot writes the index to path in the EMIX mmap format,
// atomically (temp file + rename). The written file reopens with
// OpenMapped regardless of this index's storage mode — raw
// (CompressionNone) postings are varint-encoded on the way out, and a
// mapped index with overlay appends merges them back into single
// streams.
func (ix *Index) WriteSnapshot(path string) (err error) {
	nTok := int(ix.snapTokens()) + ix.vocab.Len()
	n := ix.Len()

	// Per-token pass: table entries plus references to each token's
	// stream/metadata bytes (aliased where verbatim, rebuilt otherwise).
	tab := make([]byte, nTok*tokEntrySize)
	streams := make([][]byte, nTok)
	metas := make([][]byte, nTok)
	var tokLen, postsLen, metaLen uint64
	for id := 0; id < nTok; id++ {
		stream, meta, df, lastPos := ix.postingsForWrite(uint32(id))
		streams[id], metas[id] = stream, meta
		tok := ix.tokenOf(uint32(id))
		e := tab[id*tokEntrySize:]
		binary.LittleEndian.PutUint64(e[0:], postsLen)
		binary.LittleEndian.PutUint32(e[8:], uint32(len(stream)))
		binary.LittleEndian.PutUint32(e[12:], df)
		binary.LittleEndian.PutUint32(e[16:], uint32(lastPos))
		binary.LittleEndian.PutUint32(e[20:], uint32(metaLen/8))
		binary.LittleEndian.PutUint32(e[24:], uint32(len(meta)/8))
		binary.LittleEndian.PutUint32(e[28:], uint32(tokLen))
		binary.LittleEndian.PutUint32(e[32:], uint32(len(tok)))
		tokLen += uint64(len(tok))
		postsLen += uint64(len(stream))
		metaLen += uint64(len(meta))
	}

	// Token hash: power-of-two, load factor <= 0.5.
	hashEntries := uint32(8)
	for int(hashEntries) < 2*nTok {
		hashEntries *= 2
	}
	tokHash := make([]byte, hashEntries*4)
	for id := 0; id < nTok; id++ {
		i := uint32(fnv64String(ix.tokenOf(uint32(id)))) & (hashEntries - 1)
		for binary.LittleEndian.Uint32(tokHash[i*4:]) != 0 {
			i = (i + 1) & (hashEntries - 1)
		}
		binary.LittleEndian.PutUint32(tokHash[i*4:], uint32(id)+1)
	}

	tmp := path + ".tmp"
	f, err := os.Create(tmp)
	if err != nil {
		return err
	}
	defer func() {
		if err != nil {
			f.Close()
			os.Remove(tmp)
		}
	}()

	w := &pageWriter{w: bufio.NewWriterSize(f, 1<<20)}
	// Header page is written last (record-byte sizes are only known
	// after streaming); reserve it with a zero page now.
	w.write(zeroPage[:])
	if err := w.flushErr(); err != nil {
		return err
	}

	var secs [emixSections][2]uint64 // {off, len}
	begin := func(i int) { secs[i][0] = w.off }
	end := func(i int) error { secs[i][1] = w.off - secs[i][0]; return w.pad(emixPage) }

	begin(secTokenTable)
	w.write(tab)
	if err := end(secTokenTable); err != nil {
		return err
	}
	begin(secTokenBytes)
	for id := 0; id < nTok; id++ {
		w.writeString(ix.tokenOf(uint32(id)))
	}
	if err := end(secTokenBytes); err != nil {
		return err
	}
	begin(secTokenHash)
	w.write(tokHash)
	if err := end(secTokenHash); err != nil {
		return err
	}
	begin(secBlockMeta)
	for _, m := range metas {
		w.write(m)
	}
	if err := end(secBlockMeta); err != nil {
		return err
	}
	begin(secPostings)
	for _, s := range streams {
		w.write(s)
	}
	if err := end(secPostings); err != nil {
		return err
	}

	// Records: stream the bytes, collect the offsets, and fill the
	// by-ID hash as positions go by (ascending inserts + linear probing
	// make the lowest position of a duplicate ID win at lookup).
	recEntries := uint32(8)
	for int(recEntries) < 2*n {
		recEntries *= 2
	}
	recHash := make([]byte, recEntries*4)
	recIdx := make([]byte, 0, (n+1)*8)
	var scratch []byte
	begin(secRecordBytes)
	recBase := w.off
	for pos := 0; pos < n; pos++ {
		recIdx = binary.LittleEndian.AppendUint64(recIdx, w.off-recBase)
		r := ix.Record(pos)
		i := uint32(fnv64String(r.ID)) & (recEntries - 1)
		for binary.LittleEndian.Uint32(recHash[i*4:]) != 0 {
			i = (i + 1) & (recEntries - 1)
		}
		binary.LittleEndian.PutUint32(recHash[i*4:], uint32(pos)+1)
		scratch = appendRecord(scratch[:0], r)
		w.write(scratch)
	}
	recIdx = binary.LittleEndian.AppendUint64(recIdx, w.off-recBase)
	if err := end(secRecordBytes); err != nil {
		return err
	}
	begin(secRecordIndex)
	w.write(recIdx)
	if err := end(secRecordIndex); err != nil {
		return err
	}
	begin(secRecordHash)
	w.write(recHash)
	if err := end(secRecordHash); err != nil {
		return err
	}
	if err := w.flush(); err != nil {
		return err
	}

	// Header: counts, section table, CRC over the preceding bytes.
	hdr := make([]byte, emixHeaderSize)
	copy(hdr, emixMagic)
	binary.LittleEndian.PutUint64(hdr[8:], emixVersion)
	binary.LittleEndian.PutUint64(hdr[16:], uint64(n))
	binary.LittleEndian.PutUint64(hdr[24:], uint64(nTok))
	binary.LittleEndian.PutUint64(hdr[32:], metaLen/8)
	for i, s := range secs {
		binary.LittleEndian.PutUint64(hdr[40+i*16:], s[0])
		binary.LittleEndian.PutUint64(hdr[48+i*16:], s[1])
	}
	binary.LittleEndian.PutUint32(hdr[emixHeaderSize-4:], crc32.ChecksumIEEE(hdr[:emixHeaderSize-4]))
	if _, err := f.WriteAt(hdr, 0); err != nil {
		return err
	}
	if err := f.Sync(); err != nil {
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	if err := os.Rename(tmp, path); err != nil {
		return err
	}
	return syncDir(filepath.Dir(path))
}

// appendRecord encodes one record: uvarint-framed ID, attribute count,
// then uvarint-framed name/value pairs.
func appendRecord(dst []byte, r entity.Record) []byte {
	dst = binary.AppendUvarint(dst, uint64(len(r.ID)))
	dst = append(dst, r.ID...)
	dst = binary.AppendUvarint(dst, uint64(len(r.Attrs)))
	for _, a := range r.Attrs {
		dst = binary.AppendUvarint(dst, uint64(len(a.Name)))
		dst = append(dst, a.Name...)
		dst = binary.AppendUvarint(dst, uint64(len(a.Value)))
		dst = append(dst, a.Value...)
	}
	return dst
}

// pageWriter tracks the logical file offset and pads sections to page
// boundaries. Write errors are deferred to flush/pad (bufio sticks on
// the first error), keeping the section-writing code linear.
type pageWriter struct {
	w   *bufio.Writer
	off uint64
}

func (p *pageWriter) write(b []byte) {
	p.w.Write(b)
	p.off += uint64(len(b))
}

func (p *pageWriter) writeString(s string) {
	p.w.WriteString(s)
	p.off += uint64(len(s))
}

var zeroPage [emixPage]byte

func (p *pageWriter) pad(align uint64) error {
	if rem := p.off % align; rem != 0 {
		p.write(zeroPage[:align-rem])
	}
	return p.flushErr()
}

func (p *pageWriter) flushErr() error {
	// Surface any sticky bufio error without forcing a flush.
	_, err := p.w.Write(nil)
	return err
}

func (p *pageWriter) flush() error { return p.w.Flush() }

// syncDir fsyncs a directory so a rename into it is durable.
func syncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return err
	}
	defer d.Close()
	if err := d.Sync(); err != nil {
		return err
	}
	return d.Close()
}

// OpenMapped opens an EMIX snapshot written by WriteSnapshot, serving
// postings, token table and records straight out of the mmap'ed file —
// no ingest replay, no IDF precomputation (weights materialize lazily
// per token on first use). Validation is O(1): magic, version, header
// CRC and section-size consistency; ErrSnapshotVersion and
// ErrSnapshotTorn (both wrapped with detail) tell callers to rebuild
// instead. The returned index accepts Add — post-open records live on
// the heap as extensions chained onto the mapped streams — and must be
// Closed to release the mapping.
//
// The Compression option is ignored: a mapped index always serves the
// compressed representation. Pruning applies as for BuildIndex.
func OpenMapped(path string, opts IndexOptions) (*Index, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	st, err := f.Stat()
	if err != nil {
		return nil, err
	}
	if st.Size() < emixPage {
		return nil, fmt.Errorf("%w: %d-byte file is shorter than a header page", ErrSnapshotTorn, st.Size())
	}
	data, unmap, err := mmapFile(f, int(st.Size()))
	if err != nil {
		return nil, err
	}
	m, err := parseMapped(data, unmap)
	if err != nil {
		unmap()
		return nil, err
	}
	ix := &Index{
		stopFrac:   opts.stopDocFrac(),
		compressed: true,
		pruned:     opts.Pruning == PruningAuto || opts.Pruning == PruningBlockMax,
		vocab:      tokenize.NewVocab(),
		snap:       m,
		overlay:    map[uint32]*postingList{},
		idfBits:    make([]uint64, m.nTokens),
		idfAtN:     make([]uint64, m.nTokens),
	}
	ix.scratch.New = func() any { return &queryScratch{} }
	return ix, nil
}

// parseMapped validates the header and carves the section slices.
func parseMapped(data []byte, unmap func() error) (*mappedIndex, error) {
	if string(data[:4]) != emixMagic {
		return nil, fmt.Errorf("%w: bad magic %q", ErrSnapshotTorn, data[:4])
	}
	if v := binary.LittleEndian.Uint64(data[8:]); v != emixVersion {
		return nil, fmt.Errorf("%w: version %d, this build reads %d", ErrSnapshotVersion, v, emixVersion)
	}
	if got, want := crc32.ChecksumIEEE(data[:emixHeaderSize-4]), binary.LittleEndian.Uint32(data[emixHeaderSize-4:]); got != want {
		return nil, fmt.Errorf("%w: header CRC mismatch", ErrSnapshotTorn)
	}
	nRecords := binary.LittleEndian.Uint64(data[16:])
	nTokens := binary.LittleEndian.Uint64(data[24:])
	nBlocks := binary.LittleEndian.Uint64(data[32:])
	size := uint64(len(data))
	var sec [emixSections][]byte
	for i := 0; i < emixSections; i++ {
		off := binary.LittleEndian.Uint64(data[40+i*16:])
		n := binary.LittleEndian.Uint64(data[48+i*16:])
		if off%emixPage != 0 || off > size || n > size-off {
			return nil, fmt.Errorf("%w: section %d [%d:+%d] outside the %d-byte file", ErrSnapshotTorn, i, off, n, size)
		}
		sec[i] = data[off : off+n]
	}
	if got, want := uint64(len(sec[secTokenTable])), nTokens*tokEntrySize; got != want {
		return nil, fmt.Errorf("%w: token table holds %d bytes, %d tokens need %d", ErrSnapshotTorn, got, nTokens, want)
	}
	if got, want := uint64(len(sec[secBlockMeta])), nBlocks*8; got != want {
		return nil, fmt.Errorf("%w: block metadata holds %d bytes, %d blocks need %d", ErrSnapshotTorn, got, nBlocks, want)
	}
	if got, want := uint64(len(sec[secRecordIndex])), (nRecords+1)*8; got != want {
		return nil, fmt.Errorf("%w: record index holds %d bytes, %d records need %d", ErrSnapshotTorn, got, nRecords, want)
	}
	he := len(sec[secTokenHash]) / 4
	if he < 8 || he&(he-1) != 0 || len(sec[secTokenHash])%4 != 0 {
		return nil, fmt.Errorf("%w: token hash holds %d entries, want a power of two >= 8", ErrSnapshotTorn, he)
	}
	re := len(sec[secRecordHash]) / 4
	if re < 8 || re&(re-1) != 0 || len(sec[secRecordHash])%4 != 0 {
		return nil, fmt.Errorf("%w: record hash holds %d entries, want a power of two >= 8", ErrSnapshotTorn, re)
	}
	if last := binary.LittleEndian.Uint64(sec[secRecordIndex][nRecords*8:]); last != uint64(len(sec[secRecordBytes])) {
		return nil, fmt.Errorf("%w: record index ends at %d, record bytes hold %d", ErrSnapshotTorn, last, len(sec[secRecordBytes]))
	}
	// Positions are int32 and token IDs uint32 throughout the index.
	if nRecords > 1<<31-1 || nTokens > 1<<32-1 {
		return nil, fmt.Errorf("%w: counts overflow (%d records, %d tokens)", ErrSnapshotTorn, nRecords, nTokens)
	}
	// Per-entry structural validation of the token table. The header
	// CRC only vouches for the header page; these offsets come from
	// data pages, and a snapshot whose data rotted (bit damage past the
	// rename's atomicity) would otherwise slice the map out of range in
	// tokenSeg at query time — a panic inside serving, where no
	// fallback exists, instead of a typed error here where callers
	// rebuild. One 36-bytes-per-token pass keeps the open fast (the
	// restart benchmarks gate it); the hash tables and the record index
	// are instead range-clamped at each probe/decode — a branch per
	// access, not a scan per open — and the varint stream bytes
	// themselves stay trusted: validating them would mean decoding
	// every posting, the replay cost the format exists to avoid.
	postSecLen := uint64(len(sec[secPostings]))
	tokSecLen := uint64(len(sec[secTokenBytes]))
	for id, tab := uint64(0), sec[secTokenTable]; id < nTokens; id, tab = id+1, tab[tokEntrySize:] {
		e := tab[:tokEntrySize]
		postOff := binary.LittleEndian.Uint64(e[0:8])
		postLen := uint64(binary.LittleEndian.Uint32(e[8:12]))
		blockOff := uint64(binary.LittleEndian.Uint32(e[20:24]))
		tokBlocks := uint64(binary.LittleEndian.Uint32(e[24:28]))
		tokOff := uint64(binary.LittleEndian.Uint32(e[28:32]))
		tokLen := uint64(binary.LittleEndian.Uint32(e[32:36]))
		switch {
		case postOff > postSecLen || postLen > postSecLen-postOff:
			return nil, fmt.Errorf("%w: token %d postings [%d:+%d] outside the %d-byte section", ErrSnapshotTorn, id, postOff, postLen, postSecLen)
		case blockOff > nBlocks || tokBlocks > nBlocks-blockOff:
			return nil, fmt.Errorf("%w: token %d blocks [%d:+%d] outside the %d-block metadata", ErrSnapshotTorn, id, blockOff, tokBlocks, nBlocks)
		case tokOff > tokSecLen || tokLen > tokSecLen-tokOff:
			return nil, fmt.Errorf("%w: token %d bytes [%d:+%d] outside the %d-byte section", ErrSnapshotTorn, id, tokOff, tokLen, tokSecLen)
		}
	}
	return &mappedIndex{
		data:     data,
		unmap:    unmap,
		nRecords: uint32(nRecords),
		nTokens:  uint32(nTokens),
		hashMask: uint32(he - 1),
		recMask:  uint32(re - 1),
		tokTab:   sec[secTokenTable],
		tokBytes: sec[secTokenBytes],
		tokHash:  sec[secTokenHash],
		meta:     sec[secBlockMeta],
		posts:    sec[secPostings],
		recBytes: sec[secRecordBytes],
		recIdx:   sec[secRecordIndex],
		recHash:  sec[secRecordHash],
	}, nil
}

// Close releases the mmap of an OpenMapped index; on a fresh index it
// is a no-op. The index must not be used after Close.
func (ix *Index) Close() error {
	if ix.snap == nil {
		return nil
	}
	m := ix.snap
	ix.snap = nil
	return m.unmap()
}

// RecordPos returns the position of the record with the given ID in
// the snapshot a mapped index was opened from, answered by the
// snapshot's on-disk hash section — O(1), no per-record decode, no
// rebuilt in-memory map. Only the mapped base is covered: records
// added after OpenMapped (and every record of a fresh index) return
// false, and callers track those themselves — the resolve store keeps
// its post-open records in a per-shard map and consults this for the
// rest.
func (ix *Index) RecordPos(id string) (int, bool) {
	if ix.snap == nil {
		return 0, false
	}
	pos, ok := ix.snap.recordPos(id)
	return int(pos), ok
}

// RecordID returns the ID of the record at an index position without
// decoding its attributes — the cheap accessor for callers walking a
// mapped index's identity space (e.g. rebuilding an entity graph).
func (ix *Index) RecordID(pos int) string {
	s := ix.snapRecords()
	if pos < s {
		return string(ix.snap.recordID(pos))
	}
	return ix.records[pos-s].ID
}

// PostingsBytes reports the bytes the posting lists occupy, skip
// metadata included — the numerator of the bytes-per-record benchmark
// the snapshot format is sized by. For CompressionNone it is the raw
// int32 footprint.
func (ix *Index) PostingsBytes() int {
	switch {
	case !ix.compressed:
		total := 0
		for _, p := range ix.postsRaw {
			total += 4 * len(p)
		}
		return total
	case ix.snap == nil:
		total := 0
		for i := range ix.posts {
			total += len(ix.posts[i].stream) + 8*len(ix.posts[i].last)
		}
		return total
	default:
		total := len(ix.snap.posts) + len(ix.snap.meta)
		for _, p := range ix.overlay {
			total += len(p.stream) + 8*len(p.last)
		}
		return total
	}
}
