package blocking

import (
	"encoding/binary"
	"errors"
	"hash/crc32"
	"os"
	"path/filepath"
	"reflect"
	"testing"

	"llm4em/internal/detrand"
	"llm4em/internal/entity"
)

// writeTestSnapshot writes ix to a temp EMIX file and returns its path.
func writeTestSnapshot(t *testing.T, ix *Index) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), "index.emx")
	if err := ix.WriteSnapshot(path); err != nil {
		t.Fatalf("WriteSnapshot: %v", err)
	}
	return path
}

// queryBoth runs the same query workload against two indexes and
// fails on any ranking divergence (order AND scores).
func queryBoth(t *testing.T, label string, got, want *Index, queries []string) {
	t.Helper()
	for _, text := range queries {
		for _, maxC := range []int{0, 1, 5, 1000} {
			for _, minS := range []float64{0, 1.0} {
				g := got.Query(text, maxC, minS)
				w := want.Query(text, maxC, minS)
				if len(g) == 0 && len(w) == 0 {
					continue
				}
				if !reflect.DeepEqual(g, w) {
					t.Fatalf("%s: query %q (max=%d min=%v):\n got %v\nwant %v", label, text, maxC, minS, g, w)
				}
			}
		}
	}
}

// TestCompressedPrunedMatchesReferenceScan is the core differential
// pin of this layer: the varint+block-max engine must rank
// byte-identically to the CompressionNone exhaustive scan — the
// pre-compression representation — across randomized workloads big
// enough to seal posting blocks (df >> postingBlock) and exercise
// block skipping, tie-heavy scoring, score floors and stop tokens.
func TestCompressedPrunedMatchesReferenceScan(t *testing.T) {
	rng := detrand.New("compressed-differential")
	for round := 0; round < 6; round++ {
		n := []int{30, 300, 1200}[rng.Intn(3)]
		recs := randomRecords(rng, n)
		stopFrac := []float64{0, 0.2, 0.5, 1}[rng.Intn(4)]
		pruned := BuildIndex(recs, IndexOptions{StopDocFrac: Float(stopFrac)})
		reference := BuildIndex(recs, IndexOptions{
			StopDocFrac: Float(stopFrac),
			Compression: CompressionNone,
		})
		var queries []string
		for q := 0; q < 10; q++ {
			queries = append(queries, recs[rng.Intn(n)].Serialize()+" "+recs[rng.Intn(n)].Serialize())
		}
		queries = append(queries, "zzz unknown only")
		queryBoth(t, "pruned-vs-reference", pruned, reference, queries)
	}
}

// TestSnapshotRoundTrip pins that an index reopened from its mmap
// snapshot ranks byte-identically to the live index it was written
// from, for both compressed and CompressionNone sources (the writer
// always emits the compressed wire format).
func TestSnapshotRoundTrip(t *testing.T) {
	rng := detrand.New("snapshot-roundtrip")
	for _, comp := range []Compression{CompressionAuto, CompressionNone} {
		recs := randomRecords(rng, 700)
		live := BuildIndex(recs, IndexOptions{Compression: comp})
		path := writeTestSnapshot(t, live)
		mapped, err := OpenMapped(path, IndexOptions{})
		if err != nil {
			t.Fatalf("OpenMapped: %v", err)
		}
		defer mapped.Close()
		if mapped.Len() != live.Len() {
			t.Fatalf("mapped Len = %d, live %d", mapped.Len(), live.Len())
		}
		var queries []string
		for q := 0; q < 15; q++ {
			queries = append(queries, recs[rng.Intn(len(recs))].Serialize())
		}
		queryBoth(t, "mapped-vs-live", mapped, live, queries)
		// Records decode losslessly from the map, and the on-disk ID
		// hash finds every position without a decode.
		for _, pos := range []int{0, 13, len(recs) - 1} {
			if got := mapped.Record(pos); !reflect.DeepEqual(got, recs[pos]) {
				t.Fatalf("mapped Record(%d) = %+v, want %+v", pos, got, recs[pos])
			}
			if got, ok := mapped.RecordPos(recs[pos].ID); !ok || got != pos {
				t.Fatalf("mapped RecordPos(%q) = %d,%v, want %d", recs[pos].ID, got, ok, pos)
			}
			if got := mapped.RecordID(pos); got != recs[pos].ID {
				t.Fatalf("mapped RecordID(%d) = %q, want %q", pos, got, recs[pos].ID)
			}
		}
		if _, ok := mapped.RecordPos("no-such-id"); ok {
			t.Fatal("RecordPos found a record that was never indexed")
		}
	}
}

// TestMappedOverlayAppend pins the append path of a mapped index:
// records added after OpenMapped — repeating snapshot tokens and
// introducing new ones — must score exactly as if the whole collection
// had been indexed live, and a re-snapshot of the grown index (merged
// streams) must reopen identically too.
func TestMappedOverlayAppend(t *testing.T) {
	rng := detrand.New("snapshot-overlay")
	base := randomRecords(rng, 400)
	extra := randomRecords(rng, 150)
	for i := range extra {
		extra[i].ID = "x" + extra[i].ID
		if i%3 == 0 { // new tokens the snapshot has never seen
			extra[i].Attrs[0].Value += " novel gadget"
		}
	}

	path := writeTestSnapshot(t, BuildIndex(base, IndexOptions{}))
	mapped, err := OpenMapped(path, IndexOptions{})
	if err != nil {
		t.Fatalf("OpenMapped: %v", err)
	}
	defer mapped.Close()
	for _, r := range extra {
		mapped.Add(r)
	}
	all := append(append([]entity.Record{}, base...), extra...)
	live := BuildIndex(all, IndexOptions{})
	var queries []string
	for q := 0; q < 15; q++ {
		queries = append(queries, all[rng.Intn(len(all))].Serialize()+" novel")
	}
	queryBoth(t, "overlay-vs-live", mapped, live, queries)

	// Re-snapshot the grown index: overlay extensions merge back into
	// single per-token streams.
	path2 := filepath.Join(t.TempDir(), "index2.emx")
	if err := mapped.WriteSnapshot(path2); err != nil {
		t.Fatalf("re-WriteSnapshot: %v", err)
	}
	mapped2, err := OpenMapped(path2, IndexOptions{})
	if err != nil {
		t.Fatalf("OpenMapped(resnapshot): %v", err)
	}
	defer mapped2.Close()
	queryBoth(t, "resnapshot-vs-live", mapped2, live, queries)
	if got := mapped2.Record(len(base)); !reflect.DeepEqual(got, extra[0]) {
		t.Fatalf("resnapshot Record(%d) = %+v, want %+v", len(base), got, extra[0])
	}
}

// TestSnapshotTornTyped pins the typed failure modes of OpenMapped on
// damaged files: truncation, corrupt magic and a corrupt header CRC
// all surface ErrSnapshotTorn so callers fall back to a rebuild.
func TestSnapshotTornTyped(t *testing.T) {
	rng := detrand.New("snapshot-torn")
	path := writeTestSnapshot(t, BuildIndex(randomRecords(rng, 120), IndexOptions{}))
	good, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}

	damage := map[string]func([]byte) []byte{
		"truncated-to-header": func(b []byte) []byte { return b[:emixPage] },
		"truncated-mid-data":  func(b []byte) []byte { return b[:len(b)/2] },
		"short-file":          func(b []byte) []byte { return b[:100] },
		"bad-magic": func(b []byte) []byte {
			b[0] = 'X'
			return b
		},
		"bad-header-crc": func(b []byte) []byte {
			b[20] ^= 0xff // flip a count byte without fixing the CRC
			return b
		},
	}
	for name, f := range damage {
		p := filepath.Join(t.TempDir(), name+".emx")
		if err := os.WriteFile(p, f(append([]byte{}, good...)), 0o644); err != nil {
			t.Fatal(err)
		}
		_, err := OpenMapped(p, IndexOptions{})
		if !errors.Is(err, ErrSnapshotTorn) {
			t.Fatalf("%s: OpenMapped error = %v, want ErrSnapshotTorn", name, err)
		}
	}
}

// TestSnapshotVersionTyped pins that a version bump refuses old (and
// future) snapshots with the typed error, not a parse failure: the
// header's 64-bit version is rewritten and the CRC fixed up, so only
// the version check can object.
func TestSnapshotVersionTyped(t *testing.T) {
	rng := detrand.New("snapshot-version")
	path := writeTestSnapshot(t, BuildIndex(randomRecords(rng, 50), IndexOptions{}))
	b, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	binary.LittleEndian.PutUint64(b[8:], emixVersion+1)
	binary.LittleEndian.PutUint32(b[emixHeaderSize-4:], crc32.ChecksumIEEE(b[:emixHeaderSize-4]))
	if err := os.WriteFile(path, b, 0o644); err != nil {
		t.Fatal(err)
	}
	_, err = OpenMapped(path, IndexOptions{})
	if !errors.Is(err, ErrSnapshotVersion) {
		t.Fatalf("OpenMapped error = %v, want ErrSnapshotVersion", err)
	}
}

// TestSnapshotEmptyIndex: the degenerate snapshot (no records, no
// tokens) round-trips and serves empty results.
func TestSnapshotEmptyIndex(t *testing.T) {
	path := writeTestSnapshot(t, BuildIndex(nil, IndexOptions{}))
	mapped, err := OpenMapped(path, IndexOptions{})
	if err != nil {
		t.Fatalf("OpenMapped(empty): %v", err)
	}
	defer mapped.Close()
	if got := mapped.Query("sony camera", 10, 0); got != nil {
		t.Fatalf("empty mapped Query = %v, want nil", got)
	}
	// And it grows from empty exactly like a fresh index.
	mapped.Add(rec("a", "sony camera"))
	if got := mapped.Query("sony camera", 10, 0); len(got) != 1 || got[0].Pos != 0 {
		t.Fatalf("post-Add mapped Query = %v, want the added record", got)
	}
}

// TestCursorSeek unit-tests the block-skipping cursor against a long
// posting list: seeks land on the first position >= target, skipped
// entries are counted without being decoded, and iteration after a
// seek continues exactly.
func TestCursorSeek(t *testing.T) {
	var pl postingList
	var want []int32
	pos := int32(0)
	rng := detrand.New("cursor-seek")
	for i := 0; i < 1000; i++ {
		pos += int32(1 + rng.Intn(5))
		pl.add(pos, -1)
		want = append(want, pos)
	}

	// Full iteration decodes every posting in order.
	var c plCursor
	c.reset([2]segView{liveSeg(&pl, -1)}, 1)
	for i, w := range want {
		if !c.next() {
			t.Fatalf("next() exhausted at %d of %d", i, len(want))
		}
		if c.cur != w {
			t.Fatalf("posting %d = %d, want %d", i, c.cur, w)
		}
	}
	if c.next() {
		t.Fatal("next() past the end returned true")
	}

	// Seeks from the start to arbitrary targets.
	for trial := 0; trial < 50; trial++ {
		target := int32(rng.Intn(int(pos) + 10))
		c.reset([2]segView{liveSeg(&pl, -1)}, 1)
		c.next()
		// Expected: first posting >= target.
		exp := int32(-1)
		for _, w := range want {
			if w >= target {
				exp = w
				break
			}
		}
		ok := c.seek(target)
		if exp < 0 {
			if ok {
				t.Fatalf("seek(%d) = true at %d, want exhausted", target, c.cur)
			}
			continue
		}
		if !ok || c.cur != exp {
			t.Fatalf("seek(%d) landed on %d (ok=%v), want %d", target, c.cur, ok, exp)
		}
		if target > want[300] && c.skipped == 0 {
			t.Fatalf("seek(%d) decoded everything; expected block skips", target)
		}
	}
}

// TestPostingsBytesCompression pins the headline compression claim at
// unit level: varint postings take less than half the bytes of the raw
// int32 representation on a realistic collection.
func TestPostingsBytesCompression(t *testing.T) {
	recs := syntheticRecords(20000)
	compressed := BuildIndex(recs, IndexOptions{})
	raw := BuildIndex(recs, IndexOptions{Compression: CompressionNone})
	c, r := compressed.PostingsBytes(), raw.PostingsBytes()
	if c*2 > r {
		t.Fatalf("compressed postings = %d bytes, raw = %d; want >= 2x reduction", c, r)
	}
}

// TestSnapshotCorruptEntriesTyped pins the two-tier handling of
// damaged data pages under an intact header CRC (the CRC covers only
// the header page). Token-table offsets — the ones tokenSeg slices
// with — are swept at open and must surface as ErrSnapshotTorn there,
// where callers fall back to a rebuild. Hash-table entries and the
// record index are range-clamped at each probe/decode instead: open
// succeeds, and corrupted entries degrade to lookup misses or empty
// records. Neither tier may ever reach an out-of-range panic inside
// serving.
func TestSnapshotCorruptEntriesTyped(t *testing.T) {
	rng := detrand.New("snapshot-corrupt-entries")
	recs := randomRecords(rng, 120)
	path := writeTestSnapshot(t, BuildIndex(recs, IndexOptions{}))
	good, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	secOff := func(b []byte, i int) uint64 { return binary.LittleEndian.Uint64(b[40+i*16:]) }
	secLen := func(b []byte, i int) uint64 { return binary.LittleEndian.Uint64(b[40+i*16+8:]) }
	corrupt := func(t *testing.T, name string, f func(b []byte)) string {
		t.Helper()
		p := filepath.Join(t.TempDir(), name+".emx")
		b := append([]byte{}, good...)
		f(b)
		if err := os.WriteFile(p, b, 0o644); err != nil {
			t.Fatal(err)
		}
		return p
	}

	// Tier 1: token-table damage fails the open-time sweep.
	torn := map[string]func(b []byte){
		"token-postings-offset": func(b []byte) {
			binary.LittleEndian.PutUint64(b[secOff(b, secTokenTable):], 1<<60)
		},
		"token-postings-length": func(b []byte) {
			binary.LittleEndian.PutUint32(b[secOff(b, secTokenTable)+8:], 1<<31)
		},
		"token-block-range": func(b []byte) {
			binary.LittleEndian.PutUint32(b[secOff(b, secTokenTable)+24:], 1<<30)
		},
		"token-bytes-range": func(b []byte) {
			binary.LittleEndian.PutUint32(b[secOff(b, secTokenTable)+28:], 1<<31)
		},
	}
	for name, f := range torn {
		p := corrupt(t, name, f)
		_, err := OpenMapped(p, IndexOptions{})
		if !errors.Is(err, ErrSnapshotTorn) {
			t.Fatalf("%s: OpenMapped error = %v, want ErrSnapshotTorn", name, err)
		}
	}

	// Tier 2: hash-table and record-index damage opens fine and is
	// clamped per access — every corrupted slot in the file is hit by
	// exercising all records and queries, and none may panic.
	degrade := map[string]func(b []byte){
		"token-hash-entries": func(b []byte) {
			off, end := secOff(b, secTokenHash), secOff(b, secTokenHash)+secLen(b, secTokenHash)
			for o := off; o+4 <= end; o += 4 {
				binary.LittleEndian.PutUint32(b[o:], 1<<31)
			}
		},
		"record-hash-entries": func(b []byte) {
			off, end := secOff(b, secRecordHash), secOff(b, secRecordHash)+secLen(b, secRecordHash)
			for o := off; o+4 <= end; o += 4 {
				binary.LittleEndian.PutUint32(b[o:], 1<<31)
			}
		},
		"record-index-monotonicity": func(b []byte) {
			binary.LittleEndian.PutUint64(b[secOff(b, secRecordIndex):], 1<<60)
		},
	}
	for name, f := range degrade {
		p := corrupt(t, name, f)
		ix, err := OpenMapped(p, IndexOptions{})
		if err != nil {
			t.Fatalf("%s: OpenMapped error = %v, want clamped degrade", name, err)
		}
		for pos := 0; pos < ix.Len(); pos++ {
			_ = ix.Record(pos)   // may be empty; must not panic
			_ = ix.RecordID(pos) // may be ""; must not panic
		}
		for _, r := range recs {
			_ = ix.Query(r.Serialize(), 10, 0) // may miss; must not panic
			if _, ok := ix.RecordPos(r.ID); ok && name == "record-hash-entries" {
				t.Fatalf("%s: RecordPos(%q) hit through a corrupted hash table", name, r.ID)
			}
		}
		if err := ix.Close(); err != nil {
			t.Fatalf("%s: Close: %v", name, err)
		}
	}
}
