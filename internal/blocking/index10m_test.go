package blocking

import (
	"os"
	"path/filepath"
	"testing"
	"time"
)

// TestIndex10M is the 10M-record scale measurement behind
// BENCH_index10m.json: opt-in (BENCH_INDEX10M=1) because building ten
// million synthetic records takes minutes and gigabytes of heap. It
// builds the compressed index and the raw reference at scale, writes
// the mmap snapshot, and pins the two headline claims:
//
//   - compressed postings take at most half the raw int32 bytes;
//   - OpenMapped serves the 10M-record snapshot in under 100ms
//     (no ingest replay, no record decode — the instant-restart path).
//
// Run with:
//
//	BENCH_INDEX10M=1 go test -run TestIndex10M -v -timeout 30m ./internal/blocking/
func TestIndex10M(t *testing.T) {
	if os.Getenv("BENCH_INDEX10M") == "" {
		t.Skip("set BENCH_INDEX10M=1 to run the 10M-record scale measurement")
	}
	const n = 10_000_000
	records := syntheticRecords(n)

	start := time.Now()
	ix := BuildIndex(records, IndexOptions{})
	t.Logf("build compressed: %v", time.Since(start).Round(time.Millisecond))
	compressedBytes := ix.PostingsBytes()
	t.Logf("compressed postings: %d bytes, %.2f B/record", compressedBytes, float64(compressedBytes)/n)

	start = time.Now()
	raw := BuildIndex(records, IndexOptions{Compression: CompressionNone})
	t.Logf("build raw: %v", time.Since(start).Round(time.Millisecond))
	rawBytes := raw.PostingsBytes()
	t.Logf("raw postings: %d bytes, %.2f B/record (reduction %.2fx)",
		rawBytes, float64(rawBytes)/n, float64(rawBytes)/float64(compressedBytes))
	if compressedBytes*2 > rawBytes {
		t.Errorf("compressed postings %d bytes, want <= half of raw %d", compressedBytes, rawBytes)
	}

	// Query latency at scale, both representations (same query set as
	// the 100k benchmarks).
	queries := make([]string, 256)
	for i := range queries {
		queries[i] = records[(i*37)%n].Serialize()
	}
	measure := func(ix *Index) time.Duration {
		const rounds = 20000
		start := time.Now()
		for i := 0; i < rounds; i++ {
			_ = ix.Query(queries[i%len(queries)], 10, 1.0)
		}
		return time.Since(start) / rounds
	}
	t.Logf("query compressed: %v/op", measure(ix))
	t.Logf("query raw: %v/op", measure(raw))

	path := filepath.Join(t.TempDir(), "10m.emx")
	start = time.Now()
	if err := ix.WriteSnapshot(path); err != nil {
		t.Fatal(err)
	}
	st, _ := os.Stat(path)
	t.Logf("snapshot write: %v, %d bytes (%.1f B/record)",
		time.Since(start).Round(time.Millisecond), st.Size(), float64(st.Size())/n)

	// The restart claim: opening the snapshot must not scale with n.
	best := time.Duration(1 << 62)
	for i := 0; i < 5; i++ {
		start = time.Now()
		m, err := OpenMapped(path, IndexOptions{})
		if err != nil {
			t.Fatal(err)
		}
		if d := time.Since(start); d < best {
			best = d
		}
		if m.Len() != n {
			t.Fatalf("mapped Len = %d, want %d", m.Len(), n)
		}
		m.Close()
	}
	t.Logf("OpenMapped: %v (best of 5)", best)
	if best > 100*time.Millisecond {
		t.Errorf("OpenMapped took %v, want < 100ms", best)
	}

	// A mapped index serves queries straight off the page cache.
	m, err := OpenMapped(path, IndexOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer m.Close()
	t.Logf("query mapped: %v/op", measure(m))
}
