package blocking

// Bounded top-K selection shared by the index query path and the
// resolve store's shard merge: a binary min-heap whose root is the
// lowest-ranked kept element, so a full sort of everything scored is
// never needed. before reports whether a ranks ahead of b; it must be
// a strict total order for the selection to be deterministic (both
// call sites break score ties by a unique key).

// PushBounded offers x to the heap h holding at most k elements: it
// is appended while the heap is short, replaces the root when it
// ranks ahead of it, and is dropped otherwise. Returns the updated
// heap slice.
func PushBounded[T any](h []T, k int, x T, before func(a, b T) bool) []T {
	if len(h) < k {
		h = append(h, x)
		for i := len(h) - 1; i > 0; {
			parent := (i - 1) / 2
			if !before(h[parent], h[i]) {
				break
			}
			h[parent], h[i] = h[i], h[parent]
			i = parent
		}
		return h
	}
	if before(x, h[0]) {
		h[0] = x
		siftDownRoot(h, before)
	}
	return h
}

// SortTopK converts the heap into rank order in place, best first —
// the same result sorting all offered elements and truncating to k
// would have produced.
func SortTopK[T any](h []T, before func(a, b T) bool) {
	for n := len(h); n > 1; n-- {
		h[0], h[n-1] = h[n-1], h[0]
		siftDownRoot(h[:n-1], before)
	}
}

// siftDownRoot restores the heap property from the root (the element
// that would be evicted first).
func siftDownRoot[T any](h []T, before func(a, b T) bool) {
	i := 0
	for {
		worst := i
		if l := 2*i + 1; l < len(h) && before(h[worst], h[l]) {
			worst = l
		}
		if r := 2*i + 2; r < len(h) && before(h[worst], h[r]) {
			worst = r
		}
		if worst == i {
			return
		}
		h[i], h[worst] = h[worst], h[i]
		i = worst
	}
}
