package blocking

import (
	"testing"
	"testing/quick"

	"llm4em/internal/datasets"
	"llm4em/internal/entity"
)

func rec(id, title string) entity.Record {
	return entity.Record{ID: id, Attrs: []entity.Attr{{Name: "title", Value: title}}}
}

func TestCandidatesFindSharedRareTokens(t *testing.T) {
	left := []entity.Record{rec("l1", "sony dsc120b camera")}
	right := []entity.Record{
		rec("r1", "sony dsc120b digital camera black"),
		rec("r2", "makita drill kit"),
		rec("r3", "sony walkman player"),
	}
	b := &TokenBlocker{}
	cands := b.Candidates(left, right)
	if len(cands) == 0 {
		t.Fatal("no candidates")
	}
	if cands[0].B.ID != "r1" {
		t.Errorf("top candidate = %s, want r1 (shares the rare model token)", cands[0].B.ID)
	}
	for _, c := range cands {
		if c.B.ID == "r2" {
			t.Error("unrelated record should not be a candidate")
		}
	}
}

func TestDedupNoSelfOrDuplicatePairs(t *testing.T) {
	records := []entity.Record{
		rec("a", "sony dsc120b camera"),
		rec("b", "sony dsc120b camera black"),
		rec("c", "makita drill"),
	}
	b := &TokenBlocker{}
	pairs := b.Dedup(records)
	seen := map[string]bool{}
	for _, p := range pairs {
		if p.A.ID == p.B.ID {
			t.Errorf("self pair %s", p.ID)
		}
		if seen[p.ID] {
			t.Errorf("duplicate pair %s", p.ID)
		}
		seen[p.ID] = true
		if seen[p.B.ID+"|"+p.A.ID] {
			t.Errorf("both orientations of %s emitted", p.ID)
		}
	}
}

func TestBlockingRecallOnBenchmark(t *testing.T) {
	// Blocking the two sides of WDC test pairs must retain most gold
	// matches while pruning the pair space drastically.
	ds := datasets.MustLoad("wdc")
	var left, right []entity.Record
	var gold []entity.Pair
	for _, p := range ds.Test[:400] {
		left = append(left, p.A)
		right = append(right, p.B)
		if p.Match {
			gold = append(gold, p)
		}
	}
	b := &TokenBlocker{MaxCandidates: 10}
	cands := b.Candidates(left, right)
	recall := PairRecall(cands, gold)
	if recall < 0.9 {
		t.Errorf("blocking recall %.3f, want >= 0.9", recall)
	}
	if len(cands) > len(left)*10 {
		t.Errorf("candidate budget exceeded: %d", len(cands))
	}
}

func TestPairRecallEdgeCases(t *testing.T) {
	if PairRecall(nil, nil) != 1 {
		t.Error("no gold pairs means recall 1")
	}
	gold := []entity.Pair{{A: rec("a", ""), B: rec("b", "")}}
	if PairRecall(nil, gold) != 0 {
		t.Error("no candidates means recall 0")
	}
	// Orientation must not matter.
	cands := []entity.Pair{{A: rec("b", ""), B: rec("a", "")}}
	if PairRecall(cands, gold) != 1 {
		t.Error("reversed candidate should count")
	}
}

func TestCluster(t *testing.T) {
	pairs := []entity.Pair{
		{A: rec("a", ""), B: rec("b", "")},
		{A: rec("b", ""), B: rec("c", "")},
		{A: rec("d", ""), B: rec("e", "")},
		{A: rec("e", ""), B: rec("f", "")},
	}
	decisions := []bool{true, true, false, true}
	clusters := Cluster(pairs, decisions)
	byFirst := map[string][]string{}
	for _, c := range clusters {
		byFirst[c[0]] = c
	}
	if got := byFirst["a"]; len(got) != 3 {
		t.Errorf("cluster a = %v, want a,b,c", got)
	}
	if got := byFirst["d"]; len(got) != 1 {
		t.Errorf("cluster d = %v, want singleton", got)
	}
	if got := byFirst["e"]; len(got) != 2 {
		t.Errorf("cluster e = %v, want e,f", got)
	}
}

func TestClusterDeterministic(t *testing.T) {
	pairs := []entity.Pair{
		{A: rec("x", ""), B: rec("y", "")},
		{A: rec("y", ""), B: rec("z", "")},
	}
	a := Cluster(pairs, []bool{true, true})
	b := Cluster(pairs, []bool{true, true})
	if len(a) != len(b) || len(a) != 1 || len(a[0]) != 3 {
		t.Fatalf("clusters: %v vs %v", a, b)
	}
	for i := range a[0] {
		if a[0][i] != b[0][i] {
			t.Error("cluster order not deterministic")
		}
	}
}

func TestClusterIsPartition(t *testing.T) {
	// Property: clustering yields a partition — every mentioned record
	// in exactly one cluster.
	f := func(edges []uint8, decisions []bool) bool {
		ids := []string{"a", "b", "c", "d", "e", "f"}
		var pairs []entity.Pair
		for _, e := range edges {
			i, j := int(e)%len(ids), int(e/8)%len(ids)
			if i == j {
				continue
			}
			pairs = append(pairs, entity.Pair{A: rec(ids[i], ""), B: rec(ids[j], "")})
		}
		clusters := Cluster(pairs, decisions)
		seen := map[string]int{}
		for _, c := range clusters {
			for _, id := range c {
				seen[id]++
			}
		}
		for _, n := range seen {
			if n != 1 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
