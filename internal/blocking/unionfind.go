package blocking

import "sort"

// UnionFind is an incremental disjoint-set forest over string IDs.
// The canonical root of every set is its lexicographically smallest
// member, so set identities are stable under any union order: merging
// the same pairs in any sequence yields the same roots and the same
// groups. That determinism is what lets the online resolution store
// fold concurrently arriving match decisions into entity groups
// without ordering them first.
//
// A UnionFind is not safe for concurrent use; callers guard it with a
// lock (internal/resolve does).
type UnionFind struct {
	parent  map[string]string
	members map[string][]string // root -> member IDs, kept sorted
}

// NewUnionFind returns an empty disjoint-set forest.
func NewUnionFind() *UnionFind {
	return &UnionFind{
		parent:  map[string]string{},
		members: map[string][]string{},
	}
}

// Add ensures the ID is present, as a singleton set if it is new, and
// returns its root.
func (u *UnionFind) Add(id string) string {
	if _, ok := u.parent[id]; !ok {
		u.parent[id] = id
		u.members[id] = []string{id}
	}
	return u.find(id)
}

// Find returns the canonical root of the ID's set and whether the ID
// is known.
func (u *UnionFind) Find(id string) (string, bool) {
	if _, ok := u.parent[id]; !ok {
		return "", false
	}
	return u.find(id), true
}

// find resolves the root with iterative path compression.
func (u *UnionFind) find(id string) string {
	root := id
	for u.parent[root] != root {
		root = u.parent[root]
	}
	for u.parent[id] != root {
		id, u.parent[id] = u.parent[id], root
	}
	return root
}

// Union merges the sets of a and b, adding either ID if it is new, and
// returns the root of the merged set — the smallest member ID.
func (u *UnionFind) Union(a, b string) string {
	ra, rb := u.Add(a), u.Add(b)
	if ra == rb {
		return ra
	}
	if rb < ra {
		ra, rb = rb, ra
	}
	u.parent[rb] = ra
	// Merge the two sorted member lists; keeping lists sorted at union
	// time makes every Members/Groups read copy-only, and reads vastly
	// outnumber unions on the serving path.
	u.members[ra] = mergeSorted(u.members[ra], u.members[rb])
	delete(u.members, rb)
	return ra
}

// mergeSorted merges sorted b into sorted a, reusing a's capacity
// (amortized growth, like plain append): non-overlapping ranges are a
// straight append, the general case merges backwards in place.
func mergeSorted(a, b []string) []string {
	if len(b) == 0 {
		return a
	}
	if len(a) == 0 {
		return append(a, b...)
	}
	if a[len(a)-1] <= b[0] {
		return append(a, b...)
	}
	i := len(a) - 1
	a = append(a, b...)
	for j, k := len(b)-1, len(a)-1; j >= 0; k-- {
		if i >= 0 && a[i] > b[j] {
			a[k] = a[i]
			i--
		} else {
			a[k] = b[j]
			j--
		}
	}
	return a
}

// Members returns the sorted member IDs of the set containing the ID,
// or nil if the ID is unknown.
func (u *UnionFind) Members(id string) []string {
	root, ok := u.Find(id)
	if !ok {
		return nil
	}
	out := make([]string, len(u.members[root]))
	copy(out, u.members[root])
	return out
}

// Len returns the number of known IDs.
func (u *UnionFind) Len() int { return len(u.parent) }

// Sets returns the number of disjoint sets.
func (u *UnionFind) Sets() int { return len(u.members) }

// Groups returns all sets as sorted member slices, ordered by their
// root (smallest member) for determinism.
func (u *UnionFind) Groups() [][]string {
	roots := make([]string, 0, len(u.members))
	for r := range u.members {
		roots = append(roots, r)
	}
	sort.Strings(roots)
	out := make([][]string, 0, len(roots))
	for _, r := range roots {
		g := make([]string, len(u.members[r]))
		copy(g, u.members[r]) // member lists are maintained sorted
		out = append(out, g)
	}
	return out
}
