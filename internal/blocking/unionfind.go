package blocking

import "sort"

// UnionFind is an incremental disjoint-set forest over string IDs.
// The canonical root of every set is its lexicographically smallest
// member, so set identities are stable under any union order: merging
// the same pairs in any sequence yields the same roots and the same
// groups. That determinism is what lets the online resolution store
// fold concurrently arriving match decisions into entity groups
// without ordering them first.
//
// A UnionFind is not safe for concurrent use; callers guard it with a
// lock (internal/resolve does).
type UnionFind struct {
	parent  map[string]string
	members map[string][]string // root -> member IDs (unsorted)
}

// NewUnionFind returns an empty disjoint-set forest.
func NewUnionFind() *UnionFind {
	return &UnionFind{
		parent:  map[string]string{},
		members: map[string][]string{},
	}
}

// Add ensures the ID is present, as a singleton set if it is new, and
// returns its root.
func (u *UnionFind) Add(id string) string {
	if _, ok := u.parent[id]; !ok {
		u.parent[id] = id
		u.members[id] = []string{id}
	}
	return u.find(id)
}

// Find returns the canonical root of the ID's set and whether the ID
// is known.
func (u *UnionFind) Find(id string) (string, bool) {
	if _, ok := u.parent[id]; !ok {
		return "", false
	}
	return u.find(id), true
}

// find resolves the root with iterative path compression.
func (u *UnionFind) find(id string) string {
	root := id
	for u.parent[root] != root {
		root = u.parent[root]
	}
	for u.parent[id] != root {
		id, u.parent[id] = u.parent[id], root
	}
	return root
}

// Union merges the sets of a and b, adding either ID if it is new, and
// returns the root of the merged set — the smallest member ID.
func (u *UnionFind) Union(a, b string) string {
	ra, rb := u.Add(a), u.Add(b)
	if ra == rb {
		return ra
	}
	if rb < ra {
		ra, rb = rb, ra
	}
	u.parent[rb] = ra
	u.members[ra] = append(u.members[ra], u.members[rb]...)
	delete(u.members, rb)
	return ra
}

// Members returns the sorted member IDs of the set containing the ID,
// or nil if the ID is unknown.
func (u *UnionFind) Members(id string) []string {
	root, ok := u.Find(id)
	if !ok {
		return nil
	}
	out := make([]string, len(u.members[root]))
	copy(out, u.members[root])
	sort.Strings(out)
	return out
}

// Len returns the number of known IDs.
func (u *UnionFind) Len() int { return len(u.parent) }

// Sets returns the number of disjoint sets.
func (u *UnionFind) Sets() int { return len(u.members) }

// Groups returns all sets as sorted member slices, ordered by their
// root (smallest member) for determinism.
func (u *UnionFind) Groups() [][]string {
	roots := make([]string, 0, len(u.members))
	for r := range u.members {
		roots = append(roots, r)
	}
	sort.Strings(roots)
	out := make([][]string, 0, len(roots))
	for _, r := range roots {
		g := make([]string, len(u.members[r]))
		copy(g, u.members[r])
		sort.Strings(g)
		out = append(out, g)
	}
	return out
}
