package blocking

// Document-at-a-time top-K scoring with WAND pruning over the
// compressed postings. Each query term contributes a fixed IDF weight
// to every document it matches, so a term's exact score upper bound is
// its weight: keeping the term cursors sorted by current position, the
// smallest prefix whose cumulative weight could still beat the heap
// floor names a pivot position, and every cursor below it seeks
// forward — skipping sealed posting blocks (and whole mapped segments)
// whose last position is below the pivot without decoding a byte.
//
// The result is byte-identical to the exhaustive term-at-a-time scan:
// documents are enumerated in ascending position (matching the
// position-ascending tie-break of candidateBefore — a tied later
// document correctly loses to the heap root), fully-scored documents
// sum their weights in the original deduplicated token order (the
// exact floating-point accumulation the reference path performs), and
// the pruning threshold is tested against slack-inflated cumulative
// bounds so the cursor-order prefix sums — whose rounding can differ
// from token-order sums by a few ULPs — can only make pruning
// conservative: a document is only ever skipped when even its inflated
// bound cannot qualify, and fully scoring one is always exact.

// wandSlack inflates the cumulative upper bounds; 1+1e-12 covers many
// orders of magnitude more rounding error than reordering a few dozen
// IDF-sized terms can accumulate, at the cost of the occasional
// needlessly scored document.
const wandSlack = 1 + 1e-12

// queryWAND is the bounded-query scorer of a pruned index. It consumes
// the deduplicated, stop-filtered sc.terms the shared filtering pass
// in queryIDs produced (stopSkipped rides along for the telemetry
// flush); sc is owned by this call; maxCandidates > 0.
func (ix *Index) queryWAND(sc *queryScratch, maxCandidates int, minScore float64, stopSkipped uint64) []Candidate {
	n := ix.Len()
	var heapPushes uint64

	// Materialize one cursor + weight per scoring term, in token order.
	cursors := sc.cursors[:0]
	weights := sc.weights[:0]
	for _, t := range sc.terms {
		weights = append(weights, ix.idfWeight(t.id, n, int(t.df)))
		cursors = append(cursors, plCursor{})
		c := &cursors[len(cursors)-1]
		ix.initCursor(c, t.id)
		c.next() // df > 0: lands on the first posting
	}
	sc.cursors = cursors
	sc.weights = weights

	order := sc.order[:0]
	for i := range cursors {
		order = append(order, int32(i))
	}
	h := sc.heap[:0]

	for len(order) > 0 {
		// Sort the live cursors by (current position, token order) —
		// insertion sort: the order is nearly sorted between rounds.
		for i := 1; i < len(order); i++ {
			for j := i; j > 0 && cursorBefore(cursors, order[j], order[j-1]); j-- {
				order[j], order[j-1] = order[j-1], order[j]
			}
		}

		// Pivot: the first prefix whose inflated cumulative weight
		// could still qualify. No document before the pivot position
		// can score above the floor (it can only match a strict subset
		// of the cheaper prefix).
		full := len(h) == maxCandidates
		floor := 0.0
		if full {
			floor = h[0].Score
		}
		pivot := -1
		var pivotPos int32
		cum := 0.0
		for j, ti := range order {
			cum += weights[ti]
			ub := cum * wandSlack
			if ub >= minScore && (!full || ub > floor) {
				pivot = j
				pivotPos = cursors[ti].cur
				break
			}
		}
		if pivot < 0 {
			break // even all remaining terms together cannot qualify
		}

		if cursors[order[0]].cur == pivotPos {
			// The pivot document is fully present: score it exactly, in
			// token order.
			s := 0.0
			for ti := range cursors {
				if c := &cursors[ti]; !c.done && c.cur == pivotPos {
					s += weights[ti]
				}
			}
			// Matching cursors are the sorted prefix at pivotPos;
			// advance them past the document.
			for _, ti := range order {
				c := &cursors[ti]
				if c.cur != pivotPos {
					break
				}
				c.next()
			}
			if s >= minScore {
				heapPushes++
				h = PushBounded(h, maxCandidates, Candidate{Pos: int(pivotPos), Score: s}, candidateBefore)
			}
		} else {
			// Cheap prefix cursors lag the pivot: seek them forward,
			// skipping blocks that end before it.
			for _, ti := range order[:pivot] {
				if c := &cursors[ti]; c.cur < pivotPos {
					c.seek(pivotPos)
				}
			}
		}

		// Compact exhausted cursors out of the order.
		live := order[:0]
		for _, ti := range order {
			if !cursors[ti].done {
				live = append(live, ti)
			}
		}
		order = live
	}
	sc.order = order[:0]
	sc.heap = h[:0]

	var scanned, pruned uint64
	for i := range cursors {
		scanned += cursors[i].decoded
		pruned += cursors[i].skipped
	}
	ix.met.Queries.Inc()
	ix.met.PostingsScanned.Add(scanned)
	ix.met.PostingsPruned.Add(pruned)
	ix.met.StopTokensSkipped.Add(stopSkipped)
	ix.met.HeapPushes.Add(heapPushes)

	if len(h) == 0 {
		return nil
	}
	SortTopK(h, candidateBefore)
	out := make([]Candidate, len(h))
	copy(out, h)
	return out
}

// cursorBefore orders live cursors by current position, ties broken by
// token order — a total order, so the pivot choice is deterministic.
func cursorBefore(cursors []plCursor, a, b int32) bool {
	if cursors[a].cur != cursors[b].cur {
		return cursors[a].cur < cursors[b].cur
	}
	return a < b
}
