package blocking

import (
	"fmt"
	"reflect"
	"testing"

	"llm4em/internal/datasets"
	"llm4em/internal/entity"
)

// TestCandidatesIndexedMatchesRebuild pins the refactoring invariant:
// blocking through a prebuilt Index returns exactly what the
// rebuild-per-call path returns.
func TestCandidatesIndexedMatchesRebuild(t *testing.T) {
	ds := datasets.MustLoad("wdc")
	var left, right []entity.Record
	for _, p := range ds.Test[:200] {
		left = append(left, p.A)
		right = append(right, p.B)
	}
	b := &TokenBlocker{MaxCandidates: 5}
	ix := NewIndex(right, 0.2)
	rebuilt := b.Candidates(left, right)
	reused := b.CandidatesIndexed(left, ix)
	if !reflect.DeepEqual(rebuilt, reused) {
		t.Fatalf("indexed blocking diverges from rebuild: %d vs %d pairs", len(rebuilt), len(reused))
	}
	// Querying twice returns the same thing: the index is read-only
	// under Query.
	again := b.CandidatesIndexed(left, ix)
	if !reflect.DeepEqual(reused, again) {
		t.Fatal("repeated queries diverge")
	}
}

// TestIndexIncrementalAddMatchesBatchBuild verifies that growing an
// index record by record is equivalent to building it in one shot.
func TestIndexIncrementalAddMatchesBatchBuild(t *testing.T) {
	var recs []entity.Record
	for i := 0; i < 40; i++ {
		recs = append(recs, rec(fmt.Sprintf("r%02d", i),
			fmt.Sprintf("widget model%d common shared tokens", i)))
	}
	batch := NewIndex(recs, 0.2)
	grown := NewIndex(nil, 0.2)
	for _, r := range recs {
		grown.Add(r)
	}
	if batch.Len() != grown.Len() {
		t.Fatalf("Len: batch %d grown %d", batch.Len(), grown.Len())
	}
	for _, q := range recs {
		a := batch.Query(q.Serialize(), 0, 0)
		b := grown.Query(q.Serialize(), 0, 0)
		if !reflect.DeepEqual(a, b) {
			t.Fatalf("query %s: batch %v grown %v", q.ID, a, b)
		}
	}
}

// TestIndexStopTokensAdaptToGrowth: a token that is rare at first
// becomes a stop token as the collection grows, without a rebuild.
func TestIndexStopTokensAdaptToGrowth(t *testing.T) {
	ix := NewIndex(nil, 0.2)
	ix.Add(rec("a", "gadget alpha"))
	ix.Add(rec("b", "gadget beta"))
	if len(ix.Query("gadget", 0, 0)) != 2 {
		t.Fatal("shared token should match both records while rare")
	}
	// Grow to where "gadget" exceeds both the fraction and the
	// absolute floor.
	for i := 0; i < 8; i++ {
		ix.Add(rec(fmt.Sprintf("g%d", i), fmt.Sprintf("gadget gamma%d", i)))
	}
	if got := ix.Query("gadget", 0, 0); len(got) != 0 {
		t.Errorf("stop token still matched %d records", len(got))
	}
	// A rare token still works.
	if got := ix.Query("beta", 0, 0); len(got) != 1 {
		t.Errorf("rare token matched %d records, want 1", len(got))
	}
}

func TestIndexQueryBounds(t *testing.T) {
	ix := NewIndex([]entity.Record{
		rec("a", "alpha beta"),
		rec("b", "alpha beta gamma"),
		rec("c", "alpha"),
	}, 1) // no stop-token filtering
	all := ix.Query("alpha beta gamma", 0, 0)
	if len(all) != 3 {
		t.Fatalf("unbounded query returned %d, want 3", len(all))
	}
	for i := 1; i < len(all); i++ {
		if all[i-1].Score < all[i].Score {
			t.Fatal("results not ranked by decreasing score")
		}
	}
	if top := ix.Query("alpha beta gamma", 1, 0); len(top) != 1 || ix.Record(top[0].Pos).ID != "b" {
		t.Errorf("top-1 = %v", top)
	}
	if none := ix.Query("delta", 0, 0); len(none) != 0 {
		t.Errorf("unknown token matched %v", none)
	}
}

// TestExplicitZeroThresholds covers the zero-value config fix across
// both API generations: the deprecated flat fields keep their sentinel
// semantics (zero selects the default, ExplicitZero a literal zero),
// the v1 Opts pointer fields express the same without a sentinel, and
// a set Opts field wins over a deprecated one.
func TestExplicitZeroThresholds(t *testing.T) {
	b := &TokenBlocker{}
	if got := b.minScore(); got != 1.0 {
		t.Errorf("zero-value MinScore resolves to %v, want default 1.0", got)
	}
	if got := b.indexOptions().stopDocFrac(); got != 0.2 {
		t.Errorf("zero-value StopDocFrac resolves to %v, want default 0.2", got)
	}
	explicit := &TokenBlocker{MinScore: ExplicitZero, StopDocFrac: ExplicitZero}
	if got := explicit.minScore(); got != 0 {
		t.Errorf("ExplicitZero MinScore resolves to %v, want 0", got)
	}
	if got := explicit.indexOptions().stopDocFrac(); got != 0 {
		t.Errorf("ExplicitZero StopDocFrac resolves to %v, want 0", got)
	}
	v1 := &TokenBlocker{Opts: IndexOptions{MinScore: Float(0), StopDocFrac: Float(0)}}
	if got := v1.minScore(); got != 0 {
		t.Errorf("Opts.MinScore Float(0) resolves to %v, want 0", got)
	}
	if got := v1.indexOptions().stopDocFrac(); got != 0 {
		t.Errorf("Opts.StopDocFrac Float(0) resolves to %v, want 0", got)
	}
	// Precedence: a set Opts field wins over a deprecated flat one.
	mixed := &TokenBlocker{Opts: IndexOptions{MinScore: Float(2.5)}, MinScore: ExplicitZero}
	if got := mixed.minScore(); got != 2.5 {
		t.Errorf("set Opts.MinScore resolves to %v, want 2.5 over the deprecated field", got)
	}

	// Behavioral check for MinScore: a weak-overlap candidate that the
	// default threshold filters out survives with an explicit zero.
	left := []entity.Record{rec("l", "uncommonword")}
	right := []entity.Record{rec("r", "uncommonword"), rec("x", "unrelated thing")}
	// One shared token across 2 records: idf = log(1 + 2/1) ≈ 1.10 —
	// pad the collection so the token's weight drops below 1.0.
	for i := 0; i < 3; i++ {
		right = append(right, rec(fmt.Sprintf("p%d", i), "uncommonword padding"))
	}
	strict := &TokenBlocker{}
	if got := strict.Candidates(left, right); len(got) != 0 {
		t.Errorf("default MinScore kept %d weak candidates", len(got))
	}
	loose := &TokenBlocker{MinScore: ExplicitZero}
	if got := loose.Candidates(left, right); len(got) == 0 {
		t.Error("explicit-zero MinScore still filtered weak candidates")
	}

	// Behavioral check for StopDocFrac: with an explicit zero, any
	// token at or above the absolute floor is a stop token.
	var recs []entity.Record
	for i := 0; i < 5; i++ {
		recs = append(recs, rec(fmt.Sprintf("s%d", i), fmt.Sprintf("sharedtok filler%d", i)))
	}
	noStop := NewIndex(recs, 1) // filtering off
	if got := noStop.Query("sharedtok", 0, 0); len(got) != 5 {
		t.Fatalf("filter-off index matched %d", len(got))
	}
	zeroStop := NewIndex(recs, ExplicitZero)
	if got := zeroStop.Query("sharedtok", 0, 0); len(got) != 0 {
		t.Errorf("explicit-zero StopDocFrac still matched %d records via a frequent token", len(got))
	}
}
