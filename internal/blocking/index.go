package blocking

import (
	"math"
	"sort"
	"sync"
	"sync/atomic"

	"llm4em/internal/entity"
	"llm4em/internal/telemetry"
	"llm4em/internal/tokenize"
)

// Index is an inverted IDF token index over a record collection:
// build it (or grow it with Add) once and query it many times.
// TokenBlocker routes Candidates through a throwaway Index; long-lived
// callers — the online resolution store, repeated blocking runs over a
// stable collection — keep the Index and amortize construction.
//
// Internally the index is built for the serving hot path: token
// strings are interned into dense uint32 IDs (tokenize.Vocab), the
// postings are a slice of position lists over those IDs, per-token IDF
// weights are cached between queries, query scoring runs over a
// pooled flat scratch (epoch-marked, so it is never cleared), and
// bounded results come from top-K heap selection instead of a full
// sort. Query and QueryTokens allocate only the returned slice.
//
// Token weights are derived from document frequencies at query time
// (IDF = log(1 + n/df)), so an Index stays correct as records are
// added: a token that was rare can become a stop token later without
// any rebuild. Stop tokens — tokens occurring in more than StopFrac of
// the records and in at least stopMinDocs of them — are skipped when
// scoring, mirroring the build-time filter the TokenBlocker previously
// applied.
//
// An Index is not safe for concurrent mutation; guard Add against
// concurrent Query with a lock (internal/resolve shards do).
// Concurrent Queries are safe with each other.
type Index struct {
	stopFrac float64
	vocab    *tokenize.Vocab
	records  []entity.Record
	// postings[id] lists the positions containing token id, ascending;
	// its length is the token's document frequency.
	postings [][]int32
	// idfBits/idfAtN cache math.Float64bits of each token's IDF weight
	// and the record count n it was computed at. Queries fill the
	// cache through atomics: concurrent fillers write identical values
	// (n and df are fixed while queries run), so the worst case is a
	// redundant Log, never a torn or stale read — a reader only trusts
	// idfBits after observing the matching idfAtN.
	idfBits []uint64
	idfAtN  []uint64
	// addIDs is the tokenization scratch of Add (mutation path, so a
	// single shared buffer is safe).
	addIDs []uint32
	// scratch pools per-query state so concurrent queries do not
	// contend and repeated ones do not allocate.
	scratch sync.Pool
	// met instruments the query hot path; the zero value is disabled.
	// Per-query work is counted into locals and flushed with one
	// atomic add per counter at the end of the query.
	met telemetry.BlockingMetrics
}

// SetMetrics wires telemetry instruments into the index. Call before
// the index serves concurrent queries (the resolve store does, at
// construction).
func (ix *Index) SetMetrics(m telemetry.BlockingMetrics) { ix.met = m }

// stopMinDocs is the absolute document-frequency floor below which a
// token is never treated as a stop token, so tiny collections keep
// their vocabulary.
const stopMinDocs = 5

// queryScratch is the reusable per-query state: token IDs, the flat
// score accumulator with its epoch marks, the touched-position list
// and the top-K heap.
type queryScratch struct {
	ids     []uint32
	buf     []byte
	scores  []float64
	epoch   []uint32
	cur     uint32
	touched []int32
	heap    []Candidate
}

// NewIndex builds an index over the records. stopFrac is the stop-token
// document-frequency fraction; values below zero disable no tokens
// explicitly (a literal zero), values of one or more disable stop-token
// filtering entirely.
func NewIndex(records []entity.Record, stopFrac float64) *Index {
	ix := &Index{
		stopFrac: math.Max(stopFrac, 0),
		vocab:    tokenize.NewVocab(),
		records:  make([]entity.Record, 0, len(records)),
	}
	ix.scratch.New = func() any { return &queryScratch{} }
	for _, r := range records {
		ix.Add(r)
	}
	return ix
}

// Add appends one record to the index and returns its position.
func (ix *Index) Add(r entity.Record) int {
	return ix.AddSerialized(r, r.Serialize())
}

// AddSerialized appends a record whose serialized text the caller
// already computed (it must equal r.Serialize()), sparing the index a
// re-serialization — the resolve store serializes once per record for
// its feature-extraction cache and hands the same text here.
func (ix *Index) AddSerialized(r entity.Record, text string) int {
	pos := len(ix.records)
	ix.records = append(ix.records, r)
	ids := ix.vocab.AppendIDs(ix.addIDs[:0], text)
	for n := ix.vocab.Len(); len(ix.postings) < n; {
		ix.postings = append(ix.postings, nil)
		ix.idfBits = append(ix.idfBits, 0)
		ix.idfAtN = append(ix.idfAtN, 0)
	}
	// First occurrence per record only: df counts documents.
	for i, id := range ids {
		dup := false
		for _, prev := range ids[:i] {
			if prev == id {
				dup = true
				break
			}
		}
		if !dup {
			ix.postings[id] = append(ix.postings[id], int32(pos))
		}
	}
	ix.addIDs = ids[:0]
	return pos
}

// Len returns the number of indexed records.
func (ix *Index) Len() int { return len(ix.records) }

// Record returns the record at an index position.
func (ix *Index) Record(pos int) entity.Record { return ix.records[pos] }

// Candidate is one query result: an index position and its summed IDF
// overlap score.
type Candidate struct {
	Pos   int
	Score float64
}

// Query scores the indexed records against the text by IDF-weighted
// token overlap and returns candidates with score >= minScore, ranked
// by decreasing score (ties broken by position). maxCandidates bounds
// the result; zero or negative means unbounded.
func (ix *Index) Query(text string, maxCandidates int, minScore float64) []Candidate {
	if len(ix.records) == 0 {
		return nil
	}
	sc := ix.scratch.Get().(*queryScratch)
	sc.ids, sc.buf = ix.vocab.AppendKnownIDs(sc.ids[:0], sc.buf, text)
	out := ix.queryIDs(sc, maxCandidates, minScore)
	ix.scratch.Put(sc)
	return out
}

// QueryTokens is Query over pre-split tokens (as produced by
// tokenize.Words): callers resolving one text against many indexes —
// the sharded store — tokenize once and fan the tokens out. Duplicate
// tokens are ignored, exactly as Query ignores repeated words.
func (ix *Index) QueryTokens(tokens []string, maxCandidates int, minScore float64) []Candidate {
	if len(ix.records) == 0 || len(tokens) == 0 {
		return nil
	}
	sc := ix.scratch.Get().(*queryScratch)
	sc.ids = ix.vocab.AppendKnownTokenIDs(sc.ids[:0], tokens)
	out := ix.queryIDs(sc, maxCandidates, minScore)
	ix.scratch.Put(sc)
	return out
}

// queryIDs scores the postings of sc.ids into the scratch and selects
// the ranked result. Read-only on the index, so concurrent queries
// are safe; sc is owned by this call.
func (ix *Index) queryIDs(sc *queryScratch, maxCandidates int, minScore float64) []Candidate {
	n := len(ix.records)
	nf := float64(n)
	if len(sc.scores) < n {
		sc.scores = append(sc.scores, make([]float64, n-len(sc.scores))...)
		sc.epoch = append(sc.epoch, make([]uint32, n-len(sc.epoch))...)
	}
	sc.cur++
	if sc.cur == 0 { // epoch wrap: stale marks would alias
		clear(sc.epoch)
		sc.cur = 1
	}
	touched := sc.touched[:0]

	// Hot-path accounting stays in registers until the single flush
	// below — enabled telemetry costs integer adds, never atomics in
	// the scoring loop.
	var scanned, stopSkipped, heapPushes uint64

	ids := sc.ids
	for i, id := range ids {
		dup := false
		for _, prev := range ids[:i] {
			if prev == id {
				dup = true
				break
			}
		}
		if dup {
			continue
		}
		post := ix.postings[id]
		df := len(post)
		if df == 0 {
			continue
		}
		// Stop tokens: frequent both relatively and absolutely, so
		// tiny collections keep their vocabulary.
		if float64(df)/nf > ix.stopFrac && df >= stopMinDocs {
			stopSkipped++
			continue
		}
		scanned += uint64(df)
		w := ix.idfWeight(id, n, df)
		for _, pos := range post {
			if sc.epoch[pos] != sc.cur {
				sc.epoch[pos] = sc.cur
				sc.scores[pos] = w
				touched = append(touched, pos)
			} else {
				sc.scores[pos] += w
			}
		}
	}
	sc.touched = touched

	if maxCandidates <= 0 {
		// Unbounded: collect everything above the floor and sort. Not
		// the serving path — bounded queries go through the heap.
		ix.met.Queries.Inc()
		ix.met.PostingsScanned.Add(scanned)
		ix.met.StopTokensSkipped.Add(stopSkipped)
		out := make([]Candidate, 0, len(touched))
		for _, pos := range touched {
			if s := sc.scores[pos]; s >= minScore {
				out = append(out, Candidate{Pos: int(pos), Score: s})
			}
		}
		sort.Slice(out, func(i, j int) bool { return candidateBefore(out[i], out[j]) })
		return out
	}

	// Bounded: keep the top K in a min-heap rooted at the worst kept
	// candidate, then sort the heap into rank order. Same total order
	// as the sort above — score descending, position ascending on
	// ties — so the result is byte-identical to sort-then-truncate.
	h := sc.heap[:0]
	for _, pos := range touched {
		s := sc.scores[pos]
		if s < minScore {
			continue
		}
		heapPushes++
		h = PushBounded(h, maxCandidates, Candidate{Pos: int(pos), Score: s}, candidateBefore)
	}
	sc.heap = h[:0]
	ix.met.Queries.Inc()
	ix.met.PostingsScanned.Add(scanned)
	ix.met.StopTokensSkipped.Add(stopSkipped)
	ix.met.HeapPushes.Add(heapPushes)
	if len(h) == 0 {
		return nil
	}
	SortTopK(h, candidateBefore)
	out := make([]Candidate, len(h))
	copy(out, h)
	return out
}

// idfWeight returns log(1 + n/df) for a token, serving it from the
// per-token cache when it was computed at the same record count.
func (ix *Index) idfWeight(id uint32, n, df int) float64 {
	if atomic.LoadUint64(&ix.idfAtN[id]) == uint64(n) {
		return math.Float64frombits(atomic.LoadUint64(&ix.idfBits[id]))
	}
	w := math.Log(1 + float64(n)/float64(df))
	// Bits first, count second: a reader that sees the matching count
	// is guaranteed to read these (identical) bits or newer.
	atomic.StoreUint64(&ix.idfBits[id], math.Float64bits(w))
	atomic.StoreUint64(&ix.idfAtN[id], uint64(n))
	return w
}

// candidateBefore is the ranking order: score descending, ties broken
// by ascending position.
func candidateBefore(a, b Candidate) bool {
	if a.Score != b.Score {
		return a.Score > b.Score
	}
	return a.Pos < b.Pos
}
