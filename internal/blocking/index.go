package blocking

import (
	"math"
	"sort"
	"sync"
	"sync/atomic"

	"llm4em/internal/entity"
	"llm4em/internal/telemetry"
	"llm4em/internal/tokenize"
)

// Index is an inverted IDF token index over a record collection:
// build it (or grow it with Add) once and query it many times.
// TokenBlocker routes Candidates through a throwaway Index; long-lived
// callers — the online resolution store, repeated blocking runs over a
// stable collection — keep the Index and amortize construction.
//
// Internally the index is built for the serving hot path: token
// strings are interned into dense uint32 IDs (tokenize.Vocab), the
// postings are delta+varint compressed streams over those IDs
// (postings.go) with sealed-block skip metadata, per-token IDF weights
// are cached between queries, and bounded results come from top-K heap
// selection. Bounded queries on a pruned index run document-at-a-time
// with WAND pruning (wand.go), skipping posting blocks that cannot
// reach the heap floor; the exhaustive term-at-a-time scan remains as
// the unbounded/reference path, over a pooled flat scratch on small
// collections and a sparse accumulator on large ones
// (denseScoreRecords). Query and QueryTokens allocate only the
// returned slice.
//
// An Index comes in two storage modes. A fresh index (BuildIndex)
// holds everything on the heap. A mapped index (OpenMapped) serves
// postings, token table and records straight out of an mmap'ed
// snapshot file (snapshot.go) and overlays post-open Adds as heap
// extensions chained onto the mapped streams — reopening at 10M
// records costs milliseconds, not an ingest replay.
//
// Token weights are derived from document frequencies at query time
// (IDF = log(1 + n/df)), so an Index stays correct as records are
// added: a token that was rare can become a stop token later without
// any rebuild. Stop tokens — tokens occurring in more than StopFrac of
// the records and in at least stopMinDocs of them — are skipped when
// scoring, mirroring the build-time filter the TokenBlocker previously
// applied.
//
// An Index is not safe for concurrent mutation; guard Add against
// concurrent Query with a lock (internal/resolve shards do).
// Concurrent Queries are safe with each other.
type Index struct {
	stopFrac   float64
	compressed bool
	pruned     bool
	vocab      *tokenize.Vocab
	// snap is the mmap'ed base of an OpenMapped index; nil for a fresh
	// one. When set, vocab holds only tokens first seen after the open,
	// their IDs offset by snap.nTokens, and records holds only records
	// added after it, their positions offset by snap.nRecords.
	snap    *mappedIndex
	records []entity.Record
	// Exactly one postings representation is active. posts (fresh,
	// compressed) is dense by token ID; overlay (mapped, compressed) is
	// sparse because post-restart Adds touch few of the snapshot's
	// tokens; postsRaw is the CompressionNone reference: raw ascending
	// positions, length = document frequency.
	posts    []postingList
	overlay  map[uint32]*postingList
	postsRaw [][]int32
	// idfBits/idfAtN cache math.Float64bits of each token's IDF weight
	// and the record count n it was computed at. Queries fill the
	// cache through atomics: concurrent fillers write identical values
	// (n and df are fixed while queries run), so the worst case is a
	// redundant Log, never a torn or stale read — a reader only trusts
	// idfBits after observing the matching idfAtN. On a mapped index
	// the slices are allocated zeroed at open (zeroed pages, not a
	// replayed computation): IDF materializes lazily per token on first
	// use, as the snapshot stores none.
	idfBits []uint64
	idfAtN  []uint64
	// addIDs/addBuf are the tokenization scratch of Add (mutation path,
	// so single shared buffers are safe).
	addIDs []uint32
	addBuf []byte
	// scratch pools per-query state so concurrent queries do not
	// contend and repeated ones do not allocate.
	scratch sync.Pool
	// met instruments the query hot path; the zero value is disabled.
	// Per-query work is counted into locals and flushed with one
	// atomic add per counter at the end of the query.
	met telemetry.BlockingMetrics
}

// SetMetrics wires telemetry instruments into the index. Call before
// the index serves concurrent queries (the resolve store does, at
// construction).
func (ix *Index) SetMetrics(m telemetry.BlockingMetrics) { ix.met = m }

// stopMinDocs is the absolute document-frequency floor below which a
// token is never treated as a stop token, so tiny collections keep
// their vocabulary.
const stopMinDocs = 5

// queryScratch is the reusable per-query state: token IDs, the flat
// score accumulator with its epoch marks (term-at-a-time path), the
// touched-position list, the top-K heap, and the cursor set of the
// document-at-a-time path.
type queryScratch struct {
	ids     []uint32
	buf     []byte
	scan    tokenize.Scanner
	terms   []scoreTerm
	scores  []float64
	epoch   []uint32
	cur     uint32
	touched []int32
	heap    []Candidate
	cursor  plCursor
	cursors []plCursor
	weights []float64
	order   []int32
	// sparse replaces the flat scores/epoch accumulator on collections
	// larger than denseScoreRecords: the flat arrays cost 12 bytes per
	// indexed record and live on in the pool after the query, which at
	// 10M records would retain ~120MB per pooled scratch — multiplied
	// by concurrent queries. The map's retained size tracks the
	// documents one query touches instead.
	sparse map[int32]float64
}

// scoreTerm is one deduplicated, stop-filtered query token with its
// document frequency — the shared input of both scoring paths.
type scoreTerm struct {
	id uint32
	df int32
}

// BuildIndex builds an index over the records with the given options
// (the zero IndexOptions selects all defaults). To serve an index out
// of an mmap'ed snapshot instead of rebuilding, see OpenMapped.
func BuildIndex(records []entity.Record, opts IndexOptions) *Index {
	ix := &Index{
		stopFrac:   opts.stopDocFrac(),
		compressed: opts.compressed(),
		pruned:     opts.pruned(),
		vocab:      tokenize.NewVocab(),
		records:    make([]entity.Record, 0, len(records)),
	}
	ix.scratch.New = func() any { return &queryScratch{} }
	for _, r := range records {
		ix.Add(r)
	}
	return ix
}

// NewIndex builds an index over the records. stopFrac is the stop-token
// document-frequency fraction; values below zero disable no tokens
// explicitly (a literal zero), values of one or more disable stop-token
// filtering entirely.
//
// Deprecated: use BuildIndex with IndexOptions — the explicit
// StopDocFrac field replaces both the positional parameter and its
// negative sentinel. This shim selects the v1 defaults (varint
// compression, block-max pruning).
func NewIndex(records []entity.Record, stopFrac float64) *Index {
	return BuildIndex(records, IndexOptions{StopDocFrac: Float(stopFrac)})
}

// snapTokens returns the number of token IDs owned by the mapped base.
func (ix *Index) snapTokens() uint32 {
	if ix.snap == nil {
		return 0
	}
	return ix.snap.nTokens
}

// snapRecords returns the number of record positions owned by the
// mapped base.
func (ix *Index) snapRecords() int {
	if ix.snap == nil {
		return 0
	}
	return int(ix.snap.nRecords)
}

// Add appends one record to the index and returns its position.
func (ix *Index) Add(r entity.Record) int {
	return ix.AddSerialized(r, r.Serialize())
}

// AddSerialized appends a record whose serialized text the caller
// already computed (it must equal r.Serialize()), sparing the index a
// re-serialization — the resolve store serializes once per record for
// its feature-extraction cache and hands the same text here.
func (ix *Index) AddSerialized(r entity.Record, text string) int {
	pos := ix.Len()
	ix.records = append(ix.records, r)
	var ids []uint32
	if ix.snap == nil {
		ids = ix.vocab.AppendIDs(ix.addIDs[:0], text)
	} else {
		ids = ix.appendInternIDs(ix.addIDs[:0], text)
	}
	ix.growTokens()
	// First occurrence per record only: df counts documents.
	for i, id := range ids {
		dup := false
		for _, prev := range ids[:i] {
			if prev == id {
				dup = true
				break
			}
		}
		if dup {
			continue
		}
		switch {
		case !ix.compressed:
			ix.postsRaw[id] = append(ix.postsRaw[id], int32(pos))
		case ix.snap == nil:
			ix.posts[id].add(int32(pos), -1)
		default:
			pl := ix.overlay[id]
			if pl == nil {
				pl = &postingList{}
				ix.overlay[id] = pl
			}
			pl.add(int32(pos), ix.overlayBase(id))
		}
	}
	ix.addIDs = ids[:0]
	return pos
}

// appendInternIDs tokenizes text for the mapped-index Add path:
// tokens already in the snapshot's table keep their mapped ID, new
// ones are interned into the live vocab with IDs offset past the
// snapshot's.
func (ix *Index) appendInternIDs(dst []uint32, text string) []uint32 {
	var sc tokenize.Scanner
	sc.Reset(text, ix.addBuf)
	for {
		tok, ok := sc.Next()
		if !ok {
			break
		}
		if id, ok := ix.snap.lookup(tok); ok {
			dst = append(dst, id)
			continue
		}
		dst = append(dst, ix.snap.nTokens+ix.vocab.IDBytes(tok))
	}
	ix.addBuf = sc.Buf()
	return dst
}

// growTokens sizes the per-token parallel slices to the current token
// count (mapped base + live vocab).
func (ix *Index) growTokens() {
	n := int(ix.snapTokens()) + ix.vocab.Len()
	for len(ix.idfBits) < n {
		ix.idfBits = append(ix.idfBits, 0)
		ix.idfAtN = append(ix.idfAtN, 0)
	}
	switch {
	case !ix.compressed:
		for len(ix.postsRaw) < n {
			ix.postsRaw = append(ix.postsRaw, nil)
		}
	case ix.snap == nil:
		for len(ix.posts) < n {
			ix.posts = append(ix.posts, postingList{})
		}
	}
}

// tokenDF returns the document frequency of a token across the mapped
// base and the live overlay.
func (ix *Index) tokenDF(id uint32) int {
	if !ix.compressed {
		return len(ix.postsRaw[id])
	}
	if ix.snap == nil {
		return int(ix.posts[id].df)
	}
	df := 0
	if id < ix.snap.nTokens {
		df = int(ix.snap.tokenDF(id))
	}
	if pl := ix.overlay[id]; pl != nil {
		df += int(pl.df)
	}
	return df
}

// overlayBase returns the delta base for the live extension of a
// token: the mapped segment's last position, or -1 when the token has
// no mapped postings.
func (ix *Index) overlayBase(id uint32) int32 {
	if id < ix.snap.nTokens && ix.snap.tokenDF(id) > 0 {
		return ix.snap.tokenLastPos(id)
	}
	return -1
}

// initCursor points a cursor at the (up to two) posting segments of a
// token. Callers only construct cursors for tokens with df > 0.
func (ix *Index) initCursor(c *plCursor, id uint32) {
	var segs [2]segView
	n := 0
	if ix.snap != nil {
		if id < ix.snap.nTokens && ix.snap.tokenDF(id) > 0 {
			segs[n] = ix.snap.tokenSeg(id)
			n++
		}
		if pl := ix.overlay[id]; pl != nil && pl.df > 0 {
			segs[n] = liveSeg(pl, ix.overlayBase(id))
			n++
		}
	} else if pl := &ix.posts[id]; pl.df > 0 {
		segs[n] = liveSeg(pl, -1)
		n++
	}
	c.reset(segs, n)
}

// Len returns the number of indexed records.
func (ix *Index) Len() int { return ix.snapRecords() + len(ix.records) }

// Record returns the record at an index position. On a mapped index,
// positions below the snapshot's record count decode from the map per
// call — bounded queries surface only the top K, so callers touch a
// handful per query.
func (ix *Index) Record(pos int) entity.Record {
	s := ix.snapRecords()
	if pos < s {
		return ix.snap.record(pos)
	}
	return ix.records[pos-s]
}

// Candidate is one query result: an index position and its summed IDF
// overlap score.
type Candidate struct {
	Pos   int
	Score float64
}

// Query scores the indexed records against the text by IDF-weighted
// token overlap and returns candidates with score >= minScore, ranked
// by decreasing score (ties broken by position). maxCandidates bounds
// the result; zero or negative means unbounded.
func (ix *Index) Query(text string, maxCandidates int, minScore float64) []Candidate {
	if ix.Len() == 0 {
		return nil
	}
	sc := ix.scratch.Get().(*queryScratch)
	if ix.snap == nil {
		sc.ids, sc.buf = ix.vocab.AppendKnownIDs(sc.ids[:0], sc.buf, text)
	} else {
		ix.appendKnownIDsMapped(sc, text)
	}
	out := ix.queryIDs(sc, maxCandidates, minScore)
	ix.scratch.Put(sc)
	return out
}

// appendKnownIDsMapped resolves the tokens of text against the mapped
// token table first, then the live vocab, into sc.ids. Unknown tokens
// are skipped (zero document frequency). Read-only on the index.
func (ix *Index) appendKnownIDsMapped(sc *queryScratch, text string) {
	sc.ids = sc.ids[:0]
	sc.scan.Reset(text, sc.buf)
	for {
		tok, ok := sc.scan.Next()
		if !ok {
			break
		}
		if id, ok := ix.snap.lookup(tok); ok {
			sc.ids = append(sc.ids, id)
			continue
		}
		if id, ok := ix.vocab.LookupBytes(tok); ok {
			sc.ids = append(sc.ids, ix.snap.nTokens+id)
		}
	}
	sc.buf = sc.scan.Buf()
}

// QueryTokens is Query over pre-split tokens (as produced by
// tokenize.Words): callers resolving one text against many indexes —
// the sharded store — tokenize once and fan the tokens out. Duplicate
// tokens are ignored, exactly as Query ignores repeated words.
func (ix *Index) QueryTokens(tokens []string, maxCandidates int, minScore float64) []Candidate {
	if ix.Len() == 0 || len(tokens) == 0 {
		return nil
	}
	sc := ix.scratch.Get().(*queryScratch)
	if ix.snap == nil {
		sc.ids = ix.vocab.AppendKnownTokenIDs(sc.ids[:0], tokens)
	} else {
		sc.ids = sc.ids[:0]
		for _, t := range tokens {
			if id, ok := ix.snap.lookupString(t); ok {
				sc.ids = append(sc.ids, id)
				continue
			}
			if id, ok := ix.vocab.Lookup(t); ok {
				sc.ids = append(sc.ids, ix.snap.nTokens+id)
			}
		}
	}
	out := ix.queryIDs(sc, maxCandidates, minScore)
	ix.scratch.Put(sc)
	return out
}

// wandMinPostings is the scoring-postings volume below which a bounded
// query skips the WAND machinery: cursor setup, per-round sorting and
// heap bookkeeping carry a fixed cost that only pruning large posting
// lists can repay, while the flat accumulator scans a few hundred
// postings in the same time. Both paths rank identically, so the
// cutover is purely a cost decision.
const wandMinPostings = 4 * postingBlock

// wandThreshold is the cutover volume for a bounded query: the fixed
// floor, or a multiple of the requested K when that is larger (a big K
// keeps the heap floor low, so pruning starts paying later).
func wandThreshold(maxCandidates int) int {
	if t := 8 * maxCandidates; t > wandMinPostings {
		return t
	}
	return wandMinPostings
}

// queryIDs scores the postings of sc.ids and selects the ranked
// result. Read-only on the index, so concurrent queries are safe; sc
// is owned by this call. The filtering pass below feeds every scorer:
// bounded queries on a pruned index with enough scoring postings
// (wandThreshold) take the document-at-a-time WAND path; everything
// else scans term-at-a-time — into the flat accumulator, or into the
// sparse one when the collection is too large to pool flat arrays for
// (denseScoreRecords). All paths produce byte-identical rankings
// (scores are summed in the same token order), which the differential
// tests pin.
func (ix *Index) queryIDs(sc *queryScratch, maxCandidates int, minScore float64) []Candidate {
	n := ix.Len()
	nf := float64(n)

	// One filtering pass shared by both scorers: deduplicate the query
	// tokens, drop unknown and stop tokens (frequent both relatively
	// and absolutely, so tiny collections keep their vocabulary), and
	// total the scoring postings — the volume the WAND cutover weighs.
	terms := sc.terms[:0]
	var stopSkipped uint64
	total := 0
	ids := sc.ids
	for i, id := range ids {
		dup := false
		for _, prev := range ids[:i] {
			if prev == id {
				dup = true
				break
			}
		}
		if dup {
			continue
		}
		df := ix.tokenDF(id)
		if df == 0 {
			continue
		}
		if float64(df)/nf > ix.stopFrac && df >= stopMinDocs {
			stopSkipped++
			continue
		}
		terms = append(terms, scoreTerm{id: id, df: int32(df)})
		total += df
	}
	sc.terms = terms

	if ix.pruned && maxCandidates > 0 && total >= wandThreshold(maxCandidates) {
		return ix.queryWAND(sc, maxCandidates, minScore, stopSkipped)
	}

	if n > denseScoreRecords {
		return ix.querySparse(sc, maxCandidates, minScore, stopSkipped)
	}

	if len(sc.scores) < n {
		sc.scores = append(sc.scores, make([]float64, n-len(sc.scores))...)
		sc.epoch = append(sc.epoch, make([]uint32, n-len(sc.epoch))...)
	}
	sc.cur++
	if sc.cur == 0 { // epoch wrap: stale marks would alias
		clear(sc.epoch)
		sc.cur = 1
	}
	touched := sc.touched[:0]

	// Hot-path accounting stays in registers until the single flush
	// below — enabled telemetry costs integer adds, never atomics in
	// the scoring loop.
	var scanned, heapPushes uint64

	for _, t := range terms {
		id, df := t.id, int(t.df)
		scanned += uint64(df)
		w := ix.idfWeight(id, n, df)
		if !ix.compressed {
			for _, pos := range ix.postsRaw[id] {
				if sc.epoch[pos] != sc.cur {
					sc.epoch[pos] = sc.cur
					sc.scores[pos] = w
					touched = append(touched, pos)
				} else {
					sc.scores[pos] += w
				}
			}
			continue
		}
		if ix.snap == nil {
			// Live list: one heap segment, decoded inline — the cursor's
			// segment/block state machine costs more than these few
			// additions for typical short lists.
			pl := &ix.posts[id]
			pos, off := int32(-1), 0
			for k := int32(0); k < pl.df; k++ {
				d, m := uvarint(pl.stream, off)
				off += m
				pos += int32(d)
				if sc.epoch[pos] != sc.cur {
					sc.epoch[pos] = sc.cur
					sc.scores[pos] = w
					touched = append(touched, pos)
				} else {
					sc.scores[pos] += w
				}
			}
			continue
		}
		c := &sc.cursor
		ix.initCursor(c, id)
		for c.next() {
			pos := c.cur
			if sc.epoch[pos] != sc.cur {
				sc.epoch[pos] = sc.cur
				sc.scores[pos] = w
				touched = append(touched, pos)
			} else {
				sc.scores[pos] += w
			}
		}
	}
	sc.touched = touched

	if maxCandidates <= 0 {
		// Unbounded: collect everything above the floor and sort. Not
		// the serving path — bounded queries go through the heap.
		ix.met.Queries.Inc()
		ix.met.PostingsScanned.Add(scanned)
		ix.met.StopTokensSkipped.Add(stopSkipped)
		out := make([]Candidate, 0, len(touched))
		for _, pos := range touched {
			if s := sc.scores[pos]; s >= minScore {
				out = append(out, Candidate{Pos: int(pos), Score: s})
			}
		}
		sort.Slice(out, func(i, j int) bool { return candidateBefore(out[i], out[j]) })
		return out
	}

	// Bounded: keep the top K in a min-heap rooted at the worst kept
	// candidate, then sort the heap into rank order. Same total order
	// as the sort above — score descending, position ascending on
	// ties — so the result is byte-identical to sort-then-truncate.
	h := sc.heap[:0]
	for _, pos := range touched {
		s := sc.scores[pos]
		if s < minScore {
			continue
		}
		heapPushes++
		h = PushBounded(h, maxCandidates, Candidate{Pos: int(pos), Score: s}, candidateBefore)
	}
	sc.heap = h[:0]
	ix.met.Queries.Inc()
	ix.met.PostingsScanned.Add(scanned)
	ix.met.StopTokensSkipped.Add(stopSkipped)
	ix.met.HeapPushes.Add(heapPushes)
	if len(h) == 0 {
		return nil
	}
	SortTopK(h, candidateBefore)
	out := make([]Candidate, len(h))
	copy(out, h)
	return out
}

// denseScoreRecords is the record count above which the exhaustive
// scan accumulates into the sparse map instead of the flat
// scores/epoch arrays. Below it the arrays cost at most ~3MB per
// pooled scratch — cheap and branch-free on the hot path; above it
// their footprint grows with the collection (12 bytes per record,
// ~120MB at the 10M target) and is retained by the scratch pool for
// the life of the process, so one rare-token or unbounded query per
// pooled scratch would pin gigabytes across concurrent queries. A
// variable only so the differential tests can force the sparse path
// on small collections.
var denseScoreRecords = 1 << 18

// querySparse is the exhaustive term-at-a-time scorer over a hash-map
// accumulator, taken when the flat accumulator would be too large to
// pool (see denseScoreRecords). Ranking is byte-identical to the flat
// path and to WAND: each document's weights are summed in the same
// deduplicated token order (map insertion order never affects a sum),
// and both the bounded heap and the unbounded sort select by the
// strict total order candidateBefore, so the map's iteration order
// cannot leak into the result.
func (ix *Index) querySparse(sc *queryScratch, maxCandidates int, minScore float64, stopSkipped uint64) []Candidate {
	n := ix.Len()
	if sc.sparse == nil {
		sc.sparse = make(map[int32]float64)
	} else {
		clear(sc.sparse)
	}
	acc := sc.sparse
	var scanned, heapPushes uint64
	for _, t := range sc.terms {
		id, df := t.id, int(t.df)
		scanned += uint64(df)
		w := ix.idfWeight(id, n, df)
		switch {
		case !ix.compressed:
			for _, pos := range ix.postsRaw[id] {
				acc[pos] += w
			}
		case ix.snap == nil:
			pl := &ix.posts[id]
			pos, off := int32(-1), 0
			for k := int32(0); k < pl.df; k++ {
				d, m := uvarint(pl.stream, off)
				off += m
				pos += int32(d)
				acc[pos] += w
			}
		default:
			c := &sc.cursor
			ix.initCursor(c, id)
			for c.next() {
				acc[c.cur] += w
			}
		}
	}

	if maxCandidates <= 0 {
		ix.met.Queries.Inc()
		ix.met.PostingsScanned.Add(scanned)
		ix.met.StopTokensSkipped.Add(stopSkipped)
		out := make([]Candidate, 0, len(acc))
		for pos, s := range acc {
			if s >= minScore {
				out = append(out, Candidate{Pos: int(pos), Score: s})
			}
		}
		sort.Slice(out, func(i, j int) bool { return candidateBefore(out[i], out[j]) })
		return out
	}

	h := sc.heap[:0]
	for pos, s := range acc {
		if s < minScore {
			continue
		}
		heapPushes++
		h = PushBounded(h, maxCandidates, Candidate{Pos: int(pos), Score: s}, candidateBefore)
	}
	sc.heap = h[:0]
	ix.met.Queries.Inc()
	ix.met.PostingsScanned.Add(scanned)
	ix.met.StopTokensSkipped.Add(stopSkipped)
	ix.met.HeapPushes.Add(heapPushes)
	if len(h) == 0 {
		return nil
	}
	SortTopK(h, candidateBefore)
	out := make([]Candidate, len(h))
	copy(out, h)
	return out
}

// idfWeight returns log(1 + n/df) for a token, serving it from the
// per-token cache when it was computed at the same record count.
func (ix *Index) idfWeight(id uint32, n, df int) float64 {
	if atomic.LoadUint64(&ix.idfAtN[id]) == uint64(n) {
		return math.Float64frombits(atomic.LoadUint64(&ix.idfBits[id]))
	}
	w := math.Log(1 + float64(n)/float64(df))
	// Bits first, count second: a reader that sees the matching count
	// is guaranteed to read these (identical) bits or newer.
	atomic.StoreUint64(&ix.idfBits[id], math.Float64bits(w))
	atomic.StoreUint64(&ix.idfAtN[id], uint64(n))
	return w
}

// candidateBefore is the ranking order: score descending, ties broken
// by ascending position.
func candidateBefore(a, b Candidate) bool {
	if a.Score != b.Score {
		return a.Score > b.Score
	}
	return a.Pos < b.Pos
}
