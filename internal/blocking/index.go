package blocking

import (
	"math"
	"sort"

	"llm4em/internal/entity"
	"llm4em/internal/tokenize"
)

// Index is an inverted IDF token index over a record collection:
// build it (or grow it with Add) once and query it many times.
// TokenBlocker routes Candidates through a throwaway Index; long-lived
// callers — the online resolution store, repeated blocking runs over a
// stable collection — keep the Index and amortize construction.
//
// Token weights are derived from document frequencies at query time
// (IDF = log(1 + n/df)), so an Index stays correct as records are
// added: a token that was rare can become a stop token later without
// any rebuild. Stop tokens — tokens occurring in more than StopFrac of
// the records and in at least stopMinDocs of them — are skipped when
// scoring, mirroring the build-time filter the TokenBlocker previously
// applied.
//
// An Index is not safe for concurrent mutation; guard Add against
// concurrent Query with a lock (internal/resolve shards do).
type Index struct {
	stopFrac float64
	records  []entity.Record
	postings map[string][]int
}

// stopMinDocs is the absolute document-frequency floor below which a
// token is never treated as a stop token, so tiny collections keep
// their vocabulary.
const stopMinDocs = 5

// NewIndex builds an index over the records. stopFrac is the stop-token
// document-frequency fraction; values below zero disable no tokens
// explicitly (a literal zero), values of one or more disable stop-token
// filtering entirely.
func NewIndex(records []entity.Record, stopFrac float64) *Index {
	ix := &Index{
		stopFrac: math.Max(stopFrac, 0),
		records:  make([]entity.Record, 0, len(records)),
		postings: map[string][]int{},
	}
	for _, r := range records {
		ix.Add(r)
	}
	return ix
}

// Add appends one record to the index and returns its position.
func (ix *Index) Add(r entity.Record) int {
	pos := len(ix.records)
	ix.records = append(ix.records, r)
	seen := map[string]bool{}
	for _, t := range tokenize.Words(r.Serialize()) {
		if !seen[t] {
			ix.postings[t] = append(ix.postings[t], pos)
			seen[t] = true
		}
	}
	return pos
}

// Len returns the number of indexed records.
func (ix *Index) Len() int { return len(ix.records) }

// Record returns the record at an index position.
func (ix *Index) Record(pos int) entity.Record { return ix.records[pos] }

// Candidate is one query result: an index position and its summed IDF
// overlap score.
type Candidate struct {
	Pos   int
	Score float64
}

// Query scores the indexed records against the text by IDF-weighted
// token overlap and returns candidates with score >= minScore, ranked
// by decreasing score (ties broken by position). maxCandidates bounds
// the result; zero or negative means unbounded.
func (ix *Index) Query(text string, maxCandidates int, minScore float64) []Candidate {
	n := float64(len(ix.records))
	scores := map[int]float64{}
	seen := map[string]bool{}
	for _, t := range tokenize.Words(text) {
		if seen[t] {
			continue
		}
		seen[t] = true
		post := ix.postings[t]
		df := float64(len(post))
		if df == 0 {
			continue
		}
		// Stop tokens: frequent both relatively and absolutely, so
		// tiny collections keep their vocabulary.
		if df/n > ix.stopFrac && df >= stopMinDocs {
			continue
		}
		w := math.Log(1 + n/df)
		for _, pos := range post {
			scores[pos] += w
		}
	}
	cands := make([]Candidate, 0, len(scores))
	for pos, sc := range scores {
		if sc >= minScore {
			cands = append(cands, Candidate{Pos: pos, Score: sc})
		}
	}
	sort.Slice(cands, func(i, j int) bool {
		if cands[i].Score != cands[j].Score {
			return cands[i].Score > cands[j].Score
		}
		return cands[i].Pos < cands[j].Pos
	})
	if maxCandidates > 0 && len(cands) > maxCandidates {
		cands = cands[:maxCandidates]
	}
	return cands
}
