package blocking

import (
	"fmt"
	"testing"

	"llm4em/internal/datasets"
	"llm4em/internal/detrand"
	"llm4em/internal/entity"
)

// BenchmarkDedup measures candidate generation over a dirty
// collection.
func BenchmarkDedup(b *testing.B) {
	ds := datasets.MustLoad("wdc")
	var recs []entity.Record
	seen := map[string]bool{}
	for _, p := range ds.Test {
		for _, r := range []entity.Record{p.A, p.B} {
			if !seen[r.ID] {
				recs = append(recs, r)
				seen[r.ID] = true
			}
			if len(recs) == 400 {
				break
			}
		}
		if len(recs) == 400 {
			break
		}
	}
	blocker := &TokenBlocker{MaxCandidates: 5}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = blocker.Dedup(recs)
	}
}

// syntheticRecords generates a deterministic product-offer-like
// collection: a brand and category word pool shared across records
// (stop-token pressure) plus a rare per-record model token.
func syntheticRecords(n int) []entity.Record {
	brands := []string{"sony", "canon", "epson", "makita"}
	cats := []string{"camera", "printer", "drill", "laptop"}
	adjs := []string{"pro", "compact", "wireless", "digital"}
	rng := detrand.New("blocking-bench")
	recs := make([]entity.Record, n)
	for i := range recs {
		title := fmt.Sprintf("%s %s %s model%04d rev%d",
			brands[rng.Intn(len(brands))],
			adjs[rng.Intn(len(adjs))],
			cats[rng.Intn(len(cats))],
			i/2, // every model token shared by ~2 records
			rng.Intn(3))
		recs[i] = entity.Record{
			ID:    fmt.Sprintf("s%05d", i),
			Attrs: []entity.Attr{{Name: "title", Value: title}},
		}
	}
	return recs
}

// BenchmarkCandidatesRebuild measures the old TokenBlocker path that
// rebuilds the inverted index on every Candidates call: 100 queries
// against 10k records, index rebuilt each iteration.
func BenchmarkCandidatesRebuild(b *testing.B) {
	records := syntheticRecords(10000)
	queries := records[:100]
	blocker := &TokenBlocker{MaxCandidates: 5}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = blocker.Candidates(queries, records)
	}
}

// BenchmarkCandidatesIndexReuse measures the same workload through a
// prebuilt Index: 100 queries against 10k records, index built once.
func BenchmarkCandidatesIndexReuse(b *testing.B) {
	records := syntheticRecords(10000)
	queries := records[:100]
	blocker := &TokenBlocker{MaxCandidates: 5}
	ix := NewIndex(records, 0.2)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = blocker.CandidatesIndexed(queries, ix)
	}
}

// benchmarkIndexQuery measures one Query call against a prebuilt
// index of n records — the per-request blocking hot path.
func benchmarkIndexQuery(b *testing.B, n int) {
	records := syntheticRecords(n)
	ix := NewIndex(records, 0.2)
	queries := make([]string, 256)
	for i := range queries {
		queries[i] = records[(i*37)%n].Serialize()
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = ix.Query(queries[i%len(queries)], 10, 1.0)
	}
}

func BenchmarkIndexQuery10k(b *testing.B)  { benchmarkIndexQuery(b, 10000) }
func BenchmarkIndexQuery100k(b *testing.B) { benchmarkIndexQuery(b, 100000) }

// BenchmarkIndexAdd measures incremental index growth per record.
func BenchmarkIndexAdd(b *testing.B) {
	records := syntheticRecords(10000)
	b.ReportAllocs()
	b.ResetTimer()
	ix := NewIndex(nil, 0.2)
	for i := 0; i < b.N; i++ {
		ix.Add(records[i%len(records)])
	}
}
