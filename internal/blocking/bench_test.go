package blocking

import (
	"testing"

	"llm4em/internal/datasets"
	"llm4em/internal/entity"
)

// BenchmarkDedup measures candidate generation over a dirty
// collection.
func BenchmarkDedup(b *testing.B) {
	ds := datasets.MustLoad("wdc")
	var recs []entity.Record
	seen := map[string]bool{}
	for _, p := range ds.Test {
		for _, r := range []entity.Record{p.A, p.B} {
			if !seen[r.ID] {
				recs = append(recs, r)
				seen[r.ID] = true
			}
			if len(recs) == 400 {
				break
			}
		}
		if len(recs) == 400 {
			break
		}
	}
	blocker := &TokenBlocker{MaxCandidates: 5}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = blocker.Dedup(recs)
	}
}
