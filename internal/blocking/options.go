package blocking

// IndexOptions is the v1 configuration of the blocking layer — the
// Index constructor (BuildIndex) and the TokenBlocker both consume it.
// It replaces the positional NewIndex(records, stopFrac) constructor
// and the ExplicitZero = -1 sentinel: thresholds whose zero value used
// to be ambiguous ("default or literal zero?") are now explicit
// *float64 fields, where nil selects the package default and a set
// pointer — including Float(0) — is taken literally.
type IndexOptions struct {
	// MinScore is the minimum summed IDF weight for a candidate. Only
	// the TokenBlocker applies it (Index.Query takes the floor per
	// call). nil selects the default 1.0; Float(0) accepts any
	// positive token overlap.
	MinScore *float64
	// StopDocFrac is the stop-token document-frequency fraction:
	// tokens occurring in more than this fraction of the records (and
	// in at least 5 of them) are skipped when scoring. nil selects the
	// default 0.2; Float(0) treats every token above the absolute
	// floor as a stop token; values >= 1 disable the filter.
	StopDocFrac *float64
	// Compression selects the postings representation.
	Compression Compression
	// Pruning selects the top-K scoring strategy.
	Pruning Pruning
}

// Float returns a pointer to v — the set-flag form the explicit
// IndexOptions threshold fields take: opts.MinScore = blocking.Float(0)
// requests a literal zero where nil would select the default.
func Float(v float64) *float64 { return &v }

// Compression selects how an Index stores its postings.
type Compression int

const (
	// CompressionAuto selects the package default, CompressionVarint.
	CompressionAuto Compression = iota
	// CompressionVarint stores each token's ascending record positions
	// delta-encoded as uvarints in sealed blocks of postingBlock
	// entries, each sealed block carrying skip metadata (last position
	// + end offset). Roughly 2 bytes per posting on dense collections
	// against 4 for raw int32, append-friendly, and the only
	// representation the mmap snapshot path (WriteSnapshot/OpenMapped)
	// supports.
	CompressionVarint
	// CompressionNone keeps the pre-v1 raw []int32 posting slices. It
	// exists as the reference implementation for differential tests
	// and benchmarks; indexes built with it cannot be snapshotted into
	// the mmap format's compressed form any faster, but WriteSnapshot
	// still encodes them.
	CompressionNone
)

// Pruning selects how bounded (top-K) queries are scored.
type Pruning int

const (
	// PruningAuto selects PruningBlockMax when the postings are
	// compressed and the query is bounded, PruningOff otherwise.
	PruningAuto Pruning = iota
	// PruningBlockMax scores bounded queries document-at-a-time with
	// WAND-style pruning over the sealed-block skip metadata: posting
	// blocks whose maximum possible contribution cannot reach the
	// current heap floor (or the query's score floor) are skipped
	// without decoding. Rankings are byte-identical to the exhaustive
	// scan — scores are summed in the same token order — which the
	// differential tests pin. Requires CompressionVarint.
	PruningBlockMax
	// PruningOff scores every posting of every query token
	// term-at-a-time into the flat accumulator — the exhaustive
	// reference path.
	PruningOff
)

// Defaults the explicit threshold fields select when nil.
const (
	DefaultMinScore    = 1.0
	DefaultStopDocFrac = 0.2
)

// minScore resolves the explicit field against its default.
func (o IndexOptions) minScore() float64 {
	if o.MinScore == nil {
		return DefaultMinScore
	}
	if *o.MinScore < 0 {
		return 0
	}
	return *o.MinScore
}

// stopDocFrac resolves the explicit field against its default.
func (o IndexOptions) stopDocFrac() float64 {
	if o.StopDocFrac == nil {
		return DefaultStopDocFrac
	}
	if *o.StopDocFrac < 0 {
		return 0
	}
	return *o.StopDocFrac
}

// compressed reports whether the options select varint postings.
func (o IndexOptions) compressed() bool { return o.Compression != CompressionNone }

// pruned reports whether bounded queries should use the block-max
// path. Pruning requires the compressed representation; PruningAuto
// resolves accordingly and an explicit PruningBlockMax over
// CompressionNone degrades to the exhaustive scan.
func (o IndexOptions) pruned() bool {
	if !o.compressed() {
		return false
	}
	return o.Pruning == PruningAuto || o.Pruning == PruningBlockMax
}
