//go:build !unix

package blocking

import (
	"errors"
	"os"
)

// errMmapUnsupported makes OpenMapped fail cleanly on platforms
// without mmap; callers fall back to rebuilding the index (the resolve
// store replays its WAL+snapshot exactly as before the mmap path
// existed).
var errMmapUnsupported = errors.New("blocking: mmap is not supported on this platform")

func mmapFile(*os.File, int) ([]byte, func() error, error) {
	return nil, nil, errMmapUnsupported
}
