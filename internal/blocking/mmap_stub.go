//go:build !unix

package blocking

import (
	"errors"
	"os"
)

// mmapSupported gates the mmap snapshot serving path per platform.
// Callers that would write snapshots only an OpenMapped can read back
// (the resolve store's emx-authoritative checkpoints) must consult
// MmapSupported and keep their records in a format this platform can
// reopen.
const mmapSupported = false

// errMmapUnsupported makes OpenMapped fail cleanly on platforms
// without mmap; callers fall back to rebuilding the index from
// whatever non-mmap state they kept (the resolve store inlines its
// records in the JSON snapshot on these platforms — see
// MmapSupported — so recovery replays snapshot+WAL as before the
// mmap path existed).
var errMmapUnsupported = errors.New("blocking: mmap is not supported on this platform")

func mmapFile(*os.File, int) ([]byte, func() error, error) {
	return nil, nil, errMmapUnsupported
}
