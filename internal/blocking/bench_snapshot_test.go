package blocking

import (
	"os"
	"path/filepath"
	"testing"
)

// benchmarkQueryOpts measures one bounded Query against a prebuilt
// index of n records under the given options, reporting postings
// bytes/record so the compression benchmarks double as the size
// measurement BENCH_index10m.json records.
func benchmarkQueryOpts(b *testing.B, n int, opts IndexOptions) {
	records := syntheticRecords(n)
	ix := BuildIndex(records, opts)
	queries := make([]string, 256)
	for i := range queries {
		queries[i] = records[(i*37)%n].Serialize()
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = ix.Query(queries[i%len(queries)], 10, 1.0)
	}
	// After ResetTimer: it clears previously reported custom metrics.
	b.ReportMetric(float64(ix.PostingsBytes())/float64(n), "postings-B/record")
}

// The compressed+pruned default against the raw reference postings at
// 100k records — the pair the bench_regression.sh size/speed gate
// compares.
func BenchmarkIndexQueryCompressed100k(b *testing.B) {
	benchmarkQueryOpts(b, 100000, IndexOptions{Compression: CompressionVarint, Pruning: PruningBlockMax})
}

func BenchmarkIndexQueryRaw100k(b *testing.B) {
	benchmarkQueryOpts(b, 100000, IndexOptions{Compression: CompressionNone})
}

// BenchmarkSnapshotWrite measures writing the mmap snapshot of a
// 100k-record index.
func BenchmarkSnapshotWrite(b *testing.B) {
	records := syntheticRecords(100000)
	ix := BuildIndex(records, IndexOptions{})
	dir := b.TempDir()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		path := filepath.Join(dir, "bench.emx")
		if err := ix.WriteSnapshot(path); err != nil {
			b.Fatal(err)
		}
		b.StopTimer()
		os.Remove(path)
		b.StartTimer()
	}
}

// BenchmarkOpenMapped measures the restart path: opening a written
// snapshot into a serving index. The header walk plus one token-table
// sweep is what turns a 10M-record restart from an ingest replay into
// a page-cache mmap.
func BenchmarkOpenMapped(b *testing.B) {
	records := syntheticRecords(100000)
	ix := BuildIndex(records, IndexOptions{})
	path := filepath.Join(b.TempDir(), "bench.emx")
	if err := ix.WriteSnapshot(path); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m, err := OpenMapped(path, IndexOptions{})
		if err != nil {
			b.Fatal(err)
		}
		m.Close()
	}
}
