package blocking

import (
	"fmt"
	"reflect"
	"testing"

	"llm4em/internal/detrand"
	"llm4em/internal/entity"
)

func pair(a, b string) entity.Pair {
	return entity.Pair{ID: a + "|" + b, A: entity.Record{ID: a}, B: entity.Record{ID: b}}
}

func TestClusterEmptyInput(t *testing.T) {
	if got := Cluster(nil, nil); len(got) != 0 {
		t.Errorf("Cluster(nil) = %v", got)
	}
	if got := Cluster([]entity.Pair{}, []bool{true, false}); len(got) != 0 {
		t.Errorf("Cluster with surplus decisions = %v", got)
	}
}

func TestClusterMismatchedDecisionsLength(t *testing.T) {
	pairs := []entity.Pair{pair("a", "b"), pair("c", "d"), pair("e", "f")}
	// Shorter decisions: pairs beyond the slice count as non-matches.
	got := Cluster(pairs, []bool{true})
	want := [][]string{{"a", "b"}, {"c"}, {"d"}, {"e"}, {"f"}}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("short decisions: got %v, want %v", got, want)
	}
	// Longer decisions: the surplus is ignored.
	got = Cluster(pairs[:1], []bool{true, true, true, true})
	want = [][]string{{"a", "b"}}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("surplus decisions: got %v, want %v", got, want)
	}
}

func TestClusterSelfPairs(t *testing.T) {
	pairs := []entity.Pair{pair("a", "a"), pair("a", "b")}
	got := Cluster(pairs, []bool{true, false})
	want := [][]string{{"a"}, {"b"}}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("self-pair: got %v, want %v", got, want)
	}
}

func TestClusterTransitiveChain(t *testing.T) {
	// a-b, b-c, c-d all match: one entity despite no direct a-d pair.
	pairs := []entity.Pair{pair("a", "b"), pair("b", "c"), pair("c", "d"), pair("x", "y")}
	got := Cluster(pairs, []bool{true, true, true, false})
	want := [][]string{{"a", "b", "c", "d"}, {"x"}, {"y"}}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("chain: got %v, want %v", got, want)
	}
}

// TestClusterDeterministicOrdering shuffles pair order and checks the
// grouping is identical — group membership, member order and group
// order.
func TestClusterDeterministicOrdering(t *testing.T) {
	var pairs []entity.Pair
	var decisions []bool
	for i := 0; i < 30; i++ {
		a, b := fmt.Sprintf("r%02d", i), fmt.Sprintf("r%02d", (i*7)%30)
		pairs = append(pairs, pair(a, b))
		decisions = append(decisions, i%3 != 0)
	}
	want := Cluster(pairs, decisions)
	rng := detrand.New("cluster-shuffle")
	for trial := 0; trial < 5; trial++ {
		perm := make([]int, len(pairs))
		for i := range perm {
			perm[i] = i
		}
		for i := len(perm) - 1; i > 0; i-- {
			j := rng.Intn(i + 1)
			perm[i], perm[j] = perm[j], perm[i]
		}
		shuffledPairs := make([]entity.Pair, len(pairs))
		shuffledDecisions := make([]bool, len(decisions))
		for i, p := range perm {
			shuffledPairs[i] = pairs[p]
			shuffledDecisions[i] = decisions[p]
		}
		got := Cluster(shuffledPairs, shuffledDecisions)
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("trial %d: shuffled clustering differs\ngot:  %v\nwant: %v", trial, got, want)
		}
	}
}

func TestUnionFindBasics(t *testing.T) {
	u := NewUnionFind()
	if _, ok := u.Find("a"); ok {
		t.Error("empty forest knows a")
	}
	if u.Members("a") != nil {
		t.Error("Members of unknown ID should be nil")
	}
	if root := u.Add("b"); root != "b" {
		t.Errorf("Add(b) root = %q", root)
	}
	if root := u.Add("b"); root != "b" {
		t.Errorf("re-Add(b) root = %q", root)
	}
	if u.Len() != 1 || u.Sets() != 1 {
		t.Errorf("Len/Sets = %d/%d", u.Len(), u.Sets())
	}
	// Union adds unknown IDs and roots at the smallest member.
	if root := u.Union("c", "b"); root != "b" {
		t.Errorf("Union(c,b) root = %q, want b", root)
	}
	if root := u.Union("a", "c"); root != "a" {
		t.Errorf("Union(a,c) root = %q, want a", root)
	}
	if got, want := u.Members("b"), []string{"a", "b", "c"}; !reflect.DeepEqual(got, want) {
		t.Errorf("Members(b) = %v, want %v", got, want)
	}
	if u.Len() != 3 || u.Sets() != 1 {
		t.Errorf("Len/Sets = %d/%d, want 3/1", u.Len(), u.Sets())
	}
	// Self-union is a no-op.
	if root := u.Union("a", "a"); root != "a" {
		t.Errorf("Union(a,a) = %q", root)
	}
}

// TestUnionFindOrderIndependence: any union order over the same edge
// set yields identical roots and groups — the property the online
// store's concurrent folding relies on.
func TestUnionFindOrderIndependence(t *testing.T) {
	edges := [][2]string{{"d", "c"}, {"b", "a"}, {"c", "b"}, {"f", "e"}, {"g", "g"}}
	want := func() [][]string {
		u := NewUnionFind()
		for _, e := range edges {
			u.Union(e[0], e[1])
		}
		return u.Groups()
	}()
	// All permutations of 5 edges.
	var permute func(k int, order []int)
	perms := [][]int{}
	order := []int{0, 1, 2, 3, 4}
	permute = func(k int, order []int) {
		if k == len(order) {
			perms = append(perms, append([]int(nil), order...))
			return
		}
		for i := k; i < len(order); i++ {
			order[k], order[i] = order[i], order[k]
			permute(k+1, order)
			order[k], order[i] = order[i], order[k]
		}
	}
	permute(0, order)
	for _, p := range perms {
		u := NewUnionFind()
		for _, ei := range p {
			u.Union(edges[ei][0], edges[ei][1])
		}
		if got := u.Groups(); !reflect.DeepEqual(got, want) {
			t.Fatalf("order %v: groups %v, want %v", p, got, want)
		}
	}
	if want[0][0] != "a" {
		t.Fatalf("canonical first group should start at smallest ID: %v", want)
	}
}

func TestUnionFindIncrementalGrowth(t *testing.T) {
	u := NewUnionFind()
	for i := 0; i < 100; i++ {
		u.Add(fmt.Sprintf("n%03d", i))
	}
	// Chain every consecutive pair: one long transitive entity.
	for i := 1; i < 100; i++ {
		u.Union(fmt.Sprintf("n%03d", i-1), fmt.Sprintf("n%03d", i))
	}
	if u.Sets() != 1 {
		t.Fatalf("Sets = %d, want 1", u.Sets())
	}
	root, _ := u.Find("n099")
	if root != "n000" {
		t.Errorf("root = %q, want n000", root)
	}
	if got := u.Members("n050"); len(got) != 100 || got[0] != "n000" || got[99] != "n099" {
		t.Errorf("Members length %d, bounds %q..%q", len(got), got[0], got[len(got)-1])
	}
}
