// Package finetune implements the LLM fine-tuning of Section 4.3:
// fitting a model's matching weights to a dataset's training and
// validation pairs with the domain-simple-force prompt, for 10
// epochs, and producing an adapter that can be applied to any
// dataset (the transfer experiments of Table 7).
//
// The trainer is a logistic regression over the unified pair feature
// vector with two per-model regularizers that reproduce the paper's
// generalization findings: an anchor toward the model's innate
// weights (strong for GPT-mini, which "retains strong generalization
// capability across datasets") and a decay toward zero on weights
// without training signal (strong for the Llama models, whose
// fine-tuning "reduces generalizability" — domain-specific features
// unseen during training are forgotten).
package finetune

import (
	"fmt"
	"math"

	"llm4em/internal/datasets"
	"llm4em/internal/detrand"
	"llm4em/internal/entity"
	"llm4em/internal/features"
	"llm4em/internal/llm"
)

// Options configures a fine-tuning run.
type Options struct {
	// Epochs is the number of passes over the training pool; the
	// paper uses 10 for all models.
	Epochs int
	// LearningRate is the SGD step size; the default is 0.15.
	LearningRate float64
}

// DefaultOptions mirrors the paper's setup.
func DefaultOptions() Options {
	return Options{Epochs: 10, LearningRate: 0.15}
}

// Train fine-tunes the named model on the dataset's training and
// validation pools and returns the resulting adapter.
func Train(modelName string, ds *datasets.Dataset, opts Options) (llm.Adapter, error) {
	model, err := llm.New(modelName)
	if err != nil {
		return llm.Adapter{}, fmt.Errorf("finetune: %w", err)
	}
	profile := model.Profile()
	if profile.FTPlasticity == 0 {
		return llm.Adapter{}, fmt.Errorf("finetune: model %s does not support fine-tuning", modelName)
	}
	if opts.Epochs <= 0 {
		opts.Epochs = DefaultOptions().Epochs
	}
	if opts.LearningRate <= 0 {
		opts.LearningRate = DefaultOptions().LearningRate
	}

	pool := ds.TrainVal()
	examples := precompute(pool)
	base := model.BaseWeights()
	w := base

	// Regularizer strengths derived from the model's fine-tuning
	// profile: anchorLambda pulls weights toward the innate ones,
	// decayLambda pulls them toward zero. Features with training
	// signal escape both; features without signal settle at
	// anchor/(anchor+decay) of their innate value.
	anchorLambda := 0.06 * profile.FTRetention
	decayLambda := 0.05 * profile.FTPlasticity * (1 - profile.FTRetention)

	// Class weighting keeps the decision threshold at zero despite
	// the 1:4 to 1:8 label imbalance of the pools.
	var pos, neg float64
	for _, ex := range examples {
		if ex.match {
			pos++
		} else {
			neg++
		}
	}
	posWeight := 1.0
	if pos > 0 {
		posWeight = neg / pos
	}

	rng := detrand.New("finetune", modelName, ds.Key)
	order := make([]int, len(examples))
	for i := range order {
		order[i] = i
	}

	for epoch := 0; epoch < opts.Epochs; epoch++ {
		lr := opts.LearningRate / (1 + 0.5*float64(epoch))
		detrand.Shuffle(rng, order)
		for _, idx := range order {
			ex := examples[idx]
			p := features.Sigmoid(w.Score(ex.v, ex.pres))
			target := 0.0
			sampleWeight := 1.0
			if ex.match {
				target = 1
				sampleWeight = posWeight
			}
			grad := sampleWeight * (p - target)
			for i := 0; i < int(features.NumFeatures); i++ {
				if !ex.pres[i] {
					continue
				}
				w.W[i] -= lr * grad * (ex.v[i] - w.Center[i])
			}
			w.Bias -= lr * grad
		}
		// Regularization applied once per epoch over all dimensions,
		// including those absent from this dataset's pairs.
		for i := 0; i < int(features.NumFeatures); i++ {
			w.W[i] -= anchorLambda*(w.W[i]-base.W[i]) + decayLambda*w.W[i]
		}
		w.Bias -= anchorLambda * (w.Bias - base.Bias)
	}

	return llm.Adapter{Weights: w, TrainedOn: ds.Key}, nil
}

// example caches the feature view of a training pair.
type example struct {
	v     features.Vector
	pres  features.Presence
	match bool
}

func precompute(pool []entity.Pair) []example {
	out := make([]example, len(pool))
	for i, p := range pool {
		v, pres := features.PairFeaturesText(p.A.Serialize(), p.B.Serialize())
		out[i] = example{v: v, pres: pres, match: p.Match}
	}
	return out
}

// TrainingLoss evaluates the mean class-weighted logistic loss of
// weights over a pool — exposed for tests and convergence reporting.
func TrainingLoss(w features.Weights, pool []entity.Pair) float64 {
	if len(pool) == 0 {
		return 0
	}
	total := 0.0
	for _, p := range pool {
		v, pres := features.PairFeaturesText(p.A.Serialize(), p.B.Serialize())
		prob := features.Sigmoid(w.Score(v, pres))
		if p.Match {
			total += -math.Log(math.Max(prob, 1e-12))
		} else {
			total += -math.Log(math.Max(1-prob, 1e-12))
		}
	}
	return total / float64(len(pool))
}
