package finetune

import (
	"testing"

	"llm4em/internal/datasets"
	"llm4em/internal/entity"
	"llm4em/internal/eval"
	"llm4em/internal/features"
	"llm4em/internal/llm"
)

func evalAdapter(t *testing.T, w features.Weights, pairs []entity.Pair) float64 {
	t.Helper()
	var c eval.Confusion
	for _, p := range pairs {
		v, pres := features.PairFeaturesText(p.A.Serialize(), p.B.Serialize())
		c.Add(p.Match, w.Score(v, pres) > 0)
	}
	return c.F1()
}

func TestTrainRejectsNonTunableModel(t *testing.T) {
	ds := datasets.MustLoad("wdc")
	if _, err := Train(llm.GPT4, ds, DefaultOptions()); err == nil {
		t.Fatal("GPT-4 is not fine-tunable in the study; Train should refuse")
	}
	if _, err := Train("nope", ds, DefaultOptions()); err == nil {
		t.Fatal("unknown model should error")
	}
}

func TestTrainImprovesWeakModelInDomain(t *testing.T) {
	ds := datasets.MustLoad("wa")
	base := llm.MustNew(llm.Llama2).BaseWeights()
	adapter, err := Train(llm.Llama2, ds, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if adapter.TrainedOn != "wa" {
		t.Errorf("TrainedOn = %q", adapter.TrainedOn)
	}
	before := evalAdapter(t, base, ds.Test)
	after := evalAdapter(t, adapter.Weights, ds.Test)
	if after <= before {
		t.Errorf("fine-tuning did not improve Llama2 on wa: %.2f -> %.2f", before, after)
	}
	t.Logf("Llama2 wa: base %.2f -> fine-tuned %.2f", before, after)
}

func TestTrainReducesLoss(t *testing.T) {
	ds := datasets.MustLoad("ab")
	base := llm.MustNew(llm.Llama31).BaseWeights()
	adapter, err := Train(llm.Llama31, ds, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	pool := ds.TrainVal()
	if after, before := TrainingLoss(adapter.Weights, pool), TrainingLoss(base, pool); after >= before {
		t.Errorf("training loss did not decrease: %.4f -> %.4f", before, after)
	}
}

func TestTrainDeterministic(t *testing.T) {
	ds := datasets.MustLoad("ab")
	a, err := Train(llm.GPTMini, ds, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	b, err := Train(llm.GPTMini, ds, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if a.Weights != b.Weights {
		t.Error("fine-tuning is not deterministic")
	}
}

// TestTransferAsymmetry reproduces the paper's core fine-tuning
// finding (Table 7): GPT-mini fine-tuned on a publication dataset
// keeps working on product data, while Llama2 fine-tuned the same way
// collapses there.
func TestTransferAsymmetry(t *testing.T) {
	da := datasets.MustLoad("da")
	wdc := datasets.MustLoad("wdc")
	miniAdapter, err := Train(llm.GPTMini, da, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	llamaAdapter, err := Train(llm.Llama2, da, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	miniOnWDC := evalAdapter(t, miniAdapter.Weights, wdc.Test[:400])
	llamaOnWDC := evalAdapter(t, llamaAdapter.Weights, wdc.Test[:400])
	t.Logf("transfer da->wdc: GPT-mini %.2f, Llama2 %.2f", miniOnWDC, llamaOnWDC)
	if miniOnWDC <= llamaOnWDC {
		t.Errorf("GPT-mini (%.2f) should transfer better than Llama2 (%.2f)", miniOnWDC, llamaOnWDC)
	}
	if llamaOnWDC > 60 {
		t.Errorf("Llama2 transfer from publications should collapse, got %.2f", llamaOnWDC)
	}
}

func TestOptionsDefaults(t *testing.T) {
	ds := datasets.MustLoad("ab")
	// Zero options should fall back to defaults rather than training
	// for zero epochs.
	adapter, err := Train(llm.GPTMini, ds, Options{})
	if err != nil {
		t.Fatal(err)
	}
	base := llm.MustNew(llm.GPTMini).BaseWeights()
	if adapter.Weights == base {
		t.Error("training with default options left weights unchanged")
	}
}
