package chaos_test

import (
	"context"
	"errors"
	"fmt"
	"reflect"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"llm4em/internal/chaos"
	"llm4em/internal/entity"
	"llm4em/internal/llm"
	"llm4em/internal/persist"
	"llm4em/internal/pipeline"
	"llm4em/internal/resilience"
	"llm4em/internal/resolve"
)

func rec(id, title string) entity.Record {
	return entity.Record{ID: id, Attrs: []entity.Attr{{Name: "title", Value: title}}}
}

// matchClient is the healthy deterministic backend under the chaos
// wrapper: it answers Yes when the pairwise prompt shows the shared
// "sameent" marker on both sides, No otherwise.
type matchClient struct {
	calls atomic.Int64
}

func (c *matchClient) Name() string { return "match-sim" }

func (c *matchClient) Chat(messages []llm.Message) (llm.Response, error) {
	c.calls.Add(1)
	prompt := messages[len(messages)-1].Content
	answer := "No."
	if strings.Count(prompt, "sameent") >= 2 {
		answer = "Yes."
	}
	return llm.Response{Content: answer, PromptTokens: len(prompt) / 4, CompletionTokens: 2}, nil
}

// --- chaos client ---

// TestClientDeterminism pins the seeded fault schedule: two wrappers
// with the same seed and rates inject the identical fault sequence,
// which is what lets a chaos run be replayed and compared against a
// reference.
func TestClientDeterminism(t *testing.T) {
	opts := chaos.ClientOptions{Seed: 7, FailRate: 0.3, MalformedRate: 0.2}
	trace := func() []string {
		c := chaos.Wrap(&matchClient{}, opts)
		msgs := []llm.Message{{Role: llm.User, Content: "sameent sameent"}}
		var out []string
		for i := 0; i < 50; i++ {
			resp, err := c.Chat(msgs)
			switch {
			case err != nil:
				out = append(out, "fail")
			case resp.Content == "Yes.":
				out = append(out, "ok")
			default:
				out = append(out, "malformed")
			}
		}
		return out
	}
	a, b := trace(), trace()
	if !reflect.DeepEqual(a, b) {
		t.Fatalf("fault schedule not deterministic:\n%v\n%v", a, b)
	}
	joined := strings.Join(a, ",")
	for _, want := range []string{"fail", "ok", "malformed"} {
		if !strings.Contains(joined, want) {
			t.Errorf("50 calls at 30/20 rates injected no %q", want)
		}
	}
}

// TestClientOutageAndRetryAfter checks the outage lever and the
// retry hint on injected transient errors.
func TestClientOutageAndRetryAfter(t *testing.T) {
	inner := &matchClient{}
	c := chaos.Wrap(inner, chaos.ClientOptions{RetryAfter: 250 * time.Millisecond})
	msgs := []llm.Message{{Role: llm.User, Content: "x"}}

	c.SetOutage(true)
	_, err := c.Chat(msgs)
	if !errors.Is(err, pipeline.ErrTransient) {
		t.Fatalf("outage error not transient: %v", err)
	}
	if d, ok := pipeline.RetryAfter(err); !ok || d != 250*time.Millisecond {
		t.Fatalf("RetryAfter hint = %v,%v; want 250ms,true", d, ok)
	}
	if inner.calls.Load() != 0 {
		t.Fatalf("outage call reached the inner client")
	}
	if got := c.Injected().Outaged; got != 1 {
		t.Fatalf("Outaged = %d, want 1", got)
	}

	c.SetOutage(false)
	if _, err := c.Chat(msgs); err != nil {
		t.Fatalf("call after outage cleared: %v", err)
	}
}

// TestClientHangHonoursContext checks that an injected hang unblocks
// as soon as the caller's deadline expires — the property deadline
// propagation relies on.
func TestClientHangHonoursContext(t *testing.T) {
	c := chaos.Wrap(&matchClient{}, chaos.ClientOptions{HangRate: 1})
	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Millisecond)
	defer cancel()
	start := time.Now()
	_, err := c.ChatContext(ctx, []llm.Message{{Role: llm.User, Content: "x"}})
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("hang returned %v, want DeadlineExceeded", err)
	}
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Fatalf("hang outlived the deadline by %v", elapsed)
	}
}

// --- chaos filesystem: WAL write-path failures (satellite 4) ---

// seedStore opens a persistent store over fsys with two records
// added one at a time, so the WAL write ordinals are fixed: writes 1
// and 2 are the record entries, write 3 is the first resolve's
// decision entry.
func seedStore(t *testing.T, dir string, fsys persist.FS, opts resolve.Options) *resolve.Store {
	t.Helper()
	opts.PersistDir = dir
	opts.WALFS = fsys
	s, err := resolve.Open(&matchClient{}, opts)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Add(rec("r1", "alpha beta sameent0001")); err != nil {
		t.Fatal(err)
	}
	if err := s.Add(rec("r2", "gamma delta other0001")); err != nil {
		t.Fatal(err)
	}
	return s
}

// reopenJournal reopens dir over the real filesystem and returns the
// final journal keyed query|candidate — the durable prefix a restart
// would see.
func reopenJournal(t *testing.T, dir string) map[string]persist.DecisionEntry {
	t.Helper()
	s, err := resolve.Open(&matchClient{}, resolve.Options{PersistDir: dir})
	if err != nil {
		t.Fatalf("store not reopenable: %v", err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	snap, ok, err := persist.ReadSnapshot(dir)
	if err != nil || !ok {
		t.Fatalf("ReadSnapshot: ok=%v err=%v", ok, err)
	}
	m := map[string]persist.DecisionEntry{}
	for _, j := range snap.Journal {
		m[j.QueryID+"|"+j.CandidateID] = j
	}
	return m
}

// TestWALFsyncError injects an fsync failure and checks it surfaces
// as the typed durability error while the store itself stays usable
// and reopenable.
func TestWALFsyncError(t *testing.T) {
	dir := t.TempDir()
	fsys := chaos.NewFS(chaos.FSOptions{FailSyncAt: 1})
	s := seedStore(t, dir, fsys, resolve.Options{})

	if _, err := s.Resolve(rec("q1", "alpha beta sameent0001")); err != nil {
		t.Fatalf("resolve: %v", err)
	}
	err := s.Flush()
	if !errors.Is(err, persist.ErrWALWrite) {
		t.Fatalf("Flush after injected fsync failure = %v, want ErrWALWrite", err)
	}
	// The failure was transient: the next fsync lands everything.
	if err := s.Flush(); err != nil {
		t.Fatalf("Flush retry: %v", err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	j := reopenJournal(t, dir)
	if d, ok := j["q1|r1"]; !ok || !d.Match {
		t.Fatalf("decision q1|r1 not durable after fsync recovery: %+v ok=%v", d, ok)
	}
}

// TestWALShortWrite injects a short write on the resolve append: the
// call must fail with the typed error, the log must roll back to the
// previous entry boundary, and the store must keep journaling and
// stay reopenable from the durable prefix.
func TestWALShortWrite(t *testing.T) {
	testWALAppendFault(t, chaos.FSOptions{ShortWriteAt: 3})
}

// TestWALENOSPC is the same contract when the append fails up front
// with a full disk.
func TestWALENOSPC(t *testing.T) {
	testWALAppendFault(t, chaos.FSOptions{ENOSPCAt: 3})
}

func testWALAppendFault(t *testing.T, faults chaos.FSOptions) {
	dir := t.TempDir()
	fsys := chaos.NewFS(faults)
	s := seedStore(t, dir, fsys, resolve.Options{})

	// Write 3: the decision entry hits the injected fault.
	_, err := s.Resolve(rec("q1", "alpha beta sameent0001"))
	if !errors.Is(err, persist.ErrWALWrite) {
		t.Fatalf("resolve over faulted append = %v, want ErrWALWrite", err)
	}
	// The log rolled back cleanly, so the store keeps accepting work.
	if _, err := s.Resolve(rec("q2", "gamma delta other0001")); err != nil {
		t.Fatalf("resolve after rollback: %v", err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	j := reopenJournal(t, dir)
	if _, ok := j["q1|r1"]; ok {
		t.Errorf("failed append q1|r1 reappeared after reopen")
	}
	if d, ok := j["q2|r2"]; !ok || !d.Match {
		t.Errorf("post-rollback decision q2|r2 not durable: %+v ok=%v", d, ok)
	}
}

// --- differential chaos run (tentpole part d) ---

// chaosResilience trips the breaker on the first failure and retries
// deferred pairs every couple of milliseconds, so outage tests
// converge fast.
func chaosResilience() resolve.ResilienceOptions {
	return resolve.ResilienceOptions{
		Enabled: true,
		Breaker: resilience.BreakerOptions{
			ConsecutiveFailures: 1,
			Cooldown:            time.Millisecond,
		},
		RetryInterval: 2 * time.Millisecond,
	}
}

// TestOutageDifferential is the acceptance check for graceful
// degradation: under a full injected LLM outage every resolve
// returns a local verdict marked Deferred with no surfaced error;
// after the outage clears, the re-escalator drains the queue and the
// final durable journal and entity groups are byte-identical to an
// uninterrupted run over the same inputs.
func TestOutageDifferential(t *testing.T) {
	var seed []entity.Record
	var queries []entity.Record
	for i := 0; i < 8; i++ {
		marker := "sameent"
		if i%2 == 1 {
			marker = "other"
		}
		seed = append(seed, rec(fmt.Sprintf("r%02d", i),
			fmt.Sprintf("alpha beta %s%04d", marker, i)))
		queries = append(queries, rec(fmt.Sprintf("q%02d", i),
			fmt.Sprintf("alpha beta sameent%04d", i)))
	}

	run := func(dir string, outage bool) *persist.Snapshot {
		wrapped := chaos.Wrap(&matchClient{}, chaos.ClientOptions{Seed: 42})
		s, err := resolve.Open(wrapped, resolve.Options{
			Cascade:    resolve.CascadeOptions{Disable: true},
			PersistDir: dir,
			Resilience: chaosResilience(),
		})
		if err != nil {
			t.Fatal(err)
		}
		if err := s.AddBatch(seed); err != nil {
			t.Fatal(err)
		}
		wrapped.SetOutage(outage)
		for _, q := range queries {
			res, err := s.Resolve(q)
			if err != nil {
				t.Fatalf("resolve %s: %v", q.ID, err)
			}
			if !outage {
				continue
			}
			// 100% of escalations degrade: every decision is a local
			// verdict explicitly marked deferred.
			for _, d := range res.Decisions {
				if !d.Deferred || d.Method != resolve.MethodDeferred {
					t.Fatalf("resolve %s under outage: decision %s method=%s deferred=%v",
						q.ID, d.CandidateID, d.Method, d.Deferred)
				}
			}
		}
		if outage {
			st := s.Stats().Resilience
			if st.BreakerState != "open" {
				t.Fatalf("breaker %s during outage, want open", st.BreakerState)
			}
			if st.DeferredQueue == 0 || st.DeferredPairs == 0 {
				t.Fatalf("no deferred pairs queued during outage: %+v", st)
			}
			if wrapped.Injected().Outaged == 0 {
				t.Fatalf("chaos client injected no outage failures")
			}
			wrapped.SetOutage(false)
			deadline := time.Now().Add(5 * time.Second)
			for s.Stats().Resilience.DeferredQueue != 0 {
				if time.Now().After(deadline) {
					t.Fatalf("deferred queue never drained: %+v", s.Stats().Resilience)
				}
				time.Sleep(time.Millisecond)
			}
			if got := s.Stats().Resilience.Redecided; got == 0 {
				t.Fatalf("queue drained but nothing re-decided")
			}
		}
		if err := s.Close(); err != nil {
			t.Fatal(err)
		}
		snap, ok, err := persist.ReadSnapshot(dir)
		if err != nil || !ok {
			t.Fatalf("ReadSnapshot: ok=%v err=%v", ok, err)
		}
		return snap
	}

	healthy := run(t.TempDir(), false)
	recovered := run(t.TempDir(), true)

	if !reflect.DeepEqual(healthy.Groups, recovered.Groups) {
		t.Errorf("groups diverged:\nhealthy:   %v\nrecovered: %v",
			healthy.Groups, recovered.Groups)
	}
	toMap := func(js []persist.DecisionEntry) map[string]persist.DecisionEntry {
		m := map[string]persist.DecisionEntry{}
		for _, j := range js {
			m[j.QueryID+"|"+j.CandidateID] = j
		}
		return m
	}
	hj, rj := toMap(healthy.Journal), toMap(recovered.Journal)
	if !reflect.DeepEqual(hj, rj) {
		t.Errorf("journals diverged:\nhealthy:   %v\nrecovered: %v", hj, rj)
	}
	if len(recovered.Deferred) != 0 {
		t.Errorf("recovered snapshot still carries %d deferred pairs", len(recovered.Deferred))
	}
}

// TestFaultMixStillConverges runs the richer fault mix — transient
// errors, malformed replies, latency spikes — on top of the
// resilience layer and checks that every resolve still completes
// without a surfaced error and the store drains to a steady state.
func TestFaultMixStillConverges(t *testing.T) {
	wrapped := chaos.Wrap(&matchClient{}, chaos.ClientOptions{
		Seed:          11,
		FailRate:      0.2,
		MalformedRate: 0.1,
		LatencyRate:   0.2,
		LatencySpike:  time.Millisecond,
	})
	s := resolve.New(wrapped, resolve.Options{
		Cascade:    resolve.CascadeOptions{Disable: true},
		Resilience: chaosResilience(),
	})
	defer s.Close()
	for i := 0; i < 6; i++ {
		if err := s.Add(rec(fmt.Sprintf("r%02d", i),
			fmt.Sprintf("alpha beta sameent%04d", i))); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 6; i++ {
		res, err := s.Resolve(rec(fmt.Sprintf("q%02d", i),
			fmt.Sprintf("alpha beta sameent%04d", i)))
		if err != nil {
			t.Fatalf("resolve under fault mix: %v", err)
		}
		if len(res.Decisions) == 0 {
			t.Fatalf("resolve q%02d produced no decisions", i)
		}
	}
	deadline := time.Now().Add(5 * time.Second)
	for s.Stats().Resilience.DeferredQueue != 0 {
		if time.Now().After(deadline) {
			t.Fatalf("deferred queue never drained: %+v", s.Stats().Resilience)
		}
		time.Sleep(time.Millisecond)
	}
}
