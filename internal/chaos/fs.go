package chaos

import (
	"fmt"
	"sync/atomic"
	"syscall"

	"llm4em/internal/persist"
)

// FSOptions configures write-path fault injection. Ordinals are
// 1-based and count calls across every file the FS has opened; zero
// disables that fault. Each fault fires exactly once — the call at
// the configured ordinal fails, later calls succeed — modelling a
// transient disk error rather than a permanently broken device (a
// permanently full disk is just a store that can't append; the
// interesting behaviour is what one failure does to durability).
type FSOptions struct {
	// FailSyncAt makes the Nth Sync call return an injected error.
	FailSyncAt int64
	// ShortWriteAt makes the Nth Write call write only half its
	// buffer to the underlying file before failing.
	ShortWriteAt int64
	// ENOSPCAt makes the Nth Write call fail with syscall.ENOSPC
	// without writing anything.
	ENOSPCAt int64
}

// FS wraps a persist.FS with fault injection on the files it opens.
// Inject it through resolve.Options.WALFS.
type FS struct {
	inner  persist.FS
	opts   FSOptions
	writes atomic.Int64
	syncs  atomic.Int64
}

// NewFS returns a fault-injecting filesystem over the real one.
func NewFS(o FSOptions) *FS { return WrapFS(persist.OS, o) }

// WrapFS returns a fault-injecting filesystem over inner.
func WrapFS(inner persist.FS, o FSOptions) *FS {
	return &FS{inner: inner, opts: o}
}

// Writes returns the number of Write calls seen across all files.
func (f *FS) Writes() int64 { return f.writes.Load() }

// Syncs returns the number of Sync calls seen across all files.
func (f *FS) Syncs() int64 { return f.syncs.Load() }

// OpenFile opens path through the inner FS and wraps the handle so
// its writes and fsyncs draw from this FS's fault schedule.
func (f *FS) OpenFile(path string) (persist.File, error) {
	inner, err := f.inner.OpenFile(path)
	if err != nil {
		return nil, err
	}
	return &file{File: inner, fs: f}, nil
}

// file wraps a persist.File, sharing the owning FS's call counters so
// fault ordinals are stable regardless of how many files the store
// opens. Read, Seek, Truncate and Close pass through untouched: the
// harness targets the append path (Write/Sync), and rollback after a
// failed append must work or the poison path would dominate every
// test.
type file struct {
	persist.File
	fs *FS
}

func (c *file) Write(p []byte) (int, error) {
	n := c.fs.writes.Add(1)
	switch {
	case c.fs.opts.ENOSPCAt > 0 && n == c.fs.opts.ENOSPCAt:
		return 0, fmt.Errorf("chaos: injected disk full (write %d): %w", n, syscall.ENOSPC)
	case c.fs.opts.ShortWriteAt > 0 && n == c.fs.opts.ShortWriteAt:
		written, err := c.File.Write(p[:len(p)/2])
		if err != nil {
			return written, err
		}
		return written, fmt.Errorf("chaos: injected short write (%d of %d bytes, write %d)", written, len(p), n)
	}
	return c.File.Write(p)
}

func (c *file) Sync() error {
	n := c.fs.syncs.Add(1)
	if c.fs.opts.FailSyncAt > 0 && n == c.fs.opts.FailSyncAt {
		return fmt.Errorf("chaos: injected fsync failure (sync %d)", n)
	}
	return c.File.Sync()
}
