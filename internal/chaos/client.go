// Package chaos provides deterministic fault injection for the
// resilience layer's proof harness: a wrapping LLM client that
// injects latency spikes, transient error bursts, malformed replies,
// hangs and full outage windows, and a wrapping filesystem that
// injects short writes, fsync errors and ENOSPC into the WAL write
// path. Every injected fault is derived from a seed and the call
// ordinal through internal/detrand, so a chaos run replays
// identically — the differential tests depend on that to compare a
// faulted run against a healthy reference byte for byte.
package chaos

import (
	"context"
	"fmt"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"llm4em/internal/detrand"
	"llm4em/internal/llm"
	"llm4em/internal/pipeline"
)

// DefaultHangMax caps an injected hang when the caller's context has
// no deadline, so a chaos run can never wedge a test binary.
const DefaultHangMax = 30 * time.Second

// ClientOptions configures the fault mix. The rates partition the
// unit interval in field order — FailRate, then MalformedRate, then
// HangRate, then LatencyRate — so a call draws one fault at most;
// rates summing above 1 saturate rather than error.
type ClientOptions struct {
	// Seed namespaces the deterministic fault draw. Two clients with
	// the same seed and rates inject the same fault on the same call
	// ordinal.
	Seed uint64
	// FailRate is the probability a call fails with a transient error
	// (the pipeline retries it; the breaker counts it).
	FailRate float64
	// MalformedRate is the probability a call succeeds with garbage
	// content the answer parser cannot interpret.
	MalformedRate float64
	// HangRate is the probability a call blocks until the caller's
	// context is cancelled (or HangMax elapses).
	HangRate float64
	// HangMax bounds an injected hang. Defaults to DefaultHangMax.
	HangMax time.Duration
	// LatencyRate is the probability a call is delayed by
	// LatencySpike before passing through.
	LatencyRate float64
	// LatencySpike is the injected delay for latency faults.
	// Defaults to 10ms when LatencyRate is set.
	LatencySpike time.Duration
	// RetryAfter, when set, attaches a retry hint to injected
	// transient errors, exercising the pipeline's hint-honouring
	// backoff path.
	RetryAfter time.Duration
}

// Client wraps an inner LLM client with seeded fault injection. It
// implements llm.ContextClient; hangs and latency spikes honour the
// caller's context.
type Client struct {
	inner llm.Client
	opts  ClientOptions
	calls atomic.Uint64

	mu          sync.Mutex
	outage      bool
	outageUntil time.Time

	// Injected-fault counters, for test assertions.
	failures  atomic.Uint64
	malformed atomic.Uint64
	hangs     atomic.Uint64
	delays    atomic.Uint64
	outaged   atomic.Uint64
}

// Wrap returns a fault-injecting client around inner.
func Wrap(inner llm.Client, o ClientOptions) *Client {
	if o.HangMax <= 0 {
		o.HangMax = DefaultHangMax
	}
	if o.LatencyRate > 0 && o.LatencySpike <= 0 {
		o.LatencySpike = 10 * time.Millisecond
	}
	return &Client{inner: inner, opts: o}
}

// Name reports the inner model's name: the chaos wrapper impersonates
// the backend it wraps, so accounting and prompts are unchanged.
func (c *Client) Name() string { return c.inner.Name() }

// SetOutage switches a full outage window on or off. While on, every
// call fails with a transient error regardless of the fault rates —
// the harness's "backend is down" lever.
func (c *Client) SetOutage(on bool) {
	c.mu.Lock()
	c.outage = on
	c.outageUntil = time.Time{}
	c.mu.Unlock()
}

// OutageFor starts an outage window that clears itself after d.
func (c *Client) OutageFor(d time.Duration) {
	c.mu.Lock()
	c.outage = false
	c.outageUntil = time.Now().Add(d)
	c.mu.Unlock()
}

func (c *Client) inOutage() bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.outage {
		return true
	}
	return !c.outageUntil.IsZero() && time.Now().Before(c.outageUntil)
}

// Calls returns the number of calls the wrapper has seen.
func (c *Client) Calls() uint64 { return c.calls.Load() }

// InjectedStats reports how many of each fault the wrapper injected.
type InjectedStats struct {
	Failures  uint64 // transient errors (fault draw)
	Malformed uint64 // garbage replies
	Hangs     uint64 // blocked until cancel/HangMax
	Delays    uint64 // latency spikes
	Outaged   uint64 // calls rejected by an outage window
}

// Injected returns the fault counters.
func (c *Client) Injected() InjectedStats {
	return InjectedStats{
		Failures:  c.failures.Load(),
		Malformed: c.malformed.Load(),
		Hangs:     c.hangs.Load(),
		Delays:    c.delays.Load(),
		Outaged:   c.outaged.Load(),
	}
}

// transient builds the injected error, attaching the RetryAfter hint
// when configured.
func (c *Client) transient(err error) error {
	if c.opts.RetryAfter > 0 {
		return pipeline.TransientAfter(err, c.opts.RetryAfter)
	}
	return pipeline.Transient(err)
}

// Chat satisfies llm.Client. Faults that need a context (hangs,
// delays) are bounded by HangMax/LatencySpike alone.
func (c *Client) Chat(messages []llm.Message) (llm.Response, error) {
	return c.ChatContext(context.Background(), messages)
}

// ChatContext draws at most one fault for this call, applies it, and
// otherwise passes through to the inner client.
func (c *Client) ChatContext(ctx context.Context, messages []llm.Message) (llm.Response, error) {
	n := c.calls.Add(1)
	if c.inOutage() {
		c.outaged.Add(1)
		return llm.Response{}, c.transient(fmt.Errorf("chaos: outage window (call %d)", n))
	}
	u := detrand.Unit("chaos-client", strconv.FormatUint(c.opts.Seed, 10), strconv.FormatUint(n, 10))
	switch {
	case u < c.opts.FailRate:
		c.failures.Add(1)
		return llm.Response{}, c.transient(fmt.Errorf("chaos: injected failure (call %d)", n))
	case u < c.opts.FailRate+c.opts.MalformedRate:
		c.malformed.Add(1)
		return llm.Response{
			Content:          fmt.Sprintf("\x00\x7f%%chaos-malformed-%d%%\x00", n),
			PromptTokens:     1,
			CompletionTokens: 1,
		}, nil
	case u < c.opts.FailRate+c.opts.MalformedRate+c.opts.HangRate:
		c.hangs.Add(1)
		select {
		case <-ctx.Done():
			return llm.Response{}, ctx.Err()
		case <-time.After(c.opts.HangMax):
			return llm.Response{}, c.transient(fmt.Errorf("chaos: hang expired after %v (call %d)", c.opts.HangMax, n))
		}
	case u < c.opts.FailRate+c.opts.MalformedRate+c.opts.HangRate+c.opts.LatencyRate:
		c.delays.Add(1)
		select {
		case <-ctx.Done():
			return llm.Response{}, ctx.Err()
		case <-time.After(c.opts.LatencySpike):
		}
		resp, err := llm.ChatContext(ctx, c.inner, messages)
		resp.Latency += c.opts.LatencySpike
		return resp, err
	}
	return llm.ChatContext(ctx, c.inner, messages)
}
