// Package tokenize provides the tokenization primitives used across
// the system: lower-cased word tokenization for string-similarity
// computation, character n-grams for the PLM feature extractors, and
// an API-style subword token estimator for the cost analysis of
// Section 5.
package tokenize

import (
	"strings"
	"unicode"
	"unicode/utf8"
)

// Words splits s into lower-cased word tokens. A token is a maximal
// run of letters and digits; all other characters act as separators.
// Alphanumeric model numbers such as "X500-B" therefore become
// "x500" and "b", while "X500B" stays one token.
//
// The string is lower-cased once and tokens are substrings of that
// copy, so tokenizing costs one allocation (zero for already-lower
// ASCII input) plus result-slice growth, not one per token.
// Lower-casing first is equivalent to lower-casing per token:
// unicode.ToLower maps letters to letters and leaves separators
// untouched.
func Words(s string) []string {
	lower := strings.ToLower(s)
	var tokens []string
	start := -1
	for i, r := range lower {
		if unicode.IsLetter(r) || unicode.IsDigit(r) {
			if start < 0 {
				start = i
			}
		} else if start >= 0 {
			tokens = append(tokens, lower[start:i])
			start = -1
		}
	}
	if start >= 0 {
		tokens = append(tokens, lower[start:])
	}
	return tokens
}

// WordsKeepAlnum splits s into lower-cased tokens, keeping characters
// of mixed alphanumeric tokens together even across '-' and '/' so
// that model numbers like "wd-5000aaks" survive as single tokens.
// Tokens are substrings of one lower-cased copy, as in Words.
func WordsKeepAlnum(s string) []string {
	lower := strings.ToLower(s)
	var tokens []string
	start := -1
	flush := func(end int) {
		if start < 0 {
			return
		}
		// Trim trailing joiners left by values such as "model-".
		if t := strings.Trim(lower[start:end], "-/."); t != "" {
			tokens = append(tokens, t)
		}
		start = -1
	}
	for i, r := range lower {
		switch {
		case unicode.IsLetter(r) || unicode.IsDigit(r):
			if start < 0 {
				start = i
			}
		case (r == '-' || r == '/' || r == '.') && start >= 0:
			// Joiner inside a started token: keep scanning.
		default:
			flush(i)
		}
	}
	flush(len(lower))
	return tokens
}

// Set returns the set of tokens in s as a map.
func Set(tokens []string) map[string]bool {
	m := make(map[string]bool, len(tokens))
	for _, t := range tokens {
		m[t] = true
	}
	return m
}

// Counts returns token frequencies.
func Counts(tokens []string) map[string]int {
	m := make(map[string]int, len(tokens))
	for _, t := range tokens {
		m[t]++
	}
	return m
}

// CharNGrams returns the character n-grams of s (lower-cased, with
// word-boundary padding using '#'), used by the PLM feature hasher.
// It returns nil if n <= 0.
func CharNGrams(s string, n int) []string {
	if n <= 0 {
		return nil
	}
	padded := "#" + strings.ToLower(s) + "#"
	runes := []rune(padded)
	if len(runes) < n {
		return []string{string(runes)}
	}
	grams := make([]string, 0, len(runes)-n+1)
	for i := 0; i+n <= len(runes); i++ {
		grams = append(grams, string(runes[i:i+n]))
	}
	return grams
}

// HasDigit reports whether the token contains at least one digit.
func HasDigit(s string) bool {
	for _, r := range s {
		if unicode.IsDigit(r) {
			return true
		}
	}
	return false
}

// HasLetter reports whether the token contains at least one letter.
func HasLetter(s string) bool {
	for _, r := range s {
		if unicode.IsLetter(r) {
			return true
		}
	}
	return false
}

// IsNumeric reports whether the token consists only of digits,
// optionally with a single decimal point.
func IsNumeric(s string) bool {
	if s == "" {
		return false
	}
	dots := 0
	for _, r := range s {
		switch {
		case unicode.IsDigit(r):
		case r == '.':
			dots++
			if dots > 1 {
				return false
			}
		default:
			return false
		}
	}
	return s != "."
}

// EstimateTokens estimates the number of API billing tokens of s,
// approximating the byte-pair encodings used by hosted LLMs. Common
// short English words map to one token; longer words are split into
// roughly 4-character pieces; whitespace attaches to the following
// word as in GPT tokenizers; punctuation counts separately. The
// estimator only needs to be consistent and roughly proportional to
// real tokenizers for the relative cost analysis of Table 8.
func EstimateTokens(s string) int {
	if s == "" {
		return 0
	}
	n := 0
	fields := strings.FieldsFunc(s, func(r rune) bool {
		return unicode.IsSpace(r)
	})
	for _, f := range fields {
		// Split punctuation off the word edges; each punctuation run
		// costs one token. Edges are decoded as runes, not bytes: a
		// byte-at-a-time scan would misread every multi-byte leading
		// quote or dash as word content.
		word := f
		for word != "" {
			r, size := utf8.DecodeRuneInString(word)
			if unicode.IsLetter(r) || unicode.IsDigit(r) {
				break
			}
			n++
			word = word[size:]
		}
		trailing := 0
		for word != "" {
			r, size := utf8.DecodeLastRuneInString(word)
			if unicode.IsLetter(r) || unicode.IsDigit(r) {
				break
			}
			trailing++
			word = word[:len(word)-size]
		}
		if word != "" {
			// ~4 characters per subword piece.
			n += (len(word) + 3) / 4
		}
		n += trailing
	}
	return n
}
