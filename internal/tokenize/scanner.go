package tokenize

import (
	"unicode"
	"unicode/utf8"
)

// Scanner yields the tokens of a string one at a time — maximal
// lower-cased runs of letters and digits, exactly the split Words and
// Vocab.AppendIDs apply — without materializing token strings. Callers
// that map tokens against more than one lookup structure (the blocking
// index probes an mmap'ed snapshot's token table before its live
// vocabulary) drive the split themselves through a Scanner instead of
// the Vocab append helpers.
//
// The byte slice Next returns aliases the scanner's scratch buffer and
// is valid only until the following Next or Reset. A Scanner is
// single-use state, not safe for concurrent use; pools of query
// scratch hold one each.
type Scanner struct {
	s   string
	i   int
	buf []byte
}

// Reset points the scanner at s. buf is the caller-owned lower-casing
// scratch to (re)use; retrieve its grown form with Buf after scanning.
func (sc *Scanner) Reset(s string, buf []byte) {
	sc.s = s
	sc.i = 0
	sc.buf = buf[:0]
}

// Next returns the next token, or ok == false when the string is
// exhausted.
func (sc *Scanner) Next() (tok []byte, ok bool) {
	buf := sc.buf[:0]
	for sc.i < len(sc.s) {
		r, n := utf8.DecodeRuneInString(sc.s[sc.i:])
		sc.i += n
		if unicode.IsLetter(r) || unicode.IsDigit(r) {
			buf = utf8.AppendRune(buf, unicode.ToLower(r))
			continue
		}
		if len(buf) > 0 {
			sc.buf = buf
			return buf, true
		}
	}
	sc.buf = buf
	return buf, len(buf) > 0
}

// Buf returns the scanner's (possibly grown) scratch buffer so pooled
// callers can carry it to the next Reset.
func (sc *Scanner) Buf() []byte { return sc.buf }
