package tokenize

import (
	"reflect"
	"strings"
	"testing"
	"testing/quick"
)

func TestWords(t *testing.T) {
	tests := []struct {
		in   string
		want []string
	}{
		{"Sony WH-1000XM4", []string{"sony", "wh", "1000xm4"}},
		{"", nil},
		{"  ", nil},
		{"Hello, World!", []string{"hello", "world"}},
		{"price: $12.99", []string{"price", "12", "99"}},
		{"ABC123def", []string{"abc123def"}},
	}
	for _, tt := range tests {
		if got := Words(tt.in); !reflect.DeepEqual(got, tt.want) {
			t.Errorf("Words(%q) = %v, want %v", tt.in, got, tt.want)
		}
	}
}

func TestWordsKeepAlnum(t *testing.T) {
	tests := []struct {
		in   string
		want []string
	}{
		{"WD-5000AAKS drive", []string{"wd-5000aaks", "drive"}},
		{"model- x", []string{"model", "x"}},
		{"a/b", []string{"a/b"}},
		{"v1.2 beta", []string{"v1.2", "beta"}},
		{"", nil},
	}
	for _, tt := range tests {
		if got := WordsKeepAlnum(tt.in); !reflect.DeepEqual(got, tt.want) {
			t.Errorf("WordsKeepAlnum(%q) = %v, want %v", tt.in, got, tt.want)
		}
	}
}

func TestWordsAreLowercase(t *testing.T) {
	f := func(s string) bool {
		for _, w := range Words(s) {
			if w != strings.ToLower(w) || w == "" {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestSetAndCounts(t *testing.T) {
	toks := []string{"a", "b", "a", "c"}
	s := Set(toks)
	if len(s) != 3 || !s["a"] || !s["b"] || !s["c"] {
		t.Errorf("Set = %v", s)
	}
	c := Counts(toks)
	if c["a"] != 2 || c["b"] != 1 {
		t.Errorf("Counts = %v", c)
	}
}

func TestCharNGrams(t *testing.T) {
	got := CharNGrams("ab", 2)
	want := []string{"#a", "ab", "b#"}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("CharNGrams(ab,2) = %v, want %v", got, want)
	}
	if CharNGrams("x", 0) != nil {
		t.Error("n=0 should return nil")
	}
	short := CharNGrams("", 5)
	if len(short) != 1 || short[0] != "##" {
		t.Errorf("short input should return whole padded string, got %v", short)
	}
}

func TestCharNGramsCount(t *testing.T) {
	// Property: for n <= len(padded), number of n-grams equals
	// len(padded) - n + 1 over runes.
	f := func(s string) bool {
		n := 3
		padded := len([]rune("#" + strings.ToLower(s) + "#"))
		grams := CharNGrams(s, n)
		if padded < n {
			return len(grams) == 1
		}
		return len(grams) == padded-n+1
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestPredicates(t *testing.T) {
	if !HasDigit("abc1") || HasDigit("abc") {
		t.Error("HasDigit wrong")
	}
	if !HasLetter("1a") || HasLetter("123") {
		t.Error("HasLetter wrong")
	}
	if !IsNumeric("12.5") || !IsNumeric("7") || IsNumeric("1.2.3") || IsNumeric("x1") || IsNumeric("") || IsNumeric(".") {
		t.Error("IsNumeric wrong")
	}
}

func TestEstimateTokens(t *testing.T) {
	if EstimateTokens("") != 0 {
		t.Error("empty string should have 0 tokens")
	}
	// Short words ~1 token each.
	n := EstimateTokens("the cat sat")
	if n != 3 {
		t.Errorf("EstimateTokens(the cat sat) = %d, want 3", n)
	}
	// Longer words split.
	long := EstimateTokens("internationalization")
	if long < 4 || long > 6 {
		t.Errorf("EstimateTokens(internationalization) = %d, want 4-6", long)
	}
	// Punctuation counts.
	if EstimateTokens("yes.") != 2 {
		t.Errorf("EstimateTokens(yes.) = %d, want 2", EstimateTokens("yes."))
	}
}

func TestEstimateTokensMonotoneInRepetition(t *testing.T) {
	a := EstimateTokens("word word word")
	b := EstimateTokens("word word word word word word")
	if b != 2*a {
		t.Errorf("doubling words should double tokens: %d vs %d", a, b)
	}
}

func TestEstimateTokensNonNegative(t *testing.T) {
	f := func(s string) bool { return EstimateTokens(s) >= 0 }
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
