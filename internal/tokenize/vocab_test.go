package tokenize

import (
	"reflect"
	"testing"
)

func TestVocabInterning(t *testing.T) {
	v := NewVocab()
	a := v.ID("sony")
	b := v.ID("camera")
	if a == b {
		t.Fatal("distinct tokens share an ID")
	}
	if got := v.ID("sony"); got != a {
		t.Fatalf("re-interning changed the ID: %d vs %d", got, a)
	}
	if got, ok := v.Lookup("camera"); !ok || got != b {
		t.Fatalf("Lookup(camera) = %d,%v want %d,true", got, ok, b)
	}
	if _, ok := v.Lookup("unknown"); ok {
		t.Fatal("Lookup invented an ID")
	}
	if v.Len() != 2 {
		t.Fatalf("Len = %d, want 2", v.Len())
	}
	if v.Token(a) != "sony" || v.Token(b) != "camera" {
		t.Fatal("Token round-trip broken")
	}
}

// TestAppendIDsMatchesWords: the interning tokenizer must split
// exactly like Words, including unicode case folding and mixed
// alphanumerics.
func TestAppendIDsMatchesWords(t *testing.T) {
	inputs := []string{
		"Sony DSC-120B Camera (black)",
		"  multiple   spaces\tand\npunctuation!!",
		"X500B stays one token, X500-B splits",
		"ÜBER Größe łódź",
		"",
		"...",
		"a",
	}
	for _, s := range inputs {
		v := NewVocab()
		ids := v.AppendIDs(nil, s)
		words := Words(s)
		if len(ids) != len(words) {
			t.Fatalf("%q: %d IDs vs %d words", s, len(ids), len(words))
		}
		for i, id := range ids {
			if v.Token(id) != words[i] {
				t.Fatalf("%q token %d: ID maps to %q, Words says %q", s, i, v.Token(id), words[i])
			}
		}

		// Known-ID tokenization sees the same tokens once they are
		// interned…
		known, _ := v.AppendKnownIDs(nil, nil, s)
		if !reflect.DeepEqual(known, ids) {
			t.Fatalf("%q: AppendKnownIDs %v != AppendIDs %v", s, known, ids)
		}
		// …and maps pre-split tokens identically.
		fromTokens := v.AppendKnownTokenIDs(nil, words)
		if !reflect.DeepEqual(fromTokens, ids) {
			t.Fatalf("%q: AppendKnownTokenIDs %v != AppendIDs %v", s, fromTokens, ids)
		}
	}
}

// TestAppendKnownIDsSkipsUnknown: tokens never interned are dropped —
// for an IDF index the exact equivalent of a zero document frequency.
func TestAppendKnownIDsSkipsUnknown(t *testing.T) {
	v := NewVocab()
	sony := v.ID("sony")
	ids, _ := v.AppendKnownIDs(nil, nil, "Sony unknownbrand camera")
	if !reflect.DeepEqual(ids, []uint32{sony}) {
		t.Fatalf("known IDs = %v, want [%d]", ids, sony)
	}
}

// TestAppendIDsAllocs pins the allocation behavior the blocking hot
// path depends on: repeated tokenization of known tokens into a
// reused buffer does not allocate.
func TestAppendIDsAllocs(t *testing.T) {
	v := NewVocab()
	text := "sony camera model500 pro kit"
	ids := v.AppendIDs(nil, text) // intern everything once
	var buf []byte
	avg := testing.AllocsPerRun(100, func() {
		ids, buf = v.AppendKnownIDs(ids[:0], buf, text)
	})
	if avg > 0 {
		t.Fatalf("AppendKnownIDs allocates %.1f times per call on known tokens, want 0", avg)
	}
	avg = testing.AllocsPerRun(100, func() {
		ids = v.AppendIDs(ids[:0], text)
	})
	if avg > 0 {
		t.Fatalf("AppendIDs allocates %.1f times per call on interned tokens, want 0", avg)
	}
}
