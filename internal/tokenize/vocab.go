package tokenize

import (
	"unicode"
	"unicode/utf8"
)

// Vocab interns token strings into dense uint32 IDs, so hot paths can
// carry token identity as integers instead of re-hashing strings.
// IDs are assigned in first-seen order, starting at zero, and are
// never reused, which makes them safe to use as indexes into parallel
// slices (postings lists, IDF tables).
//
// A Vocab is not safe for concurrent mutation: guard ID/AppendIDs
// against concurrent use the same way the owning index guards its
// postings. The read-only methods (Lookup, AppendKnownIDs, Token,
// Len) are safe to call concurrently with each other.
type Vocab struct {
	ids  map[string]uint32
	toks []string
	// buf is the lower-casing scratch of AppendIDs. Keeping it on the
	// Vocab is safe because AppendIDs is mutation-path-only and
	// therefore externally serialized.
	buf []byte
}

// NewVocab returns an empty vocabulary.
func NewVocab() *Vocab {
	return &Vocab{ids: map[string]uint32{}}
}

// Len returns the number of interned tokens.
func (v *Vocab) Len() int { return len(v.toks) }

// Token returns the token string of an ID.
func (v *Vocab) Token(id uint32) string { return v.toks[id] }

// ID interns the token and returns its dense ID, assigning the next
// free one on first sight.
func (v *Vocab) ID(tok string) uint32 {
	if id, ok := v.ids[tok]; ok {
		return id
	}
	id := uint32(len(v.toks))
	v.toks = append(v.toks, tok)
	v.ids[tok] = id
	return id
}

// Lookup returns the ID of a token without interning it.
func (v *Vocab) Lookup(tok string) (uint32, bool) {
	id, ok := v.ids[tok]
	return id, ok
}

// LookupBytes is Lookup over a byte-slice token (as a Scanner yields
// them), probing the map without allocating. Read-only; safe to call
// concurrently with other readers.
func (v *Vocab) LookupBytes(tok []byte) (uint32, bool) {
	id, ok := v.ids[string(tok)] // no-alloc map probe
	return id, ok
}

// IDBytes interns a token given as bytes (as a Scanner yields them),
// allocating its string only on first sight. Mutation path: callers
// must serialize it with ID/AppendIDs and with each other.
func (v *Vocab) IDBytes(tok []byte) uint32 { return v.internBytes(tok) }

// AppendIDs tokenizes s exactly like Words — maximal lower-cased runs
// of letters and digits — interning every token, and appends the IDs
// to dst in token order (duplicates included). It allocates only when
// a token has never been seen before or dst must grow; known tokens
// are looked up through the shared lower-casing buffer without
// materializing a string. Mutation path: callers must serialize it
// with ID and with each other.
func (v *Vocab) AppendIDs(dst []uint32, s string) []uint32 {
	buf := v.buf[:0]
	for _, r := range s {
		if unicode.IsLetter(r) || unicode.IsDigit(r) {
			buf = utf8.AppendRune(buf, unicode.ToLower(r))
			continue
		}
		if len(buf) > 0 {
			dst = append(dst, v.internBytes(buf))
			buf = buf[:0]
		}
	}
	if len(buf) > 0 {
		dst = append(dst, v.internBytes(buf))
		buf = buf[:0]
	}
	v.buf = buf
	return dst
}

// internBytes interns one token given as bytes, allocating its string
// only on first sight.
func (v *Vocab) internBytes(tok []byte) uint32 {
	if id, ok := v.ids[string(tok)]; ok { // no-alloc map probe
		return id
	}
	id := uint32(len(v.toks))
	t := string(tok)
	v.toks = append(v.toks, t)
	v.ids[t] = id
	return id
}

// AppendKnownIDs tokenizes s exactly like Words and appends the ID of
// every already-interned token to dst (duplicates included); unknown
// tokens are skipped, which for an IDF index is equivalent to their
// zero document frequency. buf is the caller-owned lower-casing
// scratch — passing it in keeps the method free of shared mutable
// state, so it is safe to call concurrently with other readers. It
// returns dst and the (possibly grown) buf for reuse.
func (v *Vocab) AppendKnownIDs(dst []uint32, buf []byte, s string) ([]uint32, []byte) {
	buf = buf[:0]
	for _, r := range s {
		if unicode.IsLetter(r) || unicode.IsDigit(r) {
			buf = utf8.AppendRune(buf, unicode.ToLower(r))
			continue
		}
		if len(buf) > 0 {
			if id, ok := v.ids[string(buf)]; ok { // no-alloc map probe
				dst = append(dst, id)
			}
			buf = buf[:0]
		}
	}
	if len(buf) > 0 {
		if id, ok := v.ids[string(buf)]; ok {
			dst = append(dst, id)
		}
		buf = buf[:0]
	}
	return dst, buf
}

// AppendKnownTokenIDs maps pre-split tokens (as produced by Words) to
// their IDs, appending to dst and skipping unknown tokens. Read-only;
// safe to call concurrently with other readers.
func (v *Vocab) AppendKnownTokenIDs(dst []uint32, tokens []string) []uint32 {
	for _, t := range tokens {
		if id, ok := v.ids[t]; ok {
			dst = append(dst, id)
		}
	}
	return dst
}
