// Package icl implements the demonstration-selection heuristics for
// in-context learning (Section 4.1): random selection from the
// training pool, related selection by Generalized Jaccard similarity,
// and the fixed hand-picked demonstration sets curated per domain.
package icl

import (
	"sort"

	"llm4em/internal/detrand"
	"llm4em/internal/entity"
	"llm4em/internal/textsim"
	"llm4em/internal/tokenize"
)

// Random selects demonstrations uniformly from the training pool,
// balanced between matches and non-matches. Selection is
// deterministic per query pair.
type Random struct {
	pos, neg []entity.Pair
	seed     string
}

// NewRandom builds a random selector over the pool.
func NewRandom(pool []entity.Pair, seed string) *Random {
	r := &Random{seed: seed}
	for _, p := range pool {
		if p.Match {
			r.pos = append(r.pos, p)
		} else {
			r.neg = append(r.neg, p)
		}
	}
	return r
}

// Select returns k demonstrations (k/2 positive, k/2 negative,
// positives first receiving any odd remainder).
func (r *Random) Select(query entity.Pair, k int) []entity.Pair {
	rng := detrand.New("icl-random", r.seed, query.ID)
	nPos := (k + 1) / 2
	nNeg := k / 2
	out := append([]entity.Pair{}, detrand.Sample(rng, r.pos, nPos)...)
	out = append(out, detrand.Sample(rng, r.neg, nNeg)...)
	// Interleave deterministically so positives and negatives
	// alternate in the prompt.
	detrand.Shuffle(rng, out)
	return out
}

// Related selects the most similar positive and negative pairs from
// the training pool, measured by Generalized Jaccard similarity
// between the concatenated serializations (the paper uses the
// py_stringmatching GeneralizedJaccard with Jaro secondary measure).
// A token-overlap pre-filter keeps selection fast over large pools.
type Related struct {
	pos, neg relatedSide
}

type relatedSide struct {
	pairs  []entity.Pair
	texts  []string
	tokens [][]string
	index  map[string][]int // token -> candidate postings
}

func newRelatedSide(pairs []entity.Pair) relatedSide {
	s := relatedSide{
		pairs: pairs,
		index: map[string][]int{},
	}
	s.texts = make([]string, len(pairs))
	s.tokens = make([][]string, len(pairs))
	for i, p := range pairs {
		text := p.A.Serialize() + " " + p.B.Serialize()
		s.texts[i] = text
		s.tokens[i] = tokenize.Words(text)
		seen := map[string]bool{}
		for _, t := range s.tokens[i] {
			if !seen[t] {
				s.index[t] = append(s.index[t], i)
				seen[t] = true
			}
		}
	}
	return s
}

// top returns the n most related pool entries for the query text.
func (s relatedSide) top(queryTokens []string, n int) []entity.Pair {
	if len(s.pairs) == 0 || n <= 0 {
		return nil
	}
	// Pre-filter: count shared tokens via the inverted index.
	counts := map[int]int{}
	seen := map[string]bool{}
	for _, t := range queryTokens {
		if seen[t] {
			continue
		}
		seen[t] = true
		for _, i := range s.index[t] {
			counts[i]++
		}
	}
	type cand struct {
		i       int
		overlap int
	}
	cands := make([]cand, 0, len(counts))
	for i, c := range counts {
		cands = append(cands, cand{i, c})
	}
	sort.Slice(cands, func(a, b int) bool {
		if cands[a].overlap != cands[b].overlap {
			return cands[a].overlap > cands[b].overlap
		}
		return cands[a].i < cands[b].i
	})
	limit := 24
	if len(cands) > limit {
		cands = cands[:limit]
	}
	// Exact ranking by Generalized Jaccard on the shortlist.
	type scored struct {
		i int
		s float64
	}
	scoredCands := make([]scored, len(cands))
	for j, c := range cands {
		scoredCands[j] = scored{c.i, textsim.GeneralizedJaccard(queryTokens, s.tokens[c.i], textsim.Jaro, 0.5)}
	}
	sort.Slice(scoredCands, func(a, b int) bool {
		if scoredCands[a].s != scoredCands[b].s {
			return scoredCands[a].s > scoredCands[b].s
		}
		return scoredCands[a].i < scoredCands[b].i
	})
	if len(scoredCands) > n {
		scoredCands = scoredCands[:n]
	}
	out := make([]entity.Pair, len(scoredCands))
	for j, sc := range scoredCands {
		out[j] = s.pairs[sc.i]
	}
	return out
}

// NewRelated builds a related selector over the pool.
func NewRelated(pool []entity.Pair) *Related {
	var pos, neg []entity.Pair
	for _, p := range pool {
		if p.Match {
			pos = append(pos, p)
		} else {
			neg = append(neg, p)
		}
	}
	return &Related{pos: newRelatedSide(pos), neg: newRelatedSide(neg)}
}

// Select returns the k/2 most similar positive and k/2 most similar
// negative demonstrations for the query.
func (r *Related) Select(query entity.Pair, k int) []entity.Pair {
	queryTokens := tokenize.Words(query.A.Serialize() + " " + query.B.Serialize())
	nPos := (k + 1) / 2
	nNeg := k / 2
	out := append([]entity.Pair{}, r.pos.top(queryTokens, nPos)...)
	return append(out, r.neg.top(queryTokens, nNeg)...)
}

// Handpicked serves a fixed demonstration set curated by a data
// engineer (the paper draws product demonstrations from the WDC
// Products training set and publication demonstrations from
// DBLP-Scholar, chosen for diversity and corner-case coverage).
type Handpicked struct {
	demos []entity.Pair
}

// NewHandpicked wraps a fixed demonstration list.
func NewHandpicked(demos []entity.Pair) *Handpicked {
	return &Handpicked{demos: demos}
}

// Select returns the first k demonstrations of the fixed set,
// balanced between labels.
func (h *Handpicked) Select(query entity.Pair, k int) []entity.Pair {
	nPos := (k + 1) / 2
	nNeg := k / 2
	var out []entity.Pair
	for _, d := range h.demos {
		switch {
		case d.Match && nPos > 0:
			out = append(out, d)
			nPos--
		case !d.Match && nNeg > 0:
			out = append(out, d)
			nNeg--
		}
		if nPos == 0 && nNeg == 0 {
			break
		}
	}
	return out
}

// CurateHandpicked deterministically emulates the data engineer's
// curation over a training pool: it picks diverse corner-case
// demonstrations — matches with low surface similarity and
// non-matches with high surface similarity — spreading picks across
// the pool.
func CurateHandpicked(pool []entity.Pair, n int) []entity.Pair {
	type scored struct {
		p entity.Pair
		s float64
	}
	var pos, neg []scored
	for _, p := range pool {
		sim := textsim.JaccardStrings(p.A.Serialize(), p.B.Serialize())
		if p.Match {
			pos = append(pos, scored{p, sim})
		} else {
			neg = append(neg, scored{p, sim})
		}
	}
	// Corner-case matches: least similar first; corner-case
	// non-matches: most similar first.
	sort.Slice(pos, func(i, j int) bool {
		if pos[i].s != pos[j].s {
			return pos[i].s < pos[j].s
		}
		return pos[i].p.ID < pos[j].p.ID
	})
	sort.Slice(neg, func(i, j int) bool {
		if neg[i].s != neg[j].s {
			return neg[i].s > neg[j].s
		}
		return neg[i].p.ID < neg[j].p.ID
	})
	var out []entity.Pair
	// Take every 3rd entry for diversity rather than the extreme top,
	// as a human curator would avoid near-duplicates.
	for i := 0; len(out) < (n+1)/2 && i < len(pos); i += 3 {
		out = append(out, pos[i].p)
	}
	for i := 0; len(out) < n && i < len(neg); i += 3 {
		out = append(out, neg[i].p)
	}
	return out
}
