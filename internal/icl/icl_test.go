package icl

import (
	"testing"

	"llm4em/internal/datasets"
	"llm4em/internal/entity"
	"llm4em/internal/textsim"
)

func pool(t *testing.T) []entity.Pair {
	t.Helper()
	return datasets.MustLoad("wdc").Train
}

func balance(demos []entity.Pair) (pos, neg int) {
	for _, d := range demos {
		if d.Match {
			pos++
		} else {
			neg++
		}
	}
	return pos, neg
}

func TestRandomBalancedAndDeterministic(t *testing.T) {
	r := NewRandom(pool(t), "seed")
	query := datasets.MustLoad("wdc").Test[0]
	for _, k := range []int{6, 10} {
		demos := r.Select(query, k)
		if len(demos) != k {
			t.Fatalf("Select(%d) returned %d demos", k, len(demos))
		}
		pos, neg := balance(demos)
		if pos != (k+1)/2 || neg != k/2 {
			t.Errorf("k=%d: balance %d/%d", k, pos, neg)
		}
	}
	a := r.Select(query, 6)
	b := r.Select(query, 6)
	for i := range a {
		if a[i].ID != b[i].ID {
			t.Fatal("random selection not deterministic per query")
		}
	}
	other := datasets.MustLoad("wdc").Test[1]
	c := r.Select(other, 6)
	same := true
	for i := range a {
		if a[i].ID != c[i].ID {
			same = false
		}
	}
	if same {
		t.Error("different queries should generally receive different random demos")
	}
}

func TestRelatedSelectsSimilarDemos(t *testing.T) {
	ds := datasets.MustLoad("wdc")
	r := NewRelated(ds.Train)
	rnd := NewRandom(ds.Train, "baseline")
	moreRelated := 0
	n := 30
	for i := 0; i < n; i++ {
		query := ds.Test[i]
		qText := query.A.Serialize() + " " + query.B.Serialize()
		rel := r.Select(query, 6)
		rng := rnd.Select(query, 6)
		relSim := meanSim(qText, rel)
		rndSim := meanSim(qText, rng)
		if relSim > rndSim {
			moreRelated++
		}
		pos, neg := balance(rel)
		if pos != 3 || neg != 3 {
			t.Fatalf("related balance %d/%d", pos, neg)
		}
	}
	if moreRelated < n*8/10 {
		t.Errorf("related demos more similar than random in only %d/%d queries", moreRelated, n)
	}
}

func meanSim(qText string, demos []entity.Pair) float64 {
	total := 0.0
	for _, d := range demos {
		total += textsim.JaccardStrings(qText, d.A.Serialize()+" "+d.B.Serialize())
	}
	return total / float64(len(demos))
}

func TestHandpickedFixedSet(t *testing.T) {
	demos := CurateHandpicked(pool(t), 10)
	if len(demos) != 10 {
		t.Fatalf("curated %d demos, want 10", len(demos))
	}
	pos, neg := balance(demos)
	if pos != 5 || neg != 5 {
		t.Errorf("curated balance %d/%d", pos, neg)
	}
	h := NewHandpicked(demos)
	query := datasets.MustLoad("wdc").Test[0]
	sel := h.Select(query, 6)
	if len(sel) != 6 {
		t.Fatalf("handpicked Select returned %d", len(sel))
	}
	p6, n6 := balance(sel)
	if p6 != 3 || n6 != 3 {
		t.Errorf("handpicked balance %d/%d", p6, n6)
	}
	// Fixed set: identical for every query.
	sel2 := h.Select(datasets.MustLoad("wdc").Test[5], 6)
	for i := range sel {
		if sel[i].ID != sel2[i].ID {
			t.Error("handpicked demos should not depend on the query")
		}
	}
}

func TestCurateHandpickedPrefersCornerCases(t *testing.T) {
	p := pool(t)
	demos := CurateHandpicked(p, 10)
	// Curated matches should be less similar than the pool's average
	// match (corner-case matches), and curated non-matches more
	// similar than the average non-match.
	var poolPosSim, poolNegSim float64
	var nPos, nNeg int
	for _, pr := range p {
		s := textsim.JaccardStrings(pr.A.Serialize(), pr.B.Serialize())
		if pr.Match {
			poolPosSim += s
			nPos++
		} else {
			poolNegSim += s
			nNeg++
		}
	}
	poolPosSim /= float64(nPos)
	poolNegSim /= float64(nNeg)
	for _, d := range demos {
		s := textsim.JaccardStrings(d.A.Serialize(), d.B.Serialize())
		if d.Match && s > poolPosSim {
			t.Errorf("curated match sim %.3f above pool mean %.3f", s, poolPosSim)
		}
		if !d.Match && s < poolNegSim {
			t.Errorf("curated non-match sim %.3f below pool mean %.3f", s, poolNegSim)
		}
	}
}

func TestRelatedEmptyPoolSides(t *testing.T) {
	r := NewRelated(nil)
	if got := r.Select(datasets.MustLoad("wdc").Test[0], 6); len(got) != 0 {
		t.Errorf("empty pool should yield no demos, got %d", len(got))
	}
}
