// Package eval implements the evaluation metrics of the paper
// (Section 2): precision, recall and F1 on the matching (positive)
// class, plus aggregate helpers (means, standard deviations) used by
// the sensitivity analysis and table rendering.
package eval

import "math"

// Confusion tallies binary matching decisions against gold labels.
type Confusion struct {
	TP, FP, TN, FN int
}

// Add records one decision.
func (c *Confusion) Add(gold, predicted bool) {
	switch {
	case gold && predicted:
		c.TP++
	case !gold && predicted:
		c.FP++
	case gold && !predicted:
		c.FN++
	default:
		c.TN++
	}
}

// Total returns the number of recorded decisions.
func (c Confusion) Total() int { return c.TP + c.FP + c.TN + c.FN }

// Precision returns TP / (TP + FP), or 0 when undefined.
func (c Confusion) Precision() float64 {
	if c.TP+c.FP == 0 {
		return 0
	}
	return float64(c.TP) / float64(c.TP+c.FP)
}

// Recall returns TP / (TP + FN), or 0 when undefined.
func (c Confusion) Recall() float64 {
	if c.TP+c.FN == 0 {
		return 0
	}
	return float64(c.TP) / float64(c.TP+c.FN)
}

// F1 returns the harmonic mean of precision and recall as a
// percentage in [0, 100], the unit used by all of the paper's tables.
func (c Confusion) F1() float64 {
	p, r := c.Precision(), c.Recall()
	if p+r == 0 {
		return 0
	}
	return 100 * 2 * p * r / (p + r)
}

// Accuracy returns the fraction of correct decisions in [0, 100].
func (c Confusion) Accuracy() float64 {
	if c.Total() == 0 {
		return 0
	}
	return 100 * float64(c.TP+c.TN) / float64(c.Total())
}

// Mean returns the arithmetic mean of xs (0 for empty input).
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	s := 0.0
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}

// StdDev returns the population standard deviation of xs — the
// prompt-sensitivity measure of Section 3.
func StdDev(xs []float64) float64 {
	if len(xs) < 2 {
		return 0
	}
	m := Mean(xs)
	v := 0.0
	for _, x := range xs {
		d := x - m
		v += d * d
	}
	return math.Sqrt(v / float64(len(xs)))
}
