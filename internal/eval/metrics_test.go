package eval

import (
	"math"
	"testing"
	"testing/quick"
)

func TestConfusionCounting(t *testing.T) {
	var c Confusion
	c.Add(true, true)   // TP
	c.Add(true, false)  // FN
	c.Add(false, true)  // FP
	c.Add(false, false) // TN
	if c.TP != 1 || c.FN != 1 || c.FP != 1 || c.TN != 1 || c.Total() != 4 {
		t.Fatalf("confusion = %+v", c)
	}
	if c.Precision() != 0.5 || c.Recall() != 0.5 {
		t.Errorf("P=%v R=%v", c.Precision(), c.Recall())
	}
	if c.F1() != 50 {
		t.Errorf("F1 = %v, want 50", c.F1())
	}
	if c.Accuracy() != 50 {
		t.Errorf("Accuracy = %v, want 50", c.Accuracy())
	}
}

func TestConfusionDegenerateCases(t *testing.T) {
	var empty Confusion
	if empty.Precision() != 0 || empty.Recall() != 0 || empty.F1() != 0 || empty.Accuracy() != 0 {
		t.Error("empty confusion should yield zeros")
	}
	allNeg := Confusion{TN: 10}
	if allNeg.F1() != 0 {
		t.Error("no positives should give F1 0")
	}
	perfect := Confusion{TP: 5, TN: 5}
	if perfect.F1() != 100 || perfect.Accuracy() != 100 {
		t.Error("perfect classification should give 100")
	}
}

func TestF1Bounds(t *testing.T) {
	f := func(tp, fp, tn, fn uint8) bool {
		c := Confusion{TP: int(tp), FP: int(fp), TN: int(tn), FN: int(fn)}
		f1 := c.F1()
		return f1 >= 0 && f1 <= 100 && !math.IsNaN(f1)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestF1HarmonicMean(t *testing.T) {
	// P = 1, R = 0.5 -> F1 = 2/3.
	c := Confusion{TP: 1, FN: 1}
	if math.Abs(c.F1()-100*2.0/3.0) > 1e-9 {
		t.Errorf("F1 = %v, want 66.67", c.F1())
	}
}

func TestMeanAndStdDev(t *testing.T) {
	if Mean(nil) != 0 || StdDev(nil) != 0 {
		t.Error("empty slices should yield 0")
	}
	xs := []float64{2, 4, 4, 4, 5, 5, 7, 9}
	if Mean(xs) != 5 {
		t.Errorf("Mean = %v, want 5", Mean(xs))
	}
	if math.Abs(StdDev(xs)-2) > 1e-9 {
		t.Errorf("StdDev = %v, want 2", StdDev(xs))
	}
	if StdDev([]float64{3}) != 0 {
		t.Error("single value has zero deviation")
	}
}

func TestStdDevNonNegative(t *testing.T) {
	f := func(xs []float64) bool {
		for _, x := range xs {
			if math.IsNaN(x) || math.IsInf(x, 0) || math.Abs(x) > 1e6 {
				return true // skip pathological inputs
			}
		}
		return StdDev(xs) >= 0
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
