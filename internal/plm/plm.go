// Package plm simulates the fine-tuned PLM baselines of the study:
// a RoBERTa-base cross-encoder matcher and the Ditto matching system
// (RoBERTa plus data augmentation and domain-knowledge injection).
//
// The simulation is a trainable linear classifier over hashed lexical
// cross-features of the serialized pair — token agreements and
// one-sided tokens — plus a few coarse similarity buckets. This
// mirrors the inductive behaviour the paper attributes to PLM
// matchers: with task-specific training data they fit the entities of
// the training distribution closely (high in-domain F1), but because
// most of their capacity is bound to vocabulary identity, they
// degrade sharply on out-of-distribution entities (the "unseen" rows
// of Table 4).
package plm

import (
	"fmt"
	"strings"

	"llm4em/internal/detrand"
	"llm4em/internal/entity"
	"llm4em/internal/eval"
	"llm4em/internal/features"
	"llm4em/internal/textsim"
	"llm4em/internal/tokenize"
)

// Variant selects the baseline flavour.
type Variant int

// The two PLM baselines of the paper.
const (
	RoBERTa Variant = iota
	Ditto
)

// String returns the baseline name used in the tables.
func (v Variant) String() string {
	if v == Ditto {
		return "Ditto"
	}
	return "RoBERTa"
}

// hashDims is the size of the hashed feature space.
const hashDims = 1 << 18

// Model is a trainable PLM-style matcher. Construct with New, train
// with Train, then Predict or Evaluate.
type Model struct {
	variant   Variant
	w         []float32
	bias      float32
	threshold float64
	trained   bool
	// TrainedOn records the dataset key used for fine-tuning.
	TrainedOn string
}

// New returns an untrained matcher of the given variant.
func New(v Variant) *Model {
	return &Model{variant: v, w: make([]float32, hashDims), threshold: 0.5}
}

// Options configures training.
type Options struct {
	// Epochs of SGD; the default is 8.
	Epochs int
	// LearningRate for SGD; the default is 0.10.
	LearningRate float64
}

// DefaultOptions returns the standard training configuration.
func DefaultOptions() Options { return Options{Epochs: 14, LearningRate: 0.14} }

// Train fits the matcher on labelled pairs (the paper fine-tunes on
// the respective development sets). datasetKey is recorded for
// reporting.
func (m *Model) Train(pairs []entity.Pair, datasetKey string, opts Options) {
	if opts.Epochs <= 0 {
		opts.Epochs = DefaultOptions().Epochs
	}
	if opts.LearningRate <= 0 {
		opts.LearningRate = DefaultOptions().LearningRate
	}
	var pos, neg float64
	for _, p := range pairs {
		if p.Match {
			pos++
		} else {
			neg++
		}
	}
	posWeight := 1.0
	if pos > 0 {
		posWeight = neg / pos
	}

	rng := detrand.New("plm-train", m.variant.String(), datasetKey)
	order := make([]int, len(pairs))
	for i := range order {
		order[i] = i
	}
	for epoch := 0; epoch < opts.Epochs; epoch++ {
		lr := opts.LearningRate / (1 + 0.3*float64(epoch))
		detrand.Shuffle(rng, order)
		for _, idx := range order {
			p := pairs[idx]
			feats := m.featurize(p, rng)
			prob := m.probability(feats)
			target, sampleWeight := 0.0, 1.0
			if p.Match {
				target, sampleWeight = 1, posWeight
			}
			grad := float32(sampleWeight * (prob - target) * lr)
			for _, f := range feats {
				m.w[f.idx] -= grad * f.val
			}
			m.bias -= grad
		}
		// L2 weight decay keeps the hashed weights bounded.
		decay := float32(1 - 0.002)
		for i := range m.w {
			m.w[i] *= decay
		}
	}
	m.trained = true
	m.TrainedOn = datasetKey
}

// Predict returns the matcher's decision for a pair. It panics if the
// model has not been trained, mirroring a PLM that cannot match
// without fine-tuning.
func (m *Model) Predict(p entity.Pair) bool {
	if !m.trained {
		panic("plm: Predict called on untrained model")
	}
	return m.probability(m.featurize(p, nil)) > m.threshold
}

// FitThreshold tunes the decision threshold to maximize F1 on a
// validation set — the model-selection step PLM matchers such as
// Ditto perform on their development split. The fitted threshold is
// part of what fails to transfer to unseen datasets.
func (m *Model) FitThreshold(val []entity.Pair) {
	if !m.trained || len(val) == 0 {
		return
	}
	type scored struct {
		prob  float64
		match bool
	}
	all := make([]scored, len(val))
	for i, p := range val {
		all[i] = scored{m.probability(m.featurize(p, nil)), p.Match}
	}
	best, bestT := -1.0, 0.5
	for i := 1; i < 20; i++ {
		t := float64(i) / 20
		var c eval.Confusion
		for _, s := range all {
			c.Add(s.match, s.prob > t)
		}
		if f := c.F1(); f > best {
			best, bestT = f, t
		}
	}
	m.threshold = bestT
}

// Evaluate scores the matcher over a pair set.
func (m *Model) Evaluate(pairs []entity.Pair) eval.Confusion {
	var c eval.Confusion
	for _, p := range pairs {
		c.Add(p.Match, m.Predict(p))
	}
	return c
}

// feature is one hashed feature with its value.
type feature struct {
	idx uint64
	val float32
}

// featurize renders a pair into hashed lexical cross-features. During
// training (rng non-nil) the Ditto variant applies data augmentation:
// random token dropout, which regularizes the lexical features toward
// corner-case robustness.
func (m *Model) featurize(p entity.Pair, rng *detrand.RNG) []feature {
	sa, sb := p.A.Serialize(), p.B.Serialize()
	if m.variant == Ditto {
		// Domain-knowledge injection: normalize identifiers and
		// numbers before tokenization.
		sa, sb = dkNormalize(sa), dkNormalize(sb)
	}
	ta, tb := tokenize.Words(sa), tokenize.Words(sb)
	if rng != nil && m.variant == Ditto {
		ta = dropout(ta, rng, 0.13)
		tb = dropout(tb, rng, 0.13)
	}

	var feats []feature
	add := func(val float32, parts ...string) {
		feats = append(feats, feature{idx: detrand.Hash64(parts...) % hashDims, val: val})
	}

	// Token cross features over the subword view: each word token is
	// kept whole and mixed alphanumerics are additionally split at
	// letter/digit boundaries, approximating BPE so that "dsc-120b"
	// and "dsc120b" share pieces. Digit-bearing tokens (identifiers)
	// carry extra attention weight; bare two-digit price fragments are
	// down-weighted because they disagree even between matching
	// offers.
	setA, setB := tokenize.Set(subwordView(ta)), tokenize.Set(subwordView(tb))
	tokenValue := func(t string) float32 {
		switch {
		case tokenize.HasDigit(t) && tokenize.HasLetter(t):
			return 2.2
		case tokenize.HasDigit(t) && len(t) >= 3:
			return 1.6
		case tokenize.HasDigit(t):
			return 0.6
		default:
			return 1
		}
	}
	for t := range setA {
		if setB[t] {
			add(tokenValue(t), "eq", t)
		} else {
			add(tokenValue(t), "only", t)
		}
	}
	for t := range setB {
		if !setA[t] {
			add(tokenValue(t), "only", t)
		}
	}

	// Identifier-agreement summary over digit pieces. These count
	// features generalize within the product domain — the reason
	// product-to-product PLM transfer degrades less than cross-domain
	// transfer in Table 4.
	pa, pb := tokenize.Set(digitPieces(ta)), tokenize.Set(digitPieces(tb))
	eqID, onlyID := 0, 0
	for t := range pa {
		if pb[t] {
			eqID++
		} else {
			onlyID++
		}
	}
	for t := range pb {
		if !pa[t] {
			onlyID++
		}
	}
	// The identifier-agreement summary is folded into the per-token
	// bucket features at low weight: PLM cross-encoders do not learn a
	// clean dataset-independent "identifier conflict" abstraction, so
	// most of their corner-case competence stays tied to the training
	// vocabulary.
	add(0.3, "eq-id-count", bucket(float64(min(eqID, 3))/3, 4))
	add(0.3, "only-id-count", bucket(float64(min(onlyID, 3))/3, 4))

	// Bigram cross features densify entity memorization: recurring
	// training entities are recognized by their characteristic word
	// pairs ("photoshop elements", "stan smith").
	ba, bb := tokenize.Set(bigrams(ta)), tokenize.Set(bigrams(tb))
	for t := range ba {
		if bb[t] {
			add(0.5, "eq2", t)
		} else {
			add(0.45, "only2", t)
		}
	}
	for t := range bb {
		if !ba[t] {
			add(0.45, "only2", t)
		}
	}

	// Coarse similarity buckets: transferable but too coarse to
	// separate corner cases on their own.
	j := textsim.Jaccard(ta, tb)
	add(1, "jac-bucket", bucket(j, 4))
	ov := textsim.Overlap(ta, tb)
	add(1, "ovl-bucket", bucket(ov, 4))
	return feats
}

func bucket(x float64, n int) string {
	b := int(x * float64(n))
	if b >= n {
		b = n - 1
	}
	if b < 0 {
		b = 0
	}
	return fmt.Sprintf("%d", b)
}

// subwordView keeps every token whole and appends the letter/digit
// boundary pieces of mixed alphanumeric tokens.
func subwordView(tokens []string) []string {
	out := make([]string, 0, 2*len(tokens))
	for _, w := range tokens {
		out = append(out, w)
		if !tokenize.HasDigit(w) || !tokenize.HasLetter(w) {
			continue
		}
		start := 0
		prevDigit := w[0] >= '0' && w[0] <= '9'
		for i := 1; i <= len(w); i++ {
			isDigit := i < len(w) && w[i] >= '0' && w[i] <= '9'
			if i == len(w) || isDigit != prevDigit {
				out = append(out, w[start:i])
				start = i
				prevDigit = isDigit
			}
		}
	}
	return out
}

// digitPieces extracts the digit runs of length >= 2 from mixed
// alphanumeric tokens, approximating the BPE pieces shared between
// "dsc-120b" and "dsc120b".
func digitPieces(tokens []string) []string {
	var out []string
	for _, w := range tokens {
		if !tokenize.HasDigit(w) || !tokenize.HasLetter(w) {
			continue
		}
		start := -1
		for i := 0; i <= len(w); i++ {
			isDigit := i < len(w) && w[i] >= '0' && w[i] <= '9'
			switch {
			case isDigit && start < 0:
				start = i
			case !isDigit && start >= 0:
				if i-start >= 2 {
					out = append(out, w[start:i])
				}
				start = -1
			}
		}
	}
	return out
}

// bigrams returns adjacent token pairs joined with a blank.
func bigrams(tokens []string) []string {
	if len(tokens) < 2 {
		return nil
	}
	out := make([]string, 0, len(tokens)-1)
	for i := 0; i+1 < len(tokens); i++ {
		out = append(out, tokens[i]+" "+tokens[i+1])
	}
	return out
}

func dropout(tokens []string, rng *detrand.RNG, p float64) []string {
	out := tokens[:0:0]
	for _, t := range tokens {
		if !rng.Bool(p) {
			out = append(out, t)
		}
	}
	if len(out) == 0 {
		return tokens
	}
	return out
}

// dkNormalize applies Ditto-style domain-knowledge injection: strip
// separators inside alphanumeric identifiers and truncate decimal
// values to their integer part, so that "DSC-120B" and "dsc120b", or
// "348.00" and "348.50", featurize identically.
func dkNormalize(s string) string {
	words := strings.Fields(s)
	for i, w := range words {
		if tokenize.HasDigit(w) && tokenize.HasLetter(w) {
			words[i] = strings.Map(func(r rune) rune {
				if r == '-' || r == '/' {
					return -1
				}
				return r
			}, w)
		} else if dot := strings.IndexByte(w, '.'); dot > 0 && tokenize.IsNumeric(w) {
			words[i] = w[:dot]
		}
	}
	return strings.Join(words, " ")
}

func (m *Model) probability(feats []feature) float64 {
	score := float64(m.bias)
	for _, f := range feats {
		score += float64(m.w[f.idx] * f.val)
	}
	return features.Sigmoid(score)
}
