package plm

import (
	"testing"

	"llm4em/internal/datasets"
)

// BenchmarkTrain measures PLM fine-tuning over a full training pool.
func BenchmarkTrain(b *testing.B) {
	ds := datasets.MustLoad("ab")
	pool := ds.TrainVal()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m := New(RoBERTa)
		m.Train(pool, "ab", Options{Epochs: 2, LearningRate: 0.1})
	}
}

// BenchmarkPredict measures inference throughput of a trained PLM.
func BenchmarkPredict(b *testing.B) {
	ds := datasets.MustLoad("ab")
	m := New(Ditto)
	m.Train(ds.Train, "ab", Options{Epochs: 2, LearningRate: 0.1})
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.Predict(ds.Test[i%len(ds.Test)])
	}
}
