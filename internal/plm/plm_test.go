package plm

import (
	"reflect"
	"testing"

	"llm4em/internal/datasets"
)

func TestVariantNames(t *testing.T) {
	if RoBERTa.String() != "RoBERTa" || Ditto.String() != "Ditto" {
		t.Error("variant names wrong")
	}
}

func TestPredictPanicsUntrained(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Predict on untrained model should panic")
		}
	}()
	New(RoBERTa).Predict(datasets.MustLoad("ab").Test[0])
}

func TestTrainingLearnsInDomain(t *testing.T) {
	ds := datasets.MustLoad("da")
	m := New(RoBERTa)
	m.Train(ds.TrainVal(), "da", DefaultOptions())
	m.FitThreshold(ds.Val)
	c := m.Evaluate(ds.Test)
	if c.F1() < 90 {
		t.Errorf("RoBERTa on DBLP-ACM F1 = %.2f, want >= 90 (paper: 99.14)", c.F1())
	}
	if m.TrainedOn != "da" {
		t.Errorf("TrainedOn = %q", m.TrainedOn)
	}
}

func TestUnseenEntityCollapse(t *testing.T) {
	// The Table 4 "unseen" finding: a PLM fine-tuned on a publication
	// dataset collapses on the WDC Products test set.
	ds := datasets.MustLoad("ds")
	wdc := datasets.MustLoad("wdc")
	for _, v := range []Variant{RoBERTa, Ditto} {
		m := New(v)
		m.Train(ds.TrainVal(), "ds", DefaultOptions())
		m.FitThreshold(ds.Val)
		in := m.Evaluate(ds.Test).F1()
		out := m.Evaluate(wdc.Test).F1()
		t.Logf("%s: ds in-domain %.2f -> wdc unseen %.2f", v, in, out)
		if in-out < 30 {
			t.Errorf("%s: unseen drop only %.2f points (in %.2f, out %.2f)", v, in-out, in, out)
		}
	}
}

func TestTrainingDeterministic(t *testing.T) {
	ds := datasets.MustLoad("ab")
	a, b := New(Ditto), New(Ditto)
	a.Train(ds.Train, "ab", Options{Epochs: 2, LearningRate: 0.1})
	b.Train(ds.Train, "ab", Options{Epochs: 2, LearningRate: 0.1})
	if !reflect.DeepEqual(a.w, b.w) || a.bias != b.bias {
		t.Error("PLM training is not deterministic")
	}
}

func TestFitThresholdNoopUntrainedOrEmpty(t *testing.T) {
	m := New(RoBERTa)
	m.FitThreshold(datasets.MustLoad("ab").Val) // untrained: no panic, no-op
	if m.threshold != 0.5 {
		t.Error("untrained FitThreshold changed threshold")
	}
	ds := datasets.MustLoad("ab")
	m.Train(ds.Train[:500], "ab", Options{Epochs: 2, LearningRate: 0.1})
	m.FitThreshold(nil)
	if m.threshold != 0.5 {
		t.Error("empty validation changed threshold")
	}
}

func TestSubwordView(t *testing.T) {
	got := subwordView([]string{"dsc120b", "camera"})
	want := map[string]bool{"dsc120b": true, "dsc": true, "120": true, "b": true, "camera": true}
	if len(got) != 5 {
		t.Fatalf("subwordView = %v", got)
	}
	for _, tok := range got {
		if !want[tok] {
			t.Errorf("unexpected subword %q", tok)
		}
	}
}

func TestDigitPieces(t *testing.T) {
	got := digitPieces([]string{"dsc120b", "plain", "42"})
	if len(got) != 1 || got[0] != "120" {
		t.Errorf("digitPieces = %v, want [120]", got)
	}
}

func TestBigrams(t *testing.T) {
	got := bigrams([]string{"a", "b", "c"})
	if len(got) != 2 || got[0] != "a b" || got[1] != "b c" {
		t.Errorf("bigrams = %v", got)
	}
	if bigrams([]string{"solo"}) != nil {
		t.Error("single token should have no bigrams")
	}
}

func TestDKNormalize(t *testing.T) {
	got := dkNormalize("Sony DSC-120B camera 348.99")
	if got != "Sony DSC120B camera 348" {
		t.Errorf("dkNormalize = %q", got)
	}
}

func TestBucket(t *testing.T) {
	if bucket(0, 4) != "0" || bucket(0.99, 4) != "3" || bucket(1.2, 4) != "3" || bucket(-0.1, 4) != "0" {
		t.Error("bucket boundaries wrong")
	}
}
