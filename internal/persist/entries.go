package persist

import (
	"encoding/json"
	"fmt"

	"llm4em/internal/entity"
)

// RecordEntry is the payload of an EntryRecord: one record ingested
// into the store.
type RecordEntry struct {
	Record entity.Record `json:"record"`
}

// DecisionEntry is one decided candidate pair inside a ResolveEntry
// or a snapshot journal — everything needed to short-circuit the pair
// on a later resolve without re-running the cascade or the LLM.
type DecisionEntry struct {
	QueryID     string  `json:"query_id,omitempty"` // set in snapshots; implied by the entry in the WAL
	CandidateID string  `json:"candidate_id"`
	BlockScore  float64 `json:"block_score"`
	Probability float64 `json:"probability"`
	Match       bool    `json:"match"`
	Method      string  `json:"method"`
	Answer      string  `json:"answer,omitempty"`
	// Deferred marks a tentative local verdict recorded while the LLM
	// backend was unavailable; a later EntryRedecide replaces it with
	// the healthy-path decision. Absent in older logs.
	Deferred bool `json:"deferred,omitempty"`
}

// ReportEntry carries one resolve call's cost accounting so replay
// can rebuild the store's lifetime totals without recomputing
// anything.
type ReportEntry struct {
	Candidates       int     `json:"candidates"`
	LocalAccepts     int     `json:"local_accepts"`
	LocalRejects     int     `json:"local_rejects"`
	LLMPairs         int     `json:"llm_pairs"`
	BudgetDecided    int     `json:"budget_decided"`
	JournalHits      int     `json:"journal_hits"`
	PromptTokens     int     `json:"prompt_tokens"`
	CompletionTokens int     `json:"completion_tokens"`
	Cents            float64 `json:"cents"`
	// Batch accounting of the micro-batching dispatcher. Absent in
	// logs written before the dispatcher existed, so both omitempty
	// and the zero default keep old and new builds interchangeable.
	BatchedPairs   int `json:"batched_pairs,omitempty"`
	BatchFallbacks int `json:"batch_fallbacks,omitempty"`
	// DeferredPairs counts pairs this resolve degraded to their local
	// verdict because the LLM backend was unavailable. Absent in older
	// logs.
	DeferredPairs int `json:"deferred_pairs,omitempty"`
	// Strategy accounting of the tiered prompt strategies. Like the
	// batch fields, absent in older logs and zero-defaulted, so old
	// and new builds stay interchangeable. The per-decision strategy
	// provenance itself lives in DecisionEntry.Method ("llm-compare",
	// "llm-select", "llm-reason"), which replay reuses LLM-free.
	GroupFallbacks  int           `json:"group_fallbacks,omitempty"`
	MatchStrategy   StrategyEntry `json:"strategy_match"`
	CompareStrategy StrategyEntry `json:"strategy_compare"`
	SelectStrategy  StrategyEntry `json:"strategy_select"`
	ReasonStrategy  StrategyEntry `json:"strategy_reason"`
}

// StrategyEntry is one prompt strategy's share of a resolve call's
// LLM activity inside a ReportEntry.
type StrategyEntry struct {
	Calls            int `json:"calls,omitempty"`
	Pairs            int `json:"pairs,omitempty"`
	PromptTokens     int `json:"prompt_tokens,omitempty"`
	CompletionTokens int `json:"completion_tokens,omitempty"`
}

// ResolveEntry is the payload of an EntryResolve: the query record,
// the decisions made fresh in this call (journal hits were logged by
// an earlier entry) and the call's cost report.
type ResolveEntry struct {
	Query     entity.Record   `json:"query"`
	Decisions []DecisionEntry `json:"decisions"`
	Report    ReportEntry     `json:"report"`
}

// RedecideEntry is the payload of an EntryRedecide: the background
// re-escalator's healthy-path decision for a pair deferred by an
// earlier resolve, plus the usage it cost. Replay overwrites the
// pair's journal entry, folds the match into the entity graph, and
// removes the pair from the rebuilt deferred queue.
type RedecideEntry struct {
	QueryID          string        `json:"query_id"`
	Decision         DecisionEntry `json:"decision"`
	PromptTokens     int           `json:"prompt_tokens,omitempty"`
	CompletionTokens int           `json:"completion_tokens,omitempty"`
	Cents            float64       `json:"cents,omitempty"`
}

// DeferredEntry is one pair awaiting re-escalation inside a snapshot.
// The journal keeps only the decision; re-escalation needs the full
// query record to rebuild the pair's prompt, so snapshots carry it.
type DeferredEntry struct {
	Query       entity.Record `json:"query"`
	CandidateID string        `json:"candidate_id"`
	BlockScore  float64       `json:"block_score"`
	Probability float64       `json:"probability"`
}

// EncodeRecord frames a record for Append.
func EncodeRecord(r entity.Record) ([]byte, error) {
	return json.Marshal(RecordEntry{Record: r})
}

// DecodeRecord parses an EntryRecord payload.
func DecodeRecord(payload []byte) (RecordEntry, error) {
	var e RecordEntry
	if err := json.Unmarshal(payload, &e); err != nil {
		return RecordEntry{}, fmt.Errorf("persist: decode record entry: %w", err)
	}
	return e, nil
}

// EncodeResolve frames a resolve call for Append.
func EncodeResolve(e ResolveEntry) ([]byte, error) {
	return json.Marshal(e)
}

// DecodeResolve parses an EntryResolve payload.
func DecodeResolve(payload []byte) (ResolveEntry, error) {
	var e ResolveEntry
	if err := json.Unmarshal(payload, &e); err != nil {
		return ResolveEntry{}, fmt.Errorf("persist: decode resolve entry: %w", err)
	}
	return e, nil
}

// EncodeRedecide frames a re-escalated decision for Append.
func EncodeRedecide(e RedecideEntry) ([]byte, error) {
	return json.Marshal(e)
}

// DecodeRedecide parses an EntryRedecide payload.
func DecodeRedecide(payload []byte) (RedecideEntry, error) {
	var e RedecideEntry
	if err := json.Unmarshal(payload, &e); err != nil {
		return RedecideEntry{}, fmt.Errorf("persist: decode redecide entry: %w", err)
	}
	return e, nil
}
