// Package persist is the durability layer of the online resolution
// store: an append-only write-ahead log (WAL) of typed,
// length-prefixed, CRC-checked entries plus an atomically written
// snapshot file. Together they make a store's state survive process
// restarts without re-paying LLM calls: the snapshot captures a
// compacted full state, the WAL the tail of mutations since.
//
// Durability layout inside a persistence directory:
//
//	snapshot.json   last compacted state (atomic tmp+rename write)
//	wal.log         entries appended since that snapshot
//
// Recovery reads the snapshot (if any) and replays the WAL on top.
// The WAL tolerates a torn tail: a crash mid-append leaves a partial
// or CRC-broken final entry, which OpenWAL detects, drops, and
// truncates away so the log is append-clean again. Replay must be
// idempotent on the caller's side — a crash between snapshot rename
// and WAL reset legitimately replays entries already contained in the
// snapshot (duplicate record adds, repeated merges).
//
// The package is deliberately single-writer: one process owns a
// persistence directory at a time.
package persist

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"time"

	"llm4em/internal/telemetry"
)

// EntryType tags the payload of one WAL entry.
type EntryType uint8

// WAL entry types.
const (
	// EntryRecord is a record ingested into the store (RecordEntry).
	EntryRecord EntryType = 1
	// EntryResolve is one resolve call's fresh decisions and cost
	// accounting (ResolveEntry).
	EntryResolve EntryType = 2
	// EntryRedecide is the background re-escalator's final decision for
	// a pair that an earlier EntryResolve deferred during degraded mode
	// (RedecideEntry). Replay overwrites the deferred journal entry with
	// it; builds predating the resilience layer skip it as an unknown
	// type.
	EntryRedecide EntryType = 3
)

// Entry is one typed WAL payload.
type Entry struct {
	Type    EntryType
	Payload []byte
}

// Frame layout: [type:1][len:4 LE][payload:len][crc32:4 LE], where the
// checksum covers the type byte, the length field and the payload, so
// a torn or bit-flipped frame never replays silently.
const (
	headerSize = 1 + 4
	crcSize    = 4
	// maxPayload bounds a single entry. A corrupt length field would
	// otherwise ask recovery to allocate gigabytes; anything larger
	// than this is treated as tail corruption.
	maxPayload = 1 << 26 // 64 MiB
)

// ErrClosed marks operations on a closed WAL.
var ErrClosed = errors.New("persist: WAL is closed")

// ErrWALWrite marks a failed WAL write path: a short write, an fsync
// error, or a full disk (ENOSPC). Callers match it with errors.Is to
// distinguish durability failures from logic errors; the store stays
// reopenable from the last durable prefix — a failed append rolls the
// file back to the previous entry boundary, and recovery's torn-tail
// truncation covers the case where even the rollback failed.
var ErrWALWrite = errors.New("persist: WAL write failed")

// File is the handle the WAL writes through. *os.File satisfies it;
// the chaos harness (internal/chaos) substitutes a fault-injecting
// implementation to test the write path's failure behaviour.
type File interface {
	io.Reader
	io.Writer
	io.Seeker
	io.Closer
	Sync() error
	Truncate(size int64) error
}

// FS opens WAL files. The OS implementation is the default; tests
// inject fault-wrapping ones.
type FS interface {
	// OpenFile opens path read-write, creating it if absent.
	OpenFile(path string) (File, error)
}

type osFS struct{}

func (osFS) OpenFile(path string) (File, error) {
	return os.OpenFile(path, os.O_RDWR|os.O_CREATE, 0o644)
}

// OS is the real-filesystem FS.
var OS FS = osFS{}

// WAL is an append-only log file. It is not safe for concurrent use;
// callers serialize access (internal/resolve does).
type WAL struct {
	f       File
	entries uint64 // appended through this handle
	bytes   int64  // current file size
	// failed is set when a failed append could not be rolled back to
	// the previous entry boundary: the in-memory offset no longer
	// matches the file, so further appends would write after a torn
	// frame and be silently dropped by the next recovery scan.
	failed bool
	// met instruments append and fsync latency; the zero value is
	// disabled (SetMetrics wires it).
	met telemetry.PersistMetrics
}

// SetMetrics wires telemetry instruments into the log. Call before
// the WAL is shared (the resolve store does, right after OpenWAL).
func (w *WAL) SetMetrics(m telemetry.PersistMetrics) { w.met = m }

// Recovery reports what OpenWAL found in an existing log.
type Recovery struct {
	// Entries are the valid entries replayed from the log, in append
	// order.
	Entries []Entry
	// TruncatedTail reports that the log ended in a torn or corrupt
	// frame — the signature of a crash mid-append — which was dropped
	// and truncated away.
	TruncatedTail bool
	// DroppedBytes is the size of the truncated tail.
	DroppedBytes int64
}

// OpenWAL opens (creating if absent) the log at path, replays its
// valid entries and truncates any torn tail so subsequent Appends
// extend a clean log.
func OpenWAL(path string) (*WAL, Recovery, error) {
	return OpenWALFS(OS, path)
}

// OpenWALFS is OpenWAL over an injected filesystem.
func OpenWALFS(fsys FS, path string) (*WAL, Recovery, error) {
	f, err := fsys.OpenFile(path)
	if err != nil {
		return nil, Recovery{}, fmt.Errorf("persist: open WAL: %w", err)
	}
	rec, validBytes, err := scan(f)
	if err != nil {
		f.Close()
		return nil, Recovery{}, err
	}
	if rec.TruncatedTail {
		if err := f.Truncate(validBytes); err != nil {
			f.Close()
			return nil, Recovery{}, fmt.Errorf("persist: truncate torn tail: %w", err)
		}
	}
	if _, err := f.Seek(validBytes, io.SeekStart); err != nil {
		f.Close()
		return nil, Recovery{}, fmt.Errorf("persist: seek WAL end: %w", err)
	}
	return &WAL{f: f, bytes: validBytes}, rec, nil
}

// scan reads frames from the start of f, returning the valid entries
// and the byte offset where validity ends.
func scan(f File) (Recovery, int64, error) {
	size, err := f.Seek(0, io.SeekEnd)
	if err != nil {
		return Recovery{}, 0, fmt.Errorf("persist: size WAL: %w", err)
	}
	if _, err := f.Seek(0, io.SeekStart); err != nil {
		return Recovery{}, 0, fmt.Errorf("persist: rewind WAL: %w", err)
	}
	var rec Recovery
	var off int64
	header := make([]byte, headerSize)
	for off < size {
		if size-off < headerSize {
			break // torn header
		}
		if _, err := io.ReadFull(f, header); err != nil {
			return Recovery{}, 0, fmt.Errorf("persist: read WAL header: %w", err)
		}
		payloadLen := int64(binary.LittleEndian.Uint32(header[1:]))
		if payloadLen > maxPayload || size-off-headerSize < payloadLen+crcSize {
			break // corrupt length or torn payload/checksum
		}
		body := make([]byte, payloadLen+crcSize)
		if _, err := io.ReadFull(f, body); err != nil {
			return Recovery{}, 0, fmt.Errorf("persist: read WAL entry: %w", err)
		}
		sum := crc32.NewIEEE()
		sum.Write(header)
		sum.Write(body[:payloadLen])
		if sum.Sum32() != binary.LittleEndian.Uint32(body[payloadLen:]) {
			break // bit rot or torn rewrite
		}
		rec.Entries = append(rec.Entries, Entry{
			Type:    EntryType(header[0]),
			Payload: body[:payloadLen:payloadLen],
		})
		off += headerSize + payloadLen + crcSize
	}
	if off < size {
		rec.TruncatedTail = true
		rec.DroppedBytes = size - off
	}
	return rec, off, nil
}

// Append writes one entry to the log. Durability against OS crashes
// additionally needs Sync; a process crash alone never loses an
// appended entry.
func (w *WAL) Append(t EntryType, payload []byte) error {
	if w.f == nil {
		return ErrClosed
	}
	if w.failed {
		return fmt.Errorf("%w: log poisoned by an earlier unrecovered write failure", ErrWALWrite)
	}
	if int64(len(payload)) > maxPayload {
		return fmt.Errorf("persist: entry payload %d bytes exceeds limit", len(payload))
	}
	var t0 time.Time
	if w.met.AppendSeconds != nil {
		t0 = time.Now()
	}
	frame := make([]byte, headerSize+len(payload)+crcSize)
	frame[0] = byte(t)
	binary.LittleEndian.PutUint32(frame[1:], uint32(len(payload)))
	copy(frame[headerSize:], payload)
	sum := crc32.NewIEEE()
	sum.Write(frame[:headerSize+len(payload)])
	binary.LittleEndian.PutUint32(frame[headerSize+len(payload):], sum.Sum32())
	if n, err := w.f.Write(frame); err != nil {
		// Roll the partial frame back to the previous entry boundary so
		// the log stays append-clean; if even that fails, poison the
		// handle — appending after a torn frame would be silently
		// dropped by the next recovery scan.
		if _, serr := w.f.Seek(w.bytes, io.SeekStart); serr != nil {
			w.failed = true
		} else if terr := w.f.Truncate(w.bytes); terr != nil {
			w.failed = true
		}
		return fmt.Errorf("%w: append entry (%d of %d bytes): %v", ErrWALWrite, n, len(frame), err)
	}
	w.entries++
	w.bytes += int64(len(frame))
	if !t0.IsZero() {
		w.met.AppendSeconds.ObserveSince(t0)
	}
	return nil
}

// Sync flushes appended entries to stable storage.
func (w *WAL) Sync() error {
	if w.f == nil {
		return ErrClosed
	}
	var t0 time.Time
	if w.met.FsyncSeconds != nil {
		t0 = time.Now()
	}
	err := w.f.Sync()
	if !t0.IsZero() {
		w.met.FsyncSeconds.ObserveSince(t0)
	}
	if err != nil {
		return fmt.Errorf("%w: fsync: %v", ErrWALWrite, err)
	}
	return nil
}

// Reset empties the log — called right after a snapshot has captured
// everything the log held.
func (w *WAL) Reset() error {
	if w.f == nil {
		return ErrClosed
	}
	if err := w.f.Truncate(0); err != nil {
		return fmt.Errorf("persist: reset WAL: %w", err)
	}
	if _, err := w.f.Seek(0, io.SeekStart); err != nil {
		return fmt.Errorf("persist: rewind WAL: %w", err)
	}
	w.bytes = 0
	return w.f.Sync()
}

// Entries returns the number of entries appended through this handle
// (replayed entries are reported by OpenWAL, not counted here).
func (w *WAL) Entries() uint64 { return w.entries }

// Bytes returns the current log size in bytes.
func (w *WAL) Bytes() int64 { return w.bytes }

// Close syncs and closes the log file.
func (w *WAL) Close() error {
	if w.f == nil {
		return nil
	}
	syncErr := w.f.Sync()
	closeErr := w.f.Close()
	w.f = nil
	if syncErr != nil {
		return syncErr
	}
	return closeErr
}
