package persist

import (
	"bytes"
	"os"
	"path/filepath"
	"reflect"
	"testing"

	"llm4em/internal/entity"
)

func walPath(t *testing.T) string {
	t.Helper()
	return filepath.Join(t.TempDir(), WALFile)
}

func mustOpen(t *testing.T, path string) (*WAL, Recovery) {
	t.Helper()
	w, rec, err := OpenWAL(path)
	if err != nil {
		t.Fatal(err)
	}
	return w, rec
}

func TestWALRoundTrip(t *testing.T) {
	path := walPath(t)
	w, rec := mustOpen(t, path)
	if len(rec.Entries) != 0 || rec.TruncatedTail {
		t.Fatalf("fresh WAL recovery = %+v", rec)
	}
	payloads := [][]byte{[]byte("one"), {}, []byte("three-three-three")}
	types := []EntryType{EntryRecord, EntryResolve, EntryRecord}
	for i, p := range payloads {
		if err := w.Append(types[i], p); err != nil {
			t.Fatal(err)
		}
	}
	if w.Entries() != 3 {
		t.Errorf("Entries = %d, want 3", w.Entries())
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}

	w2, rec := mustOpen(t, path)
	defer w2.Close()
	if rec.TruncatedTail {
		t.Error("clean log reported a truncated tail")
	}
	if len(rec.Entries) != 3 {
		t.Fatalf("replayed %d entries, want 3", len(rec.Entries))
	}
	for i, e := range rec.Entries {
		if e.Type != types[i] || !bytes.Equal(e.Payload, payloads[i]) {
			t.Errorf("entry %d = {%d %q}, want {%d %q}", i, e.Type, e.Payload, types[i], payloads[i])
		}
	}
	// The reopened log appends cleanly after the replayed entries.
	if err := w2.Append(EntryResolve, []byte("four")); err != nil {
		t.Fatal(err)
	}
	w2.Close()
	_, rec = mustOpen(t, path)
	if len(rec.Entries) != 4 {
		t.Errorf("after reopen+append: %d entries, want 4", len(rec.Entries))
	}
}

// TestWALTruncatedTail covers the crash-mid-append signature: a
// partial frame at the end of the log is dropped, everything before
// it survives, and the file is truncated so new appends are clean.
func TestWALTruncatedTail(t *testing.T) {
	for name, tear := range map[string][]byte{
		"partial header":  {byte(EntryRecord), 0xff},
		"partial payload": {byte(EntryRecord), 0x10, 0x00, 0x00, 0x00, 'a', 'b'},
		"huge length":     {byte(EntryRecord), 0xff, 0xff, 0xff, 0x7f, 'x', 'y', 'z', 0, 0, 0, 0},
	} {
		t.Run(name, func(t *testing.T) {
			path := walPath(t)
			w, _ := mustOpen(t, path)
			if err := w.Append(EntryRecord, []byte("kept")); err != nil {
				t.Fatal(err)
			}
			if err := w.Close(); err != nil {
				t.Fatal(err)
			}
			f, err := os.OpenFile(path, os.O_WRONLY|os.O_APPEND, 0)
			if err != nil {
				t.Fatal(err)
			}
			if _, err := f.Write(tear); err != nil {
				t.Fatal(err)
			}
			f.Close()

			w2, rec := mustOpen(t, path)
			if !rec.TruncatedTail || rec.DroppedBytes != int64(len(tear)) {
				t.Errorf("recovery = %+v, want truncated tail of %d bytes", rec, len(tear))
			}
			if len(rec.Entries) != 1 || string(rec.Entries[0].Payload) != "kept" {
				t.Fatalf("entries = %+v, want the pre-tear entry", rec.Entries)
			}
			// Appending after recovery yields a clean two-entry log.
			if err := w2.Append(EntryResolve, []byte("after")); err != nil {
				t.Fatal(err)
			}
			w2.Close()
			_, rec = mustOpen(t, path)
			if rec.TruncatedTail || len(rec.Entries) != 2 {
				t.Errorf("post-recovery log: %+v, want 2 clean entries", rec)
			}
		})
	}
}

// TestWALCorruptCRC flips a payload bit of the final entry: the
// checksum must reject it.
func TestWALCorruptCRC(t *testing.T) {
	path := walPath(t)
	w, _ := mustOpen(t, path)
	if err := w.Append(EntryRecord, []byte("first")); err != nil {
		t.Fatal(err)
	}
	if err := w.Append(EntryRecord, []byte("last")); err != nil {
		t.Fatal(err)
	}
	w.Close()
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	data[len(data)-crcSize-1] ^= 0x01 // corrupt the last payload byte
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	w2, rec := mustOpen(t, path)
	defer w2.Close()
	if !rec.TruncatedTail {
		t.Error("corrupt CRC not detected")
	}
	if len(rec.Entries) != 1 || string(rec.Entries[0].Payload) != "first" {
		t.Errorf("entries = %+v, want only the intact first entry", rec.Entries)
	}
}

func TestWALReset(t *testing.T) {
	path := walPath(t)
	w, _ := mustOpen(t, path)
	if err := w.Append(EntryRecord, []byte("gone after reset")); err != nil {
		t.Fatal(err)
	}
	if err := w.Reset(); err != nil {
		t.Fatal(err)
	}
	if w.Bytes() != 0 {
		t.Errorf("Bytes after Reset = %d", w.Bytes())
	}
	if err := w.Append(EntryResolve, []byte("fresh")); err != nil {
		t.Fatal(err)
	}
	w.Close()
	_, rec := mustOpen(t, path)
	if len(rec.Entries) != 1 || string(rec.Entries[0].Payload) != "fresh" {
		t.Errorf("after reset: %+v, want only the fresh entry", rec.Entries)
	}
}

func TestWALClosed(t *testing.T) {
	w, _ := mustOpen(t, walPath(t))
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil { // double close is a no-op
		t.Errorf("second Close: %v", err)
	}
	if err := w.Append(EntryRecord, nil); err != ErrClosed {
		t.Errorf("Append on closed WAL: %v, want ErrClosed", err)
	}
	if err := w.Sync(); err != ErrClosed {
		t.Errorf("Sync on closed WAL: %v, want ErrClosed", err)
	}
}

func TestSnapshotRoundTrip(t *testing.T) {
	dir := t.TempDir()
	if _, ok, err := ReadSnapshot(dir); err != nil || ok {
		t.Fatalf("empty dir: ok=%v err=%v", ok, err)
	}
	s := &Snapshot{
		Records: []RecordEntry{{Record: entity.Record{
			ID:    "r1",
			Attrs: []entity.Attr{{Name: "title", Value: "sony camera"}},
		}}},
		Groups: [][]string{{"q1", "r1"}, {"r2"}},
		Journal: []DecisionEntry{{
			QueryID: "q1", CandidateID: "r1", Probability: 0.97,
			Match: true, Method: "cascade-accept",
		}},
		Totals:   ReportEntry{Candidates: 3, LLMPairs: 1, Cents: 0.25},
		Resolves: 2,
	}
	if err := WriteSnapshot(dir, s); err != nil {
		t.Fatal(err)
	}
	got, ok, err := ReadSnapshot(dir)
	if err != nil || !ok {
		t.Fatalf("ReadSnapshot: ok=%v err=%v", ok, err)
	}
	if !reflect.DeepEqual(got, s) {
		t.Errorf("snapshot round trip:\ngot  %+v\nwant %+v", got, s)
	}
	// No temporary file lingers.
	if _, err := os.Stat(filepath.Join(dir, snapshotTmp)); !os.IsNotExist(err) {
		t.Errorf("snapshot tmp file left behind: %v", err)
	}
	// Overwriting is atomic and complete.
	s.Resolves = 9
	if err := WriteSnapshot(dir, s); err != nil {
		t.Fatal(err)
	}
	got, _, err = ReadSnapshot(dir)
	if err != nil || got.Resolves != 9 {
		t.Errorf("rewritten snapshot Resolves = %v err=%v", got.Resolves, err)
	}
}

func TestSnapshotVersionMismatch(t *testing.T) {
	dir := t.TempDir()
	if err := os.WriteFile(filepath.Join(dir, SnapshotFile), []byte(`{"version":99}`), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, _, err := ReadSnapshot(dir); err == nil {
		t.Error("future snapshot version accepted")
	}
}

func TestEntryCodecs(t *testing.T) {
	r := entity.Record{ID: "r9", Attrs: []entity.Attr{{Name: "title", Value: "epson printer"}}}
	p, err := EncodeRecord(r)
	if err != nil {
		t.Fatal(err)
	}
	re, err := DecodeRecord(p)
	if err != nil || !reflect.DeepEqual(re.Record, r) {
		t.Errorf("record codec: %+v err=%v", re, err)
	}
	rv := ResolveEntry{
		Query: entity.Record{ID: "q1"},
		Decisions: []DecisionEntry{{
			CandidateID: "r9", Match: true, Method: "llm", Answer: "Yes.",
		}},
		Report: ReportEntry{Candidates: 1, LLMPairs: 1, PromptTokens: 120},
	}
	p, err = EncodeResolve(rv)
	if err != nil {
		t.Fatal(err)
	}
	got, err := DecodeResolve(p)
	if err != nil || !reflect.DeepEqual(got, rv) {
		t.Errorf("resolve codec: %+v err=%v", got, err)
	}
	if _, err := DecodeRecord([]byte("{")); err == nil {
		t.Error("malformed record payload accepted")
	}
	if _, err := DecodeResolve([]byte("{")); err == nil {
		t.Error("malformed resolve payload accepted")
	}
}

// TestIndexFileCleanup pins the index-generation housekeeping:
// MaxIndexEpoch reads the highest epoch off the file names, and
// RemoveIndexFiles keeps every listed generation — the committed one
// plus any quarantined unreadable one — while sweeping the rest.
func TestIndexFileCleanup(t *testing.T) {
	dir := t.TempDir()
	if got := MaxIndexEpoch(dir); got != 0 {
		t.Fatalf("MaxIndexEpoch on empty dir = %d, want 0", got)
	}
	for _, name := range []string{
		IndexFileName(1, 0), IndexFileName(1, 1),
		IndexFileName(2, 0),
		IndexFileName(12, 0),
	} {
		if err := os.WriteFile(filepath.Join(dir, name), []byte("x"), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	if got := MaxIndexEpoch(dir); got != 12 {
		t.Fatalf("MaxIndexEpoch = %d, want 12", got)
	}
	RemoveIndexFiles(dir, 12, 1)
	for name, want := range map[string]bool{
		IndexFileName(1, 0):  true,
		IndexFileName(1, 1):  true,
		IndexFileName(2, 0):  false,
		IndexFileName(12, 0): true,
	} {
		_, err := os.Stat(filepath.Join(dir, name))
		if exists := err == nil; exists != want {
			t.Errorf("%s exists=%v, want %v", name, exists, want)
		}
	}
}
