package persist

import (
	"encoding/json"
	"errors"
	"fmt"
	"io/fs"
	"os"
	"path/filepath"
	"strings"
)

// File names inside a persistence directory.
const (
	SnapshotFile = "snapshot.json"
	WALFile      = "wal.log"
	snapshotTmp  = "snapshot.json.tmp"
)

// snapshotVersion guards the on-disk schema; a mismatch fails loudly
// rather than replaying state under wrong semantics.
const snapshotVersion = 1

// Snapshot is the compacted full state of a resolution store: every
// ingested record, the entity groups, the decision journal and the
// lifetime cost totals. Replaying the WAL on top of it must be
// idempotent — a crash between snapshot rename and WAL reset leaves
// entries in the log that the snapshot already contains.
type Snapshot struct {
	Version int `json:"version"`
	// Records are the ingested (indexed) records.
	Records []RecordEntry `json:"records"`
	// Groups are the entity groups as sorted member slices — enough to
	// rebuild the union-find exactly, since canonical roots are the
	// smallest members regardless of union order.
	Groups [][]string `json:"groups"`
	// Journal holds every decided pair keyed by query and candidate ID.
	Journal []DecisionEntry `json:"journal"`
	// Totals are the lifetime cost counters.
	Totals ReportEntry `json:"totals"`
	// Resolves is the lifetime resolve-call count.
	Resolves uint64 `json:"resolves"`
	// Redecided is the lifetime count of deferred pairs the background
	// re-escalator has settled. Absent in older snapshots.
	Redecided uint64 `json:"redecided,omitempty"`
	// Deferred are the pairs still awaiting re-escalation when the
	// snapshot was cut — the journal keeps only their tentative
	// decisions, so the queue carries the query records needed to
	// rebuild their prompts. Absent in older snapshots.
	Deferred []DeferredEntry `json:"deferred,omitempty"`
	// IndexEpoch and IndexShards bind the per-shard mmap index
	// snapshots (IndexFileName, written by the blocking layer) to this
	// snapshot: IndexShards > 0 says the ingested records live in those
	// files instead of Records, and IndexEpoch names the generation
	// this snapshot committed — files of any other epoch are leftovers
	// of an interrupted checkpoint and must be ignored. Zero means a
	// records-inline snapshot (an older store, or the index snapshot
	// write failed and the checkpoint fell back).
	IndexEpoch  uint64 `json:"index_epoch,omitempty"`
	IndexShards int    `json:"index_shards,omitempty"`
}

// IndexFileName names one shard's mmap index snapshot within a
// persistence directory. The epoch in the name is the binding to
// snapshot.json: the JSON snapshot commits (atomic rename) only after
// every shard's file of its epoch is fully written, so a crash
// mid-checkpoint leaves the previous epoch referenced and intact.
func IndexFileName(epoch uint64, shard int) string {
	return fmt.Sprintf("index-%d-%03d.emx", epoch, shard)
}

// RemoveIndexFiles deletes the index snapshots of every epoch not
// listed in keep — best-effort cleanup of generations no snapshot
// references. A store that degraded at open (mappedFallback) passes
// the generation it could not read as a second keep, quarantining
// files a differently-versioned binary may still recover instead of
// turning the degradation into permanent loss.
func RemoveIndexFiles(dir string, keep ...uint64) {
	matches, _ := filepath.Glob(filepath.Join(dir, "index-*.emx"))
	prefixes := make([]string, len(keep))
	for i, k := range keep {
		prefixes[i] = fmt.Sprintf("index-%d-", k)
	}
	for _, m := range matches {
		base := filepath.Base(m)
		kept := false
		for _, p := range prefixes {
			if strings.HasPrefix(base, p) {
				kept = true
				break
			}
		}
		if !kept {
			os.Remove(m)
		}
	}
}

// MaxIndexEpoch reports the highest epoch any index snapshot file in
// dir carries, zero when there are none. Checkpoint writers derive
// the next generation from this rather than a purely in-memory
// counter: after a mapped-fallback open or an interrupted checkpoint
// the counter can lag the files on disk, and re-using an epoch number
// that the committed snapshot.json still references would rename new
// shard files over the referenced generation one by one — a crash
// midway through would leave a committed snapshot pointing at a mix
// of generations under one epoch.
func MaxIndexEpoch(dir string) uint64 {
	matches, _ := filepath.Glob(filepath.Join(dir, "index-*.emx"))
	var max uint64
	for _, m := range matches {
		rest := strings.TrimPrefix(filepath.Base(m), "index-")
		dash := strings.IndexByte(rest, '-')
		if dash < 0 {
			continue
		}
		var e uint64
		if _, err := fmt.Sscanf(rest[:dash], "%d", &e); err == nil && e > max {
			max = e
		}
	}
	return max
}

// WriteSnapshot atomically replaces the snapshot in dir: the state is
// written to a temporary file, synced, and renamed over the previous
// snapshot, so a crash at any point leaves either the old or the new
// snapshot intact — never a partial one.
func WriteSnapshot(dir string, s *Snapshot) error {
	s.Version = snapshotVersion
	data, err := json.Marshal(s)
	if err != nil {
		return fmt.Errorf("persist: marshal snapshot: %w", err)
	}
	tmp := filepath.Join(dir, snapshotTmp)
	f, err := os.OpenFile(tmp, os.O_WRONLY|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return fmt.Errorf("persist: create snapshot tmp: %w", err)
	}
	if _, err := f.Write(data); err != nil {
		f.Close()
		os.Remove(tmp)
		return fmt.Errorf("persist: write snapshot: %w", err)
	}
	if err := f.Sync(); err != nil {
		f.Close()
		os.Remove(tmp)
		return fmt.Errorf("persist: sync snapshot: %w", err)
	}
	if err := f.Close(); err != nil {
		os.Remove(tmp)
		return fmt.Errorf("persist: close snapshot: %w", err)
	}
	if err := os.Rename(tmp, filepath.Join(dir, SnapshotFile)); err != nil {
		os.Remove(tmp)
		return fmt.Errorf("persist: install snapshot: %w", err)
	}
	return syncDir(dir)
}

// ReadSnapshot loads the snapshot from dir. ok is false when no
// snapshot exists yet (a fresh or WAL-only directory).
func ReadSnapshot(dir string) (s *Snapshot, ok bool, err error) {
	data, err := os.ReadFile(filepath.Join(dir, SnapshotFile))
	if errors.Is(err, fs.ErrNotExist) {
		return nil, false, nil
	}
	if err != nil {
		return nil, false, fmt.Errorf("persist: read snapshot: %w", err)
	}
	s = &Snapshot{}
	if err := json.Unmarshal(data, s); err != nil {
		return nil, false, fmt.Errorf("persist: decode snapshot: %w", err)
	}
	if s.Version != snapshotVersion {
		return nil, false, fmt.Errorf("persist: snapshot version %d, this build reads %d", s.Version, snapshotVersion)
	}
	return s, true, nil
}

// syncDir makes a rename durable by syncing the containing directory.
func syncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return fmt.Errorf("persist: open dir for sync: %w", err)
	}
	defer d.Close()
	// Some filesystems reject fsync on directories; the rename itself
	// is still atomic, so degrade silently.
	_ = d.Sync()
	return nil
}
