package persist

import (
	"bytes"
	"encoding/binary"
	"hash/crc32"
	"os"
	"path/filepath"
	"testing"
)

// frame builds one well-formed WAL frame, for fuzz seeds.
func frame(t EntryType, payload []byte) []byte {
	buf := make([]byte, headerSize+len(payload)+crcSize)
	buf[0] = byte(t)
	binary.LittleEndian.PutUint32(buf[1:], uint32(len(payload)))
	copy(buf[headerSize:], payload)
	sum := crc32.NewIEEE()
	sum.Write(buf[:headerSize+len(payload)])
	binary.LittleEndian.PutUint32(buf[headerSize+len(payload):], sum.Sum32())
	return buf
}

// FuzzWALReplay feeds arbitrary bytes to OpenWAL as a pre-existing log
// file — the on-disk state after any crash, partial write or bit flip —
// and pins the recovery contract: no panic, a clean log after
// truncation, stable replay across reopen, and appendability on top of
// whatever survived.
func FuzzWALReplay(f *testing.F) {
	valid := frame(EntryRecord, []byte(`{"id":"r1"}`))
	two := append(append([]byte{}, valid...), frame(EntryResolve, []byte("decisions"))...)
	huge := frame(EntryRecord, nil)
	binary.LittleEndian.PutUint32(huge[1:], 1<<30) // corrupt length field
	for _, seed := range [][]byte{
		nil,
		valid,
		two,
		valid[:len(valid)-3],           // torn checksum
		two[:len(two)-7],               // torn second frame
		append([]byte{}, huge...),      // absurd length
		bytes.Repeat([]byte{0xff}, 64), // garbage
		append(two, 0x01, 0x02, 0x03),  // valid prefix, torn tail
	} {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		path := filepath.Join(t.TempDir(), "wal.log")
		if err := os.WriteFile(path, data, 0o644); err != nil {
			t.Fatal(err)
		}
		w, rec, err := OpenWAL(path)
		if err != nil {
			t.Fatalf("OpenWAL on arbitrary bytes errored: %v", err)
		}
		for i, e := range rec.Entries {
			if int64(len(e.Payload)) > maxPayload {
				t.Fatalf("entry %d payload %d bytes exceeds the limit scan enforces", i, len(e.Payload))
			}
		}
		if rec.TruncatedTail && rec.DroppedBytes <= 0 {
			t.Fatal("truncated tail reported without dropped bytes")
		}
		if !rec.TruncatedTail && rec.DroppedBytes != 0 {
			t.Fatalf("clean log reports %d dropped bytes", rec.DroppedBytes)
		}
		// The recovered log must be append-clean: a new entry lands and
		// the reopen replays everything that survived plus the new tail.
		if err := w.Append(EntryResolve, []byte("post-recovery")); err != nil {
			t.Fatalf("append after recovery: %v", err)
		}
		if err := w.Close(); err != nil {
			t.Fatal(err)
		}
		w2, rec2, err := OpenWAL(path)
		if err != nil {
			t.Fatalf("reopen after recovery: %v", err)
		}
		defer w2.Close()
		if rec2.TruncatedTail {
			t.Fatal("recovery left a torn tail behind")
		}
		if len(rec2.Entries) != len(rec.Entries)+1 {
			t.Fatalf("reopen replayed %d entries, want %d survivors + 1 appended",
				len(rec2.Entries), len(rec.Entries))
		}
		for i, e := range rec.Entries {
			if rec2.Entries[i].Type != e.Type || !bytes.Equal(rec2.Entries[i].Payload, e.Payload) {
				t.Fatalf("entry %d changed across reopen", i)
			}
		}
		last := rec2.Entries[len(rec2.Entries)-1]
		if last.Type != EntryResolve || string(last.Payload) != "post-recovery" {
			t.Fatalf("appended entry replayed as %+v", last)
		}
	})
}
