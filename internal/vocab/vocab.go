// Package vocab holds the shared vocabulary from which the synthetic
// benchmark datasets are generated: brand names, product lines,
// software titles, author names, publication venues and topic words.
//
// The same vocabulary backs the "world knowledge" of the simulated
// LLM engine (internal/llm). This mirrors reality: the entities in
// the paper's benchmarks (Sony products, SIGMOD papers, ...) are
// exactly the entities a web-pretrained LLM has seen, which is the
// stated reason LLM matchers generalize where PLM matchers do not.
package vocab

// Category identifies a product category used by the product-domain
// generators.
type Category string

// Product categories covered by WDC Products, Abt-Buy and
// Walmart-Amazon. Amazon-Google uses the dedicated software catalog.
const (
	Electronics Category = "electronics"
	Tools       Category = "tools"
	Clothing    Category = "clothing"
	Kitchen     Category = "kitchen"
)

// Brand couples a brand name with the product-line words it sells.
type Brand struct {
	Name  string
	Lines []string
}

// BrandsByCategory returns the brand catalog for a category. The
// returned slice must not be modified.
func BrandsByCategory(c Category) []Brand {
	return brandCatalog[c]
}

// Categories returns all product categories in stable order.
func Categories() []Category {
	return []Category{Electronics, Tools, Clothing, Kitchen}
}

// AllBrandNames returns every brand name across categories and the
// software vendors, in stable order. The simulated LLM uses this as
// its brand lexicon.
func AllBrandNames() []string {
	var names []string
	for _, c := range Categories() {
		for _, b := range brandCatalog[c] {
			names = append(names, b.Name)
		}
	}
	for _, v := range SoftwareVendors {
		names = append(names, v.Name)
	}
	return names
}

var brandCatalog = map[Category][]Brand{
	Electronics: {
		{"Sony", []string{"Bravia", "Cybershot", "Walkman", "Handycam", "Xperia"}},
		{"Samsung", []string{"Galaxy", "QLED", "SyncMaster", "Odyssey"}},
		{"Panasonic", []string{"Lumix", "Viera", "Toughbook"}},
		{"Canon", []string{"PowerShot", "EOS", "Pixma", "imageCLASS"}},
		{"Nikon", []string{"Coolpix", "Nikkor"}},
		{"LG", []string{"UltraGear", "OLED", "Gram"}},
		{"Toshiba", []string{"Satellite", "Portege", "Regza"}},
		{"Philips", []string{"Hue", "Brilliance", "Fidelio"}},
		{"JVC", []string{"Everio", "Kaboom"}},
		{"Pioneer", []string{"Elite", "Kuro"}},
		{"Yamaha", []string{"Aventage", "MusicCast"}},
		{"Bose", []string{"QuietComfort", "SoundLink", "Acoustimass"}},
		{"Sennheiser", []string{"Momentum", "HD"}},
		{"Logitech", []string{"MX", "Harmony"}},
		{"Netgear", []string{"Nighthawk", "ProSafe"}},
		{"Linksys", []string{"Velop", "WRT"}},
		{"Garmin", []string{"Nuvi", "Forerunner", "Fenix"}},
		{"TomTom", []string{"GO", "Start"}},
		{"Olympus", []string{"Stylus", "Tough"}},
		{"Kodak", []string{"EasyShare", "PixPro"}},
		{"Western Digital", []string{"Caviar", "Passport", "Elements"}},
		{"Seagate", []string{"Barracuda", "FreeAgent", "Expansion"}},
		{"SanDisk", []string{"Cruzer", "Extreme", "Ultra"}},
		{"Kingston", []string{"DataTraveler", "HyperX"}},
		{"Epson", []string{"Stylus", "WorkForce", "PowerLite"}},
		{"Brother", []string{"HL", "MFC"}},
		{"DYMO", []string{"LabelWriter", "LetraTag", "D1"}},
		{"Casio", []string{"Exilim", "GShock"}},
		{"Denon", []string{"AVR", "Heos"}},
		{"Onkyo", []string{"TX"}},
	},
	Tools: {
		{"DeWalt", []string{"Max", "XR", "Atomic"}},
		{"Makita", []string{"LXT", "CXT"}},
		{"Bosch", []string{"Professional", "Daredevil"}},
		{"Milwaukee", []string{"Fuel", "M18", "M12"}},
		{"Ryobi", []string{"One+", "Expand-It"}},
		{"Black & Decker", []string{"Matrix", "Workmate"}},
		{"Stanley", []string{"FatMax", "PowerLock"}},
		{"Craftsman", []string{"Versastack", "Brushless"}},
		{"Hitachi", []string{"Triple Hammer"}},
		{"Ridgid", []string{"Octane", "Gen5X"}},
		{"Dremel", []string{"Multi-Max", "Velocity"}},
		{"Hilti", []string{"Nuron", "TE"}},
	},
	Clothing: {
		{"Nike", []string{"Air Max", "Dri-Fit", "Pegasus"}},
		{"Adidas", []string{"Ultraboost", "Stan Smith", "Terrex"}},
		{"Puma", []string{"Suede", "Velocity"}},
		{"Levi's", []string{"501", "Trucker"}},
		{"Columbia", []string{"Bugaboo", "Silver Ridge"}},
		{"North Face", []string{"Denali", "Thermoball"}},
		{"Under Armour", []string{"HeatGear", "ColdGear"}},
		{"Carhartt", []string{"Duck", "Rugged Flex"}},
		{"Timberland", []string{"Premium", "Euro Hiker"}},
		{"Reebok", []string{"Classic", "Nano"}},
	},
	Kitchen: {
		{"KitchenAid", []string{"Artisan", "Classic"}},
		{"Cuisinart", []string{"Elemental", "Custom"}},
		{"Hamilton Beach", []string{"FlexBrew", "Wave Crusher"}},
		{"Oster", []string{"Pro", "Beehive"}},
		{"Breville", []string{"Barista", "Smart Oven"}},
		{"DeLonghi", []string{"Magnifica", "Dedica"}},
		{"Krups", []string{"Essential", "Precision"}},
		{"Braun", []string{"MultiQuick", "PurEase"}},
		{"Zojirushi", []string{"Neuro Fuzzy", "Micom"}},
		{"Instant Pot", []string{"Duo", "Ultra"}},
	},
}

// ProductTypesByCategory returns the head nouns used for product
// titles per category.
func ProductTypesByCategory(c Category) []string {
	return productTypes[c]
}

var productTypes = map[Category][]string{
	Electronics: {
		"digital camera", "camcorder", "lcd tv", "led monitor",
		"wireless headphones", "bluetooth speaker", "av receiver",
		"laptop", "external hard drive", "usb flash drive",
		"inkjet printer", "laser printer", "gps navigator",
		"wireless router", "label maker", "memory card",
	},
	Tools: {
		"cordless drill", "impact driver", "circular saw",
		"angle grinder", "rotary hammer", "jig saw", "orbital sander",
		"oscillating tool", "reciprocating saw", "tool kit",
	},
	Clothing: {
		"running shoes", "fleece jacket", "rain jacket", "work pants",
		"training shorts", "hiking boots", "hoodie", "polo shirt",
	},
	Kitchen: {
		"stand mixer", "food processor", "coffee maker",
		"espresso machine", "blender", "rice cooker", "toaster oven",
		"hand blender",
	},
}

// Colors, capacities, and size words used as product variant
// attributes; variant differences are the classic corner-case
// non-match.
var (
	Colors     = []string{"black", "white", "silver", "red", "blue", "gray", "green", "pink"}
	Capacities = []string{"4gb", "8gb", "16gb", "32gb", "64gb", "128gb", "250gb", "500gb", "1tb", "2tb"}
	Sizes      = []string{"small", "medium", "large", "xl", "10-inch", "12-inch", "15-inch", "17-inch", "19-inch", "22-inch"}
)

// MarketingNoise holds filler words vendors prepend or append to
// offer titles. They carry no identity signal and make surface forms
// heterogeneous.
var MarketingNoise = []string{
	"new", "brand new", "genuine", "original", "oem", "retail",
	"factory sealed", "free shipping", "best price", "2-pack",
	"w/ warranty", "in box", "bulk", "refurbished grade a",
}

// SellerSuffixes imitate marketplace seller decorations.
var SellerSuffixes = []string{
	"- megastore", "| top electronics", "(authorized dealer)",
	"- warehouse deals", "| daily deals", "- outlet",
}

// Vendor couples a software vendor with its product families, used by
// the Amazon-Google generator (software products).
type Vendor struct {
	Name     string
	Products []string
}

// SoftwareVendors is the catalog behind the Amazon-Google benchmark:
// rather textual offers for software products.
var SoftwareVendors = []Vendor{
	{"Microsoft", []string{"Windows XP Professional", "Windows Vista Home Premium", "Office Standard", "Office Small Business", "Visio Professional", "Project Standard", "Money Deluxe", "Encarta Premium", "Streets & Trips", "Works Suite"}},
	{"Adobe", []string{"Photoshop Elements", "Premiere Elements", "Acrobat Professional", "Creative Suite Design Standard", "Illustrator", "InDesign", "Dreamweaver", "Flash Professional", "Lightroom", "After Effects"}},
	{"Intuit", []string{"QuickBooks Pro", "QuickBooks Premier", "Quicken Deluxe", "Quicken Home & Business", "TurboTax Deluxe", "TurboTax Premier"}},
	{"Symantec", []string{"Norton AntiVirus", "Norton Internet Security", "Norton 360", "Norton Ghost", "Norton SystemWorks"}},
	{"Corel", []string{"WordPerfect Office", "Paint Shop Pro", "CorelDRAW Graphics Suite", "Painter", "VideoStudio"}},
	{"McAfee", []string{"VirusScan Plus", "Internet Security Suite", "Total Protection"}},
	{"Roxio", []string{"Easy Media Creator", "Toast Titanium", "Popcorn"}},
	{"Nero", []string{"Nero Ultra Edition", "Nero Burning ROM"}},
	{"Apple", []string{"Mac OS X Tiger", "Mac OS X Leopard", "Final Cut Express", "iWork", "Aperture", "Logic Express"}},
	{"Sage", []string{"Peachtree Complete Accounting", "ACT! by Sage", "Simply Accounting"}},
	{"Broderbund", []string{"Print Shop Deluxe", "Calendar Creator", "Mavis Beacon Teaches Typing"}},
	{"Encore", []string{"Hoyle Casino", "Advanced Spanish", "Mavis Beacon Keyboarding"}},
	{"Topics Entertainment", []string{"Instant Immersion Spanish", "Instant Immersion French", "SnapNDrag Pro"}},
	{"Individual Software", []string{"Typing Instructor Platinum", "ResumeMaker Professional", "Professor Teaches Windows"}},
	{"Nuance", []string{"Dragon NaturallySpeaking Preferred", "PaperPort Professional", "OmniPage Professional"}},
}

// SoftwareEditionWords distinguish near-identical software offers;
// edition confusion is the dominant Amazon-Google corner case.
var SoftwareEditionWords = []string{
	"upgrade", "full version", "academic", "student edition", "oem",
	"small box", "retail box", "3-user", "mac", "win",
}

// FirstNames and LastNames generate publication author lists.
var FirstNames = []string{
	"Michael", "David", "Wei", "Jun", "Hector", "Rakesh", "Surajit",
	"Jennifer", "Christos", "Divesh", "Jeffrey", "Alon", "Joseph",
	"Laura", "Hans", "Peter", "Anastasia", "Magdalena", "Samuel",
	"Daniela", "Jignesh", "Tim", "Donald", "Umeshwar", "Serge",
	"Victor", "Moshe", "Dan", "Raghu", "Johannes", "Bruce", "Carlo",
	"Elisa", "Gerhard", "Guido", "Hamid", "Ihab", "Ioana", "Jayant",
	"Kevin", "Ling", "Meral", "Nick", "Patricia", "Qiong", "Renee",
	"Stefano", "Themis", "Vasilis", "Xin", "Yannis", "Zachary",
}

// LastNames complements FirstNames.
var LastNames = []string{
	"Stonebraker", "DeWitt", "Gray", "Agrawal", "Chaudhuri", "Widom",
	"Faloutsos", "Srivastava", "Ullman", "Halevy", "Hellerstein",
	"Haas", "Garcia-Molina", "Naughton", "Bernstein", "Abiteboul",
	"Vianu", "Ramakrishnan", "Gehrke", "Carey", "Zaniolo", "Ceri",
	"Weikum", "Moerkotte", "Ioannidis", "Papadias", "Koudas",
	"Ganti", "Chakrabarti", "Dayal", "Jagadish", "Suciu", "Tannen",
	"Milo", "Segoufin", "Libkin", "Lenzerini", "Calvanese", "Rahm",
	"Thor", "Naumann", "Bizer", "Peeters", "Doan", "Tan", "Li",
	"Wang", "Chen", "Zhang", "Kumar", "Patel", "Miller", "Freire",
}

// TopicWord groups for publication titles; each title combines words
// from one topic to keep titles plausible and make same-topic
// non-matches a natural corner case.
var TopicPhrases = [][]string{
	{"query optimization", "for", "parallel database systems"},
	{"efficient processing", "of", "top-k queries"},
	{"adaptive indexing", "in", "main-memory column stores"},
	{"approximate query answering", "using", "wavelet synopses"},
	{"scalable entity resolution", "over", "heterogeneous data sources"},
	{"schema matching", "with", "statistical correlation analysis"},
	{"mining frequent patterns", "from", "large transaction databases"},
	{"online aggregation", "for", "interactive data exploration"},
	{"selectivity estimation", "using", "multidimensional histograms"},
	{"incremental maintenance", "of", "materialized views"},
	{"workload-aware partitioning", "for", "distributed query engines"},
	{"duplicate detection", "in", "dirty relational data"},
	{"cost-based optimization", "of", "recursive queries"},
	{"data cleaning", "with", "conditional functional dependencies"},
	{"cardinality estimation", "through", "learned models"},
	{"transaction management", "in", "multi-tenant cloud databases"},
	{"locality-aware scheduling", "for", "mapreduce workloads"},
	{"keyword search", "over", "graph structured data"},
	{"similarity joins", "with", "edit distance constraints"},
	{"sampling-based estimation", "for", "aggregate queries"},
	{"streaming analytics", "under", "bounded memory"},
	{"concurrency control", "for", "main-memory oltp systems"},
	{"provenance tracking", "in", "curated scientific databases"},
	{"crowdsourced data integration", "with", "quality guarantees"},
	{"privacy-preserving publishing", "of", "sensitive microdata"},
	{"spatial query processing", "on", "road networks"},
	{"compression techniques", "for", "columnar storage engines"},
	{"load shedding", "in", "data stream management systems"},
	{"versioned storage", "for", "collaborative analytics"},
	{"probabilistic databases", "and", "uncertain query answering"},
	{"record linkage", "using", "active learning"},
	{"federated query execution", "across", "autonomous data silos"},
}

// TitleModifiers prefix publication titles to create sibling papers
// (same topic, different contribution) — a bibliographic corner case.
var TitleModifiers = []string{
	"towards", "revisiting", "on", "a survey of", "benchmarking",
	"a framework for", "rethinking", "accelerating", "optimizing",
}

// Venue couples a full publication venue name with the surface
// variants under which it appears in bibliographic sources.
type Venue struct {
	Full     string
	Variants []string
	Journal  bool
}

// Venues is the venue catalog for the bibliographic generators,
// covering the conference/journal mix of DBLP, ACM and Google
// Scholar records.
var Venues = []Venue{
	{"SIGMOD Conference", []string{"SIGMOD", "Proc. SIGMOD", "ACM SIGMOD", "sigmod conference", "International Conference on Management of Data"}, false},
	{"VLDB", []string{"Proc. VLDB", "Very Large Data Bases", "vldb", "Proceedings of the VLDB Endowment", "PVLDB"}, false},
	{"ICDE", []string{"Proc. ICDE", "International Conference on Data Engineering", "icde", "IEEE ICDE"}, false},
	{"EDBT", []string{"Proc. EDBT", "Extending Database Technology", "edbt"}, false},
	{"CIKM", []string{"Proc. CIKM", "Information and Knowledge Management", "cikm"}, false},
	{"KDD", []string{"Proc. KDD", "Knowledge Discovery and Data Mining", "SIGKDD", "kdd"}, false},
	{"WWW", []string{"Proc. WWW", "World Wide Web Conference", "www"}, false},
	{"PODS", []string{"Proc. PODS", "Principles of Database Systems", "pods"}, false},
	{"ICDT", []string{"Proc. ICDT", "International Conference on Database Theory", "icdt"}, false},
	{"SIGIR", []string{"Proc. SIGIR", "Research and Development in Information Retrieval", "sigir"}, false},
	{"ACM TODS", []string{"TODS", "ACM Trans. Database Syst.", "ACM Transactions on Database Systems"}, true},
	{"VLDB Journal", []string{"VLDB J.", "The VLDB Journal", "vldbj"}, true},
	{"IEEE TKDE", []string{"TKDE", "IEEE Trans. Knowl. Data Eng.", "Transactions on Knowledge and Data Engineering"}, true},
	{"Information Systems", []string{"Inf. Syst.", "information systems"}, true},
	{"SIGMOD Record", []string{"SIGMOD Rec.", "sigmod record"}, true},
	{"Data Engineering Bulletin", []string{"IEEE Data Eng. Bull.", "DEBU"}, true},
}

// VenueNames returns the full venue names; the simulated LLM uses
// this as its venue lexicon.
func VenueNames() []string {
	names := make([]string, len(Venues))
	for i, v := range Venues {
		names[i] = v.Full
	}
	return names
}

// Abbreviate returns a crude word-abbreviation of s used by the noisy
// bibliographic source: it keeps the first prefixLen letters of words
// longer than that, appending a period.
func Abbreviate(word string, prefixLen int) string {
	if len(word) <= prefixLen {
		return word
	}
	return word[:prefixLen] + "."
}
