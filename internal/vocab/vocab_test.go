package vocab

import "testing"

func TestCatalogCoverage(t *testing.T) {
	for _, c := range Categories() {
		if len(BrandsByCategory(c)) < 8 {
			t.Errorf("category %s has only %d brands", c, len(BrandsByCategory(c)))
		}
		if len(ProductTypesByCategory(c)) < 5 {
			t.Errorf("category %s has only %d product types", c, len(ProductTypesByCategory(c)))
		}
		for _, b := range BrandsByCategory(c) {
			if b.Name == "" || len(b.Lines) == 0 {
				t.Errorf("brand %+v incomplete in %s", b, c)
			}
		}
	}
}

func TestAllBrandNamesIncludesVendors(t *testing.T) {
	names := AllBrandNames()
	seen := map[string]bool{}
	for _, n := range names {
		if seen[n] {
			t.Errorf("duplicate brand name %q", n)
		}
		seen[n] = true
	}
	if !seen["Sony"] || !seen["Microsoft"] {
		t.Error("AllBrandNames should span products and software vendors")
	}
}

func TestVenuesHaveVariants(t *testing.T) {
	var conf, journal int
	for _, v := range Venues {
		if v.Full == "" || len(v.Variants) == 0 {
			t.Errorf("venue %+v incomplete", v)
		}
		if v.Journal {
			journal++
		} else {
			conf++
		}
	}
	if conf < 5 || journal < 3 {
		t.Errorf("venue mix: %d conferences, %d journals", conf, journal)
	}
	if len(VenueNames()) != len(Venues) {
		t.Error("VenueNames length mismatch")
	}
}

func TestNamePools(t *testing.T) {
	if len(FirstNames) < 40 || len(LastNames) < 40 {
		t.Errorf("name pools too small: %d/%d", len(FirstNames), len(LastNames))
	}
	if len(TopicPhrases) < 20 {
		t.Errorf("only %d topic phrases", len(TopicPhrases))
	}
	for _, tp := range TopicPhrases {
		if len(tp) != 3 {
			t.Errorf("topic phrase %v should have 3 segments", tp)
		}
	}
}

func TestSoftwareVendors(t *testing.T) {
	if len(SoftwareVendors) < 10 {
		t.Errorf("only %d software vendors", len(SoftwareVendors))
	}
	for _, v := range SoftwareVendors {
		if v.Name == "" || len(v.Products) == 0 {
			t.Errorf("vendor %+v incomplete", v)
		}
	}
}

func TestAbbreviate(t *testing.T) {
	if got := Abbreviate("wireless", 4); got != "wire." {
		t.Errorf("Abbreviate = %q", got)
	}
	if got := Abbreviate("usb", 4); got != "usb" {
		t.Errorf("short words should pass through, got %q", got)
	}
}
