package promptsearch

import (
	"strings"
	"testing"

	"llm4em/internal/datasets"
	"llm4em/internal/llm"
)

func TestSearchImprovesWeakModel(t *testing.T) {
	ds := datasets.MustLoad("wdc")
	client := llm.MustNew(llm.Mixtral)
	opts := Options{Generations: 3, Population: 6, ValidationPairs: 150, Seed: "test"}
	pop, err := Search(client, ds.Schema.Domain, ds.Val, opts)
	if err != nil {
		t.Fatal(err)
	}
	if len(pop) != 6 {
		t.Fatalf("population size %d, want 6", len(pop))
	}
	best, worst := pop[0], pop[len(pop)-1]
	if best.F1 < worst.F1 {
		t.Errorf("population not sorted: best %.2f < worst %.2f", best.F1, worst.F1)
	}
	if best.F1 <= 0 {
		t.Errorf("best candidate F1 = %.2f", best.F1)
	}
	t.Logf("best evolved prompt (F1 %.2f): %q force=%v", best.F1, best.Task, best.Force)
}

func TestSearchDeterministic(t *testing.T) {
	ds := datasets.MustLoad("wdc")
	client := llm.MustNew(llm.Mixtral)
	opts := Options{Generations: 2, Population: 4, ValidationPairs: 80, Seed: "det"}
	a, err := Search(client, ds.Schema.Domain, ds.Val, opts)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Search(client, ds.Schema.Domain, ds.Val, opts)
	if err != nil {
		t.Fatal(err)
	}
	for i := range a {
		if a[i].Task != b[i].Task || a[i].F1 != b[i].F1 {
			t.Fatalf("search not deterministic at %d: %+v vs %+v", i, a[i], b[i])
		}
	}
}

func TestCandidateRender(t *testing.T) {
	ds := datasets.MustLoad("wdc")
	c := Candidate{Task: "Do the two records match?", Force: true}
	p := c.Render(ds.Schema.Domain, ds.Test[0])
	if !strings.Contains(p, "Do the two records match?") ||
		!strings.Contains(p, "Answer with 'Yes'") ||
		!strings.Contains(p, "Entity 1: '") {
		t.Errorf("rendered candidate prompt:\n%s", p)
	}
	c.Force = false
	if strings.Contains(c.Render(ds.Schema.Domain, ds.Test[0]), "Answer with 'Yes'") {
		t.Error("non-force candidate should not carry the instruction")
	}
}

func TestSearchEmptyValidation(t *testing.T) {
	client := llm.MustNew(llm.GPT4)
	if _, err := Search(client, 0, nil, DefaultOptions()); err == nil {
		t.Fatal("empty validation should error")
	}
}
