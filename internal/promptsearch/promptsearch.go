// Package promptsearch implements the automated prompt tuning the
// paper points to in Section 3 ("automated approaches for prompt
// tuning and evolution could still further improve the results",
// citing Promptbreeder): a deterministic evolutionary search over
// task-description phrasings, evaluated on a validation subset,
// returning the prompt that maximizes F1 for a given model/dataset
// combination.
package promptsearch

import (
	"fmt"
	"strings"

	"llm4em/internal/core"
	"llm4em/internal/detrand"
	"llm4em/internal/entity"
	"llm4em/internal/eval"
	"llm4em/internal/llm"
	"llm4em/internal/prompt"
)

// Options configures the search.
type Options struct {
	// Generations of the evolutionary loop (default 4).
	Generations int
	// Population size per generation (default 8).
	Population int
	// ValidationPairs caps the validation subset (default 200).
	ValidationPairs int
	// Seed names the deterministic search stream.
	Seed string
}

// DefaultOptions returns the standard search configuration.
func DefaultOptions() Options {
	return Options{Generations: 4, Population: 8, ValidationPairs: 200, Seed: "promptsearch"}
}

// Candidate is one evaluated prompt.
type Candidate struct {
	// Task is the evolved task description.
	Task string
	// Force reports whether the output-format instruction is attached.
	Force bool
	// F1 is the validation score.
	F1 float64
}

// Render returns the full prompt text the candidate produces for a
// pair.
func (c Candidate) Render(domain entity.Domain, pair entity.Pair) string {
	var b strings.Builder
	b.WriteString(c.Task)
	if c.Force {
		b.WriteByte(' ')
		b.WriteString(prompt.ForceInstruction)
	}
	b.WriteString("\n")
	fmt.Fprintf(&b, "Entity 1: '%s'\nEntity 2: '%s'", pair.A.Serialize(), pair.B.Serialize())
	return b.String()
}

// Building blocks of the mutation grammar.
var (
	subjects = []string{
		"the two entity descriptions",
		"the two product descriptions",
		"the two records",
		"the following two entries",
		"the two listings",
		"the two publications",
	}
	verbs = []string{
		"match",
		"refer to the same real-world entity",
		"describe the same item",
		"denote the same real-world object",
		"represent the same entity",
	}
	prefixes = []string{
		"",
		"You are an expert in data integration. ",
		"Carefully compare all attributes. ",
		"Consider identifiers, names and numeric attributes. ",
	}
)

// Search evolves task descriptions for the model on the dataset's
// validation pool and returns the candidates of the final generation,
// best first.
func Search(client llm.Client, domain entity.Domain, validation []entity.Pair, opts Options) ([]Candidate, error) {
	if opts.Generations <= 0 {
		opts.Generations = DefaultOptions().Generations
	}
	if opts.Population <= 0 {
		opts.Population = DefaultOptions().Population
	}
	if opts.ValidationPairs <= 0 {
		opts.ValidationPairs = DefaultOptions().ValidationPairs
	}
	if opts.Seed == "" {
		opts.Seed = DefaultOptions().Seed
	}
	if len(validation) > opts.ValidationPairs {
		validation = validation[:opts.ValidationPairs]
	}
	if len(validation) == 0 {
		return nil, fmt.Errorf("promptsearch: empty validation pool")
	}

	rng := detrand.New(opts.Seed, client.Name())
	pop := initialPopulation(rng, opts.Population)
	for i := range pop {
		f1, err := evaluate(client, domain, pop[i], validation)
		if err != nil {
			return nil, err
		}
		pop[i].F1 = f1
	}
	sortByF1(pop)

	for g := 0; g < opts.Generations; g++ {
		// Keep the top half, refill with mutations of survivors.
		keep := len(pop) / 2
		if keep < 1 {
			keep = 1
		}
		next := append([]Candidate{}, pop[:keep]...)
		for len(next) < opts.Population {
			parent := next[rng.Intn(keep)]
			child := mutate(rng, parent)
			f1, err := evaluate(client, domain, child, validation)
			if err != nil {
				return nil, err
			}
			child.F1 = f1
			next = append(next, child)
		}
		pop = next
		sortByF1(pop)
	}
	return pop, nil
}

func initialPopulation(rng *detrand.RNG, n int) []Candidate {
	// Seed half of the population with the paper's fixed task
	// descriptions so the search starts from known-good phrasings and
	// mutates around them.
	seeds := []Candidate{
		{Task: "Do the two entity descriptions refer to the same real-world entity?", Force: true},
		{Task: "Do the two product descriptions refer to the same real-world product?", Force: true},
		{Task: "Do the two entity descriptions match?", Force: true},
		{Task: "Do the two entity descriptions refer to the same real-world entity?", Force: false},
	}
	pop := make([]Candidate, 0, n)
	for _, s := range seeds {
		if len(pop) < (n+1)/2 {
			pop = append(pop, s)
		}
	}
	for len(pop) < n {
		pop = append(pop, Candidate{
			Task:  compose(rng),
			Force: rng.Bool(0.5),
		})
	}
	return pop
}

func compose(rng *detrand.RNG) string {
	return detrand.Pick(rng, prefixes) +
		"Do " + detrand.Pick(rng, subjects) + " " + detrand.Pick(rng, verbs) + "?"
}

func mutate(rng *detrand.RNG, parent Candidate) Candidate {
	child := parent
	switch rng.Intn(3) {
	case 0:
		child.Task = compose(rng)
	case 1:
		child.Force = !child.Force
	default:
		// Swap one grammar slot by recomposing with a shared prefix.
		child.Task = detrand.Pick(rng, prefixes) + lastSentence(parent.Task)
	}
	return child
}

// lastSentence returns the question part of a task description.
func lastSentence(task string) string {
	if i := strings.LastIndex(task, ". "); i >= 0 {
		return task[i+2:]
	}
	return task
}

func evaluate(client llm.Client, domain entity.Domain, c Candidate, pairs []entity.Pair) (float64, error) {
	var conf eval.Confusion
	for _, p := range pairs {
		resp, err := client.Chat([]llm.Message{{Role: llm.User, Content: c.Render(domain, p)}})
		if err != nil {
			return 0, fmt.Errorf("promptsearch: evaluating %q: %w", c.Task, err)
		}
		conf.Add(p.Match, core.ParseAnswer(resp.Content))
	}
	return conf.F1(), nil
}

func sortByF1(pop []Candidate) {
	for i := 1; i < len(pop); i++ {
		c := pop[i]
		j := i - 1
		for j >= 0 && pop[j].F1 < c.F1 {
			pop[j+1] = pop[j]
			j--
		}
		pop[j+1] = c
	}
}
