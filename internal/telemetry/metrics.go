// Package telemetry is the dependency-free observability core of the
// serving stack: atomic counters, gauges and fixed-bucket latency
// histograms grouped into labeled families by a Registry that renders
// Prometheus text exposition (format 0.0.4), plus lightweight
// per-resolve request tracing carried through context.Context and a
// sampled slow-request exemplar logger on log/slog.
//
// The package is built for the resolve hot path: every instrument
// method is safe on a nil receiver (a disabled instrument is a few
// predictable branches, never a pointer chase into a registry) and
// allocation-free when enabled — counters and gauges are single
// atomics, histograms bump one atomic bucket plus a CAS'd float sum.
// Sub-structs of instruments (PipelineMetrics, DispatchMetrics, …) are
// passed by value into the instrumented packages, so an un-wired
// package holds all-nil instruments and pays only the nil checks.
package telemetry

import (
	"math"
	"sync/atomic"
	"time"
)

// Counter is a monotonically increasing atomic counter. The zero
// value is ready to use; all methods are no-ops on a nil receiver, so
// disabled instrumentation costs one branch.
type Counter struct {
	v atomic.Uint64
}

// Inc adds one.
func (c *Counter) Inc() { c.Add(1) }

// Add adds n.
func (c *Counter) Add(n uint64) {
	if c != nil {
		c.v.Add(n)
	}
}

// Value returns the current count (zero on a nil receiver).
func (c *Counter) Value() uint64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is an atomic instantaneous value (queue depth, bytes on
// disk). The zero value is ready; methods are no-ops on nil.
type Gauge struct {
	v atomic.Int64
}

// Set stores v.
func (g *Gauge) Set(v int64) {
	if g != nil {
		g.v.Store(v)
	}
}

// Add adds d (negative to decrease).
func (g *Gauge) Add(d int64) {
	if g != nil {
		g.v.Add(d)
	}
}

// Value returns the current value (zero on a nil receiver).
func (g *Gauge) Value() int64 {
	if g == nil {
		return 0
	}
	return g.v.Load()
}

// Histogram is a fixed-bucket cumulative-style histogram: Observe
// finds the first bucket whose upper bound holds the value and bumps
// it atomically, with an implicit +Inf bucket catching the rest. The
// bucket layout is immutable after construction, so observation is
// lock-free and allocation-free; the float64 sum is maintained with a
// CAS loop over its bits. Quantiles are estimated by linear
// interpolation inside the target bucket — exact enough for p50/p95/
// p99 dashboards when the buckets are chosen to bracket the expected
// range (see DurationBuckets).
type Histogram struct {
	// bounds are the ascending inclusive upper bounds; counts has one
	// extra slot for the implicit +Inf bucket.
	bounds []float64
	counts []atomic.Uint64
	count  atomic.Uint64
	sum    atomic.Uint64 // math.Float64bits of the running sum
}

// newHistogram builds a histogram over the given ascending bounds.
// The bounds slice is copied; an empty layout gets a single +Inf
// bucket.
func newHistogram(bounds []float64) *Histogram {
	b := make([]float64, len(bounds))
	copy(b, bounds)
	return &Histogram{bounds: b, counts: make([]atomic.Uint64, len(b)+1)}
}

// Observe records one value. No-op on a nil receiver.
func (h *Histogram) Observe(v float64) {
	if h == nil {
		return
	}
	// Linear scan: bucket counts are small (~20) and the loop is
	// branch-predictable — cheaper than binary search at this size.
	i := 0
	for i < len(h.bounds) && v > h.bounds[i] {
		i++
	}
	h.counts[i].Add(1)
	h.count.Add(1)
	for {
		old := h.sum.Load()
		next := math.Float64bits(math.Float64frombits(old) + v)
		if h.sum.CompareAndSwap(old, next) {
			return
		}
	}
}

// ObserveSince records the seconds elapsed since t0.
func (h *Histogram) ObserveSince(t0 time.Time) {
	if h == nil {
		return
	}
	h.Observe(time.Since(t0).Seconds())
}

// Count returns the number of observations (zero on nil).
func (h *Histogram) Count() uint64 {
	if h == nil {
		return 0
	}
	return h.count.Load()
}

// Sum returns the sum of observed values (zero on nil).
func (h *Histogram) Sum() float64 {
	if h == nil {
		return 0
	}
	return math.Float64frombits(h.sum.Load())
}

// Quantile estimates the q-quantile (0 < q < 1) of the observed
// distribution by linear interpolation within the bucket holding the
// target rank. Values in the +Inf bucket clamp to the largest finite
// bound. Returns zero with no observations or on a nil receiver.
func (h *Histogram) Quantile(q float64) float64 {
	if h == nil {
		return 0
	}
	total := h.count.Load()
	if total == 0 || q <= 0 {
		return 0
	}
	if q > 1 {
		q = 1
	}
	rank := q * float64(total)
	var cum float64
	for i := range h.counts {
		n := float64(h.counts[i].Load())
		if n == 0 {
			continue
		}
		if cum+n < rank {
			cum += n
			continue
		}
		if i >= len(h.bounds) {
			// +Inf bucket: the best available estimate is the largest
			// finite bound.
			if len(h.bounds) == 0 {
				return 0
			}
			return h.bounds[len(h.bounds)-1]
		}
		lo := 0.0
		if i > 0 {
			lo = h.bounds[i-1]
		}
		return lo + (h.bounds[i]-lo)*(rank-cum)/n
	}
	if len(h.bounds) == 0 {
		return 0
	}
	return h.bounds[len(h.bounds)-1]
}

// DurationBuckets is the shared upper-bound layout (seconds) of every
// latency histogram in the system. It spans 5µs to 10s: the low end
// brackets the local resolve stages (extraction, blocking and scoring
// run in single-digit to tens of microseconds on the PR 4 hot path),
// the middle the WAL fsync and dispatcher-wait range (hundreds of µs
// to milliseconds), and the high end real LLM round-trips (hundreds
// of ms to seconds). One shared layout keeps stage latencies directly
// comparable across families and the exposition size predictable.
func DurationBuckets() []float64 {
	return []float64{
		5e-6, 10e-6, 25e-6, 50e-6, 100e-6, 250e-6, 500e-6,
		1e-3, 2.5e-3, 5e-3, 10e-3, 25e-3, 50e-3, 100e-3, 250e-3, 500e-3,
		1, 2.5, 5, 10,
	}
}

// SizeBuckets is the upper-bound layout for small-count histograms
// (dispatcher batch sizes): powers of two up to the dispatcher's
// practical batch ceiling.
func SizeBuckets() []float64 {
	return []float64{1, 2, 4, 8, 16, 32, 64}
}
