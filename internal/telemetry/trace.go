package telemetry

import (
	"context"
	"encoding/hex"
	"os"
	"sync/atomic"
	"time"
)

// Stage enumerates the spans of one resolve call, in hot-path order.
// The fixed enumeration is what keeps tracing allocation-free: stage
// durations live in a fixed-size array indexed by Stage, never a map.
type Stage uint8

// Resolve stages. DispatchWait is the wall-clock time an escalated
// band spent queued in (and coordinated by) the micro-batching
// dispatcher net of model time; LLM is the model-side latency of the
// escalated pairs.
const (
	StageExtract Stage = iota
	StageBlock
	StageJournal
	StageScore
	StageDispatchWait
	StageLLM
	StageFold
	StagePersist

	numStages
)

// NumStages is the number of resolve stages, usable as an array size.
const NumStages = int(numStages)

var stageNames = [NumStages]string{
	"extract", "block", "journal", "score",
	"dispatch_wait", "llm", "fold", "persist",
}

// String returns the stage's metric label ("extract", "block", …).
func (s Stage) String() string {
	if int(s) < NumStages {
		return stageNames[s]
	}
	return "unknown"
}

// StageDurations holds one duration per resolve stage, indexed by
// Stage. Passed by value through the slow-log path so recording a
// span tree never forces the observer onto the heap.
type StageDurations [NumStages]time.Duration

// Trace is one request's span record: a stable ID plus per-stage
// durations accumulated as the resolve advances. A Trace is carried
// through context.Context (WithTrace/FromContext) from the HTTP layer
// into the store; all methods are safe on a nil receiver, so
// un-traced calls pay only nil checks.
//
// A Trace is owned by one request and is not safe for concurrent
// mutation.
type Trace struct {
	id    string
	start time.Time
	durs  StageDurations
}

// NewTrace returns a trace with the given ID (a fresh generated ID
// when empty), started now.
func NewTrace(id string) *Trace {
	if id == "" {
		id = GenerateID()
	}
	return &Trace{id: id, start: time.Now()}
}

// ID returns the trace ID ("" on a nil receiver).
func (t *Trace) ID() string {
	if t == nil {
		return ""
	}
	return t.id
}

// Start returns when the trace was created.
func (t *Trace) Start() time.Time {
	if t == nil {
		return time.Time{}
	}
	return t.start
}

// Add accumulates d into the stage's span. No-op on nil.
func (t *Trace) Add(s Stage, d time.Duration) {
	if t != nil && int(s) < NumStages {
		t.durs[s] += d
	}
}

// Durations returns a copy of the per-stage spans.
func (t *Trace) Durations() StageDurations {
	if t == nil {
		return StageDurations{}
	}
	return t.durs
}

// ctxKey keys the trace in a context.Context.
type ctxKey struct{}

// WithTrace returns a context carrying the trace.
func WithTrace(ctx context.Context, t *Trace) context.Context {
	return context.WithValue(ctx, ctxKey{}, t)
}

// FromContext returns the context's trace, or nil. Safe on a nil
// context.
func FromContext(ctx context.Context) *Trace {
	if ctx == nil {
		return nil
	}
	t, _ := ctx.Value(ctxKey{}).(*Trace)
	return t
}

// idState seeds trace-ID generation: process identity folded into the
// start time, advanced per ID by a fixed odd increment and mixed
// through a splitmix64 finalizer. Not cryptographic — the IDs only
// need to be stable within a request and distinct across a fleet's
// recent history.
var idState atomic.Uint64

func init() {
	idState.Store(uint64(time.Now().UnixNano()) ^ uint64(os.Getpid())<<32)
}

// GenerateID returns a 16-hex-character request/trace ID.
func GenerateID() string {
	x := idState.Add(0x9e3779b97f4a7c15)
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	var raw [8]byte
	for i := 0; i < 8; i++ {
		raw[i] = byte(x >> (8 * i))
	}
	var out [16]byte
	hex.Encode(out[:], raw[:])
	return string(out[:])
}
