package telemetry

import (
	"context"
	"log/slog"
	"math"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestCounterGaugeNilSafety(t *testing.T) {
	var c *Counter
	c.Inc()
	c.Add(5)
	if c.Value() != 0 {
		t.Errorf("nil counter Value = %d", c.Value())
	}
	var g *Gauge
	g.Set(7)
	g.Add(-3)
	if g.Value() != 0 {
		t.Errorf("nil gauge Value = %d", g.Value())
	}
	var h *Histogram
	h.Observe(1)
	h.ObserveSince(time.Now())
	if h.Count() != 0 || h.Sum() != 0 || h.Quantile(0.5) != 0 {
		t.Error("nil histogram is not inert")
	}
}

func TestCounterGauge(t *testing.T) {
	c := &Counter{}
	c.Inc()
	c.Add(41)
	if c.Value() != 42 {
		t.Errorf("counter = %d, want 42", c.Value())
	}
	g := &Gauge{}
	g.Set(10)
	g.Add(-4)
	if g.Value() != 6 {
		t.Errorf("gauge = %d, want 6", g.Value())
	}
}

func TestHistogramBucketsAndSum(t *testing.T) {
	h := newHistogram([]float64{1, 2, 4})
	for _, v := range []float64{0.5, 1, 1.5, 3, 100} {
		h.Observe(v)
	}
	if h.Count() != 5 {
		t.Errorf("count = %d, want 5", h.Count())
	}
	if got := h.Sum(); math.Abs(got-106) > 1e-9 {
		t.Errorf("sum = %v, want 106", got)
	}
	// Bucket occupancy: le=1 holds {0.5, 1}, le=2 holds {1.5}, le=4
	// holds {3}, +Inf holds {100}.
	want := []uint64{2, 1, 1, 1}
	for i, w := range want {
		if got := h.counts[i].Load(); got != w {
			t.Errorf("bucket %d = %d, want %d", i, got, w)
		}
	}
}

func TestHistogramQuantile(t *testing.T) {
	h := newHistogram([]float64{1, 2, 4})
	for i := 0; i < 100; i++ {
		h.Observe(0.5) // all in the first bucket
	}
	// Interpolation inside [0, 1]: p50 ≈ 0.5.
	if q := h.Quantile(0.5); math.Abs(q-0.5) > 1e-9 {
		t.Errorf("p50 = %v, want 0.5", q)
	}
	// +Inf observations clamp to the largest finite bound.
	h2 := newHistogram([]float64{1, 2, 4})
	h2.Observe(1000)
	if q := h2.Quantile(0.99); q != 4 {
		t.Errorf("p99 with only +Inf = %v, want 4", q)
	}
	if q := h2.Quantile(0); q != 0 {
		t.Errorf("q=0 = %v, want 0", q)
	}
}

func TestHistogramConcurrentObserve(t *testing.T) {
	h := newHistogram(DurationBuckets())
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				h.Observe(0.001)
			}
		}()
	}
	wg.Wait()
	if h.Count() != 8000 {
		t.Errorf("count = %d, want 8000", h.Count())
	}
	if got := h.Sum(); math.Abs(got-8) > 1e-6 {
		t.Errorf("sum = %v, want 8", got)
	}
}

func TestRegistryExposition(t *testing.T) {
	reg := NewRegistry()
	c := reg.Counter("test_total", "A test counter")
	c.Add(3)
	g := reg.Gauge("test_depth", "A test gauge", "queue", "main")
	g.Set(5)
	reg.GaugeFunc("test_live", "A computed gauge", func() float64 { return 1.5 })
	h := reg.Histogram("test_seconds", "A test histogram", []float64{1, 2})
	h.Observe(0.5)
	h.Observe(3)

	var b strings.Builder
	if err := reg.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{
		"# HELP test_total A test counter",
		"# TYPE test_total counter",
		"test_total 3",
		`test_depth{queue="main"} 5`,
		"# TYPE test_live gauge",
		"test_live 1.5",
		"# TYPE test_seconds histogram",
		`test_seconds_bucket{le="1"} 1`,
		`test_seconds_bucket{le="2"} 1`,
		`test_seconds_bucket{le="+Inf"} 2`,
		"test_seconds_sum 3.5",
		"test_seconds_count 2",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q\n%s", want, out)
		}
	}
}

func TestRegistryLabeledChildrenAndSorting(t *testing.T) {
	reg := NewRegistry()
	a := reg.Counter("multi_total", "by outcome", "outcome", "accept")
	b := reg.Counter("multi_total", "by outcome", "outcome", "reject")
	a.Inc()
	b.Add(2)
	// Labels render sorted by key regardless of argument order.
	reg.Counter("sorted_total", "sorted", "zeta", "z", "alpha", "a").Inc()

	var sb strings.Builder
	if err := reg.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	if strings.Count(out, "# TYPE multi_total counter") != 1 {
		t.Error("family header duplicated per child")
	}
	for _, want := range []string{
		`multi_total{outcome="accept"} 1`,
		`multi_total{outcome="reject"} 2`,
		`sorted_total{alpha="a",zeta="z"} 1`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q\n%s", want, out)
		}
	}
}

func TestLabelEscaping(t *testing.T) {
	if got := escapeLabel("a\\b\"c\nd"); got != `a\\b\"c\nd` {
		t.Errorf("escapeLabel = %q", got)
	}
	reg := NewRegistry()
	reg.Counter("esc_total", "escapes", "path", "a\"b").Inc()
	var b strings.Builder
	if err := reg.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(b.String(), `esc_total{path="a\"b"} 1`) {
		t.Errorf("escaped label missing:\n%s", b.String())
	}
}

func TestRegistryKindClashPanics(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("clash", "first as counter")
	defer func() {
		if recover() == nil {
			t.Error("kind clash did not panic")
		}
	}()
	reg.Gauge("clash", "now as gauge")
}

func TestTraceContextRoundTrip(t *testing.T) {
	tr := NewTrace("abc")
	if tr.ID() != "abc" {
		t.Errorf("ID = %q", tr.ID())
	}
	ctx := WithTrace(context.Background(), tr)
	if got := FromContext(ctx); got != tr {
		t.Error("trace did not round-trip through context")
	}
	if FromContext(context.Background()) != nil {
		t.Error("empty context returned a trace")
	}
	if FromContext(nil) != nil { //nolint:staticcheck // nil-safety is the contract under test
		t.Error("nil context returned a trace")
	}
	tr.Add(StageBlock, 2*time.Millisecond)
	tr.Add(StageBlock, 3*time.Millisecond)
	if d := tr.Durations()[StageBlock]; d != 5*time.Millisecond {
		t.Errorf("StageBlock = %v, want 5ms", d)
	}

	// Nil traces are fully inert.
	var nilTr *Trace
	nilTr.Add(StageLLM, time.Second)
	if nilTr.ID() != "" || nilTr.Durations() != (StageDurations{}) || !nilTr.Start().IsZero() {
		t.Error("nil trace is not inert")
	}
}

func TestGenerateID(t *testing.T) {
	seen := map[string]bool{}
	for i := 0; i < 1000; i++ {
		id := GenerateID()
		if len(id) != 16 {
			t.Fatalf("ID length = %d, want 16: %q", len(id), id)
		}
		if seen[id] {
			t.Fatalf("duplicate ID %q", id)
		}
		seen[id] = true
	}
	if NewTrace("").ID() == "" {
		t.Error("NewTrace(\"\") did not generate an ID")
	}
}

func TestStageString(t *testing.T) {
	want := map[Stage]string{
		StageExtract:      "extract",
		StageBlock:        "block",
		StageJournal:      "journal",
		StageScore:        "score",
		StageDispatchWait: "dispatch_wait",
		StageLLM:          "llm",
		StageFold:         "fold",
		StagePersist:      "persist",
		Stage(200):        "unknown",
	}
	for s, name := range want {
		if s.String() != name {
			t.Errorf("Stage(%d).String() = %q, want %q", s, s.String(), name)
		}
	}
}

// captureHandler collects slog records for assertions.
type captureHandler struct {
	mu      sync.Mutex
	records []slog.Record
}

func (h *captureHandler) Enabled(context.Context, slog.Level) bool { return true }
func (h *captureHandler) Handle(_ context.Context, r slog.Record) error {
	h.mu.Lock()
	defer h.mu.Unlock()
	h.records = append(h.records, r)
	return nil
}
func (h *captureHandler) WithAttrs([]slog.Attr) slog.Handler { return h }
func (h *captureHandler) WithGroup(string) slog.Handler      { return h }

func (h *captureHandler) count() int {
	h.mu.Lock()
	defer h.mu.Unlock()
	return len(h.records)
}

func TestMaybeLogSlow(t *testing.T) {
	capt := &captureHandler{}
	tel := New(Options{
		Logger:       slog.New(capt),
		SlowResolve:  10 * time.Millisecond,
		SlowLogEvery: -1, // log every slow resolve
	})

	var durs StageDurations
	durs[StageBlock] = 8 * time.Millisecond
	durs[StageLLM] = 12 * time.Millisecond

	// Below threshold: no counter, no line.
	tel.MaybeLogSlow("t1", "q1", 5*time.Millisecond, durs)
	if tel.SlowResolves.Value() != 0 || capt.count() != 0 {
		t.Error("fast resolve was counted as slow")
	}

	// Above: counter and one line with trace ID and stage group.
	tel.MaybeLogSlow("t2", "q2", 20*time.Millisecond, durs)
	if tel.SlowResolves.Value() != 1 {
		t.Errorf("SlowResolves = %d, want 1", tel.SlowResolves.Value())
	}
	if capt.count() != 1 {
		t.Fatalf("log lines = %d, want 1", capt.count())
	}
	rec := capt.records[0]
	if rec.Message != "slow resolve" || rec.Level != slog.LevelWarn {
		t.Errorf("record = %q at %v", rec.Message, rec.Level)
	}
	attrs := map[string]slog.Value{}
	rec.Attrs(func(a slog.Attr) bool {
		attrs[a.Key] = a.Value
		return true
	})
	if got := attrs["trace_id"].String(); got != "t2" {
		t.Errorf("trace_id = %q", got)
	}
	if got := attrs["query_id"].String(); got != "q2" {
		t.Errorf("query_id = %q", got)
	}
	stages, ok := attrs["stages"]
	if !ok {
		t.Fatal("no stages group in slow line")
	}
	names := map[string]time.Duration{}
	for _, a := range stages.Group() {
		names[a.Key] = a.Value.Duration()
	}
	if names["block"] != 8*time.Millisecond || names["llm"] != 12*time.Millisecond {
		t.Errorf("stage group = %v", names)
	}
	if _, hasExtract := names["extract"]; hasExtract {
		t.Error("zero-duration stage rendered in slow line")
	}
}

func TestMaybeLogSlowSampling(t *testing.T) {
	capt := &captureHandler{}
	tel := New(Options{
		Logger:       slog.New(capt),
		SlowResolve:  time.Millisecond,
		SlowLogEvery: time.Hour, // at most one exemplar
	})
	for i := 0; i < 50; i++ {
		tel.MaybeLogSlow("t", "q", time.Second, StageDurations{})
	}
	if tel.SlowResolves.Value() != 50 {
		t.Errorf("SlowResolves = %d, want 50 (counter is unsampled)", tel.SlowResolves.Value())
	}
	if capt.count() != 1 {
		t.Errorf("log lines = %d, want 1 (sampled)", capt.count())
	}
}

func TestTelemetryNilSafety(t *testing.T) {
	var tel *Telemetry
	if tel.Registry() != nil || tel.SlowThreshold() != 0 {
		t.Error("nil telemetry leaks state")
	}
	var b strings.Builder
	if err := tel.WritePrometheus(&b); err != nil || b.Len() != 0 {
		t.Error("nil telemetry wrote exposition")
	}
	tel.MaybeLogSlow("t", "q", time.Hour, StageDurations{})
}

func TestTelemetryDisabledSlowLogging(t *testing.T) {
	capt := &captureHandler{}
	tel := New(Options{Logger: slog.New(capt)}) // SlowResolve zero: disabled
	tel.MaybeLogSlow("t", "q", time.Hour, StageDurations{})
	if tel.SlowResolves.Value() != 0 || capt.count() != 0 {
		t.Error("disabled slow logging still fired")
	}
}

func TestNewRegistersFamilies(t *testing.T) {
	tel := New(Options{})
	tel.ResolveTotal.Inc()
	tel.Stage[StageBlock].Observe(0.001)
	tel.OutcomeAccept.Add(2)
	tel.Dispatch.BatchPairs.Observe(4)
	tel.Pipeline.Calls.Inc()
	tel.Persist.FsyncSeconds.Observe(0.0001)

	var b strings.Builder
	if err := tel.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{
		"em_resolve_total 1",
		`em_resolve_stage_seconds_count{stage="block"} 1`,
		`em_cascade_outcomes_total{outcome="accept"} 2`,
		`em_dispatch_flushes_total{reason="size"} 0`,
		"em_llm_calls_total 1",
		"em_wal_fsync_seconds_count 1",
		"em_snapshots_total 0",
		"em_blocking_postings_scanned_total 0",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q", want)
		}
	}
}
