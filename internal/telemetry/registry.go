package telemetry

import (
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"
	"sync"
)

// metricKind tags a family's exposition TYPE.
type metricKind int

const (
	kindCounter metricKind = iota
	kindGauge
	kindHistogram
)

func (k metricKind) String() string {
	switch k {
	case kindCounter:
		return "counter"
	case kindGauge:
		return "gauge"
	default:
		return "histogram"
	}
}

// child is one labeled series of a family. Exactly one of the value
// fields is set, matching the family kind.
type child struct {
	labels string // pre-rendered `key="value",…` (no braces), "" when unlabeled
	c      *Counter
	g      *Gauge
	gf     func() float64
	h      *Histogram
}

// family is one metric name: HELP and TYPE plus its labeled children.
type family struct {
	name, help string
	kind       metricKind
	children   []*child
}

// Registry holds metric families in registration order and renders
// them as Prometheus text exposition. Registration takes a lock;
// the returned instruments are pre-bound, so the hot path never goes
// through the registry again. Registering the same name with the same
// kind adds another labeled child to the family; a kind clash panics
// (a programming error, caught at wiring time).
type Registry struct {
	mu     sync.Mutex
	order  []*family
	byName map[string]*family
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{byName: map[string]*family{}}
}

// Counter registers (or extends) a counter family and returns the
// child for the given label pairs (alternating key, value).
func (r *Registry) Counter(name, help string, labels ...string) *Counter {
	c := &Counter{}
	r.add(name, help, kindCounter, &child{labels: renderLabels(labels), c: c})
	return c
}

// Gauge registers (or extends) a gauge family and returns the child.
func (r *Registry) Gauge(name, help string, labels ...string) *Gauge {
	g := &Gauge{}
	r.add(name, help, kindGauge, &child{labels: renderLabels(labels), g: g})
	return g
}

// GaugeFunc registers a gauge whose value is computed by fn at
// exposition time — for values another subsystem already maintains
// (queue lengths, record counts).
func (r *Registry) GaugeFunc(name, help string, fn func() float64, labels ...string) {
	r.add(name, help, kindGauge, &child{labels: renderLabels(labels), gf: fn})
}

// Histogram registers (or extends) a histogram family over the given
// ascending bucket bounds and returns the child.
func (r *Registry) Histogram(name, help string, bounds []float64, labels ...string) *Histogram {
	h := newHistogram(bounds)
	r.add(name, help, kindHistogram, &child{labels: renderLabels(labels), h: h})
	return h
}

func (r *Registry) add(name, help string, kind metricKind, ch *child) {
	r.mu.Lock()
	defer r.mu.Unlock()
	f, ok := r.byName[name]
	if !ok {
		f = &family{name: name, help: help, kind: kind}
		r.byName[name] = f
		r.order = append(r.order, f)
	} else if f.kind != kind {
		panic(fmt.Sprintf("telemetry: metric %q registered as %s and %s", name, f.kind, kind))
	}
	f.children = append(f.children, ch)
}

// renderLabels turns alternating key/value pairs into the exposition
// label body (sorted by key, values escaped). Panics on an odd pair
// count — a wiring-time programming error.
func renderLabels(kv []string) string {
	if len(kv) == 0 {
		return ""
	}
	if len(kv)%2 != 0 {
		panic("telemetry: odd label key/value count")
	}
	type pair struct{ k, v string }
	pairs := make([]pair, 0, len(kv)/2)
	for i := 0; i < len(kv); i += 2 {
		pairs = append(pairs, pair{kv[i], kv[i+1]})
	}
	sort.Slice(pairs, func(i, j int) bool { return pairs[i].k < pairs[j].k })
	var b strings.Builder
	for i, p := range pairs {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(p.k)
		b.WriteString(`="`)
		b.WriteString(escapeLabel(p.v))
		b.WriteByte('"')
	}
	return b.String()
}

// escapeLabel escapes a label value per the text exposition format.
func escapeLabel(v string) string {
	if !strings.ContainsAny(v, "\\\"\n") {
		return v
	}
	var b strings.Builder
	for _, r := range v {
		switch r {
		case '\\':
			b.WriteString(`\\`)
		case '"':
			b.WriteString(`\"`)
		case '\n':
			b.WriteString(`\n`)
		default:
			b.WriteRune(r)
		}
	}
	return b.String()
}

// WritePrometheus renders every family in registration order as
// Prometheus text exposition format 0.0.4.
func (r *Registry) WritePrometheus(w io.Writer) error {
	r.mu.Lock()
	fams := make([]*family, len(r.order))
	copy(fams, r.order)
	r.mu.Unlock()

	var b strings.Builder
	for _, f := range fams {
		b.Reset()
		fmt.Fprintf(&b, "# HELP %s %s\n# TYPE %s %s\n", f.name, f.help, f.name, f.kind)
		for _, ch := range f.children {
			switch f.kind {
			case kindCounter:
				writeSample(&b, f.name, "", ch.labels, "", float64(ch.c.Value()))
			case kindGauge:
				v := 0.0
				if ch.gf != nil {
					v = ch.gf()
				} else {
					v = float64(ch.g.Value())
				}
				writeSample(&b, f.name, "", ch.labels, "", v)
			case kindHistogram:
				h := ch.h
				var cum uint64
				for i, bound := range h.bounds {
					cum += h.counts[i].Load()
					writeSample(&b, f.name, "_bucket", ch.labels,
						`le="`+formatFloat(bound)+`"`, float64(cum))
				}
				cum += h.counts[len(h.bounds)].Load()
				writeSample(&b, f.name, "_bucket", ch.labels, `le="+Inf"`, float64(cum))
				writeSample(&b, f.name, "_sum", ch.labels, "", h.Sum())
				writeSample(&b, f.name, "_count", ch.labels, "", float64(cum))
			}
		}
		if _, err := io.WriteString(w, b.String()); err != nil {
			return err
		}
	}
	return nil
}

// writeSample renders one sample line, merging the child labels with
// an extra label (the histogram le).
func writeSample(b *strings.Builder, name, suffix, labels, extra string, v float64) {
	b.WriteString(name)
	b.WriteString(suffix)
	if labels != "" || extra != "" {
		b.WriteByte('{')
		b.WriteString(labels)
		if labels != "" && extra != "" {
			b.WriteByte(',')
		}
		b.WriteString(extra)
		b.WriteByte('}')
	}
	b.WriteByte(' ')
	b.WriteString(formatFloat(v))
	b.WriteByte('\n')
}

func formatFloat(v float64) string {
	return strconv.FormatFloat(v, 'g', -1, 64)
}
