package telemetry

import (
	"context"
	"io"
	"log/slog"
	"sync/atomic"
	"time"
)

// DefaultSlowLogEvery is the default minimum interval between two
// slow-resolve exemplar log lines: a latency regression makes every
// request slow at once, and one exemplar per second is diagnosis
// enough without turning the log into the bottleneck.
const DefaultSlowLogEvery = time.Second

// Options configures a Telemetry handle.
type Options struct {
	// Logger receives the slow-resolve exemplar lines (nil falls back
	// to slog.Default()).
	Logger *slog.Logger
	// SlowResolve is the total-latency threshold above which a resolve
	// emits one structured exemplar line with its trace ID and
	// per-stage span durations. Zero disables slow logging (and the
	// slow-resolve counter).
	SlowResolve time.Duration
	// SlowLogEvery is the minimum interval between two exemplar lines
	// (default DefaultSlowLogEvery; negative logs every slow resolve).
	SlowLogEvery time.Duration
}

// BlockingMetrics instruments the blocking index hot path
// (internal/blocking). Passed by value; the zero value is a disabled
// (all-nil, nil-safe) set.
type BlockingMetrics struct {
	// Queries counts index queries; PostingsScanned the posting-list
	// entries they iterated; PostingsPruned the entries the block-max
	// path skipped without decoding; StopTokensSkipped the query tokens
	// skipped as stop tokens; HeapPushes the candidates offered to the
	// bounded top-K heap.
	Queries           *Counter
	PostingsScanned   *Counter
	PostingsPruned    *Counter
	StopTokensSkipped *Counter
	HeapPushes        *Counter
}

// DispatchMetrics instruments the micro-batching dispatcher
// (internal/dispatch). Passed by value; zero value disabled.
type DispatchMetrics struct {
	// QueueDepth is the pending-pair queue length after the latest
	// enqueue or flush.
	QueueDepth *Gauge
	// BatchPairs observes the pair count of every launched batch.
	BatchPairs *Histogram
	// SizeFlushes/DeadlineFlushes/DrainFlushes count why batches were
	// cut: a full queue, an expired flush interval, or Close.
	SizeFlushes     *Counter
	DeadlineFlushes *Counter
	DrainFlushes    *Counter
	// WaitSeconds observes each pair's time from enqueue to settled
	// future.
	WaitSeconds *Histogram
}

// PipelineMetrics instruments the LLM engine (internal/pipeline).
// Passed by value; zero value disabled.
type PipelineMetrics struct {
	// Calls counts requests that reached the client; CallSeconds
	// observes the wall-clock latency of each client attempt; Retries
	// counts extra attempts after transient errors; CacheHits counts
	// requests answered by the prompt cache (including coalesced
	// in-flight duplicates).
	Calls       *Counter
	CallSeconds *Histogram
	Retries     *Counter
	CacheHits   *Counter
	// Hedged counts second (hedged) requests launched for tail latency.
	Hedged *Counter
}

// ResilienceMetrics instruments the fault-tolerance layer
// (internal/resilience and the resolve store's deferred queue).
// Passed by value; zero value disabled.
type ResilienceMetrics struct {
	// BreakerState is the LLM circuit breaker's current state encoded
	// as 0=closed, 1=half-open, 2=open.
	BreakerState *Gauge
	// BreakerTrips counts closed→open (and half-open→open) transitions.
	BreakerTrips *Counter
	// Shed counts escalations rejected by the load-shedder.
	Shed *Counter
	// DeferredPairs counts pair decisions degraded to the local verdict
	// and parked on the deferred queue; DeferredDepth is the queue's
	// current length; Redecided counts deferred pairs the background
	// re-escalator has re-decided through the healthy path.
	DeferredPairs *Counter
	DeferredDepth *Gauge
	Redecided     *Counter
}

// PersistMetrics instruments the durability layer (internal/persist
// and the store's snapshot cadence). Passed by value; zero value
// disabled.
type PersistMetrics struct {
	// AppendSeconds/FsyncSeconds observe WAL append and fsync latency.
	AppendSeconds *Histogram
	FsyncSeconds  *Histogram
	// SnapshotSeconds observes full snapshot+compaction duration;
	// SnapshotBytes is the last snapshot's size; Snapshots counts
	// compactions.
	SnapshotSeconds *Histogram
	SnapshotBytes   *Gauge
	Snapshots       *Counter
}

// Telemetry is one serving process's instrument set: a Registry of
// every metric family plus the pre-bound instruments the resolve/
// dispatch/pipeline/persist/blocking stack records into. A nil
// *Telemetry is fully inert — every instrument reached through it is
// nil and every method a no-op — so stores built without telemetry
// keep the un-instrumented hot path.
type Telemetry struct {
	reg    *Registry
	logger *slog.Logger

	slowThreshold time.Duration
	slowEvery     time.Duration
	lastSlow      atomic.Int64 // unix nanos of the last exemplar line

	// Resolve-level instruments.
	ResolveTotal   *Counter
	ResolveErrors  *Counter
	ResolveSeconds *Histogram
	// Stage holds one latency histogram per resolve stage
	// (em_resolve_stage_seconds{stage=…}), indexed by Stage.
	Stage      [NumStages]*Histogram
	Candidates *Counter
	// Cascade outcome counters (em_cascade_outcomes_total{outcome=…}).
	OutcomeAccept  *Counter
	OutcomeReject  *Counter
	OutcomeLLM     *Counter
	OutcomeBudget  *Counter
	OutcomeJournal *Counter
	SlowResolves   *Counter
	// Per-strategy LLM call counters
	// (em_llm_calls_total{strategy=…}), labeled children of the same
	// family as Pipeline.Calls: the unlabeled series counts every
	// client request, the labeled ones split the resolve path's calls
	// by the prompt strategy that issued them.
	StrategyMatch   *Counter
	StrategyCompare *Counter
	StrategySelect  *Counter
	StrategyReason  *Counter

	// Per-subsystem instrument sets, handed by value into the
	// instrumented packages.
	Blocking   BlockingMetrics
	Dispatch   DispatchMetrics
	Pipeline   PipelineMetrics
	Persist    PersistMetrics
	Resilience ResilienceMetrics
}

// New builds a Telemetry handle with every metric family registered.
func New(opts Options) *Telemetry {
	logger := opts.Logger
	if logger == nil {
		logger = slog.Default()
	}
	slowEvery := opts.SlowLogEvery
	if slowEvery == 0 {
		slowEvery = DefaultSlowLogEvery
	}
	reg := NewRegistry()
	t := &Telemetry{
		reg:           reg,
		logger:        logger,
		slowThreshold: opts.SlowResolve,
		slowEvery:     slowEvery,
	}

	t.ResolveTotal = reg.Counter("em_resolve_total", "Resolve calls served (including failed ones)")
	t.ResolveErrors = reg.Counter("em_resolve_errors_total", "Resolve calls that returned an error")
	t.ResolveSeconds = reg.Histogram("em_resolve_seconds", "End-to-end resolve latency", DurationBuckets())
	for s := 0; s < NumStages; s++ {
		t.Stage[s] = reg.Histogram("em_resolve_stage_seconds",
			"Per-stage resolve latency", DurationBuckets(), "stage", Stage(s).String())
	}
	t.Candidates = reg.Counter("em_resolve_candidates_total", "Blocking candidate pairs produced")
	outcome := func(name string) *Counter {
		return reg.Counter("em_cascade_outcomes_total",
			"Candidate pairs by deciding cascade stage", "outcome", name)
	}
	t.OutcomeAccept = outcome("accept")
	t.OutcomeReject = outcome("reject")
	t.OutcomeLLM = outcome("llm")
	t.OutcomeBudget = outcome("budget")
	t.OutcomeJournal = outcome("journal")
	t.SlowResolves = reg.Counter("em_slow_resolves_total",
		"Resolves exceeding the slow-resolve threshold")
	strategy := func(name string) *Counter {
		return reg.Counter("em_llm_calls_total",
			"Requests that reached the LLM client", "strategy", name)
	}
	t.StrategyMatch = strategy("match")
	t.StrategyCompare = strategy("compare")
	t.StrategySelect = strategy("select")
	t.StrategyReason = strategy("reason")

	t.Blocking = BlockingMetrics{
		Queries:           reg.Counter("em_blocking_queries_total", "Blocking index queries"),
		PostingsScanned:   reg.Counter("em_blocking_postings_scanned_total", "Posting-list entries iterated by index queries"),
		PostingsPruned:    reg.Counter("em_blocking_postings_pruned_total", "Posting-list entries skipped undecoded by block-max pruning"),
		StopTokensSkipped: reg.Counter("em_blocking_stop_tokens_total", "Query tokens skipped as stop tokens"),
		HeapPushes:        reg.Counter("em_blocking_heap_pushes_total", "Candidates offered to the bounded top-K heap"),
	}
	t.Dispatch = DispatchMetrics{
		QueueDepth:      reg.Gauge("em_dispatch_queue_depth", "Pairs pending in the micro-batching dispatcher"),
		BatchPairs:      reg.Histogram("em_dispatch_batch_pairs", "Pairs per launched dispatcher batch", SizeBuckets()),
		SizeFlushes:     reg.Counter("em_dispatch_flushes_total", "Dispatcher batch cuts by reason", "reason", "size"),
		DeadlineFlushes: reg.Counter("em_dispatch_flushes_total", "Dispatcher batch cuts by reason", "reason", "deadline"),
		DrainFlushes:    reg.Counter("em_dispatch_flushes_total", "Dispatcher batch cuts by reason", "reason", "drain"),
		WaitSeconds:     reg.Histogram("em_dispatch_wait_seconds", "Pair time from enqueue to settled dispatcher future", DurationBuckets()),
	}
	t.Pipeline = PipelineMetrics{
		Calls:       reg.Counter("em_llm_calls_total", "Requests that reached the LLM client"),
		CallSeconds: reg.Histogram("em_llm_call_seconds", "Wall-clock latency of LLM client attempts", DurationBuckets()),
		Retries:     reg.Counter("em_llm_retries_total", "LLM client retries after transient errors"),
		CacheHits:   reg.Counter("em_llm_cache_hits_total", "Requests answered by the prompt cache"),
		Hedged:      reg.Counter("em_llm_hedged_total", "Hedged second LLM requests launched for tail latency"),
	}
	t.Resilience = ResilienceMetrics{
		BreakerState:  reg.Gauge("em_llm_breaker_state", "LLM circuit breaker state (0=closed, 1=half-open, 2=open)"),
		BreakerTrips:  reg.Counter("em_breaker_trips_total", "Circuit breaker transitions to open"),
		Shed:          reg.Counter("em_shed_total", "Escalations rejected by the load-shedder"),
		DeferredPairs: reg.Counter("em_deferred_pairs_total", "Pair decisions degraded to the deferred local verdict"),
		DeferredDepth: reg.Gauge("em_deferred_queue_depth", "Deferred pairs awaiting re-escalation"),
		Redecided:     reg.Counter("em_redecided_pairs_total", "Deferred pairs re-decided through the healthy path"),
	}
	t.Persist = PersistMetrics{
		AppendSeconds:   reg.Histogram("em_wal_append_seconds", "WAL append latency", DurationBuckets()),
		FsyncSeconds:    reg.Histogram("em_wal_fsync_seconds", "WAL fsync latency", DurationBuckets()),
		SnapshotSeconds: reg.Histogram("em_snapshot_seconds", "Snapshot+compaction duration", DurationBuckets()),
		SnapshotBytes:   reg.Gauge("em_snapshot_bytes", "Size of the last written snapshot"),
		Snapshots:       reg.Counter("em_snapshots_total", "Snapshot compactions written"),
	}
	return t
}

// Registry returns the handle's metric registry — emserve registers
// its HTTP-level families on it so one exposition covers the whole
// process. Nil on a nil receiver.
func (t *Telemetry) Registry() *Registry {
	if t == nil {
		return nil
	}
	return t.reg
}

// WritePrometheus renders every registered family as Prometheus text
// exposition. No-op on a nil receiver.
func (t *Telemetry) WritePrometheus(w io.Writer) error {
	if t == nil {
		return nil
	}
	return t.reg.WritePrometheus(w)
}

// SlowThreshold returns the configured slow-resolve threshold (zero
// when disabled or on a nil receiver).
func (t *Telemetry) SlowThreshold() time.Duration {
	if t == nil {
		return 0
	}
	return t.slowThreshold
}

// MaybeLogSlow counts and possibly logs one finished resolve against
// the slow threshold. The stage array is passed by value so the
// caller's observer never escapes to the heap on the fast path; the
// fast path itself (below threshold or disabled) is one comparison.
// At most one exemplar line per SlowLogEvery is emitted — a latency
// regression makes every request slow at once, and sampling keeps the
// logger out of the hot path — but every slow resolve increments
// em_slow_resolves_total.
func (t *Telemetry) MaybeLogSlow(traceID, queryID string, total time.Duration, durs StageDurations) {
	if t == nil || t.slowThreshold <= 0 || total < t.slowThreshold {
		return
	}
	t.SlowResolves.Inc()
	if t.slowEvery > 0 {
		now := time.Now().UnixNano()
		last := t.lastSlow.Load()
		if now-last < int64(t.slowEvery) || !t.lastSlow.CompareAndSwap(last, now) {
			return
		}
	}
	stages := make([]any, 0, NumStages)
	for s := 0; s < NumStages; s++ {
		if durs[s] > 0 {
			stages = append(stages, slog.Duration(Stage(s).String(), durs[s]))
		}
	}
	t.logger.LogAttrs(context.Background(), slog.LevelWarn, "slow resolve",
		slog.String("trace_id", traceID),
		slog.String("query_id", queryID),
		slog.Duration("total", total),
		slog.Duration("threshold", t.slowThreshold),
		slog.Group("stages", stages...),
	)
}
