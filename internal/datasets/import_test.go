package datasets

import (
	"bytes"
	"strings"
	"testing"

	"llm4em/internal/entity"
)

func TestReadCSVPairsRoundTrip(t *testing.T) {
	d := MustLoad("wa")
	var buf bytes.Buffer
	if err := d.WriteCSV(&buf, d.Test[:25]); err != nil {
		t.Fatal(err)
	}
	schema, pairs, err := ReadCSVPairs(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(pairs) != 25 {
		t.Fatalf("read %d pairs, want 25", len(pairs))
	}
	if len(schema.Attributes) != len(d.Schema.Attributes) {
		t.Fatalf("schema = %v, want %v", schema.Attributes, d.Schema.Attributes)
	}
	if schema.Domain != entity.Product {
		t.Errorf("domain = %v, want product", schema.Domain)
	}
	for i, p := range pairs {
		orig := d.Test[i]
		if p.Match != orig.Match {
			t.Errorf("pair %d label mismatch", i)
		}
		if p.A.Serialize() != orig.A.Serialize() || p.B.Serialize() != orig.B.Serialize() {
			t.Errorf("pair %d serialization mismatch:\n%q\n%q", i, p.A.Serialize(), orig.A.Serialize())
		}
	}
}

func TestReadCSVPairsPublicationDomain(t *testing.T) {
	d := MustLoad("ds")
	var buf bytes.Buffer
	if err := d.WriteCSV(&buf, d.Test[:5]); err != nil {
		t.Fatal(err)
	}
	schema, _, err := ReadCSVPairs(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if schema.Domain != entity.Publication {
		t.Errorf("domain = %v, want publication", schema.Domain)
	}
}

func TestReadCSVPairsRejectsBadHeaders(t *testing.T) {
	bad := []string{
		"id,label,left_title,right_title\nx,1,a,b",       // wrong first column
		"pair_id,label\nx,1",                             // no attributes
		"pair_id,label,left_title,right_name\nx,1,a,b",   // mismatched right
		"pair_id,label,left_a,left_b,right_a\nx,1,a,b,c", // unbalanced
	}
	for _, csv := range bad {
		if _, _, err := ReadCSVPairs(strings.NewReader(csv)); err == nil {
			t.Errorf("header should be rejected: %q", strings.SplitN(csv, "\n", 2)[0])
		}
	}
}

func TestReadCSVPairsLabelForms(t *testing.T) {
	csv := "pair_id,label,left_title,right_title\np1,1,a,b\np2,0,c,d\np3,true,e,f\n"
	_, pairs, err := ReadCSVPairs(strings.NewReader(csv))
	if err != nil {
		t.Fatal(err)
	}
	if !pairs[0].Match || pairs[1].Match || !pairs[2].Match {
		t.Errorf("labels parsed wrong: %v %v %v", pairs[0].Match, pairs[1].Match, pairs[2].Match)
	}
}
