package datasets

import (
	"encoding/csv"
	"fmt"
	"io"
	"strings"

	"llm4em/internal/entity"
)

// ReadCSVPairs parses labelled pairs from CSV in the layout WriteCSV
// produces: a header of pair_id, label, left_<attr>..., right_<attr>...
// followed by one row per pair. It returns the attribute schema
// implied by the header and the pairs. Domain is guessed from the
// attribute names (authors/venue/year mean publications).
func ReadCSVPairs(r io.Reader) (entity.Schema, []entity.Pair, error) {
	cr := csv.NewReader(r)
	header, err := cr.Read()
	if err != nil {
		return entity.Schema{}, nil, fmt.Errorf("datasets: read csv header: %w", err)
	}
	if len(header) < 4 || header[0] != "pair_id" || header[1] != "label" {
		return entity.Schema{}, nil, fmt.Errorf("datasets: csv header must start with pair_id,label, got %v", header)
	}
	var attrs []string
	for _, col := range header[2:] {
		name, ok := strings.CutPrefix(col, "left_")
		if !ok {
			break
		}
		attrs = append(attrs, name)
	}
	if len(attrs) == 0 || len(header) != 2+2*len(attrs) {
		return entity.Schema{}, nil, fmt.Errorf("datasets: csv header has unbalanced left_/right_ columns: %v", header)
	}
	for i, name := range attrs {
		if header[2+len(attrs)+i] != "right_"+name {
			return entity.Schema{}, nil, fmt.Errorf("datasets: right_ column %d is %q, want %q", i, header[2+len(attrs)+i], "right_"+name)
		}
	}

	schema := entity.Schema{Domain: guessDomain(attrs), Attributes: attrs}
	var pairs []entity.Pair
	for line := 2; ; line++ {
		row, err := cr.Read()
		if err == io.EOF {
			break
		}
		if err != nil {
			return entity.Schema{}, nil, fmt.Errorf("datasets: read csv line %d: %w", line, err)
		}
		p := entity.Pair{
			ID:    row[0],
			A:     schema.NewRecord(row[0]+"-a", row[2:2+len(attrs)]...),
			B:     schema.NewRecord(row[0]+"-b", row[2+len(attrs):]...),
			Match: row[1] == "1" || strings.EqualFold(row[1], "true"),
		}
		pairs = append(pairs, p)
	}
	return schema, pairs, nil
}

// guessDomain infers the topical domain from attribute names.
func guessDomain(attrs []string) entity.Domain {
	for _, a := range attrs {
		switch a {
		case "authors", "venue", "year":
			return entity.Publication
		}
	}
	return entity.Product
}
