package datasets

import (
	"fmt"

	"llm4em/internal/detrand"
	"llm4em/internal/entity"
)

// This file generates query-grouped labelled pairs — the fixture
// shape of the strategy ablation (internal/experiments). The regular
// test splits pair every query record exactly once, so they can never
// exercise the grouped compare/select prompts; these fixtures render
// one query offer against several candidate offers from the same
// product family, which is exactly the multi-candidate uncertain band
// a live blocking index hands the cascade.

// productConfigFor returns the generator configuration of a
// product-family dataset key.
func productConfigFor(key string) (productConfig, bool) {
	switch key {
	case "wdc":
		return wdcProductConfig(), true
	case "ab":
		return abProductConfig(), true
	case "wa":
		return waProductConfig(), true
	}
	return productConfig{}, false
}

// GroupedPairs generates labelled pairs grouped by query record for a
// product dataset ("wdc", "ab" or "wa"): `groups` groups of
// `candidates` pairs each, every pair in a group sharing the same
// query record as pair.A. Each group holds one true match (the query
// product rendered by a second source) among corner-case non-matches
// — siblings from the query's product family, occasionally with the
// distinguishing model number hidden — plus products from other
// families when the family runs out of siblings. Generation is a pure
// function of (key, seed, groups, candidates); the candidate order
// within each group is shuffled deterministically.
func GroupedPairs(key, seed string, groups, candidates int) ([]entity.Pair, error) {
	cfg, ok := productConfigFor(key)
	if !ok {
		return nil, fmt.Errorf("datasets: no grouped fixtures for %q (product keys: ab, wa, wdc)", key)
	}
	if groups <= 0 || candidates <= 0 {
		return nil, fmt.Errorf("datasets: grouped fixtures need positive groups and candidates, got %d×%d", groups, candidates)
	}
	universe := buildUniverse(cfg)
	families := map[int][]int{}
	for i, p := range universe {
		families[p.family] = append(families[p.family], i)
	}

	rng := detrand.New("groups", cfg.key, seed)
	pairs := make([]entity.Pair, 0, groups*candidates)
	for g := 0; g < groups; g++ {
		pi := rng.Intn(len(universe))
		p := universe[pi]
		query := renderOffer(cfg, p, cfg.styleA, rng,
			fmt.Sprintf("%s-grp%d-q", cfg.key, g))

		// Candidate products: the true match first, then family
		// siblings (the corner-case non-matches grouped prompts must
		// tell apart), then random other-family products as filler.
		type cand struct {
			prod product
			gold bool
		}
		cands := []cand{{prod: p, gold: true}}
		for _, si := range families[p.family] {
			if len(cands) == candidates {
				break
			}
			if si != pi {
				cands = append(cands, cand{prod: universe[si]})
			}
		}
		for len(cands) < candidates {
			qi := rng.Intn(len(universe))
			if universe[qi].family == p.family {
				continue
			}
			cands = append(cands, cand{prod: universe[qi]})
		}
		detrand.Shuffle(rng, cands)

		for c, cd := range cands {
			st := cfg.styleB
			if cd.gold && rng.Bool(cfg.hardMatchRate) {
				st = harden(st)
			}
			if !cd.gold && cd.prod.family == p.family && rng.Bool(cfg.ambiguousRate) {
				// The hardest corner case: hide the distinguishing
				// model number on the candidate side.
				st.dropModelProb = 1
			}
			b := renderOffer(cfg, cd.prod, st, rng,
				fmt.Sprintf("%s-grp%d-c%d", cfg.key, g, c))
			pairs = append(pairs, entity.Pair{
				ID:    fmt.Sprintf("%s-grp%d-c%d", cfg.key, g, c),
				A:     query,
				B:     b,
				Match: cd.gold,
			})
		}
	}
	return pairs, nil
}
