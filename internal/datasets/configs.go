package datasets

import (
	"llm4em/internal/entity"
	"llm4em/internal/vocab"
)

// The six benchmark configurations. Difficulty knobs (corner-case
// rates, rendering noise) are calibrated so that the achievable
// matching quality of each dataset follows the paper's ordering:
// Amazon-Google is the hardest benchmark (best zero-shot F1 ~76),
// DBLP-ACM the easiest (~98), with WDC Products, Walmart-Amazon and
// DBLP-Scholar around 89-90 and Abt-Buy around 95.

func generateWDCProducts() *Dataset {
	return generateProductDataset(wdcProductConfig())
}

func wdcProductConfig() productConfig {
	return productConfig{
		key:        "wdc",
		name:       "WDC Products",
		abbrev:     "WDC",
		categories: []vocab.Category{vocab.Electronics, vocab.Tools, vocab.Clothing, vocab.Kitchen},
		counts:     paperCounts["wdc"],
		schema: entity.Schema{
			Domain:     entity.Product,
			Attributes: []string{"brand", "title", "currency", "price"},
		},
		scenario:      DirtyDirty,
		families:      520,
		cornerNegRate: 0.80, // "most difficult version ... 80% corner-cases"
		hardMatchRate: 0.45,
		ambiguousRate: 0.03,
		styleA: sourceStyle{
			noiseWordProb: 0.35, sellerProb: 0.15, abbrevProb: 0.10,
			dropBrandProb: 0.12, modelCompactPro: 0.25, dropModelProb: 0.05,
			featureProb: 0.25, priceJitter: 0.03, missingPriceP: 0.10,
			typoProb: 0.08, dropTypeProb: 0.10,
		},
		styleB: sourceStyle{
			noiseWordProb: 0.45, sellerProb: 0.25, abbrevProb: 0.18,
			dropBrandProb: 0.18, modelCompactPro: 0.40, dropModelProb: 0.06,
			featureProb: 0.20, priceJitter: 0.05, missingPriceP: 0.15,
			typoProb: 0.12, dropTypeProb: 0.15,
		},
	}
}

func generateAbtBuy() *Dataset {
	return generateProductDataset(abProductConfig())
}

func abProductConfig() productConfig {
	return productConfig{
		key:        "ab",
		name:       "Abt-Buy",
		abbrev:     "A-B",
		categories: []vocab.Category{vocab.Electronics, vocab.Kitchen},
		counts:     paperCounts["ab"],
		schema: entity.Schema{
			Domain:     entity.Product,
			Attributes: []string{"title", "price"},
		},
		scenario:      CleanClean,
		families:      700,
		brandMod:      2,
		brandRem:      0,
		cornerNegRate: 0.35,
		hardMatchRate: 0.15,
		ambiguousRate: 0.02,
		styleA: sourceStyle{
			noiseWordProb: 0.15, sellerProb: 0.05, abbrevProb: 0.04,
			dropBrandProb: 0.05, modelCompactPro: 0.20, dropModelProb: 0.04,
			featureProb: 0.70, priceJitter: 0.02, missingPriceP: 0.12,
			typoProb: 0.04, dropTypeProb: 0.04,
		},
		styleB: sourceStyle{
			noiseWordProb: 0.25, sellerProb: 0.10, abbrevProb: 0.09,
			dropBrandProb: 0.10, modelCompactPro: 0.30, dropModelProb: 0.06,
			featureProb: 0.55, priceJitter: 0.04, missingPriceP: 0.15,
			typoProb: 0.06, dropTypeProb: 0.06,
		},
	}
}

func generateWalmartAmazon() *Dataset {
	return generateProductDataset(waProductConfig())
}

func waProductConfig() productConfig {
	return productConfig{
		key:        "wa",
		name:       "Walmart-Amazon",
		abbrev:     "W-A",
		categories: []vocab.Category{vocab.Electronics, vocab.Tools, vocab.Kitchen},
		counts:     paperCounts["wa"],
		schema: entity.Schema{
			Domain:     entity.Product,
			Attributes: []string{"brand", "title", "modelno", "price"},
		},
		scenario:      DirtyDirty,
		families:      650,
		brandMod:      2,
		brandRem:      1,
		cornerNegRate: 0.48,
		hardMatchRate: 0.26,
		ambiguousRate: 0.05,
		styleA: sourceStyle{
			noiseWordProb: 0.20, sellerProb: 0.08, abbrevProb: 0.08,
			dropBrandProb: 0.08, modelCompactPro: 0.20, dropModelProb: 0.06,
			featureProb: 0.30, priceJitter: 0.03, missingPriceP: 0.12,
			typoProb: 0.06, dropTypeProb: 0.08,
		},
		styleB: sourceStyle{
			noiseWordProb: 0.35, sellerProb: 0.15, abbrevProb: 0.15,
			dropBrandProb: 0.15, modelCompactPro: 0.35, dropModelProb: 0.10,
			featureProb: 0.25, priceJitter: 0.06, missingPriceP: 0.18,
			typoProb: 0.10, dropTypeProb: 0.12,
		},
	}
}

func generateAmazonGoogle() *Dataset {
	return generateSoftwareDataset(softwareConfig{
		key:    "ag",
		name:   "Amazon-Google",
		abbrev: "A-G",
		counts: paperCounts["ag"],
		schema: entity.Schema{
			Domain:     entity.Product,
			Attributes: []string{"brand", "title", "price"},
		},
		families:      620,
		cornerNegRate: 0.68,
		hardMatchRate: 0.42,
		styleA: softwareStyle{
			dropVendorProb: 0.10, dropVersionProb: 0.07, dropEditionProb: 0.15,
			versionReformat: 0.12, noiseWordProb: 0.20, priceJitter: 0.05,
			missingPriceP: 0.15, wordShuffleProb: 0.15,
		},
		styleB: softwareStyle{
			dropVendorProb: 0.20, dropVersionProb: 0.14, dropEditionProb: 0.28,
			versionReformat: 0.22, noiseWordProb: 0.30, priceJitter: 0.10,
			missingPriceP: 0.25, wordShuffleProb: 0.30,
		},
	})
}

func generateDBLPScholar() *Dataset {
	return generateBibDataset(bibConfig{
		key:    "ds",
		name:   "DBLP-Scholar",
		abbrev: "D-S",
		counts: paperCounts["ds"],
		schema: entity.Schema{
			Domain:     entity.Publication,
			Attributes: []string{"authors", "title", "venue", "year"},
		},
		families:      1400,
		cornerNegRate: 0.55,
		hardMatchRate: 0.35,
		// DBLP side: clean.
		styleA: bibStyle{
			initialsProb: 0.05, dropAuthorProb: 0.02, venueVariantP: 0.15,
			missingVenueP: 0.02, missingYearP: 0.02, wrongYearProb: 0.01,
			titleAbbrevProb: 0.01, titleTruncProb: 0.02, typoProb: 0.02,
			lowercaseProb: 0.10,
		},
		// Google Scholar side: noisy.
		styleB: bibStyle{
			initialsProb: 0.55, dropAuthorProb: 0.20, venueVariantP: 0.70,
			missingVenueP: 0.20, missingYearP: 0.18, wrongYearProb: 0.08,
			titleAbbrevProb: 0.08, titleTruncProb: 0.15, typoProb: 0.08,
			lowercaseProb: 0.60,
		},
	})
}

func generateDBLPACM() *Dataset {
	return generateBibDataset(bibConfig{
		key:    "da",
		name:   "DBLP-ACM",
		abbrev: "D-A",
		counts: paperCounts["da"],
		schema: entity.Schema{
			Domain:     entity.Publication,
			Attributes: []string{"authors", "title", "venue", "year"},
		},
		families:      1100,
		cornerNegRate: 0.30,
		hardMatchRate: 0.10,
		styleA: bibStyle{
			initialsProb: 0.03, dropAuthorProb: 0.01, venueVariantP: 0.10,
			missingVenueP: 0.01, missingYearP: 0.01, wrongYearProb: 0.005,
			titleAbbrevProb: 0.005, titleTruncProb: 0.01, typoProb: 0.01,
			lowercaseProb: 0.05,
		},
		styleB: bibStyle{
			initialsProb: 0.20, dropAuthorProb: 0.05, venueVariantP: 0.35,
			missingVenueP: 0.03, missingYearP: 0.03, wrongYearProb: 0.02,
			titleAbbrevProb: 0.02, titleTruncProb: 0.04, typoProb: 0.03,
			lowercaseProb: 0.25,
		},
	})
}
