package datasets

import (
	"fmt"
	"strings"

	"llm4em/internal/detrand"
	"llm4em/internal/entity"
	"llm4em/internal/vocab"
)

// author is a generated publication author.
type author struct {
	first, last string
}

func (a author) full() string    { return a.first + " " + a.last }
func (a author) initial() string { return a.first[:1] + ". " + a.last }

// publication is one entry of the bibliographic universe. Families
// group sibling publications (extended versions, same-topic papers by
// the same group) that produce bibliographic corner cases.
type publication struct {
	authors []author
	title   string
	venue   vocab.Venue
	year    int
	family  int
}

// bibStyle controls how a bibliographic source renders records.
// DBLP is clean; Google Scholar records are noisy (initials, missing
// fields, venue variants); ACM is clean with minor variants.
type bibStyle struct {
	initialsProb    float64 // render author first names as initials
	dropAuthorProb  float64 // drop trailing authors ("et al." effect)
	venueVariantP   float64 // use an alternative venue surface form
	missingVenueP   float64
	missingYearP    float64
	wrongYearProb   float64 // off-by-one year (common Scholar error)
	titleAbbrevProb float64
	titleTruncProb  float64 // drop trailing title words
	typoProb        float64
	lowercaseProb   float64
}

// bibConfig describes one bibliographic benchmark.
type bibConfig struct {
	key, name, abbrev string
	counts            SplitCounts
	schema            entity.Schema

	families       int
	cornerNegRate  float64
	hardMatchRate  float64
	styleA, styleB bibStyle
}

// buildBibUniverse creates cfg.families publication families. Each
// family contains a base paper plus 1-2 siblings: an extended journal
// version (same authors and topic, later year, journal venue) and/or
// a same-topic paper with an overlapping author list.
func buildBibUniverse(cfg bibConfig) []publication {
	rng := detrand.New("universe", cfg.key)
	confVenues, journalVenues := splitVenues()
	var all []publication
	for f := 0; f < cfg.families; f++ {
		nAuthors := 1 + rng.Intn(4)
		authors := make([]author, nAuthors)
		for i := range authors {
			authors[i] = author{
				first: vocab.FirstNames[rng.Intn(len(vocab.FirstNames))],
				last:  vocab.LastNames[rng.Intn(len(vocab.LastNames))],
			}
		}
		topic := vocab.TopicPhrases[rng.Intn(len(vocab.TopicPhrases))]
		title := strings.Join(topic, " ")
		if rng.Bool(0.4) {
			title = vocab.TitleModifiers[rng.Intn(len(vocab.TitleModifiers))] + " " + title
		}
		venue := confVenues[rng.Intn(len(confVenues))]
		year := 1995 + rng.Intn(15)

		base := publication{authors: authors, title: title, venue: venue, year: year, family: f}
		all = append(all, base)

		if rng.Bool(0.55) {
			// Extended journal version: same authors, near-identical
			// title, later year, journal venue — a non-match despite
			// extreme surface similarity.
			ext := base
			ext.venue = journalVenues[rng.Intn(len(journalVenues))]
			ext.year = year + 1 + rng.Intn(2)
			if rng.Bool(0.5) {
				ext.title = base.title + ": an extended study"
			}
			all = append(all, ext)
		}
		if rng.Bool(0.45) {
			// Same-group follow-up on the same topic. The follow-up is
			// forced to differ in contribution word, year and venue —
			// two distinct same-topic papers at the same venue in the
			// same year would be indistinguishable even to an expert.
			sib := base
			mod := vocab.TitleModifiers[rng.Intn(len(vocab.TitleModifiers))]
			for strings.HasPrefix(base.title, mod) {
				mod = vocab.TitleModifiers[rng.Intn(len(vocab.TitleModifiers))]
			}
			sib.title = mod + " " + strings.Join(topic, " ")
			sib.year = year + 1 + rng.Intn(2)
			if len(sib.authors) > 1 && rng.Bool(0.5) {
				sib.authors = sib.authors[:len(sib.authors)-1]
			}
			sv := confVenues[rng.Intn(len(confVenues))]
			for sv.Full == base.venue.Full {
				sv = confVenues[rng.Intn(len(confVenues))]
			}
			sib.venue = sv
			all = append(all, sib)
		}
	}
	return all
}

func splitVenues() (conf, journal []vocab.Venue) {
	for _, v := range vocab.Venues {
		if v.Journal {
			journal = append(journal, v)
		} else {
			conf = append(conf, v)
		}
	}
	return conf, journal
}

// renderBib produces one record for a publication under a style.
func renderBib(cfg bibConfig, p publication, st bibStyle, rng *detrand.RNG, id string) entity.Record {
	// Authors.
	var names []string
	for i, a := range p.authors {
		if i > 0 && rng.Bool(st.dropAuthorProb) {
			break
		}
		if rng.Bool(st.initialsProb) {
			names = append(names, a.initial())
		} else {
			names = append(names, a.full())
		}
	}
	authors := strings.Join(names, ", ")

	// Title.
	title := p.title
	if rng.Bool(st.titleTruncProb) {
		words := strings.Fields(title)
		if len(words) > 3 {
			title = strings.Join(words[:len(words)-1-rng.Intn(2)], " ")
		}
	}
	title = maybeAbbreviate(title, st.titleAbbrevProb, rng)
	title = maybeTypo(title, st.typoProb, rng)
	if rng.Bool(st.lowercaseProb) {
		title = strings.ToLower(title)
	}

	// Venue.
	venue := p.venue.Full
	if rng.Bool(st.venueVariantP) {
		venue = p.venue.Variants[rng.Intn(len(p.venue.Variants))]
	}
	if rng.Bool(st.missingVenueP) {
		venue = ""
	}

	// Year.
	year := fmt.Sprintf("%d", p.year)
	if rng.Bool(st.wrongYearProb) {
		year = fmt.Sprintf("%d", p.year+1-2*rng.Intn(2))
	}
	if rng.Bool(st.missingYearP) {
		year = ""
	}

	values := map[string]string{"authors": authors, "title": title, "venue": venue, "year": year}
	r := entity.Record{ID: id, Attrs: make([]entity.Attr, len(cfg.schema.Attributes))}
	for i, a := range cfg.schema.Attributes {
		r.Attrs[i] = entity.Attr{Name: a, Value: values[a]}
	}
	return r
}

// hardenBib intensifies a style for corner-case matches.
func hardenBib(st bibStyle) bibStyle {
	st.initialsProb = minf(st.initialsProb+0.5, 0.95)
	st.dropAuthorProb = minf(st.dropAuthorProb+0.3, 0.6)
	st.venueVariantP = minf(st.venueVariantP+0.4, 0.95)
	st.titleTruncProb = minf(st.titleTruncProb+0.3, 0.6)
	st.titleAbbrevProb = minf(st.titleAbbrevProb+0.2, 0.5)
	st.missingYearP = minf(st.missingYearP+0.25, 0.5)
	return st
}

// generateBibPairs materializes one split of a bibliographic
// benchmark.
func generateBibPairs(cfg bibConfig, universe []publication, split string, pos, neg int) []entity.Pair {
	rng := detrand.New("pairs", cfg.key, split)
	pairs := make([]entity.Pair, 0, pos+neg)
	families := map[int][]int{}
	for i, p := range universe {
		families[p.family] = append(families[p.family], i)
	}

	for i := 0; i < pos; i++ {
		p := universe[rng.Intn(len(universe))]
		stB := cfg.styleB
		if rng.Bool(cfg.hardMatchRate) {
			stB = hardenBib(stB)
		}
		a := renderBib(cfg, p, cfg.styleA, rng, fmt.Sprintf("%s-%s-p%d-a", cfg.key, split, i))
		b := renderBib(cfg, p, stB, rng, fmt.Sprintf("%s-%s-p%d-b", cfg.key, split, i))
		pairs = append(pairs, entity.Pair{ID: fmt.Sprintf("%s-%s-pos-%d", cfg.key, split, i), A: a, B: b, Match: true})
	}
	for i := 0; i < neg; i++ {
		pi := rng.Intn(len(universe))
		p := universe[pi]
		var q publication
		if rng.Bool(cfg.cornerNegRate) {
			sibs := families[p.family]
			qi := sibs[rng.Intn(len(sibs))]
			for qi == pi && len(sibs) > 1 {
				qi = sibs[rng.Intn(len(sibs))]
			}
			if qi == pi {
				qi = (pi + 1) % len(universe)
			}
			q = universe[qi]
		} else {
			qi := rng.Intn(len(universe))
			for universe[qi].family == p.family {
				qi = rng.Intn(len(universe))
			}
			q = universe[qi]
		}
		a := renderBib(cfg, p, cfg.styleA, rng, fmt.Sprintf("%s-%s-n%d-a", cfg.key, split, i))
		b := renderBib(cfg, q, cfg.styleB, rng, fmt.Sprintf("%s-%s-n%d-b", cfg.key, split, i))
		pairs = append(pairs, entity.Pair{ID: fmt.Sprintf("%s-%s-neg-%d", cfg.key, split, i), A: a, B: b, Match: false})
	}
	// Shuffle so matches and non-matches interleave, as in the
	// published benchmark files; any prefix of a split keeps a
	// realistic class mix.
	detrand.Shuffle(detrand.New("shuffle", cfg.key, split), pairs)
	return pairs
}

// generateBibDataset materializes a bibliographic benchmark.
func generateBibDataset(cfg bibConfig) *Dataset {
	universe := buildBibUniverse(cfg)
	c := cfg.counts
	return &Dataset{
		Name:     cfg.name,
		Key:      cfg.key,
		Abbrev:   cfg.abbrev,
		Schema:   cfg.schema,
		Scenario: CleanClean,
		Train:    generateBibPairs(cfg, universe, "train", c.TrainPos, c.TrainNeg),
		Val:      generateBibPairs(cfg, universe, "val", c.ValPos, c.ValNeg),
		Test:     generateBibPairs(cfg, universe, "test", c.TestPos, c.TestNeg),
	}
}
