package datasets

import (
	"bytes"
	"strings"
	"testing"

	"llm4em/internal/entity"
	"llm4em/internal/textsim"
)

func TestAllDatasetsMatchPaperCounts(t *testing.T) {
	for _, key := range Keys() {
		d := MustLoad(key)
		got := d.Counts()
		want := PaperCounts(key)
		if got != want {
			t.Errorf("%s: counts = %+v, want Table 1 counts %+v", key, got, want)
		}
	}
}

func TestLoadUnknownKey(t *testing.T) {
	if _, err := Load("nope"); err == nil {
		t.Fatal("Load(nope) should fail")
	}
}

func TestLoadIsCachedAndDeterministic(t *testing.T) {
	a := MustLoad("wdc")
	b := MustLoad("wdc")
	if a != b {
		t.Error("Load should cache and return the same instance")
	}
	// Regenerate from scratch and compare content.
	c := generateWDCProducts()
	if len(c.Test) != len(a.Test) {
		t.Fatalf("regenerated test size %d != %d", len(c.Test), len(a.Test))
	}
	for i := range c.Test {
		if c.Test[i].A.Serialize() != a.Test[i].A.Serialize() ||
			c.Test[i].B.Serialize() != a.Test[i].B.Serialize() ||
			c.Test[i].Match != a.Test[i].Match {
			t.Fatalf("regeneration differs at test pair %d", i)
		}
	}
}

func TestSchemasMatchPaper(t *testing.T) {
	want := map[string][]string{
		"wdc": {"brand", "title", "currency", "price"},
		"ab":  {"title", "price"},
		"wa":  {"brand", "title", "modelno", "price"},
		"ag":  {"brand", "title", "price"},
		"ds":  {"authors", "title", "venue", "year"},
		"da":  {"authors", "title", "venue", "year"},
	}
	for key, attrs := range want {
		d := MustLoad(key)
		if len(d.Schema.Attributes) != len(attrs) {
			t.Errorf("%s: attributes %v, want %v", key, d.Schema.Attributes, attrs)
			continue
		}
		for i, a := range attrs {
			if d.Schema.Attributes[i] != a {
				t.Errorf("%s: attribute %d = %q, want %q", key, i, d.Schema.Attributes[i], a)
			}
		}
	}
}

func TestDomains(t *testing.T) {
	for _, key := range []string{"wdc", "ab", "wa", "ag"} {
		if MustLoad(key).Schema.Domain != entity.Product {
			t.Errorf("%s should be product domain", key)
		}
	}
	for _, key := range []string{"ds", "da"} {
		if MustLoad(key).Schema.Domain != entity.Publication {
			t.Errorf("%s should be publication domain", key)
		}
	}
}

func TestScenarios(t *testing.T) {
	// WDC Products and Walmart-Amazon are dirty-dirty (Section 2).
	if MustLoad("wdc").Scenario != DirtyDirty {
		t.Error("wdc should be dirty-dirty")
	}
	if MustLoad("wa").Scenario != DirtyDirty {
		t.Error("wa should be dirty-dirty")
	}
	for _, key := range []string{"ab", "ag", "ds", "da"} {
		if MustLoad(key).Scenario != CleanClean {
			t.Errorf("%s should be clean-clean", key)
		}
	}
}

func TestRecordsConformToSchema(t *testing.T) {
	for _, key := range Keys() {
		d := MustLoad(key)
		for _, p := range d.Test {
			if err := d.Schema.Validate(p.A); err != nil {
				t.Fatalf("%s: %v", key, err)
			}
			if err := d.Schema.Validate(p.B); err != nil {
				t.Fatalf("%s: %v", key, err)
			}
		}
	}
}

func TestSerializedRecordsNonEmpty(t *testing.T) {
	for _, key := range Keys() {
		d := MustLoad(key)
		for i, p := range d.Test {
			if p.A.Serialize() == "" || p.B.Serialize() == "" {
				t.Fatalf("%s test pair %d has an empty serialization", key, i)
			}
		}
	}
}

// TestMatchesAreMoreSimilarOnAverage verifies the core statistical
// property every benchmark must have: matches are on average more
// similar than non-matches, but the distributions overlap (corner
// cases exist).
func TestMatchesAreMoreSimilarOnAverage(t *testing.T) {
	for _, key := range Keys() {
		d := MustLoad(key)
		var posSum, negSum float64
		var posN, negN int
		var overlapPos, overlapNeg int // corner-case indicators
		for _, p := range d.Test {
			s := textsim.JaccardStrings(p.A.Serialize(), p.B.Serialize())
			if p.Match {
				posSum += s
				posN++
				if s < 0.3 {
					overlapPos++
				}
			} else {
				negSum += s
				negN++
				if s > 0.5 {
					overlapNeg++
				}
			}
		}
		posMean, negMean := posSum/float64(posN), negSum/float64(negN)
		if posMean <= negMean {
			t.Errorf("%s: mean match similarity %.3f <= mean non-match %.3f", key, posMean, negMean)
		}
		if overlapNeg == 0 {
			t.Errorf("%s: no similar non-matches — corner cases missing", key)
		}
	}
}

// TestWDCIsHarderThanDBLPACM checks the difficulty ordering at the
// level of raw similarity separation: the gap between match and
// non-match similarity must be smaller for WDC Products than for
// DBLP-ACM.
func TestDifficultyOrdering(t *testing.T) {
	gap := func(key string) float64 {
		d := MustLoad(key)
		var posSum, negSum float64
		var posN, negN int
		for _, p := range d.Test {
			s := textsim.JaccardStrings(p.A.Serialize(), p.B.Serialize())
			if p.Match {
				posSum += s
				posN++
			} else {
				negSum += s
				negN++
			}
		}
		return posSum/float64(posN) - negSum/float64(negN)
	}
	if gap("ag") >= gap("da") {
		t.Errorf("Amazon-Google gap %.3f should be smaller than DBLP-ACM gap %.3f", gap("ag"), gap("da"))
	}
}

func TestTrainValPool(t *testing.T) {
	d := MustLoad("wdc")
	pool := d.TrainVal()
	if len(pool) != len(d.Train)+len(d.Val) {
		t.Errorf("TrainVal length %d, want %d", len(pool), len(d.Train)+len(d.Val))
	}
}

func TestDirtyDatasetsReuseEntities(t *testing.T) {
	// In the dirty-dirty scenario some underlying entities appear in
	// multiple pairs; serialized sides should therefore contain near
	// duplicates across pairs.
	d := MustLoad("wdc")
	seen := map[string]int{}
	for _, p := range d.Train {
		seen[p.A.Serialize()]++
	}
	dups := 0
	for _, c := range seen {
		if c > 1 {
			dups++
		}
	}
	if dups == 0 {
		t.Skip("no exact duplicate serializations; entity reuse is probabilistic")
	}
}

func TestWriteCSV(t *testing.T) {
	d := MustLoad("ab")
	var buf bytes.Buffer
	if err := d.WriteCSV(&buf, d.Test[:5]); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != 6 {
		t.Fatalf("CSV has %d lines, want 6 (header + 5 rows)", len(lines))
	}
	if !strings.HasPrefix(lines[0], "pair_id,label,left_title,left_price,right_title,right_price") {
		t.Errorf("unexpected header: %s", lines[0])
	}
}

func TestWriteJSONL(t *testing.T) {
	d := MustLoad("ds")
	var buf bytes.Buffer
	if err := d.WriteJSONL(&buf, d.Test[:3]); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != 3 {
		t.Fatalf("JSONL has %d lines, want 3", len(lines))
	}
	for _, l := range lines {
		if !strings.Contains(l, `"left"`) || !strings.Contains(l, `"label"`) {
			t.Errorf("malformed JSONL line: %s", l)
		}
	}
}

func TestBibYearsPlausible(t *testing.T) {
	d := MustLoad("ds")
	for _, p := range d.Test[:200] {
		for _, r := range []entity.Record{p.A, p.B} {
			if y, ok := r.Get("year"); ok {
				if len(y) != 4 || !(strings.HasPrefix(y, "19") || strings.HasPrefix(y, "20")) {
					t.Fatalf("implausible year %q in %s", y, r.ID)
				}
			}
		}
	}
}

func TestSplitCountsTotal(t *testing.T) {
	c := SplitCounts{TrainPos: 1, TrainNeg: 2, ValPos: 3, ValNeg: 4, TestPos: 5, TestNeg: 6}
	if c.Total() != 21 {
		t.Errorf("Total = %d, want 21", c.Total())
	}
}
