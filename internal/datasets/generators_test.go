package datasets

import (
	"strings"
	"testing"

	"llm4em/internal/detrand"
	"llm4em/internal/vocab"
)

func TestMaybeAbbreviateSparesIdentifiers(t *testing.T) {
	rng := detrand.New("abbr-test")
	s := "wireless headphones DSC-1208B premium"
	for i := 0; i < 50; i++ {
		out := maybeAbbreviate(s, 1.0, rng)
		if !strings.Contains(out, "DSC-1208B") {
			t.Fatalf("model token abbreviated: %q", out)
		}
	}
	// With probability 1, long plain words must eventually shorten.
	out := maybeAbbreviate("wireless headphones premium", 1.0, rng)
	if !strings.Contains(out, ".") {
		t.Errorf("no abbreviation applied: %q", out)
	}
}

func TestMaybeTypoSparesIdentifiers(t *testing.T) {
	rng := detrand.New("typo-test")
	for i := 0; i < 200; i++ {
		out := maybeTypo("sony DSC120B camera", 1.0, rng)
		if !strings.Contains(out, "DSC120B") {
			t.Fatalf("typo hit the identifier: %q", out)
		}
	}
}

func TestPriceApartAvoidsUnity(t *testing.T) {
	rng := detrand.New("price-test")
	for i := 0; i < 500; i++ {
		m := priceApart(rng)
		if m > 0.80 && m < 1.25 {
			t.Fatalf("priceApart returned %v inside the match-jitter band", m)
		}
		if m < 0.5 || m > 1.75 {
			t.Fatalf("priceApart returned %v outside the documented range", m)
		}
	}
}

func TestPickVariantOtherDiffers(t *testing.T) {
	rng := detrand.New("variant-test")
	for i := 0; i < 100; i++ {
		v := pickVariantOther(rng, vocab.Electronics, "black")
		if v == "black" {
			t.Fatal("pickVariantOther returned the excluded variant")
		}
	}
}

func TestFilterBrands(t *testing.T) {
	brands := vocab.BrandsByCategory(vocab.Electronics)
	all := filterBrands(brands, 0, 0)
	if len(all) != len(brands) {
		t.Error("mod 0 should keep all brands")
	}
	even := filterBrands(brands, 2, 0)
	odd := filterBrands(brands, 2, 1)
	if len(even)+len(odd) != len(brands) {
		t.Errorf("partition sizes %d+%d != %d", len(even), len(odd), len(brands))
	}
	for _, e := range even {
		for _, o := range odd {
			if e.Name == o.Name {
				t.Errorf("brand %s in both partitions", e.Name)
			}
		}
	}
}

func TestHardenMonotone(t *testing.T) {
	base := sourceStyle{abbrevProb: 0.1, dropModelProb: 0.1, dropBrandProb: 0.1, priceJitter: 0.03, noiseWordProb: 0.2, typoProb: 0.05}
	h := harden(base)
	if h.abbrevProb <= base.abbrevProb || h.dropModelProb <= base.dropModelProb ||
		h.priceJitter <= base.priceJitter {
		t.Errorf("harden should intensify perturbations: %+v", h)
	}
	// Caps hold even when hardening an already-hard style.
	hh := harden(harden(harden(base)))
	if hh.abbrevProb > 0.40+1e-9 || hh.dropModelProb > 0.45+1e-9 {
		t.Errorf("harden exceeded caps: %+v", hh)
	}
}

func TestSiblingProductsDiffer(t *testing.T) {
	cfg := productConfig{key: "sibling-test", families: 50, categories: []vocab.Category{vocab.Electronics}}
	universe := buildUniverse(cfg)
	byFamily := map[int][]product{}
	for _, p := range universe {
		byFamily[p.family] = append(byFamily[p.family], p)
	}
	for fam, sibs := range byFamily {
		for i := 0; i < len(sibs); i++ {
			for j := i + 1; j < len(sibs); j++ {
				a, b := sibs[i], sibs[j]
				if a.model() == b.model() && a.variant == b.variant {
					t.Fatalf("family %d has indistinguishable siblings: %+v vs %+v", fam, a, b)
				}
			}
		}
	}
}

func TestReformatVersion(t *testing.T) {
	tests := map[string]string{
		"5.0":  "5",
		"2007": "07",
		"5.5":  "v5.5",
	}
	for in, want := range tests {
		if got := reformatVersion(in); got != want {
			t.Errorf("reformatVersion(%q) = %q, want %q", in, got, want)
		}
	}
}

func TestBibAuthorRendering(t *testing.T) {
	a := author{first: "Michael", last: "Stonebraker"}
	if a.full() != "Michael Stonebraker" || a.initial() != "M. Stonebraker" {
		t.Errorf("author rendering: %q / %q", a.full(), a.initial())
	}
}
