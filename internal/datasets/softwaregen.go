package datasets

import (
	"fmt"
	"strings"

	"llm4em/internal/detrand"
	"llm4em/internal/entity"
	"llm4em/internal/vocab"
)

// softwareItem is one entry of the Amazon-Google software universe:
// a vendor product at a specific version and edition. Sibling items
// (same product, different version or edition) produce the dataset's
// notorious corner cases, e.g. "different versions of the Windows
// operating system" (Section 2).
type softwareItem struct {
	vendor  string
	product string
	version string // "5.0", "2007", may be empty
	edition string // "upgrade", "full version", ... may be empty
	price   float64
	family  int
	// editionCritical marks items whose identity depends on the
	// edition word alone (same product and version as a sibling);
	// offers for such items always state the edition.
	editionCritical bool
}

// softwareConfig describes the Amazon-Google style benchmark.
type softwareConfig struct {
	key, name, abbrev string
	counts            SplitCounts
	schema            entity.Schema

	families       int
	cornerNegRate  float64
	hardMatchRate  float64
	styleA, styleB softwareStyle
}

// softwareStyle controls how a source renders software offers.
type softwareStyle struct {
	dropVendorProb  float64
	dropVersionProb float64
	dropEditionProb float64
	versionReformat float64 // "5.0" <-> "5", "2007" <-> "07"
	noiseWordProb   float64
	priceJitter     float64
	missingPriceP   float64
	wordShuffleProb float64
}

// buildSoftwareUniverse creates cfg.families product families of 2-4
// version/edition siblings each.
func buildSoftwareUniverse(cfg softwareConfig) []softwareItem {
	rng := detrand.New("universe", cfg.key)
	var all []softwareItem
	versionsFor := func() []string {
		if rng.Bool(0.5) {
			// Point versions.
			base := 1 + rng.Intn(9)
			return []string{
				fmt.Sprintf("%d.0", base),
				fmt.Sprintf("%d.0", base+1),
				fmt.Sprintf("%d.5", base),
			}
		}
		// Year versions.
		base := 2003 + rng.Intn(6)
		return []string{
			fmt.Sprintf("%d", base),
			fmt.Sprintf("%d", base+1),
			fmt.Sprintf("%d", base+2),
		}
	}
	for f := 0; f < cfg.families; f++ {
		vendor := vocab.SoftwareVendors[rng.Intn(len(vocab.SoftwareVendors))]
		prod := vendor.Products[rng.Intn(len(vendor.Products))]
		versions := versionsFor()
		basePrice := 20 + rng.Float64()*480
		siblings := 2 + rng.Intn(3)
		for s := 0; s < siblings; s++ {
			item := softwareItem{
				vendor:  vendor.Name,
				product: prod,
				version: versions[s%len(versions)],
				price:   basePrice * (0.7 + 0.6*rng.Float64()),
				family:  f,
			}
			if rng.Bool(0.55) {
				item.edition = vocab.SoftwareEditionWords[rng.Intn(len(vocab.SoftwareEditionWords))]
			}
			all = append(all, item)
		}
		// Edition sibling: identical version, different edition — the
		// hardest corner case (upgrade vs full version). The edition
		// word is its only distinguishing surface attribute, so it is
		// marked edition-critical: its offers always state the edition,
		// as real listings for upgrade SKUs do. It must also differ
		// from the base item's edition.
		if rng.Bool(0.6) {
			ed := vocab.SoftwareEditionWords[rng.Intn(len(vocab.SoftwareEditionWords))]
			for ed == all[len(all)-siblings].edition {
				ed = vocab.SoftwareEditionWords[rng.Intn(len(vocab.SoftwareEditionWords))]
			}
			all = append(all, softwareItem{
				vendor: vendor.Name, product: prod, version: versions[0],
				edition: ed, price: basePrice * 0.5, family: f,
				editionCritical: true,
			})
		}
	}
	return all
}

// renderSoftware produces one record for a software item.
func renderSoftware(cfg softwareConfig, it softwareItem, st softwareStyle, rng *detrand.RNG, id string) entity.Record {
	var words []string
	if !rng.Bool(st.dropVendorProb) {
		words = append(words, it.vendor)
	}
	words = append(words, it.product)
	if it.version != "" && !rng.Bool(st.dropVersionProb) {
		v := it.version
		if rng.Bool(st.versionReformat) {
			v = reformatVersion(v)
		}
		words = append(words, v)
	}
	if it.edition != "" && (it.editionCritical || !rng.Bool(st.dropEditionProb)) {
		words = append(words, it.edition)
	}
	if rng.Bool(st.noiseWordProb) {
		words = append(words, vocab.MarketingNoise[rng.Intn(len(vocab.MarketingNoise))])
	}
	if rng.Bool(st.wordShuffleProb) && len(words) > 2 {
		// Swap two interior word positions (sources order fields
		// differently).
		i := 1 + rng.Intn(len(words)-1)
		j := 1 + rng.Intn(len(words)-1)
		words[i], words[j] = words[j], words[i]
	}
	title := strings.ToLower(strings.Join(words, " "))

	price := ""
	if !rng.Bool(st.missingPriceP) {
		j := it.price * (1 + st.priceJitter*rng.Gauss())
		if j < 1 {
			j = 1
		}
		price = fmt.Sprintf("%.2f", j)
	}
	brand := it.vendor
	if rng.Bool(st.dropVendorProb) {
		brand = ""
	}
	values := map[string]string{"brand": brand, "title": title, "price": price}
	r := entity.Record{ID: id, Attrs: make([]entity.Attr, len(cfg.schema.Attributes))}
	for i, a := range cfg.schema.Attributes {
		r.Attrs[i] = entity.Attr{Name: a, Value: values[a]}
	}
	return r
}

// reformatVersion maps between common version surface forms:
// "5.0" -> "5", "5.5" -> "v5.5", "2007" -> "07".
func reformatVersion(v string) string {
	switch {
	case strings.HasSuffix(v, ".0"):
		return strings.TrimSuffix(v, ".0")
	case len(v) == 4 && strings.HasPrefix(v, "20"):
		return v[2:]
	default:
		return "v" + v
	}
}

// generateSoftwarePairs materializes one split of the software
// benchmark.
func generateSoftwarePairs(cfg softwareConfig, universe []softwareItem, split string, pos, neg int) []entity.Pair {
	rng := detrand.New("pairs", cfg.key, split)
	pairs := make([]entity.Pair, 0, pos+neg)
	families := map[int][]int{}
	for i, it := range universe {
		families[it.family] = append(families[it.family], i)
	}

	for i := 0; i < pos; i++ {
		it := universe[rng.Intn(len(universe))]
		stB := cfg.styleB
		if rng.Bool(cfg.hardMatchRate) {
			stB.dropVersionProb = minf(stB.dropVersionProb+0.5, 0.9)
			stB.dropEditionProb = minf(stB.dropEditionProb+0.5, 0.95)
			stB.priceJitter *= 2
			stB.versionReformat = 0.45
		}
		a := renderSoftware(cfg, it, cfg.styleA, rng, fmt.Sprintf("%s-%s-p%d-a", cfg.key, split, i))
		b := renderSoftware(cfg, it, stB, rng, fmt.Sprintf("%s-%s-p%d-b", cfg.key, split, i))
		pairs = append(pairs, entity.Pair{ID: fmt.Sprintf("%s-%s-pos-%d", cfg.key, split, i), A: a, B: b, Match: true})
	}
	for i := 0; i < neg; i++ {
		pi := rng.Intn(len(universe))
		it := universe[pi]
		var other softwareItem
		if rng.Bool(cfg.cornerNegRate) {
			sibs := families[it.family]
			qi := sibs[rng.Intn(len(sibs))]
			for qi == pi && len(sibs) > 1 {
				qi = sibs[rng.Intn(len(sibs))]
			}
			if qi == pi {
				qi = (pi + 1) % len(universe)
			}
			other = universe[qi]
		} else {
			qi := rng.Intn(len(universe))
			for universe[qi].family == it.family {
				qi = rng.Intn(len(universe))
			}
			other = universe[qi]
		}
		a := renderSoftware(cfg, it, cfg.styleA, rng, fmt.Sprintf("%s-%s-n%d-a", cfg.key, split, i))
		b := renderSoftware(cfg, other, cfg.styleB, rng, fmt.Sprintf("%s-%s-n%d-b", cfg.key, split, i))
		pairs = append(pairs, entity.Pair{ID: fmt.Sprintf("%s-%s-neg-%d", cfg.key, split, i), A: a, B: b, Match: false})
	}
	// Shuffle so matches and non-matches interleave, as in the
	// published benchmark files; any prefix of a split keeps a
	// realistic class mix.
	detrand.Shuffle(detrand.New("shuffle", cfg.key, split), pairs)
	return pairs
}

// generateSoftwareDataset materializes the Amazon-Google style
// benchmark.
func generateSoftwareDataset(cfg softwareConfig) *Dataset {
	universe := buildSoftwareUniverse(cfg)
	c := cfg.counts
	return &Dataset{
		Name:     cfg.name,
		Key:      cfg.key,
		Abbrev:   cfg.abbrev,
		Schema:   cfg.schema,
		Scenario: CleanClean,
		Train:    generateSoftwarePairs(cfg, universe, "train", c.TrainPos, c.TrainNeg),
		Val:      generateSoftwarePairs(cfg, universe, "val", c.ValPos, c.ValNeg),
		Test:     generateSoftwarePairs(cfg, universe, "test", c.TestPos, c.TestNeg),
	}
}
