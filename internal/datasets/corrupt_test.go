package datasets

import (
	"reflect"
	"strings"
	"testing"

	"llm4em/internal/entity"
)

// corruptionFixtures returns a spread of records the knob tests run
// over: full product and publication shapes plus degenerate ones.
func corruptionFixtures() []entity.Record {
	prodSchema := entity.Schema{Domain: entity.Product,
		Attributes: []string{"brand", "title", "modelno", "price"}}
	bibSchema := entity.Schema{Domain: entity.Publication,
		Attributes: []string{"authors", "title", "venue", "year"}}
	return []entity.Record{
		prodSchema.NewRecord("p1", "sony", "cybershot digital camera pro", "dsc-120b", "348.00"),
		prodSchema.NewRecord("p2", "canon", "powershot camera silver 8gb", "sx620", "219.99"),
		bibSchema.NewRecord("b1", "j smith a jones", "scalable entity matching systems", "vldb", "2004"),
		bibSchema.NewRecord("b2", "m garcia", "approximate joins revisited", "sigmod conference", "2007"),
		{ID: "tiny", Attrs: []entity.Attr{{Name: "title", Value: "x"}}},
		{ID: "empty", Attrs: []entity.Attr{{Name: "title", Value: ""}, {Name: "price", Value: ""}}},
	}
}

// TestCorruptorDeterminism pins that corruption is a pure function of
// (seed, kind, level, record): repeated application and fresh
// corruptors yield identical output, and a different seed yields
// different output for at least one fixture.
func TestCorruptorDeterminism(t *testing.T) {
	recs := corruptionFixtures()
	for _, kind := range CorruptionKinds() {
		// Seed sensitivity is aggregated across levels: embed at high
		// levels collapses every attribute of small records, where no
		// permutation choice remains for the seed to steer.
		seedMatters := false
		for _, level := range []int{1, 2, 3} {
			c1 := ForLevel("seed-a", kind, level)
			c2 := ForLevel("seed-a", kind, level)
			diffSeed := ForLevel("seed-b", kind, level)
			for _, r := range recs {
				a, b := c1.Corrupt(r), c2.Corrupt(r)
				if !reflect.DeepEqual(a, b) {
					t.Fatalf("%s level %d: two corruptors with the same seed disagree on %s:\n%v\n%v",
						kind, level, r.ID, a, b)
				}
				if again := c1.Corrupt(r); !reflect.DeepEqual(a, again) {
					t.Fatalf("%s level %d: repeated corruption of %s diverges", kind, level, r.ID)
				}
				if !reflect.DeepEqual(a, diffSeed.Corrupt(r)) {
					seedMatters = true
				}
			}
		}
		// Schema divergence renames deterministically; only its keyed
		// shuffle is seed-sensitive, which single-attribute fixtures
		// cannot show — every other kind must show seed sensitivity.
		if !seedMatters && kind != CorruptSchema {
			t.Errorf("%s: corruption ignores the seed entirely", kind)
		}
	}
}

// TestCorruptorInputUntouched pins that Corrupt never mutates its
// argument: the shard caches of the resolve store hand out shared
// records, so in-place corruption would poison the store.
func TestCorruptorInputUntouched(t *testing.T) {
	for _, kind := range CorruptionKinds() {
		for _, orig := range corruptionFixtures() {
			snapshot := orig.Clone()
			ForLevel("mut", kind, 3).Corrupt(orig)
			if !reflect.DeepEqual(orig, snapshot) {
				t.Fatalf("%s: Corrupt mutated its input %s", kind, orig.ID)
			}
		}
	}
}

// TestCorruptorLevelZeroIdentity pins that level 0 is the identity
// for every kind.
func TestCorruptorLevelZeroIdentity(t *testing.T) {
	for _, kind := range CorruptionKinds() {
		c := ForLevel("z", kind, 0)
		if !c.IsIdentity() {
			t.Errorf("%s: ForLevel(0) = %v, want identity", kind, c)
		}
		for _, r := range corruptionFixtures() {
			if got := c.Corrupt(r); !reflect.DeepEqual(got, r) {
				t.Fatalf("%s level 0 changed %s: %v", kind, r.ID, got)
			}
		}
	}
}

// TestCorruptorLevelMonotone pins the level semantics: for every
// kind, a higher level changes at least as many attribute slots of
// every fixture as a lower level.
func TestCorruptorLevelMonotone(t *testing.T) {
	for _, kind := range CorruptionKinds() {
		for _, r := range corruptionFixtures() {
			prev := -1
			for level := 0; level <= 4; level++ {
				got := ForLevel("mono", kind, level).Corrupt(r)
				changed := ChangedFields(r, got)
				if changed < prev {
					t.Fatalf("%s on %s: level %d changes %d fields, level %d changed %d (not monotone)",
						kind, r.ID, level, changed, level-1, prev)
				}
				prev = changed
			}
		}
	}
}

// TestCorruptorEmbedCollapses pins embed semantics: the chosen values
// all survive inside one blob value and the donors are emptied —
// information preserved, field boundaries destroyed.
func TestCorruptorEmbedCollapses(t *testing.T) {
	schema := entity.Schema{Domain: entity.Product,
		Attributes: []string{"brand", "title", "modelno", "price"}}
	r := schema.NewRecord("e1", "sony", "cybershot camera", "dsc120", "348.00")
	got := Corruptor{Seed: "embed-test", EmbedK: 4}.Corrupt(r)
	nonEmpty := 0
	var blob string
	for _, a := range got.Attrs {
		if a.Value != "" {
			nonEmpty++
			blob = a.Value
		}
	}
	if nonEmpty != 1 {
		t.Fatalf("embed-4 left %d non-empty slots, want 1: %v", nonEmpty, got.Attrs)
	}
	for _, want := range []string{"sony", "cybershot camera", "dsc120", "348.00"} {
		if !strings.Contains(blob, want) {
			t.Errorf("embed blob %q lost value %q", blob, want)
		}
	}
	if got.Serialize() == "" {
		t.Error("embedded record serializes to nothing")
	}
}

// TestCorruptorMisfieldPreservesMultiset pins misfield semantics:
// values move under wrong names but none is lost or invented.
func TestCorruptorMisfieldPreservesMultiset(t *testing.T) {
	schema := entity.Schema{Domain: entity.Publication,
		Attributes: []string{"authors", "title", "venue", "year"}}
	r := schema.NewRecord("m1", "j smith", "entity matching", "vldb", "2004")
	got := Corruptor{Seed: "misfield-test", MisfieldK: 3}.Corrupt(r)
	want := map[string]int{}
	have := map[string]int{}
	moved := 0
	for i := range r.Attrs {
		want[r.Attrs[i].Value]++
		have[got.Attrs[i].Value]++
		if got.Attrs[i].Value != r.Attrs[i].Value {
			moved++
		}
		if got.Attrs[i].Name != r.Attrs[i].Name {
			t.Errorf("misfield renamed attribute %d to %q", i, got.Attrs[i].Name)
		}
	}
	if !reflect.DeepEqual(want, have) {
		t.Fatalf("misfield changed the value multiset: %v -> %v", want, have)
	}
	if moved < 2 {
		t.Fatalf("misfield-3 moved only %d values", moved)
	}
}

// TestCorruptorNullOutRates pins that the null-out knob blanks more
// fields at a higher probability and nothing at zero.
func TestCorruptorNullOutRates(t *testing.T) {
	ds := MustLoad("wdc")
	blanks := func(p float64) int {
		c := Corruptor{Seed: "null-test", NullOut: p}
		n := 0
		for _, pair := range ds.Test[:200] {
			for _, side := range []entity.Record{c.Corrupt(pair.A), c.Corrupt(pair.B)} {
				for _, a := range side.Attrs {
					if a.Value == "" {
						n++
					}
				}
			}
		}
		return n
	}
	base := blanks(0)
	low, high := blanks(0.2), blanks(0.7)
	if !(base <= low && low < high) {
		t.Fatalf("null-out blanks not increasing: p=0 %d, p=0.2 %d, p=0.7 %d", base, low, high)
	}
}

// TestCorruptorSchemaDivergence pins that schema divergence renames
// every attribute and that corrupted records no longer validate
// against the original schema while keeping every value.
func TestCorruptorSchemaDivergence(t *testing.T) {
	ds := MustLoad("ds")
	c := Corruptor{Seed: "schema-test", DivergeSchema: true}
	r := ds.Test[0].A
	got := c.Corrupt(r)
	if err := ds.Schema.Validate(got); err == nil {
		t.Error("schema-divergent record still validates against the original schema")
	}
	origNames := map[string]bool{}
	for _, a := range r.Attrs {
		origNames[a.Name] = true
	}
	vals := map[string]int{}
	for _, a := range r.Attrs {
		vals[a.Value]++
	}
	for _, a := range got.Attrs {
		if origNames[a.Name] {
			t.Errorf("attribute %q kept its canonical name", a.Name)
		}
		vals[a.Value]--
	}
	for v, n := range vals {
		if n != 0 {
			t.Errorf("schema divergence changed value multiset at %q (delta %d)", v, n)
		}
	}
}

// TestCorruptDatasetSplits pins CorruptDataset: label and size
// preservation, name suffix, original untouched.
func TestCorruptDatasetSplits(t *testing.T) {
	ds := MustLoad("ag")
	origCounts := ds.Counts()
	c := ForLevel("ds-test", CorruptTypo, 2)
	got := c.CorruptDataset(ds)
	if got.Counts() != origCounts {
		t.Fatalf("corruption changed split counts: %+v -> %+v", origCounts, got.Counts())
	}
	if !strings.Contains(got.Name, "typo") {
		t.Errorf("corrupted dataset name %q does not describe the corruption", got.Name)
	}
	if ds.Counts() != origCounts || strings.Contains(ds.Name, "typo") {
		t.Error("CorruptDataset mutated the cached original")
	}
	changedPairs := 0
	for i := range got.Test {
		if got.Test[i].Match != ds.Test[i].Match {
			t.Fatal("corruption flipped a gold label")
		}
		if !reflect.DeepEqual(got.Test[i].A, ds.Test[i].A) {
			changedPairs++
		}
	}
	if changedPairs == 0 {
		t.Error("typo level 2 corrupted no test pair at all")
	}
}

// TestParseCorruptionKind covers the flag-parsing helper.
func TestParseCorruptionKind(t *testing.T) {
	for _, k := range CorruptionKinds() {
		got, err := ParseCorruptionKind(" " + strings.ToUpper(string(k)) + " ")
		if err != nil || got != k {
			t.Errorf("ParseCorruptionKind(%q) = %v, %v", k, got, err)
		}
	}
	if _, err := ParseCorruptionKind("meteor"); err == nil {
		t.Error("unknown kind parsed without error")
	}
}

// TestCorruptorString covers the knob description used in dataset
// names and reports.
func TestCorruptorString(t *testing.T) {
	if got := (Corruptor{}).String(); got != "clean" {
		t.Errorf("identity corruptor describes itself as %q", got)
	}
	c := Corruptor{EmbedK: 3, TypoRate: 0.16, DivergeSchema: true}
	got := c.String()
	for _, want := range []string{"embed-3", "typo-0.16", "schema"} {
		if !strings.Contains(got, want) {
			t.Errorf("Corruptor.String() = %q, missing %q", got, want)
		}
	}
}
