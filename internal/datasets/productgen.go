package datasets

import (
	"fmt"
	"strings"

	"llm4em/internal/detrand"
	"llm4em/internal/entity"
	"llm4em/internal/vocab"
)

// product is one item of the synthetic product universe. Products are
// organized into families (same brand, line and type); siblings within
// a family differ only in model number, variant or capacity and are
// the source of corner-case non-matches.
type product struct {
	category  vocab.Category
	brand     string
	line      string
	ptype     string
	modelStem string // letters, e.g. "DSC"
	modelNum  int    // numeric part, e.g. 120
	modelSfx  string // optional suffix letter, e.g. "B"
	variant   string // color/capacity/size word, may be empty
	price     float64
	family    int
}

// model renders the canonical model number, e.g. "DSC-120B".
func (p product) model() string {
	return fmt.Sprintf("%s-%d%s", p.modelStem, p.modelNum, p.modelSfx)
}

// modelCompact renders the model without the dash, a common surface
// variant ("DSC120B").
func (p product) modelCompact() string {
	return fmt.Sprintf("%s%d%s", p.modelStem, p.modelNum, p.modelSfx)
}

// featurePhrases enrich textual product titles (Abt-Buy style offers
// describe "various product features", Section 2).
var featurePhrases = map[vocab.Category][]string{
	vocab.Electronics: {
		"with 10x optical zoom", "2.7-inch lcd screen", "1080p full hd",
		"built-in wifi", "image stabilization", "usb 2.0 interface",
		"rechargeable battery included", "hdmi output", "noise cancelling",
		"up to 30 hours battery life",
	},
	vocab.Tools: {
		"with 2 batteries and charger", "variable speed trigger",
		"led work light", "keyless chuck", "brushless motor",
		"includes carrying case", "1/2-inch chuck",
	},
	vocab.Clothing: {
		"moisture wicking fabric", "water resistant", "machine washable",
		"relaxed fit", "breathable mesh lining", "reinforced seams",
	},
	vocab.Kitchen: {
		"stainless steel finish", "dishwasher safe parts", "5-quart bowl",
		"10 speed settings", "programmable timer", "bpa free",
	},
}

// sourceStyle parameterizes how one data source renders offers for the
// same product; the two sides of a benchmark use different styles,
// which is what creates surface heterogeneity between matches.
type sourceStyle struct {
	noiseWordProb   float64 // prepend/append a marketing-noise word
	sellerProb      float64 // append a seller decoration
	abbrevProb      float64 // abbreviate a title word
	dropBrandProb   float64 // omit the brand token from the title
	modelCompactPro float64 // render the model without its dash
	dropModelProb   float64 // omit the model number from the title
	featureProb     float64 // append a category feature phrase
	priceJitter     float64 // relative sigma of price perturbation
	missingPriceP   float64 // leave the price attribute empty
	typoProb        float64 // introduce a character transposition
	dropTypeProb    float64 // drop the product-type words
}

// productConfig fully describes one product-domain benchmark.
type productConfig struct {
	key        string
	name       string
	abbrev     string
	categories []vocab.Category
	counts     SplitCounts
	schema     entity.Schema
	scenario   Scenario

	families       int     // number of product families in the universe
	cornerNegRate  float64 // fraction of negatives drawn from sibling products
	hardMatchRate  float64 // fraction of matches rendered with heavy perturbation
	ambiguousRate  float64 // fraction of corner negatives with the model hidden
	styleA, styleB sourceStyle
	// brandMod/brandRem restrict the brand catalog of the dataset to
	// the indices i with i % brandMod == brandRem (brandMod 0 keeps
	// all brands). Real product benchmarks cover largely disjoint
	// retailer catalogs; partitioning the brand pool reproduces the
	// limited vocabulary overlap that makes transferred PLM matchers
	// degrade on unseen entities (Table 4).
	brandMod, brandRem int
}

// buildUniverse deterministically creates the product universe for a
// config: cfg.families families of 2-4 sibling products each.
func buildUniverse(cfg productConfig) []product {
	rng := detrand.New("universe", cfg.key)
	var all []product
	for f := 0; f < cfg.families; f++ {
		cat := cfg.categories[rng.Intn(len(cfg.categories))]
		brands := filterBrands(vocab.BrandsByCategory(cat), cfg.brandMod, cfg.brandRem)
		brand := brands[rng.Intn(len(brands))]
		line := brand.Lines[rng.Intn(len(brand.Lines))]
		types := vocab.ProductTypesByCategory(cat)
		ptype := types[rng.Intn(len(types))]
		stem := randomStem(rng)
		baseNum := 100 + rng.Intn(900)
		basePrice := 10 + rng.Float64()*990
		baseVariant := ""
		if rng.Bool(0.5) {
			baseVariant = pickVariant(rng, cat)
		}
		siblings := 2 + rng.Intn(3)
		for s := 0; s < siblings; s++ {
			p := product{
				category:  cat,
				brand:     brand.Name,
				line:      line,
				ptype:     ptype,
				modelStem: stem,
				modelNum:  baseNum,
				variant:   baseVariant,
				price:     basePrice,
				family:    f,
			}
			// Every sibling must differ from the base in at least one
			// identity attribute (model number, suffix or variant);
			// sibling prices are kept clearly apart from the base so
			// price remains weak but usable corner-case evidence.
			switch s {
			case 1:
				// Sibling differing in the numeric model part.
				p.modelNum = baseNum + 10*(1+rng.Intn(5))
				p.price = basePrice * priceApart(rng)
			case 2:
				// Sibling differing in suffix and variant.
				p.modelSfx = string(rune('A' + rng.Intn(4)))
				p.variant = pickVariantOther(rng, cat, baseVariant)
				p.price = basePrice * priceApart(rng)
			case 3:
				// Sibling differing in both number and suffix.
				p.modelNum = baseNum + 5 + 10*rng.Intn(4)
				p.modelSfx = string(rune('A' + rng.Intn(4)))
				p.price = basePrice * priceApart(rng)
			}
			all = append(all, p)
		}
	}
	return all
}

// filterBrands keeps the brand indices selected by mod/rem; mod 0
// keeps everything.
func filterBrands(brands []vocab.Brand, mod, rem int) []vocab.Brand {
	if mod <= 0 {
		return brands
	}
	out := make([]vocab.Brand, 0, len(brands)/mod+1)
	for i, b := range brands {
		if i%mod == rem {
			out = append(out, b)
		}
	}
	if len(out) == 0 {
		return brands
	}
	return out
}

func randomStem(rng *detrand.RNG) string {
	n := 2 + rng.Intn(2)
	var b strings.Builder
	for i := 0; i < n; i++ {
		b.WriteByte(byte('A' + rng.Intn(26)))
	}
	return b.String()
}

// priceApart returns a multiplier clearly away from 1 so sibling
// prices do not overlap the jitter applied to matching offers.
func priceApart(rng *detrand.RNG) float64 {
	if rng.Bool(0.5) {
		return 0.55 + 0.25*rng.Float64() // 0.55-0.80
	}
	return 1.25 + 0.45*rng.Float64() // 1.25-1.70
}

// pickVariantOther picks a variant different from the given one.
func pickVariantOther(rng *detrand.RNG, cat vocab.Category, not string) string {
	for i := 0; i < 8; i++ {
		if v := pickVariant(rng, cat); v != not {
			return v
		}
	}
	return "special edition"
}

func pickVariant(rng *detrand.RNG, cat vocab.Category) string {
	switch cat {
	case vocab.Electronics:
		if rng.Bool(0.5) {
			return vocab.Capacities[rng.Intn(len(vocab.Capacities))]
		}
		return vocab.Colors[rng.Intn(len(vocab.Colors))]
	case vocab.Clothing:
		if rng.Bool(0.5) {
			return vocab.Sizes[rng.Intn(len(vocab.Sizes))]
		}
		return vocab.Colors[rng.Intn(len(vocab.Colors))]
	default:
		return vocab.Colors[rng.Intn(len(vocab.Colors))]
	}
}

// renderOffer produces one record for a product under a source style.
// The record follows cfg.schema; attributes not in the schema are
// folded into the title, as in the original benchmarks.
func renderOffer(cfg productConfig, p product, st sourceStyle, rng *detrand.RNG, id string) entity.Record {
	includeBrand := !rng.Bool(st.dropBrandProb)
	includeModel := !rng.Bool(st.dropModelProb)
	includeType := !rng.Bool(st.dropTypeProb)
	// Real offers always retain some identity core: a listing never
	// drops both the model number and the product type.
	if !includeModel {
		includeType = true
	}
	modelStr := p.model()
	if rng.Bool(st.modelCompactPro) {
		modelStr = p.modelCompact()
	}

	var words []string
	if rng.Bool(st.noiseWordProb) {
		words = append(words, vocab.MarketingNoise[rng.Intn(len(vocab.MarketingNoise))])
	}
	if includeBrand {
		words = append(words, p.brand)
	}
	words = append(words, p.line)
	if includeModel {
		words = append(words, modelStr)
	}
	if includeType {
		words = append(words, p.ptype)
	}
	if p.variant != "" && rng.Bool(0.85) {
		words = append(words, p.variant)
	}
	if rng.Bool(st.featureProb) {
		fp := featurePhrases[p.category]
		words = append(words, fp[rng.Intn(len(fp))])
	}
	if rng.Bool(st.sellerProb) {
		words = append(words, vocab.SellerSuffixes[rng.Intn(len(vocab.SellerSuffixes))])
	}
	title := strings.Join(words, " ")
	title = maybeAbbreviate(title, st.abbrevProb, rng)
	title = maybeTypo(title, st.typoProb, rng)
	if rng.Bool(0.5) {
		title = strings.ToLower(title)
	}

	price := ""
	if !rng.Bool(st.missingPriceP) {
		jittered := p.price * (1 + st.priceJitter*rng.Gauss())
		if jittered < 1 {
			jittered = 1
		}
		price = fmt.Sprintf("%.2f", jittered)
	}

	values := map[string]string{
		"brand":    p.brand,
		"title":    title,
		"currency": "USD",
		"price":    price,
		"modelno":  strings.ToLower(modelStr),
	}
	if !includeBrand && rng.Bool(0.5) {
		values["brand"] = "" // source also lacks the structured brand
	}
	// Structured sources usually keep the modelno field even when the
	// title omits it.
	if !includeModel && rng.Bool(0.3) {
		values["modelno"] = ""
	}

	r := entity.Record{ID: id, Attrs: make([]entity.Attr, len(cfg.schema.Attributes))}
	for i, a := range cfg.schema.Attributes {
		r.Attrs[i] = entity.Attr{Name: a, Value: values[a]}
	}
	return r
}

// maybeAbbreviate abbreviates each word of s independently with
// probability p. Tokens containing digits (model numbers, prices,
// years) are never abbreviated: real-world sources shorten words, not
// identifiers.
func maybeAbbreviate(s string, p float64, rng *detrand.RNG) string {
	if p == 0 {
		return s
	}
	words := strings.Fields(s)
	for i, w := range words {
		if len(w) > 5 && !hasDigit(w) && rng.Bool(p) {
			words[i] = vocab.Abbreviate(w, 3+rng.Intn(2))
		}
	}
	return strings.Join(words, " ")
}

func hasDigit(s string) bool {
	for _, r := range s {
		if r >= '0' && r <= '9' {
			return true
		}
	}
	return false
}

// maybeTypo swaps one adjacent character pair in a letter-only word
// with probability p. Identifiers (tokens with digits) are spared:
// vendors mistype words, not SKUs they copy-paste.
func maybeTypo(s string, p float64, rng *detrand.RNG) string {
	if !rng.Bool(p) {
		return s
	}
	words := strings.Fields(s)
	// Deterministically probe a handful of positions for a suitable
	// word.
	for try := 0; try < 4; try++ {
		i := rng.Intn(len(words))
		w := words[i]
		if len(w) >= 4 && !hasDigit(w) {
			b := []byte(w)
			j := 1 + rng.Intn(len(b)-2)
			b[j], b[j+1] = b[j+1], b[j]
			words[i] = string(b)
			break
		}
	}
	return strings.Join(words, " ")
}

// harden intensifies a style for corner-case matches: the same
// product is rendered so differently that naive surface comparison
// suggests a non-match.
func harden(st sourceStyle) sourceStyle {
	st.abbrevProb = minf(st.abbrevProb+0.18, 0.40)
	st.dropModelProb = minf(st.dropModelProb+0.22, 0.45)
	st.dropBrandProb = minf(st.dropBrandProb+0.15, 0.40)
	st.priceJitter = st.priceJitter * 2
	st.noiseWordProb = minf(st.noiseWordProb+0.2, 0.8)
	st.typoProb = minf(st.typoProb+0.08, 0.25)
	return st
}

func minf(a, b float64) float64 {
	if a < b {
		return a
	}
	return b
}

// generateProductPairs materializes one split of a product benchmark.
func generateProductPairs(cfg productConfig, universe []product, split string, pos, neg int) []entity.Pair {
	rng := detrand.New("pairs", cfg.key, split)
	pairs := make([]entity.Pair, 0, pos+neg)

	// Index families for sibling lookup.
	families := map[int][]int{}
	for i, p := range universe {
		families[p.family] = append(families[p.family], i)
	}

	for i := 0; i < pos; i++ {
		p := universe[rng.Intn(len(universe))]
		stB := cfg.styleB
		if rng.Bool(cfg.hardMatchRate) {
			stB = harden(stB)
		}
		idA := fmt.Sprintf("%s-%s-p%d-a", cfg.key, split, i)
		idB := fmt.Sprintf("%s-%s-p%d-b", cfg.key, split, i)
		a := renderOffer(cfg, p, cfg.styleA, rng, idA)
		b := renderOffer(cfg, p, stB, rng, idB)
		pairs = append(pairs, entity.Pair{
			ID: fmt.Sprintf("%s-%s-pos-%d", cfg.key, split, i), A: a, B: b, Match: true,
		})
	}

	for i := 0; i < neg; i++ {
		pi := rng.Intn(len(universe))
		p := universe[pi]
		var q product
		if rng.Bool(cfg.cornerNegRate) {
			// Corner case: a sibling from the same family.
			sibs := families[p.family]
			qi := sibs[rng.Intn(len(sibs))]
			for qi == pi && len(sibs) > 1 {
				qi = sibs[rng.Intn(len(sibs))]
			}
			if qi == pi {
				qi = (pi + 1) % len(universe)
			}
			q = universe[qi]
		} else {
			qi := rng.Intn(len(universe))
			for universe[qi].family == p.family {
				qi = rng.Intn(len(universe))
			}
			q = universe[qi]
		}
		stA, stB := cfg.styleA, cfg.styleB
		if q.family == p.family && rng.Bool(cfg.ambiguousRate) {
			// Hide the distinguishing model number on one side: the most
			// difficult corner-case non-matches.
			stB.dropModelProb = 1
		}
		idA := fmt.Sprintf("%s-%s-n%d-a", cfg.key, split, i)
		idB := fmt.Sprintf("%s-%s-n%d-b", cfg.key, split, i)
		a := renderOffer(cfg, p, stA, rng, idA)
		b := renderOffer(cfg, q, stB, rng, idB)
		pairs = append(pairs, entity.Pair{
			ID: fmt.Sprintf("%s-%s-neg-%d", cfg.key, split, i), A: a, B: b, Match: false,
		})
	}
	// Shuffle so matches and non-matches interleave, as in the
	// published benchmark files; any prefix of a split keeps a
	// realistic class mix.
	detrand.Shuffle(detrand.New("shuffle", cfg.key, split), pairs)
	return pairs
}

// generateProductDataset materializes a full product benchmark from
// its config.
func generateProductDataset(cfg productConfig) *Dataset {
	universe := buildUniverse(cfg)
	c := cfg.counts
	return &Dataset{
		Name:     cfg.name,
		Key:      cfg.key,
		Abbrev:   cfg.abbrev,
		Schema:   cfg.schema,
		Scenario: cfg.scenario,
		Train:    generateProductPairs(cfg, universe, "train", c.TrainPos, c.TrainNeg),
		Val:      generateProductPairs(cfg, universe, "val", c.ValPos, c.ValNeg),
		Test:     generateProductPairs(cfg, universe, "test", c.TestPos, c.TestNeg),
	}
}
