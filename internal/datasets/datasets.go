// Package datasets provides deterministic synthetic equivalents of
// the six benchmark datasets used in the paper's evaluation (Table 1):
// WDC Products, Abt-Buy, Walmart-Amazon, Amazon-Google, DBLP-Scholar
// and DBLP-ACM.
//
// The original benchmarks are not redistributable inside this module,
// so each dataset is regenerated from the shared vocabulary
// (internal/vocab) with the exact train/validation/test split sizes of
// Table 1 and the structural properties the paper's analysis depends
// on: corner-case record pairs (very similar non-matches and very
// dissimilar matches), heterogeneous surface forms, numeric
// attributes, dirty-dirty vs clean-clean scenarios, and the paper's
// per-dataset attribute schemas and difficulty ordering.
package datasets

import (
	"fmt"
	"sort"
	"sync"

	"llm4em/internal/entity"
)

// SplitCounts records the number of positive (matching) and negative
// (non-matching) pairs per split, exactly as reported in Table 1.
type SplitCounts struct {
	TrainPos, TrainNeg int
	ValPos, ValNeg     int
	TestPos, TestNeg   int
}

// Total returns the total number of pairs across all splits.
func (c SplitCounts) Total() int {
	return c.TrainPos + c.TrainNeg + c.ValPos + c.ValNeg + c.TestPos + c.TestNeg
}

// Scenario distinguishes dirty-dirty matching tasks (duplicates may
// exist within one source) from clean-clean tasks.
type Scenario string

// Matching scenarios, following Christophides et al. as cited in the
// paper.
const (
	DirtyDirty Scenario = "dirty-dirty"
	CleanClean Scenario = "clean-clean"
)

// Dataset is one fully materialized benchmark: a schema, a scenario
// and three labelled pair splits.
type Dataset struct {
	// Name is the full benchmark name, e.g. "WDC Products".
	Name string
	// Key is the short machine identifier, e.g. "wdc".
	Key string
	// Abbrev is the column abbreviation used by the paper's tables,
	// e.g. "WDC", "A-B".
	Abbrev string
	// Schema lists the attributes used for serialization, in order.
	Schema entity.Schema
	// Scenario is dirty-dirty or clean-clean.
	Scenario Scenario
	// Train, Val and Test are the labelled pair splits. In-context
	// example selection and fine-tuning draw on Train and Val; prompts
	// are evaluated on Test (Table 1 caption).
	Train, Val, Test []entity.Pair
}

// Counts returns the per-split positive/negative counts of the
// materialized dataset.
func (d *Dataset) Counts() SplitCounts {
	tr, va, te := entity.Count(d.Train), entity.Count(d.Val), entity.Count(d.Test)
	return SplitCounts{
		TrainPos: tr.Pos, TrainNeg: tr.Neg,
		ValPos: va.Pos, ValNeg: va.Neg,
		TestPos: te.Pos, TestNeg: te.Neg,
	}
}

// TrainVal returns the concatenation of the training and validation
// pairs — the demonstration/fine-tuning pool of Section 4.
func (d *Dataset) TrainVal() []entity.Pair {
	out := make([]entity.Pair, 0, len(d.Train)+len(d.Val))
	out = append(out, d.Train...)
	out = append(out, d.Val...)
	return out
}

// loader materializes a dataset on first use.
type loader struct {
	once sync.Once
	ds   *Dataset
	gen  func() *Dataset
}

var registry = map[string]*loader{
	"wdc": {gen: generateWDCProducts},
	"ab":  {gen: generateAbtBuy},
	"wa":  {gen: generateWalmartAmazon},
	"ag":  {gen: generateAmazonGoogle},
	"ds":  {gen: generateDBLPScholar},
	"da":  {gen: generateDBLPACM},
}

// Keys returns the dataset keys in the paper's presentation order.
func Keys() []string {
	return []string{"wdc", "ab", "wa", "ag", "ds", "da"}
}

// Load materializes (or returns the cached) dataset with the given
// key. Generation is deterministic: repeated loads yield identical
// data.
func Load(key string) (*Dataset, error) {
	l, ok := registry[key]
	if !ok {
		known := Keys()
		sort.Strings(known)
		return nil, fmt.Errorf("datasets: unknown dataset %q (known: %v)", key, known)
	}
	l.once.Do(func() { l.ds = l.gen() })
	return l.ds, nil
}

// MustLoad is Load for known-good keys; it panics on error.
func MustLoad(key string) *Dataset {
	d, err := Load(key)
	if err != nil {
		panic(err)
	}
	return d
}

// All materializes every dataset in presentation order.
func All() []*Dataset {
	out := make([]*Dataset, 0, len(Keys()))
	for _, k := range Keys() {
		out = append(out, MustLoad(k))
	}
	return out
}

// PaperCounts returns the Table 1 split statistics for the dataset
// key. Generators are required (and tested) to reproduce these counts
// exactly.
func PaperCounts(key string) SplitCounts {
	return paperCounts[key]
}

var paperCounts = map[string]SplitCounts{
	"wdc": {TrainPos: 500, TrainNeg: 2000, ValPos: 500, ValNeg: 2000, TestPos: 259, TestNeg: 989},
	"ab":  {TrainPos: 616, TrainNeg: 5127, ValPos: 206, ValNeg: 1710, TestPos: 206, TestNeg: 1000},
	"wa":  {TrainPos: 576, TrainNeg: 5568, ValPos: 193, ValNeg: 1856, TestPos: 193, TestNeg: 1000},
	"ag":  {TrainPos: 699, TrainNeg: 6175, ValPos: 234, ValNeg: 2059, TestPos: 234, TestNeg: 1000},
	"ds":  {TrainPos: 3207, TrainNeg: 14016, ValPos: 1070, ValNeg: 4672, TestPos: 250, TestNeg: 1000},
	"da":  {TrainPos: 1332, TrainNeg: 6085, ValPos: 444, ValNeg: 2029, TestPos: 250, TestNeg: 1000},
}
