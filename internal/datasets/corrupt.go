package datasets

import (
	"fmt"
	"sort"
	"strings"

	"llm4em/internal/detrand"
	"llm4em/internal/entity"
)

// CorruptionKind identifies one family of dirty-data transformations.
// The embed/misfield kinds follow the simulated-error methodology of
// the ermaster study (SNIPPETS.md): embed-k collapses attribute
// values into a single semi-structured text blob, misfield-k files
// values under wrong attribute names.
type CorruptionKind string

// The supported corruption kinds.
const (
	// CorruptEmbed collapses k attribute values into one text blob —
	// the semi-structured DBpedia shape: all information preserved,
	// field boundaries destroyed.
	CorruptEmbed CorruptionKind = "embed"
	// CorruptMisfield rotates values across k+1 attribute slots so
	// each lands under a wrong attribute name.
	CorruptMisfield CorruptionKind = "misfield"
	// CorruptNull blanks attribute values outright (missing data).
	CorruptNull CorruptionKind = "nullout"
	// CorruptTypo injects character typos into value tokens and
	// appends marketplace noise words.
	CorruptTypo CorruptionKind = "typo"
	// CorruptSchema renames attributes to divergent synonyms and
	// permutes their order — two sources that never agreed on a schema.
	CorruptSchema CorruptionKind = "schema"
)

// CorruptionKinds returns every kind in presentation order.
func CorruptionKinds() []CorruptionKind {
	return []CorruptionKind{CorruptEmbed, CorruptMisfield, CorruptNull, CorruptTypo, CorruptSchema}
}

// ParseCorruptionKind resolves a kind name, accepting the constant
// spellings above.
func ParseCorruptionKind(s string) (CorruptionKind, error) {
	k := CorruptionKind(strings.ToLower(strings.TrimSpace(s)))
	for _, known := range CorruptionKinds() {
		if k == known {
			return k, nil
		}
	}
	return "", fmt.Errorf("datasets: unknown corruption kind %q (known: %v)", s, CorruptionKinds())
}

// Corruptor applies reproducible dirty-data transformations to
// records. Every stochastic choice is keyed on (Seed, record ID,
// stage, position) through internal/detrand, so corrupting the same
// record under the same seed always yields the same output,
// independent of call order — and raising a knob only ever grows the
// set of touched fields (see the monotonicity tests).
//
// The zero value is the identity transformation. Knobs compose: a
// Corruptor with several knobs set applies them in a fixed order
// (embed, misfield, null-out, noise, typo, schema).
type Corruptor struct {
	// Seed namespaces every pseudo-random draw. Two corruptors with
	// different seeds corrupt the same records differently.
	Seed string
	// EmbedK collapses min(EmbedK, len(attrs)) attribute values into a
	// single blob held by the first chosen slot; the donor slots are
	// emptied. Values below 2 are no-ops.
	EmbedK int
	// MisfieldK rotates the values of min(MisfieldK+1, len(attrs))
	// attribute slots by one position, so each sits under a wrong
	// attribute name. Zero is a no-op.
	MisfieldK int
	// NullOut blanks each attribute value independently with this
	// probability.
	NullOut float64
	// TypoRate applies one character-level typo (swap, drop or
	// duplicate) to each value token independently with this
	// probability.
	TypoRate float64
	// NoiseWords appends this many marketplace noise tokens to the
	// record's longest attribute value.
	NoiseWords int
	// DivergeSchema renames attributes to divergent synonyms and
	// permutes the attribute order.
	DivergeSchema bool
}

// ForLevel maps a corruption kind and an integer severity level to a
// Corruptor. Level 0 is the identity for every kind; higher levels
// corrupt at least as many fields as lower ones.
func ForLevel(seed string, kind CorruptionKind, level int) Corruptor {
	c := Corruptor{Seed: seed}
	if level <= 0 {
		return c
	}
	switch kind {
	case CorruptEmbed:
		// Level k collapses k+1 values: level 1 already merges a pair.
		c.EmbedK = level + 1
	case CorruptMisfield:
		c.MisfieldK = level
	case CorruptNull:
		c.NullOut = 0.15 * float64(level)
	case CorruptTypo:
		c.TypoRate = 0.08 * float64(level)
		c.NoiseWords = level
	case CorruptSchema:
		c.DivergeSchema = true
	}
	return c
}

// IsIdentity reports whether the corruptor changes nothing.
func (c Corruptor) IsIdentity() bool {
	return c.EmbedK < 2 && c.MisfieldK <= 0 && c.NullOut <= 0 &&
		c.TypoRate <= 0 && c.NoiseWords <= 0 && !c.DivergeSchema
}

// Corrupt returns a corrupted deep copy of the record. The input is
// never mutated.
func (c Corruptor) Corrupt(r entity.Record) entity.Record {
	out := r.Clone()
	if c.IsIdentity() || len(out.Attrs) == 0 {
		return out
	}
	if c.EmbedK >= 2 {
		c.embed(&out)
	}
	if c.MisfieldK > 0 {
		c.misfield(&out)
	}
	if c.NullOut > 0 {
		c.nullOut(&out)
	}
	if c.NoiseWords > 0 {
		c.addNoise(&out)
	}
	if c.TypoRate > 0 {
		c.typos(&out)
	}
	if c.DivergeSchema {
		c.diverge(&out)
	}
	return out
}

// embed collapses the values of the first min(EmbedK, n) slots of a
// keyed permutation into the lowest-index chosen slot, joining in
// schema order; the donors are emptied. Choosing k slots as a prefix
// of one permutation makes the touched set nested across levels.
func (c Corruptor) embed(r *entity.Record) {
	n := len(r.Attrs)
	m := min(c.EmbedK, n)
	if m < 2 {
		return
	}
	chosen := detrand.New(c.Seed, "embed", r.ID).Perm(n)[:m]
	sort.Ints(chosen)
	parts := make([]string, 0, m)
	for _, i := range chosen {
		if r.Attrs[i].Value != "" {
			parts = append(parts, r.Attrs[i].Value)
		}
		r.Attrs[i].Value = ""
	}
	r.Attrs[chosen[0]].Value = strings.Join(parts, " ")
}

// misfield rotates the values of the first min(MisfieldK+1, n) slots
// of a keyed permutation by one position, so every chosen value sits
// under a wrong attribute name.
func (c Corruptor) misfield(r *entity.Record) {
	n := len(r.Attrs)
	m := min(c.MisfieldK+1, n)
	if m < 2 {
		return
	}
	chosen := detrand.New(c.Seed, "misfield", r.ID).Perm(n)[:m]
	last := r.Attrs[chosen[m-1]].Value
	for i := m - 1; i > 0; i-- {
		r.Attrs[chosen[i]].Value = r.Attrs[chosen[i-1]].Value
	}
	r.Attrs[chosen[0]].Value = last
}

// nullOut blanks each value whose keyed uniform draw falls below the
// probability — a fixed draw per (seed, record, slot), so a higher
// probability blanks a superset of the fields a lower one blanks.
func (c Corruptor) nullOut(r *entity.Record) {
	for i := range r.Attrs {
		if r.Attrs[i].Value == "" {
			continue
		}
		if detrand.Unit(c.Seed, "null", r.ID, itoa(i)) < c.NullOut {
			r.Attrs[i].Value = ""
		}
	}
}

// noiseTokens are the marketplace filler words appended by addNoise.
var noiseTokens = []string{
	"sale", "hot", "new", "wow", "deal", "free", "shipping", "best",
	"offer", "clearance", "limited", "genuine",
}

// addNoise appends NoiseWords keyed noise tokens to the record's
// longest value (ties to the earliest slot) — the attribute a seller
// would decorate.
func (c Corruptor) addNoise(r *entity.Record) {
	target, best := -1, -1
	for i := range r.Attrs {
		if l := len(r.Attrs[i].Value); l > best {
			target, best = i, l
		}
	}
	if target < 0 || r.Attrs[target].Value == "" {
		return
	}
	var b strings.Builder
	b.WriteString(r.Attrs[target].Value)
	for w := 0; w < c.NoiseWords; w++ {
		b.WriteByte(' ')
		b.WriteString(noiseTokens[int(detrand.Hash64(c.Seed, "noise", r.ID, itoa(w))%uint64(len(noiseTokens)))])
	}
	r.Attrs[target].Value = b.String()
}

// typos applies one character-level typo to each value token whose
// keyed draw falls below TypoRate. Draws are fixed per (seed, record,
// slot, token index), so a higher rate mangles a superset of the
// tokens a lower rate mangles.
func (c Corruptor) typos(r *entity.Record) {
	for i := range r.Attrs {
		v := r.Attrs[i].Value
		if v == "" {
			continue
		}
		words := strings.Split(v, " ")
		changed := false
		for wi, w := range words {
			key := []string{c.Seed, "typo", r.ID, itoa(i), itoa(wi)}
			if detrand.Unit(key...) >= c.TypoRate {
				continue
			}
			if tw := typoWord(w, detrand.Hash64(append(key, "op")...)); tw != w {
				words[wi] = tw
				changed = true
			}
		}
		if changed {
			r.Attrs[i].Value = strings.Join(words, " ")
		}
	}
}

// typoWord applies one deterministic typo to a word: swap two
// adjacent characters, drop one, or duplicate one, chosen by the
// key hash. Words shorter than 3 bytes are left alone — mangling
// them deletes the token rather than misspelling it.
func typoWord(w string, h uint64) string {
	if len(w) < 3 {
		return w
	}
	pos := 1 + int(h%uint64(len(w)-2)) // keep first and last byte anchored
	switch (h >> 32) % 3 {
	case 0: // swap with the next byte
		b := []byte(w)
		b[pos], b[pos+1] = b[pos+1], b[pos]
		return string(b)
	case 1: // drop
		return w[:pos] + w[pos+1:]
	default: // duplicate
		return w[:pos+1] + w[pos:]
	}
}

// schemaSynonyms maps canonical attribute names to the divergent
// spelling a schema-divergent source would use.
var schemaSynonyms = map[string]string{
	"title":    "name",
	"brand":    "manufacturer",
	"price":    "cost",
	"currency": "ccy",
	"modelno":  "mpn",
	"authors":  "creator",
	"venue":    "publication",
	"year":     "date",
}

// diverge renames every attribute to its divergent synonym and
// permutes the attribute order with a keyed shuffle. Serialization
// concatenates values in attribute order, so the permutation alone
// changes what every downstream consumer sees.
func (c Corruptor) diverge(r *entity.Record) {
	for i := range r.Attrs {
		if syn, ok := schemaSynonyms[r.Attrs[i].Name]; ok {
			r.Attrs[i].Name = syn
		} else {
			r.Attrs[i].Name = "x_" + r.Attrs[i].Name
		}
	}
	detrand.Shuffle(detrand.New(c.Seed, "schema", r.ID), r.Attrs)
}

// CorruptPair corrupts both sides of a labelled pair, keeping ID and
// gold label.
func (c Corruptor) CorruptPair(p entity.Pair) entity.Pair {
	p.A = c.Corrupt(p.A)
	p.B = c.Corrupt(p.B)
	return p
}

// CorruptPairs corrupts every pair into a fresh slice.
func (c Corruptor) CorruptPairs(pairs []entity.Pair) []entity.Pair {
	out := make([]entity.Pair, len(pairs))
	for i, p := range pairs {
		out[i] = c.CorruptPair(p)
	}
	return out
}

// CorruptDataset returns a corrupted deep copy of the dataset: every
// split corrupted, name suffixed with the corruptor's description.
// The schema is kept as-is; schema-divergent records deliberately no
// longer validate against it.
func (c Corruptor) CorruptDataset(d *Dataset) *Dataset {
	out := *d
	out.Name = d.Name + " (" + c.String() + ")"
	out.Train = c.CorruptPairs(d.Train)
	out.Val = c.CorruptPairs(d.Val)
	out.Test = c.CorruptPairs(d.Test)
	return &out
}

// String describes the active knobs, e.g. "embed-3+typo-0.16".
func (c Corruptor) String() string {
	var parts []string
	if c.EmbedK >= 2 {
		parts = append(parts, fmt.Sprintf("embed-%d", c.EmbedK))
	}
	if c.MisfieldK > 0 {
		parts = append(parts, fmt.Sprintf("misfield-%d", c.MisfieldK))
	}
	if c.NullOut > 0 {
		parts = append(parts, fmt.Sprintf("null-%.2f", c.NullOut))
	}
	if c.TypoRate > 0 {
		parts = append(parts, fmt.Sprintf("typo-%.2f", c.TypoRate))
	}
	if c.NoiseWords > 0 {
		parts = append(parts, fmt.Sprintf("noise-%d", c.NoiseWords))
	}
	if c.DivergeSchema {
		parts = append(parts, "schema")
	}
	if len(parts) == 0 {
		return "clean"
	}
	return strings.Join(parts, "+")
}

// ChangedFields counts the attribute slots whose name or value differ
// between an original record and its corrupted version, plus any
// length difference — the realized corruption the monotonicity tests
// assert on.
func ChangedFields(orig, corrupted entity.Record) int {
	n := 0
	common := min(len(orig.Attrs), len(corrupted.Attrs))
	for i := 0; i < common; i++ {
		if orig.Attrs[i] != corrupted.Attrs[i] {
			n++
		}
	}
	n += len(orig.Attrs) - common + len(corrupted.Attrs) - common
	return n
}

// itoa formats a small non-negative int without fmt overhead.
func itoa(x int) string {
	if x < 10 {
		return string([]byte{byte('0' + x)})
	}
	return fmt.Sprintf("%d", x)
}
