package datasets

import (
	"encoding/csv"
	"encoding/json"
	"fmt"
	"io"

	"llm4em/internal/entity"
)

// WriteCSV writes pairs as CSV with one row per pair: pair id, label,
// then the attributes of both records prefixed with "left_" and
// "right_". The column set follows the dataset schema.
func (d *Dataset) WriteCSV(w io.Writer, pairs []entity.Pair) error {
	cw := csv.NewWriter(w)
	header := []string{"pair_id", "label"}
	for _, a := range d.Schema.Attributes {
		header = append(header, "left_"+a)
	}
	for _, a := range d.Schema.Attributes {
		header = append(header, "right_"+a)
	}
	if err := cw.Write(header); err != nil {
		return fmt.Errorf("datasets: write csv header: %w", err)
	}
	for _, p := range pairs {
		row := []string{p.ID, boolLabel(p.Match)}
		for _, a := range d.Schema.Attributes {
			v, _ := p.A.Get(a)
			row = append(row, v)
		}
		for _, a := range d.Schema.Attributes {
			v, _ := p.B.Get(a)
			row = append(row, v)
		}
		if err := cw.Write(row); err != nil {
			return fmt.Errorf("datasets: write csv row %s: %w", p.ID, err)
		}
	}
	cw.Flush()
	return cw.Error()
}

func boolLabel(b bool) string {
	if b {
		return "1"
	}
	return "0"
}

// pairJSON is the JSON wire form of a labelled pair.
type pairJSON struct {
	ID    string            `json:"id"`
	Left  map[string]string `json:"left"`
	Right map[string]string `json:"right"`
	Label int               `json:"label"`
}

// WriteJSONL writes pairs in JSON-lines format, one object per pair.
func (d *Dataset) WriteJSONL(w io.Writer, pairs []entity.Pair) error {
	enc := json.NewEncoder(w)
	for _, p := range pairs {
		obj := pairJSON{ID: p.ID, Left: attrMap(p.A), Right: attrMap(p.B)}
		if p.Match {
			obj.Label = 1
		}
		if err := enc.Encode(obj); err != nil {
			return fmt.Errorf("datasets: encode pair %s: %w", p.ID, err)
		}
	}
	return nil
}

func attrMap(r entity.Record) map[string]string {
	m := make(map[string]string, len(r.Attrs))
	for _, a := range r.Attrs {
		m[a.Name] = a.Value
	}
	return m
}
