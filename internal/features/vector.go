package features

import (
	"math"
	"strings"

	"llm4em/internal/entity"
	"llm4em/internal/textsim"
	"llm4em/internal/tokenize"
)

// Feature identifies one dimension of the unified pair feature
// vector. The vector spans both topical domains; features whose
// evidence is absent from a pair are marked missing in the Presence
// mask and contribute nothing to scores.
type Feature int

// The unified feature dimensions.
const (
	TitleGenJaccard  Feature = iota // Generalized Jaccard of residual title tokens
	TitleCosine                     // cosine of residual title tokens
	TitleContainment                // max directional containment of title tokens
	BrandMatch                      // brand equality / similarity
	ModelMatch                      // best model-number correspondence
	PriceMatch                      // relative price similarity
	VersionMatch                    // version-token overlap (software offers)
	VariantMatch                    // quantity-variant overlap ("8gb" vs "16gb")
	EditionMatch                    // software-edition overlap ("upgrade" vs "full version")
	AuthorMatch                     // author-surname overlap
	VenueMatch                      // canonical venue equality
	YearMatch                       // year equality (0.5 for off-by-one)
	OverallJaccard                  // Jaccard of the full serializations
	NumFeatures                     // number of features
)

// String returns the attribute name used in explanations for the
// feature.
func (f Feature) String() string {
	switch f {
	case TitleGenJaccard:
		return "title"
	case TitleCosine:
		return "title wording"
	case TitleContainment:
		return "title containment"
	case BrandMatch:
		return "brand"
	case ModelMatch:
		return "model"
	case PriceMatch:
		return "price"
	case VersionMatch:
		return "version"
	case VariantMatch:
		return "variant"
	case EditionMatch:
		return "edition"
	case AuthorMatch:
		return "authors"
	case VenueMatch:
		return "venue"
	case YearMatch:
		return "year"
	case OverallJaccard:
		return "overall tokens"
	default:
		return "feature"
	}
}

// Vector holds one value per feature, each in [0, 1].
type Vector [NumFeatures]float64

// Presence marks which features could be computed for a pair (both
// sides supplied the evidence).
type Presence [NumFeatures]bool

// PairFeatures computes the unified feature vector for two extracted
// entity descriptions.
func PairFeatures(a, b Extracted) (Vector, Presence) {
	var v Vector
	var p Presence

	ta, tb := a.TitleTokens, b.TitleTokens
	if len(ta) == 0 {
		ta = a.Tokens
	}
	if len(tb) == 0 {
		tb = b.Tokens
	}
	v[TitleGenJaccard] = textsim.GeneralizedJaccard(ta, tb, textsim.Jaro, 0.5)
	p[TitleGenJaccard] = true
	v[TitleCosine] = textsim.Cosine(ta, tb)
	p[TitleCosine] = true
	v[TitleContainment] = math.Max(textsim.Containment(ta, tb), textsim.Containment(tb, ta))
	p[TitleContainment] = true

	if a.Brand != "" && b.Brand != "" {
		if a.Brand == b.Brand {
			v[BrandMatch] = 1
		} else {
			v[BrandMatch] = textsim.JaroWinkler(a.Brand, b.Brand) * 0.5
		}
		p[BrandMatch] = true
	}

	if len(a.Models) > 0 && len(b.Models) > 0 {
		v[ModelMatch] = bestModelSim(a.Models, b.Models)
		p[ModelMatch] = true
	}

	if a.HasPrice && b.HasPrice {
		v[PriceMatch] = textsim.NumericSim(a.Price, b.Price)
		p[PriceMatch] = true
	}

	// Software offers often carry their version as a bare year
	// ("Office 2007"); for product-domain strings the year evidence is
	// folded into the version comparison rather than YearMatch.
	va, vb := effectiveVersions(a), effectiveVersions(b)
	if len(va) > 0 && len(vb) > 0 {
		v[VersionMatch] = versionSim(va, vb)
		p[VersionMatch] = true
	}

	if s, ok := variantSim(a, b); ok {
		v[VariantMatch] = s
		p[VariantMatch] = true
	}

	// Edition evidence is meaningful even one-sided: an offer that
	// states "upgrade" while the other does not is weak evidence for
	// different SKUs of the same product line.
	switch {
	case len(a.Editions) > 0 && len(b.Editions) > 0:
		v[EditionMatch] = textsim.Jaccard(a.Editions, b.Editions)
		p[EditionMatch] = true
	case len(a.Editions) > 0 || len(b.Editions) > 0:
		v[EditionMatch] = 0.35
		p[EditionMatch] = true
	}

	if len(a.Authors) > 0 && len(b.Authors) > 0 {
		v[AuthorMatch] = textsim.MongeElkanSym(a.Authors, b.Authors, textsim.JaroWinkler)
		p[AuthorMatch] = true
	}

	if a.Venue != "" && b.Venue != "" {
		if a.Venue == b.Venue {
			v[VenueMatch] = 1
		} else {
			v[VenueMatch] = textsim.JaroWinkler(strings.ToLower(a.Venue), strings.ToLower(b.Venue)) * 0.4
		}
		p[VenueMatch] = true
	}

	if a.HasYear && b.HasYear && (a.Domain == entity.Publication || b.Domain == entity.Publication) {
		switch diff := abs(a.Year - b.Year); diff {
		case 0:
			v[YearMatch] = 1
		case 1:
			v[YearMatch] = 0.5
		default:
			v[YearMatch] = 0
		}
		p[YearMatch] = true
	}

	wa, wb := a.WordTokens, b.WordTokens
	if wa == nil {
		wa = tokenize.Words(a.Raw)
	}
	if wb == nil {
		wb = tokenize.Words(b.Raw)
	}
	v[OverallJaccard] = textsim.Jaccard(wa, wb)
	p[OverallJaccard] = true

	return v, p
}

// PairFeaturesText extracts both sides and computes their features.
func PairFeaturesText(a, b string) (Vector, Presence) {
	return PairFeatures(ExtractText(a), ExtractText(b))
}

// effectiveVersions returns the version evidence of an extraction:
// explicit version tokens, plus the year token for product-domain
// strings (software year-versions).
func effectiveVersions(e Extracted) []string {
	vs := e.Versions
	if e.Domain == entity.Product && e.HasYear {
		vs = append(vs[:len(vs):len(vs)], itoa(e.Year))
	}
	return vs
}

func itoa(x int) string {
	if x == 0 {
		return "0"
	}
	var b [8]byte
	i := len(b)
	for x > 0 {
		i--
		b[i] = byte('0' + x%10)
		x /= 10
	}
	return string(b[i:])
}

// bestModelSim aligns the two model-token lists greedily by pairwise
// similarity and returns the weakest aligned correspondence. Offers
// often carry several model-like tokens (a line identifier such as
// "m18" plus the true model number); taking the minimum over the
// alignment ensures that one shared line token cannot mask a
// conflicting model number.
func bestModelSim(as, bs []string) float64 {
	n := min(len(as), len(bs))
	if n == 0 {
		return 0
	}
	type cand struct {
		i, j int
		s    float64
	}
	var cands []cand
	for i, x := range as {
		for j, y := range bs {
			cands = append(cands, cand{i, j, modelSim(x, y)})
		}
	}
	// Insertion sort by decreasing similarity keeps determinism.
	for k := 1; k < len(cands); k++ {
		c := cands[k]
		l := k - 1
		for l >= 0 && cands[l].s < c.s {
			cands[l+1] = cands[l]
			l--
		}
		cands[l+1] = c
	}
	usedA := make([]bool, len(as))
	usedB := make([]bool, len(bs))
	worst := 1.0
	aligned := 0
	for _, c := range cands {
		if usedA[c.i] || usedB[c.j] {
			continue
		}
		usedA[c.i], usedB[c.j] = true, true
		if c.s < worst {
			worst = c.s
		}
		aligned++
		if aligned == n {
			break
		}
	}
	return worst
}

// modelSim grades two normalized model tokens. Identical tokens score
// 1; tokens sharing the full digit run but differing in a suffix
// letter score 0.5; tokens sharing only the letter stem score 0.2;
// anything else scores a scaled Jaro-Winkler.
func modelSim(x, y string) float64 {
	if x == y {
		return 1
	}
	dx, dy := digitRun(x), digitRun(y)
	sx, sy := letterPrefix(x), letterPrefix(y)
	switch {
	case sx == sy && dx == dy && dx != "":
		return 0.5 // e.g. dsc120a vs dsc120b
	case sx == sy && sx != "":
		return 0.2 // same family stem, different number
	default:
		return textsim.JaroWinkler(x, y) * 0.3
	}
}

func digitRun(s string) string {
	var b strings.Builder
	for _, r := range s {
		if r >= '0' && r <= '9' {
			b.WriteRune(r)
		}
	}
	return b.String()
}

func letterPrefix(s string) string {
	for i, r := range s {
		if r >= '0' && r <= '9' {
			return s[:i]
		}
	}
	return s
}

// variantSim compares quantity and color variants per unit class:
// "8gb" vs "16gb" conflict (same unit, different value), while "8gb"
// vs "19-inch" are incommensurable and yield no evidence. Colors form
// their own unit class. The result is the mean agreement over shared
// unit classes; ok is false when the sides share no unit class.
func variantSim(a, b Extracted) (sim float64, ok bool) {
	ua, ub := variantsByUnit(a.Variants), variantsByUnit(b.Variants)
	if len(a.Colors) > 0 {
		ua["color"] = a.Colors[0]
	}
	if len(b.Colors) > 0 {
		ub["color"] = b.Colors[0]
	}
	total, n := 0.0, 0
	for unit, va := range ua {
		vb, shared := ub[unit]
		if !shared {
			continue
		}
		n++
		if va == vb {
			total++
		}
	}
	if n == 0 {
		return 0, false
	}
	return total / float64(n), true
}

// variantsByUnit maps unit class -> value string ("gb" -> "8").
func variantsByUnit(vs []string) map[string]string {
	m := map[string]string{}
	for _, v := range vs {
		i := 0
		for i < len(v) && (v[i] >= '0' && v[i] <= '9' || v[i] == '.' || v[i] == '/' || v[i] == '-') {
			i++
		}
		if i == 0 || i >= len(v) {
			continue
		}
		m[v[i:]] = strings.Trim(v[:i], "-./")
	}
	return m
}

// versionSim compares version token lists: exact overlap scores 1,
// otherwise a numeric comparison of the closest pair.
func versionSim(as, bs []string) float64 {
	best := 0.0
	for _, x := range as {
		for _, y := range bs {
			var s float64
			switch {
			case x == y:
				s = 1
			case normVersion(x) == normVersion(y):
				s = 0.9
			default:
				s = 0.1
			}
			if s > best {
				best = s
			}
		}
	}
	return best
}

// normVersion canonicalizes version surface forms so "5" == "5.0" and
// "07" == "2007".
func normVersion(v string) string {
	v = strings.TrimPrefix(v, "v")
	v = strings.TrimSuffix(v, ".0")
	if len(v) == 2 {
		return "20" + v
	}
	return v
}

func abs(x int) int {
	if x < 0 {
		return -x
	}
	return x
}
