package features

import (
	"math"
	"reflect"
	"strings"
	"testing"
	"unicode"

	"llm4em/internal/tokenize"
)

// FuzzExtractText throws arbitrary byte soup — the dirty-data
// corruptor's output is a tame subset of it — at the extractor and the
// tokenizers underneath, pinning the invariants the rest of the system
// leans on: no panics, determinism, tokens that are really tokens, and
// a pair scorer that never emits NaN.
func FuzzExtractText(f *testing.F) {
	for _, seed := range []string{
		"",
		" ",
		"sony cybershot dsc-120b 348.00",
		"j smith scalable entity matching vldb 2004",
		"Música • ►ñandú 'quoted' \"x\" 19-inch",
		"\xff\xfe broken utf8 \x80 midrun",
		"v5.5 8gb 1080p wd-5000aaks upgrade full version",
		"price 0.00 year 1950 2029 . -/. ----",
		strings.Repeat("a", 5000),
		strings.Repeat("é¤Ω≈ç√ ", 100),
		"\x00nul\x00bytes\x00",
	} {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, s string) {
		e := ExtractText(s)
		if e.Raw != s {
			t.Fatalf("Raw = %q, want input %q", e.Raw, s)
		}
		if again := ExtractText(s); !reflect.DeepEqual(e, again) {
			t.Fatal("extraction is not deterministic")
		}
		// Tokens are non-empty, lower-cased, and free of separators.
		for _, tok := range append(append([]string{}, e.Tokens...), e.WordTokens...) {
			if tok == "" {
				t.Fatal("empty token")
			}
			for _, r := range tok {
				if unicode.IsSpace(r) || unicode.IsUpper(r) {
					t.Fatalf("token %q contains space or upper-case", tok)
				}
			}
		}
		// The residual title is a sub-multiset of the token sequence.
		counts := tokenize.Counts(e.Tokens)
		for _, tok := range e.TitleTokens {
			counts[tok]--
			if counts[tok] < 0 {
				t.Fatalf("title token %q not drawn from Tokens", tok)
			}
		}
		// The token estimator stays sane on the same soup.
		n := tokenize.EstimateTokens(s)
		if n < 0 {
			t.Fatalf("EstimateTokens(%q) = %d", s, n)
		}
		if strings.TrimSpace(s) != "" && n == 0 {
			t.Fatalf("EstimateTokens(%q) = 0 for non-blank input", s)
		}
		// The pair scorer downstream must never emit NaN, even for a
		// string paired with itself or with nothing.
		ws := Ideal()
		for _, other := range []string{s, ""} {
			v, pres := PairFeaturesText(s, other)
			p := ws.Probability(v, pres)
			if math.IsNaN(p) || p < 0 || p > 1 {
				t.Fatalf("Probability(%q, %q) = %v", s, other, p)
			}
		}
	})
}
