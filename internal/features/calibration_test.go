package features_test

import (
	"testing"

	"llm4em/internal/datasets"
	"llm4em/internal/eval"
	"llm4em/internal/features"
)

// oracleF1 evaluates the ideal-weight linear matcher on a dataset's
// test split. The oracle approximates the best achievable quality of
// a well-calibrated LLM (GPT-4's best prompt in the paper).
func oracleF1(t *testing.T, key string) float64 {
	t.Helper()
	d := datasets.MustLoad(key)
	ws := features.Ideal()
	var c eval.Confusion
	for _, p := range d.Test {
		v, pres := features.PairFeaturesText(p.A.Serialize(), p.B.Serialize())
		c.Add(p.Match, ws.Score(v, pres) > 0)
	}
	return c.F1()
}

// TestOracleDifficultyBands pins the achievable matching quality of
// each generated benchmark to the band around the paper's best
// zero-shot GPT-4 result (Table 4): the oracle should perform at or
// slightly above that level, preserving the difficulty ordering
// Amazon-Google < WDC ≈ Walmart-Amazon ≈ DBLP-Scholar < Abt-Buy <
// DBLP-ACM.
func TestOracleDifficultyBands(t *testing.T) {
	bands := map[string][2]float64{
		"wdc": {86, 95},  // paper best zero-shot 89.61
		"ab":  {92, 99},  // 95.78
		"wa":  {86, 95},  // 89.67
		"ag":  {72, 85},  // 76.38
		"ds":  {86, 95},  // 89.82
		"da":  {96, 100}, // 98.41
	}
	results := map[string]float64{}
	for key, band := range bands {
		f1 := oracleF1(t, key)
		results[key] = f1
		t.Logf("oracle F1 %s = %.2f (band %.0f-%.0f)", key, f1, band[0], band[1])
		if f1 < band[0] || f1 > band[1] {
			t.Errorf("%s: oracle F1 %.2f outside band [%.0f, %.0f]", key, f1, band[0], band[1])
		}
	}
	if results["ag"] >= results["da"] {
		t.Errorf("difficulty ordering violated: ag %.2f >= da %.2f", results["ag"], results["da"])
	}
}
