package features

import (
	"math"
	"testing"
	"testing/quick"
)

func TestExtractProductOffer(t *testing.T) {
	e := ExtractText("Sony Cybershot DSC-120B digital camera black 348.00")
	if e.Brand != "sony" {
		t.Errorf("Brand = %q, want sony", e.Brand)
	}
	if len(e.Models) != 1 || e.Models[0] != "dsc120b" {
		t.Errorf("Models = %v, want [dsc120b]", e.Models)
	}
	if !e.HasPrice || math.Abs(e.Price-348) > 0.001 {
		t.Errorf("Price = %v (%v)", e.Price, e.HasPrice)
	}
	if e.Domain.String() != "product" {
		t.Errorf("Domain = %v, want product", e.Domain)
	}
}

func TestExtractPublication(t *testing.T) {
	e := ExtractText("Michael Stonebraker, David DeWitt adaptive indexing in main-memory column stores SIGMOD Conference 1997")
	if !e.HasYear || e.Year != 1997 {
		t.Errorf("Year = %d (%v)", e.Year, e.HasYear)
	}
	if e.Venue != "SIGMOD Conference" {
		t.Errorf("Venue = %q", e.Venue)
	}
	if len(e.Authors) != 2 {
		t.Errorf("Authors = %v, want 2 surnames", e.Authors)
	}
	if e.Domain.String() != "publication" {
		t.Errorf("Domain = %v, want publication", e.Domain)
	}
	for _, w := range []string{"adaptive", "indexing"} {
		found := false
		for _, tok := range e.TitleTokens {
			if tok == w {
				found = true
			}
		}
		if !found {
			t.Errorf("title token %q missing from %v", w, e.TitleTokens)
		}
	}
}

func TestExtractVenueVariants(t *testing.T) {
	for _, s := range []string{
		"some title Proc. VLDB 2001",
		"some title pvldb 2001",
		"some title Very Large Data Bases 2001",
	} {
		e := ExtractText(s)
		if e.Venue != "VLDB" {
			t.Errorf("ExtractText(%q).Venue = %q, want VLDB", s, e.Venue)
		}
	}
}

func TestExtractTwoWordBrand(t *testing.T) {
	e := ExtractText("Western Digital Caviar WD-5000AAKS 500gb hard drive 89.99")
	if e.Brand != "western digital" {
		t.Errorf("Brand = %q, want western digital", e.Brand)
	}
}

func TestExtractVersions(t *testing.T) {
	e := ExtractText("adobe photoshop elements 5.0 full version 79.99")
	if len(e.Versions) != 1 || e.Versions[0] != "5.0" {
		t.Errorf("Versions = %v, want [5.0]", e.Versions)
	}
	if !e.HasPrice {
		t.Error("price should be recognized alongside version")
	}
}

func TestPriceVersusYearDisambiguation(t *testing.T) {
	e := ExtractText("widget 2005 149.99")
	if !e.HasYear || e.Year != 2005 {
		t.Errorf("year = %v (%v)", e.Year, e.HasYear)
	}
	if !e.HasPrice || e.Price != 149.99 {
		t.Errorf("price = %v (%v)", e.Price, e.HasPrice)
	}
}

func TestPairFeaturesIdenticalStrings(t *testing.T) {
	s := "Sony Cybershot DSC-120B digital camera black 348.00"
	v, p := PairFeaturesText(s, s)
	for _, f := range []Feature{TitleGenJaccard, TitleCosine, BrandMatch, ModelMatch, PriceMatch, OverallJaccard} {
		if !p[f] {
			t.Errorf("feature %v should be present", f)
			continue
		}
		if v[f] < 0.999 {
			t.Errorf("feature %v = %v, want 1 for identical strings", f, v[f])
		}
	}
}

func TestPairFeaturesModelMismatch(t *testing.T) {
	a := "Sony Cybershot DSC-120A digital camera 348.00"
	b := "Sony Cybershot DSC-120B digital camera 352.00"
	v, p := PairFeaturesText(a, b)
	if !p[ModelMatch] {
		t.Fatal("model feature should be present")
	}
	if v[ModelMatch] > 0.6 || v[ModelMatch] < 0.4 {
		t.Errorf("sibling suffix models = %v, want ~0.55", v[ModelMatch])
	}
	if v[BrandMatch] != 1 {
		t.Errorf("brand = %v, want 1", v[BrandMatch])
	}
}

func TestPairFeaturesCompactModelVariant(t *testing.T) {
	a := "Sony DSC-120B camera 348.00"
	b := "sony dsc120b camera 349.99"
	v, _ := PairFeaturesText(a, b)
	if v[ModelMatch] != 1 {
		t.Errorf("dash vs compact model = %v, want 1", v[ModelMatch])
	}
}

func TestPairFeaturesMissingEvidence(t *testing.T) {
	a := "generic camera bundle"
	b := "another camera kit 12.00"
	_, p := PairFeaturesText(a, b)
	if p[ModelMatch] || p[BrandMatch] || p[PriceMatch] || p[YearMatch] {
		t.Error("features without two-sided evidence must be absent")
	}
	if !p[TitleGenJaccard] || !p[OverallJaccard] {
		t.Error("title features must always be present")
	}
}

func TestYearMatchGrading(t *testing.T) {
	cases := []struct {
		a, b string
		want float64
	}{
		{"paper x VLDB 2001", "paper x vldb 2001", 1},
		{"paper x VLDB 2001", "paper x vldb 2002", 0.5},
		{"paper x VLDB 2001", "paper x vldb 2005", 0},
	}
	for _, c := range cases {
		v, p := PairFeaturesText(c.a, c.b)
		if !p[YearMatch] {
			t.Fatalf("year feature missing for %q/%q", c.a, c.b)
		}
		if v[YearMatch] != c.want {
			t.Errorf("YearMatch(%q,%q) = %v, want %v", c.a, c.b, v[YearMatch], c.want)
		}
	}
}

func TestVersionSimNormalization(t *testing.T) {
	v, p := PairFeaturesText(
		"adobe photoshop elements 5.0 full version 79.99",
		"photoshop elements 5 upgrade 49.99",
	)
	if !p[VersionMatch] {
		t.Fatal("version feature missing")
	}
	if v[VersionMatch] < 0.85 {
		t.Errorf("5.0 vs 5 = %v, want >= 0.9", v[VersionMatch])
	}
	v2, _ := PairFeaturesText(
		"adobe photoshop elements 5.0 79.99",
		"adobe photoshop elements 6.0 89.99",
	)
	if v2[VersionMatch] > 0.2 {
		t.Errorf("5.0 vs 6.0 = %v, want <= 0.1", v2[VersionMatch])
	}
}

func TestFeatureValuesBounded(t *testing.T) {
	f := func(a, b string) bool {
		v, _ := PairFeaturesText(a, b)
		for i := 0; i < int(NumFeatures); i++ {
			if v[i] < 0 || v[i] > 1+1e-9 || math.IsNaN(v[i]) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestPairFeaturesSymmetric(t *testing.T) {
	a := "Sony Cybershot DSC-120B camera black 348.00"
	b := "new sony dsc120 camera 299.00"
	v1, p1 := PairFeaturesText(a, b)
	v2, p2 := PairFeaturesText(b, a)
	for i := 0; i < int(NumFeatures); i++ {
		if p1[i] != p2[i] {
			t.Errorf("presence of %v differs by direction", Feature(i))
		}
		if math.Abs(v1[i]-v2[i]) > 1e-9 {
			t.Errorf("feature %v asymmetric: %v vs %v", Feature(i), v1[i], v2[i])
		}
	}
}

func TestScoreSkipsMissing(t *testing.T) {
	ws := Ideal()
	var v Vector
	var p Presence
	base := ws.Score(v, p) // only bias
	if base != ws.Bias {
		t.Errorf("empty presence score = %v, want bias %v", base, ws.Bias)
	}
	p[ModelMatch] = true
	v[ModelMatch] = 1
	withModel := ws.Score(v, p)
	if withModel <= base {
		t.Error("perfect model match should raise the score")
	}
}

func TestBlendEndpoints(t *testing.T) {
	a, b := Ideal(), TitleOnly()
	if got := Blend(a, b, 0); got != a {
		t.Error("Blend(t=0) should equal first argument")
	}
	if got := Blend(a, b, 1); got != b {
		t.Error("Blend(t=1) should equal second argument")
	}
	mid := Blend(a, b, 0.5)
	if mid.W[ModelMatch] <= b.W[ModelMatch] || mid.W[ModelMatch] >= a.W[ModelMatch] {
		t.Error("Blend(t=0.5) should be strictly between endpoints")
	}
}

func TestSigmoid(t *testing.T) {
	if Sigmoid(0) != 0.5 {
		t.Error("Sigmoid(0) should be 0.5")
	}
	if Sigmoid(10) < 0.99 || Sigmoid(-10) > 0.01 {
		t.Error("Sigmoid saturation wrong")
	}
}

func TestFeatureNames(t *testing.T) {
	seen := map[string]bool{}
	for i := 0; i < int(NumFeatures); i++ {
		name := Feature(i).String()
		if name == "" || name == "feature" {
			t.Errorf("feature %d lacks a name", i)
		}
		if seen[name] {
			t.Errorf("duplicate feature name %q", name)
		}
		seen[name] = true
	}
}

// TestVenueFusedToken pins venue detection when the venue acronym is
// fused with a year into one alphanumeric token — the case the
// token-gated lexicon probe must cover via the letter prefix, since
// "vldb2004" never appears as the bare word token "vldb".
func TestVenueFusedToken(t *testing.T) {
	cases := map[string]string{
		"efficient joins in vldb2004 proceedings": "VLDB",
		"scalable matching icde2019 paper":        "ICDE",
		"query answering Proc. SIGMOD 2001":       "SIGMOD Conference",
		"no venue words at all":                   "",
	}
	for text, want := range cases {
		if got := ExtractText(text).Venue; got != want {
			t.Errorf("ExtractText(%q).Venue = %q, want %q", text, got, want)
		}
	}
}
