// Package features turns pairs of serialized entity descriptions into
// attribute-level similarity vectors.
//
// The package is the "reading" half of the simulated LLM's world
// knowledge: given only the serialized string of an entity description
// (no schema, no attribute names — the serialization of Section 2
// deliberately drops them), it recovers the salient attributes the
// paper's GPT-4 explanations recover: brand, model number, price,
// authors, venue, year and the residual title. Pair feature vectors
// over these attributes drive the simulated models' decisions, the
// fine-tuning adapters, and the structured explanations of Section 6.
package features

import (
	"sort"
	"strconv"
	"strings"
	"unicode"

	"llm4em/internal/entity"
	"llm4em/internal/tokenize"
	"llm4em/internal/vocab"
)

// Extracted is the structured reading of one serialized entity
// description.
type Extracted struct {
	// Raw is the original serialized string.
	Raw string
	// Tokens is the full lower-cased token sequence (model numbers
	// kept together).
	Tokens []string
	// WordTokens is the plain word tokenization of Raw
	// (tokenize.Words: alphanumeric runs, model numbers split), cached
	// so pair scoring and blocking fanout never re-tokenize. Nil on
	// hand-built extractions; consumers fall back to tokenizing Raw.
	WordTokens []string
	// Brand is the recognized brand/vendor name (lower-cased), or "".
	Brand string
	// Models holds recognized model-number-like tokens (mixed
	// letter/digit tokens that are neither years nor prices).
	Models []string
	// Versions holds version-like numeric tokens ("5.0", "v5.5").
	Versions []string
	// Variants holds quantity/size tokens ("8gb", "19-inch", "3-user").
	Variants []string
	// Colors holds recognized color words ("black", "silver").
	Colors []string
	// Editions holds recognized software-edition phrases ("upgrade",
	// "full version", "academic").
	Editions []string
	// Price is the recognized price value; HasPrice reports whether
	// one was found.
	Price    float64
	HasPrice bool
	// Year is the recognized publication year; HasYear reports whether
	// one was found.
	Year    int
	HasYear bool
	// Venue is the canonical venue name if one was recognized, or "".
	Venue string
	// Authors holds recognized author surnames (lower-cased).
	Authors []string
	// TitleTokens is the residual token sequence after removing the
	// recognized attributes — the "title" an LLM would quote.
	TitleTokens []string
	// Domain is the guessed topical domain.
	Domain entity.Domain
}

// lexicons are the world-knowledge tables of the extractor, built once
// from the shared vocabulary. A web-pretrained LLM knows real brands,
// venues and researcher names; the simulated engine knows the
// generator's.
var lex = buildLexicons()

type lexicons struct {
	brands     map[string]bool // lower-cased single tokens
	brandPairs map[string]bool // lower-cased two-token brands ("western digital")
	// brandPairFirst holds the first word of every two-token brand, so
	// the extractor concatenates a candidate pair only when its first
	// token can possibly start one.
	brandPairFirst map[string]bool
	// venuesByTok indexes venue variants by their first word token, so
	// the extractor probes only the variants whose leading word
	// actually occurs in the text instead of substring-scanning the
	// whole lexicon. Each list is sorted longest variant first (ties
	// alphabetical) to keep longest-match-wins deterministic.
	venuesByTok map[string][]venueVariant
	surnames    map[string]bool
	firstnames  map[string]bool
}

// venueVariant is one lower-cased venue surface form and its
// canonical name.
type venueVariant struct {
	text  string
	canon string
}

func buildLexicons() lexicons {
	l := lexicons{
		brands:         map[string]bool{},
		brandPairs:     map[string]bool{},
		brandPairFirst: map[string]bool{},
		venuesByTok:    map[string][]venueVariant{},
		surnames:       map[string]bool{},
		firstnames:     map[string]bool{},
	}
	for _, b := range vocab.AllBrandNames() {
		lb := strings.ToLower(b)
		words := strings.Fields(lb)
		if len(words) >= 2 {
			l.brandPairs[strings.Join(words, " ")] = true
			l.brandPairFirst[words[0]] = true
			l.brands[words[0]] = true // allow partial recognition
		} else {
			l.brands[lb] = true
		}
	}
	for _, v := range vocab.Venues {
		canon := v.Full
		for _, alt := range append([]string{v.Full}, v.Variants...) {
			lower := strings.ToLower(alt)
			toks := tokenize.Words(lower)
			if len(toks) == 0 {
				continue
			}
			l.venuesByTok[toks[0]] = append(l.venuesByTok[toks[0]], venueVariant{text: lower, canon: canon})
		}
	}
	for _, vs := range l.venuesByTok {
		sort.Slice(vs, func(i, j int) bool {
			if len(vs[i].text) != len(vs[j].text) {
				return len(vs[i].text) > len(vs[j].text)
			}
			return vs[i].text < vs[j].text
		})
	}
	for _, n := range vocab.LastNames {
		l.surnames[strings.ToLower(n)] = true
	}
	for _, n := range vocab.FirstNames {
		l.firstnames[strings.ToLower(n)] = true
	}
	return l
}

// ExtractText reads a serialized entity description and recovers its
// salient attributes using only the text and the extractor's world
// knowledge.
func ExtractText(s string) Extracted {
	e := Extracted{Raw: s}
	e.Tokens = tokenize.WordsKeepAlnum(s)
	e.WordTokens = tokenize.Words(s)
	lower := strings.ToLower(s)

	// Venue: longest matching lexicon variant present as a substring.
	// Instead of substring-scanning the whole lexicon, only variants
	// whose first word occurs in the text are probed — as a word token
	// or as the letter prefix of a fused token ("vldb2004" probes
	// "vldb"), the two ways a contained variant's leading word
	// realistically surfaces. A variant fused mid-token ("xvldb") is
	// the one substring match the old scan found that this probe does
	// not.
	// Each distinct key is probed once: the probe is a pure function
	// of (lower, key), and degenerate inputs repeat the same token
	// thousands of times — re-probing would rescan the whole string
	// per occurrence.
	bestVenueLen := 0
	probed := map[string]bool{}
	probe := func(key string) {
		if key == "" || probed[key] {
			return
		}
		probed[key] = true
		e.Venue, bestVenueLen = probeVenueKey(lower, key, e.Venue, bestVenueLen)
	}
	for _, t := range e.WordTokens {
		probe(t)
		if p := letterPrefixOf(t); p != t {
			probe(p)
		}
	}

	// Brand: first lexicon hit in token order; two-token brands first.
	for i := 0; i+1 < len(e.Tokens); i++ {
		if !lex.brandPairFirst[e.Tokens[i]] {
			continue // skip the concatenation for impossible pairs
		}
		pair := e.Tokens[i] + " " + e.Tokens[i+1]
		if lex.brandPairs[pair] {
			e.Brand = pair
			break
		}
	}
	if e.Brand == "" {
		for _, t := range e.Tokens {
			if lex.brands[t] {
				e.Brand = t
				break
			}
		}
	}

	// Editions: phrase scan over the raw string.
	for _, ed := range editionPhrases {
		if strings.Contains(lower, ed) {
			e.Editions = append(e.Editions, ed)
		}
	}

	consumed := make([]bool, len(e.Tokens))
	for i, t := range e.Tokens {
		switch {
		case isPriceToken(t):
			if v, err := strconv.ParseFloat(t, 64); err == nil {
				e.Price, e.HasPrice = v, true
				consumed[i] = true
			}
		case isVariantToken(t):
			// Variant tokens stay in the title as well: they carry
			// surface similarity in addition to identity evidence.
			if len(e.Variants) < maxEvidence {
				e.Variants = append(e.Variants, t)
			}
		case colorWords[t]:
			if len(e.Colors) < maxEvidence {
				e.Colors = append(e.Colors, t)
			}
		case isYearToken(t):
			if y, err := strconv.Atoi(t); err == nil {
				e.Year, e.HasYear = y, true
				consumed[i] = true
			}
		case isVersionToken(t):
			if len(e.Versions) < maxEvidence {
				e.Versions = append(e.Versions, strings.TrimPrefix(t, "v"))
				consumed[i] = true
			}
		case isModelToken(t):
			if len(e.Models) < maxEvidence {
				e.Models = append(e.Models, normalizeModel(t))
				consumed[i] = true
			}
		}
	}

	// Authors: known surnames (optionally preceded by a first name or
	// an initial). Only meaningful for publication-like strings.
	for i, t := range e.Tokens {
		if lex.surnames[t] && !consumed[i] && len(e.Authors) < maxEvidence {
			e.Authors = append(e.Authors, t)
			consumed[i] = true
			if i > 0 && !consumed[i-1] && (lex.firstnames[e.Tokens[i-1]] || len(e.Tokens[i-1]) == 1) {
				consumed[i-1] = true
			}
		}
	}

	for i, t := range e.Tokens {
		if !consumed[i] {
			e.TitleTokens = append(e.TitleTokens, t)
		}
	}

	// Domain guess: publication signals are venue, year and multiple
	// author names; product signals are brand, models and price.
	pubScore := 0
	if e.Venue != "" {
		pubScore += 2
	}
	if e.HasYear {
		pubScore++
	}
	pubScore += len(e.Authors)
	prodScore := 0
	if e.Brand != "" {
		prodScore += 2
	}
	if e.HasPrice {
		prodScore++
	}
	prodScore += len(e.Models)
	if pubScore > prodScore {
		e.Domain = entity.Publication
	} else {
		e.Domain = entity.Product
	}
	return e
}

// maxEvidence caps each extracted evidence list. No real description
// carries dozens of model numbers or authors; past the cap the extra
// tokens stay in the title, and the downstream pairwise comparisons
// (bestModelSim, MongeElkan) stay bounded on dirty-data blobs.
const maxEvidence = 32

// isPriceToken recognizes decimal price strings like "348.00".
func isPriceToken(t string) bool {
	dot := strings.IndexByte(t, '.')
	if dot <= 0 || dot == len(t)-1 {
		return false
	}
	if len(t)-dot-1 != 2 {
		return false
	}
	return tokenize.IsNumeric(t)
}

// isYearToken recognizes plausible publication years 1950-2029.
func isYearToken(t string) bool {
	if len(t) != 4 {
		return false
	}
	y, err := strconv.Atoi(t)
	if err != nil {
		return false
	}
	return y >= 1950 && y < 2030
}

// isVersionToken recognizes software version strings: "5.0", "5.5",
// "v5.5", single digits ("7"), and zero-prefixed two-digit year
// shorthands ("07" for 2007). Bare two-digit numbers such as "30" are
// deliberately not versions — they are quantities.
func isVersionToken(t string) bool {
	t = strings.TrimPrefix(t, "v")
	if len(t) == 2 && t[0] == '0' && tokenize.IsNumeric(t) && !strings.Contains(t, ".") {
		return true
	}
	if !strings.Contains(t, ".") {
		// Single digit version like "5".
		return len(t) == 1 && tokenize.IsNumeric(t)
	}
	if isPriceToken(t) {
		return false
	}
	return tokenize.IsNumeric(t)
}

// isModelToken recognizes model-number-like tokens: mixed letters and
// digits of length >= 3 ("dsc-120b", "wh1000xm4") that are not
// quantity variants ("8gb").
func isModelToken(t string) bool {
	return len(t) >= 3 && tokenize.HasDigit(t) && tokenize.HasLetter(t) && !isVariantToken(t)
}

// variantUnits are the measurement/quantity suffixes that mark a
// digit-bearing token as a product variant rather than a model number.
var variantUnits = map[string]bool{
	"gb": true, "tb": true, "mb": true, "kb": true,
	"inch": true, "in": true, "ft": true, "mm": true, "cm": true,
	"pack": true, "user": true, "users": true, "bit": true,
	"hz": true, "ghz": true, "mhz": true, "p": true, "i": true,
	"v": true, "w": true, "mp": true, "x": true, "xl": true,
	"quart": true, "qt": true, "oz": true, "lb": true, "mah": true,
	"hour": true, "hours": true, "speed": true,
}

// isVariantToken recognizes quantity variants: leading digits (and
// punctuation) followed by a known unit, e.g. "8gb", "19-inch",
// "1/2-inch", "3-user", "1080p".
func isVariantToken(t string) bool {
	i := 0
	for i < len(t) && (t[i] >= '0' && t[i] <= '9' || t[i] == '.' || t[i] == '/' || t[i] == '-') {
		i++
	}
	if i == 0 || i == len(t) {
		return false
	}
	return variantUnits[t[i:]]
}

// colorWords is the color-variant lexicon.
var colorWords = map[string]bool{
	"black": true, "white": true, "silver": true, "red": true,
	"blue": true, "gray": true, "grey": true, "green": true,
	"pink": true, "purple": true, "yellow": true, "orange": true,
}

// editionPhrases is the software-edition lexicon; phrases are matched
// against the lower-cased raw string.
var editionPhrases = []string{
	"upgrade", "full version", "academic", "student edition", "oem",
	"small box", "retail box", "3-user", "single user",
}

// probeVenueKey checks the venue variants filed under key against the
// lower-cased text, keeping whichever of (canon, bestLen) and the
// longest contained variant wins.
func probeVenueKey(lower, key, canon string, bestLen int) (string, int) {
	for _, v := range lex.venuesByTok[key] {
		if len(v.text) <= bestLen {
			return canon, bestLen // lists are sorted longest first
		}
		if strings.Contains(lower, v.text) {
			return v.canon, len(v.text)
		}
	}
	return canon, bestLen
}

// letterPrefixOf returns the leading run of letters of a token
// ("vldb2004" -> "vldb"), or "" if the token starts with a digit.
func letterPrefixOf(t string) string {
	for i, r := range t {
		if !unicode.IsLetter(r) {
			return t[:i]
		}
	}
	return t
}

// normalizeModel strips separators from a model token so that
// "dsc-120b" and "dsc120b" compare equal.
func normalizeModel(t string) string {
	return strings.Map(func(r rune) rune {
		if r == '-' || r == '/' || r == '.' {
			return -1
		}
		return r
	}, t)
}
