package features

import "math"

// Weights parameterizes a linear matcher over the unified feature
// vector: score = Σ_i present_i · w_i · (v_i − center_i) + bias.
// Positive scores indicate a match.
//
// The simulated LLMs, the fine-tuning adapters and the calibration
// oracle all share this scoring form; they differ in where the
// weights come from (innate world knowledge, gradient fitting, or the
// ideal reference below).
type Weights struct {
	W      Vector
	Center Vector
	Bias   float64
}

// Score computes the linear matching score of a feature vector under
// the weights, skipping missing features.
func (ws Weights) Score(v Vector, p Presence) float64 {
	s := ws.Bias
	for i := 0; i < int(NumFeatures); i++ {
		if p[i] {
			s += ws.W[i] * (v[i] - ws.Center[i])
		}
	}
	return s
}

// Probability maps a score through the logistic function.
func (ws Weights) Probability(v Vector, p Presence) float64 {
	return Sigmoid(ws.Score(v, p))
}

// Sigmoid is the standard logistic function.
func Sigmoid(x float64) float64 {
	return 1 / (1 + math.Exp(-x))
}

// Ideal returns the reference weights of a well-calibrated matcher.
// They encode the domain knowledge a strong LLM applies: model
// numbers and versions decide product identity, titles support it,
// prices are weak evidence; author lists and titles decide
// publication identity, venues and years separate extended versions.
func Ideal() Weights {
	var w, c Vector
	w[TitleGenJaccard], c[TitleGenJaccard] = 2.6, 0.62
	w[TitleCosine], c[TitleCosine] = 1.0, 0.55
	w[TitleContainment], c[TitleContainment] = 0.8, 0.62
	w[BrandMatch], c[BrandMatch] = 0.6, 0.85
	w[ModelMatch], c[ModelMatch] = 6.5, 0.80
	w[PriceMatch], c[PriceMatch] = 1.4, 0.76
	w[VersionMatch], c[VersionMatch] = 5.0, 0.76
	w[VariantMatch], c[VariantMatch] = 2.2, 0.72
	w[EditionMatch], c[EditionMatch] = 2.6, 0.72
	w[AuthorMatch], c[AuthorMatch] = 2.2, 0.84
	w[VenueMatch], c[VenueMatch] = 2.2, 0.74
	w[YearMatch], c[YearMatch] = 2.6, 0.84
	w[OverallJaccard], c[OverallJaccard] = 1.2, 0.48
	return Weights{W: w, Center: c, Bias: -0.1}
}

// TitleOnly returns degenerate weights that rely almost exclusively on
// title surface similarity — the naive strategy weak models fall back
// to. Interpolating between TitleOnly and Ideal models answer quality.
func TitleOnly() Weights {
	var w, c Vector
	w[TitleGenJaccard], c[TitleGenJaccard] = 5.0, 0.55
	w[TitleCosine], c[TitleCosine] = 2.0, 0.50
	w[OverallJaccard], c[OverallJaccard] = 2.5, 0.45
	w[BrandMatch], c[BrandMatch] = 0.4, 0.85
	w[PriceMatch], c[PriceMatch] = 0.5, 0.78
	return Weights{W: w, Center: c, Bias: 0.3}
}

// Blend linearly interpolates between two weight sets: t = 0 yields a,
// t = 1 yields b.
func Blend(a, b Weights, t float64) Weights {
	var out Weights
	for i := 0; i < int(NumFeatures); i++ {
		out.W[i] = a.W[i]*(1-t) + b.W[i]*t
		out.Center[i] = a.Center[i]*(1-t) + b.Center[i]*t
	}
	out.Bias = a.Bias*(1-t) + b.Bias*t
	return out
}
