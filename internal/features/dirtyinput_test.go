package features

import (
	"strings"
	"testing"

	"llm4em/internal/tokenize"
)

// TestExtractDirtyInputBounded is the regression test for the
// superlinear blowups the fuzzer surfaced: repeated venue tokens made
// the venue probe rescan the full string per occurrence, a single
// megabyte-sized token made Jaro quadratic, and thousands of repeated
// tokens exploded the all-pairs GeneralizedJaccard. All of these now
// complete within the ordinary test timeout instead of hanging for
// minutes.
func TestExtractDirtyInputBounded(t *testing.T) {
	inputs := map[string]string{
		"giant-token":      strings.Repeat("a", 1<<20),
		"repeated-venue":   strings.Repeat("vldb ", 20000),
		"repeated-unicode": strings.Repeat("é¤Ω≈ç√ ", 20000),
		"many-models":      strings.Repeat("dsc120b x9000 ", 5000),
		"many-surnames":    strings.Repeat("smith jones garcia ", 5000),
	}
	for name, s := range inputs {
		e := ExtractText(s)
		if len(e.Models) > maxEvidence || len(e.Authors) > maxEvidence ||
			len(e.Versions) > maxEvidence || len(e.Variants) > maxEvidence {
			t.Errorf("%s: evidence lists exceed the cap: %d models, %d authors",
				name, len(e.Models), len(e.Authors))
		}
		v, pres := PairFeaturesText(s, s)
		p := Ideal().Probability(v, pres)
		if p < 0 || p > 1 {
			t.Errorf("%s: self-pair probability %v out of range", name, p)
		}
	}
}

// TestEstimateTokensUnicodeEdges is the regression test for the
// byte-indexed edge scan EstimateTokens used to have: multi-byte
// punctuation at word edges was misread as word content because only
// the first byte of the rune was inspected.
func TestEstimateTokensUnicodeEdges(t *testing.T) {
	cases := []struct {
		in   string
		want int
	}{
		{"«word»", 3}, // leading + trailing guillemet, one word
		{"“hi”", 3},   // curly quotes
		{"word", 1},
		{"—", 1}, // em-dash alone: one punctuation token
	}
	for _, c := range cases {
		if got := tokenize.EstimateTokens(c.in); got != c.want {
			t.Errorf("EstimateTokens(%q) = %d, want %d", c.in, got, c.want)
		}
	}
}
