package features

import "testing"

var benchStrings = [][2]string{
	{"Sony Cybershot DSC-120B digital camera black 348.00", "sony dsc120b camera black 351.99"},
	{"Michael Stonebraker, David DeWitt adaptive indexing SIGMOD Conference 1997", "M. Stonebraker adaptive indexing sigmod 1997"},
	{"adobe photoshop elements 5.0 full version 79.99", "photoshop elements 5 upgrade 49.99"},
}

// BenchmarkExtractText measures the entity-reading substrate.
func BenchmarkExtractText(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_ = ExtractText(benchStrings[i%len(benchStrings)][0])
	}
}

// BenchmarkPairFeatures measures the full pair-feature computation.
func BenchmarkPairFeatures(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		s := benchStrings[i%len(benchStrings)]
		_, _ = PairFeaturesText(s[0], s[1])
	}
}
