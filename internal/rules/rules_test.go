package rules

import (
	"strings"
	"testing"

	"llm4em/internal/datasets"
	"llm4em/internal/entity"
	"llm4em/internal/icl"
	"llm4em/internal/llm"
)

func TestHandwrittenRuleSets(t *testing.T) {
	prod := Handwritten(entity.Product)
	if len(prod) < 4 {
		t.Fatalf("product rules too few: %d", len(prod))
	}
	joined := strings.ToLower(strings.Join(prod, " "))
	for _, want := range []string{"brand", "model", "price"} {
		if !strings.Contains(joined, want) {
			t.Errorf("product rules missing %q", want)
		}
	}
	pub := Handwritten(entity.Publication)
	joined = strings.ToLower(strings.Join(pub, " "))
	for _, want := range []string{"title", "author", "year", "venue"} {
		if !strings.Contains(joined, want) {
			t.Errorf("publication rules missing %q", want)
		}
	}
}

func TestParseNumbered(t *testing.T) {
	reply := "Here are the rules:\n1. First rule.\n2. Second rule.\nnot a rule\n10. Tenth rule."
	got := ParseNumbered(reply)
	if len(got) != 3 || got[0] != "First rule." || got[2] != "Tenth rule." {
		t.Errorf("ParseNumbered = %v", got)
	}
	if got := ParseNumbered("no rules here"); got != nil {
		t.Errorf("expected nil, got %v", got)
	}
}

func TestLearnFromHandpicked(t *testing.T) {
	ds := datasets.MustLoad("wdc")
	examples := icl.CurateHandpicked(ds.Train, 10)
	client := llm.MustNew(llm.GPT4)
	learned, err := Learn(client, entity.Product, examples)
	if err != nil {
		t.Fatal(err)
	}
	if len(learned) < 2 {
		t.Fatalf("learned only %d rules: %v", len(learned), learned)
	}
	joined := strings.ToLower(strings.Join(learned, " "))
	if !strings.Contains(joined, "model") && !strings.Contains(joined, "identifier") {
		t.Errorf("learned product rules should mention identifiers: %v", learned)
	}
	// Determinism.
	learned2, err := Learn(client, entity.Product, examples)
	if err != nil {
		t.Fatal(err)
	}
	if len(learned) != len(learned2) {
		t.Error("rule learning not deterministic")
	}
}

func TestLearnPublicationRules(t *testing.T) {
	ds := datasets.MustLoad("ds")
	examples := icl.CurateHandpicked(ds.Train, 10)
	learned, err := Learn(llm.MustNew(llm.GPT4), entity.Publication, examples)
	if err != nil {
		t.Fatal(err)
	}
	joined := strings.ToLower(strings.Join(learned, " "))
	if !strings.Contains(joined, "author") && !strings.Contains(joined, "year") && !strings.Contains(joined, "venue") {
		t.Errorf("learned publication rules lack bibliographic attributes: %v", learned)
	}
}

func TestBuildLearnPromptFormat(t *testing.T) {
	ds := datasets.MustLoad("wdc")
	examples := icl.CurateHandpicked(ds.Train, 4)
	p := BuildLearnPrompt(entity.Product, examples)
	if !strings.HasPrefix(p, LearnRequestPrefix) {
		t.Error("learn prompt must start with the recognized prefix")
	}
	if strings.Count(p, "Answer:") != 4 {
		t.Errorf("learn prompt should contain 4 labelled examples:\n%s", p)
	}
}
