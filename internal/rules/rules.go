// Package rules provides the textual matching rules of Section 4.2:
// handwritten rule sets per domain and rule learning, where an LLM is
// shown the hand-picked demonstration pairs and asked to derive
// matching rules from them.
package rules

import (
	"fmt"
	"strings"

	"llm4em/internal/entity"
	"llm4em/internal/llm"
	"llm4em/internal/prompt"
)

// Handwritten returns the handwritten rule set for a domain. The
// rules define which attributes need to match and inform the model of
// potential heterogeneity in these attributes (Figure 3).
func Handwritten(domain entity.Domain) []string {
	if domain == entity.Publication {
		return []string{
			"The titles of the two publications must refer to the same work; allow for small differences in wording, word order, or truncation.",
			"The author lists must be consistent; first names may be abbreviated to initials and trailing authors may be missing in one source.",
			"The publication years must match; a difference of more than one year indicates different publications.",
			"The venue names may differ in surface form (abbreviations, full names); however, the conference and the journal version of a work are different publications.",
		}
	}
	return []string{
		"The brands of the two products must match; allow for slight differences in spelling or formatting.",
		"The model numbers must refer to the same model; ignore differences in dashes, spacing, or capitalization.",
		"Capacity, size, and color variants must be identical for the products to match.",
		"Version and edition information must be consistent; an upgrade or academic edition is a different product than the full version.",
		"Prices may differ moderately between vendors; a large price difference indicates different products.",
		"Ignore marketing words such as 'new', 'original', or seller decorations when comparing titles.",
	}
}

// LearnRequestPrefix marks rule-learning prompts; the simulated
// models recognize it.
const LearnRequestPrefix = "Derive a list of matching rules from the following examples"

// BuildLearnPrompt renders the rule-learning prompt from labelled
// example pairs (the hand-picked demonstration set, per the paper).
func BuildLearnPrompt(domain entity.Domain, examples []entity.Pair) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s of matching and non-matching %s. ", LearnRequestPrefix, domain.Noun())
	b.WriteString("Each rule should state which attributes need to match and mention possible heterogeneity in their values, such as differences in surface form or value formats. Present the rules as a numbered list.\n")
	for _, ex := range examples {
		fmt.Fprintf(&b, "Entity 1: '%s'\nEntity 2: '%s'\n", ex.A.Serialize(), ex.B.Serialize())
		if ex.Match {
			b.WriteString("Answer: Yes\n")
		} else {
			b.WriteString("Answer: No\n")
		}
	}
	return b.String()
}

// Learn asks the client (GPT-4 in the paper) to generate matching
// rules from the given labelled examples and parses the numbered
// rules out of the reply.
func Learn(client llm.Client, domain entity.Domain, examples []entity.Pair) ([]string, error) {
	p := BuildLearnPrompt(domain, examples)
	resp, err := client.Chat([]llm.Message{{Role: llm.User, Content: p}})
	if err != nil {
		return nil, fmt.Errorf("rules: learning chat: %w", err)
	}
	learned := ParseNumbered(resp.Content)
	if len(learned) == 0 {
		return nil, fmt.Errorf("rules: no rules found in model reply %q", resp.Content)
	}
	return learned, nil
}

// ParseNumbered extracts "N. text" lines from a model reply.
func ParseNumbered(reply string) []string {
	var out []string
	for _, line := range strings.Split(reply, "\n") {
		trimmed := strings.TrimSpace(line)
		i := 0
		for i < len(trimmed) && trimmed[i] >= '0' && trimmed[i] <= '9' {
			i++
		}
		if i == 0 || i >= len(trimmed) || trimmed[i] != '.' {
			continue
		}
		out = append(out, strings.TrimSpace(trimmed[i+1:]))
	}
	return out
}

// Prompt is a convenience that renders a rules-augmented matching
// prompt for documentation and examples (Figure 3).
func Prompt(design prompt.Design, domain entity.Domain, ruleSet []string, pair entity.Pair) string {
	return prompt.Spec{Design: design, Domain: domain, Rules: ruleSet}.Build(pair)
}
