// Package cost implements the cost analysis of Section 5: the
// August-2024 OpenAI price snapshot the paper reports, per-prompt
// cost computation from token counts, and the derived cost ratios of
// Table 8.
package cost

// Pricing is the price of one million prompt/completion tokens in
// USD.
type Pricing struct {
	PromptPerM     float64
	CompletionPerM float64
}

// Fine-tuning price components for hosted fine-tunable models (USD
// per million tokens).
type FineTunePricing struct {
	TrainingPerM float64
	Inference    Pricing
}

// prices is the paper's August-2024 snapshot (Section 5): $0.15/$0.60
// for GPT-mini, $30.00/$60.00 for GPT-4, and $2.50/$10.00 for GPT-4o.
var prices = map[string]Pricing{
	"GPT-mini": {PromptPerM: 0.15, CompletionPerM: 0.60},
	"GPT-4":    {PromptPerM: 30.00, CompletionPerM: 60.00},
	"GPT-4o":   {PromptPerM: 2.50, CompletionPerM: 10.00},
}

// ftPrices holds fine-tuning prices for the hosted models that
// support it.
var ftPrices = map[string]FineTunePricing{
	"GPT-mini": {
		TrainingPerM: 3.00,
		Inference:    Pricing{PromptPerM: 0.30, CompletionPerM: 1.20},
	},
}

// For returns the pricing of a hosted model.
func For(model string) (Pricing, bool) {
	p, ok := prices[model]
	return p, ok
}

// ForFineTuned returns the fine-tuning pricing of a hosted model.
func ForFineTuned(model string) (FineTunePricing, bool) {
	p, ok := ftPrices[model]
	return p, ok
}

// PerPromptCents returns the cost of one request in US cents given
// mean token counts.
func PerPromptCents(p Pricing, promptTokens, completionTokens float64) float64 {
	usd := promptTokens/1e6*p.PromptPerM + completionTokens/1e6*p.CompletionPerM
	return usd * 100
}

// TrainingPerExampleCents returns the training cost per example in US
// cents: tokens per example times epochs at the training price.
func TrainingPerExampleCents(ft FineTunePricing, tokensPerExample float64, epochs int) float64 {
	return tokensPerExample * float64(epochs) / 1e6 * ft.TrainingPerM * 100
}
