package cost

import (
	"math"
	"testing"
)

func TestPaperPriceSnapshot(t *testing.T) {
	tests := []struct {
		model         string
		prompt, compl float64
	}{
		{"GPT-mini", 0.15, 0.60},
		{"GPT-4", 30.00, 60.00},
		{"GPT-4o", 2.50, 10.00},
	}
	for _, tt := range tests {
		p, ok := For(tt.model)
		if !ok {
			t.Fatalf("no pricing for %s", tt.model)
		}
		if p.PromptPerM != tt.prompt || p.CompletionPerM != tt.compl {
			t.Errorf("%s pricing = %+v", tt.model, p)
		}
	}
	if _, ok := For("Llama2"); ok {
		t.Error("open-source models have no hosted pricing")
	}
}

func TestPerPromptCentsMatchesPaperZeroShot(t *testing.T) {
	// Paper Table 8, zero-shot GPT-4: 77 prompt + 40 completion tokens
	// cost 0.474 cents.
	p, _ := For("GPT-4")
	got := PerPromptCents(p, 77, 40)
	if math.Abs(got-0.471) > 0.02 {
		t.Errorf("GPT-4 zero-shot cost = %.4f cents, want ~0.471", got)
	}
	// GPT-mini: 76 prompt + 89 completion = 0.006 cents.
	pm, _ := For("GPT-mini")
	if got := PerPromptCents(pm, 76, 89); math.Abs(got-0.0065) > 0.002 {
		t.Errorf("GPT-mini zero-shot cost = %.4f cents, want ~0.0065", got)
	}
}

func TestFineTunePricing(t *testing.T) {
	ft, ok := ForFineTuned("GPT-mini")
	if !ok {
		t.Fatal("GPT-mini should have fine-tune pricing")
	}
	if ft.Inference.PromptPerM <= 0 || ft.TrainingPerM <= 0 {
		t.Errorf("bad fine-tune pricing %+v", ft)
	}
	if _, ok := ForFineTuned("GPT-4"); ok {
		t.Error("GPT-4 was not fine-tunable in the study")
	}
	c := TrainingPerExampleCents(ft, 97, 10)
	if c <= 0 || c > 1 {
		t.Errorf("training cost per example = %.4f cents", c)
	}
}
