package explain

import (
	"strings"
	"testing"

	"llm4em/internal/datasets"
	"llm4em/internal/entity"
	"llm4em/internal/llm"
	"llm4em/internal/prompt"
)

func design(t *testing.T) prompt.Design {
	t.Helper()
	d, err := prompt.DesignByName("domain-complex-force")
	if err != nil {
		t.Fatal(err)
	}
	return d
}

func TestParse(t *testing.T) {
	text := "The decision was based on:\nbrand | 0.62 | 0.98\nmodel | -0.81 | 0.30\nnot a row\nprice | bad | 0.5\n"
	attrs := Parse(text)
	if len(attrs) != 2 {
		t.Fatalf("parsed %d attrs, want 2: %+v", len(attrs), attrs)
	}
	if attrs[0].Name != "brand" || attrs[0].Importance != 0.62 || attrs[0].Similarity != 0.98 {
		t.Errorf("attrs[0] = %+v", attrs[0])
	}
	if attrs[1].Importance != -0.81 {
		t.Errorf("attrs[1] = %+v", attrs[1])
	}
}

func TestGenerateRoundTrip(t *testing.T) {
	ds := datasets.MustLoad("wa")
	client := llm.MustNew(llm.GPT4)
	e, err := Generate(client, design(t), ds.Schema.Domain, ds.Test[0])
	if err != nil {
		t.Fatal(err)
	}
	if len(e.Attributes) < 3 {
		t.Fatalf("explanation has %d attributes:\n%s", len(e.Attributes), e.Raw)
	}
	for _, a := range e.Attributes {
		if a.Importance < -1 || a.Importance > 1 {
			t.Errorf("importance %v of %s out of range", a.Importance, a.Name)
		}
		if a.Similarity < 0 || a.Similarity > 1 {
			t.Errorf("similarity %v of %s out of range", a.Similarity, a.Name)
		}
	}
}

func TestExplanationConsistentWithDecision(t *testing.T) {
	// The sum of importances should lean toward the predicted label:
	// positive for predicted matches, negative for non-matches, in
	// the clear majority of cases.
	ds := datasets.MustLoad("wa")
	client := llm.MustNew(llm.GPT4)
	agree, total := 0, 0
	for _, p := range ds.Test[:60] {
		e, err := Generate(client, design(t), ds.Schema.Domain, p)
		if err != nil {
			t.Fatal(err)
		}
		sum := 0.0
		for _, a := range e.Attributes {
			sum += a.Importance
		}
		total++
		if (sum > 0) == e.Predicted {
			agree++
		}
	}
	if agree < total*2/3 {
		t.Errorf("importance sums agree with decisions in only %d/%d cases", agree, total)
	}
}

func TestAggregate(t *testing.T) {
	mk := func(pred bool, attrs ...Attribute) Explanation {
		return Explanation{Predicted: pred, Attributes: attrs}
	}
	exps := []Explanation{
		mk(true, Attribute{Name: "title", Importance: 0.8}, Attribute{Name: "price", Importance: 0.1}),
		mk(true, Attribute{Name: "title", Importance: 0.6}),
		mk(false, Attribute{Name: "title", Importance: -0.5}),
	}
	rows := Aggregate(exps)
	if len(rows) != 2 {
		t.Fatalf("rows = %+v", rows)
	}
	title := rows[0]
	if title.Attribute != "title" {
		t.Fatalf("first row should be title (most frequent): %+v", rows)
	}
	if title.MatchFreq != 1.0 || title.NonFreq != 1.0 {
		t.Errorf("title freq = %v/%v", title.MatchFreq, title.NonFreq)
	}
	if title.MatchMean != 0.7 || title.NonMean != -0.5 {
		t.Errorf("title means = %v/%v", title.MatchMean, title.NonMean)
	}
	price := rows[1]
	if price.MatchFreq != 0.5 || price.NonFreq != 0 {
		t.Errorf("price freq = %v/%v", price.MatchFreq, price.NonFreq)
	}
}

func TestAggregateTable10Shape(t *testing.T) {
	// On Walmart-Amazon the aggregation must reproduce Table 10's
	// qualitative structure: model is highly important for matches and
	// strongly negative for non-matches; price is frequent but weak.
	ds := datasets.MustLoad("wa")
	client := llm.MustNew(llm.GPT4)
	exps, err := GenerateAll(client, design(t), ds.Schema.Domain, ds.Test[:300])
	if err != nil {
		t.Fatal(err)
	}
	rows := Aggregate(exps)
	byName := map[string]AggregateRow{}
	for _, r := range rows {
		byName[r.Attribute] = r
	}
	model, ok := byName["model"]
	if !ok {
		t.Fatal("model attribute missing from aggregation")
	}
	if model.MatchMean < 0.3 {
		t.Errorf("model match importance %v, want strongly positive", model.MatchMean)
	}
	if model.NonMean > -0.3 {
		t.Errorf("model non-match importance %v, want strongly negative", model.NonMean)
	}
	price, ok := byName["price"]
	if !ok {
		t.Fatal("price attribute missing")
	}
	if abs(price.MatchMean) > abs(model.MatchMean) {
		t.Error("price should matter less than model for matches")
	}
}

func abs(x float64) float64 {
	if x < 0 {
		return -x
	}
	return x
}

func TestCorrelationWithStringSims(t *testing.T) {
	ds := datasets.MustLoad("ds")
	client := llm.MustNew(llm.GPT4)
	exps, err := GenerateAll(client, design(t), ds.Schema.Domain, ds.Test[:250])
	if err != nil {
		t.Fatal(err)
	}
	corr := CorrelationWithStringSims(exps)
	if corr.Samples < 200 {
		t.Fatalf("only %d correlation samples", corr.Samples)
	}
	// Section 6.1: strong positive correlation (paper: 0.75-0.85
	// Cosine, 0.73-0.83 Generalized Jaccard).
	if corr.Cosine < 0.55 {
		t.Errorf("Cosine correlation %v too low", corr.Cosine)
	}
	if corr.GeneralizedJaccard < 0.5 {
		t.Errorf("Generalized Jaccard correlation %v too low", corr.GeneralizedJaccard)
	}
}

func TestAttributeValueRecovery(t *testing.T) {
	s := entity.Schema{Domain: entity.Publication, Attributes: []string{"authors", "title", "venue", "year"}}
	rec := s.NewRecord("x", "Michael Stonebraker", "adaptive indexing", "SIGMOD Conference", "1997")
	e := Explanation{Pair: entity.Pair{A: rec, B: rec}}
	_ = e
	// attributeValue is internal; exercise it through correlation with
	// a synthetic explanation.
	exp := Explanation{
		Pair: entity.Pair{A: rec, B: rec},
		Attributes: []Attribute{
			{Name: "authors", Similarity: 1},
			{Name: "year", Similarity: 1},
			{Name: "conference", Similarity: 1},
			{Name: "nonexistent", Similarity: 1},
		},
	}
	corr := CorrelationWithStringSims([]Explanation{exp})
	if corr.Samples != 3 {
		t.Errorf("samples = %d, want 3 (unknown attribute skipped)", corr.Samples)
	}
}

func TestGenerateAllLength(t *testing.T) {
	ds := datasets.MustLoad("wa")
	client := llm.MustNew(llm.GPT4)
	exps, err := GenerateAll(client, design(t), ds.Schema.Domain, ds.Test[:10])
	if err != nil {
		t.Fatal(err)
	}
	if len(exps) != 10 {
		t.Fatalf("generated %d explanations, want 10", len(exps))
	}
	for _, e := range exps {
		if !strings.Contains(e.Raw, "|") {
			t.Error("raw explanation lacks structured rows")
		}
	}
}
