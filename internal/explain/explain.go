// Package explain implements the structured-explanation pipeline of
// Section 6: a second-turn prompt asks the model to explain its
// matching decision as attribute | importance | similarity rows
// (Figure 4); the rows are parsed, validated against string-similarity
// measures (Pearson correlation with Cosine and Generalized Jaccard),
// and aggregated into global attribute-importance statistics
// (Table 10).
package explain

import (
	"fmt"
	"sort"
	"strconv"
	"strings"

	"llm4em/internal/core"
	"llm4em/internal/entity"
	"llm4em/internal/eval"
	"llm4em/internal/features"
	"llm4em/internal/llm"
	"llm4em/internal/prompt"
	"llm4em/internal/textsim"
)

// Attribute is one row of a structured explanation.
type Attribute struct {
	Name       string
	Importance float64 // in [-1, 1]; sign indicates non-match/match contribution
	Similarity float64 // in [0, 1]
}

// Explanation is a parsed structured explanation of one decision.
type Explanation struct {
	// Pair is the explained pair and Predicted the model's decision.
	Pair      entity.Pair
	Predicted bool
	// Attributes holds the parsed rows.
	Attributes []Attribute
	// Raw is the model's full explanation text.
	Raw string
}

// Generate runs the two-turn conversation of Section 6.1 for one
// pair: the matching prompt, the model's answer, then the structured
// explanation request.
func Generate(client llm.Client, design prompt.Design, domain entity.Domain, pair entity.Pair) (Explanation, error) {
	spec := prompt.Spec{Design: design, Domain: domain}
	matchPrompt := spec.Build(pair)
	first, err := client.Chat([]llm.Message{{Role: llm.User, Content: matchPrompt}})
	if err != nil {
		return Explanation{}, fmt.Errorf("explain: matching turn for %s: %w", pair.ID, err)
	}
	conv := []llm.Message{
		{Role: llm.User, Content: matchPrompt},
		{Role: llm.Assistant, Content: first.Content},
		{Role: llm.User, Content: prompt.ExplanationRequest},
	}
	second, err := client.Chat(conv)
	if err != nil {
		return Explanation{}, fmt.Errorf("explain: explanation turn for %s: %w", pair.ID, err)
	}
	return Explanation{
		Pair:       pair,
		Predicted:  core.ParseAnswer(first.Content),
		Attributes: Parse(second.Content),
		Raw:        second.Content,
	}, nil
}

// GenerateAll produces explanations for every pair.
func GenerateAll(client llm.Client, design prompt.Design, domain entity.Domain, pairs []entity.Pair) ([]Explanation, error) {
	out := make([]Explanation, 0, len(pairs))
	for _, p := range pairs {
		e, err := Generate(client, design, domain, p)
		if err != nil {
			return nil, err
		}
		out = append(out, e)
	}
	return out, nil
}

// Parse extracts the attribute rows of a structured explanation.
// Rows have the form "attribute | importance | similarity"; malformed
// lines are skipped.
func Parse(text string) []Attribute {
	var out []Attribute
	for _, line := range strings.Split(text, "\n") {
		parts := strings.Split(strings.TrimSpace(line), "|")
		if len(parts) != 3 {
			continue
		}
		imp, err1 := strconv.ParseFloat(strings.TrimSpace(parts[1]), 64)
		sim, err2 := strconv.ParseFloat(strings.TrimSpace(parts[2]), 64)
		if err1 != nil || err2 != nil {
			continue
		}
		out = append(out, Attribute{
			Name:       strings.TrimSpace(parts[0]),
			Importance: imp,
			Similarity: sim,
		})
	}
	return out
}

// AggregateRow is one row of Table 10: the usage frequency and mean
// importance (with standard deviation) of an attribute, separately
// for predicted matches and non-matches.
type AggregateRow struct {
	Attribute string
	// Matches side.
	MatchFreq   float64
	MatchMean   float64
	MatchStdDev float64
	// Non-matches side.
	NonFreq   float64
	NonMean   float64
	NonStdDev float64
}

// Aggregate parses no text — it tallies already-parsed explanations
// into per-attribute global statistics, sorted by match-side
// frequency (Table 10's presentation).
func Aggregate(explanations []Explanation) []AggregateRow {
	type bucket struct{ match, non []float64 }
	buckets := map[string]*bucket{}
	var nMatch, nNon int
	for _, e := range explanations {
		if e.Predicted {
			nMatch++
		} else {
			nNon++
		}
		for _, a := range e.Attributes {
			b := buckets[a.Name]
			if b == nil {
				b = &bucket{}
				buckets[a.Name] = b
			}
			if e.Predicted {
				b.match = append(b.match, a.Importance)
			} else {
				b.non = append(b.non, a.Importance)
			}
		}
	}
	rows := make([]AggregateRow, 0, len(buckets))
	for name, b := range buckets {
		row := AggregateRow{Attribute: name}
		if nMatch > 0 {
			row.MatchFreq = float64(len(b.match)) / float64(nMatch)
		}
		row.MatchMean = eval.Mean(b.match)
		row.MatchStdDev = eval.StdDev(b.match)
		if nNon > 0 {
			row.NonFreq = float64(len(b.non)) / float64(nNon)
		}
		row.NonMean = eval.Mean(b.non)
		row.NonStdDev = eval.StdDev(b.non)
		rows = append(rows, row)
	}
	sort.Slice(rows, func(i, j int) bool {
		if rows[i].MatchFreq != rows[j].MatchFreq {
			return rows[i].MatchFreq > rows[j].MatchFreq
		}
		return rows[i].Attribute < rows[j].Attribute
	})
	return rows
}

// Correlation holds the Section 6.1 validation of model-generated
// similarity values against classic string-similarity measures.
type Correlation struct {
	Cosine             float64
	GeneralizedJaccard float64
	Samples            int
}

// CorrelationWithStringSims recomputes, for every explanation row,
// the Cosine and Generalized Jaccard similarity of the attribute
// values the row refers to, and returns the Pearson correlation with
// the model-generated similarities.
func CorrelationWithStringSims(explanations []Explanation) Correlation {
	var modelSims, cosines, genJaccards []float64
	for _, e := range explanations {
		extA := features.ExtractText(e.Pair.A.Serialize())
		extB := features.ExtractText(e.Pair.B.Serialize())
		for _, a := range e.Attributes {
			va, okA := attributeValue(extA, a.Name)
			vb, okB := attributeValue(extB, a.Name)
			if !okA || !okB {
				continue
			}
			modelSims = append(modelSims, a.Similarity)
			cosines = append(cosines, textsim.CosineStrings(va, vb))
			genJaccards = append(genJaccards, textsim.GeneralizedJaccardStrings(va, vb))
		}
	}
	return Correlation{
		Cosine:             textsim.Pearson(modelSims, cosines),
		GeneralizedJaccard: textsim.Pearson(modelSims, genJaccards),
		Samples:            len(modelSims),
	}
}

// attributeValue recovers the textual value of a named explanation
// attribute from an extracted entity description.
func attributeValue(e features.Extracted, name string) (string, bool) {
	switch name {
	case "title":
		if len(e.TitleTokens) == 0 {
			return "", false
		}
		return strings.Join(e.TitleTokens, " "), true
	case "brand":
		return e.Brand, e.Brand != ""
	case "model":
		if len(e.Models) == 0 {
			return "", false
		}
		return strings.Join(e.Models, " "), true
	case "price":
		if !e.HasPrice {
			return "", false
		}
		return fmt.Sprintf("%.2f", e.Price), true
	case "version":
		if len(e.Versions) == 0 {
			return "", false
		}
		return strings.Join(e.Versions, " "), true
	case "variant", "capacity", "size", "license":
		if len(e.Variants) == 0 {
			return "", false
		}
		return strings.Join(e.Variants, " "), true
	case "color":
		if len(e.Colors) == 0 {
			return "", false
		}
		return strings.Join(e.Colors, " "), true
	case "edition":
		if len(e.Editions) == 0 {
			return "", false
		}
		return strings.Join(e.Editions, " "), true
	case "authors":
		if len(e.Authors) == 0 {
			return "", false
		}
		return strings.Join(e.Authors, " "), true
	case "conference", "journal", "venue":
		return e.Venue, e.Venue != ""
	case "year":
		if !e.HasYear {
			return "", false
		}
		return fmt.Sprintf("%d", e.Year), true
	default:
		return "", false
	}
}
