package textsim

import (
	"math"
	"testing"
	"testing/quick"

	"llm4em/internal/tokenize"
)

func almost(a, b float64) bool { return math.Abs(a-b) < 1e-9 }

func TestJaccard(t *testing.T) {
	tests := []struct {
		a, b []string
		want float64
	}{
		{[]string{"a", "b"}, []string{"a", "b"}, 1},
		{[]string{"a", "b"}, []string{"c", "d"}, 0},
		{[]string{"a", "b", "c"}, []string{"b", "c", "d"}, 0.5},
		{nil, nil, 1},
		{[]string{"a"}, nil, 0},
	}
	for _, tt := range tests {
		if got := Jaccard(tt.a, tt.b); !almost(got, tt.want) {
			t.Errorf("Jaccard(%v,%v) = %v, want %v", tt.a, tt.b, got, tt.want)
		}
	}
}

func TestJaccardSymmetricBounded(t *testing.T) {
	f := func(a, b string) bool {
		x := JaccardStrings(a, b)
		y := JaccardStrings(b, a)
		return almost(x, y) && x >= 0 && x <= 1
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestOverlapAndContainment(t *testing.T) {
	a := []string{"a", "b"}
	b := []string{"a", "b", "c", "d"}
	if got := Overlap(a, b); !almost(got, 1) {
		t.Errorf("Overlap = %v, want 1", got)
	}
	if got := Containment(a, b); !almost(got, 1) {
		t.Errorf("Containment(a,b) = %v, want 1", got)
	}
	if got := Containment(b, a); !almost(got, 0.5) {
		t.Errorf("Containment(b,a) = %v, want 0.5", got)
	}
	if got := Containment(nil, a); !almost(got, 1) {
		t.Errorf("Containment(nil,a) = %v, want 1", got)
	}
	if got := Overlap(nil, a); !almost(got, 0) {
		t.Errorf("Overlap(nil,a) = %v, want 0", got)
	}
	if got := Overlap(nil, nil); !almost(got, 1) {
		t.Errorf("Overlap(nil,nil) = %v, want 1", got)
	}
}

func TestLevenshtein(t *testing.T) {
	tests := []struct {
		a, b string
		want int
	}{
		{"kitten", "sitting", 3},
		{"", "abc", 3},
		{"abc", "", 3},
		{"same", "same", 0},
		{"flaw", "lawn", 2},
	}
	for _, tt := range tests {
		if got := Levenshtein(tt.a, tt.b); got != tt.want {
			t.Errorf("Levenshtein(%q,%q) = %d, want %d", tt.a, tt.b, got, tt.want)
		}
	}
}

func TestLevenshteinProperties(t *testing.T) {
	f := func(a, b string) bool {
		d := Levenshtein(a, b)
		if d != Levenshtein(b, a) {
			return false
		}
		if (a == b) != (d == 0) {
			return false
		}
		la, lb := len([]rune(a)), len([]rune(b))
		return d <= max(la, lb) && d >= abs(la-lb)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func abs(x int) int {
	if x < 0 {
		return -x
	}
	return x
}

func TestJaro(t *testing.T) {
	// Classic reference values.
	if got := Jaro("martha", "marhta"); !(got > 0.94 && got < 0.95) {
		t.Errorf("Jaro(martha,marhta) = %v, want ~0.944", got)
	}
	if got := Jaro("dixon", "dicksonx"); !(got > 0.76 && got < 0.78) {
		t.Errorf("Jaro(dixon,dicksonx) = %v, want ~0.767", got)
	}
	if got := Jaro("", ""); !almost(got, 1) {
		t.Errorf("Jaro of empties = %v", got)
	}
	if got := Jaro("a", ""); !almost(got, 0) {
		t.Errorf("Jaro(a,'') = %v", got)
	}
	if got := Jaro("abc", "xyz"); !almost(got, 0) {
		t.Errorf("Jaro(abc,xyz) = %v, want 0", got)
	}
}

func TestJaroWinkler(t *testing.T) {
	if got := JaroWinkler("martha", "marhta"); !(got > 0.96 && got < 0.97) {
		t.Errorf("JaroWinkler(martha,marhta) = %v, want ~0.961", got)
	}
	// Prefix boost: equal Jaro but shared prefix should score higher.
	plain := Jaro("prefixed", "prefixes")
	boosted := JaroWinkler("prefixed", "prefixes")
	if boosted <= plain {
		t.Errorf("JaroWinkler (%v) should exceed Jaro (%v) on shared prefix", boosted, plain)
	}
}

func TestJaroBounded(t *testing.T) {
	f := func(a, b string) bool {
		j := Jaro(a, b)
		jw := JaroWinkler(a, b)
		return j >= 0 && j <= 1 && jw >= 0 && jw <= 1.0000001 && jw >= j-1e-12
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestGeneralizedJaccard(t *testing.T) {
	// Exact token matches behave like plain Jaccard.
	a := []string{"apple", "banana"}
	b := []string{"apple", "cherry"}
	got := GeneralizedJaccard(a, b, Jaro, 0.5)
	// apple-apple = 1.0; banana-cherry Jaro < threshold in practice?
	// banana vs cherry share letters; compute defensively: result must
	// be >= plain Jaccard and <= 1.
	plain := Jaccard(a, b)
	if got < plain-1e-9 || got > 1 {
		t.Errorf("GeneralizedJaccard = %v, plain = %v", got, plain)
	}
	// Fuzzy match: near-identical tokens should score close to 1.
	x := []string{"windows", "xp", "professional"}
	y := []string{"window", "xp", "profesional"}
	if g := GeneralizedJaccard(x, y, Jaro, 0.5); g < 0.8 {
		t.Errorf("fuzzy GeneralizedJaccard = %v, want > 0.8", g)
	}
	if g := GeneralizedJaccard(nil, nil, Jaro, 0.5); !almost(g, 1) {
		t.Errorf("empty GeneralizedJaccard = %v", g)
	}
	if g := GeneralizedJaccard(x, nil, Jaro, 0.5); !almost(g, 0) {
		t.Errorf("one-empty GeneralizedJaccard = %v", g)
	}
}

func TestGeneralizedJaccardBounded(t *testing.T) {
	f := func(a, b string) bool {
		g := GeneralizedJaccardStrings(a, b)
		return g >= 0 && g <= 1+1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestCosine(t *testing.T) {
	if got := CosineStrings("a b c", "a b c"); !almost(got, 1) {
		t.Errorf("identical cosine = %v", got)
	}
	if got := CosineStrings("a b", "c d"); !almost(got, 0) {
		t.Errorf("disjoint cosine = %v", got)
	}
	if got := CosineStrings("", ""); !almost(got, 1) {
		t.Errorf("empty cosine = %v", got)
	}
	if got := CosineStrings("a", ""); !almost(got, 0) {
		t.Errorf("half-empty cosine = %v", got)
	}
	// Frequency sensitivity: repeated token shifts the vector.
	v1 := Cosine([]string{"a", "a", "b"}, []string{"a", "b"})
	if v1 <= 0.9 || v1 >= 1 {
		t.Errorf("frequency-weighted cosine = %v, want (0.9, 1)", v1)
	}
}

func TestMongeElkan(t *testing.T) {
	a := []string{"peter", "christen"}
	b := []string{"p", "christen"}
	sym := MongeElkanSym(a, b, JaroWinkler)
	if sym < 0.6 || sym > 1 {
		t.Errorf("MongeElkanSym = %v, want in (0.6, 1]", sym)
	}
	if got := MongeElkan(nil, nil, Jaro); !almost(got, 1) {
		t.Errorf("MongeElkan(nil,nil) = %v", got)
	}
	if got := MongeElkan(a, nil, Jaro); !almost(got, 0) {
		t.Errorf("MongeElkan(a,nil) = %v", got)
	}
	if got := MongeElkan(nil, b, Jaro); !almost(got, 0) {
		t.Errorf("MongeElkan(nil,b) = %v", got)
	}
}

func TestNumericSim(t *testing.T) {
	if !almost(NumericSim(10, 10), 1) {
		t.Error("equal numbers should be 1")
	}
	if !almost(NumericSim(0, 0), 1) {
		t.Error("two zeros should be 1")
	}
	if got := NumericSim(10, 5); !almost(got, 0.5) {
		t.Errorf("NumericSim(10,5) = %v, want 0.5", got)
	}
	if got := NumericSim(0, 5); !almost(got, 0) {
		t.Errorf("NumericSim(0,5) = %v, want 0", got)
	}
}

func TestPearson(t *testing.T) {
	xs := []float64{1, 2, 3, 4, 5}
	ys := []float64{2, 4, 6, 8, 10}
	if got := Pearson(xs, ys); !almost(got, 1) {
		t.Errorf("perfect correlation = %v", got)
	}
	neg := []float64{10, 8, 6, 4, 2}
	if got := Pearson(xs, neg); !almost(got, -1) {
		t.Errorf("perfect anticorrelation = %v", got)
	}
	if got := Pearson([]float64{1}, []float64{1}); got != 0 {
		t.Errorf("single point correlation = %v, want 0", got)
	}
	if got := Pearson(xs, []float64{3, 3, 3, 3, 3}); got != 0 {
		t.Errorf("zero-variance correlation = %v, want 0", got)
	}
}

func TestPrefixSim(t *testing.T) {
	if got := PrefixSim("VLDB", "VLDB Journal"); !almost(got, 1) {
		t.Errorf("PrefixSim = %v, want 1", got)
	}
	if got := PrefixSim("ICDE", "SIGMOD"); !almost(got, 0) {
		t.Errorf("PrefixSim = %v, want 0", got)
	}
	if got := PrefixSim("", ""); !almost(got, 1) {
		t.Errorf("PrefixSim empties = %v, want 1", got)
	}
	if got := PrefixSim("", "x"); !almost(got, 0) {
		t.Errorf("PrefixSim('',x) = %v, want 0", got)
	}
}

func TestLevenshteinSim(t *testing.T) {
	if !almost(LevenshteinSim("", ""), 1) {
		t.Error("empty LevenshteinSim should be 1")
	}
	if !almost(LevenshteinSim("abc", "abc"), 1) {
		t.Error("identical LevenshteinSim should be 1")
	}
	if got := LevenshteinSim("abcd", "abce"); !almost(got, 0.75) {
		t.Errorf("LevenshteinSim = %v, want 0.75", got)
	}
}

func TestGeneralizedJaccardMatchesPaperUseCase(t *testing.T) {
	// The paper selects "related" demonstrations by Generalized Jaccard
	// over serialized pair strings: more-similar strings must rank
	// higher than unrelated ones.
	query := "sony wh-1000xm4 wireless noise canceling headphones black 348.00"
	near := "sony wh1000xm4 wireless noise cancelling headphone black 349.99"
	far := "dewalt 20v max cordless drill driver kit dcd771c2 99.00"
	sn := GeneralizedJaccardStrings(query, near)
	sf := GeneralizedJaccardStrings(query, far)
	if sn <= sf {
		t.Errorf("related similarity %v should exceed unrelated %v", sn, sf)
	}
	if sn < 0.6 {
		t.Errorf("near-duplicate similarity %v unexpectedly low", sn)
	}
}

var sink float64

func BenchmarkGeneralizedJaccard(b *testing.B) {
	x := tokenize.Words("sony wh-1000xm4 wireless noise canceling headphones black 348.00")
	y := tokenize.Words("sony wh1000xm4 wireless noise cancelling headphone black 349.99")
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		sink = GeneralizedJaccard(x, y, Jaro, 0.5)
	}
}
