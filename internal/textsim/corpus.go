package textsim

import (
	"math"

	"llm4em/internal/tokenize"
)

// Corpus accumulates document frequencies so that TF-IDF-weighted
// measures can be computed over a record collection — the
// corpus-aware half of the py_stringmatching measure family the paper
// builds on for demonstration selection.
type Corpus struct {
	docs int
	df   map[string]int
}

// NewCorpus returns an empty corpus.
func NewCorpus() *Corpus {
	return &Corpus{df: map[string]int{}}
}

// Add registers one document's token set.
func (c *Corpus) Add(tokens []string) {
	c.docs++
	seen := map[string]bool{}
	for _, t := range tokens {
		if !seen[t] {
			c.df[t]++
			seen[t] = true
		}
	}
}

// AddText tokenizes s and registers it.
func (c *Corpus) AddText(s string) {
	c.Add(tokenize.Words(s))
}

// Docs returns the number of registered documents.
func (c *Corpus) Docs() int { return c.docs }

// IDF returns the smoothed inverse document frequency of a token:
// ln(1 + N/df). Unseen tokens receive the maximum weight ln(1 + N).
func (c *Corpus) IDF(token string) float64 {
	if c.docs == 0 {
		return 0
	}
	df := c.df[token]
	if df == 0 {
		return math.Log(1 + float64(c.docs))
	}
	return math.Log(1 + float64(c.docs)/float64(df))
}

// TFIDFCosine returns the cosine similarity of the TF-IDF vectors of
// the two token lists under the corpus weighting.
func (c *Corpus) TFIDFCosine(a, b []string) float64 {
	ca, cb := tokenize.Counts(a), tokenize.Counts(b)
	if len(ca) == 0 && len(cb) == 0 {
		return 1
	}
	var dot, na, nb float64
	for t, x := range ca {
		w := c.IDF(t)
		xa := float64(x) * w
		na += xa * xa
		if y, ok := cb[t]; ok {
			dot += xa * float64(y) * w
		}
	}
	for t, y := range cb {
		w := c.IDF(t)
		yb := float64(y) * w
		nb += yb * yb
	}
	if na == 0 || nb == 0 {
		return 0
	}
	return dot / (math.Sqrt(na) * math.Sqrt(nb))
}

// SoftTFIDF returns the Soft TF-IDF similarity of the two token
// lists: TF-IDF cosine over fuzzy token correspondences, where tokens
// count as corresponding when their secondary similarity reaches the
// threshold (0.9 with Jaro-Winkler is the classic configuration).
func (c *Corpus) SoftTFIDF(a, b []string, sim func(x, y string) float64, threshold float64) float64 {
	ca, cb := tokenize.Counts(a), tokenize.Counts(b)
	if len(ca) == 0 && len(cb) == 0 {
		return 1
	}
	var na, nb float64
	for t, x := range ca {
		w := c.IDF(t) * float64(x)
		na += w * w
	}
	for t, y := range cb {
		w := c.IDF(t) * float64(y)
		nb += w * w
	}
	if na == 0 || nb == 0 {
		return 0
	}
	dot := 0.0
	for ta, x := range ca {
		bestSim, bestTok := 0.0, ""
		for tb := range cb {
			if s := sim(ta, tb); s >= threshold && s > bestSim {
				bestSim, bestTok = s, tb
			}
		}
		if bestTok == "" {
			continue
		}
		dot += bestSim * c.IDF(ta) * float64(x) * c.IDF(bestTok) * float64(cb[bestTok])
	}
	score := dot / (math.Sqrt(na) * math.Sqrt(nb))
	if score > 1 {
		score = 1
	}
	return score
}

// SmithWaterman returns the Smith-Waterman local-alignment score of
// the two strings with unit match reward, 0.5 mismatch penalty and
// 0.5 gap penalty, normalized by the shorter string's length to
// [0, 1]. It rewards long shared substrings, which suits matching
// identifiers embedded in longer titles.
func SmithWaterman(a, b string) float64 {
	ra, rb := []rune(a), []rune(b)
	if len(ra) == 0 || len(rb) == 0 {
		if len(ra) == len(rb) {
			return 1
		}
		return 0
	}
	const (
		match    = 1.0
		mismatch = -0.5
		gap      = -0.5
	)
	prev := make([]float64, len(rb)+1)
	cur := make([]float64, len(rb)+1)
	best := 0.0
	for i := 1; i <= len(ra); i++ {
		for j := 1; j <= len(rb); j++ {
			sub := mismatch
			if ra[i-1] == rb[j-1] {
				sub = match
			}
			v := prev[j-1] + sub
			if d := prev[j] + gap; d > v {
				v = d
			}
			if d := cur[j-1] + gap; d > v {
				v = d
			}
			if v < 0 {
				v = 0
			}
			cur[j] = v
			if v > best {
				best = v
			}
		}
		prev, cur = cur, prev
		for j := range cur {
			cur[j] = 0
		}
	}
	shorter := len(ra)
	if len(rb) < shorter {
		shorter = len(rb)
	}
	return best / float64(shorter)
}
