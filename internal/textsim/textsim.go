// Package textsim implements the string-similarity measures used
// throughout the paper: token-set Jaccard, the Generalized Jaccard
// measure used for "related" demonstration selection (Section 4.1),
// Cosine similarity over token vectors (Section 6.1), character-level
// edit measures (Levenshtein, Jaro, Jaro-Winkler), the Monge-Elkan
// hybrid, numeric-attribute similarity, and the Pearson correlation
// used to validate model-generated similarity scores.
package textsim

import (
	"math"
	"sort"
	"strings"

	"llm4em/internal/tokenize"
)

// Jaccard returns |A∩B| / |A∪B| over the token sets of a and b. Two
// empty token sets are defined to have similarity 1.
func Jaccard(a, b []string) float64 {
	if len(a) == 0 && len(b) == 0 {
		return 1
	}
	if len(a)+len(b) > smallListMax {
		sa, sb := tokenize.Set(a), tokenize.Set(b)
		inter := 0
		for t := range sa {
			if sb[t] {
				inter++
			}
		}
		union := len(sa) + len(sb) - inter
		if union == 0 {
			return 1
		}
		return float64(inter) / float64(union)
	}
	da, inter := distinctAndInter(a, b)
	db := 0
	for j := range b {
		if !seenBefore(b, j) {
			db++
		}
	}
	union := da + db - inter
	if union == 0 {
		return 1
	}
	return float64(inter) / float64(union)
}

// smallListMax is the combined token count up to which the similarity
// functions use quadratic slice scans; longer lists — dirty-data
// blobs, not real titles — switch to hash sets with identical results.
const smallListMax = 128

// seenBefore reports whether ts[i] already occurred in ts[:i] — the
// token-list equivalent of a set-membership test. The similarity
// functions below run over short token lists (titles, word tokens),
// where quadratic slice scans beat building throwaway hash sets.
func seenBefore(ts []string, i int) bool {
	for _, p := range ts[:i] {
		if p == ts[i] {
			return true
		}
	}
	return false
}

// contains reports whether ts contains t.
func contains(ts []string, t string) bool {
	for _, p := range ts {
		if p == t {
			return true
		}
	}
	return false
}

// distinctAndInter counts the distinct tokens of a and how many of
// them occur in b.
func distinctAndInter(a, b []string) (distinct, inter int) {
	for i := range a {
		if seenBefore(a, i) {
			continue
		}
		distinct++
		if contains(b, a[i]) {
			inter++
		}
	}
	return distinct, inter
}

// JaccardStrings tokenizes both strings with tokenize.Words and
// returns their Jaccard similarity.
func JaccardStrings(a, b string) float64 {
	return Jaccard(tokenize.Words(a), tokenize.Words(b))
}

// Overlap returns the overlap coefficient |A∩B| / min(|A|, |B|).
func Overlap(a, b []string) float64 {
	sa, sb := tokenize.Set(a), tokenize.Set(b)
	if len(sa) == 0 || len(sb) == 0 {
		if len(sa) == len(sb) {
			return 1
		}
		return 0
	}
	inter := 0
	for t := range sa {
		if sb[t] {
			inter++
		}
	}
	return float64(inter) / float64(min(len(sa), len(sb)))
}

// Containment returns |A∩B| / |A|: the fraction of a's tokens present
// in b. It is asymmetric.
func Containment(a, b []string) float64 {
	if len(a)+len(b) > smallListMax {
		sa, sb := tokenize.Set(a), tokenize.Set(b)
		if len(sa) == 0 {
			return 1
		}
		inter := 0
		for t := range sa {
			if sb[t] {
				inter++
			}
		}
		return float64(inter) / float64(len(sa))
	}
	da, inter := distinctAndInter(a, b)
	if da == 0 {
		return 1
	}
	return float64(inter) / float64(da)
}

// GeneralizedJaccard computes the Generalized Jaccard similarity of
// the two token lists using sim as the secondary token-level measure
// and threshold as the minimum secondary similarity for two tokens to
// be considered a fuzzy match (py_stringmatching uses 0.5 with Jaro,
// which is what the paper's demonstration selection relies on).
//
// The measure greedily pairs tokens across the lists in decreasing
// secondary-similarity order; the score is the sum of matched
// similarities divided by |A| + |B| − #matched.
func GeneralizedJaccard(a, b []string, sim func(x, y string) float64, threshold float64) float64 {
	if len(a) == 0 && len(b) == 0 {
		return 1
	}
	if len(a) == 0 || len(b) == 0 {
		return 0
	}
	// Dirty-data blobs can tokenize into thousands of tokens; the
	// all-pairs secondary measure below would then dominate the whole
	// pipeline. Past the cutoff the fuzzy floor is dropped and tokens
	// match exactly — a deterministic degradation that keeps degenerate
	// inputs linear while leaving every realistic title untouched.
	if len(a)*len(b) > maxFuzzyPairs {
		return exactGeneralizedJaccard(a, b)
	}
	type cand struct {
		i, j int
		s    float64
	}
	var cands []cand
	for i, x := range a {
		for j, y := range b {
			s := sim(x, y)
			if s >= threshold {
				cands = append(cands, cand{i, j, s})
			}
		}
	}
	// Greedy matching in decreasing similarity order (stable sort
	// keeps determinism for equal scores).
	sort.SliceStable(cands, func(x, y int) bool { return cands[x].s > cands[y].s })
	usedA := make([]bool, len(a))
	usedB := make([]bool, len(b))
	sum := 0.0
	matched := 0
	for _, c := range cands {
		if usedA[c.i] || usedB[c.j] {
			continue
		}
		usedA[c.i] = true
		usedB[c.j] = true
		sum += c.s
		matched++
	}
	return sum / float64(len(a)+len(b)-matched)
}

// maxFuzzyPairs bounds the all-pairs work of GeneralizedJaccard: a
// 128×128-token comparison is the largest the fuzzy path attempts.
const maxFuzzyPairs = 1 << 14

// exactGeneralizedJaccard is the exact-match degradation of
// GeneralizedJaccard for degenerate token counts: multiset
// intersection over identical tokens, scored with the same
// |A| + |B| − #matched denominator.
func exactGeneralizedJaccard(a, b []string) float64 {
	counts := make(map[string]int, len(a))
	for _, t := range a {
		counts[t]++
	}
	matched := 0
	for _, t := range b {
		if counts[t] > 0 {
			counts[t]--
			matched++
		}
	}
	return float64(matched) / float64(len(a)+len(b)-matched)
}

// GeneralizedJaccardStrings applies GeneralizedJaccard with the Jaro
// secondary measure and threshold 0.5 to the word tokens of a and b,
// matching the py_stringmatching configuration referenced in the
// paper.
func GeneralizedJaccardStrings(a, b string) float64 {
	return GeneralizedJaccard(tokenize.Words(a), tokenize.Words(b), Jaro, 0.5)
}

// Cosine returns the cosine similarity of the token-frequency vectors
// of a and b.
func Cosine(a, b []string) float64 {
	if len(a) == 0 && len(b) == 0 {
		return 1
	}
	if len(a)+len(b) > smallListMax {
		ca, cb := tokenize.Counts(a), tokenize.Counts(b)
		var dot, na, nb float64
		for t, x := range ca {
			na += float64(x) * float64(x)
			if y := cb[t]; y > 0 {
				dot += float64(x) * float64(y)
			}
		}
		for _, y := range cb {
			nb += float64(y) * float64(y)
		}
		if na == 0 || nb == 0 {
			return 0
		}
		return dot / (math.Sqrt(na) * math.Sqrt(nb))
	}
	// Token counts are small integers, so the sums below are exact in
	// float64 regardless of accumulation order — identical results to
	// the map-based formulation, without its allocations.
	var dot, na, nb float64
	for i, t := range a {
		if seenBefore(a, i) {
			continue
		}
		x := float64(countOf(a, t))
		na += x * x
		if y := countOf(b, t); y > 0 {
			dot += x * float64(y)
		}
	}
	for j, t := range b {
		if seenBefore(b, j) {
			continue
		}
		y := float64(countOf(b, t))
		nb += y * y
	}
	if na == 0 || nb == 0 {
		return 0
	}
	return dot / (math.Sqrt(na) * math.Sqrt(nb))
}

// countOf counts occurrences of t in ts.
func countOf(ts []string, t string) int {
	n := 0
	for _, p := range ts {
		if p == t {
			n++
		}
	}
	return n
}

// CosineStrings tokenizes both strings and returns their cosine
// similarity.
func CosineStrings(a, b string) float64 {
	return Cosine(tokenize.Words(a), tokenize.Words(b))
}

// Levenshtein returns the edit distance between a and b (unit costs).
func Levenshtein(a, b string) int {
	ra, rb := []rune(a), []rune(b)
	if len(ra) == 0 {
		return len(rb)
	}
	if len(rb) == 0 {
		return len(ra)
	}
	prev := make([]int, len(rb)+1)
	cur := make([]int, len(rb)+1)
	for j := range prev {
		prev[j] = j
	}
	for i := 1; i <= len(ra); i++ {
		cur[0] = i
		for j := 1; j <= len(rb); j++ {
			cost := 1
			if ra[i-1] == rb[j-1] {
				cost = 0
			}
			cur[j] = min(prev[j]+1, min(cur[j-1]+1, prev[j-1]+cost))
		}
		prev, cur = cur, prev
	}
	return prev[len(rb)]
}

// LevenshteinSim returns 1 − dist/maxLen, a normalized similarity in
// [0, 1]. Two empty strings have similarity 1.
func LevenshteinSim(a, b string) float64 {
	la, lb := len([]rune(a)), len([]rune(b))
	if la == 0 && lb == 0 {
		return 1
	}
	d := Levenshtein(a, b)
	return 1 - float64(d)/float64(max(la, lb))
}

// maxJaroRunes caps the length Jaro examines: its match window scan
// is quadratic for near-identical strings, so one megabyte-sized
// degenerate token must not stall a comparison — GeneralizedJaccard
// calls Jaro up to maxFuzzyPairs times per title pair. Real tokens
// are tens of characters; truncation never fires for them.
const maxJaroRunes = 64

// truncRunes decodes at most n leading runes of s without scanning
// the rest — a full []rune conversion of a degenerate token would
// already be linear in its size on every similarity call.
func truncRunes(s string, n int) []rune {
	rs := make([]rune, 0, min(n, len(s)))
	for _, r := range s {
		if len(rs) == n {
			break
		}
		rs = append(rs, r)
	}
	return rs
}

// Jaro returns the Jaro similarity of a and b. Strings longer than
// maxJaroRunes are compared by their leading maxJaroRunes runes.
func Jaro(a, b string) float64 {
	ra := truncRunes(a, maxJaroRunes)
	rb := truncRunes(b, maxJaroRunes)
	la, lb := len(ra), len(rb)
	if la == 0 && lb == 0 {
		return 1
	}
	if la == 0 || lb == 0 {
		return 0
	}
	window := max(la, lb)/2 - 1
	if window < 0 {
		window = 0
	}
	matchA := make([]bool, la)
	matchB := make([]bool, lb)
	matches := 0
	for i := 0; i < la; i++ {
		lo := max(0, i-window)
		hi := min(lb-1, i+window)
		for j := lo; j <= hi; j++ {
			if matchB[j] || ra[i] != rb[j] {
				continue
			}
			matchA[i] = true
			matchB[j] = true
			matches++
			break
		}
	}
	if matches == 0 {
		return 0
	}
	// Count transpositions between matched characters.
	trans := 0
	j := 0
	for i := 0; i < la; i++ {
		if !matchA[i] {
			continue
		}
		for !matchB[j] {
			j++
		}
		if ra[i] != rb[j] {
			trans++
		}
		j++
	}
	m := float64(matches)
	return (m/float64(la) + m/float64(lb) + (m-float64(trans)/2)/m) / 3
}

// JaroWinkler returns the Jaro-Winkler similarity with the standard
// prefix scale of 0.1 and a maximum prefix length of 4.
func JaroWinkler(a, b string) float64 {
	j := Jaro(a, b)
	prefix := 0
	for i := 0; i < min(len(a), min(len(b), 4)); i++ {
		if a[i] != b[i] {
			break
		}
		prefix++
	}
	return j + float64(prefix)*0.1*(1-j)
}

// MongeElkan returns the Monge-Elkan similarity: for each token of a,
// the best secondary similarity against tokens of b, averaged over a.
// It is asymmetric; callers wanting symmetry should average both
// directions.
func MongeElkan(a, b []string, sim func(x, y string) float64) float64 {
	if len(a) == 0 {
		if len(b) == 0 {
			return 1
		}
		return 0
	}
	if len(b) == 0 {
		return 0
	}
	total := 0.0
	for _, x := range a {
		best := 0.0
		for _, y := range b {
			if s := sim(x, y); s > best {
				best = s
			}
		}
		total += best
	}
	return total / float64(len(a))
}

// MongeElkanSym returns the symmetric mean of both Monge-Elkan
// directions.
func MongeElkanSym(a, b []string, sim func(x, y string) float64) float64 {
	return (MongeElkan(a, b, sim) + MongeElkan(b, a, sim)) / 2
}

// NumericSim compares two non-negative numbers: 1 when equal,
// decaying linearly with the relative difference, floored at 0. Two
// zeros are identical.
func NumericSim(a, b float64) float64 {
	if a == b {
		return 1
	}
	m := math.Max(math.Abs(a), math.Abs(b))
	if m == 0 {
		return 1
	}
	d := math.Abs(a-b) / m
	if d > 1 {
		d = 1
	}
	return 1 - d
}

// Pearson returns the Pearson correlation coefficient of xs and ys.
// It returns 0 when fewer than two points are given or either series
// has zero variance.
func Pearson(xs, ys []float64) float64 {
	n := min(len(xs), len(ys))
	if n < 2 {
		return 0
	}
	var sx, sy float64
	for i := 0; i < n; i++ {
		sx += xs[i]
		sy += ys[i]
	}
	mx, my := sx/float64(n), sy/float64(n)
	var cov, vx, vy float64
	for i := 0; i < n; i++ {
		dx, dy := xs[i]-mx, ys[i]-my
		cov += dx * dy
		vx += dx * dx
		vy += dy * dy
	}
	if vx == 0 || vy == 0 {
		return 0
	}
	return cov / math.Sqrt(vx*vy)
}

// PrefixSim reports how much of the shorter string is a prefix of the
// longer one, in [0, 1]. Useful for venue-abbreviation comparison.
func PrefixSim(a, b string) float64 {
	a, b = strings.ToLower(a), strings.ToLower(b)
	if len(a) > len(b) {
		a, b = b, a
	}
	if len(a) == 0 {
		if len(b) == 0 {
			return 1
		}
		return 0
	}
	n := 0
	for i := 0; i < len(a); i++ {
		if a[i] != b[i] {
			break
		}
		n++
	}
	return float64(n) / float64(len(a))
}
