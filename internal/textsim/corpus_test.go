package textsim

import (
	"math"
	"testing"

	"llm4em/internal/tokenize"
)

func buildCorpus() *Corpus {
	c := NewCorpus()
	docs := []string{
		"sony cybershot digital camera black",
		"sony walkman player silver",
		"makita cordless drill kit",
		"dewalt cordless drill driver",
		"canon powershot digital camera",
		"generic usb cable black",
	}
	for _, d := range docs {
		c.AddText(d)
	}
	return c
}

func TestCorpusIDFOrdering(t *testing.T) {
	c := buildCorpus()
	if c.Docs() != 6 {
		t.Fatalf("Docs = %d", c.Docs())
	}
	// "cybershot" (df 1) must outweigh "sony" (df 2) must outweigh an
	// unseen token's baseline... unseen gets the max weight.
	rare := c.IDF("cybershot")
	common := c.IDF("sony")
	unseen := c.IDF("zzz-unseen")
	if !(rare > common) {
		t.Errorf("IDF ordering: cybershot %v <= sony %v", rare, common)
	}
	if !(unseen >= rare) {
		t.Errorf("unseen IDF %v should be >= rarest %v", unseen, rare)
	}
	if NewCorpus().IDF("x") != 0 {
		t.Error("empty corpus IDF should be 0")
	}
}

func TestTFIDFCosineDiscriminates(t *testing.T) {
	c := buildCorpus()
	q := tokenize.Words("sony cybershot camera")
	near := tokenize.Words("sony cybershot digital camera black")
	far := tokenize.Words("makita cordless drill")
	sNear := c.TFIDFCosine(q, near)
	sFar := c.TFIDFCosine(q, far)
	if sNear <= sFar {
		t.Errorf("TFIDFCosine: near %v <= far %v", sNear, sFar)
	}
	if got := c.TFIDFCosine(q, q); math.Abs(got-1) > 1e-9 {
		t.Errorf("self similarity = %v", got)
	}
	if got := c.TFIDFCosine(nil, nil); got != 1 {
		t.Errorf("empty-empty = %v", got)
	}
	if got := c.TFIDFCosine(q, nil); got != 0 {
		t.Errorf("empty-other = %v", got)
	}
}

func TestTFIDFWeightsRareTokensHigher(t *testing.T) {
	c := buildCorpus()
	q := tokenize.Words("cybershot drill")
	// Sharing the rare token should beat sharing the more common one
	// at equal overlap counts.
	viaRare := c.TFIDFCosine(q, tokenize.Words("cybershot unrelatedword"))
	viaCommon := c.TFIDFCosine(q, tokenize.Words("drill unrelatedword"))
	if viaRare <= viaCommon {
		t.Errorf("rare-token overlap %v should beat common-token overlap %v", viaRare, viaCommon)
	}
}

func TestSoftTFIDFFuzzyCorrespondence(t *testing.T) {
	c := buildCorpus()
	a := tokenize.Words("sony cybershot camera")
	b := tokenize.Words("sony cybershott camera") // typo variant
	hard := c.TFIDFCosine(a, b)
	soft := c.SoftTFIDF(a, b, JaroWinkler, 0.9)
	if soft <= hard {
		t.Errorf("SoftTFIDF %v should exceed hard TF-IDF %v on a typo variant", soft, hard)
	}
	if soft > 1 {
		t.Errorf("SoftTFIDF %v above 1", soft)
	}
	if got := c.SoftTFIDF(nil, nil, JaroWinkler, 0.9); got != 1 {
		t.Errorf("empty SoftTFIDF = %v", got)
	}
	if got := c.SoftTFIDF(a, nil, JaroWinkler, 0.9); got != 0 {
		t.Errorf("one-sided SoftTFIDF = %v", got)
	}
}

func TestSmithWaterman(t *testing.T) {
	// Perfect containment of the shorter string scores 1.
	if got := SmithWaterman("dsc120b", "sony dsc120b camera"); math.Abs(got-1) > 1e-9 {
		t.Errorf("containment = %v, want 1", got)
	}
	if got := SmithWaterman("", ""); got != 1 {
		t.Errorf("empty = %v", got)
	}
	if got := SmithWaterman("a", ""); got != 0 {
		t.Errorf("half-empty = %v", got)
	}
	// Disjoint strings score near 0.
	if got := SmithWaterman("abc", "xyz"); got > 0.2 {
		t.Errorf("disjoint = %v", got)
	}
	// Local alignment beats global edit similarity when a shared
	// identifier is embedded in different contexts.
	sw := SmithWaterman("brand new dsc120b offer", "dsc120b")
	lev := LevenshteinSim("brand new dsc120b offer", "dsc120b")
	if sw <= lev {
		t.Errorf("SmithWaterman %v should exceed LevenshteinSim %v for embedded identifiers", sw, lev)
	}
}

func TestSmithWatermanBounded(t *testing.T) {
	cases := [][2]string{
		{"hello world", "world hello"},
		{"aaaa", "aaaa"},
		{"abcdef", "abcfed"},
	}
	for _, c := range cases {
		got := SmithWaterman(c[0], c[1])
		if got < 0 || got > 1 {
			t.Errorf("SmithWaterman(%q,%q) = %v out of range", c[0], c[1], got)
		}
	}
}
