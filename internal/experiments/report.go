package experiments

import (
	"fmt"
	"io"
)

// WriteReport renders the complete evaluation — every table, the
// ablations and the future-work analysis — as one markdown document.
// It is the single-artifact counterpart of `emexperiments -table all`.
func WriteReport(w io.Writer, s *Session) error {
	fmt.Fprintln(w, "# llm4em — full experiment report")
	fmt.Fprintln(w)
	fmt.Fprintln(w, "Regenerated deterministically by `emexperiments -report`. Tables mirror")
	fmt.Fprintln(w, "the evaluation section of *Entity Matching using Large Language Models*")
	fmt.Fprintln(w, "(EDBT 2025); see EXPERIMENTS.md for the paper-vs-measured discussion.")
	fmt.Fprintln(w)

	emit := func(t *Table, err error) error {
		if err != nil {
			return err
		}
		fmt.Fprintln(w, t.Markdown())
		return nil
	}
	emitAll := func(ts []*Table, err error) error {
		if err != nil {
			return err
		}
		for _, t := range ts {
			fmt.Fprintln(w, t.Markdown())
		}
		return nil
	}

	if err := emit(Table1(s.Cfg), nil); err != nil {
		return err
	}
	if err := emitAll(Table2(s)); err != nil {
		return err
	}
	if err := emit(Table3(s)); err != nil {
		return err
	}
	if err := emit(Table4(s)); err != nil {
		return err
	}
	if err := emitAll(Table5(s)); err != nil {
		return err
	}
	if err := emit(Table6(s)); err != nil {
		return err
	}
	if err := emit(Table7(s, FTDefaults())); err != nil {
		return err
	}
	if err := emit(Table8(s)); err != nil {
		return err
	}
	if err := emit(Table9(s)); err != nil {
		return err
	}
	if err := emitAll(Table10(s)); err != nil {
		return err
	}
	if err := emit(Table11(s)); err != nil {
		return err
	}
	if err := emit(Table12(s)); err != nil {
		return err
	}
	if err := emit(Table13(s)); err != nil {
		return err
	}
	if err := emitAll(Ablations(s)); err != nil {
		return err
	}
	t, err := ErrorProfiles(s, "wa", []string{"GPT-4", "GPT-mini", "Llama3.1"})
	if err != nil {
		return err
	}
	fmt.Fprintln(w, t.Markdown())
	return nil
}
