package experiments

import (
	"bytes"
	"flag"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"llm4em/internal/datasets"
	"llm4em/internal/llm"
)

var updateGolden = flag.Bool("update", false, "rewrite golden report files")

func mustClient(t *testing.T, model string) llm.Client {
	t.Helper()
	client, err := llm.New(model)
	if err != nil {
		t.Fatal(err)
	}
	return client
}

// smokeConfig shrinks the CI smoke configuration further for unit
// tests: one domain, two kinds, still seeded and deterministic.
func smokeConfig() RobustnessConfig {
	cfg := RobustnessSmoke()
	cfg.Domains = []RobustDomain{{Name: "product", Key: "wdc"}}
	cfg.Kinds = []datasets.CorruptionKind{datasets.CorruptEmbed, datasets.CorruptNull}
	return cfg
}

// TestRobustnessSweepShape pins the sweep geometry: one clean baseline
// per domain plus kind × level cells, in deterministic order, each
// cell carrying a full metric set.
func TestRobustnessSweepShape(t *testing.T) {
	cfg := smokeConfig()
	cells, err := Robustness(cfg)
	if err != nil {
		t.Fatal(err)
	}
	want := len(cfg.Domains) * (1 + len(cfg.Kinds)*len(cfg.Levels))
	if len(cells) != want {
		t.Fatalf("sweep produced %d cells, want %d", len(cells), want)
	}
	if cells[0].Kind != "clean" || cells[0].Level != 0 {
		t.Fatalf("first cell is not the clean baseline: %+v", cells[0])
	}
	for i, c := range cells {
		if c.Pairs == 0 {
			t.Fatalf("cell %d evaluated zero pairs: %+v", i, c)
		}
		if c.F1 < 0 || c.F1 > 100 || c.LocalPct < 0 || c.LocalPct > 100 {
			t.Fatalf("cell %d metrics out of range: %+v", i, c)
		}
		if c.Corruptor == "" {
			t.Fatalf("cell %d has no corruptor description", i)
		}
	}
	// The sweep's reason to exist: at least one corrupted cell must
	// differ from the clean baseline on some metric.
	clean := cells[0]
	moved := false
	for _, c := range cells[1:] {
		if c.F1 != clean.F1 || c.LocalPct != clean.LocalPct || c.LLMPairs != clean.LLMPairs {
			moved = true
			break
		}
	}
	if !moved {
		t.Error("no corruption moved any metric; the sweep measures nothing")
	}
}

// TestRobustnessDeterministic pins that the sweep is a pure function
// of its configuration — the property the golden report relies on.
func TestRobustnessDeterministic(t *testing.T) {
	cfg := smokeConfig()
	a, err := Robustness(cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Robustness(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(a) != len(b) {
		t.Fatalf("reruns disagree on cell count: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("cell %d differs across reruns:\n%+v\n%+v", i, a[i], b[i])
		}
	}
}

// TestRobustnessTableRenders pins the report table shape.
func TestRobustnessTableRenders(t *testing.T) {
	cells := []RobustnessCell{{
		Domain: "product", Dataset: "wdc", Kind: "clean", Corruptor: "clean",
		Pairs: 60, F1: 91.5, LocalPct: 72.25, LLMPairs: 17, Cents: 0.123,
	}}
	md := RobustnessTable(cells).Markdown()
	for _, want := range []string{"R1", "| product |", "91.50", "72.25", "0.123"} {
		if !strings.Contains(md, want) {
			t.Errorf("robustness table markdown missing %q:\n%s", want, md)
		}
	}
}

// TestCalibrateThresholds pins the calibration primitive on the
// product train split: thresholds come off the grid, are ordered, and
// the calibration F1 beats the degenerate always-local extreme badly
// enough to be meaningful.
func TestCalibrateThresholds(t *testing.T) {
	cfg := CrossDomainConfig{}.withDefaults()
	ds := datasets.MustLoad("wdc")
	set := calibrationPairs(ds, 200)
	if len(set.Pairs) == 0 {
		t.Fatal("no calibration pairs drawn from the train split")
	}
	client := mustClient(t, cfg.Model)
	cal, err := CalibrateThresholds(client, 0, []CalibrationSet{set})
	if err != nil {
		t.Fatal(err)
	}
	if cal.RejectBelow >= cal.AcceptAbove {
		t.Fatalf("calibrated thresholds inverted: %+v", cal)
	}
	onGrid := func(grid []float64, v float64) bool {
		for _, g := range grid {
			if g == v {
				return true
			}
		}
		return false
	}
	if !onGrid(acceptGrid, cal.AcceptAbove) || !onGrid(rejectGrid, cal.RejectBelow) {
		t.Fatalf("calibrated thresholds off-grid: %+v", cal)
	}
	if cal.F1 < 50 {
		t.Fatalf("calibration F1 %.1f implausibly low", cal.F1)
	}
	if cal.LLMFraction < 0 || cal.LLMFraction > 1 {
		t.Fatalf("LLM fraction %.2f out of range", cal.LLMFraction)
	}
	// Determinism: calibration re-runs to the same choice.
	again, err := CalibrateThresholds(client, 4, []CalibrationSet{set})
	if err != nil {
		t.Fatal(err)
	}
	if cal != again {
		t.Fatalf("calibration not deterministic: %+v vs %+v", cal, again)
	}
}

// TestCalibrateThresholdsEmpty pins the degenerate input error.
func TestCalibrateThresholdsEmpty(t *testing.T) {
	if _, err := CalibrateThresholds(mustClient(t, "GPT-mini"), 0, nil); err == nil {
		t.Fatal("calibration on no pairs did not error")
	}
}

// TestCrossDomainTransfer runs the leave-one-dataset-out evaluation on
// a reduced configuration and pins its invariants: one row per
// held-out domain, transferred thresholds calibrated without the
// held-out data, and a coherent delta.
func TestCrossDomainTransfer(t *testing.T) {
	rows, err := CrossDomain(CrossDomainConfig{MaxCalibration: 80, MaxTest: 60})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != len(RobustDomains()) {
		t.Fatalf("cross-domain produced %d rows, want %d", len(rows), len(RobustDomains()))
	}
	for _, r := range rows {
		if r.HeldOut == "" {
			t.Fatalf("row without held-out domain: %+v", r)
		}
		if r.Transferred.RejectBelow >= r.Transferred.AcceptAbove ||
			r.InDomain.RejectBelow >= r.InDomain.AcceptAbove {
			t.Fatalf("%s: inverted thresholds: %+v", r.HeldOut, r)
		}
		if got := r.TransferF1 - r.InDomainF1; got != r.DeltaF1 {
			t.Fatalf("%s: DeltaF1 %.2f != TransferF1-InDomainF1 %.2f", r.HeldOut, r.DeltaF1, got)
		}
		if r.TransferF1 < 0 || r.TransferF1 > 100 || r.TransferLocalPct < 0 || r.TransferLocalPct > 100 {
			t.Fatalf("%s: metrics out of range: %+v", r.HeldOut, r)
		}
	}
	md := CrossDomainTable(rows).Markdown()
	for _, r := range rows {
		if !strings.Contains(md, r.HeldOut) {
			t.Errorf("cross-domain table missing held-out domain %q", r.HeldOut)
		}
	}
}

// TestRobustnessGoldenReport pins the full CI smoke report byte for
// byte. Regenerate with:
//
//	go test ./internal/experiments -run TestRobustnessGoldenReport -update
func TestRobustnessGoldenReport(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteRobustnessReport(&buf, RobustnessSmoke()); err != nil {
		t.Fatal(err)
	}
	got := buf.Bytes()
	path := filepath.Join("testdata", "robustness_golden.md")
	if *updateGolden {
		if err := os.WriteFile(path, got, 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("golden report missing (regenerate with -update): %v", err)
	}
	if !bytes.Equal(got, want) {
		t.Fatalf("robustness report drifted from golden %s (regenerate with -update):\n--- got ---\n%s",
			path, got)
	}
	for _, dom := range RobustDomains() {
		if !bytes.Contains(got, []byte(dom.Name)) {
			t.Errorf("report missing domain %q", dom.Name)
		}
	}
}
