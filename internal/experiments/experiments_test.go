package experiments

import (
	"strings"
	"testing"

	"llm4em/internal/datasets"
	"llm4em/internal/plm"
	"llm4em/internal/prompt"
)

// quickSession returns a session over a reduced workload: two models,
// two datasets, capped test splits.
func quickSession() *Session {
	cfg := Quick(120)
	cfg.Models = []string{"GPT-4", "Mixtral"}
	cfg.Datasets = []string{"wdc", "ds"}
	return NewSession(cfg)
}

func TestTableRendering(t *testing.T) {
	tb := &Table{ID: "T", Title: "demo", Columns: []string{"a", "bb"}}
	tb.AddRow("x", "y")
	out := tb.String()
	if !strings.Contains(out, "T — demo") || !strings.Contains(out, "x") {
		t.Errorf("rendered table:\n%s", out)
	}
}

func TestConfigTestPairsCapPreservesRatio(t *testing.T) {
	cfg := Quick(100)
	ds := datasets.MustLoad("wdc")
	pairs := cfg.testPairs(ds)
	if len(pairs) != 100 {
		t.Fatalf("capped to %d pairs, want 100", len(pairs))
	}
	pos := 0
	for _, p := range pairs {
		if p.Match {
			pos++
		}
	}
	// WDC test ratio is 259/1248 ≈ 20.8%; the cap should be close.
	if pos < 12 || pos > 30 {
		t.Errorf("capped split has %d positives of 100", pos)
	}
	full := Config{}
	if len(full.testPairs(ds)) != len(ds.Test) {
		t.Error("uncapped config should return the full test split")
	}
}

func TestTable1MatchesPaperCounts(t *testing.T) {
	tb := Table1(Default())
	if len(tb.Rows) != 6 {
		t.Fatalf("Table 1 has %d rows", len(tb.Rows))
	}
	if tb.Rows[0][1] != "500" || tb.Rows[0][6] != "989" {
		t.Errorf("WDC row = %v", tb.Rows[0])
	}
}

func TestZeroShotCaching(t *testing.T) {
	s := quickSession()
	d := prompt.Designs()[0]
	r1, err := s.ZeroShot("GPT-4", d, "wdc")
	if err != nil {
		t.Fatal(err)
	}
	r2, err := s.ZeroShot("GPT-4", d, "wdc")
	if err != nil {
		t.Fatal(err)
	}
	if r1.F1() != r2.F1() || r1.Requests != r2.Requests {
		t.Error("cached zero-shot result differs")
	}
}

func TestBestZeroShotIsMaximum(t *testing.T) {
	s := quickSession()
	_, best, err := s.BestZeroShot("Mixtral", "wdc")
	if err != nil {
		t.Fatal(err)
	}
	for _, d := range prompt.Designs() {
		r, err := s.ZeroShot("Mixtral", d, "wdc")
		if err != nil {
			t.Fatal(err)
		}
		if r.F1() > best.F1() {
			t.Errorf("design %s (%.2f) beats reported best (%.2f)", d.Name, r.F1(), best.F1())
		}
	}
}

func TestTable2And3Shapes(t *testing.T) {
	s := quickSession()
	t2, err := Table2(s)
	if err != nil {
		t.Fatal(err)
	}
	if len(t2) != 2 {
		t.Fatalf("Table 2 produced %d tables, want one per dataset", len(t2))
	}
	// 10 designs + mean + stddev rows.
	if len(t2[0].Rows) != 12 {
		t.Errorf("Table 2 has %d rows", len(t2[0].Rows))
	}
	t3, err := Table3(s)
	if err != nil {
		t.Fatal(err)
	}
	if len(t3.Rows) != 12 {
		t.Errorf("Table 3 has %d rows", len(t3.Rows))
	}
	if t3.Columns[1] != "GPT-4" {
		t.Errorf("Table 3 columns = %v", t3.Columns)
	}
}

func TestTable4IncludesUnseenRows(t *testing.T) {
	s := quickSession()
	tb, err := Table4(s)
	if err != nil {
		t.Fatal(err)
	}
	var hasUnseen, hasDelta bool
	for _, row := range tb.Rows {
		if strings.Contains(row[0], "unseen") {
			hasUnseen = true
		}
		if strings.Contains(row[0], "Δ best LLM/PLM") {
			hasDelta = true
		}
	}
	if !hasUnseen || !hasDelta {
		t.Errorf("Table 4 missing unseen or delta rows:\n%s", tb.String())
	}
}

func TestTable5And6Shapes(t *testing.T) {
	s := quickSession()
	t5, err := Table5(s)
	if err != nil {
		t.Fatal(err)
	}
	// 8 spec rows + mean + sd + best zero-shot + 2 delta rows = 13.
	if len(t5[0].Rows) != 13 {
		t.Errorf("Table 5 has %d rows", len(t5[0].Rows))
	}
	t6, err := Table6(s)
	if err != nil {
		t.Fatal(err)
	}
	if len(t6.Rows) != 13 {
		t.Errorf("Table 6 has %d rows", len(t6.Rows))
	}
}

func TestTable7Shape(t *testing.T) {
	cfg := Quick(120)
	cfg.Datasets = []string{"wdc", "ds"}
	cfg.Models = []string{"GPT-4", "Llama2"}
	s := NewSession(cfg)
	tb, err := Table7(s, []string{"Llama2"})
	if err != nil {
		t.Fatal(err)
	}
	// 2 training sources × 1 model + zero-shot + Δzs + ΔGPT4 + GPT-4
	// reference rows = 2 + 1 + 1 + 1 + 1.
	if len(tb.Rows) != 6 {
		t.Errorf("Table 7 has %d rows:\n%s", len(tb.Rows), tb.String())
	}
}

func TestFigureRenderings(t *testing.T) {
	cfg := Quick(150)
	s := NewSession(cfg)
	for n := 1; n <= 4; n++ {
		out, err := Figure(s, n)
		if err != nil {
			t.Fatalf("Figure %d: %v", n, err)
		}
		if !strings.Contains(out, "[PROMPT]") && !strings.Contains(out, "[USER]") {
			t.Errorf("Figure %d lacks prompt section:\n%.200s", n, out)
		}
	}
	if _, err := Figure(s, 99); err == nil {
		t.Error("unknown figure number should error")
	}
}

func TestPLMCached(t *testing.T) {
	s := quickSession()
	a := s.PLM(plm.RoBERTa, "wdc")
	b := s.PLM(plm.RoBERTa, "wdc")
	if a != b {
		t.Error("PLM should be cached per variant/dataset")
	}
}

func TestRuleSetsCached(t *testing.T) {
	s := quickSession()
	rs1, err := s.RuleSet(RulesLearned, datasets.MustLoad("wdc").Schema.Domain)
	if err != nil {
		t.Fatal(err)
	}
	if len(rs1) == 0 {
		t.Fatal("no learned rules")
	}
	rs2, _ := s.RuleSet(RulesLearned, datasets.MustLoad("wdc").Schema.Domain)
	if &rs1[0] != &rs2[0] {
		t.Error("rule set should be cached")
	}
}

func TestDatasetDiagnostics(t *testing.T) {
	cfg := Quick(300)
	tb := DatasetDiagnostics(cfg)
	if len(tb.Rows) != 6 {
		t.Fatalf("diagnostics has %d rows", len(tb.Rows))
	}
	for _, row := range tb.Rows {
		if len(row) != 7 {
			t.Errorf("row %v malformed", row)
		}
	}
}
