package experiments

import (
	"fmt"

	"llm4em/internal/datasets"
	"llm4em/internal/eval"
	"llm4em/internal/features"
	"llm4em/internal/textsim"
)

// DatasetDiagnostics summarises the generated benchmarks from the
// calibration perspective: the ideal-weight oracle's F1 (the
// achievable quality a perfectly calibrated matcher reaches, tracked
// against the paper's best zero-shot GPT-4 results), and the surface
// similarity statistics that make the corner-case structure visible.
func DatasetDiagnostics(cfg Config) *Table {
	t := &Table{
		ID:    "Diagnostics",
		Title: "Generated benchmark difficulty (ideal-weight oracle and surface statistics)",
		Columns: []string{
			"Dataset", "Oracle F1", "Paper GPT-4 best", "Match sim (mean)",
			"Non-match sim (mean)", "Similar non-matches", "Dissimilar matches",
		},
	}
	// Paper Table 4 best zero-shot GPT-4 values per dataset.
	paperBest := map[string]string{
		"wdc": "89.61", "ab": "95.78", "wa": "89.67",
		"ag": "76.38", "ds": "89.82", "da": "98.41",
	}
	ws := features.Ideal()
	for _, key := range cfg.datasets() {
		ds := datasets.MustLoad(key)
		pairs := cfg.testPairs(ds)
		var conf eval.Confusion
		var posSim, negSim []float64
		cornerNeg, cornerPos := 0, 0
		for _, p := range pairs {
			v, pres := features.PairFeaturesText(p.A.Serialize(), p.B.Serialize())
			conf.Add(p.Match, ws.Score(v, pres) > 0)
			s := textsim.JaccardStrings(p.A.Serialize(), p.B.Serialize())
			if p.Match {
				posSim = append(posSim, s)
				if s < 0.3 {
					cornerPos++
				}
			} else {
				negSim = append(negSim, s)
				if s > 0.5 {
					cornerNeg++
				}
			}
		}
		t.AddRow(
			ds.Abbrev,
			f2(conf.F1()),
			paperBest[key],
			f2(eval.Mean(posSim)),
			f2(eval.Mean(negSim)),
			fmt.Sprintf("%d/%d", cornerNeg, len(negSim)),
			fmt.Sprintf("%d/%d", cornerPos, len(posSim)),
		)
	}
	return t
}
