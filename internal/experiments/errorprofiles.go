package experiments

import (
	"fmt"

	"llm4em/internal/core"
	"llm4em/internal/datasets"
	"llm4em/internal/errorclass"
	"llm4em/internal/explain"
	"llm4em/internal/llm"
)

// ErrorProfiles implements the future-work analysis the paper
// sketches at the end of Section 7.2: classify the errors of several
// model/prompt combinations into one fixed set of generated error
// classes, so the strengths and weaknesses of each combination can be
// compared at the error-class level.
//
// The class inventory is generated once from the reference
// combination (GPT-4, best zero-shot prompt), then every model's
// errors on the dataset are assigned to those classes by GPT4-turbo.
func ErrorProfiles(s *Session, dataset string, models []string) (*Table, error) {
	ds := datasets.MustLoad(dataset)
	pairs := s.Cfg.testPairs(ds)
	turbo := s.Model(llm.GPT4Turbo)

	// Reference classes from the GPT-4 run of Section 6/7.
	refFPs, refFNs, err := s.errorCases(dataset)
	if err != nil {
		return nil, err
	}
	if len(refFPs) == 0 || len(refFNs) == 0 {
		return nil, fmt.Errorf("experiments: reference run on %s has no errors in one direction", dataset)
	}
	fpClasses, err := errorclass.Discover(turbo, ds.Schema.Domain, refFPs, true)
	if err != nil {
		return nil, err
	}
	fnClasses, err := errorclass.Discover(turbo, ds.Schema.Domain, refFNs, false)
	if err != nil {
		return nil, err
	}

	t := &Table{
		ID:    "Future work (§7.2)",
		Title: "Error-class profile per model on " + ds.Name + " (best zero-shot prompt; % of errors in class)",
		Columns: []string{
			"Model", "Errors (FP/FN)",
			"FP: " + shorten(fpClasses[0].Name), "FP: " + shorten(fpClasses[1].Name),
			"FN: " + shorten(fnClasses[0].Name), "FN: " + shorten(fnClasses[1].Name),
		},
	}

	explainer := s.Model(llm.GPT4)
	for _, mn := range models {
		design, _, err := s.BestZeroShot(mn, dataset)
		if err != nil {
			return nil, err
		}
		matcher := &core.Matcher{Client: s.Model(mn), Design: design, Domain: ds.Schema.Domain, Workers: s.Cfg.Workers}
		res, err := matcher.EvaluateKeeping(pairs)
		if err != nil {
			return nil, err
		}
		// Explanations for the wrong decisions come from the reference
		// explainer (GPT-4), which the paper uses for all structured
		// explanations.
		var wrong []core.Decision
		for _, d := range res.Decisions {
			if !d.Correct() {
				wrong = append(wrong, d)
			}
		}
		var exps []explain.Explanation
		for _, d := range wrong {
			e, err := explain.Generate(explainer, design, ds.Schema.Domain, d.Pair)
			if err != nil {
				return nil, err
			}
			// The explanation must describe the *evaluated* model's
			// decision; override the explainer's own parse.
			e.Predicted = d.Match
			exps = append(exps, e)
		}
		fps, fns := errorclass.CollectErrors(wrong, exps)

		fpShare, err := classShares(turbo, fpClasses, fps)
		if err != nil {
			return nil, err
		}
		fnShare, err := classShares(turbo, fnClasses, fns)
		if err != nil {
			return nil, err
		}
		t.AddRow(
			mn,
			fmt.Sprintf("%d/%d", len(fps), len(fns)),
			pct(fpShare[0]), pct(fpShare[1]),
			pct(fnShare[0]), pct(fnShare[1]),
		)
	}
	return t, nil
}

// classShares returns, per class, the fraction of cases GPT4-turbo
// assigns to it.
func classShares(turbo llm.Client, classes []errorclass.Class, cases []errorclass.Case) ([]float64, error) {
	shares := make([]float64, len(classes))
	if len(cases) == 0 {
		return shares, nil
	}
	for _, c := range cases {
		assigned, err := errorclass.Assign(turbo, classes, c)
		if err != nil {
			return nil, err
		}
		for idx := range assigned {
			shares[idx]++
		}
	}
	for i := range shares {
		shares[i] /= float64(len(cases))
	}
	return shares, nil
}

func pct(x float64) string { return fmt.Sprintf("%.0f%%", 100*x) }

func shorten(name string) string {
	if len(name) > 22 {
		return name[:19] + "..."
	}
	return name
}
