package experiments

import (
	"fmt"

	"llm4em/internal/datasets"
	"llm4em/internal/prompt"
)

// PrecisionRecall reports precision and recall for every zero-shot
// model/design/dataset combination. The paper's tables show F1 only
// and note that "the precision and recall results of all experiments
// are available in the project repository" (Section 2); this runner
// is that companion report.
func PrecisionRecall(s *Session) ([]*Table, error) {
	var out []*Table
	for _, key := range s.Cfg.datasets() {
		ds := datasets.MustLoad(key)
		t := &Table{
			ID:      "P/R (" + ds.Abbrev + ")",
			Title:   "Zero-shot precision/recall on " + ds.Name,
			Columns: append([]string{"Prompt"}, s.Cfg.models()...),
		}
		for _, d := range prompt.Designs() {
			row := []string{d.Name}
			for _, mn := range s.Cfg.models() {
				r, err := s.ZeroShot(mn, d, key)
				if err != nil {
					return nil, err
				}
				row = append(row, fmt.Sprintf("%.2f/%.2f", r.Confusion.Precision(), r.Confusion.Recall()))
			}
			t.AddRow(row...)
		}
		out = append(out, t)
	}
	return out, nil
}
