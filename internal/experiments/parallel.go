package experiments

import (
	"llm4em/internal/datasets"
	"llm4em/internal/pipeline"
	"llm4em/internal/prompt"
)

// runParallel executes job(0..n-1) on the shared pipeline worker pool
// (bounded by GOMAXPROCS — experiment evaluations are CPU-bound local
// simulation) and returns the first error. Jobs must be independent;
// all experiment evaluations are pure and their results land in the
// session caches, so parallel prefetching never changes results — it
// only reorders when they are computed.
func runParallel(n int, job func(i int) error) error {
	return pipeline.ForEach(n, 0, job)
}

// PrefetchZeroShot evaluates the full zero-shot grid (models × prompt
// designs × datasets) in parallel, filling the session cache so that
// subsequent table construction is pure lookup.
func (s *Session) PrefetchZeroShot() error {
	type job struct {
		model   string
		design  prompt.Design
		dataset string
	}
	var jobs []job
	for _, mn := range s.Cfg.models() {
		for _, d := range prompt.Designs() {
			for _, key := range s.Cfg.datasets() {
				jobs = append(jobs, job{mn, d, key})
			}
		}
	}
	return runParallel(len(jobs), func(i int) error {
		_, err := s.ZeroShot(jobs[i].model, jobs[i].design, jobs[i].dataset)
		return err
	})
}

// PrefetchInContext evaluates the Section 4 grid (few-shot methods ×
// shot counts plus both rule kinds, per model and dataset) in
// parallel. Rule sets and demonstration selectors are built up front
// to avoid duplicate construction across workers.
func (s *Session) PrefetchInContext() error {
	for _, key := range s.Cfg.datasets() {
		for _, method := range DemoMethods() {
			s.selector(method, key)
		}
		domain := datasets.MustLoad(key).Schema.Domain
		for _, kind := range []RuleKind{RulesHandwritten, RulesLearned} {
			if _, err := s.RuleSet(kind, domain); err != nil {
				return err
			}
		}
	}
	type job struct {
		model, dataset string
		method         DemoMethod
		shots          int
		rules          RuleKind
	}
	var jobs []job
	for _, mn := range s.Cfg.models() {
		for _, key := range s.Cfg.datasets() {
			for _, method := range DemoMethods() {
				for _, k := range []int{6, 10} {
					jobs = append(jobs, job{model: mn, dataset: key, method: method, shots: k})
				}
			}
			for _, kind := range []RuleKind{RulesHandwritten, RulesLearned} {
				jobs = append(jobs, job{model: mn, dataset: key, rules: kind})
			}
		}
	}
	return runParallel(len(jobs), func(i int) error {
		j := jobs[i]
		if j.shots > 0 {
			_, err := s.FewShot(j.model, j.dataset, j.method, j.shots)
			return err
		}
		_, err := s.WithRules(j.model, j.dataset, j.rules)
		return err
	})
}
