package experiments

import (
	"fmt"

	"llm4em/internal/datasets"
	"llm4em/internal/eval"
)

// fewShotRows enumerates the Table 5/6 row specification: the three
// selection heuristics at 6 and 10 shots, then the two rule kinds.
type fewShotRow struct {
	label  string
	method DemoMethod
	shots  int
	rules  RuleKind // set when shots == 0
}

func fewShotRowSpec() []fewShotRow {
	return []fewShotRow{
		{"Fewshot-related (6)", DemoRelated, 6, ""},
		{"Fewshot-related (10)", DemoRelated, 10, ""},
		{"Fewshot-random (6)", DemoRandom, 6, ""},
		{"Fewshot-random (10)", DemoRandom, 10, ""},
		{"Fewshot-handpicked (6)", DemoHandpicked, 6, ""},
		{"Fewshot-handpicked (10)", DemoHandpicked, 10, ""},
		{"Hand-written rules", "", 0, RulesHandwritten},
		{"Learned rules", "", 0, RulesLearned},
	}
}

// rowResult evaluates one Table 5 row cell.
func (s *Session) rowResult(row fewShotRow, model, dataset string) (float64, error) {
	if row.shots > 0 {
		r, err := s.FewShot(model, dataset, row.method, row.shots)
		if err != nil {
			return 0, err
		}
		return r.F1(), nil
	}
	r, err := s.WithRules(model, dataset, row.rules)
	if err != nil {
		return 0, err
	}
	return r.F1(), nil
}

// Table5 reproduces the few-shot and rule-based results per dataset,
// with the mean/standard-deviation block and the comparison rows
// against the best zero-shot prompt.
func Table5(s *Session) ([]*Table, error) {
	if err := s.PrefetchInContext(); err != nil {
		return nil, err
	}
	var out []*Table
	for _, key := range s.Cfg.datasets() {
		ds := datasets.MustLoad(key)
		t := &Table{
			ID:      "Table 5 (" + ds.Abbrev + ")",
			Title:   "Few-shot and rule-based F1 on " + ds.Name,
			Columns: append([]string{"Prompt"}, s.Cfg.models()...),
		}
		perModel := map[string][]float64{}
		bestFew := map[string]float64{}
		bestRules := map[string]float64{}
		for _, row := range fewShotRowSpec() {
			cells := []string{row.label}
			for _, mn := range s.Cfg.models() {
				f1, err := s.rowResult(row, mn, key)
				if err != nil {
					return nil, err
				}
				cells = append(cells, f2(f1))
				perModel[mn] = append(perModel[mn], f1)
				if row.shots > 0 {
					if f1 > bestFew[mn] {
						bestFew[mn] = f1
					}
				} else if f1 > bestRules[mn] {
					bestRules[mn] = f1
				}
			}
			t.AddRow(cells...)
		}
		meanRow, sdRow := []string{"Mean"}, []string{"Standard deviation"}
		zsRow := []string{"Best zero-shot"}
		dFew := []string{"Δ Few-shot/zero-shot"}
		dRules := []string{"Δ Rules/zero-shot"}
		for _, mn := range s.Cfg.models() {
			meanRow = append(meanRow, f2(eval.Mean(perModel[mn])))
			sdRow = append(sdRow, f2(eval.StdDev(perModel[mn])))
			_, best, err := s.BestZeroShot(mn, key)
			if err != nil {
				return nil, err
			}
			zsRow = append(zsRow, f2(best.F1()))
			dFew = append(dFew, signed(bestFew[mn]-best.F1()))
			dRules = append(dRules, signed(bestRules[mn]-best.F1()))
		}
		t.AddRow(meanRow...)
		t.AddRow(sdRow...)
		t.AddRow(zsRow...)
		t.AddRow(dFew...)
		t.AddRow(dRules...)
		out = append(out, t)
	}
	return out, nil
}

// Table6 reproduces the in-context learning means over all datasets.
func Table6(s *Session) (*Table, error) {
	if err := s.PrefetchInContext(); err != nil {
		return nil, err
	}
	t := &Table{
		ID:      "Table 6",
		Title:   "Mean few-shot and rule-based F1 over all datasets",
		Columns: append([]string{"Prompt"}, s.Cfg.models()...),
	}
	perModel := map[string][]float64{}
	bestFew := map[string]float64{}
	bestRules := map[string]float64{}
	for _, row := range fewShotRowSpec() {
		cells := []string{row.label}
		for _, mn := range s.Cfg.models() {
			var xs []float64
			for _, key := range s.Cfg.datasets() {
				f1, err := s.rowResult(row, mn, key)
				if err != nil {
					return nil, err
				}
				xs = append(xs, f1)
			}
			avg := eval.Mean(xs)
			cells = append(cells, f2(avg))
			perModel[mn] = append(perModel[mn], avg)
			if row.shots > 0 {
				if avg > bestFew[mn] {
					bestFew[mn] = avg
				}
			} else if avg > bestRules[mn] {
				bestRules[mn] = avg
			}
		}
		t.AddRow(cells...)
	}
	meanRow, sdRow := []string{"Mean"}, []string{"Standard deviation"}
	zsRow := []string{"Best zero-shot (mean)"}
	dFew := []string{"Δ Few-shot/zero-shot"}
	dRules := []string{"Δ Rules/zero-shot"}
	for _, mn := range s.Cfg.models() {
		meanRow = append(meanRow, f2(eval.Mean(perModel[mn])))
		sdRow = append(sdRow, f2(eval.StdDev(perModel[mn])))
		var zs []float64
		for _, key := range s.Cfg.datasets() {
			_, best, err := s.BestZeroShot(mn, key)
			if err != nil {
				return nil, err
			}
			zs = append(zs, best.F1())
		}
		zsMean := eval.Mean(zs)
		zsRow = append(zsRow, f2(zsMean))
		dFew = append(dFew, signed(bestFew[mn]-zsMean))
		dRules = append(dRules, signed(bestRules[mn]-zsMean))
	}
	t.AddRow(meanRow...)
	t.AddRow(sdRow...)
	t.AddRow(zsRow...)
	t.AddRow(dFew...)
	t.AddRow(dRules...)
	return t, nil
}

// Table7 reproduces the fine-tuning results: each fine-tunable model
// is trained on each dataset and applied to every dataset's test
// split, followed by the Δ rows against the best zero-shot prompt and
// against GPT-4's best zero-shot.
func Table7(s *Session, ftModels []string) (*Table, error) {
	keys := s.Cfg.datasets()
	abbrevs := make([]string, len(keys))
	for i, k := range keys {
		abbrevs[i] = datasets.MustLoad(k).Abbrev
	}
	t := &Table{
		ID:      "Table 7",
		Title:   "Fine-tuning and transfer to all datasets (F1)",
		Columns: append([]string{"Fine-tuned on", "Model"}, abbrevs...),
	}
	// ownBest[model][dataset] = best F1 across training sources when
	// evaluated on that dataset (used for the Δ rows, which the paper
	// computes from the per-dataset fine-tuning results).
	diag := map[string]map[string]float64{}
	for _, mn := range ftModels {
		diag[mn] = map[string]float64{}
	}
	for _, trainKey := range keys {
		for _, mn := range ftModels {
			row := []string{datasets.MustLoad(trainKey).Name, mn}
			for _, evalKey := range keys {
				r, err := s.FineTuned(mn, trainKey, evalKey)
				if err != nil {
					return nil, err
				}
				row = append(row, f2(r.F1()))
				if trainKey == evalKey {
					diag[mn][evalKey] = r.F1()
				}
			}
			t.AddRow(row...)
		}
	}
	// Reference rows.
	for _, mn := range ftModels {
		row := []string{"Best zero-shot", mn}
		for _, key := range keys {
			_, best, err := s.BestZeroShot(mn, key)
			if err != nil {
				return nil, err
			}
			row = append(row, f2(best.F1()))
		}
		t.AddRow(row...)
	}
	for _, mn := range ftModels {
		row := []string{"Δ best zero-shot", mn}
		for _, key := range keys {
			_, best, err := s.BestZeroShot(mn, key)
			if err != nil {
				return nil, err
			}
			row = append(row, signed(diag[mn][key]-best.F1()))
		}
		t.AddRow(row...)
	}
	gpt4Row := []string{"Best GPT-4 zero-shot", ""}
	for _, key := range keys {
		_, best, err := s.BestZeroShot("GPT-4", key)
		if err != nil {
			return nil, err
		}
		gpt4Row = append(gpt4Row, f2(best.F1()))
	}
	for _, mn := range ftModels {
		row := []string{"Δ best GPT-4", mn}
		for _, key := range keys {
			_, best, err := s.BestZeroShot("GPT-4", key)
			if err != nil {
				return nil, err
			}
			row = append(row, signed(diag[mn][key]-best.F1()))
		}
		t.AddRow(row...)
	}
	t.AddRow(gpt4Row...)
	return t, nil
}

// FTDefaults returns the fine-tunable models of the study in the
// paper's row order.
func FTDefaults() []string { return []string{"Llama2", "Llama3.1", "GPT-mini"} }

// fmtCheck keeps fmt imported even if row building changes.
var _ = fmt.Sprintf
