package experiments

import (
	"fmt"
	"io"

	"llm4em/internal/datasets"
	"llm4em/internal/llm"
	"llm4em/internal/resolve"
)

// This file is the dirty-data robustness harness: it sweeps
// corruption kind × level (internal/datasets.Corruptor) against the
// resolve cascade and reports, per cell, the quality and cost axes
// the clean benchmarks never stress — F1, decided-locally fraction,
// LLM pairs and estimated cents. Every cell is reproducible from the
// corruption seed: the corruptor keys all noise on it and the
// simulated models are deterministic.

// RobustDomain names one generator family and the dataset standing in
// for it.
type RobustDomain struct {
	// Name is the generator-family label used in reports.
	Name string
	// Key is the dataset key evaluated for the family.
	Key string
}

// RobustDomains returns the three generator families of
// internal/datasets with their representative benchmarks: products
// (productgen via WDC), software offers (softwaregen via
// Amazon-Google) and bibliographic records (bibgen via DBLP-Scholar).
func RobustDomains() []RobustDomain {
	return []RobustDomain{
		{Name: "product", Key: "wdc"},
		{Name: "software", Key: "ag"},
		{Name: "bibliographic", Key: "ds"},
	}
}

// RobustnessConfig scales a robustness sweep.
type RobustnessConfig struct {
	// Model is the LLM table name answering the uncertain band
	// (default GPT-mini, the study's cost-efficient model).
	Model string
	// Seed drives every corruption draw; same seed, same report.
	Seed string
	// Kinds are the corruption kinds to sweep (nil means all).
	Kinds []datasets.CorruptionKind
	// Levels are the corruption levels per kind (nil means 1..3).
	// Level 0 — the clean baseline — is always reported once per
	// domain, regardless of Levels.
	Levels []int
	// Domains are the generator families (nil means RobustDomains).
	Domains []RobustDomain
	// MaxPairs caps the evaluated test pairs per domain (0 = all),
	// sampling proportionally from matches and non-matches.
	MaxPairs int
	// Cascade tunes the cascade under test; the zero value is the
	// production default (0.9/0.15 thresholds, ideal weights).
	Cascade resolve.CascadeOptions
	// Workers bounds the engine worker pool (0 = pipeline default).
	Workers int
}

func (c RobustnessConfig) withDefaults() RobustnessConfig {
	if c.Model == "" {
		c.Model = llm.GPTMini
	}
	if c.Seed == "" {
		c.Seed = "robustness"
	}
	if len(c.Kinds) == 0 {
		c.Kinds = datasets.CorruptionKinds()
	}
	if len(c.Levels) == 0 {
		c.Levels = []int{1, 2, 3}
	}
	if len(c.Domains) == 0 {
		c.Domains = RobustDomains()
	}
	return c
}

// RobustnessSmoke is the small seeded configuration CI runs and the
// golden report pins: every kind at one level, a capped pair count,
// the deterministic GPT-mini simulation.
func RobustnessSmoke() RobustnessConfig {
	return RobustnessConfig{Seed: "ci-smoke", Levels: []int{2}, MaxPairs: 60}
}

// RobustnessCell is one sweep cell: a domain under one corruption
// kind and level.
type RobustnessCell struct {
	// Domain is the generator-family label; Dataset the benchmark key.
	Domain  string
	Dataset string
	// Kind and Level identify the corruption; Corruptor is the
	// realized knob description ("embed-3", "clean").
	Kind  datasets.CorruptionKind
	Level int
	// Corruptor describes the active knobs.
	Corruptor string
	// Pairs is the number of evaluated labelled pairs.
	Pairs int
	// F1 is the matching quality in [0, 100].
	F1 float64
	// LocalPct is the percentage of pairs decided without an LLM call.
	LocalPct float64
	// LLMPairs counts escalated pairs; Cents estimates their cost.
	LLMPairs int
	Cents    float64
}

// Robustness sweeps corruption kind × level over every configured
// domain and returns the cells in deterministic order: domain, then
// the clean baseline, then kinds × levels.
func Robustness(cfg RobustnessConfig) ([]RobustnessCell, error) {
	c := cfg.withDefaults()
	client, err := llm.New(c.Model)
	if err != nil {
		return nil, fmt.Errorf("experiments: robustness: %w", err)
	}
	var cells []RobustnessCell
	for _, dom := range c.Domains {
		ds, err := datasets.Load(dom.Key)
		if err != nil {
			return nil, fmt.Errorf("experiments: robustness: %w", err)
		}
		pairs := Config{MaxTest: c.MaxPairs}.testPairs(ds)
		opts := resolve.EvalOptions{
			Cascade: c.Cascade,
			Domain:  ds.Schema.Domain,
			Workers: c.Workers,
		}
		evalCell := func(kind datasets.CorruptionKind, level int) (RobustnessCell, error) {
			cor := datasets.ForLevel(c.Seed, kind, level)
			res, err := resolve.EvaluatePairs(client, opts, cor.CorruptPairs(pairs))
			if err != nil {
				return RobustnessCell{}, fmt.Errorf("experiments: robustness %s/%s level %d: %w",
					dom.Name, kind, level, err)
			}
			return RobustnessCell{
				Domain:    dom.Name,
				Dataset:   dom.Key,
				Kind:      kind,
				Level:     level,
				Corruptor: cor.String(),
				Pairs:     len(pairs),
				F1:        res.F1(),
				LocalPct:  100 * res.Report.LocalFraction(),
				LLMPairs:  res.Report.LLMPairs,
				Cents:     res.Report.Cents,
			}, nil
		}
		// Clean baseline once per domain, whatever Levels says.
		clean, err := evalCell(datasets.CorruptEmbed, 0)
		if err != nil {
			return nil, err
		}
		clean.Kind = "clean"
		cells = append(cells, clean)
		for _, kind := range c.Kinds {
			for _, level := range c.Levels {
				if level <= 0 {
					continue
				}
				cell, err := evalCell(kind, level)
				if err != nil {
					return nil, err
				}
				cells = append(cells, cell)
			}
		}
	}
	return cells, nil
}

// RobustnessTable renders sweep cells as a report table.
func RobustnessTable(cells []RobustnessCell) *Table {
	t := &Table{
		ID:    "R1",
		Title: "Cascade robustness under corruption (dirty-data workloads)",
		Columns: []string{"Domain", "Dataset", "Corruption", "Level", "Pairs",
			"F1", "Local %", "LLM pairs", "Cents"},
	}
	for _, c := range cells {
		t.AddRow(c.Domain, c.Dataset, c.Corruptor, fmt.Sprintf("%d", c.Level),
			fmt.Sprintf("%d", c.Pairs), f2(c.F1), f2(c.LocalPct),
			fmt.Sprintf("%d", c.LLMPairs), fmt.Sprintf("%.3f", c.Cents))
	}
	return t
}

// WriteRobustnessReport runs the sweep and the cross-domain transfer
// eval and renders both as one markdown document — the artifact the
// CI smoke job regenerates and the golden test pins.
func WriteRobustnessReport(w io.Writer, cfg RobustnessConfig) error {
	c := cfg.withDefaults()
	fmt.Fprintln(w, "# llm4em — dirty-data robustness report")
	fmt.Fprintln(w)
	fmt.Fprintf(w, "Seed `%s`, model %s, max pairs %d. Regenerated deterministically by\n",
		c.Seed, c.Model, c.MaxPairs)
	fmt.Fprintln(w, "`emexperiments -robustness`; corruption kinds follow the simulated-error")
	fmt.Fprintln(w, "methodology of the ermaster study (embed-k, misfield-k) plus null-out,")
	fmt.Fprintln(w, "typo/noise and schema-divergence knobs.")
	fmt.Fprintln(w)
	cells, err := Robustness(c)
	if err != nil {
		return err
	}
	fmt.Fprintln(w, RobustnessTable(cells).Markdown())
	rows, err := CrossDomain(CrossDomainConfig{
		Model:          c.Model,
		MaxCalibration: c.MaxPairs,
		MaxTest:        c.MaxPairs,
		Workers:        c.Workers,
	})
	if err != nil {
		return err
	}
	fmt.Fprintln(w, CrossDomainTable(rows).Markdown())
	return nil
}
