package experiments

import (
	"strings"
	"testing"
)

// TestWriteReport runs the consolidated report end to end on a
// reduced workload and checks that every section is present.
func TestWriteReport(t *testing.T) {
	if testing.Short() {
		t.Skip("report generation is slow")
	}
	cfg := Quick(150)
	cfg.Models = []string{"GPT-4", "GPT-mini", "Llama3.1"}
	cfg.Datasets = []string{"wdc", "wa", "ds"}
	s := NewSession(cfg)
	var b strings.Builder
	if err := WriteReport(&b, s); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{
		"# llm4em — full experiment report",
		"### Table 1 —",
		"### Table 3 —",
		"### Table 7 —",
		"### Table 10 (D-S)",
		"### Table 13 —",
		"### Ablation A1 —",
		"### Ablation A5 —",
		"### Future work (§7.2)",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("report missing section %q", want)
		}
	}
	if strings.Count(out, "### ") < 20 {
		t.Errorf("report has only %d sections", strings.Count(out, "### "))
	}
}
