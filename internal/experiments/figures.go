package experiments

import (
	"fmt"
	"strings"

	"llm4em/internal/datasets"
	"llm4em/internal/entity"
	"llm4em/internal/errorclass"
	"llm4em/internal/llm"
	"llm4em/internal/prompt"
	"llm4em/internal/rules"
)

// Figure renders one of the paper's figures as text: the figures are
// example prompts and conversations rather than charts.
func Figure(s *Session, number int) (string, error) {
	switch number {
	case 1:
		return s.figure1()
	case 2:
		return s.figure2()
	case 3:
		return s.figure3()
	case 4:
		return s.figure4()
	case 5:
		return s.figure5()
	case 6:
		return s.figure6()
	default:
		return "", fmt.Errorf("experiments: unknown figure %d (figures 1-6 exist)", number)
	}
}

// samplePair returns a deterministic illustrative pair of a dataset.
func samplePair(key string, match bool) entity.Pair {
	ds := datasets.MustLoad(key)
	for _, p := range ds.Test {
		if p.Match == match {
			return p
		}
	}
	return ds.Test[0]
}

// chat is a small helper running one user prompt.
func (s *Session) chat(model, content string) (string, error) {
	resp, err := s.Model(model).Chat([]llm.Message{{Role: llm.User, Content: content}})
	if err != nil {
		return "", err
	}
	return resp.Content, nil
}

// figure1 renders the paper's opening example: a zero-shot
// general-complex-free prompt and the model's answer.
func (s *Session) figure1() (string, error) {
	design := mustDesign("general-complex-free")
	pair := samplePair("wdc", true)
	p := prompt.Spec{Design: design, Domain: entity.Product}.Build(pair)
	answer, err := s.chat(llm.GPT4, p)
	if err != nil {
		return "", err
	}
	return "Figure 1 — Example of prompting an LLM to match two entity descriptions.\n\n[PROMPT]\n" +
		p + "\n\n[AI ANSWER]\n" + answer + "\n", nil
}

// figure2 renders a few-shot prompt with one positive and one
// negative demonstration.
func (s *Session) figure2() (string, error) {
	design := mustDesign("general-complex-force")
	ds := datasets.MustLoad("wdc")
	demos := []entity.Pair{}
	var havePos, haveNeg bool
	for _, p := range ds.Train {
		if p.Match && !havePos {
			demos = append(demos, p)
			havePos = true
		}
		if !p.Match && !haveNeg {
			demos = append(demos, p)
			haveNeg = true
		}
		if havePos && haveNeg {
			break
		}
	}
	pair := samplePair("wdc", false)
	p := prompt.Spec{Design: design, Domain: entity.Product, Demonstrations: demos}.Build(pair)
	answer, err := s.chat(llm.GPT4, p)
	if err != nil {
		return "", err
	}
	return "Figure 2 — Prompt containing a positive and a negative demonstration.\n\n[PROMPT]\n" +
		p + "\n\n[AI ANSWER]\n" + answer + "\n", nil
}

// figure3 renders the handwritten-rules prompt for the product domain
// plus a subset of the learned rules.
func (s *Session) figure3() (string, error) {
	design := mustDesign("domain-complex-force")
	pair := samplePair("wdc", true)
	hw := rules.Handwritten(entity.Product)
	p := prompt.Spec{Design: design, Domain: entity.Product, Rules: hw}.Build(pair)
	learned, err := s.RuleSet(RulesLearned, entity.Product)
	if err != nil {
		return "", err
	}
	var b strings.Builder
	b.WriteString("Figure 3 — Prompt containing handwritten matching rules for the product domain.\n\n[PROMPT]\n")
	b.WriteString(p)
	b.WriteString("\n\n[SUBSET OF LEARNED RULES]\n")
	limit := 3
	if len(learned) < limit {
		limit = len(learned)
	}
	for i := 0; i < limit; i++ {
		fmt.Fprintf(&b, "%d. %s\n", i+1, learned[i])
	}
	return b.String(), nil
}

// figure4 renders the two explanation conversations (Walmart-Amazon
// and DBLP-Scholar).
func (s *Session) figure4() (string, error) {
	var b strings.Builder
	b.WriteString("Figure 4 — Conversations asking for structured explanations of matching decisions.\n")
	for _, key := range []string{"wa", "ds"} {
		ds := datasets.MustLoad(key)
		design, _, err := s.BestZeroShot(llm.GPT4, key)
		if err != nil {
			return "", err
		}
		pair := samplePair(key, false)
		matchPrompt := prompt.Spec{Design: design, Domain: ds.Schema.Domain}.Build(pair)
		client := s.Model(llm.GPT4)
		first, err := client.Chat([]llm.Message{{Role: llm.User, Content: matchPrompt}})
		if err != nil {
			return "", err
		}
		second, err := client.Chat([]llm.Message{
			{Role: llm.User, Content: matchPrompt},
			{Role: llm.Assistant, Content: first.Content},
			{Role: llm.User, Content: prompt.ExplanationRequest},
		})
		if err != nil {
			return "", err
		}
		fmt.Fprintf(&b, "\n=== %s ===\n[USER]\n%s\n[AI]\n%s\n[USER]\n%s\n[AI]\n%s\n",
			ds.Name, matchPrompt, first.Content, prompt.ExplanationRequest, second.Content)
	}
	return b.String(), nil
}

// figure5 renders the error-class generation prompt with the first
// part of the model's answer.
func (s *Session) figure5() (string, error) {
	fps, _, err := s.errorCases("ds")
	if err != nil {
		return "", err
	}
	if len(fps) == 0 {
		return "Figure 5 — no false positives available to analyze.\n", nil
	}
	limit := 2
	if len(fps) < limit {
		limit = len(fps)
	}
	rendered := make([]string, limit)
	for i := 0; i < limit; i++ {
		rendered[i] = errorclass.Render(fps[i])
	}
	p := prompt.ErrorClassRequest("false positive", entity.Publication, rendered)
	answer, err := s.chat(llm.GPT4Turbo, p)
	if err != nil {
		return "", err
	}
	return "Figure 5 — Prompt for the automatic generation of error classes (excerpt: 2 cases).\n\n[PROMPT]\n" +
		p + "\n[AI ANSWER]\n" + answer + "\n", nil
}

// figure6 renders the error-classification prompt for one case.
func (s *Session) figure6() (string, error) {
	fps, _, err := s.errorCases("ds")
	if err != nil {
		return "", err
	}
	if len(fps) == 0 {
		return "Figure 6 — no false positives available to classify.\n", nil
	}
	turbo := s.Model(llm.GPT4Turbo)
	classes, err := errorclass.Discover(turbo, entity.Publication, fps, true)
	if err != nil {
		return "", err
	}
	listed := make([]string, len(classes))
	for i, cl := range classes {
		listed[i] = cl.String()
	}
	p := prompt.ErrorAssignRequest(listed, errorclass.Render(fps[0]))
	answer, err := s.chat(llm.GPT4Turbo, p)
	if err != nil {
		return "", err
	}
	return "Figure 6 — Prompt used for the classification of errors.\n\n[PROMPT]\n" +
		p + "\n[AI ANSWER]\n" + answer + "\n", nil
}
