package experiments

import (
	"fmt"
	"io"

	"llm4em/internal/datasets"
	"llm4em/internal/llm"
	"llm4em/internal/prompt"
	"llm4em/internal/resolve"
)

// This file is the prompt-strategy ablation harness: it sweeps the
// uncertain-band strategy (pairwise match, grouped compare, grouped
// select, match plus the reason tier) against the width of the
// uncertain band on grouped-candidate fixtures
// (datasets.GroupedPairs) and reports, per cell, quality and the cost
// axis the strategies exist to move — fresh LLM calls per escalated
// query. Every cell is reproducible from the seed: fixtures and the
// simulated models are deterministic.

// StrategyBand names one uncertain-band width for the sweep.
type StrategyBand struct {
	// Name labels the band in reports.
	Name string
	// AcceptAbove and RejectBelow are the cascade thresholds defining
	// the band.
	AcceptAbove float64
	RejectBelow float64
}

// StrategyBands returns the default band sweep: the production
// thresholds and a widened band that escalates more of each group.
func StrategyBands() []StrategyBand {
	return []StrategyBand{
		{Name: "default", AcceptAbove: resolve.DefaultAcceptAbove, RejectBelow: resolve.DefaultRejectBelow},
		{Name: "wide", AcceptAbove: 0.97, RejectBelow: 0.05},
	}
}

// StrategiesConfig scales a strategy ablation sweep.
type StrategiesConfig struct {
	// Model is the LLM table name answering the uncertain band
	// (default GPT-mini).
	Model string
	// Seed drives fixture generation; same seed, same report.
	Seed string
	// Dataset is the product dataset key supplying the grouped
	// fixtures (default "wdc").
	Dataset string
	// Groups and Candidates size the fixture set: Groups query groups
	// of Candidates labelled pairs each (defaults 80 and 4).
	Groups     int
	Candidates int
	// Bands are the uncertain-band widths to sweep (nil means
	// StrategyBands).
	Bands []StrategyBand
	// Workers bounds the engine worker pool (0 = pipeline default).
	Workers int
}

func (c StrategiesConfig) withDefaults() StrategiesConfig {
	if c.Model == "" {
		c.Model = llm.GPTMini
	}
	if c.Seed == "" {
		c.Seed = "strategies"
	}
	if c.Dataset == "" {
		c.Dataset = "wdc"
	}
	if c.Groups == 0 {
		c.Groups = 80
	}
	if c.Candidates == 0 {
		c.Candidates = 4
	}
	if len(c.Bands) == 0 {
		c.Bands = StrategyBands()
	}
	return c
}

// StrategiesSmoke is the small seeded configuration CI runs and the
// golden report pins.
func StrategiesSmoke() StrategiesConfig {
	return StrategiesConfig{Seed: "ci-smoke", Groups: 40}
}

// StrategyCell is one sweep cell: one prompt strategy under one
// uncertain-band width.
type StrategyCell struct {
	// Strategy is the strategy label ("match", "compare", "select",
	// "match+reason"); Band names the swept band.
	Strategy string
	Band     string
	// Groups is the number of fixture groups; EscalatedGroups how many
	// had at least one uncertain pair; Pairs the evaluated pair count.
	Groups          int
	EscalatedGroups int
	Pairs           int
	// F1 is the matching quality in [0, 100].
	F1 float64
	// LLMPairs counts escalated pairs; Calls the fresh client
	// round-trips that decided them (the number grouping shrinks);
	// CallsPerEscalated is Calls over EscalatedGroups.
	LLMPairs          int
	Calls             int
	CallsPerEscalated float64
	// GroupFallbacks counts pairs degraded to pairwise prompts after a
	// malformed grouped reply; Cents estimates the cell's model spend.
	GroupFallbacks int
	Cents          float64
}

// strategyVariants enumerates the swept strategy rows: the three
// first-pass formulations plus the reason tier stacked on match.
type strategyVariant struct {
	label    string
	strategy prompt.Strategy
	reason   bool
}

func strategyVariants() []strategyVariant {
	return []strategyVariant{
		{label: "match", strategy: prompt.StrategyMatch},
		{label: "compare", strategy: prompt.StrategyCompare},
		{label: "select", strategy: prompt.StrategySelect},
		{label: "match+reason", strategy: prompt.StrategyMatch, reason: true},
	}
}

// Strategies sweeps strategy × band width over the grouped fixtures
// and returns the cells in deterministic order: band, then strategy.
func Strategies(cfg StrategiesConfig) ([]StrategyCell, error) {
	c := cfg.withDefaults()
	client, err := llm.New(c.Model)
	if err != nil {
		return nil, fmt.Errorf("experiments: strategies: %w", err)
	}
	ds, err := datasets.Load(c.Dataset)
	if err != nil {
		return nil, fmt.Errorf("experiments: strategies: %w", err)
	}
	pairs, err := datasets.GroupedPairs(c.Dataset, c.Seed, c.Groups, c.Candidates)
	if err != nil {
		return nil, fmt.Errorf("experiments: strategies: %w", err)
	}
	groups := resolve.GroupPairs(pairs)

	var cells []StrategyCell
	for _, band := range c.Bands {
		for _, v := range strategyVariants() {
			opts := resolve.EvalOptions{
				Cascade: resolve.CascadeOptions{
					AcceptAbove: band.AcceptAbove,
					RejectBelow: band.RejectBelow,
					Strategy:    v.strategy,
					ReasonTier:  v.reason,
				},
				Domain:  ds.Schema.Domain,
				Workers: c.Workers,
			}
			res, err := resolve.EvaluateGroups(client, opts, groups)
			if err != nil {
				return nil, fmt.Errorf("experiments: strategies %s/%s: %w", v.label, band.Name, err)
			}
			cell := StrategyCell{
				Strategy:        v.label,
				Band:            band.Name,
				Groups:          len(groups),
				EscalatedGroups: res.EscalatedGroups,
				Pairs:           len(res.Outcomes),
				F1:              res.F1(),
				LLMPairs:        res.Report.LLMPairs,
				Calls:           int(res.ClientCalls),
				GroupFallbacks:  res.Report.GroupFallbacks,
				Cents:           res.Report.Cents,
			}
			if res.EscalatedGroups > 0 {
				cell.CallsPerEscalated = float64(cell.Calls) / float64(res.EscalatedGroups)
			}
			cells = append(cells, cell)
		}
	}
	return cells, nil
}

// StrategiesTable renders sweep cells as a report table.
func StrategiesTable(cells []StrategyCell) *Table {
	t := &Table{
		ID:    "S1",
		Title: "Prompt strategies for the uncertain band (match / compare / select / reason)",
		Columns: []string{"Strategy", "Band", "Groups", "Escalated", "Pairs",
			"F1", "LLM pairs", "Calls", "Calls/esc", "Fallback pairs", "Cents"},
	}
	for _, c := range cells {
		t.AddRow(c.Strategy, c.Band, fmt.Sprintf("%d", c.Groups),
			fmt.Sprintf("%d", c.EscalatedGroups), fmt.Sprintf("%d", c.Pairs),
			f2(c.F1), fmt.Sprintf("%d", c.LLMPairs), fmt.Sprintf("%d", c.Calls),
			f2(c.CallsPerEscalated), fmt.Sprintf("%d", c.GroupFallbacks),
			fmt.Sprintf("%.3f", c.Cents))
	}
	return t
}

// WriteStrategiesReport runs the sweep and renders it as one markdown
// document — the artifact `emexperiments -strategies` regenerates and
// the golden test pins.
func WriteStrategiesReport(w io.Writer, cfg StrategiesConfig) error {
	c := cfg.withDefaults()
	fmt.Fprintln(w, "# llm4em — prompt strategy ablation")
	fmt.Fprintln(w)
	fmt.Fprintf(w, "Seed `%s`, model %s, dataset %s, %d groups × %d candidates.\n",
		c.Seed, c.Model, c.Dataset, c.Groups, c.Candidates)
	fmt.Fprintln(w, "Regenerated deterministically by `emexperiments -strategies`; grouped")
	fmt.Fprintln(w, "compare/select formulations follow Wang et al. (\"Match, Compare, or")
	fmt.Fprintln(w, "Select?\"), the reason tier the structured multi-step reasoning prompt.")
	fmt.Fprintln(w, "\"Calls/esc\" is fresh LLM round-trips per escalated query — the number")
	fmt.Fprintln(w, "grouping exists to shrink.")
	fmt.Fprintln(w)
	cells, err := Strategies(c)
	if err != nil {
		return err
	}
	fmt.Fprintln(w, StrategiesTable(cells).Markdown())
	return nil
}
