package experiments

import (
	"fmt"

	"llm4em/internal/core"
	"llm4em/internal/datasets"
	"llm4em/internal/errorclass"
	"llm4em/internal/explain"
	"llm4em/internal/llm"
)

// explanationData bundles the Section 6 artifacts for one dataset:
// per-pair decisions of the best GPT-4 zero-shot prompt and the
// structured explanations for every test pair.
type explanationData struct {
	decisions    []core.Decision
	explanations []explain.Explanation
}

var explainDatasets = []string{"ds", "wa"}

// explanations generates (or returns cached) Section 6 data for a
// dataset, using GPT-4 with its best zero-shot prompt, as the paper
// does.
func (s *Session) explanations(dataset string) (explanationData, error) {
	s.mu.Lock()
	if s.explainData == nil {
		s.explainData = map[string]explanationData{}
	}
	if d, ok := s.explainData[dataset]; ok {
		s.mu.Unlock()
		return d, nil
	}
	s.mu.Unlock()

	design, _, err := s.BestZeroShot(llm.GPT4, dataset)
	if err != nil {
		return explanationData{}, err
	}
	ds := datasets.MustLoad(dataset)
	pairs := s.Cfg.testPairs(ds)
	client := s.Model(llm.GPT4)
	matcher := &core.Matcher{Client: client, Design: design, Domain: ds.Schema.Domain, Workers: s.Cfg.Workers}
	res, err := matcher.EvaluateKeeping(pairs)
	if err != nil {
		return explanationData{}, err
	}
	exps, err := explain.GenerateAll(client, design, ds.Schema.Domain, pairs)
	if err != nil {
		return explanationData{}, err
	}
	d := explanationData{decisions: res.Decisions, explanations: exps}
	s.mu.Lock()
	s.explainData[dataset] = d
	s.mu.Unlock()
	return d, nil
}

// Table10 reproduces the global attribute-importance insights for
// DBLP-Scholar and Walmart-Amazon, plus the Section 6.1 correlation
// of model-generated similarities with Cosine and Generalized Jaccard.
func Table10(s *Session) ([]*Table, error) {
	var out []*Table
	for _, key := range explainDatasets {
		ds := datasets.MustLoad(key)
		data, err := s.explanations(key)
		if err != nil {
			return nil, err
		}
		rows := explain.Aggregate(data.explanations)
		t := &Table{
			ID:    "Table 10 (" + ds.Abbrev + ")",
			Title: "Attribute importance for matches and non-matches, " + ds.Name,
			Columns: []string{
				"Attribute", "M Freq", "M Mean Imp", "M StdDev",
				"N Freq", "N Mean Imp", "N StdDev",
			},
		}
		limit := 7
		if len(rows) < limit {
			limit = len(rows)
		}
		for _, r := range rows[:limit] {
			t.AddRow(
				r.Attribute,
				f2(r.MatchFreq), f2(r.MatchMean), f2(r.MatchStdDev),
				f2(r.NonFreq), f2(r.NonMean), f2(r.NonStdDev),
			)
		}
		corr := explain.CorrelationWithStringSims(data.explanations)
		t.AddRow("— similarity correlation:",
			fmt.Sprintf("Cosine %.2f", corr.Cosine),
			fmt.Sprintf("GenJaccard %.2f", corr.GeneralizedJaccard),
			fmt.Sprintf("n=%d", corr.Samples), "", "", "")
		out = append(out, t)
	}
	return out, nil
}

// errorCases returns the false positives and false negatives of the
// Section 6 runs together with their explanations.
func (s *Session) errorCases(dataset string) (fps, fns []errorclass.Case, err error) {
	data, err := s.explanations(dataset)
	if err != nil {
		return nil, nil, err
	}
	fps, fns = errorclass.CollectErrors(data.decisions, data.explanations)
	return fps, fns, nil
}

// errorClassTable builds one of Tables 11/12 for a dataset.
func (s *Session) errorClassTable(id, dataset string) (*Table, error) {
	ds := datasets.MustLoad(dataset)
	fps, fns, err := s.errorCases(dataset)
	if err != nil {
		return nil, err
	}
	turbo := s.Model(llm.GPT4Turbo)
	t := &Table{
		ID:      id,
		Title:   "Generated error classes for " + ds.Name + " with expert-annotated error counts",
		Columns: []string{"Direction", "Error class", "# errors"},
	}
	for _, block := range []struct {
		label string
		cases []errorclass.Case
	}{
		{fmt.Sprintf("False Negatives (%d overall)", len(fns)), fns},
		{fmt.Sprintf("False Positives (%d overall)", len(fps)), fps},
	} {
		if len(block.cases) == 0 {
			t.AddRow(block.label, "(no errors)", "0")
			continue
		}
		classes, err := errorclass.Discover(turbo, ds.Schema.Domain, block.cases, blockIsFP(block.label))
		if err != nil {
			return nil, err
		}
		for _, cc := range errorclass.CountByExpert(classes, block.cases) {
			t.AddRow(block.label, cc.Class.Name+": "+cc.Class.Description, fmt.Sprintf("%d", cc.Errors))
		}
	}
	return t, nil
}

func blockIsFP(label string) bool {
	return len(label) > 6 && label[:7] == "False P"
}

// Table11 reproduces the generated error classes for DBLP-Scholar.
func Table11(s *Session) (*Table, error) {
	return s.errorClassTable("Table 11", "ds")
}

// Table12 reproduces the generated error classes for Walmart-Amazon.
func Table12(s *Session) (*Table, error) {
	return s.errorClassTable("Table 12", "wa")
}

// Table13 reproduces the error-assignment accuracies: for each error
// class of Tables 11/12, the agreement between GPT4-turbo's
// assignments and the expert annotation.
func Table13(s *Session) (*Table, error) {
	t := &Table{
		ID:      "Table 13",
		Title:   "Accuracy of GPT4-turbo for classifying errors into the generated classes",
		Columns: []string{"Error class", "W-A FP", "W-A FN", "D-S FP", "D-S FN"},
	}
	turbo := s.Model(llm.GPT4Turbo)

	type column struct {
		dataset string
		fp      bool
	}
	cols := []column{{"wa", true}, {"wa", false}, {"ds", true}, {"ds", false}}
	acc := make([][]float64, len(cols))
	for ci, col := range cols {
		ds := datasets.MustLoad(col.dataset)
		fps, fns, err := s.errorCases(col.dataset)
		if err != nil {
			return nil, err
		}
		cases := fns
		if col.fp {
			cases = fps
		}
		if len(cases) == 0 {
			acc[ci] = make([]float64, 5)
			continue
		}
		classes, err := errorclass.Discover(turbo, ds.Schema.Domain, cases, col.fp)
		if err != nil {
			return nil, err
		}
		a, err := errorclass.AssignmentAccuracy(turbo, classes, cases)
		if err != nil {
			return nil, err
		}
		acc[ci] = a
	}
	n := 5
	for i := 0; i < n; i++ {
		row := []string{fmt.Sprintf("%d", i+1)}
		for ci := range cols {
			if i < len(acc[ci]) {
				row = append(row, f2(acc[ci][i]))
			} else {
				row = append(row, "-")
			}
		}
		t.AddRow(row...)
	}
	meanRow := []string{"Mean"}
	for ci := range cols {
		sum, cnt := 0.0, 0
		for _, v := range acc[ci] {
			sum += v
			cnt++
		}
		if cnt == 0 {
			meanRow = append(meanRow, "-")
			continue
		}
		meanRow = append(meanRow, f2(sum/float64(cnt)))
	}
	t.AddRow(meanRow...)
	return t, nil
}
