// Package experiments regenerates every table and figure of the
// paper's evaluation. Each TableN function reproduces the
// corresponding table; Figure rendering lives in figures.go. A
// Session caches expensive intermediate results (zero-shot matrices,
// trained baselines, fine-tuned adapters, explanation sets) so that
// tables sharing inputs do not recompute them.
package experiments

import (
	"fmt"
	"io"
	"strings"

	"llm4em/internal/datasets"
	"llm4em/internal/entity"
	"llm4em/internal/llm"
)

// Config scales an experiment session. The zero value of MaxTest
// means "full test sets" (the paper's setting); benches use a cap to
// stay fast.
type Config struct {
	// Models are the LLM table names to evaluate; nil means the six
	// study models.
	Models []string
	// Datasets are the dataset keys; nil means all six benchmarks.
	Datasets []string
	// MaxTest caps the number of test pairs per dataset (0 = all).
	// The cap samples proportionally from matches and non-matches to
	// keep the class ratio.
	MaxTest int
	// FTEpochs is the number of fine-tuning epochs (default 10, as in
	// the paper).
	FTEpochs int
	// Workers bounds the per-evaluation worker pool of the matching
	// pipeline (0 selects the pipeline default). The sessions' own
	// prefetch parallelism is CPU-bound and independently capped at
	// GOMAXPROCS.
	Workers int
}

// Default returns the paper-scale configuration.
func Default() Config {
	return Config{FTEpochs: 10}
}

// Quick returns a configuration scaled down for benchmarks and smoke
// tests.
func Quick(maxTest int) Config {
	return Config{MaxTest: maxTest, FTEpochs: 4}
}

func (c Config) models() []string {
	if len(c.Models) > 0 {
		return c.Models
	}
	return llm.StudyModels()
}

func (c Config) datasets() []string {
	if len(c.Datasets) > 0 {
		return c.Datasets
	}
	return datasets.Keys()
}

// testPairs returns the (possibly capped) test split of a dataset.
func (c Config) testPairs(ds *datasets.Dataset) []entity.Pair {
	if c.MaxTest <= 0 || len(ds.Test) <= c.MaxTest {
		return ds.Test
	}
	// Preserve the positive/negative ratio under the cap.
	counts := entity.Count(ds.Test)
	wantPos := c.MaxTest * counts.Pos / counts.Total()
	if wantPos < 1 {
		wantPos = 1
	}
	wantNeg := c.MaxTest - wantPos
	out := make([]entity.Pair, 0, c.MaxTest)
	for _, p := range ds.Test {
		switch {
		case p.Match && wantPos > 0:
			out = append(out, p)
			wantPos--
		case !p.Match && wantNeg > 0:
			out = append(out, p)
			wantNeg--
		}
	}
	return out
}

// Table is a rendered experiment result: column headers plus rows of
// pre-formatted cells.
type Table struct {
	ID      string
	Title   string
	Columns []string
	Rows    [][]string
}

// AddRow appends one row of cells.
func (t *Table) AddRow(cells ...string) {
	t.Rows = append(t.Rows, cells)
}

// Fprint renders the table with aligned columns.
func (t *Table) Fprint(w io.Writer) {
	widths := make([]int, len(t.Columns))
	for i, c := range t.Columns {
		widths[i] = len(c)
	}
	for _, row := range t.Rows {
		for i, cell := range row {
			if i < len(widths) && len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	fmt.Fprintf(w, "%s — %s\n", t.ID, t.Title)
	var sep strings.Builder
	for i, c := range t.Columns {
		fmt.Fprintf(w, "%-*s  ", widths[i], c)
		sep.WriteString(strings.Repeat("-", widths[i]))
		sep.WriteString("  ")
	}
	fmt.Fprintln(w)
	fmt.Fprintln(w, strings.TrimRight(sep.String(), " "))
	for _, row := range t.Rows {
		for i, cell := range row {
			if i < len(widths) {
				fmt.Fprintf(w, "%-*s  ", widths[i], cell)
			}
		}
		fmt.Fprintln(w)
	}
}

// String renders the table to a string.
func (t *Table) String() string {
	var b strings.Builder
	t.Fprint(&b)
	return b.String()
}

// Markdown renders the table as a GitHub-flavored markdown table.
func (t *Table) Markdown() string {
	var b strings.Builder
	fmt.Fprintf(&b, "### %s — %s\n\n", t.ID, t.Title)
	b.WriteString("| " + strings.Join(t.Columns, " | ") + " |\n")
	b.WriteString("|" + strings.Repeat(" --- |", len(t.Columns)) + "\n")
	for _, row := range t.Rows {
		cells := make([]string, len(t.Columns))
		for i := range cells {
			if i < len(row) {
				cells[i] = strings.ReplaceAll(row[i], "|", "\\|")
			}
		}
		b.WriteString("| " + strings.Join(cells, " | ") + " |\n")
	}
	return b.String()
}

// f2 formats an F1 value the way the paper's tables do.
func f2(x float64) string { return fmt.Sprintf("%.2f", x) }

// signed formats a delta with an explicit sign.
func signed(x float64) string { return fmt.Sprintf("%+.2f", x) }
