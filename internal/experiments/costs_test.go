package experiments

import (
	"strings"
	"testing"
)

func costSession() *Session {
	cfg := Quick(120)
	cfg.Models = []string{"GPT-mini", "GPT-4", "GPT-4o"}
	cfg.Datasets = []string{"wdc"}
	return NewSession(cfg)
}

func TestTable8Shapes(t *testing.T) {
	s := costSession()
	tb, err := Table8(s)
	if err != nil {
		t.Fatal(err)
	}
	// 5 scenarios x 3 hosted models + fine-tune train + inference rows.
	if len(tb.Rows) != 17 {
		t.Fatalf("Table 8 has %d rows, want 17:\n%s", len(tb.Rows), tb.String())
	}
	// GPT-4 must be the most expensive model in every scenario.
	costOf := map[string]map[string]string{}
	for _, row := range tb.Rows {
		if costOf[row[0]] == nil {
			costOf[row[0]] = map[string]string{}
		}
		costOf[row[0]][row[1]] = row[7]
	}
	for _, sc := range []string{"Zeroshot", "6-Shot", "10-Shot"} {
		g4 := costOf[sc]["GPT-4"]
		mini := costOf[sc]["GPT-mini"]
		if g4 <= mini { // string compare works: same format, g4 has larger magnitude
			if len(g4) <= len(mini) {
				t.Errorf("%s: GPT-4 cost %s should exceed GPT-mini cost %s", sc, g4, mini)
			}
		}
	}
}

func TestTable9Shapes(t *testing.T) {
	cfg := Quick(120)
	cfg.Models = []string{"GPT-4", "Llama2"}
	cfg.Datasets = []string{"wdc"}
	s := NewSession(cfg)
	tb, err := Table9(s)
	if err != nil {
		t.Fatal(err)
	}
	if len(tb.Rows) != 2 {
		t.Fatalf("Table 9 has %d rows", len(tb.Rows))
	}
	var llamaRow, gptRow []string
	for _, row := range tb.Rows {
		switch row[0] {
		case "Llama2":
			llamaRow = row
		case "GPT-4":
			gptRow = row
		}
	}
	// GPT-4 is not fine-tunable: its last column must be "-"; Llama2's
	// must carry the quantized latency.
	if gptRow[len(gptRow)-1] != "-" {
		t.Errorf("GPT-4 fine-tune latency = %q, want -", gptRow[len(gptRow)-1])
	}
	if llamaRow[len(llamaRow)-1] != "0.30 s" {
		t.Errorf("Llama2 fine-tuned latency = %q, want 0.30 s", llamaRow[len(llamaRow)-1])
	}
}

func TestPrecisionRecallTables(t *testing.T) {
	s := quickSession()
	ts, err := PrecisionRecall(s)
	if err != nil {
		t.Fatal(err)
	}
	if len(ts) != 2 {
		t.Fatalf("%d P/R tables, want 2", len(ts))
	}
	for _, row := range ts[0].Rows {
		for _, cell := range row[1:] {
			if !strings.Contains(cell, "/") {
				t.Errorf("P/R cell %q lacks the P/R separator", cell)
			}
		}
	}
}

func TestMarkdownRendering(t *testing.T) {
	tb := &Table{ID: "X", Title: "demo", Columns: []string{"a", "b"}}
	tb.AddRow("1", "with|pipe")
	md := tb.Markdown()
	for _, want := range []string{"### X — demo", "| a | b |", "| --- | --- |", "with\\|pipe"} {
		if !strings.Contains(md, want) {
			t.Errorf("markdown missing %q:\n%s", want, md)
		}
	}
}

func TestAblationSerializationShape(t *testing.T) {
	s := quickSession()
	tb, err := AblationSerialization(s, "wdc")
	if err != nil {
		t.Fatal(err)
	}
	if len(tb.Rows) != 2 { // two models in the quick session
		t.Fatalf("A1 has %d rows", len(tb.Rows))
	}
	for _, row := range tb.Rows {
		if len(row) != 4 {
			t.Errorf("A1 row %v malformed", row)
		}
	}
}

func TestAblationBatchShape(t *testing.T) {
	cfg := Quick(100)
	cfg.Models = []string{"GPT-mini"}
	cfg.Datasets = []string{"wdc"}
	s := NewSession(cfg)
	tb, err := AblationBatch(s, "wdc", "GPT-mini")
	if err != nil {
		t.Fatal(err)
	}
	if len(tb.Rows) != 5 {
		t.Fatalf("A3 has %d rows", len(tb.Rows))
	}
	// Prompt tokens per pair must fall monotonically with batch size.
	prev := 1 << 30
	for _, row := range tb.Rows {
		var toks int
		if _, err := parseInt(row[2], &toks); err != nil {
			t.Fatalf("bad token cell %q", row[2])
		}
		if toks >= prev {
			t.Errorf("tokens per pair should shrink with batch size: %v", tb.Rows)
			break
		}
		prev = toks
	}
}

func parseInt(s string, out *int) (int, error) {
	n := 0
	for _, r := range s {
		if r < '0' || r > '9' {
			break
		}
		n = n*10 + int(r-'0')
	}
	*out = n
	return n, nil
}

func TestErrorProfilesShape(t *testing.T) {
	cfg := Quick(300)
	cfg.Models = []string{"GPT-4", "GPT-mini"}
	cfg.Datasets = []string{"wa"}
	s := NewSession(cfg)
	tb, err := ErrorProfiles(s, "wa", []string{"GPT-4", "GPT-mini"})
	if err != nil {
		t.Fatal(err)
	}
	if len(tb.Rows) != 2 {
		t.Fatalf("future-work table has %d rows", len(tb.Rows))
	}
	for _, row := range tb.Rows {
		if !strings.Contains(row[1], "/") {
			t.Errorf("errors cell %q malformed", row[1])
		}
		for _, cell := range row[2:] {
			if !strings.HasSuffix(cell, "%") {
				t.Errorf("share cell %q should be a percentage", cell)
			}
		}
	}
}
