package experiments

import (
	"fmt"

	"llm4em/internal/core"
	"llm4em/internal/cost"
	"llm4em/internal/datasets"
	"llm4em/internal/llm"
	"llm4em/internal/prompt"
	"llm4em/internal/tokenize"
)

// scenario identifies one column group of Tables 8 and 9.
type scenario string

// The cost/runtime scenarios of Section 5.
const (
	scZeroShot     scenario = "Zeroshot"
	sc6Shot        scenario = "6-Shot"
	sc10Shot       scenario = "10-Shot"
	scRulesWritten scenario = "Rules (written)"
	scRulesLearned scenario = "Rules (learned)"
	scFineTune     scenario = "Fine-tune (inference)"
)

func costScenarios() []scenario {
	return []scenario{scZeroShot, sc6Shot, sc10Shot, scRulesWritten, scRulesLearned}
}

// bestScenarioResult returns the best-performing run of a scenario
// for a model on a dataset ("Best performing prompts are selected for
// the analysis for each scenario", Table 8 caption).
func (s *Session) bestScenarioResult(sc scenario, model, dataset string) (core.Result, error) {
	switch sc {
	case scZeroShot:
		_, r, err := s.BestZeroShot(model, dataset)
		return r, err
	case sc6Shot, sc10Shot:
		k := 6
		if sc == sc10Shot {
			k = 10
		}
		var best core.Result
		bestF1 := -1.0
		for _, method := range DemoMethods() {
			r, err := s.FewShot(model, dataset, method, k)
			if err != nil {
				return core.Result{}, err
			}
			if r.F1() > bestF1 {
				bestF1, best = r.F1(), r
			}
		}
		return best, nil
	case scRulesWritten:
		return s.WithRules(model, dataset, RulesHandwritten)
	case scRulesLearned:
		return s.WithRules(model, dataset, RulesLearned)
	case scFineTune:
		return s.FineTuned(model, dataset, dataset)
	default:
		return core.Result{}, fmt.Errorf("experiments: unknown scenario %q", sc)
	}
}

// Table8 reproduces the cost analysis for the hosted LLMs on WDC
// Products. Rows are (scenario, model) combinations; the reference
// for the increase columns is zero-shot GPT-mini, as in the paper.
func Table8(s *Session) (*Table, error) {
	const dataset = "wdc"
	t := &Table{
		ID:    "Table 8",
		Title: "Costs for hosted LLMs on WDC Products (best prompt per scenario)",
		Columns: []string{
			"Scenario", "Model", "F1", "Tok/prompt", "Tok/compl", "Tok/comb",
			"Tok xZS", "Cost/prompt (¢)", "Cost xZS-mini", "Cost per ΔF1",
		},
	}

	type cell struct {
		f1, meanPrompt, meanCompl, costCents float64
	}
	cells := map[scenario]map[string]cell{}
	for _, sc := range costScenarios() {
		cells[sc] = map[string]cell{}
		for _, mn := range llm.HostedModels() {
			r, err := s.bestScenarioResult(sc, mn, dataset)
			if err != nil {
				return nil, err
			}
			pricing, _ := cost.For(mn)
			cells[sc][mn] = cell{
				f1:         r.F1(),
				meanPrompt: r.MeanPromptTokens(),
				meanCompl:  r.MeanCompletionTokens(),
				costCents:  cost.PerPromptCents(pricing, r.MeanPromptTokens(), r.MeanCompletionTokens()),
			}
		}
	}
	ref := cells[scZeroShot]["GPT-mini"]

	for _, sc := range costScenarios() {
		for _, mn := range llm.HostedModels() {
			c := cells[sc][mn]
			combined := c.meanPrompt + c.meanCompl
			refCombined := ref.meanPrompt + ref.meanCompl
			costRatio := c.costCents / ref.costCents
			deltaF1 := c.f1 - ref.f1
			perDelta := "-"
			if deltaF1 > 0 {
				perDelta = fmt.Sprintf("%.1fx", costRatio/deltaF1)
			}
			t.AddRow(
				string(sc), mn, f2(c.f1),
				fmt.Sprintf("%.0f", c.meanPrompt),
				fmt.Sprintf("%.0f", c.meanCompl),
				fmt.Sprintf("%.0f", combined),
				fmt.Sprintf("%.1fx", combined/refCombined),
				fmt.Sprintf("%.4f", c.costCents),
				fmt.Sprintf("%.1fx", costRatio),
				perDelta,
			)
		}
	}

	// Fine-tuning block (GPT-mini, the hosted fine-tunable model):
	// training cost per example and inference cost.
	ftr, err := s.bestScenarioResult(scFineTune, "GPT-mini", dataset)
	if err != nil {
		return nil, err
	}
	ftPricing, _ := cost.ForFineTuned("GPT-mini")
	ds := datasets.MustLoad(dataset)
	trainTokens := meanTrainingTokens(ds)
	trainCost := cost.TrainingPerExampleCents(ftPricing, trainTokens, s.Cfg.FTEpochs)
	t.AddRow(
		"Fine-tune (train)", "GPT-mini", "-",
		fmt.Sprintf("%.0f", trainTokens), "1",
		fmt.Sprintf("%.0f", trainTokens+1),
		fmt.Sprintf("%.1fx", (trainTokens+1)/(ref.meanPrompt+ref.meanCompl)),
		fmt.Sprintf("%.4f", trainCost),
		fmt.Sprintf("%.1fx", trainCost/ref.costCents), "-",
	)
	infCost := cost.PerPromptCents(ftPricing.Inference, ftr.MeanPromptTokens(), ftr.MeanCompletionTokens())
	deltaF1 := ftr.F1() - ref.f1
	perDelta := "-"
	if deltaF1 > 0 {
		perDelta = fmt.Sprintf("%.2fx", infCost/ref.costCents/deltaF1)
	}
	t.AddRow(
		string(scFineTune), "GPT-mini", f2(ftr.F1()),
		fmt.Sprintf("%.0f", ftr.MeanPromptTokens()),
		fmt.Sprintf("%.0f", ftr.MeanCompletionTokens()),
		fmt.Sprintf("%.0f", ftr.MeanPromptTokens()+ftr.MeanCompletionTokens()),
		fmt.Sprintf("%.1fx", (ftr.MeanPromptTokens()+ftr.MeanCompletionTokens())/(ref.meanPrompt+ref.meanCompl)),
		fmt.Sprintf("%.4f", infCost),
		fmt.Sprintf("%.1fx", infCost/ref.costCents),
		perDelta,
	)
	return t, nil
}

// meanTrainingTokens estimates the mean tokens of one fine-tuning
// example: the domain-simple-force prompt plus the one-token label.
func meanTrainingTokens(ds *datasets.Dataset) float64 {
	spec := prompt.Spec{Design: ftDesign, Domain: ds.Schema.Domain}
	total := 0
	n := len(ds.Train)
	if n > 500 {
		n = 500
	}
	for _, p := range ds.Train[:n] {
		total += tokenize.EstimateTokens(spec.Build(p))
	}
	return float64(total) / float64(n)
}

// Table9 reproduces the runtime analysis: mean seconds per request on
// WDC Products for every model and scenario, using the
// best-performing prompt per scenario. Fine-tuned local models run at
// the quantized deployment speed.
func Table9(s *Session) (*Table, error) {
	const dataset = "wdc"
	t := &Table{
		ID:    "Table 9",
		Title: "Runtime in seconds per prompt on WDC Products",
		Columns: []string{
			"Model", "Zeroshot", "6-Shot", "10-Shot",
			"Rules (written)", "Rules (learned)", "Fine-Tune (inference)",
		},
	}
	for _, mn := range s.Cfg.models() {
		row := []string{mn}
		for _, sc := range costScenarios() {
			r, err := s.bestScenarioResult(sc, mn, dataset)
			if err != nil {
				return nil, err
			}
			row = append(row, fmt.Sprintf("%.2f s", r.MeanLatency().Seconds()))
		}
		p, _ := llm.ProfileByName(mn)
		if p.FTPlasticity > 0 {
			r, err := s.bestScenarioResult(scFineTune, mn, dataset)
			if err != nil {
				return nil, err
			}
			row = append(row, fmt.Sprintf("%.2f s", r.MeanLatency().Seconds()))
		} else {
			row = append(row, "-")
		}
		t.AddRow(row...)
	}
	return t, nil
}
