package experiments

import (
	"fmt"

	"llm4em/internal/datasets"
	"llm4em/internal/eval"
	"llm4em/internal/plm"
	"llm4em/internal/prompt"
)

// Table1 reproduces the dataset statistics table.
func Table1(cfg Config) *Table {
	t := &Table{
		ID:    "Table 1",
		Title: "Statistics for all datasets",
		Columns: []string{
			"Dataset", "Train #Pos", "Train #Neg",
			"Val #Pos", "Val #Neg", "Test #Pos", "Test #Neg",
		},
	}
	for _, key := range cfg.datasets() {
		ds := datasets.MustLoad(key)
		c := ds.Counts()
		t.AddRow(
			fmt.Sprintf("(%s) - %s", ds.Abbrev, ds.Name),
			fmt.Sprintf("%d", c.TrainPos), fmt.Sprintf("%d", c.TrainNeg),
			fmt.Sprintf("%d", c.ValPos), fmt.Sprintf("%d", c.ValNeg),
			fmt.Sprintf("%d", c.TestPos), fmt.Sprintf("%d", c.TestNeg),
		)
	}
	return t
}

// Table2 reproduces the zero-shot results: one table per dataset with
// F1 per prompt design and model, plus the per-model mean and
// standard deviation rows.
func Table2(s *Session) ([]*Table, error) {
	if err := s.PrefetchZeroShot(); err != nil {
		return nil, err
	}
	var out []*Table
	for _, key := range s.Cfg.datasets() {
		ds := datasets.MustLoad(key)
		t := &Table{
			ID:      "Table 2 (" + ds.Abbrev + ")",
			Title:   "Zero-shot F1 on " + ds.Name,
			Columns: append([]string{"Prompt"}, s.Cfg.models()...),
		}
		perModel := map[string][]float64{}
		for _, d := range prompt.Designs() {
			row := []string{d.Name}
			for _, mn := range s.Cfg.models() {
				r, err := s.ZeroShot(mn, d, key)
				if err != nil {
					return nil, err
				}
				row = append(row, f2(r.F1()))
				perModel[mn] = append(perModel[mn], r.F1())
			}
			t.AddRow(row...)
		}
		meanRow, sdRow := []string{"Mean"}, []string{"Standard deviation"}
		for _, mn := range s.Cfg.models() {
			meanRow = append(meanRow, f2(eval.Mean(perModel[mn])))
			sdRow = append(sdRow, f2(eval.StdDev(perModel[mn])))
		}
		t.AddRow(meanRow...)
		t.AddRow(sdRow...)
		out = append(out, t)
	}
	return out, nil
}

// Table3 reproduces the zero-shot averages over all datasets.
func Table3(s *Session) (*Table, error) {
	if err := s.PrefetchZeroShot(); err != nil {
		return nil, err
	}
	t := &Table{
		ID:      "Table 3",
		Title:   "Average zero-shot F1 over all datasets",
		Columns: append([]string{"Prompt"}, s.Cfg.models()...),
	}
	perModel := map[string][]float64{}
	for _, d := range prompt.Designs() {
		row := []string{d.Name}
		for _, mn := range s.Cfg.models() {
			var xs []float64
			for _, key := range s.Cfg.datasets() {
				r, err := s.ZeroShot(mn, d, key)
				if err != nil {
					return nil, err
				}
				xs = append(xs, r.F1())
			}
			avg := eval.Mean(xs)
			row = append(row, f2(avg))
			perModel[mn] = append(perModel[mn], avg)
		}
		t.AddRow(row...)
	}
	meanRow, sdRow := []string{"Mean"}, []string{"Standard deviation"}
	for _, mn := range s.Cfg.models() {
		meanRow = append(meanRow, f2(eval.Mean(perModel[mn])))
		sdRow = append(sdRow, f2(eval.StdDev(perModel[mn])))
	}
	t.AddRow(meanRow...)
	t.AddRow(sdRow...)
	return t, nil
}

// Table4 reproduces the comparison of the best zero-shot prompt per
// model with the PLM baselines, including the unseen-entity transfer
// rows: every PLM fine-tuned on a non-WDC dataset is applied to the
// WDC Products test set.
func Table4(s *Session) (*Table, error) {
	keys := s.Cfg.datasets()
	abbrevs := make([]string, len(keys))
	for i, k := range keys {
		abbrevs[i] = datasets.MustLoad(k).Abbrev
	}
	t := &Table{
		ID:      "Table 4",
		Title:   "Best zero-shot prompt per model vs. PLM baselines (F1)",
		Columns: append([]string{"Model"}, abbrevs...),
	}

	bestLLM := map[string]float64{}
	for _, mn := range s.Cfg.models() {
		row := []string{mn}
		for _, key := range keys {
			_, r, err := s.BestZeroShot(mn, key)
			if err != nil {
				return nil, err
			}
			f1 := r.F1()
			row = append(row, f2(f1))
			if f1 > bestLLM[key] {
				bestLLM[key] = f1
			}
		}
		t.AddRow(row...)
	}

	bestPLM := map[string]float64{}
	for _, variant := range []plm.Variant{plm.RoBERTa, plm.Ditto} {
		row := []string{variant.String()}
		for _, key := range keys {
			m := s.PLM(variant, key)
			f1 := m.Evaluate(s.Cfg.testPairs(datasets.MustLoad(key))).F1()
			row = append(row, f2(f1))
			if f1 > bestPLM[key] {
				bestPLM[key] = f1
			}
		}
		t.AddRow(row...)
	}

	deltaRow := []string{"Δ best LLM/PLM"}
	for _, key := range keys {
		deltaRow = append(deltaRow, signed(bestLLM[key]-bestPLM[key]))
	}
	t.AddRow(deltaRow...)

	// Unseen-entity transfer: models fine-tuned on the other datasets
	// applied to the WDC Products test split.
	if containsString(keys, "wdc") {
		wdcTest := s.Cfg.testPairs(datasets.MustLoad("wdc"))
		for _, variant := range []plm.Variant{plm.RoBERTa, plm.Ditto} {
			row := []string{variant.String() + " unseen"}
			deltas := []string{"Δ " + variant.String() + " unseen"}
			for _, key := range keys {
				if key == "wdc" {
					row = append(row, "-")
					deltas = append(deltas, "-")
					continue
				}
				m := s.PLM(variant, key)
				f1 := m.Evaluate(wdcTest).F1()
				row = append(row, f2(f1))
				inDomain := m.Evaluate(s.Cfg.testPairs(datasets.MustLoad(key))).F1()
				deltas = append(deltas, signed(f1-inDomain))
			}
			t.AddRow(row...)
			t.AddRow(deltas...)
		}
	}
	return t, nil
}

func containsString(xs []string, want string) bool {
	for _, x := range xs {
		if x == want {
			return true
		}
	}
	return false
}
