package experiments

import (
	"fmt"

	"llm4em/internal/datasets"
	"llm4em/internal/entity"
	"llm4em/internal/eval"
	"llm4em/internal/llm"
	"llm4em/internal/resolve"
)

// This file is the leave-one-dataset-out transfer evaluation of the
// cascade thresholds, after the Cross-Dataset EM study (SNIPPETS.md):
// calibrate the accept/reject thresholds on N−1 generator domains,
// apply them to the held-out one, and compare against thresholds
// calibrated in-domain. The gap quantifies how much of the cascade's
// 0.9/0.15 configuration transfers across domains for free.

// Threshold grids the calibration sweeps. The band verdicts are
// computed once for the widest (lowest reject, highest accept) band,
// so adding grid points costs arithmetic, not model calls.
var (
	acceptGrid = []float64{0.50, 0.60, 0.70, 0.80, 0.85, 0.90, 0.95}
	rejectGrid = []float64{0.02, 0.05, 0.10, 0.15, 0.20, 0.30, 0.40}
)

// CalibrationSet is one domain's labelled calibration pairs. The
// domain steers the escalation prompts, so pooled cross-domain
// calibration still prompts each pair in its own dialect.
type CalibrationSet struct {
	Domain entity.Domain
	Pairs  []entity.Pair
}

// ThresholdCalibration is the outcome of one threshold sweep.
type ThresholdCalibration struct {
	// AcceptAbove and RejectBelow are the chosen thresholds.
	AcceptAbove, RejectBelow float64
	// F1 is the calibration-set F1 at the chosen thresholds in
	// [0, 100]; LLMFraction the fraction of calibration pairs the
	// thresholds escalate.
	F1          float64
	LLMFraction float64
}

// calibrationTolerance is the F1 slack (in points) within which a
// cheaper threshold pair beats a marginally better one: calibration
// picks the lowest-escalation thresholds among near-optimal ones,
// mirroring the cascade's reason to exist.
const calibrationTolerance = 0.5

// CalibrateThresholds sweeps the accept/reject grid over the pooled
// calibration sets and returns the cheapest near-optimal thresholds.
// The local scorer prices every grid point arithmetically; the client
// is consulted once per pair inside the widest band, never per grid
// point.
func CalibrateThresholds(client llm.Client, workers int, sets []CalibrationSet) (ThresholdCalibration, error) {
	var probs []float64
	var gold []bool
	var verdicts []bool // aligned with probs; meaningful inside the widest band
	widestReject, widestAccept := rejectGrid[0], acceptGrid[len(acceptGrid)-1]
	for _, set := range sets {
		ps := resolve.LocalProbabilities(nil, set.Pairs)
		var band []entity.Pair
		var bandIdx []int
		for i, p := range ps {
			if p > widestReject && p < widestAccept {
				band = append(band, set.Pairs[i])
				bandIdx = append(bandIdx, len(probs)+i)
			}
		}
		setVerdicts := make([]bool, len(set.Pairs))
		if len(band) > 0 {
			vs, _, err := resolve.LLMVerdicts(client, resolve.EvalOptions{
				Domain:  set.Domain,
				Workers: workers,
			}, band)
			if err != nil {
				return ThresholdCalibration{}, fmt.Errorf("experiments: calibrate: %w", err)
			}
			for bi, gi := range bandIdx {
				setVerdicts[gi-len(probs)] = vs[bi]
			}
		}
		probs = append(probs, ps...)
		verdicts = append(verdicts, setVerdicts...)
		for _, p := range set.Pairs {
			gold = append(gold, p.Match)
		}
	}
	if len(probs) == 0 {
		return ThresholdCalibration{}, fmt.Errorf("experiments: calibrate: no calibration pairs")
	}

	// Sweep: every grid point is pure arithmetic over the cached
	// probabilities and band verdicts.
	evaluate := func(accept, reject float64) (float64, float64) {
		var conf eval.Confusion
		escalated := 0
		for i, p := range probs {
			var predicted bool
			switch {
			case p >= accept:
				predicted = true
			case p <= reject:
				predicted = false
			default:
				predicted = verdicts[i]
				escalated++
			}
			conf.Add(gold[i], predicted)
		}
		return conf.F1(), float64(escalated) / float64(len(probs))
	}

	bestF1 := -1.0
	for _, a := range acceptGrid {
		for _, r := range rejectGrid {
			if r >= a {
				continue
			}
			if f1, _ := evaluate(a, r); f1 > bestF1 {
				bestF1 = f1
			}
		}
	}
	var chosen ThresholdCalibration
	chosen.LLMFraction = 2 // above any real fraction
	for _, a := range acceptGrid {
		for _, r := range rejectGrid {
			if r >= a {
				continue
			}
			f1, frac := evaluate(a, r)
			if f1 < bestF1-calibrationTolerance {
				continue
			}
			// Cheapest near-optimal wins; ties prefer the wider local
			// band (higher reject, lower accept — grid order makes the
			// first winner stable anyway).
			if frac < chosen.LLMFraction || (frac == chosen.LLMFraction && f1 > chosen.F1) {
				chosen = ThresholdCalibration{AcceptAbove: a, RejectBelow: r, F1: f1, LLMFraction: frac}
			}
		}
	}
	return chosen, nil
}

// CrossDomainConfig scales the leave-one-dataset-out evaluation.
type CrossDomainConfig struct {
	// Model is the LLM table name (default GPT-mini).
	Model string
	// Domains are the generator families (nil means RobustDomains).
	Domains []RobustDomain
	// MaxCalibration caps calibration pairs drawn from each domain's
	// train split (0 = 300); MaxTest caps evaluated test pairs per
	// held-out domain (0 = all).
	MaxCalibration int
	MaxTest        int
	// Workers bounds the engine worker pool (0 = pipeline default).
	Workers int
}

func (c CrossDomainConfig) withDefaults() CrossDomainConfig {
	if c.Model == "" {
		c.Model = llm.GPTMini
	}
	if len(c.Domains) == 0 {
		c.Domains = RobustDomains()
	}
	if c.MaxCalibration <= 0 {
		c.MaxCalibration = 300
	}
	return c
}

// CrossDomainRow is one held-out domain's transfer outcome.
type CrossDomainRow struct {
	// HeldOut is the domain evaluated with foreign thresholds.
	HeldOut string
	// Transferred are the thresholds calibrated on the other domains;
	// InDomain the thresholds calibrated on the held-out domain's own
	// train split.
	Transferred, InDomain ThresholdCalibration
	// TransferF1/TransferLocalPct evaluate the held-out test split
	// under the transferred thresholds; InDomainF1 under its own.
	TransferF1       float64
	TransferLocalPct float64
	InDomainF1       float64
	// DeltaF1 is TransferF1 − InDomainF1: how much quality the
	// held-out domain loses by borrowing thresholds.
	DeltaF1 float64
}

// calibrationPairs draws a domain's capped calibration sample from
// its train split.
func calibrationPairs(ds *datasets.Dataset, maxPairs int) CalibrationSet {
	return CalibrationSet{
		Domain: ds.Schema.Domain,
		Pairs:  Config{MaxTest: maxPairs}.testPairs(&datasets.Dataset{Test: ds.Train, Schema: ds.Schema}),
	}
}

// CrossDomain runs the leave-one-dataset-out threshold transfer
// evaluation over the generator domains.
func CrossDomain(cfg CrossDomainConfig) ([]CrossDomainRow, error) {
	c := cfg.withDefaults()
	client, err := llm.New(c.Model)
	if err != nil {
		return nil, fmt.Errorf("experiments: cross-domain: %w", err)
	}
	loaded := make([]*datasets.Dataset, len(c.Domains))
	for i, dom := range c.Domains {
		if loaded[i], err = datasets.Load(dom.Key); err != nil {
			return nil, fmt.Errorf("experiments: cross-domain: %w", err)
		}
	}
	var rows []CrossDomainRow
	for i, dom := range c.Domains {
		var foreign []CalibrationSet
		for j := range c.Domains {
			if j != i {
				foreign = append(foreign, calibrationPairs(loaded[j], c.MaxCalibration))
			}
		}
		transferred, err := CalibrateThresholds(client, c.Workers, foreign)
		if err != nil {
			return nil, fmt.Errorf("experiments: cross-domain %s: %w", dom.Name, err)
		}
		inDomain, err := CalibrateThresholds(client, c.Workers,
			[]CalibrationSet{calibrationPairs(loaded[i], c.MaxCalibration)})
		if err != nil {
			return nil, fmt.Errorf("experiments: cross-domain %s: %w", dom.Name, err)
		}
		test := Config{MaxTest: c.MaxTest}.testPairs(loaded[i])
		evalWith := func(th ThresholdCalibration) (resolve.EvalResult, error) {
			return resolve.EvaluatePairs(client, resolve.EvalOptions{
				Cascade: resolve.CascadeOptions{
					AcceptAbove: th.AcceptAbove,
					RejectBelow: th.RejectBelow,
				},
				Domain:  loaded[i].Schema.Domain,
				Workers: c.Workers,
			}, test)
		}
		tRes, err := evalWith(transferred)
		if err != nil {
			return nil, fmt.Errorf("experiments: cross-domain %s: %w", dom.Name, err)
		}
		iRes, err := evalWith(inDomain)
		if err != nil {
			return nil, fmt.Errorf("experiments: cross-domain %s: %w", dom.Name, err)
		}
		rows = append(rows, CrossDomainRow{
			HeldOut:          dom.Name,
			Transferred:      transferred,
			InDomain:         inDomain,
			TransferF1:       tRes.F1(),
			TransferLocalPct: 100 * tRes.Report.LocalFraction(),
			InDomainF1:       iRes.F1(),
			DeltaF1:          tRes.F1() - iRes.F1(),
		})
	}
	return rows, nil
}

// CrossDomainTable renders the transfer rows as a report table.
func CrossDomainTable(rows []CrossDomainRow) *Table {
	t := &Table{
		ID:    "R2",
		Title: "Leave-one-dataset-out threshold transfer (calibrate on N-1 domains, test held-out)",
		Columns: []string{"Held-out", "Transfer acc/rej", "Transfer F1", "Local %",
			"In-domain acc/rej", "In-domain F1", "ΔF1"},
	}
	for _, r := range rows {
		t.AddRow(r.HeldOut,
			fmt.Sprintf("%.2f/%.2f", r.Transferred.AcceptAbove, r.Transferred.RejectBelow),
			f2(r.TransferF1), f2(r.TransferLocalPct),
			fmt.Sprintf("%.2f/%.2f", r.InDomain.AcceptAbove, r.InDomain.RejectBelow),
			f2(r.InDomainF1), signed(r.DeltaF1))
	}
	return t
}
