package experiments

import (
	"fmt"
	"sync"

	"llm4em/internal/core"
	"llm4em/internal/datasets"
	"llm4em/internal/entity"
	"llm4em/internal/finetune"
	"llm4em/internal/icl"
	"llm4em/internal/llm"
	"llm4em/internal/plm"
	"llm4em/internal/prompt"
	"llm4em/internal/rules"
)

// Session caches the expensive shared inputs of the table runners.
// All cached computations are deterministic, so caching never changes
// results.
type Session struct {
	Cfg Config

	mu          sync.Mutex
	zeroShot    map[string]core.Result // model|design|dataset
	fewShot     map[string]core.Result // model|dataset|method|k
	ruleRuns    map[string]core.Result // model|dataset|kind
	ftRuns      map[string]core.Result // model|trainedOn|dataset
	adapters    map[string]llm.Adapter // model|dataset
	plms        map[string]*plm.Model  // variant|dataset
	ruleSets    map[string][]string    // kind|domain
	selectors   map[string]core.DemoSelector
	models      map[string]*llm.Model
	explainData map[string]explanationData
}

// NewSession prepares a session for the configuration.
func NewSession(cfg Config) *Session {
	if cfg.FTEpochs == 0 {
		cfg.FTEpochs = 10
	}
	return &Session{
		Cfg:       cfg,
		zeroShot:  map[string]core.Result{},
		fewShot:   map[string]core.Result{},
		ruleRuns:  map[string]core.Result{},
		ftRuns:    map[string]core.Result{},
		adapters:  map[string]llm.Adapter{},
		plms:      map[string]*plm.Model{},
		ruleSets:  map[string][]string{},
		selectors: map[string]core.DemoSelector{},
		models:    map[string]*llm.Model{},
	}
}

// Model returns the (cached) simulated model.
func (s *Session) Model(name string) *llm.Model {
	s.mu.Lock()
	defer s.mu.Unlock()
	if m, ok := s.models[name]; ok {
		return m
	}
	m := llm.MustNew(name)
	s.models[name] = m
	return m
}

// ZeroShot evaluates one model with one prompt design on one
// dataset's test split.
func (s *Session) ZeroShot(model string, design prompt.Design, dataset string) (core.Result, error) {
	key := model + "|" + design.Name + "|" + dataset
	s.mu.Lock()
	if r, ok := s.zeroShot[key]; ok {
		s.mu.Unlock()
		return r, nil
	}
	s.mu.Unlock()

	ds := datasets.MustLoad(dataset)
	m := &core.Matcher{Client: s.Model(model), Design: design, Domain: ds.Schema.Domain, Workers: s.Cfg.Workers}
	r, err := m.Evaluate(s.Cfg.testPairs(ds))
	if err != nil {
		return core.Result{}, fmt.Errorf("experiments: zero-shot %s/%s/%s: %w", model, design.Name, dataset, err)
	}
	s.mu.Lock()
	s.zeroShot[key] = r
	s.mu.Unlock()
	return r, nil
}

// BestZeroShot returns the best zero-shot design and its result for a
// model/dataset combination, evaluating all ten designs.
func (s *Session) BestZeroShot(model, dataset string) (prompt.Design, core.Result, error) {
	var bestDesign prompt.Design
	var best core.Result
	bestF1 := -1.0
	for _, d := range prompt.Designs() {
		r, err := s.ZeroShot(model, d, dataset)
		if err != nil {
			return prompt.Design{}, core.Result{}, err
		}
		if r.F1() > bestF1 {
			bestF1, best, bestDesign = r.F1(), r, d
		}
	}
	return bestDesign, best, nil
}

// DemoMethod identifies a demonstration selection heuristic of
// Section 4.1.
type DemoMethod string

// The three selection heuristics.
const (
	DemoRelated    DemoMethod = "related"
	DemoRandom     DemoMethod = "random"
	DemoHandpicked DemoMethod = "handpicked"
)

// DemoMethods returns the heuristics in the paper's row order.
func DemoMethods() []DemoMethod {
	return []DemoMethod{DemoRelated, DemoRandom, DemoHandpicked}
}

// selector returns the (cached) demonstration selector for a dataset
// and method. Hand-picked demonstrations come from the WDC Products
// training pool for product datasets and from DBLP-Scholar for
// publication datasets, as in the paper.
func (s *Session) selector(method DemoMethod, dataset string) core.DemoSelector {
	key := string(method) + "|" + dataset
	s.mu.Lock()
	if sel, ok := s.selectors[key]; ok {
		s.mu.Unlock()
		return sel
	}
	s.mu.Unlock()

	ds := datasets.MustLoad(dataset)
	var sel core.DemoSelector
	switch method {
	case DemoRandom:
		sel = icl.NewRandom(ds.TrainVal(), dataset)
	case DemoRelated:
		sel = icl.NewRelated(ds.TrainVal())
	case DemoHandpicked:
		sourceKey := "wdc"
		if ds.Schema.Domain == entity.Publication {
			sourceKey = "ds"
		}
		source := datasets.MustLoad(sourceKey)
		sel = icl.NewHandpicked(icl.CurateHandpicked(source.Train, 10))
	default:
		panic("experiments: unknown demo method " + string(method))
	}
	// Selection depends only on the query and k, not on the model;
	// memoize it so the six models share one selection pass.
	sel = &memoSelector{inner: sel}
	s.mu.Lock()
	s.selectors[key] = sel
	s.mu.Unlock()
	return sel
}

// memoSelector caches one maximal demonstration selection per query
// and derives smaller shot counts by balanced slicing, so the six
// models and both shot counts share a single selection pass.
type memoSelector struct {
	inner core.DemoSelector
	mu    sync.Mutex
	cache map[string][]entity.Pair
}

// maxShots is the largest shot count of the study (Section 4.1).
const maxShots = 10

// Select implements core.DemoSelector with memoization.
func (m *memoSelector) Select(query entity.Pair, k int) []entity.Pair {
	m.mu.Lock()
	if m.cache == nil {
		m.cache = map[string][]entity.Pair{}
	}
	full, ok := m.cache[query.ID]
	m.mu.Unlock()
	if !ok {
		full = m.inner.Select(query, maxShots)
		m.mu.Lock()
		m.cache[query.ID] = full
		m.mu.Unlock()
	}
	if k >= len(full) {
		return full
	}
	// Balanced prefix: (k+1)/2 matches and k/2 non-matches in the
	// cached order.
	nPos, nNeg := (k+1)/2, k/2
	out := make([]entity.Pair, 0, k)
	for _, d := range full {
		switch {
		case d.Match && nPos > 0:
			out = append(out, d)
			nPos--
		case !d.Match && nNeg > 0:
			out = append(out, d)
			nNeg--
		}
		if nPos == 0 && nNeg == 0 {
			break
		}
	}
	return out
}

// fewShotDesign is the prompt design used for the Section 4
// experiments.
var fewShotDesign = mustDesign("general-complex-force")

// ftDesign is the prompt design used for fine-tuning (Section 4.3).
var ftDesign = mustDesign("domain-simple-force")

func mustDesign(name string) prompt.Design {
	d, err := prompt.DesignByName(name)
	if err != nil {
		panic(err)
	}
	return d
}

// FewShot evaluates a model with k demonstrations selected by the
// given method.
func (s *Session) FewShot(model, dataset string, method DemoMethod, k int) (core.Result, error) {
	key := fmt.Sprintf("%s|%s|%s|%d", model, dataset, method, k)
	s.mu.Lock()
	if r, ok := s.fewShot[key]; ok {
		s.mu.Unlock()
		return r, nil
	}
	s.mu.Unlock()

	ds := datasets.MustLoad(dataset)
	m := &core.Matcher{
		Client:  s.Model(model),
		Design:  fewShotDesign,
		Domain:  ds.Schema.Domain,
		Demos:   s.selector(method, dataset),
		Shots:   k,
		Workers: s.Cfg.Workers,
	}
	r, err := m.Evaluate(s.Cfg.testPairs(ds))
	if err != nil {
		return core.Result{}, fmt.Errorf("experiments: few-shot %s: %w", key, err)
	}
	s.mu.Lock()
	s.fewShot[key] = r
	s.mu.Unlock()
	return r, nil
}

// RuleKind distinguishes handwritten from learned rules.
type RuleKind string

// The two rule sources of Section 4.2.
const (
	RulesHandwritten RuleKind = "handwritten"
	RulesLearned     RuleKind = "learned"
)

// RuleSet returns the (cached) rule set of a kind for a domain.
// Learned rules are generated by GPT-4 from the hand-picked
// demonstration pool of the domain, per the paper.
func (s *Session) RuleSet(kind RuleKind, domain entity.Domain) ([]string, error) {
	key := string(kind) + "|" + domain.String()
	s.mu.Lock()
	if rs, ok := s.ruleSets[key]; ok {
		s.mu.Unlock()
		return rs, nil
	}
	s.mu.Unlock()

	var rs []string
	if kind == RulesHandwritten {
		rs = rules.Handwritten(domain)
	} else {
		sourceKey := "wdc"
		if domain == entity.Publication {
			sourceKey = "ds"
		}
		examples := icl.CurateHandpicked(datasets.MustLoad(sourceKey).Train, 10)
		var err error
		rs, err = rules.Learn(s.Model(llm.GPT4), domain, examples)
		if err != nil {
			return nil, err
		}
	}
	s.mu.Lock()
	s.ruleSets[key] = rs
	s.mu.Unlock()
	return rs, nil
}

// WithRules evaluates a model with a rule-augmented prompt.
func (s *Session) WithRules(model, dataset string, kind RuleKind) (core.Result, error) {
	key := model + "|" + dataset + "|" + string(kind)
	s.mu.Lock()
	if r, ok := s.ruleRuns[key]; ok {
		s.mu.Unlock()
		return r, nil
	}
	s.mu.Unlock()

	ds := datasets.MustLoad(dataset)
	rs, err := s.RuleSet(kind, ds.Schema.Domain)
	if err != nil {
		return core.Result{}, err
	}
	m := &core.Matcher{
		Client:  s.Model(model),
		Design:  fewShotDesign,
		Domain:  ds.Schema.Domain,
		Rules:   rs,
		Workers: s.Cfg.Workers,
	}
	r, err := m.Evaluate(s.Cfg.testPairs(ds))
	if err != nil {
		return core.Result{}, fmt.Errorf("experiments: rules %s: %w", key, err)
	}
	s.mu.Lock()
	s.ruleRuns[key] = r
	s.mu.Unlock()
	return r, nil
}

// Adapter fine-tunes (or returns the cached adapter of) a model on a
// dataset.
func (s *Session) Adapter(model, dataset string) (llm.Adapter, error) {
	key := model + "|" + dataset
	s.mu.Lock()
	if a, ok := s.adapters[key]; ok {
		s.mu.Unlock()
		return a, nil
	}
	s.mu.Unlock()

	a, err := finetune.Train(model, datasets.MustLoad(dataset), finetune.Options{Epochs: s.Cfg.FTEpochs})
	if err != nil {
		return llm.Adapter{}, err
	}
	s.mu.Lock()
	s.adapters[key] = a
	s.mu.Unlock()
	return a, nil
}

// FineTuned evaluates a model fine-tuned on trainedOn against another
// dataset's test split (the Table 7 transfer matrix).
func (s *Session) FineTuned(model, trainedOn, dataset string) (core.Result, error) {
	key := model + "|" + trainedOn + "|" + dataset
	s.mu.Lock()
	if r, ok := s.ftRuns[key]; ok {
		s.mu.Unlock()
		return r, nil
	}
	s.mu.Unlock()

	adapter, err := s.Adapter(model, trainedOn)
	if err != nil {
		return core.Result{}, err
	}
	client, err := llm.NewFineTuned(model, adapter)
	if err != nil {
		return core.Result{}, err
	}
	ds := datasets.MustLoad(dataset)
	m := &core.Matcher{Client: client, Design: ftDesign, Domain: ds.Schema.Domain, Workers: s.Cfg.Workers}
	r, err := m.Evaluate(s.Cfg.testPairs(ds))
	if err != nil {
		return core.Result{}, fmt.Errorf("experiments: fine-tuned %s: %w", key, err)
	}
	s.mu.Lock()
	s.ftRuns[key] = r
	s.mu.Unlock()
	return r, nil
}

// PLM trains (or returns the cached) baseline of a variant on a
// dataset, with its decision threshold fitted on the validation
// split.
func (s *Session) PLM(variant plm.Variant, dataset string) *plm.Model {
	key := variant.String() + "|" + dataset
	s.mu.Lock()
	if m, ok := s.plms[key]; ok {
		s.mu.Unlock()
		return m
	}
	s.mu.Unlock()

	ds := datasets.MustLoad(dataset)
	m := plm.New(variant)
	m.Train(ds.TrainVal(), dataset, plm.DefaultOptions())
	m.FitThreshold(ds.Val)
	s.mu.Lock()
	s.plms[key] = m
	s.mu.Unlock()
	return m
}
