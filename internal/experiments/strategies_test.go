package experiments

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// strategySmokeConfig shrinks the CI smoke configuration further for
// unit tests: fewer groups, still seeded and deterministic.
func strategySmokeConfig() StrategiesConfig {
	cfg := StrategiesSmoke()
	cfg.Groups = 24
	return cfg
}

// TestStrategiesSweepShape pins the sweep geometry — one cell per
// band × strategy variant, in deterministic order — and the
// headline property the strategies exist for: grouped compare and
// select issue fewer fresh LLM calls per escalated query than
// pairwise match on the same fixtures.
func TestStrategiesSweepShape(t *testing.T) {
	cfg := strategySmokeConfig()
	cells, err := Strategies(cfg)
	if err != nil {
		t.Fatal(err)
	}
	c := cfg.withDefaults()
	want := len(c.Bands) * len(strategyVariants())
	if len(cells) != want {
		t.Fatalf("sweep produced %d cells, want %d", len(cells), want)
	}
	byKey := map[string]StrategyCell{}
	for i, cell := range cells {
		if cell.Pairs == 0 || cell.Groups == 0 {
			t.Fatalf("cell %d evaluated nothing: %+v", i, cell)
		}
		if cell.F1 < 0 || cell.F1 > 100 {
			t.Fatalf("cell %d F1 out of range: %+v", i, cell)
		}
		if cell.EscalatedGroups == 0 || cell.Calls == 0 {
			t.Fatalf("cell %d escalated nothing — the fixtures exercise no strategy: %+v", i, cell)
		}
		byKey[cell.Strategy+"/"+cell.Band] = cell
	}
	for _, band := range c.Bands {
		match := byKey["match/"+band.Name]
		for _, grouped := range []string{"compare", "select"} {
			g := byKey[grouped+"/"+band.Name]
			if g.Calls >= match.Calls {
				t.Errorf("%s band %s: %d calls, not fewer than match's %d — grouping saves nothing",
					grouped, band.Name, g.Calls, match.Calls)
			}
			if g.CallsPerEscalated >= match.CallsPerEscalated {
				t.Errorf("%s band %s: %.2f calls/escalated, not below match's %.2f",
					grouped, band.Name, g.CallsPerEscalated, match.CallsPerEscalated)
			}
		}
		// The reason tier re-asks conflicted pairs, so it can only add
		// calls on top of match.
		if r := byKey["match+reason/"+band.Name]; r.Calls < match.Calls {
			t.Errorf("reason band %s: %d calls below match's %d", band.Name, r.Calls, match.Calls)
		}
	}
	// Fallbacks only exist for grouped strategies.
	for _, cell := range cells {
		if (cell.Strategy == "match" || cell.Strategy == "match+reason") && cell.GroupFallbacks != 0 {
			t.Errorf("%s/%s reports %d group fallbacks without grouping", cell.Strategy, cell.Band, cell.GroupFallbacks)
		}
	}
}

// TestStrategiesDeterministic pins that the sweep is a pure function
// of its configuration — the property the golden report relies on.
func TestStrategiesDeterministic(t *testing.T) {
	cfg := strategySmokeConfig()
	a, err := Strategies(cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Strategies(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(a) != len(b) {
		t.Fatalf("reruns disagree on cell count: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("cell %d differs across reruns:\n%+v\n%+v", i, a[i], b[i])
		}
	}
}

// TestStrategiesTableRenders pins the report table shape.
func TestStrategiesTableRenders(t *testing.T) {
	cells := []StrategyCell{{
		Strategy: "compare", Band: "wide", Groups: 40, EscalatedGroups: 31,
		Pairs: 160, F1: 91.25, LLMPairs: 38, Calls: 32, CallsPerEscalated: 1.03,
		GroupFallbacks: 2, Cents: 0.074,
	}}
	md := StrategiesTable(cells).Markdown()
	for _, want := range []string{"S1", "| compare |", "91.25", "1.03", "0.074"} {
		if !strings.Contains(md, want) {
			t.Errorf("strategies table markdown missing %q:\n%s", want, md)
		}
	}
}

// TestStrategiesGoldenReport pins the full CI smoke report byte for
// byte. Regenerate with:
//
//	go test ./internal/experiments -run TestStrategiesGoldenReport -update
func TestStrategiesGoldenReport(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteStrategiesReport(&buf, StrategiesSmoke()); err != nil {
		t.Fatal(err)
	}
	got := buf.Bytes()
	path := filepath.Join("testdata", "strategies_golden.md")
	if *updateGolden {
		if err := os.WriteFile(path, got, 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("golden report missing (regenerate with -update): %v", err)
	}
	if !bytes.Equal(got, want) {
		t.Fatalf("strategy report drifted from golden %s (regenerate with -update):\n--- got ---\n%s",
			path, got)
	}
	for _, strat := range []string{"match", "compare", "select", "match+reason"} {
		if !bytes.Contains(got, []byte("| "+strat+" |")) {
			t.Errorf("report missing strategy row %q", strat)
		}
	}
}
