package experiments

import (
	"fmt"

	"llm4em/internal/core"
	"llm4em/internal/cost"
	"llm4em/internal/datasets"
	"llm4em/internal/entity"
	"llm4em/internal/eval"
	"llm4em/internal/llm"
	"llm4em/internal/promptsearch"
)

// AblationSerialization tests the serialization design choice of
// Section 2: the paper found that adding attribute names to the
// serialized strings hurt performance in early experiments and
// therefore concatenates bare values. The ablation compares both
// serializations per model on a dataset.
func AblationSerialization(s *Session, dataset string) (*Table, error) {
	ds := datasets.MustLoad(dataset)
	t := &Table{
		ID:      "Ablation A1",
		Title:   "Serialization with vs. without attribute names, " + ds.Name + " (F1)",
		Columns: []string{"Model", "Values only (paper)", "With attribute names", "Δ"},
	}
	design := mustDesign("general-complex-force")
	pairs := s.Cfg.testPairs(ds)
	for _, mn := range s.Cfg.models() {
		m := &core.Matcher{Client: s.Model(mn), Design: design, Domain: ds.Schema.Domain, Workers: s.Cfg.Workers}
		plain, err := m.Evaluate(pairs)
		if err != nil {
			return nil, err
		}
		named, err := m.Evaluate(withNamedSerialization(pairs, ds.Schema))
		if err != nil {
			return nil, err
		}
		t.AddRow(mn, f2(plain.F1()), f2(named.F1()), signed(named.F1()-plain.F1()))
	}
	return t, nil
}

// withNamedSerialization rewrites pairs so that each attribute value
// is prefixed with its attribute name ("brand: Sony title: ...").
func withNamedSerialization(pairs []entity.Pair, schema entity.Schema) []entity.Pair {
	out := make([]entity.Pair, len(pairs))
	for i, p := range pairs {
		out[i] = entity.Pair{ID: p.ID, A: nameRecord(p.A), B: nameRecord(p.B), Match: p.Match}
	}
	return out
}

func nameRecord(r entity.Record) entity.Record {
	cp := r.Clone()
	for i := range cp.Attrs {
		if cp.Attrs[i].Value != "" {
			cp.Attrs[i].Value = cp.Attrs[i].Name + ": " + cp.Attrs[i].Value
		}
	}
	return cp
}

// AblationShots sweeps the demonstration count of in-context learning
// (the paper evaluates 6 and 10; the sweep shows the full curve).
func AblationShots(s *Session, dataset string, model string) (*Table, error) {
	ds := datasets.MustLoad(dataset)
	t := &Table{
		ID:      "Ablation A2",
		Title:   fmt.Sprintf("Shot-count sweep for %s on %s (related demonstrations)", model, ds.Name),
		Columns: []string{"Shots", "F1", "Mean prompt tokens"},
	}
	_, zs, err := s.BestZeroShot(model, dataset)
	if err != nil {
		return nil, err
	}
	t.AddRow("0 (best zero-shot)", f2(zs.F1()), fmt.Sprintf("%.0f", zs.MeanPromptTokens()))
	sel := s.selector(DemoRelated, dataset)
	pairs := s.Cfg.testPairs(ds)
	for _, k := range []int{2, 4, 6, 8, 10} {
		m := &core.Matcher{
			Client:  s.Model(model),
			Design:  fewShotDesign,
			Domain:  ds.Schema.Domain,
			Demos:   sel,
			Shots:   k,
			Workers: s.Cfg.Workers,
		}
		r, err := m.Evaluate(pairs)
		if err != nil {
			return nil, err
		}
		t.AddRow(fmt.Sprintf("%d", k), f2(r.F1()), fmt.Sprintf("%.0f", r.MeanPromptTokens()))
	}
	return t, nil
}

// AblationBatch sweeps the batch size of batched matching (Fan et
// al., Section 8): per-pair cost falls with batch size while F1
// degrades.
func AblationBatch(s *Session, dataset, model string) (*Table, error) {
	ds := datasets.MustLoad(dataset)
	t := &Table{
		ID:      "Ablation A3",
		Title:   fmt.Sprintf("Batched matching for %s on %s", model, ds.Name),
		Columns: []string{"Batch size", "F1", "Prompt tok/pair", "Cost/pair (¢)"},
	}
	pairs := s.Cfg.testPairs(ds)
	pricing, hosted := cost.For(model)
	for _, size := range []int{1, 2, 5, 10, 20} {
		m := &core.BatchMatcher{Client: s.Model(model), Domain: ds.Schema.Domain, BatchSize: size, Workers: s.Cfg.Workers}
		r, err := m.Evaluate(pairs)
		if err != nil {
			return nil, err
		}
		perPairPrompt := float64(r.PromptTokens) / float64(len(pairs))
		costCell := "-"
		if hosted {
			perPairCompl := float64(r.CompletionTokens) / float64(len(pairs))
			costCell = fmt.Sprintf("%.4f", cost.PerPromptCents(pricing, perPairPrompt, perPairCompl))
		}
		t.AddRow(fmt.Sprintf("%d", size), f2(r.F1()), fmt.Sprintf("%.0f", perPairPrompt), costCell)
	}
	return t, nil
}

// AblationAdditionalModels evaluates the extra models of the project
// repository (GPT3.5-turbo, SOLAR, StableBeluga2) with their best
// zero-shot prompt per dataset.
func AblationAdditionalModels(s *Session) (*Table, error) {
	keys := s.Cfg.datasets()
	abbrevs := make([]string, len(keys))
	for i, k := range keys {
		abbrevs[i] = datasets.MustLoad(k).Abbrev
	}
	t := &Table{
		ID:      "Ablation A4",
		Title:   "Best zero-shot F1 of the additional repository models",
		Columns: append([]string{"Model"}, abbrevs...),
	}
	for _, mn := range llm.AdditionalModels() {
		row := []string{mn}
		for _, key := range keys {
			_, r, err := s.BestZeroShot(mn, key)
			if err != nil {
				return nil, err
			}
			row = append(row, f2(r.F1()))
		}
		t.AddRow(row...)
	}
	return t, nil
}

// AblationPromptSearch runs the automated prompt tuning the paper
// cites as an improvement direction (Section 3, Promptbreeder): an
// evolutionary search over task phrasings on the validation split,
// with the winners re-evaluated on the test split against the best
// fixed design.
func AblationPromptSearch(s *Session, dataset, model string) (*Table, error) {
	ds := datasets.MustLoad(dataset)
	client := s.Model(model)
	pop, err := promptsearch.Search(client, ds.Schema.Domain, ds.Val, promptsearch.Options{
		Generations: 4, Population: 8, ValidationPairs: 250, Seed: "ablation",
	})
	if err != nil {
		return nil, err
	}
	t := &Table{
		ID:      "Ablation A5",
		Title:   fmt.Sprintf("Evolved prompts for %s on %s (validation-selected, test-evaluated)", model, ds.Name),
		Columns: []string{"Prompt", "Force", "Val F1", "Test F1"},
	}
	_, best, err := s.BestZeroShot(model, dataset)
	if err != nil {
		return nil, err
	}
	t.AddRow("(best fixed design)", "-", "-", f2(best.F1()))
	pairs := s.Cfg.testPairs(ds)
	// Report the top three distinct candidates.
	var top []promptsearch.Candidate
	seen := map[string]bool{}
	for _, c := range pop {
		key := fmt.Sprintf("%s|%v", c.Task, c.Force)
		if seen[key] {
			continue
		}
		seen[key] = true
		top = append(top, c)
		if len(top) == 3 {
			break
		}
	}
	for _, c := range top {
		var conf eval.Confusion
		for _, p := range pairs {
			resp, err := client.Chat([]llm.Message{{Role: llm.User, Content: c.Render(ds.Schema.Domain, p)}})
			if err != nil {
				return nil, err
			}
			conf.Add(p.Match, core.ParseAnswer(resp.Content))
		}
		t.AddRow(c.Task, fmt.Sprintf("%v", c.Force), f2(c.F1), f2(conf.F1()))
	}
	return t, nil
}

// Ablations runs all ablation studies on their default targets.
func Ablations(s *Session) ([]*Table, error) {
	var out []*Table
	a1, err := AblationSerialization(s, "wdc")
	if err != nil {
		return nil, err
	}
	out = append(out, a1)
	a2, err := AblationShots(s, "wdc", llm.GPT4o)
	if err != nil {
		return nil, err
	}
	out = append(out, a2)
	a3, err := AblationBatch(s, "wdc", llm.GPTMini)
	if err != nil {
		return nil, err
	}
	out = append(out, a3)
	a4, err := AblationAdditionalModels(s)
	if err != nil {
		return nil, err
	}
	out = append(out, a4)
	a5, err := AblationPromptSearch(s, "wdc", llm.Mixtral)
	if err != nil {
		return nil, err
	}
	return append(out, a5), nil
}
