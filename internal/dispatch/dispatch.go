// Package dispatch implements a cross-request micro-batching
// dispatcher for LLM pair-matching calls. The cascade (internal/
// resolve) routes only the uncertain probability band to the model,
// but without this package each uncertain pair is its own client
// round-trip: under concurrent serving traffic the slowest ~6% of
// pairs serialize on per-pair latency. The paper's related work
// (Peeters et al., Section 8; "Match, Compare, or Select?") shows
// that packing several pairs into one batched prompt cuts the
// per-pair cost substantially — this dispatcher exploits that result
// across requests.
//
// A Dispatcher accumulates pairs submitted by many concurrent callers
// into a pending queue and flushes it as one batched prompt when
// either MaxBatchPairs pairs are waiting (size flush) or the oldest
// pair has waited FlushInterval (deadline flush). Each caller blocks
// on a per-pair future and receives exactly its own answer. Identical
// pairs in flight are deduplicated (single-flight across requests),
// layered on the engine's per-pair prompt cache: submissions first
// consult the cache, and per-pair answers extracted from a batched
// reply are seeded back into it so repeats never pay a second
// round-trip. A batched reply that does not contain a clean numbered
// answer for every pair falls back to individual per-pair prompts for
// that batch, so a model that ignores the batch format degrades to
// the unbatched path instead of mis-answering.
//
// The dispatcher never changes which pairs are escalated — budgets
// and cost caps are applied by the caller before submission — only
// how many client round-trips the escalated pairs cost. Close drains:
// pending pairs are flushed immediately and in-flight batches awaited,
// so graceful shutdown never abandons a waiting caller.
package dispatch

import (
	"context"
	"errors"
	"fmt"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"llm4em/internal/core"
	"llm4em/internal/entity"
	"llm4em/internal/llm"
	"llm4em/internal/pipeline"
	"llm4em/internal/telemetry"
)

// Defaults used when an Options field is left at its zero value.
const (
	// DefaultMaxBatchPairs is the default batch capacity. The paper's
	// batching experiments find diminishing cost returns and growing
	// accuracy loss beyond ~20 pairs per prompt.
	DefaultMaxBatchPairs = 16
	// DefaultFlushInterval bounds how long a pending pair waits for
	// batch-mates. Small against LLM latency (tens of ms to seconds),
	// large against the local cascade work (~10µs), so batches fill
	// under load without adding noticeable tail latency.
	DefaultFlushInterval = 2 * time.Millisecond
)

// Options tunes a Dispatcher. The zero value selects the defaults.
type Options struct {
	// MaxBatchPairs is the maximum number of pairs packed into one
	// batched prompt; reaching it flushes immediately (default
	// DefaultMaxBatchPairs). 1 degenerates to per-pair prompts issued
	// through the dispatcher.
	MaxBatchPairs int
	// FlushInterval is the longest a pending pair waits for batch-mates
	// before a partial batch is flushed (default DefaultFlushInterval).
	FlushInterval time.Duration
	// Metrics are the telemetry instruments the dispatcher records
	// into (queue depth, batch sizes, flush reasons, per-pair wait
	// latency). The zero value disables them.
	Metrics telemetry.DispatchMetrics
}

func (o Options) withDefaults() Options {
	if o.MaxBatchPairs <= 0 {
		o.MaxBatchPairs = DefaultMaxBatchPairs
	}
	if o.FlushInterval <= 0 {
		o.FlushInterval = DefaultFlushInterval
	}
	return o
}

// ErrClosed is returned by Do/DoAll after Close.
var ErrClosed = errors.New("dispatch: dispatcher is closed")

// Result is the outcome of one submitted pair.
type Result struct {
	// Match is the parsed decision.
	Match bool
	// Answer is the per-pair answer text: the numbered line's answer
	// extracted from a batched reply, or the full model reply for
	// cached, singleton and fallback pairs.
	Answer string
	// Usage is the token and latency accounting. Batched pairs carry
	// an even share of the batch request (remainders go to the earliest
	// pairs, so shares always sum to the request exactly).
	Usage llm.Response
	// Cached reports that the answer came from the per-pair prompt
	// cache or was coalesced onto an identical in-flight pair.
	Cached bool
	// Batched reports that a batched prompt decided the pair.
	Batched bool
	// BatchID is the sequence number of the batched round-trip (0 when
	// not batched); pairs sharing a BatchID rode the same request.
	BatchID uint64
	// BatchSize is the number of pairs in that request.
	BatchSize int
	// FellBack reports that the pair's batch (or group) reply failed to
	// parse and the answer came from an individual per-pair prompt
	// instead.
	FellBack bool
	// Grouped reports that a grouped compare/select prompt decided the
	// pair (see DoGroup); GroupSize is the number of pairs that rode
	// that prompt.
	Grouped   bool
	GroupSize int
}

// Stats counts what a Dispatcher did.
type Stats struct {
	// Batches is the number of batched round-trips issued (≥2 pairs);
	// BatchedPairs the pairs they answered.
	Batches      uint64
	BatchedPairs uint64
	// SinglePairCalls counts pairs flushed alone (no batch-mates
	// arrived in time), routed as ordinary per-pair prompts — served
	// by a client call or the prompt cache.
	SinglePairCalls uint64
	// ParseFallbacks counts batched replies that failed strict
	// parsing; FallbackPairs the pairs re-routed to individual
	// prompts because of them (counted at re-routing, whether or not
	// the individual call then succeeds).
	ParseFallbacks uint64
	FallbackPairs  uint64
	// SingleFlightHits counts submissions coalesced onto an identical
	// in-flight pair; CacheHits submissions answered from the per-pair
	// prompt cache before entering the queue.
	SingleFlightHits uint64
	CacheHits        uint64
	// SizeFlushes, DeadlineFlushes and DrainFlushes count why batches
	// were cut: a full queue, an expired FlushInterval, or Close.
	SizeFlushes     uint64
	DeadlineFlushes uint64
	DrainFlushes    uint64
	// GroupCalls is the number of grouped compare/select round-trips
	// issued; GroupedPairs the pairs they answered.
	GroupCalls   uint64
	GroupedPairs uint64
	// GroupParseFallbacks counts grouped replies that failed strict
	// parsing; GroupFallbackPairs the pairs re-routed to individual
	// prompts because of them.
	GroupParseFallbacks uint64
	GroupFallbackPairs  uint64
}

// MeanBatchSize returns the average pairs per batched round-trip.
func (s Stats) MeanBatchSize() float64 {
	if s.Batches == 0 {
		return 0
	}
	return float64(s.BatchedPairs) / float64(s.Batches)
}

// call is one submitted pair: the future its waiters block on plus
// the slots the executing batch fills in.
type call struct {
	pair  entity.Pair
	key   string // per-pair prompt — the dedupe and cache key
	ready chan struct{}
	res   Result
	err   error
	// enqueued is when the call entered the pending queue; only set
	// (and only read) when the wait-latency histogram is wired.
	enqueued time.Time
}

// Dispatcher coalesces per-pair matching calls into batched prompts.
// Safe for concurrent use.
type Dispatcher struct {
	eng        *pipeline.Engine
	opts       Options
	buildPair  func(entity.Pair) string
	buildBatch func([]entity.Pair) string

	batchSeq atomic.Uint64
	stats    struct {
		batches, batchedPairs, singlePairCalls   atomic.Uint64
		parseFallbacks, fallbackPairs            atomic.Uint64
		singleFlightHits, cacheHits              atomic.Uint64
		sizeFlushes, deadlineFlushes, drainFlush atomic.Uint64
		groupCalls, groupedPairs                 atomic.Uint64
		groupParseFallbacks, groupFallbackPairs  atomic.Uint64
	}

	mu         sync.Mutex
	pending    []*call
	inflight   map[string]*call // pending or executing, by per-pair prompt
	timerArmed bool
	closed     bool
	wg         sync.WaitGroup // executing batches
}

// New returns a dispatcher issuing requests through the engine.
// buildPair renders the ordinary per-pair prompt (the dedupe/cache
// key and the fallback request); buildBatch renders the batched
// prompt for a flush. Both must be pure and safe for concurrent use.
func New(eng *pipeline.Engine, buildPair func(entity.Pair) string, buildBatch func([]entity.Pair) string, opts Options) *Dispatcher {
	return &Dispatcher{
		eng:        eng,
		opts:       opts.withDefaults(),
		buildPair:  buildPair,
		buildBatch: buildBatch,
		inflight:   map[string]*call{},
	}
}

// Stats returns a snapshot of the dispatcher's counters.
func (d *Dispatcher) Stats() Stats {
	return Stats{
		Batches:             d.stats.batches.Load(),
		BatchedPairs:        d.stats.batchedPairs.Load(),
		SinglePairCalls:     d.stats.singlePairCalls.Load(),
		ParseFallbacks:      d.stats.parseFallbacks.Load(),
		FallbackPairs:       d.stats.fallbackPairs.Load(),
		SingleFlightHits:    d.stats.singleFlightHits.Load(),
		CacheHits:           d.stats.cacheHits.Load(),
		SizeFlushes:         d.stats.sizeFlushes.Load(),
		DeadlineFlushes:     d.stats.deadlineFlushes.Load(),
		DrainFlushes:        d.stats.drainFlush.Load(),
		GroupCalls:          d.stats.groupCalls.Load(),
		GroupedPairs:        d.stats.groupedPairs.Load(),
		GroupParseFallbacks: d.stats.groupParseFallbacks.Load(),
		GroupFallbackPairs:  d.stats.groupFallbackPairs.Load(),
	}
}

// Do submits one pair and blocks until it is decided.
func (d *Dispatcher) Do(pair entity.Pair) (Result, error) {
	rs, err := d.DoAll([]entity.Pair{pair})
	if err != nil {
		return Result{}, err
	}
	return rs[0], nil
}

// DoAll submits the pairs — typically one Resolve call's uncertain
// band — and blocks until every one is decided, returning results in
// input order. The pairs may be answered by several different batches
// (shared with other concurrent callers), by the prompt cache, or by
// per-pair fallbacks; the first error of any of them is returned.
func (d *Dispatcher) DoAll(pairs []entity.Pair) ([]Result, error) {
	return d.DoAllContext(context.Background(), pairs)
}

// DoAllContext is DoAll with cancellation. A batch is shared with
// other callers, so an expired context abandons this caller's wait —
// the batch itself keeps executing in the background and its answers
// still seed the prompt cache — and the context error is returned.
func (d *Dispatcher) DoAllContext(ctx context.Context, pairs []entity.Pair) ([]Result, error) {
	if len(pairs) == 0 {
		return nil, nil
	}
	// Prompts are built outside the queue lock: building is pure
	// string work, but it is the dominant cost of enqueueing.
	keys := make([]string, len(pairs))
	for i, p := range pairs {
		keys[i] = d.buildPair(p)
	}

	calls := make([]*call, len(pairs))
	shared := make([]bool, len(pairs))
	cached := make([]*Result, len(pairs))

	d.mu.Lock()
	if d.closed {
		d.mu.Unlock()
		return nil, ErrClosed
	}
	for i, p := range pairs {
		// Layer 1: the per-pair prompt cache (previous unbatched
		// answers, seeded batched answers).
		if resp, ok := d.eng.Peek(keys[i]); ok {
			d.stats.cacheHits.Add(1)
			cached[i] = &Result{
				Match:  core.ParseAnswer(resp.Content),
				Answer: resp.Content,
				Usage:  resp,
				Cached: true,
			}
			continue
		}
		// Layer 2: single-flight — an identical pair already pending or
		// riding a batch answers this submission too.
		if c, ok := d.inflight[keys[i]]; ok {
			d.stats.singleFlightHits.Add(1)
			calls[i] = c
			shared[i] = true
			continue
		}
		c := &call{pair: p, key: keys[i], ready: make(chan struct{})}
		if d.opts.Metrics.WaitSeconds != nil {
			c.enqueued = time.Now()
		}
		d.inflight[keys[i]] = c
		d.pending = append(d.pending, c)
		calls[i] = c
	}
	d.cutFullLocked()
	d.opts.Metrics.QueueDepth.Set(int64(len(d.pending)))
	if len(d.pending) > 0 && !d.timerArmed {
		d.timerArmed = true
		time.AfterFunc(d.opts.FlushInterval, d.deadlineFlush)
	}
	d.mu.Unlock()

	out := make([]Result, len(pairs))
	var firstErr error
	for i := range pairs {
		if cached[i] != nil {
			out[i] = *cached[i]
			continue
		}
		c := calls[i]
		if done := ctx.Done(); done != nil {
			select {
			case <-c.ready:
			case <-done:
				if firstErr == nil {
					firstErr = ctx.Err()
				}
				continue
			}
		} else {
			<-c.ready
		}
		if c.err != nil {
			if firstErr == nil {
				firstErr = c.err
			}
			continue
		}
		out[i] = c.res
		if shared[i] {
			out[i].Cached = true
		}
	}
	if firstErr != nil {
		return nil, firstErr
	}
	return out, nil
}

// cutFullLocked launches every full batch in the pending queue.
// Caller holds mu.
func (d *Dispatcher) cutFullLocked() {
	for len(d.pending) >= d.opts.MaxBatchPairs {
		batch := d.pending[:d.opts.MaxBatchPairs:d.opts.MaxBatchPairs]
		d.pending = d.pending[d.opts.MaxBatchPairs:]
		d.stats.sizeFlushes.Add(1)
		d.opts.Metrics.SizeFlushes.Inc()
		d.launchLocked(batch)
	}
}

// flushAllLocked launches everything pending, in MaxBatchPairs-sized
// chunks. Caller holds mu.
func (d *Dispatcher) flushAllLocked() {
	for len(d.pending) > 0 {
		n := len(d.pending)
		if n > d.opts.MaxBatchPairs {
			n = d.opts.MaxBatchPairs
		}
		batch := d.pending[:n:n]
		d.pending = d.pending[n:]
		d.launchLocked(batch)
	}
	d.pending = nil
}

// launchLocked starts one batch executing. Caller holds mu.
func (d *Dispatcher) launchLocked(batch []*call) {
	d.opts.Metrics.BatchPairs.Observe(float64(len(batch)))
	d.wg.Add(1)
	seq := d.batchSeq.Add(1)
	go d.execute(batch, seq)
}

// deadlineFlush fires when the oldest pending pair has waited
// FlushInterval: whatever is queued goes out as a (possibly partial)
// batch. A full queue may have been cut by a concurrent submission
// between the timer being armed and firing — then there is nothing
// left to do, and the next submission arms a fresh timer.
func (d *Dispatcher) deadlineFlush() {
	d.mu.Lock()
	d.timerArmed = false
	if d.closed {
		d.mu.Unlock()
		return // Close already drained the queue
	}
	if len(d.pending) > 0 {
		d.stats.deadlineFlushes.Add(1)
		d.opts.Metrics.DeadlineFlushes.Inc()
		d.flushAllLocked()
	}
	d.opts.Metrics.QueueDepth.Set(int64(len(d.pending)))
	d.mu.Unlock()
}

// Close drains the dispatcher: pending pairs are flushed immediately
// — their waiters still receive real answers — and in-flight batches
// are awaited. Subsequent Do/DoAll calls return ErrClosed. Idempotent
// and safe to call concurrently with submissions.
func (d *Dispatcher) Close() {
	d.mu.Lock()
	if !d.closed {
		d.closed = true
		if len(d.pending) > 0 {
			d.stats.drainFlush.Add(1)
			d.opts.Metrics.DrainFlushes.Inc()
			d.flushAllLocked()
		}
		d.opts.Metrics.QueueDepth.Set(0)
	}
	d.mu.Unlock()
	d.wg.Wait()
}

// Closed reports whether Close has been called — the liveness signal
// health endpoints check: a closed dispatcher fails every new
// submission.
func (d *Dispatcher) Closed() bool {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.closed
}

// execute runs one cut batch to completion: a batched prompt for ≥2
// pairs, an ordinary per-pair prompt for a singleton flush.
func (d *Dispatcher) execute(batch []*call, seq uint64) {
	defer d.wg.Done()
	if len(batch) == 1 {
		d.stats.singlePairCalls.Add(1)
		d.completePair(batch[0], false)
		d.settle(batch)
		return
	}

	pairs := make([]entity.Pair, len(batch))
	for i, c := range batch {
		pairs[i] = c.pair
	}
	resp, batchCached, err := d.eng.Complete(d.buildBatch(pairs))
	if err != nil {
		werr := fmt.Errorf("dispatch: batch of %d: %w", len(batch), err)
		for _, c := range batch {
			c.err = werr
		}
		d.settle(batch)
		return
	}

	answers, ok := splitBatchAnswers(resp.Content, len(batch))
	if !ok {
		// The reply did not contain a clean numbered answer for every
		// pair — answer the whole batch individually rather than guess
		// at a partial mapping.
		d.stats.parseFallbacks.Add(1)
		d.stats.fallbackPairs.Add(uint64(len(batch)))
		_ = pipeline.ForEach(len(batch), d.eng.Workers(), func(i int) error {
			d.completePair(batch[i], true)
			return nil
		})
		d.settle(batch)
		return
	}

	d.stats.batches.Add(1)
	d.stats.batchedPairs.Add(uint64(len(batch)))
	shares := splitUsage(resp, len(batch))
	for i, c := range batch {
		c.res = Result{
			Match:     core.ParseAnswer(answers[i]),
			Answer:    answers[i],
			Usage:     shares[i],
			Cached:    batchCached,
			Batched:   true,
			BatchID:   seq,
			BatchSize: len(batch),
		}
		// Layer the extracted answer onto the per-pair prompt cache:
		// a later identical pair is a cache hit, batched or not.
		share := shares[i]
		share.Content = answers[i]
		d.eng.Seed(c.key, share)
	}
	d.settle(batch)
}

// completePair answers one pair with its ordinary per-pair prompt.
// Routing stats are the caller's job — they count re-routed pairs
// whether or not this call succeeds.
func (d *Dispatcher) completePair(c *call, fellBack bool) {
	resp, cached, err := d.eng.Complete(c.key)
	if err != nil {
		c.err = fmt.Errorf("dispatch: pair %s: %w", c.pair.ID, err)
		return
	}
	c.res = Result{
		Match:    core.ParseAnswer(resp.Content),
		Answer:   resp.Content,
		Usage:    resp,
		Cached:   cached,
		FellBack: fellBack,
	}
}

// settle publishes a finished batch: the calls leave the in-flight
// set (failed keys become retryable, like cache errors) and their
// futures complete.
func (d *Dispatcher) settle(batch []*call) {
	d.mu.Lock()
	for _, c := range batch {
		if cur, ok := d.inflight[c.key]; ok && cur == c {
			delete(d.inflight, c.key)
		}
	}
	d.mu.Unlock()
	for _, c := range batch {
		if !c.enqueued.IsZero() {
			d.opts.Metrics.WaitSeconds.ObserveSince(c.enqueued)
		}
		close(c.ready)
	}
}

// splitBatchAnswers is the strict counterpart of
// core.ParseBatchAnswers: it extracts the answer text of each
// numbered line ("3. Yes", "3) Yes" or "3: Yes"; the last occurrence
// of a number wins) and reports ok only if every pair 1..n received a
// non-empty answer. Where it succeeds, core.ParseBatchAnswers parses
// the same decisions; where it fails, the dispatcher falls back to
// per-pair prompts instead of defaulting the missing pairs to No.
func splitBatchAnswers(answer string, n int) ([]string, bool) {
	out := make([]string, n)
	seen := make([]bool, n)
	for _, line := range strings.Split(answer, "\n") {
		trimmed := strings.TrimSpace(line)
		i := strings.IndexAny(trimmed, ".):")
		if i < 0 {
			continue
		}
		idx, err := strconv.Atoi(strings.TrimSpace(trimmed[:i]))
		if err != nil || idx < 1 || idx > n {
			continue
		}
		rest := strings.TrimSpace(trimmed[i+1:])
		if rest == "" {
			continue
		}
		out[idx-1] = rest
		seen[idx-1] = true
	}
	for _, s := range seen {
		if !s {
			return nil, false
		}
	}
	return out, true
}

// splitUsage divides one batched request's accounting evenly across
// its pairs; remainders go to the earliest pairs so the shares sum to
// the request exactly.
func splitUsage(resp llm.Response, n int) []llm.Response {
	out := make([]llm.Response, n)
	for i := range out {
		out[i] = llm.Response{
			PromptTokens:     resp.PromptTokens / n,
			CompletionTokens: resp.CompletionTokens / n,
			Latency:          resp.Latency / time.Duration(n),
		}
	}
	for i := 0; i < resp.PromptTokens%n; i++ {
		out[i].PromptTokens++
	}
	for i := 0; i < resp.CompletionTokens%n; i++ {
		out[i].CompletionTokens++
	}
	return out
}
