package dispatch

import (
	"errors"
	"fmt"
	"reflect"
	"strings"
	"sync/atomic"
	"testing"

	"llm4em/internal/entity"
	"llm4em/internal/llm"
	"llm4em/internal/pipeline"
)

// The grouped test format: "group:\n<i> | <a> | <b>" lines, answered
// "i. Yes/No" per line — same verdicts as the per-pair prompt, so
// grouped and fallback answers agree.
func testBuildGroup(pairs []entity.Pair) string {
	var b strings.Builder
	b.WriteString("group:\n")
	for i, p := range pairs {
		fmt.Fprintf(&b, "%d | %s | %s\n", i+1, p.A.Serialize(), p.B.Serialize())
	}
	return strings.TrimRight(b.String(), "\n")
}

func testParseGroup(answer string, n int) ([]bool, bool) {
	lines := strings.Split(answer, "\n")
	if len(lines) != n {
		return nil, false
	}
	out := make([]bool, n)
	for i, line := range lines {
		rest, ok := strings.CutPrefix(line, fmt.Sprintf("%d. ", i+1))
		if !ok {
			return nil, false
		}
		out[i] = strings.HasPrefix(rest, "Yes")
	}
	return out, true
}

func testGroupSpec() GroupSpec {
	return GroupSpec{Build: testBuildGroup, Parse: testParseGroup}
}

// groupClient answers per-pair and grouped test prompts; with
// garbleGroups set, grouped prompts get an unparseable reply.
type groupClient struct {
	garbleGroups bool

	calls, groupCalls, pairCalls atomic.Int64
}

func (c *groupClient) Name() string { return "group-test" }

func (c *groupClient) Chat(messages []llm.Message) (llm.Response, error) {
	c.calls.Add(1)
	content := messages[len(messages)-1].Content
	if strings.HasPrefix(content, "group:\n") {
		c.groupCalls.Add(1)
		if c.garbleGroups {
			return llm.Response{Content: "I would rather describe the candidates in prose.",
				PromptTokens: 12, CompletionTokens: 9}, nil
		}
		var b strings.Builder
		lines := strings.Split(content, "\n")[1:]
		for _, line := range lines {
			parts := strings.SplitN(line, " | ", 3)
			if len(parts) != 3 {
				return llm.Response{}, fmt.Errorf("malformed group line %q", line)
			}
			answer := "No"
			if strings.Contains(parts[2], "variant") {
				answer = "Yes"
			}
			fmt.Fprintf(&b, "%s. %s\n", parts[0], answer)
		}
		return llm.Response{
			Content:      strings.TrimRight(b.String(), "\n"),
			PromptTokens: len(content) / 4, CompletionTokens: 3 * len(lines),
		}, nil
	}
	c.pairCalls.Add(1)
	answer := "No."
	if strings.Contains(content, "variant") {
		answer = "Yes."
	}
	return llm.Response{Content: answer, PromptTokens: len(content) / 4, CompletionTokens: 2}, nil
}

// groupPairs builds n pairs sharing one query record, each candidate
// distinct, matching where the index is even (those candidates are
// "variant" renderings the test client recognizes) — the shape
// DoGroup receives from a Resolve call.
func groupPairs(n int) []entity.Pair {
	q := entity.Record{ID: "q", Attrs: []entity.Attr{{Name: "title", Value: "query item"}}}
	pairs := make([]entity.Pair, n)
	for i := range pairs {
		v := fmt.Sprintf("other item %d", i)
		if i%2 == 0 {
			v = fmt.Sprintf("query item variant %d", i)
		}
		pairs[i] = entity.Pair{
			ID: fmt.Sprintf("g%02d", i),
			A:  q,
			B:  entity.Record{ID: fmt.Sprintf("c%02d", i), Attrs: []entity.Attr{{Name: "title", Value: v}}},
		}
	}
	return pairs
}

// TestDoGroupAnswersAllPairsInOneCall is the core behavior: one
// grouped round-trip decides every pair, verdicts match the per-pair
// formulation, and the stats record one group call.
func TestDoGroupAnswersAllPairsInOneCall(t *testing.T) {
	client := &groupClient{}
	d := newTestDispatcher(client, Options{})
	defer d.Close()
	pairs := groupPairs(4)

	results, err := d.DoGroup(pairs, testGroupSpec())
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != len(pairs) {
		t.Fatalf("got %d results for %d pairs", len(results), len(pairs))
	}
	for i, r := range results {
		want := i%2 == 0
		if r.Match != want {
			t.Errorf("pair %d match = %v, want %v", i, r.Match, want)
		}
		if !r.Grouped || r.GroupSize != len(pairs) {
			t.Errorf("pair %d not marked grouped (grouped=%v size=%d)", i, r.Grouped, r.GroupSize)
		}
		if r.Cached || r.FellBack {
			t.Errorf("pair %d unexpectedly cached=%v fellBack=%v", i, r.Cached, r.FellBack)
		}
	}
	if got := client.calls.Load(); got != 1 {
		t.Errorf("client saw %d calls, want 1", got)
	}
	st := d.Stats()
	if st.GroupCalls != 1 || st.GroupedPairs != 4 || st.GroupParseFallbacks != 0 {
		t.Errorf("stats = %+v, want 1 group call, 4 grouped pairs, 0 fallbacks", st)
	}
}

// TestDoGroupSeedsPerPairCache pins the cache layering: a grouped
// verdict seeds the per-pair prompt cache, so the same pair later —
// pairwise or in another group — costs no client call.
func TestDoGroupSeedsPerPairCache(t *testing.T) {
	client := &groupClient{}
	d := newTestDispatcher(client, Options{})
	defer d.Close()
	pairs := groupPairs(3)

	if _, err := d.DoGroup(pairs, testGroupSpec()); err != nil {
		t.Fatal(err)
	}
	// The same pair pairwise: answered from the seeded cache.
	res, err := d.Do(pairs[1])
	if err != nil {
		t.Fatal(err)
	}
	if !res.Cached {
		t.Error("pairwise repeat of a grouped pair was not a cache hit")
	}
	if res.Match {
		t.Error("seeded verdict flipped: odd pair should not match")
	}
	// A second group overlapping the first: the repeats come from the
	// cache, no new client call for a fully covered group.
	results, err := d.DoGroup(pairs[:2], testGroupSpec())
	if err != nil {
		t.Fatal(err)
	}
	for i, r := range results {
		if !r.Cached {
			t.Errorf("pair %d of repeated group not cached", i)
		}
	}
	if got := client.calls.Load(); got != 1 {
		t.Errorf("client saw %d calls, want 1 (everything after the first group cached)", got)
	}
}

// TestGroupParseFailureFallsBackPerPair pins the degradation
// contract: a malformed grouped reply falls back to one pairwise
// prompt per pair — deterministically, without dropping any pair —
// and the stats count the fallback.
func TestGroupParseFailureFallsBackPerPair(t *testing.T) {
	run := func() ([]Result, Stats, int64) {
		client := &groupClient{garbleGroups: true}
		d := newTestDispatcher(client, Options{})
		defer d.Close()
		pairs := groupPairs(4)
		results, err := d.DoGroup(pairs, testGroupSpec())
		if err != nil {
			t.Fatal(err)
		}
		return results, d.Stats(), client.calls.Load()
	}

	results, st, calls := run()
	if len(results) != 4 {
		t.Fatalf("fallback dropped pairs: got %d results, want 4", len(results))
	}
	for i, r := range results {
		want := i%2 == 0
		if r.Match != want {
			t.Errorf("pair %d match = %v, want %v", i, r.Match, want)
		}
		if !r.FellBack || r.Grouped {
			t.Errorf("pair %d not marked as fallback (fellBack=%v grouped=%v)", i, r.FellBack, r.Grouped)
		}
	}
	// One wasted group round-trip plus one pairwise call per pair.
	if calls != 5 {
		t.Errorf("client saw %d calls, want 5 (1 group + 4 fallback pairs)", calls)
	}
	if st.GroupParseFallbacks != 1 || st.GroupFallbackPairs != 4 || st.GroupCalls != 0 {
		t.Errorf("stats = %+v, want 1 parse fallback, 4 fallback pairs, 0 group calls", st)
	}

	// Deterministic: a rerun produces identical verdicts and flags.
	again, _, _ := run()
	if !reflect.DeepEqual(results, again) {
		t.Errorf("fallback results differ across reruns:\n%+v\n%+v", results, again)
	}
}

// TestDoGroupAfterCloseErrors pins the lifecycle contract.
func TestDoGroupAfterCloseErrors(t *testing.T) {
	d := newTestDispatcher(&groupClient{}, Options{})
	d.Close()
	if _, err := d.DoGroup(groupPairs(2), testGroupSpec()); !errors.Is(err, ErrClosed) {
		t.Fatalf("DoGroup after Close returned %v, want ErrClosed", err)
	}
}

// TestDoGroupEmpty pins the degenerate input.
func TestDoGroupEmpty(t *testing.T) {
	d := newTestDispatcher(&groupClient{}, Options{})
	defer d.Close()
	results, err := d.DoGroup(nil, testGroupSpec())
	if err != nil || results != nil {
		t.Fatalf("DoGroup(nil) = %v, %v; want nil, nil", results, err)
	}
}

// TestRunGroupMixedCache pins the peek layering of the engine-direct
// path: pre-answered pairs are served from the cache and only the
// remainder rides the grouped prompt.
func TestRunGroupMixedCache(t *testing.T) {
	client := &groupClient{}
	eng := pipeline.New(client, pipeline.Options{Workers: 4})
	pairs := groupPairs(3)

	// Answer one pair pairwise first so its key is cached.
	if _, _, err := eng.Complete(testBuildPair(pairs[0])); err != nil {
		t.Fatal(err)
	}
	results, err := RunGroup(eng, testBuildPair, pairs, testGroupSpec())
	if err != nil {
		t.Fatal(err)
	}
	if !results[0].Cached || results[0].Grouped {
		t.Errorf("pre-answered pair not served from cache: %+v", results[0])
	}
	for i := 1; i < 3; i++ {
		if !results[i].Grouped || results[i].GroupSize != 2 {
			t.Errorf("pair %d should ride a group of 2: %+v", i, results[i])
		}
	}
	if got := client.groupCalls.Load(); got != 1 {
		t.Errorf("client saw %d group calls, want 1", got)
	}
}
