package dispatch

import (
	"errors"
	"fmt"
	"reflect"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"llm4em/internal/entity"
	"llm4em/internal/llm"
	"llm4em/internal/pipeline"
)

// The test prompt formats: per-pair "match? <a> || <b>", batched one
// "<i> | <a> | <b>" line per pair under a header. Answers: "Yes." iff
// the two sides are equal, batch replies "i. Yes."/"i. No." — so the
// batched and per-pair answers agree and extraction is the identity.
func testBuildPair(p entity.Pair) string {
	return "match? " + p.A.Serialize() + " || " + p.B.Serialize()
}

func testBuildBatch(pairs []entity.Pair) string {
	var b strings.Builder
	b.WriteString("batch:\n")
	for i, p := range pairs {
		fmt.Fprintf(&b, "%d | %s | %s\n", i+1, p.A.Serialize(), p.B.Serialize())
	}
	return strings.TrimRight(b.String(), "\n")
}

// testClient answers the formats above deterministically and counts
// its calls. With garbleBatches set, batched prompts get an
// unparseable reply, forcing the dispatcher's per-pair fallback.
type testClient struct {
	latency       time.Duration // real sleep, to let queues build
	garbleBatches bool

	calls, batchCalls, pairCalls atomic.Int64
}

func (c *testClient) Name() string { return "dispatch-test" }

func (c *testClient) Chat(messages []llm.Message) (llm.Response, error) {
	c.calls.Add(1)
	if c.latency > 0 {
		time.Sleep(c.latency)
	}
	content := messages[len(messages)-1].Content
	if strings.HasPrefix(content, "batch:\n") {
		c.batchCalls.Add(1)
		if c.garbleBatches {
			return llm.Response{Content: "I cannot answer in that format.", PromptTokens: 10, CompletionTokens: 7}, nil
		}
		var b strings.Builder
		lines := strings.Split(content, "\n")[1:]
		for _, line := range lines {
			parts := strings.SplitN(line, " | ", 3)
			if len(parts) != 3 {
				return llm.Response{}, fmt.Errorf("malformed batch line %q", line)
			}
			answer := "No."
			if parts[1] == parts[2] {
				answer = "Yes."
			}
			fmt.Fprintf(&b, "%s. %s\n", parts[0], answer)
		}
		return llm.Response{
			Content:      strings.TrimRight(b.String(), "\n"),
			PromptTokens: len(content) / 4, CompletionTokens: 3 * len(lines),
		}, nil
	}
	c.pairCalls.Add(1)
	body := strings.TrimPrefix(content, "match? ")
	a, b, _ := strings.Cut(body, " || ")
	answer := "No."
	if a == b {
		answer = "Yes."
	}
	return llm.Response{Content: answer, PromptTokens: len(content) / 4, CompletionTokens: 2}, nil
}

func pair(i int, match bool) entity.Pair {
	a := fmt.Sprintf("item %04d", i)
	b := a
	if !match {
		b = fmt.Sprintf("other %04d", i)
	}
	return entity.Pair{
		ID: fmt.Sprintf("p%04d", i),
		A:  entity.Record{ID: fmt.Sprintf("a%04d", i), Attrs: []entity.Attr{{Name: "title", Value: a}}},
		B:  entity.Record{ID: fmt.Sprintf("b%04d", i), Attrs: []entity.Attr{{Name: "title", Value: b}}},
	}
}

func newTestDispatcher(client llm.Client, opts Options) *Dispatcher {
	eng := pipeline.New(client, pipeline.Options{Workers: 32})
	return New(eng, testBuildPair, testBuildBatch, opts)
}

// TestBatchesCoalesceConcurrentCalls is the core behavior: many
// concurrent submissions ride far fewer client round-trips, every
// caller gets its own correct answer.
func TestBatchesCoalesceConcurrentCalls(t *testing.T) {
	client := &testClient{latency: time.Millisecond}
	d := newTestDispatcher(client, Options{MaxBatchPairs: 8, FlushInterval: 20 * time.Millisecond})
	defer d.Close()

	const n = 32
	results := make([]Result, n)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			r, err := d.Do(pair(i, i%2 == 0))
			if err != nil {
				t.Error(err)
				return
			}
			results[i] = r
		}(i)
	}
	wg.Wait()

	for i, r := range results {
		if want := i%2 == 0; r.Match != want {
			t.Errorf("pair %d: Match = %v, want %v", i, r.Match, want)
		}
		wantAnswer := "No."
		if i%2 == 0 {
			wantAnswer = "Yes."
		}
		if r.Answer != wantAnswer {
			t.Errorf("pair %d: Answer = %q, want %q", i, r.Answer, wantAnswer)
		}
	}
	st := d.Stats()
	if got := st.BatchedPairs + st.SinglePairCalls + st.FallbackPairs; got != n {
		t.Errorf("accounted pairs = %d (stats %+v), want %d", got, st, n)
	}
	if calls := client.calls.Load(); calls >= n/2 {
		t.Errorf("client calls = %d for %d pairs — no meaningful coalescing", calls, n)
	}
	if st.Batches == 0 || st.MeanBatchSize() < 2 {
		t.Errorf("stats %+v: expected real batches", st)
	}
}

// TestFlushOnCloseWithPendingPairs: Close drains a queue whose
// deadline is far in the future — the waiting callers still get real
// answers, not an error.
func TestFlushOnCloseWithPendingPairs(t *testing.T) {
	client := &testClient{}
	d := newTestDispatcher(client, Options{MaxBatchPairs: 16, FlushInterval: time.Minute})

	const n = 5
	var wg sync.WaitGroup
	results := make([]Result, n)
	errs := make([]error, n)
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			results[i], errs[i] = d.Do(pair(i, true))
		}(i)
	}

	// Wait until all n are actually pending (none can flush: the batch
	// is not full and the deadline is a minute away).
	deadline := time.Now().Add(5 * time.Second)
	for {
		d.mu.Lock()
		pending := len(d.pending)
		d.mu.Unlock()
		if pending == n {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("only %d of %d pairs pending", pending, n)
		}
		time.Sleep(time.Millisecond)
	}

	start := time.Now()
	d.Close()
	wg.Wait()
	if elapsed := time.Since(start); elapsed > 10*time.Second {
		t.Fatalf("drain took %v — the FlushInterval deadline leaked into Close", elapsed)
	}
	for i := 0; i < n; i++ {
		if errs[i] != nil {
			t.Fatalf("pair %d: %v", i, errs[i])
		}
		if !results[i].Match {
			t.Errorf("pair %d: Match = false, want true", i)
		}
	}
	st := d.Stats()
	if st.DrainFlushes == 0 {
		t.Errorf("stats %+v: expected a drain flush", st)
	}
	if st.BatchedPairs != n {
		t.Errorf("BatchedPairs = %d, want %d (one drained batch)", st.BatchedPairs, n)
	}
	if _, err := d.Do(pair(99, true)); !errors.Is(err, ErrClosed) {
		t.Errorf("Do after Close: %v, want ErrClosed", err)
	}
	d.Close() // idempotent
}

// TestDeadlineFlushRacesFullBatch stresses the two flush triggers
// against each other: submissions arrive in bursts that both fill
// batches (size flush) and straggle past the deadline (timer flush).
// Every pair must be answered exactly once, correctly, regardless of
// which trigger wins; run with -race this also proves the locking.
func TestDeadlineFlushRacesFullBatch(t *testing.T) {
	client := &testClient{}
	d := newTestDispatcher(client, Options{MaxBatchPairs: 4, FlushInterval: time.Millisecond})
	defer d.Close()

	const rounds = 20
	const burst = 7 // not a multiple of MaxBatchPairs: every round leaves a partial batch for the timer
	var wg sync.WaitGroup
	for r := 0; r < rounds; r++ {
		for j := 0; j < burst; j++ {
			i := r*burst + j
			wg.Add(1)
			go func(i int) {
				defer wg.Done()
				res, err := d.Do(pair(i, i%3 == 0))
				if err != nil {
					t.Error(err)
					return
				}
				if want := i%3 == 0; res.Match != want {
					t.Errorf("pair %d: Match = %v, want %v", i, res.Match, want)
				}
			}(i)
		}
		time.Sleep(time.Duration(r%3) * time.Millisecond) // vary the race window
	}
	wg.Wait()

	st := d.Stats()
	if got := st.BatchedPairs + st.SinglePairCalls + st.FallbackPairs; got != rounds*burst {
		t.Errorf("accounted pairs = %d (stats %+v), want %d", got, st, rounds*burst)
	}
	if st.SizeFlushes == 0 || st.DeadlineFlushes == 0 {
		t.Errorf("stats %+v: wanted both size and deadline flushes to fire", st)
	}
	d.mu.Lock()
	leftover := len(d.pending)
	inflight := len(d.inflight)
	d.mu.Unlock()
	if leftover != 0 || inflight != 0 {
		t.Errorf("queue not drained: %d pending, %d inflight", leftover, inflight)
	}
}

// TestBatchParseFailureFallsBackPerPair: a model that ignores the
// batch format costs the batch one wasted round-trip, then every pair
// is answered individually — never defaulted to No.
func TestBatchParseFailureFallsBackPerPair(t *testing.T) {
	client := &testClient{garbleBatches: true}
	d := newTestDispatcher(client, Options{MaxBatchPairs: 4, FlushInterval: time.Minute})
	defer d.Close()

	const n = 4 // exactly one full batch
	var wg sync.WaitGroup
	results := make([]Result, n)
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			r, err := d.Do(pair(i, i%2 == 0))
			if err != nil {
				t.Error(err)
				return
			}
			results[i] = r
		}(i)
	}
	wg.Wait()

	for i, r := range results {
		if want := i%2 == 0; r.Match != want {
			t.Errorf("pair %d: Match = %v, want %v", i, r.Match, want)
		}
		if !r.FellBack {
			t.Errorf("pair %d: FellBack = false, want true", i)
		}
		if r.Batched {
			t.Errorf("pair %d: Batched = true on a fallback answer", i)
		}
	}
	st := d.Stats()
	if st.ParseFallbacks != 1 || st.FallbackPairs != n {
		t.Errorf("stats %+v: want 1 parse fallback covering %d pairs", st, n)
	}
	if st.Batches != 0 || st.BatchedPairs != 0 {
		t.Errorf("stats %+v: garbled batch must not count as batched", st)
	}
	if got, want := client.calls.Load(), int64(1+n); got != want {
		t.Errorf("client calls = %d, want %d (1 garbled batch + %d per-pair)", got, want, n)
	}
}

// TestSingleFlightAndCacheLayering: identical in-flight pairs
// coalesce onto one future; answered pairs seed the per-pair prompt
// cache so later repeats cost zero client calls.
func TestSingleFlightAndCacheLayering(t *testing.T) {
	client := &testClient{}
	d := newTestDispatcher(client, Options{MaxBatchPairs: 2, FlushInterval: 5 * time.Millisecond})
	defer d.Close()

	// Two distinct pairs plus a duplicate of the first, submitted in
	// one call: DoAll enqueues all three under one lock acquisition, so
	// the duplicate deterministically coalesces onto the in-flight twin
	// and the two distinct pairs form exactly one full batch.
	rs, err := d.DoAll([]entity.Pair{pair(0, true), pair(1, true), pair(0, true)})
	if err != nil {
		t.Fatal(err)
	}
	for i, r := range rs {
		if !r.Match {
			t.Errorf("pair %d: Match = false, want true", i)
		}
	}
	if !rs[2].Cached {
		t.Errorf("duplicate submission not marked Cached: %+v", rs[2])
	}

	st := d.Stats()
	if st.SingleFlightHits != 1 {
		t.Errorf("stats %+v: want exactly 1 single-flight hit", st)
	}
	if client.calls.Load() != 1 {
		t.Errorf("client calls = %d, want 1 (one batch covers all three submissions)", client.calls.Load())
	}

	// A later repeat is served from the seeded per-pair cache.
	r, err := d.Do(pair(0, true))
	if err != nil {
		t.Fatal(err)
	}
	if !r.Cached || !r.Match || r.Answer != "Yes." {
		t.Errorf("repeat = %+v, want cached Yes.", r)
	}
	if client.calls.Load() != 1 {
		t.Errorf("client calls = %d after repeat, want still 1", client.calls.Load())
	}
	if st := d.Stats(); st.CacheHits == 0 {
		t.Errorf("stats %+v: repeat did not count as cache hit", st)
	}
}

func TestDoAllMixedWithinOneCall(t *testing.T) {
	client := &testClient{}
	d := newTestDispatcher(client, Options{MaxBatchPairs: 3, FlushInterval: time.Millisecond})
	defer d.Close()

	// Five pairs in one call, including an in-call duplicate: one full
	// batch of 3, a deadline-flushed partial of 1 (the duplicate
	// coalesces onto its twin).
	pairs := []entity.Pair{pair(0, true), pair(1, false), pair(2, true), pair(0, true), pair(3, false)}
	rs, err := d.DoAll(pairs)
	if err != nil {
		t.Fatal(err)
	}
	want := []bool{true, false, true, true, false}
	for i, r := range rs {
		if r.Match != want[i] {
			t.Errorf("pair %d: Match = %v, want %v", i, r.Match, want[i])
		}
	}
	if !rs[3].Cached {
		t.Errorf("in-call duplicate not marked Cached: %+v", rs[3])
	}
	if rs[0].BatchID == 0 || rs[0].BatchID != rs[1].BatchID || rs[0].BatchID != rs[2].BatchID {
		t.Errorf("first three pairs should share a batch: %+v %+v %+v", rs[0], rs[1], rs[2])
	}
	if rs[4].Batched {
		t.Errorf("singleton flush marked batched: %+v", rs[4])
	}

	if rs2, err := d.DoAll(nil); err != nil || rs2 != nil {
		t.Errorf("DoAll(nil) = %v, %v", rs2, err)
	}
}

func TestClientErrorPropagates(t *testing.T) {
	eng := pipeline.New(&failingClient{}, pipeline.Options{MaxRetries: -1})
	d := New(eng, testBuildPair, testBuildBatch, Options{MaxBatchPairs: 2, FlushInterval: time.Millisecond})
	defer d.Close()

	var wg sync.WaitGroup
	errs := make([]error, 2)
	for i := 0; i < 2; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			_, errs[i] = d.Do(pair(i, true))
		}(i)
	}
	wg.Wait()
	for i, err := range errs {
		if err == nil {
			t.Errorf("pair %d: expected an error", i)
		}
	}
	// The failed keys left the in-flight set, so a retry re-attempts.
	d.mu.Lock()
	inflight := len(d.inflight)
	d.mu.Unlock()
	if inflight != 0 {
		t.Errorf("inflight = %d after failure, want 0 (retryable)", inflight)
	}
}

type failingClient struct{}

func (failingClient) Name() string { return "failing" }
func (failingClient) Chat([]llm.Message) (llm.Response, error) {
	return llm.Response{}, errors.New("boom")
}

func TestSplitBatchAnswers(t *testing.T) {
	cases := []struct {
		name   string
		answer string
		n      int
		want   []string
		ok     bool
	}{
		{"clean", "1. Yes\n2. No", 2, []string{"Yes", "No"}, true},
		{"separators", "1) Yes\n2: No.", 2, []string{"Yes", "No."}, true},
		{"last wins", "1. No\n1. Yes", 1, []string{"Yes"}, true},
		{"missing index", "1. Yes\n3. No", 3, nil, false},
		{"empty answer", "1. Yes\n2.", 2, nil, false},
		{"garbage", "I cannot answer in that format.", 2, nil, false},
		{"out of range ignored", "1. Yes\n2. No\n7. Yes", 2, []string{"Yes", "No"}, true},
	}
	for _, tc := range cases {
		got, ok := splitBatchAnswers(tc.answer, tc.n)
		if ok != tc.ok {
			t.Errorf("%s: ok = %v, want %v", tc.name, ok, tc.ok)
			continue
		}
		if ok && !reflect.DeepEqual(got, tc.want) {
			t.Errorf("%s: answers = %q, want %q", tc.name, got, tc.want)
		}
	}
	// "1 . Yes" has a space before the separator; Atoi of "1 " with
	// TrimSpace still parses, so it is accepted — pin that leniency.
	got, ok := splitBatchAnswers("1 . Yes\n2. No", 2)
	if !ok || got[0] != "Yes" {
		t.Errorf("lenient separator: %q %v", got, ok)
	}
}

func TestSplitUsageSumsExactly(t *testing.T) {
	resp := llm.Response{PromptTokens: 107, CompletionTokens: 23, Latency: 700 * time.Millisecond}
	shares := splitUsage(resp, 5)
	var pt, ct int
	for _, s := range shares {
		pt += s.PromptTokens
		ct += s.CompletionTokens
	}
	if pt != 107 || ct != 23 {
		t.Errorf("shares sum to %d/%d, want 107/23", pt, ct)
	}
	if shares[0].PromptTokens < shares[4].PromptTokens {
		t.Errorf("remainder should go to the earliest pairs: %+v", shares)
	}
}
