package dispatch

import (
	"context"
	"fmt"

	"llm4em/internal/core"
	"llm4em/internal/entity"
	"llm4em/internal/pipeline"
)

// Grouped dispatch: the compare/select strategies ("Match, Compare,
// or Select?", Wang et al.) answer all of a query's uncertain
// candidates in one prompt instead of k independent pair verdicts.
// The group path mirrors the batch path's contract — per-pair cache
// layering, strict parse, per-pair pairwise fallback — but flushes
// synchronously: a group is one query's candidate set, already
// complete when submitted, so there is nothing to wait for.

// GroupSpec describes one grouped-prompt formulation: how to render a
// query's candidate pairs as a single prompt and how to read the
// per-pair verdicts back out of the reply. Parse must be strict —
// report ok only when the reply cleanly decides every pair — because
// a failed parse degrades the group to per-pair pairwise prompts
// rather than guessing at a partial mapping. Both functions must be
// pure and safe for concurrent use.
type GroupSpec struct {
	// Build renders the grouped prompt over the pairs. Every pair in a
	// group shares the same query record (pair.A).
	Build func(pairs []entity.Pair) string
	// Parse extracts one verdict per pair from the reply, in prompt
	// order.
	Parse func(answer string, n int) ([]bool, bool)
}

// DoGroup submits one query's uncertain pairs as a single grouped
// prompt and blocks until every pair is decided, returning results in
// input order. Pairs already answered by the per-pair prompt cache
// are served from it; the rest ride one grouped round-trip whose
// verdicts are seeded back into the per-pair cache. A reply the
// strict parser rejects falls back to individual per-pair prompts for
// the whole group. Returns ErrClosed after Close.
func (d *Dispatcher) DoGroup(pairs []entity.Pair, spec GroupSpec) ([]Result, error) {
	return d.DoGroupContext(context.Background(), pairs, spec)
}

// DoGroupContext is DoGroup with cancellation: the context bounds the
// grouped round-trip and any per-pair fallback calls it degrades to.
func (d *Dispatcher) DoGroupContext(ctx context.Context, pairs []entity.Pair, spec GroupSpec) ([]Result, error) {
	if len(pairs) == 0 {
		return nil, nil
	}
	d.mu.Lock()
	if d.closed {
		d.mu.Unlock()
		return nil, ErrClosed
	}
	// Group calls are synchronous but must still be drained by Close.
	d.wg.Add(1)
	d.mu.Unlock()
	defer d.wg.Done()

	out, err := RunGroupContext(ctx, d.eng, d.buildPair, pairs, spec)
	if err != nil {
		return nil, err
	}
	grouped, fresh, fellBack := 0, false, false
	for _, r := range out {
		switch {
		case r.Grouped:
			grouped++
			if !r.Cached {
				fresh = true
			}
		case r.FellBack:
			fellBack = true
			d.stats.groupFallbackPairs.Add(1)
		case r.Cached:
			d.stats.cacheHits.Add(1)
		}
	}
	d.stats.groupedPairs.Add(uint64(grouped))
	if fresh {
		d.stats.groupCalls.Add(1)
	}
	if fellBack {
		d.stats.groupParseFallbacks.Add(1)
	}
	return out, nil
}

// RunGroup issues one grouped prompt directly through the engine —
// the dispatcher-less counterpart of DoGroup, used by offline
// evaluation. buildPair renders the ordinary per-pair prompt (the
// cache key and the fallback request). Results come back in input
// order; the first error of the group request or any fallback request
// fails the whole group.
func RunGroup(eng *pipeline.Engine, buildPair func(entity.Pair) string, pairs []entity.Pair, spec GroupSpec) ([]Result, error) {
	return RunGroupContext(context.Background(), eng, buildPair, pairs, spec)
}

// RunGroupContext is RunGroup with cancellation.
func RunGroupContext(ctx context.Context, eng *pipeline.Engine, buildPair func(entity.Pair) string, pairs []entity.Pair, spec GroupSpec) ([]Result, error) {
	out := make([]Result, len(pairs))
	keys := make([]string, len(pairs))
	var remaining []int
	for i, p := range pairs {
		keys[i] = buildPair(p)
		if resp, ok := eng.Peek(keys[i]); ok {
			out[i] = Result{
				Match:  core.ParseAnswer(resp.Content),
				Answer: resp.Content,
				Usage:  resp,
				Cached: true,
			}
			continue
		}
		remaining = append(remaining, i)
	}
	if len(remaining) == 0 {
		return out, nil
	}

	group := make([]entity.Pair, len(remaining))
	for j, i := range remaining {
		group[j] = pairs[i]
	}
	resp, groupCached, err := eng.CompleteContext(ctx, spec.Build(group))
	if err != nil {
		return nil, fmt.Errorf("dispatch: group of %d: %w", len(group), err)
	}

	verdicts, ok := spec.Parse(resp.Content, len(group))
	if !ok {
		// The reply did not cleanly decide every pair — degrade the
		// whole group to individual per-pair prompts, exactly like a
		// failed batch parse.
		errs := make([]error, len(remaining))
		_ = pipeline.ForEach(len(remaining), eng.Workers(), func(j int) error {
			i := remaining[j]
			presp, pcached, perr := eng.CompleteContext(ctx, keys[i])
			if perr != nil {
				errs[j] = fmt.Errorf("dispatch: pair %s: %w", pairs[i].ID, perr)
				return nil
			}
			out[i] = Result{
				Match:    core.ParseAnswer(presp.Content),
				Answer:   presp.Content,
				Usage:    presp,
				Cached:   pcached,
				FellBack: true,
			}
			return nil
		})
		for _, e := range errs {
			if e != nil {
				return nil, e
			}
		}
		return out, nil
	}

	shares := splitUsage(resp, len(group))
	for j, i := range remaining {
		answer := "No"
		if verdicts[j] {
			answer = "Yes"
		}
		out[i] = Result{
			Match:     verdicts[j],
			Answer:    answer,
			Usage:     shares[j],
			Cached:    groupCached,
			Grouped:   true,
			GroupSize: len(group),
		}
		// Seed the per-pair prompt cache with the extracted verdict so
		// a later identical pair — grouped, batched or pairwise — is a
		// cache hit.
		share := shares[j]
		share.Content = answer
		eng.Seed(keys[i], share)
	}
	return out, nil
}
