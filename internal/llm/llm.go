// Package llm provides the large language models of the study as
// deterministic local simulations behind an API-client interface.
//
// Each simulated model is a genuine text-in/text-out chat system: it
// parses the prompt it receives (task description, output-format
// instruction, matching rules, in-context demonstrations, serialized
// entity pair), grounds the pair in its lexical world-knowledge
// substrate (internal/features), makes a matching decision, and
// generates a natural-language answer — verbose free-form text,
// forced Yes/No, structured explanations (Section 6) or error-class
// analyses (Section 7). Six capability profiles (profiles.go)
// reproduce the behavioural differences between GPT-4, GPT-4o,
// GPT-mini, Llama2, Llama3.1 and Mixtral that the paper reports:
// answer quality, prompt sensitivity, free-format hedging, in-context
// learning gain, rule utilisation, fine-tunability, verbosity, cost
// and latency.
//
// Swapping a simulated model for a real hosted one requires
// implementing the one-method Client interface with an HTTP client.
// Hosted implementations should mark rate limits, timeouts and
// 5xx-style failures as retryable (see internal/pipeline.Transient)
// so the concurrent matching pipeline retries them with backoff.
package llm

import (
	"context"
	"fmt"
	"time"
)

// Role identifies the author of a chat message.
type Role string

// Chat roles.
const (
	User      Role = "user"
	Assistant Role = "assistant"
	System    Role = "system"
)

// Message is one turn of a chat conversation.
type Message struct {
	Role    Role
	Content string
}

// Response is the model's reply together with the usage accounting a
// hosted API would bill for and the request latency.
type Response struct {
	// Content is the generated text.
	Content string
	// PromptTokens and CompletionTokens are the billed token counts.
	PromptTokens     int
	CompletionTokens int
	// Latency is the simulated wall-clock duration of the request.
	Latency time.Duration
}

// TotalTokens returns prompt plus completion tokens.
func (r Response) TotalTokens() int { return r.PromptTokens + r.CompletionTokens }

// Client is the chat interface shared by all models. The simulation
// implements it locally; a production deployment would implement it
// with an HTTP client against a hosted API.
type Client interface {
	// Name returns the short model name used in the paper's tables,
	// e.g. "GPT-4".
	Name() string
	// Chat generates a reply to the conversation. Temperature is fixed
	// to 0 throughout the study (Section 2), so generation is
	// deterministic.
	Chat(messages []Message) (Response, error)
}

// ContextClient is the optional context-aware extension of Client.
// Implementations honour cancellation and deadlines on ctx, returning
// ctx.Err() for work abandoned in flight. Hosted HTTP clients should
// implement it so per-resolve deadlines actually cancel requests; the
// local simulations are instant, so they don't need to.
type ContextClient interface {
	Client
	// ChatContext is Chat with cancellation.
	ChatContext(ctx context.Context, messages []Message) (Response, error)
}

// ChatContext issues one chat request through c, using ChatContext
// when c implements it and otherwise checking ctx before falling back
// to the uncancellable Chat. It is the single seam every caller that
// holds a context goes through.
func ChatContext(ctx context.Context, c Client, messages []Message) (Response, error) {
	if cc, ok := c.(ContextClient); ok {
		return cc.ChatContext(ctx, messages)
	}
	if err := ctx.Err(); err != nil {
		return Response{}, err
	}
	return c.Chat(messages)
}

// ErrEmptyConversation is returned by Chat when no user message is
// present.
var ErrEmptyConversation = fmt.Errorf("llm: conversation contains no user message")
