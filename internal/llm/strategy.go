package llm

import (
	"fmt"
	"strings"

	"llm4em/internal/detrand"
	"llm4em/internal/features"
)

// Handlers for the grouped strategy prompts of "Match, Compare, or
// Select?" (Wang et al.) and the structured multi-step reasoning
// prompt of Bopardikar et al. Seeing the candidates side by side (or
// being forced through explicit reasoning steps) grounds the model,
// which is simulated as reduced decision noise relative to the
// independent pairwise match path — compare additionally sharpens the
// margin between the best candidate and the rest, select turns the
// task into an argmax, and reason drops the prompt-sensitivity shift
// entirely.

// groupPrompt is the model's reading of a compare/select prompt: the
// query serialization and its numbered candidate serializations.
type groupPrompt struct {
	query      string
	candidates []string
}

// parseGroupPrompt reads the "Query: '…'" and "Candidate N: '…'"
// lines of a grouped prompt.
func parseGroupPrompt(content string) groupPrompt {
	var gp groupPrompt
	for _, line := range strings.Split(content, "\n") {
		trimmed := strings.TrimSpace(line)
		switch {
		case strings.HasPrefix(trimmed, "Query: '"):
			gp.query = strings.TrimSuffix(strings.TrimPrefix(trimmed, "Query: '"), "'")
		case strings.HasPrefix(trimmed, "Candidate "):
			if i := strings.Index(trimmed, ": '"); i >= 0 && strings.HasSuffix(trimmed, "'") {
				gp.candidates = append(gp.candidates, trimmed[i+3:len(trimmed)-1])
			}
		}
	}
	return gp
}

// groupLogits scores every candidate against the query. Grouped
// prompts ground the model in the candidate set, so the per-pair
// noise is tighter than the pairwise path's (noiseScale < 1).
func (m *Model) groupLogits(gp groupPrompt, seed string, noiseScale float64) []float64 {
	eq := extractCached(gp.query)
	w := m.baseWeights()
	logits := make([]float64, len(gp.candidates))
	for i, c := range gp.candidates {
		v, pres := features.PairFeatures(eq, extractCached(c))
		noise := noiseScale * m.profile.NoiseSigma * detrand.Gauss(m.profile.Name, seed, gp.query, c)
		logits[i] = w.Score(v, pres) + noise
	}
	return logits
}

// groupComply is the probability of answering a grouped or reasoning
// prompt in its requested structured format. The numbered answer
// scaffold ("1. Yes", "Answer: 2", "Final Answer:") anchors the reply
// the way demonstration formats do, so non-compliance shrinks to a
// quarter of the model's free force-format rate while the ranking
// between models is preserved.
func (m *Model) groupComply() float64 {
	return 1 - (1-m.profile.ForceCompliance)/4
}

// groupHedge is the non-compliant reply to a grouped prompt: prose
// with no numbered verdict lines and no Answer line, so the strict
// parser rejects it and the caller falls back to pairwise prompts. It
// avoids the word "yes" entirely.
func (m *Model) groupHedge(gp groupPrompt) string {
	return "Each of the listed candidates shares some attributes with the query record, " +
		"but several attribute values are missing or ambiguous, and a definitive per-candidate " +
		"determination is not possible from the given information alone. Additional identifiers " +
		"or specifications would be required to distinguish the candidates reliably."
}

// answerCompare handles compare prompts: one Yes/No verdict per
// candidate, decided with the whole candidate set in view. The
// side-by-side comparison sharpens the contrast between the strongest
// candidate and the rest in proportion to its margin.
func (m *Model) answerCompare(content string) string {
	gp := parseGroupPrompt(content)
	if len(gp.candidates) == 0 {
		return "No candidates found."
	}
	if detrand.Unit(m.profile.Name, "compare-comply", gp.query) >= m.groupComply() {
		return m.groupHedge(gp)
	}
	logits := m.groupLogits(gp, "compare-noise", 0.7)
	best, second := 0, -1
	for i := 1; i < len(logits); i++ {
		if logits[i] > logits[best] {
			second = best
			best = i
		} else if second < 0 || logits[i] > logits[second] {
			second = i
		}
	}
	contrast := 0.0
	if second >= 0 {
		contrast = 0.3 * clamp(logits[best]-logits[second], 0, 1)
	}
	var b strings.Builder
	for i, logit := range logits {
		if i == best {
			logit += contrast
		} else {
			logit -= contrast
		}
		if logit > 0 {
			fmt.Fprintf(&b, "%d. Yes\n", i+1)
		} else {
			fmt.Fprintf(&b, "%d. No\n", i+1)
		}
	}
	return strings.TrimRight(b.String(), "\n")
}

// answerSelect handles select prompts: the model names the single
// best-scoring candidate if its evidence clears the matching
// threshold, and "none" otherwise. The argmax framing removes the
// per-candidate threshold wobble, simulated as the tightest noise of
// the three strategies.
func (m *Model) answerSelect(content string) string {
	gp := parseGroupPrompt(content)
	if len(gp.candidates) == 0 {
		return "No candidates found."
	}
	if detrand.Unit(m.profile.Name, "select-comply", gp.query) >= m.groupComply() {
		return m.groupHedge(gp)
	}
	logits := m.groupLogits(gp, "select-noise", 0.6)
	best := 0
	for i := 1; i < len(logits); i++ {
		if logits[i] > logits[best] {
			best = i
		}
	}
	if logits[best] > 0 {
		return fmt.Sprintf("Answer: %d", best+1)
	}
	return "Answer: none"
}

// answerReason handles structured multi-step reasoning prompts. The
// explicit attribute-by-attribute derivation grounds the model: the
// prompt-sensitivity shift of the pairwise path disappears and the
// decision noise halves, modelling the reasoning gains reported for
// hard pairs. Non-compliant replies fall back to the free-form answer,
// whose leading Yes/No the word-level fallback parse still recovers.
func (m *Model) answerReason(pp ParsedPrompt) string {
	extA, extB := extractCached(pp.QueryA), extractCached(pp.QueryB)
	v, pres := features.PairFeatures(extA, extB)
	w := m.baseWeights()
	noise := 0.5 * m.profile.NoiseSigma * detrand.Gauss(m.profile.Name, "reason-noise", pp.QueryA, pp.QueryB)
	logit := w.Score(v, pres) + noise
	d := decision{yes: logit > 0, logit: logit, vector: v, present: pres, weights: w, extA: extA, extB: extB}

	if detrand.Unit(m.profile.Name, "reason-comply", pp.QueryA, pp.QueryB) >= m.groupComply() {
		return m.verboseAnswer(pp, d)
	}

	var b strings.Builder
	b.WriteString("Step 1: The key attributes of both entity descriptions were extracted and aligned.\n")
	evidence := m.evidenceSentences(d)
	if len(evidence) == 0 {
		b.WriteString("Step 2: The descriptions expose no directly comparable attributes beyond their overall wording.\n")
	} else {
		b.WriteString("Step 2: ")
		b.WriteString(strings.Join(evidence, " "))
		b.WriteString("\n")
	}
	if d.yes {
		b.WriteString("Step 3: Weighing the evidence, the matching attributes outweigh the conflicting ones.\n")
		b.WriteString("Final Answer: Yes")
	} else {
		b.WriteString("Step 3: Weighing the evidence, the conflicting attributes outweigh the matching ones.\n")
		b.WriteString("Final Answer: No")
	}
	return b.String()
}
