package llm

import (
	"strings"
	"testing"

	"llm4em/internal/entity"
)

const sampleErrorPrompt = `You are analyzing the errors of an entity matching system for product descriptions.
Below are false positive cases: entity pairs for which the system made a wrong decision, together with a structured explanation of each decision.
Derive a list of 5 error classes that describe common causes of these false positive errors. For each class, give a short name and a one-sentence description.

Case 1:
Gold: non-match, Predicted: match
Entity 1: 'Sony DSC-120A camera black 348.00'
Entity 2: 'sony dsc120b camera black 350.00'
Explanation:
title | 0.80 | 0.95
brand | 0.40 | 1.00
model | -0.30 | 0.50
price | 0.10 | 0.98

Case 2:
Gold: non-match, Predicted: match
Entity 1: 'Makita LXT drill 99.00'
Entity 2: 'makita lxt drill kit 101.00'
Explanation:
title | 0.90 | 0.92
price | 0.20 | 0.97
`

func TestParseErrorCases(t *testing.T) {
	cases := parseErrorCases(sampleErrorPrompt)
	if len(cases) != 2 {
		t.Fatalf("parsed %d cases, want 2", len(cases))
	}
	c := cases[0]
	if c.goldMatch || !c.predMatch {
		t.Errorf("labels wrong: %+v", c)
	}
	if len(c.expl) != 4 {
		t.Errorf("case 1 has %d explanation rows, want 4", len(c.expl))
	}
	if c.expl[0].attribute != "title" || c.expl[0].importance != 0.80 {
		t.Errorf("first row = %+v", c.expl[0])
	}
	if !strings.Contains(c.rawA, "DSC-120A") {
		t.Errorf("rawA = %q", c.rawA)
	}
}

func TestAnswerErrorClassesStructure(t *testing.T) {
	m := MustNew(GPT4Turbo)
	reply := m.answerErrorClasses(sampleErrorPrompt)
	numbered := 0
	for _, line := range strings.Split(reply, "\n") {
		if isNumberedLine(strings.TrimSpace(line)) {
			numbered++
		}
	}
	if numbered != 5 {
		t.Fatalf("reply has %d numbered classes, want 5:\n%s", numbered, reply)
	}
	// Title-driven false positives dominate the sample, so a
	// title-related class must rank first.
	firstClass := strings.SplitN(reply, "\n", 3)[1]
	lower := strings.ToLower(firstClass)
	if !strings.Contains(lower, "title") && !strings.Contains(lower, "differences") && !strings.Contains(lower, "matching attributes") {
		t.Errorf("first class should reflect the dominant title pattern: %s", firstClass)
	}
}

func TestClassTemplateApplies(t *testing.T) {
	c := errorCase{
		goldMatch: false, predMatch: true,
		rawA: "a b c d", rawB: "a b",
		expl: []explLine{
			{attribute: "title", importance: 0.8, similarity: 0.9},
			{attribute: "model", importance: -0.4, similarity: 0.5},
		},
	}
	titleFP := classTemplate{attrs: []string{"title"}}
	if !titleFP.applies(c, true) {
		t.Error("title class should apply to a title-driven false positive")
	}
	modelFP := classTemplate{attrs: []string{"model"}}
	if modelFP.applies(c, true) {
		t.Error("model pushed toward non-match; it did not cause the false positive")
	}
	partial := classTemplate{partial: true}
	if !partial.applies(c, true) {
		t.Error("asymmetric token counts should trigger the partial-information class")
	}
}

func TestTemplateForClassName(t *testing.T) {
	ct := templateForClassName("Year Discrepancy: Differences in publication years lead to false negatives")
	if len(ct.attrs) == 0 || ct.attrs[0] != "year" {
		t.Errorf("year class template = %+v", ct)
	}
	ct = templateForClassName("Author List Incompleteness: one entry has more authors")
	if !ct.partial {
		t.Error("incompleteness class should use the partial signature")
	}
	ct = templateForClassName("Misinterpretation of Accessory or Variant Information: ...")
	if len(ct.attrs) == 0 {
		t.Error("variant class should map to variant attributes")
	}
}

func TestAnswerErrorAssignFormat(t *testing.T) {
	m := MustNew(GPT4Turbo)
	assignPrompt := `Given the following error classes for an entity matching system:
1. Overemphasis on Title Similarity: High similarity in titles leading to false positives.
2. Price Discrepancy Overlooked: Significant price differences are overlooked.
Decide for the following wrongly matched pair which of the error classes apply. List all applicable class numbers with a confidence value between 0 and 1 for each.

Case 1:
Gold: non-match, Predicted: match
Entity 1: 'Sony DSC-120A camera black 348.00'
Entity 2: 'sony dsc120b camera black 350.00'
Explanation:
title | 0.80 | 0.95
price | 0.10 | 0.98
`
	reply := m.answerErrorAssign(assignPrompt)
	if !strings.Contains(reply, "Applicable error classes:") && !strings.Contains(reply, "None of the error classes") {
		t.Errorf("unexpected assignment reply: %q", reply)
	}
	// Deterministic.
	if reply != m.answerErrorAssign(assignPrompt) {
		t.Error("assignment not deterministic")
	}
}

func TestClassBankSelection(t *testing.T) {
	if got := classBank(entity.Publication, true); &got[0] != &pubFPClasses[0] {
		t.Error("publication FP bank wrong")
	}
	if got := classBank(entity.Publication, false); &got[0] != &pubFNClasses[0] {
		t.Error("publication FN bank wrong")
	}
	if got := classBank(entity.Product, true); &got[0] != &productFPClasses[0] {
		t.Error("product FP bank wrong")
	}
	if got := classBank(entity.Product, false); &got[0] != &productFNClasses[0] {
		t.Error("product FN bank wrong")
	}
}
