package llm

import (
	"testing"

	"llm4em/internal/datasets"
	"llm4em/internal/entity"
	"llm4em/internal/eval"
	"llm4em/internal/prompt"
)

// runF1 evaluates a model with a design over a dataset slice using
// the paper's answer-parsing rule.
func runF1(t *testing.T, model *Model, designName, key string, n int) float64 {
	t.Helper()
	ds := datasets.MustLoad(key)
	d, err := prompt.DesignByName(designName)
	if err != nil {
		t.Fatal(err)
	}
	spec := prompt.Spec{Design: d, Domain: ds.Schema.Domain}
	var c eval.Confusion
	for _, p := range ds.Test[:n] {
		resp, err := model.Chat([]Message{{Role: User, Content: spec.Build(p)}})
		if err != nil {
			t.Fatal(err)
		}
		c.Add(p.Match, parseYes(resp.Content))
	}
	return c.F1()
}

// parseYes mirrors the paper's answer parsing for test purposes.
func parseYes(answer string) bool {
	lower := []byte(answer)
	for i := range lower {
		if lower[i] >= 'A' && lower[i] <= 'Z' {
			lower[i] += 'a' - 'A'
		}
	}
	s := string(lower)
	for i := 0; i+3 <= len(s); i++ {
		if s[i:i+3] != "yes" {
			continue
		}
		beforeOK := i == 0 || !isWord(s[i-1])
		afterOK := i+3 == len(s) || !isWord(s[i+3])
		if beforeOK && afterOK {
			return true
		}
	}
	return false
}

func isWord(b byte) bool { return b >= 'a' && b <= 'z' || b >= '0' && b <= '9' }

// TestZeroShotQualityOrdering pins the paper's model ranking on a
// WDC slice with a strong force prompt: GPT-4 >= Llama3.1 > Llama2 >
// Mixtral.
func TestZeroShotQualityOrdering(t *testing.T) {
	const n = 400
	f1 := map[string]float64{}
	for _, name := range []string{GPT4, Llama31, Llama2, Mixtral} {
		f1[name] = runF1(t, MustNew(name), "general-complex-force", "wdc", n)
	}
	t.Logf("ordering: %v", f1)
	if !(f1[GPT4] >= f1[Llama31] && f1[Llama31] > f1[Llama2] && f1[Llama2] > f1[Mixtral]) {
		t.Errorf("quality ordering violated: %v", f1)
	}
}

// TestPromptSensitivityOrdering pins the paper's central sensitivity
// finding: GPT-4's F1 varies far less across prompt designs than
// Llama3.1's or GPT-mini's.
func TestPromptSensitivityOrdering(t *testing.T) {
	const n = 300
	sd := func(name string) float64 {
		var xs []float64
		m := MustNew(name)
		for _, d := range prompt.Designs() {
			xs = append(xs, runF1(t, m, d.Name, "wdc", n))
		}
		return eval.StdDev(xs)
	}
	gpt4 := sd(GPT4)
	llama31 := sd(Llama31)
	mini := sd(GPTMini)
	t.Logf("prompt-sensitivity SD: GPT-4 %.2f, Llama3.1 %.2f, GPT-mini %.2f", gpt4, llama31, mini)
	if gpt4 >= llama31 || gpt4 >= mini {
		t.Errorf("GPT-4 (SD %.2f) must be the most prompt-stable model (Llama3.1 %.2f, GPT-mini %.2f)", gpt4, llama31, mini)
	}
	if gpt4 > 6 {
		t.Errorf("GPT-4 SD %.2f too large; paper reports 2.26", gpt4)
	}
}

// TestSimpleFreeCollapse pins the free-format failure mode: GPT-mini
// under the bare "match?" wording with free answers loses massively
// against the same wording with the force instruction.
func TestSimpleFreeCollapse(t *testing.T) {
	const n = 300
	m := MustNew(GPTMini)
	force := runF1(t, m, "domain-simple-force", "wdc", n)
	free := runF1(t, m, "domain-simple-free", "wdc", n)
	t.Logf("GPT-mini domain-simple: force %.2f vs free %.2f", force, free)
	if free >= force-10 {
		t.Errorf("free format should collapse for GPT-mini under simple wording: force %.2f, free %.2f", force, free)
	}
}

// TestRulesRescueMixtral pins the Section 4.2 finding that matching
// rules give Mixtral its largest gains.
func TestRulesRescueMixtral(t *testing.T) {
	const n = 400
	ds := datasets.MustLoad("wdc")
	d, _ := prompt.DesignByName("general-complex-force")
	m := MustNew(Mixtral)

	evalWith := func(rules []string) float64 {
		spec := prompt.Spec{Design: d, Domain: ds.Schema.Domain, Rules: rules}
		var c eval.Confusion
		for _, p := range ds.Test[:n] {
			resp, err := m.Chat([]Message{{Role: User, Content: spec.Build(p)}})
			if err != nil {
				t.Fatal(err)
			}
			c.Add(p.Match, parseYes(resp.Content))
		}
		return c.F1()
	}
	productRules := []string{
		"The brands of the two products must match; allow for slight differences in spelling.",
		"The model numbers must refer to the same model; ignore dashes and capitalization.",
		"Capacity, size, and color variants must be identical for the products to match.",
		"Prices may differ moderately between vendors; a large price difference indicates different products.",
	}
	without := evalWith(nil)
	with := evalWith(productRules)
	t.Logf("Mixtral: without rules %.2f, with rules %.2f", without, with)
	if with <= without+5 {
		t.Errorf("rules should lift Mixtral substantially: %.2f -> %.2f", without, with)
	}
}

// TestFineTunedStability pins the fine-tuning side effects: a
// fine-tuned model ignores prompt-design variation and answers with
// bare labels.
func TestFineTunedStability(t *testing.T) {
	base := MustNew(Llama31)
	ft, err := NewFineTuned(Llama31, Adapter{Weights: base.BaseWeights(), TrainedOn: "wdc"})
	if err != nil {
		t.Fatal(err)
	}
	ds := datasets.MustLoad("wdc")
	var answers []string
	for _, designName := range []string{"domain-simple-force", "general-complex-free"} {
		d, _ := prompt.DesignByName(designName)
		spec := prompt.Spec{Design: d, Domain: entity.Product}
		resp, err := ft.Chat([]Message{{Role: User, Content: spec.Build(ds.Test[0])}})
		if err != nil {
			t.Fatal(err)
		}
		answers = append(answers, resp.Content)
	}
	if answers[0] != answers[1] {
		t.Errorf("fine-tuned model should be prompt-stable: %q vs %q", answers[0], answers[1])
	}
	if answers[0] != "Yes" && answers[0] != "No" {
		t.Errorf("fine-tuned model should answer with a bare label, got %q", answers[0])
	}
}

// TestBatchAnswerShape checks the batched-matching reply format.
func TestBatchAnswerShape(t *testing.T) {
	ds := datasets.MustLoad("wdc")
	p := prompt.BuildBatch(entity.Product, ds.Test[:4])
	resp, err := MustNew(GPT4).Chat([]Message{{Role: User, Content: p}})
	if err != nil {
		t.Fatal(err)
	}
	lines := 0
	for _, l := range splitLines(resp.Content) {
		if l != "" {
			lines++
		}
	}
	if lines != 4 {
		t.Errorf("batch reply has %d lines, want 4:\n%s", lines, resp.Content)
	}
}

func splitLines(s string) []string {
	var out []string
	start := 0
	for i := 0; i <= len(s); i++ {
		if i == len(s) || s[i] == '\n' {
			out = append(out, s[start:i])
			start = i + 1
		}
	}
	return out
}

// TestTemperatureAddsNoise pins the Section 2 statement: temperature 0
// is deterministic; raising it flips borderline decisions.
func TestTemperatureAddsNoise(t *testing.T) {
	ds := datasets.MustLoad("wdc")
	base := MustNew(GPTMini)
	hot := base.WithTemperature(1.5)
	if base.Temperature() != 0 || hot.Temperature() != 1.5 {
		t.Fatalf("temperatures: %v / %v", base.Temperature(), hot.Temperature())
	}
	d, _ := prompt.DesignByName("general-complex-force")
	spec := prompt.Spec{Design: d, Domain: ds.Schema.Domain}
	flips := 0
	for _, p := range ds.Test[:300] {
		content := spec.Build(p)
		rb, err := base.Chat([]Message{{Role: User, Content: content}})
		if err != nil {
			t.Fatal(err)
		}
		rh, err := hot.Chat([]Message{{Role: User, Content: content}})
		if err != nil {
			t.Fatal(err)
		}
		if parseYes(rb.Content) != parseYes(rh.Content) {
			flips++
		}
	}
	if flips == 0 {
		t.Error("temperature 1.5 flipped no decisions over 300 pairs")
	}
	if flips > 150 {
		t.Errorf("temperature 1.5 flipped %d/300 decisions — too chaotic", flips)
	}
	// Clamping.
	if got := base.WithTemperature(99).Temperature(); got != 2 {
		t.Errorf("temperature not clamped: %v", got)
	}
}
