package llm

import (
	"fmt"
	"sort"
	"strings"

	"llm4em/internal/features"
)

// learnedRuleTemplates phrase the rule the model derives when a
// feature separates the matching from the non-matching examples.
var learnedRuleTemplates = map[features.Feature]string{
	features.BrandMatch:      "The brand or manufacturer stated in both descriptions should be the same, even if it is spelled or capitalized differently.",
	features.ModelMatch:      "Identifiers such as model numbers are decisive: the same model may be written with or without dashes, but a different number or suffix means a different product.",
	features.VersionMatch:    "Version numbers must agree; note that versions can be written as '5', '5.0' or as a year such as '2007'.",
	features.EditionMatch:    "Edition terms such as 'upgrade', 'academic' or 'full version' distinguish different offers of the same product line.",
	features.PriceMatch:      "Prices of the same item from different vendors differ only moderately; a substantially different price suggests a different item.",
	features.VariantMatch:    "Variant attributes such as capacity, size, or color must be identical; differing variants indicate sibling products.",
	features.TitleGenJaccard: "The names or titles should describe the same item, tolerating abbreviations, re-ordering and extra marketing words.",
	features.AuthorMatch:     "The author lists should denote the same people; first names may be reduced to initials and some authors may be missing.",
	features.VenueMatch:      "Venue names appear in many surface forms; treat abbreviations and full names as the same venue, but conference and journal versions as different publications.",
	features.YearMatch:       "The years should match; sources occasionally disagree by one year, but larger differences indicate different records.",
}

// learnedRuleOrder fixes a deterministic presentation order.
var learnedRuleOrder = []features.Feature{
	features.TitleGenJaccard, features.BrandMatch, features.ModelMatch,
	features.VersionMatch, features.EditionMatch, features.VariantMatch,
	features.PriceMatch, features.AuthorMatch, features.VenueMatch,
	features.YearMatch,
}

// answerRuleLearn handles rule-learning prompts (Section 4.2): the
// model inspects the labelled examples, measures which attribute
// comparisons separate matches from non-matches, and phrases rules
// for the most discriminative ones.
func (m *Model) answerRuleLearn(content string) string {
	pp := parseMatchPrompt(content)
	if len(pp.Demos) == 0 {
		return "I cannot derive rules without labelled examples."
	}

	var posSum, negSum features.Vector
	var posCnt, negCnt features.Vector
	for _, d := range pp.Demos {
		v, pres := features.PairFeaturesText(d.A, d.B)
		for i := 0; i < int(features.NumFeatures); i++ {
			if !pres[i] {
				continue
			}
			if d.Match {
				posSum[i] += v[i]
				posCnt[i]++
			} else {
				negSum[i] += v[i]
				negCnt[i]++
			}
		}
	}

	// Rank by absolute separation: hand-picked demonstration sets are
	// corner-case heavy, so a feature may separate in either direction
	// (matches can be *less* similar than sibling non-matches). Either
	// way the attribute matters, and the emitted rule phrases the
	// heterogeneity to tolerate.
	type sep struct {
		f features.Feature
		d float64
	}
	var seps []sep
	for _, f := range learnedRuleOrder {
		if posCnt[f] == 0 || negCnt[f] == 0 {
			continue
		}
		d := posSum[f]/posCnt[f] - negSum[f]/negCnt[f]
		if d < 0 {
			d = -d
		}
		if d > 0.03 {
			seps = append(seps, sep{f, d})
		}
	}
	sort.SliceStable(seps, func(i, j int) bool { return seps[i].d > seps[j].d })
	if len(seps) > 6 {
		seps = seps[:6]
	}

	var b strings.Builder
	b.WriteString("Based on the examples, I derive the following matching rules:\n")
	for i, s := range seps {
		fmt.Fprintf(&b, "%d. %s\n", i+1, learnedRuleTemplates[s.f])
	}
	if len(seps) == 0 {
		b.WriteString("1. The descriptions must agree on their identifying attributes, tolerating formatting differences.\n")
	}
	return strings.TrimRight(b.String(), "\n")
}
