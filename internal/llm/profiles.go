package llm

// Profile holds the capability parameters of one simulated model.
//
// The values are calibrated against the paper's evaluation so that
// its qualitative findings reproduce: the zero-shot quality ordering
// and prompt-sensitivity ordering of Tables 2-3, the per-model
// reactions to demonstrations and rules of Tables 5-6, the
// fine-tuning and transfer behaviour of Table 7, and the token/cost/
// latency profile of Tables 8-9. They are not fitted to individual
// table cells.
type Profile struct {
	// Name is the short table name ("GPT-4"); APIName the full model
	// identifier ("gpt4-0613").
	Name    string
	APIName string
	// Hosted marks OpenAI-hosted models (cost analysis, Section 5).
	Hosted bool
	// ContextWindow is the advertised context size in tokens.
	ContextWindow int

	// WeightFidelity in [0,1] interpolates the model's innate matching
	// knowledge from naive title-overlap weighting (0) to the ideal
	// reference weighting (1).
	WeightFidelity float64
	// NoiseSigma is the standard deviation of the per-pair decision
	// noise on the logit scale.
	NoiseSigma float64
	// PromptSensitivity scales the per-prompt-design threshold shift;
	// it is the primary driver of the F1 standard deviations of
	// Table 3.
	PromptSensitivity float64
	// SimpleWordingPenalty shifts the decision threshold conservative
	// when the task description uses the bare "match?" wording, which
	// under-specifies the task for weaker models.
	SimpleWordingPenalty float64

	// HedgeRate is the base probability of answering a free-format
	// prompt with verbose, non-committal text that fails the "yes"
	// parse. SimpleHedgeBoost multiplies it under simple wording.
	HedgeRate        float64
	SimpleHedgeBoost float64
	// ForceCompliance is the probability of answering a force-format
	// prompt with a bare Yes/No instead of a sentence.
	ForceCompliance float64

	// ICLGain is the per-demonstration calibration gain (negative for
	// models that demonstrations confuse); ICLRelatedBonus is the
	// extra gain from semantically related demonstrations.
	ICLGain         float64
	ICLRelatedBonus float64

	// RuleUtilization in [0,1] is how strongly the model adopts the
	// attribute weighting expressed by textual matching rules.
	// RuleConjunctive is the probability of misapplying the rules as a
	// strict conjunction (all mentioned attributes must match), which
	// collapses recall.
	RuleUtilization float64
	RuleConjunctive float64

	// FreeVerbosity is the mean completion length (tokens) of verbose
	// free-format answers.
	FreeVerbosity int
	// DemoFormatGrounding reports whether in-context demonstrations
	// ground the model's output format (short answers after demos).
	DemoFormatGrounding bool

	// Latency model: Latency = LatBase + LatPerIn·promptTokens +
	// LatPerOut·completionTokens, in seconds.
	LatBase   float64
	LatPerIn  float64
	LatPerOut float64
	// LatFineTuned is the per-request latency of the locally deployed
	// fine-tuned (quantized) variant; zero if not applicable.
	LatFineTuned float64

	// FTPlasticity in [0,1] is how completely fine-tuning replaces the
	// model's innate weighting with the fitted one; FTRetention in
	// [0,1] is how much general (ideal) knowledge is mixed back in,
	// which preserves cross-dataset generalization.
	FTPlasticity float64
	FTRetention  float64
	// FTNoiseScale multiplies NoiseSigma after fine-tuning.
	FTNoiseScale float64
}

// Model names as used in the paper's tables, plus the additional
// models of the project repository.
const (
	GPTMini       = "GPT-mini"
	GPT4          = "GPT-4"
	GPT4o         = "GPT-4o"
	Llama2        = "Llama2"
	Llama31       = "Llama3.1"
	Mixtral       = "Mixtral"
	GPT4Turbo     = "GPT4-turbo"
	GPT35Turbo    = "GPT3.5-turbo"
	SOLAR         = "SOLAR"
	StableBeluga2 = "StableBeluga2"
)

// AdditionalModels returns the models outside the main study for
// which the paper's repository provides extra results.
func AdditionalModels() []string {
	return []string{GPT35Turbo, SOLAR, StableBeluga2}
}

// profiles is the calibrated model registry.
var profiles = map[string]Profile{
	GPTMini: {
		Name: GPTMini, APIName: "gpt-4o-mini-2024-07-18", Hosted: true, ContextWindow: 128000,
		WeightFidelity: 0.88, NoiseSigma: 0.55,
		PromptSensitivity: 0.85, SimpleWordingPenalty: 2.4,
		HedgeRate: 0.10, SimpleHedgeBoost: 5.5, ForceCompliance: 0.75,
		ICLGain: -0.15, ICLRelatedBonus: 0.05,
		RuleUtilization: 0.35, RuleConjunctive: 0,
		FreeVerbosity: 89, DemoFormatGrounding: true,
		LatBase: 0.35, LatPerIn: 0.0001, LatPerOut: 0.013,
		FTPlasticity: 0.95, FTRetention: 0.55, FTNoiseScale: 0.55,
	},
	GPT4: {
		Name: GPT4, APIName: "gpt4-0613", Hosted: true, ContextWindow: 8192,
		WeightFidelity: 1.0, NoiseSigma: 0.26,
		PromptSensitivity: 0.38, SimpleWordingPenalty: 0.35,
		HedgeRate: 0.015, SimpleHedgeBoost: 1.5, ForceCompliance: 0.98,
		ICLGain: 0.05, ICLRelatedBonus: 0.30,
		RuleUtilization: 0.30, RuleConjunctive: 0,
		FreeVerbosity: 40, DemoFormatGrounding: true,
		LatBase: 0.55, LatPerIn: 0.0002, LatPerOut: 0.04,
	},
	GPT4o: {
		Name: GPT4o, APIName: "gpt-4o-2024-08-06", Hosted: true, ContextWindow: 128000,
		WeightFidelity: 0.95, NoiseSigma: 0.42,
		PromptSensitivity: 0.55, SimpleWordingPenalty: 0.8,
		HedgeRate: 0.80, SimpleHedgeBoost: 1.4, ForceCompliance: 0.97,
		ICLGain: 0.55, ICLRelatedBonus: 0.35,
		RuleUtilization: 0.30, RuleConjunctive: 0,
		FreeVerbosity: 55, DemoFormatGrounding: true,
		LatBase: 0.44, LatPerIn: 0.0002, LatPerOut: 0.03,
	},
	Llama2: {
		Name: Llama2, APIName: "Llama-2-70b-chat-hf", Hosted: false, ContextWindow: 4096,
		WeightFidelity: 0.60, NoiseSigma: 0.85,
		PromptSensitivity: 0.40, SimpleWordingPenalty: 0.75,
		HedgeRate: 0.26, SimpleHedgeBoost: 1.15, ForceCompliance: 0.55,
		ICLGain: 0.12, ICLRelatedBonus: 0,
		RuleUtilization: 0.25, RuleConjunctive: 0.75,
		FreeVerbosity: 105, DemoFormatGrounding: false,
		LatBase: 0.8, LatPerIn: 0.0004, LatPerOut: 0.2, LatFineTuned: 0.30,
		FTPlasticity: 1.0, FTRetention: 0.08, FTNoiseScale: 0.65,
	},
	Llama31: {
		Name: Llama31, APIName: "Meta-Llama-3.1-70B-Instruct", Hosted: false, ContextWindow: 128000,
		WeightFidelity: 0.90, NoiseSigma: 0.50,
		PromptSensitivity: 0.95, SimpleWordingPenalty: 1.6,
		HedgeRate: 0.36, SimpleHedgeBoost: 2.4, ForceCompliance: 0.92,
		ICLGain: 0.28, ICLRelatedBonus: 0.10,
		RuleUtilization: 0.12, RuleConjunctive: 0.02,
		FreeVerbosity: 60, DemoFormatGrounding: true,
		LatBase: 0.30, LatPerIn: 0.002, LatPerOut: 0.08, LatFineTuned: 0.30,
		FTPlasticity: 1.0, FTRetention: 0.22, FTNoiseScale: 0.60,
	},
	Mixtral: {
		Name: Mixtral, APIName: "Mixtral-8x7B-Instruct-v0.1", Hosted: false, ContextWindow: 32000,
		WeightFidelity: 0.36, NoiseSigma: 1.0,
		PromptSensitivity: 0.60, SimpleWordingPenalty: 1.5,
		HedgeRate: 0.44, SimpleHedgeBoost: 1.8, ForceCompliance: 0.60,
		ICLGain: -0.18, ICLRelatedBonus: 0,
		RuleUtilization: 0.85, RuleConjunctive: 0,
		FreeVerbosity: 70, DemoFormatGrounding: false,
		LatBase: 0.5, LatPerIn: 0.0015, LatPerOut: 0.09,
	},
	GPT35Turbo: {
		// Additional model of the project repository (Section 3 notes
		// extra results for GPT3.5-turbo, SOLAR and StableBeluga2).
		Name: GPT35Turbo, APIName: "gpt-3.5-turbo-0125", Hosted: true, ContextWindow: 16385,
		WeightFidelity: 0.78, NoiseSigma: 0.65,
		PromptSensitivity: 0.9, SimpleWordingPenalty: 1.8,
		HedgeRate: 0.22, SimpleHedgeBoost: 2.5, ForceCompliance: 0.85,
		ICLGain: 0.10, ICLRelatedBonus: 0.05,
		RuleUtilization: 0.40, RuleConjunctive: 0.05,
		FreeVerbosity: 70, DemoFormatGrounding: true,
		LatBase: 0.30, LatPerIn: 0.0001, LatPerOut: 0.01,
	},
	SOLAR: {
		Name: SOLAR, APIName: "SOLAR-0-70b-16bit", Hosted: false, ContextWindow: 4096,
		WeightFidelity: 0.55, NoiseSigma: 0.9,
		PromptSensitivity: 0.8, SimpleWordingPenalty: 1.6,
		HedgeRate: 0.38, SimpleHedgeBoost: 2.0, ForceCompliance: 0.55,
		ICLGain: 0.08, ICLRelatedBonus: 0,
		RuleUtilization: 0.45, RuleConjunctive: 0.25,
		FreeVerbosity: 95, DemoFormatGrounding: false,
		LatBase: 0.7, LatPerIn: 0.0005, LatPerOut: 0.15,
	},
	StableBeluga2: {
		Name: StableBeluga2, APIName: "StableBeluga2", Hosted: false, ContextWindow: 4096,
		WeightFidelity: 0.50, NoiseSigma: 0.95,
		PromptSensitivity: 0.85, SimpleWordingPenalty: 1.7,
		HedgeRate: 0.45, SimpleHedgeBoost: 2.1, ForceCompliance: 0.50,
		ICLGain: 0.05, ICLRelatedBonus: 0,
		RuleUtilization: 0.35, RuleConjunctive: 0.3,
		FreeVerbosity: 100, DemoFormatGrounding: false,
		LatBase: 0.8, LatPerIn: 0.0005, LatPerOut: 0.17,
	},
	GPT4Turbo: {
		// GPT4-turbo is used only for the error-analysis tasks of
		// Section 7; its matching parameters mirror GPT-4.
		Name: GPT4Turbo, APIName: "gpt-4-turbo", Hosted: true, ContextWindow: 128000,
		WeightFidelity: 1.0, NoiseSigma: 0.32,
		PromptSensitivity: 0.22, SimpleWordingPenalty: 0.25,
		HedgeRate: 0.015, SimpleHedgeBoost: 1.5, ForceCompliance: 0.98,
		ICLGain: 0.05, ICLRelatedBonus: 0.30,
		RuleUtilization: 0.30, RuleConjunctive: 0,
		FreeVerbosity: 45, DemoFormatGrounding: true,
		LatBase: 0.5, LatPerIn: 0.0002, LatPerOut: 0.035,
	},
}

// StudyModels returns the six models of the main study in the paper's
// column order.
func StudyModels() []string {
	return []string{GPTMini, GPT4, GPT4o, Llama2, Llama31, Mixtral}
}

// OpenSourceModels returns the locally runnable models.
func OpenSourceModels() []string {
	return []string{Llama2, Llama31, Mixtral}
}

// HostedModels returns the OpenAI-hosted models of the cost analysis.
func HostedModels() []string {
	return []string{GPTMini, GPT4, GPT4o}
}

// FineTunableModels returns the models fine-tuned in Section 4.3.
func FineTunableModels() []string {
	return []string{Llama2, Llama31, GPTMini}
}

// ProfileByName returns the calibrated profile of a model.
func ProfileByName(name string) (Profile, bool) {
	p, ok := profiles[name]
	return p, ok
}
