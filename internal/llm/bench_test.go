package llm

import (
	"testing"

	"llm4em/internal/datasets"
	"llm4em/internal/prompt"
)

// BenchmarkChatZeroShot measures single-request matching throughput —
// the hot path of every experiment.
func BenchmarkChatZeroShot(b *testing.B) {
	m := MustNew(GPT4)
	ds := datasets.MustLoad("wdc")
	d, _ := prompt.DesignByName("general-complex-force")
	spec := prompt.Spec{Design: d, Domain: ds.Schema.Domain}
	prompts := make([]string, 64)
	for i := range prompts {
		prompts[i] = spec.Build(ds.Test[i])
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := m.Chat([]Message{{Role: User, Content: prompts[i%len(prompts)]}}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkChatFewShot measures the 10-shot path, including demo
// calibration.
func BenchmarkChatFewShot(b *testing.B) {
	m := MustNew(GPT4)
	ds := datasets.MustLoad("wdc")
	d, _ := prompt.DesignByName("general-complex-force")
	spec := prompt.Spec{Design: d, Domain: ds.Schema.Domain, Demonstrations: ds.Train[:10]}
	prompts := make([]string, 32)
	for i := range prompts {
		prompts[i] = spec.Build(ds.Test[i])
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := m.Chat([]Message{{Role: User, Content: prompts[i%len(prompts)]}}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkExplainTurn measures the structured-explanation path.
func BenchmarkExplainTurn(b *testing.B) {
	m := MustNew(GPT4)
	ds := datasets.MustLoad("wa")
	d, _ := prompt.DesignByName("domain-complex-force")
	spec := prompt.Spec{Design: d, Domain: ds.Schema.Domain}
	match := spec.Build(ds.Test[0])
	conv := []Message{
		{Role: User, Content: match},
		{Role: Assistant, Content: "Yes"},
		{Role: User, Content: prompt.ExplanationRequest},
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := m.Chat(conv); err != nil {
			b.Fatal(err)
		}
	}
}
