package llm

import (
	"fmt"
	"strconv"
	"strings"

	"llm4em/internal/detrand"
	"llm4em/internal/entity"
)

// errorCase is one parsed wrong decision with its structured
// explanation, as rendered into the Section 7 prompts.
type errorCase struct {
	goldMatch  bool
	predMatch  bool
	rawA, rawB string
	expl       []explLine
}

// parseErrorCases reads the "Case N:" blocks of an error-analysis
// prompt.
func parseErrorCases(content string) []errorCase {
	var cases []errorCase
	var cur *errorCase
	inExpl := false
	for _, line := range strings.Split(content, "\n") {
		trimmed := strings.TrimSpace(line)
		switch {
		case strings.HasPrefix(trimmed, "Case ") && strings.HasSuffix(trimmed, ":"):
			if cur != nil {
				cases = append(cases, *cur)
			}
			cur = &errorCase{}
			inExpl = false
		case cur == nil:
			continue
		case strings.HasPrefix(trimmed, "Gold:"):
			cur.goldMatch = strings.Contains(trimmed, "Gold: match")
			cur.predMatch = strings.Contains(trimmed, "Predicted: match")
		case strings.HasPrefix(trimmed, "Entity 1: '"):
			cur.rawA = strings.TrimSuffix(strings.TrimPrefix(trimmed, "Entity 1: '"), "'")
		case strings.HasPrefix(trimmed, "Entity 2: '"):
			cur.rawB = strings.TrimSuffix(strings.TrimPrefix(trimmed, "Entity 2: '"), "'")
		case trimmed == "Explanation:":
			inExpl = true
		case inExpl && strings.Count(trimmed, "|") == 2:
			parts := strings.Split(trimmed, "|")
			imp, err1 := strconv.ParseFloat(strings.TrimSpace(parts[1]), 64)
			sim, err2 := strconv.ParseFloat(strings.TrimSpace(parts[2]), 64)
			if err1 == nil && err2 == nil {
				cur.expl = append(cur.expl, explLine{
					attribute:  strings.TrimSpace(parts[0]),
					importance: imp,
					similarity: sim,
				})
			}
		}
	}
	if cur != nil {
		cases = append(cases, *cur)
	}
	return cases
}

// classTemplate couples an error-class name and description with the
// explanation signature that triggers it.
type classTemplate struct {
	name, description string
	// attrs are the explanation attributes whose misleading
	// importance (positive for false positives, negative for false
	// negatives) indicates the class.
	attrs []string
	// partial marks the class triggered by strongly asymmetric
	// information between the two descriptions.
	partial bool
}

// applies evaluates the template's signature on a case. falsePositive
// selects the direction of "misleading" importance.
func (ct classTemplate) applies(c errorCase, falsePositive bool) bool {
	if ct.partial {
		la := len(strings.Fields(c.rawA))
		lb := len(strings.Fields(c.rawB))
		d := la - lb
		if d < 0 {
			d = -d
		}
		mn := la
		if lb < mn {
			mn = lb
		}
		return mn > 0 && float64(d)/float64(mn) > 0.4
	}
	for _, l := range c.expl {
		for _, a := range ct.attrs {
			if !strings.Contains(l.attribute, a) {
				continue
			}
			if falsePositive && l.importance > 0.15 {
				return true
			}
			if !falsePositive && l.importance < -0.15 {
				return true
			}
		}
	}
	return false
}

// Error-class template banks per domain and error direction,
// mirroring the classes GPT4-turbo generated in Tables 11 and 12.
var (
	productFNClasses = []classTemplate{
		{"Model Number Mismatch", "The system fails when there are slight differences in model numbers or product codes, even when other attributes match closely.", []string{"model"}, false},
		{"Attribute Missing or Incomplete", "When one product listing includes an attribute that the other does not, the system may fail to recognize them as a match.", nil, true},
		{"Minor Differences in Descriptions", "Small differences in product descriptions or titles can lead to false negatives, such as slightly different wording or the inclusion of certain features.", []string{"title"}, false},
		{"Price Differences", "Even when products are very similar, significant price differences can lead to false negatives, as the system might weigh price too heavily.", []string{"price"}, false},
		{"Variant or Accessory Differences", "Differences in product variants or accessories included can cause false negatives, especially if the system does not account for these variations being minor.", []string{"variant", "color", "capacity", "size", "edition", "version", "license"}, false},
	}
	productFPClasses = []classTemplate{
		{"Overemphasis on Matching Attributes", "The system might give too much weight to matching attributes like brand or model number, leading to false positives even when other important attributes differ.", []string{"brand", "model"}, false},
		{"Ignoring Minor but Significant Differences", "The system fails to recognize important differences in product types, models, or features that are significant to the product identity.", []string{"title", "model"}, false},
		{"Misinterpretation of Accessory or Variant Information", "Including or excluding accessories or variants in the product description can lead to false positives if the system does not correctly interpret these differences.", []string{"variant", "color", "capacity", "size", "edition", "version", "license"}, false},
		{"Price Discrepancy Overlooked", "The system might overlook significant price differences, assuming products are the same when they are not, particularly if other attributes match closely.", []string{"price"}, false},
		{"Condition or Quality Differences", "Differences in the condition or quality of products (e.g., original vs. compatible, new vs. refurbished) are not adequately accounted for, leading to false positives.", []string{"edition"}, false},
	}
	pubFNClasses = []classTemplate{
		{"Year Discrepancy", "Differences in publication years lead to false negatives, even when other attributes match closely.", []string{"year"}, false},
		{"Venue Variability", "Variations in how the publication venue is listed (e.g., abbreviations, full names) cause mismatches.", []string{"conference", "journal", "venue"}, false},
		{"Author Name Variations", "Differences in author names, including initials, order of names, or inclusion of middle names, lead to false negatives.", []string{"authors"}, false},
		{"Title Variations", "Minor differences in titles, such as missing words or different word order, can cause false negatives.", []string{"title"}, false},
		{"Author List Incompleteness", "Differences in the completeness of the author list, where one entry has more authors listed than the other.", nil, true},
	}
	pubFPClasses = []classTemplate{
		{"Overemphasis on Title Similarity", "High similarity in titles leading to false positives, despite differences in other critical attributes.", []string{"title"}, false},
		{"Author Name Similarity Overreach", "False positives due to high similarity in author names, ignoring discrepancies in other attributes.", []string{"authors"}, false},
		{"Year and Venue Ignored", "Cases where the year and venue match or are close, but other discrepancies are overlooked.", []string{"year", "conference", "journal", "venue"}, false},
		{"Partial Information Match", "Matching based on partial information, such as incomplete author lists or titles, leading to false positives.", nil, true},
		{"Misinterpretation of Publication Types", "Confusing different types of publications (e.g., conference vs. journal) when other attributes match.", []string{"conference", "journal"}, false},
	}
)

func classBank(domain entity.Domain, falsePositive bool) []classTemplate {
	switch {
	case domain == entity.Publication && falsePositive:
		return pubFPClasses
	case domain == entity.Publication:
		return pubFNClasses
	case falsePositive:
		return productFPClasses
	default:
		return productFNClasses
	}
}

// answerErrorClasses handles the Section 7.1 prompt: it reads the
// wrong decisions and their explanations, ranks the domain's error
// patterns by how many cases exhibit them, and presents them as five
// named classes with one-sentence descriptions.
func (m *Model) answerErrorClasses(content string) string {
	falsePositive := strings.Contains(content, "false positive")
	domain := entity.Product
	if strings.Contains(content, "publications") {
		domain = entity.Publication
	}
	cases := parseErrorCases(content)
	bank := classBank(domain, falsePositive)

	// Rank templates by incidence over the supplied cases (stable
	// sort keeps the bank order on ties).
	type ranked struct {
		ct    classTemplate
		count int
	}
	rs := make([]ranked, len(bank))
	for i, ct := range bank {
		rs[i] = ranked{ct, 0}
		for _, c := range cases {
			if ct.applies(c, falsePositive) {
				rs[i].count++
			}
		}
	}
	for i := 1; i < len(rs); i++ {
		r := rs[i]
		j := i - 1
		for j >= 0 && rs[j].count < r.count {
			rs[j+1] = rs[j]
			j--
		}
		rs[j+1] = r
	}

	kind := "false negative"
	if falsePositive {
		kind = "false positive"
	}
	var b strings.Builder
	fmt.Fprintf(&b, "Based on the %d %s cases, I identify the following error classes:\n", len(cases), kind)
	for i, r := range rs {
		fmt.Fprintf(&b, "%d. %s: %s\n", i+1, r.ct.name, r.ct.description)
	}
	return strings.TrimRight(b.String(), "\n")
}

// answerErrorAssign handles the Section 7.2 prompt: it decides which
// of the listed error classes apply to the single rendered case and
// reports them with confidence values. The model is deliberately
// fallible: assignments carry deterministic noise, and the broad
// "Overemphasis on Matching Attributes" class is applied too
// strictly, reproducing the low agreement on that class in Table 13.
func (m *Model) answerErrorAssign(content string) string {
	classes := parseNumberedClasses(content)
	cases := parseErrorCases(content)
	if len(cases) == 0 || len(classes) == 0 {
		return "None of the error classes apply."
	}
	c := cases[len(cases)-1]
	falsePositive := c.predMatch && !c.goldMatch

	var picks []string
	for i, cl := range classes {
		ct := templateForClassName(cl)
		applies := ct.applies(c, falsePositive)
		if strings.Contains(cl, "Overemphasis on Matching Attributes") {
			// Strict misreading: require a very strong matching signal
			// before assigning this broad class.
			applies = applies && strongestImportance(c) > 0.85
		}
		// Deterministic fallibility.
		flip := detrand.Unit(m.profile.Name, "assign-flip", cl, c.rawA, c.rawB)
		if flip < 0.08 {
			applies = !applies
		}
		if applies {
			conf := 0.6 + 0.39*detrand.Unit(m.profile.Name, "assign-conf", cl, c.rawA, c.rawB)
			picks = append(picks, fmt.Sprintf("%d (confidence %.2f)", i+1, conf))
		}
	}
	if len(picks) == 0 {
		return "None of the error classes apply."
	}
	return "Applicable error classes: " + strings.Join(picks, ", ")
}

// parseNumberedClasses extracts the "N. Name: description" lines of
// an assignment prompt.
func parseNumberedClasses(content string) []string {
	var out []string
	for _, line := range strings.Split(content, "\n") {
		trimmed := strings.TrimSpace(line)
		if isNumberedLine(trimmed) && strings.Contains(trimmed, ":") {
			out = append(out, stripNumber(trimmed))
		}
		if strings.HasPrefix(trimmed, "Decide for the following") {
			break
		}
	}
	return out
}

// templateForClassName reconstructs a trigger signature from a class
// name and description by keyword matching — the model re-derives
// what the class means from its text.
func templateForClassName(cl string) classTemplate {
	lower := strings.ToLower(cl)
	var ct classTemplate
	keywordAttrs := []struct {
		kw    string
		attrs []string
	}{
		{"year", []string{"year"}},
		{"venue", []string{"conference", "journal", "venue"}},
		{"publication type", []string{"conference", "journal"}},
		{"author", []string{"authors"}},
		{"title", []string{"title"}},
		{"description", []string{"title"}},
		{"model", []string{"model"}},
		{"price", []string{"price"}},
		{"variant", []string{"variant", "color", "capacity", "size", "edition", "version", "license"}},
		{"accessory", []string{"variant", "color", "capacity", "size", "edition", "version", "license"}},
		{"condition", []string{"edition"}},
		{"quality", []string{"edition"}},
		{"brand", []string{"brand"}},
		{"matching attributes", []string{"brand", "model"}},
		{"significant differences", []string{"title", "model"}},
	}
	for _, ka := range keywordAttrs {
		if strings.Contains(lower, ka.kw) {
			ct.attrs = append(ct.attrs, ka.attrs...)
		}
	}
	if strings.Contains(lower, "incomplete") || strings.Contains(lower, "partial") || strings.Contains(lower, "missing") {
		ct.partial = true
	}
	return ct
}

func strongestImportance(c errorCase) float64 {
	best := 0.0
	for _, l := range c.expl {
		if l.importance > best {
			best = l.importance
		}
	}
	return best
}
