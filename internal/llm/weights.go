package llm

import "llm4em/internal/features"

// BaseWeights exposes the model's innate matching weighting — the
// initialization point for fine-tuning (Section 4.3).
func (m *Model) BaseWeights() features.Weights {
	return m.baseWeights()
}
