package llm

import (
	"fmt"
	"strings"

	"llm4em/internal/detrand"
	"llm4em/internal/features"
)

// answerBatch handles batched matching prompts: several pairs decided
// in one request. Batching trades cost for accuracy — with growing
// batch position the model's attention over the packed context
// dilutes, which is simulated as position-dependent extra decision
// noise.
func (m *Model) answerBatch(content string) string {
	pairs := parseBatchPairs(content)
	if len(pairs) == 0 {
		return "No pairs found."
	}
	var b strings.Builder
	for i, p := range pairs {
		ea, eb := extractCached(p.a), extractCached(p.b)
		v, pres := features.PairFeatures(ea, eb)
		w := m.baseWeights()
		score := w.Score(v, pres)
		noise := m.profile.NoiseSigma * detrand.Gauss(m.profile.Name, "batch-noise", p.a, p.b)
		// Attention dilution: later batch positions and larger batches
		// degrade the decision.
		dilution := 1 + 0.5*float64(i)/float64(maxInt(len(pairs)-1, 1)) + 0.04*float64(len(pairs))
		logit := score + noise*dilution
		if logit > 0 {
			fmt.Fprintf(&b, "%d. Yes\n", i+1)
		} else {
			fmt.Fprintf(&b, "%d. No\n", i+1)
		}
	}
	return strings.TrimRight(b.String(), "\n")
}

type batchPair struct {
	a, b string
}

// parseBatchPairs reads the "Pair N:" blocks of a batched prompt.
func parseBatchPairs(content string) []batchPair {
	var out []batchPair
	var cur *batchPair
	for _, line := range strings.Split(content, "\n") {
		trimmed := strings.TrimSpace(line)
		switch {
		case strings.HasPrefix(trimmed, "Pair ") && strings.HasSuffix(trimmed, ":"):
			if cur != nil && cur.a != "" && cur.b != "" {
				out = append(out, *cur)
			}
			cur = &batchPair{}
		case cur == nil:
			continue
		case strings.HasPrefix(trimmed, "Entity 1: '"):
			cur.a = strings.TrimSuffix(strings.TrimPrefix(trimmed, "Entity 1: '"), "'")
		case strings.HasPrefix(trimmed, "Entity 2: '"):
			cur.b = strings.TrimSuffix(strings.TrimPrefix(trimmed, "Entity 2: '"), "'")
		}
	}
	if cur != nil && cur.a != "" && cur.b != "" {
		out = append(out, *cur)
	}
	return out
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}
