package llm

import "strings"

// PromptKind classifies what a prompt asks the model to do.
type PromptKind int

// The prompt kinds the simulated models understand.
const (
	KindMatch PromptKind = iota
	KindExplain
	KindErrorClasses
	KindErrorAssign
	KindRuleLearn
	KindBatchMatch
	KindCompare
	KindSelect
	KindReason
	KindUnknown
)

// ParsedPrompt is the model's structured reading of a matching
// prompt: the task description, output-format instruction, optional
// rules and demonstrations, and the serialized query pair.
type ParsedPrompt struct {
	// Task is the matching question (first line of the prompt).
	Task string
	// Force reports whether the prompt restricts the answer format to
	// Yes/No.
	Force bool
	// SimpleWording reports whether the task uses the bare "match?"
	// phrasing rather than the real-world-entity formulation.
	SimpleWording bool
	// Rules holds the numbered matching rules, if any.
	Rules []string
	// Demos holds the in-context demonstrations in prompt order.
	Demos []Demo
	// QueryA and QueryB are the serialized descriptions to match.
	QueryA, QueryB string
}

// Demo is one parsed in-context demonstration.
type Demo struct {
	A, B  string
	Match bool
}

// classifyPrompt determines what the user message asks for.
func classifyPrompt(content string) PromptKind {
	switch {
	case strings.HasPrefix(content, "Explain your decision"):
		return KindExplain
	case strings.HasPrefix(content, "You are analyzing the errors"):
		return KindErrorClasses
	case strings.HasPrefix(content, "Given the following error classes"):
		return KindErrorAssign
	case strings.HasPrefix(content, "Derive a list of matching rules"):
		return KindRuleLearn
	case strings.HasPrefix(content, "For each of the following pairs"):
		return KindBatchMatch
	case strings.HasPrefix(content, "Compare each candidate"):
		return KindCompare
	case strings.HasPrefix(content, "Select the candidate"):
		return KindSelect
	case strings.HasPrefix(content, "Decide step by step"):
		return KindReason
	default:
		return KindMatch
	}
}

// parseMatchPrompt reads a matching prompt. The models understand the
// prompt layout of this study (Figures 1-3): a task description,
// optionally followed by rules, demonstrations and the query pair
// introduced by "<Label>: '<serialization>'" lines.
func parseMatchPrompt(content string) ParsedPrompt {
	var pp ParsedPrompt
	lines := strings.Split(content, "\n")

	type entry struct{ text string }
	var pending []entry // un-consumed entity lines
	inRules := false

	flushDemo := func(match bool) {
		if len(pending) >= 2 {
			pp.Demos = append(pp.Demos, Demo{
				A:     pending[len(pending)-2].text,
				B:     pending[len(pending)-1].text,
				Match: match,
			})
		}
		pending = pending[:0]
	}

	for _, line := range lines {
		trimmed := strings.TrimSpace(line)
		if trimmed == "" {
			continue
		}
		switch {
		case pp.Task == "":
			pp.Task = trimmed
			pp.Force = strings.Contains(trimmed, "Answer with 'Yes'")
			lower := strings.ToLower(trimmed)
			pp.SimpleWording = strings.Contains(lower, "match?") && !strings.Contains(lower, "real-world")
		case strings.HasPrefix(trimmed, "Apply the following rules"):
			inRules = true
		case inRules && isNumberedLine(trimmed):
			pp.Rules = append(pp.Rules, stripNumber(trimmed))
		case strings.HasPrefix(trimmed, "Answer: Yes"):
			flushDemo(true)
			inRules = false
		case strings.HasPrefix(trimmed, "Answer: No"):
			flushDemo(false)
			inRules = false
		case trimmed == "Answer:":
			// trailing answer slot of a few-shot prompt
		default:
			if text, ok := entityLine(trimmed); ok {
				pending = append(pending, entry{text})
				inRules = false
			}
		}
	}
	if len(pending) >= 2 {
		pp.QueryA = pending[len(pending)-2].text
		pp.QueryB = pending[len(pending)-1].text
	} else if len(pending) == 1 {
		pp.QueryA = pending[0].text
	}
	return pp
}

// entityLine recognizes "<Label>: '<serialization>'" lines and
// returns the serialization.
func entityLine(line string) (string, bool) {
	i := strings.Index(line, ": '")
	if i < 0 || !strings.HasSuffix(line, "'") {
		return "", false
	}
	label := line[:i]
	// Labels are short noun phrases ("Entity 1", "Product A", ...).
	if len(label) > 20 || strings.ContainsAny(label, ".!?") {
		return "", false
	}
	return line[i+3 : len(line)-1], true
}

func isNumberedLine(line string) bool {
	i := 0
	for i < len(line) && line[i] >= '0' && line[i] <= '9' {
		i++
	}
	return i > 0 && i < len(line) && line[i] == '.'
}

func stripNumber(line string) string {
	i := strings.Index(line, ".")
	return strings.TrimSpace(line[i+1:])
}
