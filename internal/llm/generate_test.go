package llm

import (
	"strings"
	"testing"
)

func matchPP(a, b string) ParsedPrompt {
	return ParsedPrompt{
		Task:   "Do the two entity descriptions refer to the same real-world entity?",
		QueryA: a,
		QueryB: b,
	}
}

func TestVerboseAnswerStatesDecisionAndEvidence(t *testing.T) {
	m := MustNew(GPT4)
	pp := matchPP("Sony Cybershot DSC-120B camera black 348.00", "sony dsc120b camera black 350.00")
	d := m.decide(pp)
	ans := m.verboseAnswer(pp, d)
	if d.yes && !strings.HasPrefix(ans, "Yes,") {
		t.Errorf("positive verbose answer should start with Yes: %q", ans)
	}
	lower := strings.ToLower(ans)
	if !strings.Contains(lower, "sony") && !strings.Contains(lower, "model") {
		t.Errorf("verbose answer should cite evidence: %q", ans)
	}
}

func TestVerboseAnswerNegative(t *testing.T) {
	m := MustNew(GPT4)
	pp := matchPP("Sony Cybershot DSC-120B camera 348.00", "DeWalt XR DCD-771 cordless drill 99.00")
	d := m.decide(pp)
	if d.yes {
		t.Fatal("unrelated pair decided as match")
	}
	ans := m.verboseAnswer(pp, d)
	if !strings.HasPrefix(ans, "No,") {
		t.Errorf("negative verbose answer should start with No: %q", ans)
	}
}

func TestVerbosityScalesWithProfile(t *testing.T) {
	pp := matchPP("Sony DSC-120B camera 348.00", "sony dsc120b camera 350.00")
	short := MustNew(GPT4)  // FreeVerbosity 40
	long := MustNew(Llama2) // FreeVerbosity 105
	sAns := short.verboseAnswer(pp, short.decide(pp))
	lAns := long.verboseAnswer(pp, long.decide(pp))
	if len(lAns) <= len(sAns) {
		t.Errorf("Llama2 answer (%d chars) should be longer than GPT-4's (%d chars)", len(lAns), len(sAns))
	}
}

func TestHedgeProbabilityShapes(t *testing.T) {
	m := MustNew(GPT4o)
	complexPP := ParsedPrompt{Task: "Do the two entity descriptions refer to the same real-world entity?"}
	simplePP := ParsedPrompt{Task: "Do the two product descriptions match?", SimpleWording: true}
	pc := m.hedgeProbability(complexPP)
	ps := m.hedgeProbability(simplePP)
	if pc < 0 || pc > 0.97 || ps < 0 || ps > 0.97 {
		t.Errorf("hedge probabilities out of range: %v / %v", pc, ps)
	}
	// GPT-4 hedges far less than GPT-4o on the same prompt.
	g4 := MustNew(GPT4).hedgeProbability(complexPP)
	if g4 >= pc {
		t.Errorf("GPT-4 hedge %v should be below GPT-4o hedge %v", g4, pc)
	}
}

func TestExplanationLinesBounded(t *testing.T) {
	m := MustNew(GPT4)
	pp := matchPP("Sony Cybershot DSC-120B camera black 348.00", "sony dsc120b camera black 350.00")
	d := m.decide(pp)
	for _, l := range m.explanationLines(d) {
		if l.importance < -1 || l.importance > 1 {
			t.Errorf("importance %v out of range for %s", l.importance, l.attribute)
		}
		if l.similarity < 0 || l.similarity > 1 {
			t.Errorf("similarity %v out of range for %s", l.similarity, l.attribute)
		}
		if l.attribute == "" {
			t.Error("empty attribute name")
		}
	}
}

func TestAttributeNameRefinement(t *testing.T) {
	m := MustNew(GPT4)
	// Color variants -> "color".
	pp := matchPP("Sony DSC-120B camera black 348.00", "sony dsc120b camera black 350.00")
	d := m.decide(pp)
	found := false
	for _, l := range m.explanationLines(d) {
		if l.attribute == "color" {
			found = true
		}
	}
	if !found {
		t.Error("color attribute not named in explanation")
	}
	// Conference venues -> "conference".
	pp2 := matchPP(
		"Michael Stonebraker adaptive indexing SIGMOD Conference 1997",
		"M. Stonebraker adaptive indexing sigmod 1997",
	)
	d2 := m.decide(pp2)
	foundConf := false
	for _, l := range m.explanationLines(d2) {
		if l.attribute == "conference" {
			foundConf = true
		}
	}
	if !foundConf {
		t.Error("conference attribute not named in publication explanation")
	}
}

func TestBatchDilutionDegradesLatePositions(t *testing.T) {
	// Same pair decided at batch position 0 vs position 19 must use
	// larger noise at the later position; verify via the answer flip
	// rate over many borderline pairs is not required — just check the
	// reply format and determinism here.
	m := MustNew(GPTMini)
	content := "For each of the following pairs, decide whether the two entity descriptions refer to the same real-world entity. Answer with one line per pair in the format '<pair number>. Yes' or '<pair number>. No'.\n" +
		"Pair 1:\nEntity 1: 'Sony DSC-120B camera 348.00'\nEntity 2: 'sony dsc120b camera 350.00'\n" +
		"Pair 2:\nEntity 1: 'alpha'\nEntity 2: 'beta'\n"
	a := m.answerBatch(content)
	b := m.answerBatch(content)
	if a != b {
		t.Error("batch answering not deterministic")
	}
	if !strings.Contains(a, "1. ") || !strings.Contains(a, "2. ") {
		t.Errorf("batch reply malformed:\n%s", a)
	}
}

func TestEvidenceSentencesCapped(t *testing.T) {
	m := MustNew(GPT4)
	pp := matchPP(
		"Sony Cybershot DSC-120B digital camera black 8gb 348.00",
		"sony dsc120b camera black 8gb 350.00",
	)
	d := m.decide(pp)
	if got := m.evidenceSentences(d); len(got) > 4 {
		t.Errorf("evidence sentences should be capped at 4, got %d", len(got))
	}
}
