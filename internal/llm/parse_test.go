package llm

import (
	"testing"

	"llm4em/internal/prompt"
)

func TestClassifyPromptKinds(t *testing.T) {
	tests := []struct {
		content string
		want    PromptKind
	}{
		{"Do the two entity descriptions match?\nEntity 1: 'a'\nEntity 2: 'b'", KindMatch},
		{prompt.ExplanationRequest, KindExplain},
		{"You are analyzing the errors of an entity matching system for publications.", KindErrorClasses},
		{"Given the following error classes for an entity matching system:", KindErrorAssign},
		{"Derive a list of matching rules from the following examples", KindRuleLearn},
		{"For each of the following pairs, decide whether ...", KindBatchMatch},
	}
	for _, tt := range tests {
		if got := classifyPrompt(tt.content); got != tt.want {
			t.Errorf("classifyPrompt(%.40q) = %v, want %v", tt.content, got, tt.want)
		}
	}
}

func TestEntityLine(t *testing.T) {
	tests := []struct {
		line string
		text string
		ok   bool
	}{
		{"Entity 1: 'Sony DSC camera'", "Sony DSC camera", true},
		{"Product A: 'x'", "x", true},
		{"Publication 2: 'a b c'", "a b c", true},
		{"Answer: 'Yes'", "Yes", true}, // short label, tolerated by the parser
		{"This is just a sentence mentioning: 'something' inline?", "", false},
		{"Entity 1: missing quotes", "", false},
	}
	for _, tt := range tests {
		text, ok := entityLine(tt.line)
		if ok != tt.ok || (ok && text != tt.text) {
			t.Errorf("entityLine(%q) = %q, %v", tt.line, text, ok)
		}
	}
}

func TestParseMatchPromptQueryOnly(t *testing.T) {
	pp := parseMatchPrompt("Do the two entity descriptions match?\nEntity 1: 'alpha one'\nEntity 2: 'beta two'")
	if pp.QueryA != "alpha one" || pp.QueryB != "beta two" {
		t.Errorf("query = %q / %q", pp.QueryA, pp.QueryB)
	}
	if len(pp.Demos) != 0 || len(pp.Rules) != 0 {
		t.Errorf("unexpected demos/rules: %+v", pp)
	}
}

func TestParseMatchPromptMultipleDemos(t *testing.T) {
	content := "Do the two entity descriptions refer to the same real-world entity? Answer with 'Yes' if they do and 'No' if they do not.\n" +
		"Entity 1: 'd1a'\nEntity 2: 'd1b'\nAnswer: Yes\n" +
		"Entity 1: 'd2a'\nEntity 2: 'd2b'\nAnswer: No\n" +
		"Entity 1: 'd3a'\nEntity 2: 'd3b'\nAnswer: Yes\n" +
		"Entity 1: 'qa'\nEntity 2: 'qb'\nAnswer:"
	pp := parseMatchPrompt(content)
	if len(pp.Demos) != 3 {
		t.Fatalf("parsed %d demos, want 3", len(pp.Demos))
	}
	if !pp.Demos[0].Match || pp.Demos[1].Match || !pp.Demos[2].Match {
		t.Errorf("demo labels wrong: %+v", pp.Demos)
	}
	if pp.QueryA != "qa" || pp.QueryB != "qb" {
		t.Errorf("query = %q / %q", pp.QueryA, pp.QueryB)
	}
	if !pp.Force {
		t.Error("force not detected")
	}
}

func TestParseMatchPromptSingleEntity(t *testing.T) {
	pp := parseMatchPrompt("Do the two entity descriptions match?\nEntity 1: 'only one'")
	if pp.QueryA != "only one" || pp.QueryB != "" {
		t.Errorf("partial query = %q / %q", pp.QueryA, pp.QueryB)
	}
}

func TestParseBatchPairs(t *testing.T) {
	content := "For each of the following pairs, decide ...\n" +
		"Pair 1:\nEntity 1: 'a1'\nEntity 2: 'b1'\n" +
		"Pair 2:\nEntity 1: 'a2'\nEntity 2: 'b2'\n"
	pairs := parseBatchPairs(content)
	if len(pairs) != 2 {
		t.Fatalf("parsed %d pairs, want 2", len(pairs))
	}
	if pairs[1].a != "a2" || pairs[1].b != "b2" {
		t.Errorf("pairs[1] = %+v", pairs[1])
	}
	if got := parseBatchPairs("Pair 1:\nEntity 1: 'only'"); len(got) != 0 {
		t.Errorf("incomplete pair should be dropped, got %v", got)
	}
}

func TestNumberedLineHelpers(t *testing.T) {
	if !isNumberedLine("3. text") || isNumberedLine("text") || isNumberedLine(".x") || isNumberedLine("12") {
		t.Error("isNumberedLine wrong")
	}
	if stripNumber("12. hello world") != "hello world" {
		t.Errorf("stripNumber = %q", stripNumber("12. hello world"))
	}
}
