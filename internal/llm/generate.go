package llm

import (
	"fmt"
	"strings"

	"llm4em/internal/detrand"
	"llm4em/internal/entity"
	"llm4em/internal/features"
	"llm4em/internal/tokenize"
	"llm4em/internal/vocab"
)

// respond generates the model's answer text for a matching decision.
// Force-format prompts (and, for models with demo format grounding,
// few-shot prompts, and all fine-tuned variants) yield short Yes/No
// answers; free-format prompts yield verbose text that may hedge and
// thereby fail the downstream "yes" parse.
func (m *Model) respond(pp ParsedPrompt, d decision) string {
	short := pp.Force || m.adapter != nil ||
		(len(pp.Demos) > 0 && m.profile.DemoFormatGrounding)
	if short {
		comply := m.profile.ForceCompliance
		if m.adapter != nil {
			comply = 1
		} else if len(pp.Demos) > 0 && m.profile.DemoFormatGrounding {
			if comply < 0.97 {
				comply = 0.97
			}
		}
		if detrand.Unit(m.profile.Name, "comply", pp.Task, pp.QueryA, pp.QueryB) < comply {
			if d.yes {
				return "Yes"
			}
			return "No"
		}
		return m.verboseAnswer(pp, d)
	}

	// Free format: the model may produce a non-committal answer whose
	// text never contains the word "yes" — the dominant failure mode
	// behind the free-format F1 collapses of Table 2.
	hedgeP := m.hedgeProbability(pp)
	if detrand.Unit(m.profile.Name, "hedge", pp.Task, pp.QueryA, pp.QueryB) < hedgeP {
		return m.hedgingAnswer(pp, d)
	}
	return m.verboseAnswer(pp, d)
}

// hedgeProbability combines the model's base hedge rate with a
// heavy-tailed per-prompt modifier: some (model, wording)
// combinations collapse almost completely while others are unaffected,
// reproducing the scattered free-format failures of Table 2.
func (m *Model) hedgeProbability(pp ParsedPrompt) float64 {
	h := detrand.Unit(m.profile.Name, "hedge-mod", pp.Task)
	modifier := 0.15 + 2.6*h*h
	p := m.profile.HedgeRate * modifier
	if pp.SimpleWording {
		p *= m.profile.SimpleHedgeBoost
	}
	return clamp(p, 0, 0.97)
}

// hedgingAnswer produces verbose non-committal text. It deliberately
// avoids the word "yes" so that the paper's answer parsing counts it
// as a non-match decision.
func (m *Model) hedgingAnswer(pp ParsedPrompt, d decision) string {
	noun := nounFor(d.domain())
	variants := []string{
		"Based on the provided information, it is difficult to determine with certainty whether the two %s refer to the same real-world entity. They share several attributes, but the available details are not conclusive. Additional information such as identifiers or specifications would be required for a definitive decision.",
		"The two %s appear related, but I cannot say definitively whether they denote the same entity. Some attribute values correspond while others differ or are missing, so the evidence remains ambiguous without further context.",
		"It is not possible to give a definitive answer from the given descriptions alone. The two %s overlap in part of their attributes; however, the differences that remain could indicate either distinct entities or merely different listings of one entity.",
	}
	i := int(detrand.Hash64(m.profile.Name, "hedge-variant", pp.QueryA, pp.QueryB) % uint64(len(variants)))
	return fmt.Sprintf(variants[i], noun)
}

// verboseAnswer produces a free-form answer that states the decision
// and cites the extracted evidence, padded to the model's typical
// verbosity.
func (m *Model) verboseAnswer(pp ParsedPrompt, d decision) string {
	noun := nounFor(d.domain())
	var b strings.Builder
	if d.yes {
		fmt.Fprintf(&b, "Yes, the two %s refer to the same real-world entity.", noun)
	} else {
		fmt.Fprintf(&b, "No, the two %s do not refer to the same real-world entity.", noun)
	}
	for _, s := range m.evidenceSentences(d) {
		b.WriteByte(' ')
		b.WriteString(s)
	}

	// Pad toward the model's typical free-format verbosity with
	// generic analysis sentences.
	filler := []string{
		"Taking all available attributes into account, this is the most plausible interpretation of the two descriptions.",
		"The remaining attributes do not provide decisive evidence in either direction.",
		"Differences in formatting and word order were disregarded, as they are common between listings from different sources.",
		"Overall, the combination of the compared attributes supports this conclusion.",
		"Note that missing attribute values were not counted as contradictions, only as absent evidence.",
	}
	target := m.profile.FreeVerbosity
	jitter := int(detrand.Unit(m.profile.Name, "verbosity", pp.QueryA, pp.QueryB) * 0.4 * float64(target))
	target = target - target/5 + jitter
	for i := 0; tokenize.EstimateTokens(b.String()) < target && i < len(filler); i++ {
		b.WriteByte(' ')
		b.WriteString(filler[i])
	}
	return b.String()
}

// evidenceSentences renders the strongest feature evidence of a
// decision as natural-language sentences.
func (m *Model) evidenceSentences(d decision) []string {
	var out []string
	add := func(s string) { out = append(out, s) }
	v, p := d.vector, d.present

	if p[features.BrandMatch] {
		if v[features.BrandMatch] >= 0.99 {
			add(fmt.Sprintf("Both descriptions mention the brand %s.", strings.ToUpper(d.extA.Brand[:1])+d.extA.Brand[1:]))
		} else {
			add(fmt.Sprintf("The brands differ (%s vs. %s).", d.extA.Brand, d.extB.Brand))
		}
	}
	if p[features.ModelMatch] {
		switch {
		case v[features.ModelMatch] >= 0.99:
			add(fmt.Sprintf("The model number %s appears in both descriptions.", strings.ToUpper(d.extA.Models[0])))
		case v[features.ModelMatch] >= 0.4:
			add("The model numbers are similar but not identical, which suggests related but distinct models.")
		default:
			add("The model numbers do not correspond.")
		}
	}
	if p[features.VersionMatch] {
		if v[features.VersionMatch] >= 0.85 {
			add("The version information is consistent between the two offers.")
		} else {
			add("The offers state different versions of the product.")
		}
	}
	if p[features.PriceMatch] {
		if v[features.PriceMatch] >= 0.85 {
			add("The listed prices are close.")
		} else {
			add("The prices differ considerably, though prices alone are weak evidence.")
		}
	}
	if p[features.AuthorMatch] {
		if v[features.AuthorMatch] >= 0.85 {
			add("The author lists correspond.")
		} else {
			add("The author lists differ in part.")
		}
	}
	if p[features.VenueMatch] {
		if v[features.VenueMatch] >= 0.99 {
			add(fmt.Sprintf("Both records were published at %s.", d.extA.Venue))
		} else {
			add(fmt.Sprintf("The publication venues differ (%s vs. %s).", d.extA.Venue, d.extB.Venue))
		}
	}
	if p[features.YearMatch] && v[features.YearMatch] < 0.99 {
		add("The publication years do not agree exactly.")
	}
	if p[features.TitleGenJaccard] {
		switch {
		case v[features.TitleGenJaccard] >= 0.8:
			add("The titles are highly similar.")
		case v[features.TitleGenJaccard] >= 0.5:
			add("The titles overlap partially.")
		default:
			add("The titles share little content.")
		}
	}
	if len(out) > 4 {
		out = out[:4]
	}
	return out
}

func nounFor(d entity.Domain) string {
	switch d {
	case entity.Product:
		return "product descriptions"
	case entity.Publication:
		return "publications"
	default:
		return "entity descriptions"
	}
}

// explain answers the second-turn structured-explanation request of
// Section 6.1. The model re-derives its decision for the pair of the
// first user turn and renders one line per attribute it used:
// "attribute | importance | similarity".
func (m *Model) explain(messages []Message) string {
	pp := parseMatchPrompt(firstUserMessage(messages))
	d := m.decide(pp)

	lines := m.explanationLines(d)
	var b strings.Builder
	b.WriteString("The decision was based on the following attribute comparisons:\n")
	for _, l := range lines {
		fmt.Fprintf(&b, "%s | %.2f | %.2f\n", l.attribute, l.importance, l.similarity)
	}
	return strings.TrimRight(b.String(), "\n")
}

// explLine is one structured explanation row.
type explLine struct {
	attribute  string
	importance float64
	similarity float64
}

// explanationLines converts the decision's feature contributions into
// named attribute rows. Importance is the normalized signed
// contribution of the feature to the decision; similarity is the raw
// feature value. Small deterministic jitter models the imprecision of
// model-generated numbers while preserving the strong correlation
// with string-similarity measures reported in Section 6.1.
func (m *Model) explanationLines(d decision) []explLine {
	type contrib struct {
		f features.Feature
		c float64
	}
	var contribs []contrib
	maxAbs := 1e-9
	for i := 0; i < int(features.NumFeatures); i++ {
		f := features.Feature(i)
		if !d.present[f] || !explainedFeature(f) {
			continue
		}
		c := d.weights.W[f] * (d.vector[f] - d.weights.Center[f])
		contribs = append(contribs, contrib{f, c})
		if a := abs(c); a > maxAbs {
			maxAbs = a
		}
	}
	var lines []explLine
	for _, ct := range contribs {
		name := m.attributeName(ct.f, d)
		impJitter := 0.08 * detrand.Signed(m.profile.Name, "imp-jitter", name, d.extA.Raw, d.extB.Raw)
		simJitter := 0.05 * detrand.Signed(m.profile.Name, "sim-jitter", name, d.extA.Raw, d.extB.Raw)
		lines = append(lines, explLine{
			attribute:  name,
			importance: clamp(ct.c/maxAbs+impJitter, -1, 1),
			similarity: clamp(d.vector[ct.f]+simJitter, 0, 1),
		})
	}
	return lines
}

// explainedFeature filters the internal feature set down to the
// attribute-level comparisons a model would cite; the redundant title
// sub-measures and the overall-token measure stay internal.
func explainedFeature(f features.Feature) bool {
	switch f {
	case features.TitleCosine, features.TitleContainment, features.OverallJaccard:
		return false
	default:
		return true
	}
}

// attributeName maps a feature to the attribute name used in
// explanations, refining generic features with extraction context
// (variant unit classes, conference vs. journal venues).
func (m *Model) attributeName(f features.Feature, d decision) string {
	switch f {
	case features.VariantMatch:
		switch {
		case len(d.extA.Colors) > 0 && len(d.extB.Colors) > 0:
			return "color"
		case hasUnit(d.extA, d.extB, "gb", "tb", "mb"):
			return "capacity"
		case hasUnit(d.extA, d.extB, "inch", "in"):
			return "size"
		case hasUnit(d.extA, d.extB, "user", "users"):
			return "license"
		default:
			return "variant"
		}
	case features.VenueMatch:
		if isJournalVenue(d.extA.Venue) || isJournalVenue(d.extB.Venue) {
			return "journal"
		}
		return "conference"
	case features.ModelMatch:
		return "model"
	case features.TitleGenJaccard:
		return "title"
	default:
		return f.String()
	}
}

func hasUnit(a, b features.Extracted, units ...string) bool {
	has := func(e features.Extracted) bool {
		for _, v := range e.Variants {
			for _, u := range units {
				if strings.HasSuffix(v, u) {
					return true
				}
			}
		}
		return false
	}
	return has(a) && has(b)
}

func isJournalVenue(name string) bool {
	for _, v := range vocab.Venues {
		if v.Full == name {
			return v.Journal
		}
	}
	return false
}

func abs(x float64) float64 {
	if x < 0 {
		return -x
	}
	return x
}
