package llm

import (
	"strings"
	"testing"

	"llm4em/internal/entity"
	"llm4em/internal/prompt"
)

func productPair() entity.Pair {
	schema := entity.Schema{Domain: entity.Product, Attributes: []string{"title", "price"}}
	return entity.Pair{
		ID:    "t1",
		A:     schema.NewRecord("a", "Sony Cybershot DSC-120B digital camera black", "348.00"),
		B:     schema.NewRecord("b", "sony dsc120b digital camera black", "351.99"),
		Match: true,
	}
}

func nonMatchPair() entity.Pair {
	schema := entity.Schema{Domain: entity.Product, Attributes: []string{"title", "price"}}
	return entity.Pair{
		ID:    "t2",
		A:     schema.NewRecord("a", "Sony Cybershot DSC-120B digital camera black", "348.00"),
		B:     schema.NewRecord("b", "DeWalt XR DCD-771 cordless drill", "99.00"),
		Match: false,
	}
}

func buildPrompt(t *testing.T, designName string, pair entity.Pair) string {
	t.Helper()
	d, err := prompt.DesignByName(designName)
	if err != nil {
		t.Fatal(err)
	}
	return prompt.Spec{Design: d, Domain: entity.Product}.Build(pair)
}

func TestNewUnknownModel(t *testing.T) {
	if _, err := New("GPT-99"); err == nil {
		t.Fatal("unknown model should error")
	}
}

func TestStudyModelsHaveProfiles(t *testing.T) {
	for _, name := range StudyModels() {
		p, ok := ProfileByName(name)
		if !ok {
			t.Fatalf("missing profile for %s", name)
		}
		if p.Name != name || p.APIName == "" || p.ContextWindow == 0 {
			t.Errorf("incomplete profile for %s: %+v", name, p)
		}
	}
}

func TestChatEmptyConversation(t *testing.T) {
	m := MustNew(GPT4)
	if _, err := m.Chat(nil); err == nil {
		t.Fatal("empty conversation should error")
	}
}

func TestChatDeterministic(t *testing.T) {
	m := MustNew(GPT4)
	p := buildPrompt(t, "general-complex-force", productPair())
	r1, err := m.Chat([]Message{{Role: User, Content: p}})
	if err != nil {
		t.Fatal(err)
	}
	r2, err := m.Chat([]Message{{Role: User, Content: p}})
	if err != nil {
		t.Fatal(err)
	}
	if r1.Content != r2.Content || r1.Latency != r2.Latency {
		t.Error("Chat is not deterministic at temperature 0")
	}
}

func TestForceFormatAnswersAreShort(t *testing.T) {
	m := MustNew(GPT4)
	p := buildPrompt(t, "general-complex-force", productPair())
	r, err := m.Chat([]Message{{Role: User, Content: p}})
	if err != nil {
		t.Fatal(err)
	}
	if r.Content != "Yes" && r.Content != "No" {
		t.Errorf("GPT-4 force answer = %q, want bare Yes/No", r.Content)
	}
}

func TestGPT4MatchesEasyPairs(t *testing.T) {
	m := MustNew(GPT4)
	pYes := buildPrompt(t, "general-complex-force", productPair())
	r, _ := m.Chat([]Message{{Role: User, Content: pYes}})
	if r.Content != "Yes" {
		t.Errorf("GPT-4 should match the near-identical pair, got %q", r.Content)
	}
	pNo := buildPrompt(t, "general-complex-force", nonMatchPair())
	r, _ = m.Chat([]Message{{Role: User, Content: pNo}})
	if r.Content != "No" {
		t.Errorf("GPT-4 should reject the unrelated pair, got %q", r.Content)
	}
}

func TestFreeFormatAnswersAreVerbose(t *testing.T) {
	m := MustNew(GPT4)
	p := buildPrompt(t, "general-complex-free", productPair())
	r, err := m.Chat([]Message{{Role: User, Content: p}})
	if err != nil {
		t.Fatal(err)
	}
	if r.CompletionTokens < 10 {
		t.Errorf("free answer has %d tokens, expected verbose text: %q", r.CompletionTokens, r.Content)
	}
}

func TestParseMatchPrompt(t *testing.T) {
	d, _ := prompt.DesignByName("general-complex-force")
	demo := nonMatchPair()
	spec := prompt.Spec{
		Design:         d,
		Domain:         entity.Product,
		Rules:          []string{"The model numbers must match.", "Prices may differ slightly."},
		Demonstrations: []entity.Pair{demo},
	}
	content := spec.Build(productPair())
	pp := parseMatchPrompt(content)
	if !pp.Force {
		t.Error("force instruction not detected")
	}
	if len(pp.Rules) != 2 {
		t.Errorf("rules = %v", pp.Rules)
	}
	if len(pp.Demos) != 1 || pp.Demos[0].Match {
		t.Errorf("demos = %+v", pp.Demos)
	}
	if !strings.Contains(pp.QueryA, "DSC-120B") || !strings.Contains(pp.QueryB, "dsc120b") {
		t.Errorf("query parse failed: %q / %q", pp.QueryA, pp.QueryB)
	}
}

func TestParseSimpleWordingDetection(t *testing.T) {
	simple := parseMatchPrompt("Do the two product descriptions match?\nEntity 1: 'a'\nEntity 2: 'b'")
	if !simple.SimpleWording {
		t.Error("simple wording not detected")
	}
	complexP := parseMatchPrompt("Do the two entity descriptions refer to the same real-world entity?\nEntity 1: 'a'\nEntity 2: 'b'")
	if complexP.SimpleWording {
		t.Error("complex wording misdetected as simple")
	}
}

func TestLatencyModelShape(t *testing.T) {
	gpt4 := MustNew(GPT4)
	short := gpt4.latency(100, 2)
	long := gpt4.latency(100, 50)
	if long <= short {
		t.Error("more completion tokens must increase latency")
	}
	llama2 := MustNew(Llama2)
	if llama2.latency(100, 100) <= gpt4.latency(100, 100) {
		t.Error("Llama2 must be slower than GPT-4 at equal token counts")
	}
}

func TestFineTunedVariant(t *testing.T) {
	base := MustNew(Llama31)
	ft, err := NewFineTuned(Llama31, Adapter{Weights: base.BaseWeights(), TrainedOn: "wdc"})
	if err != nil {
		t.Fatal(err)
	}
	if !ft.FineTuned() || ft.Name() != "Llama3.1-ft-wdc" {
		t.Errorf("fine-tuned naming wrong: %s", ft.Name())
	}
	// Fine-tuned local models respond at the quantized latency.
	if got := ft.latency(500, 2); got.Seconds() != 0.30 {
		t.Errorf("fine-tuned latency = %v, want 0.30s", got)
	}
}

func TestHedgingAnswerNeverContainsYes(t *testing.T) {
	m := MustNew(GPT4o)
	pp := parseMatchPrompt("Do the two entity descriptions match?\nEntity 1: 'alpha'\nEntity 2: 'alpha'")
	d := m.decide(pp)
	for range [3]int{} {
		ans := strings.ToLower(m.hedgingAnswer(pp, d))
		for _, token := range strings.Fields(strings.Map(func(r rune) rune {
			if r >= 'a' && r <= 'z' {
				return r
			}
			return ' '
		}, ans)) {
			if token == "yes" {
				t.Fatalf("hedging answer contains 'yes': %s", ans)
			}
		}
	}
}

func TestExplainProducesStructuredLines(t *testing.T) {
	m := MustNew(GPT4)
	match := buildPrompt(t, "general-complex-free", productPair())
	conv := []Message{
		{Role: User, Content: match},
		{Role: Assistant, Content: "Yes, they match."},
		{Role: User, Content: prompt.ExplanationRequest},
	}
	r, err := m.Chat(conv)
	if err != nil {
		t.Fatal(err)
	}
	lines := 0
	for _, l := range strings.Split(r.Content, "\n") {
		if strings.Count(l, "|") == 2 {
			lines++
		}
	}
	if lines < 3 {
		t.Errorf("explanation has %d structured lines, want >= 3:\n%s", lines, r.Content)
	}
	if !strings.Contains(r.Content, "model") || !strings.Contains(r.Content, "price") {
		t.Errorf("explanation misses expected attributes:\n%s", r.Content)
	}
}

func TestRuleLearningAnswer(t *testing.T) {
	m := MustNew(GPT4)
	p := "Derive a list of matching rules from the following examples of matching and non-matching product descriptions. Present the rules as a numbered list.\n" +
		"Entity 1: 'Sony DSC-120B camera black 348.00'\nEntity 2: 'sony dsc120b camera black 350.00'\nAnswer: Yes\n" +
		"Entity 1: 'Sony DSC-120A camera black 348.00'\nEntity 2: 'sony dsc120b camera black 600.00'\nAnswer: No\n"
	r, err := m.Chat([]Message{{Role: User, Content: p}})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(r.Content, "1.") {
		t.Errorf("rule-learning reply not numbered:\n%s", r.Content)
	}
	if !strings.Contains(strings.ToLower(r.Content), "model") {
		t.Errorf("learned rules should mention model numbers:\n%s", r.Content)
	}
}

func TestModelListsArePaperColumns(t *testing.T) {
	want := []string{"GPT-mini", "GPT-4", "GPT-4o", "Llama2", "Llama3.1", "Mixtral"}
	got := StudyModels()
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("StudyModels()[%d] = %s, want %s", i, got[i], want[i])
		}
	}
	if len(HostedModels()) != 3 || len(OpenSourceModels()) != 3 {
		t.Error("hosted/open-source split wrong")
	}
	if len(FineTunableModels()) != 3 {
		t.Error("fine-tunable models wrong")
	}
}

func TestConjunctiveRuleMisapplication(t *testing.T) {
	// With conjunctive misreading, a pair with one weak mentioned
	// attribute must be rejected even if the aggregate score is
	// positive.
	var v [13]float64
	_ = v
	pp := ParsedPrompt{
		Task:   "Do the two product descriptions match?",
		Rules:  []string{"The model numbers must match.", "The brands must match."},
		QueryA: "Sony Cybershot DSC-120A camera black 348.00",
		QueryB: "Sony Cybershot DSC-120B camera black 350.00",
	}
	m := MustNew(Llama2) // RuleConjunctive = 0.75
	d := m.decide(pp)
	// The sibling pair has modelSim ~0.5 < 0.82; if the conjunctive
	// path triggered, the decision must be No regardless of noise.
	if d.yes {
		t.Log("conjunctive check did not reject — acceptable if this task hash did not trigger conjunction")
	}
}
