package llm

import (
	"fmt"
	"math"
	"strings"
	"sync"
	"time"

	"llm4em/internal/detrand"
	"llm4em/internal/entity"
	"llm4em/internal/features"
	"llm4em/internal/tokenize"
)

// Adapter holds the state of a fine-tuned model variant: the fitted
// decision weights and the dataset it was trained on (Section 4.3).
type Adapter struct {
	// Weights replaces the model's innate matching weighting.
	Weights features.Weights
	// TrainedOn is the dataset key the adapter was fitted on.
	TrainedOn string
}

// Model is one simulated LLM. The zero value is unusable; construct
// with New or NewFineTuned.
type Model struct {
	profile     Profile
	adapter     *Adapter
	temperature float64
}

// New returns the simulated model with the given table name
// ("GPT-4", "Llama3.1", ...).
func New(name string) (*Model, error) {
	p, ok := ProfileByName(name)
	if !ok {
		return nil, fmt.Errorf("llm: unknown model %q", name)
	}
	return &Model{profile: p}, nil
}

// MustNew is New for known-good names; it panics on error.
func MustNew(name string) *Model {
	m, err := New(name)
	if err != nil {
		panic(err)
	}
	return m
}

// NewFineTuned returns a fine-tuned variant of the model carrying the
// given adapter.
func NewFineTuned(name string, adapter Adapter) (*Model, error) {
	m, err := New(name)
	if err != nil {
		return nil, err
	}
	m.adapter = &adapter
	return m, nil
}

// WithTemperature returns a copy of the model sampling at the given
// temperature. The study fixes temperature to 0 "to reduce
// randomness" (Section 2); positive temperatures add
// deterministically seeded sampling noise to the decision, modelling
// what the paper avoids. Temperatures are clamped to [0, 2].
func (m *Model) WithTemperature(t float64) *Model {
	cp := *m
	cp.temperature = clamp(t, 0, 2)
	return &cp
}

// Temperature returns the model's sampling temperature.
func (m *Model) Temperature() float64 { return m.temperature }

// Name returns the model's table name; fine-tuned variants append the
// training dataset ("GPT-mini-ft-wdc").
func (m *Model) Name() string {
	if m.adapter != nil {
		return m.profile.Name + "-ft-" + m.adapter.TrainedOn
	}
	return m.profile.Name
}

// Profile returns the model's capability profile.
func (m *Model) Profile() Profile { return m.profile }

// FineTuned reports whether the model carries a fine-tuning adapter.
func (m *Model) FineTuned() bool { return m.adapter != nil }

// Chat implements Client. It dispatches on the kind of the last user
// message: matching decision, structured explanation, error-class
// synthesis, or error assignment.
func (m *Model) Chat(messages []Message) (Response, error) {
	last := lastUserMessage(messages)
	if last == "" {
		return Response{}, ErrEmptyConversation
	}
	var content string
	switch classifyPrompt(last) {
	case KindExplain:
		content = m.explain(messages)
	case KindErrorClasses:
		content = m.answerErrorClasses(last)
	case KindErrorAssign:
		content = m.answerErrorAssign(last)
	case KindRuleLearn:
		content = m.answerRuleLearn(last)
	case KindBatchMatch:
		content = m.answerBatch(last)
	case KindCompare:
		content = m.answerCompare(last)
	case KindSelect:
		content = m.answerSelect(last)
	case KindReason:
		content = m.answerReason(parseMatchPrompt(last))
	default:
		pp := parseMatchPrompt(last)
		d := m.decide(pp)
		content = m.respond(pp, d)
	}
	promptTokens := 0
	for _, msg := range messages {
		promptTokens += tokenize.EstimateTokens(msg.Content)
	}
	completion := tokenize.EstimateTokens(content)
	return Response{
		Content:          content,
		PromptTokens:     promptTokens,
		CompletionTokens: completion,
		Latency:          m.latency(promptTokens, completion),
	}, nil
}

func lastUserMessage(messages []Message) string {
	for i := len(messages) - 1; i >= 0; i-- {
		if messages[i].Role == User {
			return messages[i].Content
		}
	}
	return ""
}

func firstUserMessage(messages []Message) string {
	for _, msg := range messages {
		if msg.Role == User {
			return msg.Content
		}
	}
	return ""
}

// decision is the internal outcome of reading one matching prompt.
type decision struct {
	yes     bool
	logit   float64
	vector  features.Vector
	present features.Presence
	weights features.Weights
	extA    features.Extracted
	extB    features.Extracted
}

// decide runs the model's matching pipeline on a parsed prompt.
func (m *Model) decide(pp ParsedPrompt) decision {
	extA, extB := extractCached(pp.QueryA), extractCached(pp.QueryB)
	v, pres := features.PairFeatures(extA, extB)
	w := m.baseWeights()

	// In-context learning (Section 4.1): demonstrations shift the
	// model's weighting toward (or, for models that demonstrations
	// confuse, away from) the ideal reference; related demonstrations
	// help models that can transfer patterns from closely similar
	// examples.
	quality := 0.0
	calibration := 0.0
	if n := len(pp.Demos); n > 0 && m.adapter == nil {
		quality = m.profile.ICLGain * math.Log1p(float64(n)) / math.Log1p(10)
		if m.profile.ICLRelatedBonus > 0 {
			rel := meanDemoSimilarity(pp.Demos, pp.QueryA+" "+pp.QueryB)
			quality += m.profile.ICLRelatedBonus * rel
		}
		if quality >= 0 {
			w = features.Blend(w, features.Ideal(), clamp(quality, 0, 0.9))
		} else {
			w = features.Blend(w, features.TitleOnly(), clamp(-quality, 0, 0.6))
		}
		// Threshold calibration: the model scores the demonstrations
		// with its own weighting and moves its decision boundary
		// toward the midpoint that separates their labels. This is how
		// demonstration *content* matters: related demonstrations
		// calibrate the boundary in the query's own neighbourhood.
		var posSum, negSum float64
		var posN, negN int
		for _, d := range pp.Demos {
			ea, eb := extractCached(d.A), extractCached(d.B)
			dv, dp := features.PairFeatures(ea, eb)
			sc := w.Score(dv, dp)
			if d.Match {
				posSum += sc
				posN++
			} else {
				negSum += sc
				negN++
			}
		}
		if posN > 0 && negN > 0 {
			mid := (posSum/float64(posN) + negSum/float64(negN)) / 2
			lambda := clamp(0.35+0.6*quality, 0.1, 0.8)
			if quality < 0 {
				// Confused models barely use the calibration signal.
				lambda = 0.1
			}
			calibration = -lambda * mid
		}
	}

	// Matching rules (Section 4.2): models adopt the attribute
	// weighting the rules express in proportion to their rule
	// utilisation.
	conjunctive := false
	var ruleFeats []features.Feature
	if len(pp.Rules) > 0 && m.adapter == nil {
		var rw features.Weights
		rw, ruleFeats = ruleWeights(pp.Rules)
		if m.profile.RuleUtilization > 0 {
			w = features.Blend(w, rw, m.profile.RuleUtilization)
		}
		conjunctive = detrand.Unit(m.profile.Name, "rule-conjunctive", pp.Task, pp.QueryA) < m.profile.RuleConjunctive
	}

	score := w.Score(v, pres) + calibration

	// Prompt-design sensitivity (Section 3): each (model, prompt
	// wording) combination induces a deterministic threshold shift;
	// demonstrations and rules ground the task and damp the shift.
	shift := 1.3 * m.profile.PromptSensitivity * detrand.Signed(m.profile.Name, "prompt-shift", pp.Task, formatKey(pp))
	if pp.SimpleWording {
		shift -= m.profile.SimpleWordingPenalty * (0.4 + 0.6*detrand.Unit(m.profile.Name, "simple-penalty", pp.Task))
	}
	grounding := clamp(0.18*float64(len(pp.Demos)), 0, 0.8)
	if len(pp.Rules) > 0 {
		grounding = clamp(grounding+0.5, 0, 0.85)
	}
	if m.adapter != nil {
		grounding = 0.95 // fine-tuned on exactly this prompt shape
	}
	shift *= 1 - grounding

	// Per-pair decision noise; calibration quality from demonstrations
	// tightens it, confusion widens it.
	noise := m.profile.NoiseSigma * detrand.Gauss(m.profile.Name, "pair-noise", pp.QueryA, pp.QueryB)
	if m.adapter != nil {
		noise *= m.profile.FTNoiseScale
	}
	switch {
	case quality > 0:
		noise *= 1 - 0.4*clamp(quality, 0, 1)
	case quality < 0:
		noise *= 1 + 0.8*clamp(-quality, 0, 1)
	}

	// Sampling temperature (Section 2): the study runs at 0; positive
	// temperatures add sampling noise on top of the model's intrinsic
	// decision noise.
	if m.temperature > 0 {
		noise += m.temperature * 0.8 * detrand.Gauss(m.profile.Name, "temperature", pp.QueryA, pp.QueryB)
	}

	logit := score + shift + noise
	yes := logit > 0
	if yes && conjunctive {
		yes = conjunctiveHolds(v, pres, ruleFeats)
	}
	return decision{yes: yes, logit: logit, vector: v, present: pres, weights: w, extA: extA, extB: extB}
}

// extractCache memoizes feature extraction of serialized entity
// descriptions: demonstrations and query pairs recur across prompts,
// models and experiment configurations, and extraction is pure.
var extractCache sync.Map // string -> features.Extracted

func extractCached(s string) features.Extracted {
	if v, ok := extractCache.Load(s); ok {
		return v.(features.Extracted)
	}
	e := features.ExtractText(s)
	extractCache.Store(s, e)
	return e
}

// baseWeights returns the model's innate (or fine-tuned) weighting.
func (m *Model) baseWeights() features.Weights {
	if m.adapter != nil {
		return m.adapter.Weights
	}
	return features.Blend(features.TitleOnly(), features.Ideal(), m.profile.WeightFidelity)
}

// formatKey distinguishes prompt shapes for the sensitivity hash.
func formatKey(pp ParsedPrompt) string {
	k := "free"
	if pp.Force {
		k = "force"
	}
	if len(pp.Demos) > 0 {
		k += "+demos"
	}
	if len(pp.Rules) > 0 {
		k += "+rules"
	}
	return k
}

// meanDemoSimilarity measures how related the demonstrations are to
// the query pair (Generalized-Jaccard token overlap of serialized
// strings), in [0, 1].
func meanDemoSimilarity(demos []Demo, query string) float64 {
	if len(demos) == 0 {
		return 0
	}
	qTokens := tokenize.Words(query)
	total := 0.0
	for _, d := range demos {
		dTokens := tokenize.Words(d.A + " " + d.B)
		total += jaccard(qTokens, dTokens)
	}
	return total / float64(len(demos))
}

func jaccard(a, b []string) float64 {
	sa := map[string]bool{}
	for _, t := range a {
		sa[t] = true
	}
	sb := map[string]bool{}
	for _, t := range b {
		sb[t] = true
	}
	if len(sa) == 0 && len(sb) == 0 {
		return 1
	}
	inter := 0
	for t := range sa {
		if sb[t] {
			inter++
		}
	}
	union := len(sa) + len(sb) - inter
	if union == 0 {
		return 1
	}
	return float64(inter) / float64(union)
}

// ruleFeatureMentions maps rule keywords to feature dimensions.
var ruleFeatureMentions = []struct {
	keyword string
	feat    features.Feature
	weight  float64
	center  float64
}{
	{"brand", features.BrandMatch, 1.2, 0.85},
	{"manufacturer", features.BrandMatch, 1.2, 0.85},
	{"model", features.ModelMatch, 6.0, 0.80},
	{"version", features.VersionMatch, 5.0, 0.76},
	{"edition", features.EditionMatch, 2.6, 0.72},
	{"price", features.PriceMatch, 1.2, 0.76},
	{"title", features.TitleGenJaccard, 2.6, 0.62},
	{"name", features.TitleGenJaccard, 2.6, 0.62},
	{"author", features.AuthorMatch, 2.6, 0.84},
	{"venue", features.VenueMatch, 2.4, 0.74},
	{"journal", features.VenueMatch, 2.4, 0.74},
	{"conference", features.VenueMatch, 2.4, 0.74},
	{"year", features.YearMatch, 2.6, 0.84},
	{"capacity", features.VariantMatch, 2.2, 0.72},
	{"color", features.VariantMatch, 2.2, 0.72},
	{"variant", features.VariantMatch, 2.2, 0.72},
}

// ruleWeights converts textual rules into a weighting over the
// feature dimensions they mention, plus mild title/overall terms so
// the weighting remains usable when a mentioned attribute is missing.
func ruleWeights(rules []string) (features.Weights, []features.Feature) {
	var w features.Weights
	text := strings.ToLower(strings.Join(rules, " "))
	var mentioned []features.Feature
	seen := map[features.Feature]bool{}
	for _, rm := range ruleFeatureMentions {
		if strings.Contains(text, rm.keyword) && !seen[rm.feat] {
			w.W[rm.feat] = rm.weight
			w.Center[rm.feat] = rm.center
			mentioned = append(mentioned, rm.feat)
			seen[rm.feat] = true
		}
	}
	// Baseline terms: rules implicitly assume overall correspondence.
	if w.W[features.TitleGenJaccard] == 0 {
		w.W[features.TitleGenJaccard] = 1.8
		w.Center[features.TitleGenJaccard] = 0.60
	}
	w.W[features.OverallJaccard] = 1.0
	w.Center[features.OverallJaccard] = 0.48
	w.Bias = -0.05
	return w, mentioned
}

// conjunctiveHolds is the strict misreading of rules: every mentioned
// feature that is present must individually look like a match.
func conjunctiveHolds(v features.Vector, p features.Presence, mentioned []features.Feature) bool {
	for _, f := range mentioned {
		if p[f] && v[f] < 0.82 {
			return false
		}
	}
	return true
}

// latency computes the simulated request duration.
func (m *Model) latency(promptTokens, completionTokens int) time.Duration {
	if m.adapter != nil && m.profile.LatFineTuned > 0 {
		return time.Duration(m.profile.LatFineTuned * float64(time.Second))
	}
	secs := m.profile.LatBase +
		m.profile.LatPerIn*float64(promptTokens) +
		m.profile.LatPerOut*float64(completionTokens)
	return time.Duration(secs * float64(time.Second))
}

func clamp(x, lo, hi float64) float64 {
	if x < lo {
		return lo
	}
	if x > hi {
		return hi
	}
	return x
}

// domainOf guesses the topical domain of the query pair.
func (d decision) domain() entity.Domain {
	if d.extA.Domain == entity.Publication || d.extB.Domain == entity.Publication {
		return entity.Publication
	}
	return entity.Product
}
