package entity

import (
	"strings"
	"testing"
	"testing/quick"
)

func TestSerializeSkipsEmptyValues(t *testing.T) {
	r := Record{ID: "r1", Attrs: []Attr{
		{Name: "brand", Value: "DYMO"},
		{Name: "title", Value: "D1 Tape 12mm"},
		{Name: "currency", Value: ""},
		{Name: "price", Value: "12.99"},
	}}
	got := r.Serialize()
	want := "DYMO D1 Tape 12mm 12.99"
	if got != want {
		t.Errorf("Serialize() = %q, want %q", got, want)
	}
}

func TestSerializeEmptyRecord(t *testing.T) {
	r := Record{ID: "r"}
	if got := r.Serialize(); got != "" {
		t.Errorf("Serialize() = %q, want empty", got)
	}
}

func TestSerializeOrderMatters(t *testing.T) {
	a := Record{Attrs: []Attr{{Name: "x", Value: "1"}, {Name: "y", Value: "2"}}}
	b := Record{Attrs: []Attr{{Name: "y", Value: "2"}, {Name: "x", Value: "1"}}}
	if a.Serialize() == b.Serialize() {
		t.Error("attribute order should affect serialization")
	}
}

func TestGetSet(t *testing.T) {
	r := Record{Attrs: []Attr{{Name: "title", Value: "foo"}}}
	if v, ok := r.Get("title"); !ok || v != "foo" {
		t.Errorf("Get(title) = %q, %v", v, ok)
	}
	if _, ok := r.Get("missing"); ok {
		t.Error("Get(missing) should not be found")
	}
	if _, ok := r.Get("empty"); ok {
		t.Error("Get of empty value should not be found")
	}
	r.Set("title", "bar")
	if v, _ := r.Get("title"); v != "bar" {
		t.Errorf("after Set, Get(title) = %q", v)
	}
	r.Set("new", "baz")
	if v, _ := r.Get("new"); v != "baz" {
		t.Errorf("Set should append missing attribute, got %q", v)
	}
}

func TestCloneIsDeep(t *testing.T) {
	r := Record{ID: "a", Attrs: []Attr{{Name: "t", Value: "v"}}}
	c := r.Clone()
	c.Set("t", "changed")
	if v, _ := r.Get("t"); v != "v" {
		t.Error("Clone shares attribute storage with original")
	}
}

func TestSchemaNewRecord(t *testing.T) {
	s := Schema{Domain: Product, Attributes: []string{"brand", "title", "price"}}
	r := s.NewRecord("id1", "Sony", "WH-1000XM4")
	if err := s.Validate(r); err != nil {
		t.Fatalf("Validate: %v", err)
	}
	if v, _ := r.Get("brand"); v != "Sony" {
		t.Errorf("brand = %q", v)
	}
	if _, ok := r.Get("price"); ok {
		t.Error("price should be empty")
	}
}

func TestSchemaValidateErrors(t *testing.T) {
	s := Schema{Attributes: []string{"a", "b"}}
	if err := s.Validate(Record{Attrs: []Attr{{Name: "a"}}}); err == nil {
		t.Error("Validate should reject wrong attribute count")
	}
	bad := Record{Attrs: []Attr{{Name: "a"}, {Name: "c"}}}
	if err := s.Validate(bad); err == nil {
		t.Error("Validate should reject wrong attribute name")
	}
}

func TestDomainStrings(t *testing.T) {
	if Product.String() != "product" || Publication.String() != "publication" {
		t.Error("unexpected domain names")
	}
	if Product.Noun() != "product descriptions" {
		t.Errorf("Product.Noun() = %q", Product.Noun())
	}
	if Publication.Noun() != "publications" {
		t.Errorf("Publication.Noun() = %q", Publication.Noun())
	}
	if Domain(99).Noun() != "entity descriptions" {
		t.Error("unknown domain should fall back to generic noun")
	}
}

func TestPairKeyAndSerializeBoth(t *testing.T) {
	p := Pair{
		A: Record{ID: "l1", Attrs: []Attr{{Name: "t", Value: "x"}}},
		B: Record{ID: "r9", Attrs: []Attr{{Name: "t", Value: "y"}}},
	}
	if p.Key() != "l1|r9" {
		t.Errorf("Key() = %q", p.Key())
	}
	a, b := p.SerializeBoth()
	if a != "x" || b != "y" {
		t.Errorf("SerializeBoth() = %q, %q", a, b)
	}
}

func TestCount(t *testing.T) {
	pairs := []Pair{{Match: true}, {Match: false}, {Match: true}, {Match: false}, {Match: false}}
	c := Count(pairs)
	if c.Pos != 2 || c.Neg != 3 || c.Total() != 5 {
		t.Errorf("Count = %+v", c)
	}
}

func TestSerializeNoDoubleBlanks(t *testing.T) {
	// Property: serialization never contains consecutive blanks caused
	// by empty attribute values, regardless of where gaps appear.
	f := func(v1, v2, v3 bool) bool {
		val := func(use bool, s string) string {
			if use {
				return s
			}
			return ""
		}
		r := Record{Attrs: []Attr{
			{Name: "a", Value: val(v1, "alpha")},
			{Name: "b", Value: val(v2, "beta")},
			{Name: "c", Value: val(v3, "gamma")},
		}}
		s := r.Serialize()
		return !strings.Contains(s, "  ") && !strings.HasPrefix(s, " ") && !strings.HasSuffix(s, " ")
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
