// Package entity defines the data model shared by every component of
// the entity-matching system: entity descriptions (records) consisting
// of ordered attribute/value pairs, labelled record pairs, and the
// serialization scheme of the paper (Section 2): attribute values are
// concatenated with single blanks, without attribute names, in the
// order fixed by the dataset schema.
package entity

import (
	"fmt"
	"strings"
)

// Domain identifies the topical domain of a dataset. The paper covers
// two: product offers and bibliographic publications.
type Domain int

// Supported domains.
const (
	Product Domain = iota
	Publication
)

// String returns the lower-case domain name.
func (d Domain) String() string {
	switch d {
	case Product:
		return "product"
	case Publication:
		return "publication"
	default:
		return fmt.Sprintf("domain(%d)", int(d))
	}
}

// Noun returns the noun phrase used by domain-specific task
// descriptions, e.g. "product descriptions" or "publications".
func (d Domain) Noun() string {
	switch d {
	case Product:
		return "product descriptions"
	case Publication:
		return "publications"
	default:
		return "entity descriptions"
	}
}

// Attr is a single named attribute value of an entity description.
type Attr struct {
	Name  string
	Value string
}

// Record is one entity description: an ordered list of attribute
// values. Order matters because serialization concatenates values in
// schema order.
type Record struct {
	// ID uniquely identifies the record within its dataset side.
	ID string
	// Attrs holds the attribute values in schema order. Missing values
	// are represented by empty strings and skipped by Serialize.
	Attrs []Attr
}

// Get returns the value of the named attribute and whether it exists
// with a non-empty value.
func (r Record) Get(name string) (string, bool) {
	for _, a := range r.Attrs {
		if a.Name == name && a.Value != "" {
			return a.Value, true
		}
	}
	return "", false
}

// Set replaces the value of the named attribute, or appends it if the
// record has no attribute of that name.
func (r *Record) Set(name, value string) {
	for i := range r.Attrs {
		if r.Attrs[i].Name == name {
			r.Attrs[i].Value = value
			return
		}
	}
	r.Attrs = append(r.Attrs, Attr{Name: name, Value: value})
}

// Clone returns a deep copy of the record.
func (r Record) Clone() Record {
	cp := Record{ID: r.ID, Attrs: make([]Attr, len(r.Attrs))}
	copy(cp.Attrs, r.Attrs)
	return cp
}

// Serialize concatenates the record's attribute values with single
// blanks, skipping empty values, exactly as described in Section 2 of
// the paper: serialize(e) := ValA1 ValA2 ... ValAn. Attribute names
// are deliberately not included; the paper found that adding them
// hurt performance.
func (r Record) Serialize() string {
	var b strings.Builder
	for _, a := range r.Attrs {
		if a.Value == "" {
			continue
		}
		if b.Len() > 0 {
			b.WriteByte(' ')
		}
		b.WriteString(a.Value)
	}
	return b.String()
}

// String implements fmt.Stringer using the serialized form.
func (r Record) String() string { return r.Serialize() }

// Pair is a labelled pair of entity descriptions. Match is the gold
// label: true if both descriptions refer to the same real-world
// entity.
type Pair struct {
	ID    string
	A, B  Record
	Match bool
}

// SerializeBoth returns the serialized forms of both records.
func (p Pair) SerializeBoth() (a, b string) {
	return p.A.Serialize(), p.B.Serialize()
}

// Key returns a stable identity for the pair based on the record IDs.
func (p Pair) Key() string {
	return p.A.ID + "|" + p.B.ID
}

// Schema describes the attributes of a dataset in serialization order,
// together with its topical domain.
type Schema struct {
	Domain     Domain
	Attributes []string
}

// NewRecord builds a record conforming to the schema from the given
// values. Extra values are ignored; missing values become empty
// attributes.
func (s Schema) NewRecord(id string, values ...string) Record {
	r := Record{ID: id, Attrs: make([]Attr, len(s.Attributes))}
	for i, name := range s.Attributes {
		r.Attrs[i].Name = name
		if i < len(values) {
			r.Attrs[i].Value = values[i]
		}
	}
	return r
}

// Validate reports an error if the record's attributes do not follow
// the schema's names and order.
func (s Schema) Validate(r Record) error {
	if len(r.Attrs) != len(s.Attributes) {
		return fmt.Errorf("entity: record %s has %d attributes, schema has %d", r.ID, len(r.Attrs), len(s.Attributes))
	}
	for i, name := range s.Attributes {
		if r.Attrs[i].Name != name {
			return fmt.Errorf("entity: record %s attribute %d is %q, schema expects %q", r.ID, i, r.Attrs[i].Name, name)
		}
	}
	return nil
}

// Counts summarises the matches and non-matches within a set of pairs.
type Counts struct {
	Pos, Neg int
}

// Count tallies positive and negative pairs.
func Count(pairs []Pair) Counts {
	var c Counts
	for _, p := range pairs {
		if p.Match {
			c.Pos++
		} else {
			c.Neg++
		}
	}
	return c
}

// Total returns the number of pairs counted.
func (c Counts) Total() int { return c.Pos + c.Neg }
