// Package errorclass implements the automated error analysis of
// Section 7: selecting the wrong decisions of a matching run together
// with their structured explanations, asking an LLM to synthesise
// named error classes from them (Tables 11 and 12), asking the LLM to
// assign individual errors to the classes, and measuring the
// assignment accuracy against an expert annotation rubric (Table 13).
package errorclass

import (
	"fmt"
	"strconv"
	"strings"

	"llm4em/internal/core"
	"llm4em/internal/entity"
	"llm4em/internal/explain"
	"llm4em/internal/llm"
	"llm4em/internal/prompt"
)

// Case is one wrong matching decision with its structured
// explanation.
type Case struct {
	Decision    core.Decision
	Explanation explain.Explanation
}

// FalsePositive reports whether the case is a wrongly predicted
// match.
func (c Case) FalsePositive() bool {
	return c.Decision.Match && !c.Decision.Pair.Match
}

// CollectErrors pairs up the wrong decisions of a matching run with
// their explanations and splits them into false positives and false
// negatives.
func CollectErrors(decisions []core.Decision, explanations []explain.Explanation) (fps, fns []Case) {
	byPair := map[string]explain.Explanation{}
	for _, e := range explanations {
		byPair[e.Pair.ID] = e
	}
	for _, d := range decisions {
		if d.Correct() {
			continue
		}
		c := Case{Decision: d, Explanation: byPair[d.Pair.ID]}
		if c.FalsePositive() {
			fps = append(fps, c)
		} else {
			fns = append(fns, c)
		}
	}
	return fps, fns
}

// Render formats a case in the layout the analysis prompts use (and
// the models parse): gold and predicted labels, both serializations,
// then the explanation rows.
func Render(c Case) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Gold: %s, Predicted: %s\n", label(c.Decision.Pair.Match), label(c.Decision.Match))
	fmt.Fprintf(&b, "Entity 1: '%s'\n", c.Decision.Pair.A.Serialize())
	fmt.Fprintf(&b, "Entity 2: '%s'\n", c.Decision.Pair.B.Serialize())
	b.WriteString("Explanation:\n")
	for _, a := range c.Explanation.Attributes {
		fmt.Fprintf(&b, "%s | %.2f | %.2f\n", a.Name, a.Importance, a.Similarity)
	}
	return strings.TrimRight(b.String(), "\n")
}

func label(match bool) string {
	if match {
		return "match"
	}
	return "non-match"
}

// Class is one generated error class.
type Class struct {
	Name        string
	Description string
}

// String renders "Name: Description" as listed in assignment prompts.
func (c Class) String() string { return c.Name + ": " + c.Description }

// Discover runs the Section 7.1 prompt: it shows the model all cases
// of one error direction and parses the generated error classes out
// of the reply.
func Discover(client llm.Client, domain entity.Domain, cases []Case, falsePositive bool) ([]Class, error) {
	kind := "false negative"
	if falsePositive {
		kind = "false positive"
	}
	rendered := make([]string, len(cases))
	for i, c := range cases {
		rendered[i] = Render(c)
	}
	p := prompt.ErrorClassRequest(kind, domain, rendered)
	resp, err := client.Chat([]llm.Message{{Role: llm.User, Content: p}})
	if err != nil {
		return nil, fmt.Errorf("errorclass: discovery chat: %w", err)
	}
	classes := parseClasses(resp.Content)
	if len(classes) == 0 {
		return nil, fmt.Errorf("errorclass: no classes in reply %q", resp.Content)
	}
	return classes, nil
}

// parseClasses reads "N. Name: Description" lines.
func parseClasses(reply string) []Class {
	var out []Class
	for _, line := range strings.Split(reply, "\n") {
		trimmed := strings.TrimSpace(line)
		i := 0
		for i < len(trimmed) && trimmed[i] >= '0' && trimmed[i] <= '9' {
			i++
		}
		if i == 0 || i >= len(trimmed) || trimmed[i] != '.' {
			continue
		}
		rest := strings.TrimSpace(trimmed[i+1:])
		name, desc, ok := strings.Cut(rest, ":")
		if !ok {
			continue
		}
		out = append(out, Class{Name: strings.TrimSpace(name), Description: strings.TrimSpace(desc)})
	}
	return out
}

// Assign runs the Section 7.2 prompt for one case and returns the
// set of class indices (0-based) the model considers applicable.
func Assign(client llm.Client, classes []Class, c Case) (map[int]bool, error) {
	listed := make([]string, len(classes))
	for i, cl := range classes {
		listed[i] = cl.String()
	}
	p := prompt.ErrorAssignRequest(listed, Render(c))
	resp, err := client.Chat([]llm.Message{{Role: llm.User, Content: p}})
	if err != nil {
		return nil, fmt.Errorf("errorclass: assignment chat: %w", err)
	}
	return parseAssignment(resp.Content, len(classes)), nil
}

// parseAssignment extracts the class numbers of an assignment reply
// such as "Applicable error classes: 2 (confidence 0.90), 4
// (confidence 0.71)".
func parseAssignment(reply string, nClasses int) map[int]bool {
	out := map[int]bool{}
	_, list, ok := strings.Cut(reply, "Applicable error classes:")
	if !ok {
		return out
	}
	for _, part := range strings.Split(list, ",") {
		fields := strings.Fields(strings.TrimSpace(part))
		if len(fields) == 0 {
			continue
		}
		if n, err := strconv.Atoi(fields[0]); err == nil && n >= 1 && n <= nClasses {
			out[n-1] = true
		}
	}
	return out
}

// ExpertAnnotate applies the domain-expert rubric to a case: for each
// class, whether the expert considers it applicable. The rubric is
// looser than the model's reading — an expert credits a class when
// the explanation shows *any* evidence of the named attribute pushing
// toward the wrong decision — which produces the partial agreement of
// Table 13.
func ExpertAnnotate(classes []Class, c Case) []bool {
	out := make([]bool, len(classes))
	fp := c.FalsePositive()
	for i, cl := range classes {
		out[i] = expertApplies(cl, c, fp)
	}
	return out
}

// expertApplies is the expert rubric for one class.
func expertApplies(cl Class, c Case, falsePositive bool) bool {
	lower := strings.ToLower(cl.Name + " " + cl.Description)
	attrs := expertKeywordAttrs(lower)
	if strings.Contains(lower, "incomplete") || strings.Contains(lower, "partial") || strings.Contains(lower, "missing") {
		// Information asymmetry between the two descriptions.
		la := len(strings.Fields(c.Decision.Pair.A.Serialize()))
		lb := len(strings.Fields(c.Decision.Pair.B.Serialize()))
		d := la - lb
		if d < 0 {
			d = -d
		}
		mn := la
		if lb < mn {
			mn = lb
		}
		if mn > 0 && float64(d)/float64(mn) > 0.3 {
			return true
		}
	}
	for _, a := range c.Explanation.Attributes {
		for _, kw := range attrs {
			if !strings.Contains(a.Name, kw) {
				continue
			}
			// The expert threshold is lower than the model's: mild
			// evidence suffices.
			if falsePositive && a.Importance > 0.05 {
				return true
			}
			if !falsePositive && a.Importance < -0.05 {
				return true
			}
		}
	}
	return false
}

// expertKeywordAttrs maps class wording to explanation attributes.
func expertKeywordAttrs(lower string) []string {
	var attrs []string
	pairs := []struct {
		kw    string
		attrs []string
	}{
		{"year", []string{"year"}},
		{"venue", []string{"conference", "journal", "venue"}},
		{"publication type", []string{"conference", "journal"}},
		{"author", []string{"authors"}},
		{"title", []string{"title"}},
		{"description", []string{"title"}},
		{"model", []string{"model"}},
		{"price", []string{"price"}},
		{"variant", []string{"variant", "color", "capacity", "size", "edition", "version", "license"}},
		{"accessory", []string{"variant", "color", "capacity", "size", "edition", "version", "license"}},
		{"condition", []string{"edition"}},
		{"quality", []string{"edition"}},
		{"brand", []string{"brand"}},
		{"matching attributes", []string{"brand", "model", "title"}},
		{"significant differences", []string{"title", "model"}},
	}
	for _, p := range pairs {
		if strings.Contains(lower, p.kw) {
			attrs = append(attrs, p.attrs...)
		}
	}
	return attrs
}

// ClassCount is one row of Tables 11/12: a generated class and the
// number of errors the expert annotation assigns to it.
type ClassCount struct {
	Class  Class
	Errors int
}

// CountByExpert tallies the expert annotation per class over cases.
func CountByExpert(classes []Class, cases []Case) []ClassCount {
	out := make([]ClassCount, len(classes))
	for i, cl := range classes {
		out[i].Class = cl
	}
	for _, c := range cases {
		ann := ExpertAnnotate(classes, c)
		for i, a := range ann {
			if a {
				out[i].Errors++
			}
		}
	}
	return out
}

// AssignmentAccuracy measures, per class, how often the model's
// assignment agrees with the expert annotation over the cases
// (Table 13).
func AssignmentAccuracy(client llm.Client, classes []Class, cases []Case) ([]float64, error) {
	agree := make([]int, len(classes))
	for _, c := range cases {
		model, err := Assign(client, classes, c)
		if err != nil {
			return nil, err
		}
		expert := ExpertAnnotate(classes, c)
		for i := range classes {
			if model[i] == expert[i] {
				agree[i]++
			}
		}
	}
	out := make([]float64, len(classes))
	for i, a := range agree {
		if len(cases) > 0 {
			out[i] = 100 * float64(a) / float64(len(cases))
		}
	}
	return out, nil
}
