package errorclass

import (
	"strings"
	"testing"

	"llm4em/internal/core"
	"llm4em/internal/datasets"
	"llm4em/internal/entity"
	"llm4em/internal/explain"
	"llm4em/internal/llm"
	"llm4em/internal/prompt"
)

// buildCases runs a real matching + explanation pass over a dataset
// slice and returns the errors.
func buildCases(t *testing.T, key string, n int) (fps, fns []Case, domain entity.Domain) {
	t.Helper()
	ds := datasets.MustLoad(key)
	client := llm.MustNew(llm.GPT4)
	d, err := prompt.DesignByName("domain-complex-force")
	if err != nil {
		t.Fatal(err)
	}
	matcher := &core.Matcher{Client: client, Design: d, Domain: ds.Schema.Domain}
	res, err := matcher.EvaluateKeeping(ds.Test[:n])
	if err != nil {
		t.Fatal(err)
	}
	exps, err := explain.GenerateAll(client, d, ds.Schema.Domain, ds.Test[:n])
	if err != nil {
		t.Fatal(err)
	}
	fps, fns = CollectErrors(res.Decisions, exps)
	return fps, fns, ds.Schema.Domain
}

func TestCollectErrorsSplitsDirections(t *testing.T) {
	fps, fns, _ := buildCases(t, "wa", 400)
	if len(fps)+len(fns) == 0 {
		t.Fatal("no errors found — matching unexpectedly perfect")
	}
	for _, c := range fps {
		if !c.FalsePositive() || c.Decision.Correct() {
			t.Error("false positive misclassified")
		}
	}
	for _, c := range fns {
		if c.FalsePositive() || c.Decision.Correct() {
			t.Error("false negative misclassified")
		}
	}
}

func TestRenderRoundTrip(t *testing.T) {
	fps, fns, _ := buildCases(t, "wa", 300)
	cases := append(fps, fns...)
	if len(cases) == 0 {
		t.Skip("no errors to render")
	}
	r := Render(cases[0])
	for _, want := range []string{"Gold:", "Predicted:", "Entity 1: '", "Entity 2: '", "Explanation:"} {
		if !strings.Contains(r, want) {
			t.Errorf("rendered case misses %q:\n%s", want, r)
		}
	}
}

func TestDiscoverProducesFiveNamedClasses(t *testing.T) {
	fps, _, domain := buildCases(t, "wa", 500)
	if len(fps) < 3 {
		t.Skip("too few false positives")
	}
	classes, err := Discover(llm.MustNew(llm.GPT4Turbo), domain, fps, true)
	if err != nil {
		t.Fatal(err)
	}
	if len(classes) != 5 {
		t.Fatalf("discovered %d classes, want 5", len(classes))
	}
	seen := map[string]bool{}
	for _, c := range classes {
		if c.Name == "" || c.Description == "" {
			t.Errorf("incomplete class %+v", c)
		}
		if seen[c.Name] {
			t.Errorf("duplicate class %q", c.Name)
		}
		seen[c.Name] = true
	}
}

func TestDiscoverOrdersByIncidence(t *testing.T) {
	fps, _, domain := buildCases(t, "wa", 500)
	if len(fps) < 5 {
		t.Skip("too few false positives")
	}
	classes, err := Discover(llm.MustNew(llm.GPT4Turbo), domain, fps, true)
	if err != nil {
		t.Fatal(err)
	}
	counts := CountByExpert(classes, fps)
	// The classes come ranked by the model's incidence estimate; the
	// expert counts should be loosely decreasing (first class should
	// not be the rarest).
	if counts[0].Errors < counts[len(counts)-1].Errors {
		t.Errorf("first class (%d errors) rarer than last (%d)", counts[0].Errors, counts[len(counts)-1].Errors)
	}
}

func TestAssignAndAccuracy(t *testing.T) {
	fps, _, domain := buildCases(t, "ds", 600)
	if len(fps) < 5 {
		t.Skip("too few false positives")
	}
	turbo := llm.MustNew(llm.GPT4Turbo)
	classes, err := Discover(turbo, domain, fps, true)
	if err != nil {
		t.Fatal(err)
	}
	assigned, err := Assign(turbo, classes, fps[0])
	if err != nil {
		t.Fatal(err)
	}
	for idx := range assigned {
		if idx < 0 || idx >= len(classes) {
			t.Errorf("assignment index %d out of range", idx)
		}
	}
	acc, err := AssignmentAccuracy(turbo, classes, fps)
	if err != nil {
		t.Fatal(err)
	}
	if len(acc) != len(classes) {
		t.Fatalf("accuracy for %d classes, want %d", len(acc), len(classes))
	}
	mean := 0.0
	for _, a := range acc {
		if a < 0 || a > 100 {
			t.Errorf("accuracy %v out of range", a)
		}
		mean += a
	}
	mean /= float64(len(acc))
	// Table 13: mean accuracy of ~73-88% per column.
	if mean < 50 {
		t.Errorf("mean assignment accuracy %.2f too low — model and expert rubric diverge entirely", mean)
	}
}

func TestParseClasses(t *testing.T) {
	reply := "I identify:\n1. Year Discrepancy: years differ.\n2. Venue Variability: venue forms vary.\nnot numbered\n3. NoColon here-no\n"
	classes := parseClasses(reply)
	if len(classes) != 2 {
		t.Fatalf("parsed %d classes (colon-less lines must be skipped): %+v", len(classes), classes)
	}
	if classes[0].Name != "Year Discrepancy" || classes[0].Description != "years differ." {
		t.Errorf("classes[0] = %+v", classes[0])
	}
}

func TestParseAssignment(t *testing.T) {
	got := parseAssignment("Applicable error classes: 2 (confidence 0.90), 4 (confidence 0.71)", 5)
	if !got[1] || !got[3] || len(got) != 2 {
		t.Errorf("parseAssignment = %v", got)
	}
	if len(parseAssignment("None of the error classes apply.", 5)) != 0 {
		t.Error("no-assignment reply should parse empty")
	}
	if len(parseAssignment("Applicable error classes: 9 (confidence 0.5)", 5)) != 0 {
		t.Error("out-of-range class numbers must be dropped")
	}
}

func TestExpertAnnotateDirections(t *testing.T) {
	mkCase := func(gold, pred bool, attr string, imp float64) Case {
		return Case{
			Decision: core.Decision{
				Pair:  entity.Pair{A: entity.Record{}, B: entity.Record{}, Match: gold},
				Match: pred,
			},
			Explanation: explain.Explanation{
				Attributes: []explain.Attribute{{Name: attr, Importance: imp}},
			},
		}
	}
	classes := []Class{{Name: "Year Discrepancy", Description: "years differ"}}
	fn := mkCase(true, false, "year", -0.6) // year pushed toward non-match on a gold match
	if got := ExpertAnnotate(classes, fn); !got[0] {
		t.Error("expert should credit Year Discrepancy for the false negative")
	}
	fnWeak := mkCase(true, false, "year", 0.5) // year supported match; not the cause
	if got := ExpertAnnotate(classes, fnWeak); got[0] {
		t.Error("expert should not credit year when it supported the right direction")
	}
}
