package core

import (
	"strconv"
	"strings"
)

// Strict parsers for the grouped compare/select replies and the
// reason tier's final verdict. They are deliberately stricter than
// ParseBatchAnswers: a grouped reply decides several pairs at once,
// so any ambiguity — a missing candidate, a duplicated index, an
// out-of-range reference, an empty answer — rejects the whole reply
// and the caller degrades to per-pair pairwise prompts instead of
// guessing at a partial mapping.

// ParseCompareAnswers reads a compare reply: one numbered verdict
// line per candidate ("2. Yes", "2) No" or "2: Yes"). It reports ok
// only if every candidate 1..n received exactly one non-empty
// verdict; a duplicated index, an index outside 1..n or a missing
// candidate fails the parse.
func ParseCompareAnswers(answer string, n int) ([]bool, bool) {
	out := make([]bool, n)
	seen := make([]bool, n)
	for _, line := range strings.Split(answer, "\n") {
		trimmed := strings.TrimSpace(line)
		i := strings.IndexAny(trimmed, ".):")
		if i < 0 {
			continue
		}
		idx, err := strconv.Atoi(strings.TrimSpace(trimmed[:i]))
		if err != nil {
			continue
		}
		if idx < 1 || idx > n {
			return nil, false // out-of-range candidate
		}
		rest := strings.TrimSpace(trimmed[i+1:])
		if rest == "" {
			return nil, false // empty verdict
		}
		if seen[idx-1] {
			return nil, false // duplicated index
		}
		seen[idx-1] = true
		out[idx-1] = ParseAnswer(rest)
	}
	for _, s := range seen {
		if !s {
			return nil, false // missing candidate
		}
	}
	return out, true
}

// ParseSelectAnswer reads a select reply: a single "Answer: <k>" or
// "Answer: none" line. It returns the 1-based chosen candidate, or 0
// for "none". ok is false on an empty answer, a candidate outside
// 1..n, or several Answer lines that disagree.
func ParseSelectAnswer(answer string, n int) (int, bool) {
	found, choice := false, 0
	for _, line := range strings.Split(answer, "\n") {
		rest, ok := strings.CutPrefix(strings.TrimSpace(line), "Answer:")
		if !ok {
			continue
		}
		rest = strings.TrimSpace(strings.TrimSuffix(strings.TrimSpace(rest), "."))
		var c int
		switch {
		case rest == "":
			return 0, false // empty answer
		case strings.EqualFold(rest, "none"):
			c = 0
		default:
			idx, err := strconv.Atoi(rest)
			if err != nil {
				return 0, false
			}
			if idx < 1 || idx > n {
				return 0, false // out-of-range candidate
			}
			c = idx
		}
		if found && c != choice {
			return 0, false // conflicting answers
		}
		found, choice = true, c
	}
	if !found {
		return 0, false
	}
	return choice, true
}

// ParseReasonAnswer reads the concluding verdict of a structured
// reasoning reply: the last "Final Answer: Yes/No" line. ok is false
// when no such line exists — the caller then falls back to
// ParseAnswer over the full reply.
func ParseReasonAnswer(answer string) (match, ok bool) {
	for _, line := range strings.Split(answer, "\n") {
		if rest, found := strings.CutPrefix(strings.TrimSpace(line), "Final Answer:"); found {
			match, ok = ParseAnswer(rest), true
		}
	}
	return match, ok
}
