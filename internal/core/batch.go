package core

import (
	"fmt"
	"strconv"
	"strings"
	"sync"
	"time"

	"llm4em/internal/entity"
	"llm4em/internal/llm"
	"llm4em/internal/pipeline"
	"llm4em/internal/prompt"
)

// BatchMatcher packs several pairs into one prompt — the in-context
// batching technique of Fan et al. (paper Section 8) that reduces the
// per-pair token cost at some accuracy expense. Batches are evaluated
// concurrently through internal/pipeline.
type BatchMatcher struct {
	// Client is the language model to query.
	Client llm.Client
	// Domain is the topical domain of the task.
	Domain entity.Domain
	// BatchSize is the number of pairs per request (minimum 1).
	BatchSize int

	// Workers, CacheSize and MaxRetries tune the concurrent pipeline;
	// zero values select the pipeline defaults (negative CacheSize /
	// MaxRetries disable caching / retrying).
	Workers    int
	CacheSize  int
	MaxRetries int

	// mu guards the lazily built engine shared across evaluations (see
	// Matcher). Do not copy a BatchMatcher after calling its methods.
	mu        sync.Mutex
	eng       *pipeline.Engine
	engClient llm.Client
	engOpts   pipeline.Options
}

// engine returns the shared batch-matching engine, rebuilding it when
// the client or knobs change.
func (m *BatchMatcher) engine() *pipeline.Engine {
	opts := pipeline.Options{
		Workers:    m.Workers,
		CacheSize:  m.CacheSize,
		MaxRetries: m.MaxRetries,
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.eng == nil || m.engClient != m.Client || m.engOpts != opts {
		m.eng = pipeline.New(m.Client, opts)
		m.engClient, m.engOpts = m.Client, opts
	}
	return m.eng
}

// Evaluate runs batched matching over the pairs on the concurrent
// pipeline and aggregates the usual metrics.
func (m *BatchMatcher) Evaluate(pairs []entity.Pair) (Result, error) {
	size := m.BatchSize
	if size < 1 {
		size = 1
	}
	var batches [][]entity.Pair
	for start := 0; start < len(pairs); start += size {
		end := start + size
		if end > len(pairs) {
			end = len(pairs)
		}
		batches = append(batches, pairs[start:end])
	}
	prompts := make([]string, len(batches))
	for i, batch := range batches {
		prompts[i] = prompt.BuildBatch(m.Domain, batch)
	}

	completions, err := m.engine().CompleteAll(prompts)
	if err != nil {
		return Result{}, fmt.Errorf("core: batch chat: %w", err)
	}

	var r Result
	for i, batch := range batches {
		resp := completions[i].Response
		decisions := ParseBatchAnswers(resp.Content, len(batch))
		for j, p := range batch {
			r.Confusion.Add(p.Match, decisions[j])
		}
		r.PromptTokens += resp.PromptTokens
		r.CompletionTokens += resp.CompletionTokens
		r.TotalLatency += resp.Latency
		r.Requests++
	}
	return r, nil
}

// MatchBatch sends one batched request and parses the per-pair
// decisions. Missing answers count as non-matches, mirroring the
// paper's conservative answer parsing.
func (m *BatchMatcher) MatchBatch(pairs []entity.Pair) ([]bool, llm.Response, error) {
	p := prompt.BuildBatch(m.Domain, pairs)
	resp, err := m.Client.Chat([]llm.Message{{Role: llm.User, Content: p}})
	if err != nil {
		return nil, llm.Response{}, fmt.Errorf("core: batch chat: %w", err)
	}
	return ParseBatchAnswers(resp.Content, len(pairs)), resp, nil
}

// ParseBatchAnswers reads numbered Yes/No lines ("3. Yes", "3) Yes"
// or "3: Yes") into a decision slice of length n. Absent or
// out-of-range numbers default to false; when a number appears on
// several lines, the last occurrence wins.
func ParseBatchAnswers(answer string, n int) []bool {
	out := make([]bool, n)
	for _, line := range strings.Split(answer, "\n") {
		trimmed := strings.TrimSpace(line)
		num, rest, ok := cutNumbered(trimmed)
		if !ok {
			continue
		}
		idx, err := strconv.Atoi(strings.TrimSpace(num))
		if err != nil || idx < 1 || idx > n {
			continue
		}
		out[idx-1] = ParseAnswer(rest)
	}
	return out
}

// cutNumbered splits a "3. Yes"-style line at the first list
// separator — ".", ")" or ":" — returning the number part and the
// answer part.
func cutNumbered(line string) (num, rest string, ok bool) {
	if i := strings.IndexAny(line, ".):"); i >= 0 {
		return line[:i], line[i+1:], true
	}
	return "", "", false
}

// MeanLatencyPerPair returns the mean simulated latency per matched
// pair (requests are shared across batched pairs).
func MeanLatencyPerPair(r Result, pairs int) time.Duration {
	if pairs == 0 {
		return 0
	}
	return r.TotalLatency / time.Duration(pairs)
}
