package core

import (
	"fmt"
	"strconv"
	"strings"
	"time"

	"llm4em/internal/entity"
	"llm4em/internal/llm"
	"llm4em/internal/prompt"
)

// BatchMatcher packs several pairs into one prompt — the in-context
// batching technique of Fan et al. (paper Section 8) that reduces the
// per-pair token cost at some accuracy expense.
type BatchMatcher struct {
	// Client is the language model to query.
	Client llm.Client
	// Domain is the topical domain of the task.
	Domain entity.Domain
	// BatchSize is the number of pairs per request (minimum 1).
	BatchSize int
}

// Evaluate runs batched matching over the pairs and aggregates the
// usual metrics.
func (m *BatchMatcher) Evaluate(pairs []entity.Pair) (Result, error) {
	size := m.BatchSize
	if size < 1 {
		size = 1
	}
	var r Result
	for start := 0; start < len(pairs); start += size {
		end := start + size
		if end > len(pairs) {
			end = len(pairs)
		}
		batch := pairs[start:end]
		decisions, resp, err := m.MatchBatch(batch)
		if err != nil {
			return Result{}, err
		}
		for i, p := range batch {
			r.Confusion.Add(p.Match, decisions[i])
		}
		r.PromptTokens += resp.PromptTokens
		r.CompletionTokens += resp.CompletionTokens
		r.TotalLatency += resp.Latency
		r.Requests++
	}
	return r, nil
}

// MatchBatch sends one batched request and parses the per-pair
// decisions. Missing answers count as non-matches, mirroring the
// paper's conservative answer parsing.
func (m *BatchMatcher) MatchBatch(pairs []entity.Pair) ([]bool, llm.Response, error) {
	p := prompt.BuildBatch(m.Domain, pairs)
	resp, err := m.Client.Chat([]llm.Message{{Role: llm.User, Content: p}})
	if err != nil {
		return nil, llm.Response{}, fmt.Errorf("core: batch chat: %w", err)
	}
	return ParseBatchAnswers(resp.Content, len(pairs)), resp, nil
}

// ParseBatchAnswers reads numbered Yes/No lines ("3. Yes") into a
// decision slice of length n; absent numbers default to false.
func ParseBatchAnswers(answer string, n int) []bool {
	out := make([]bool, n)
	for _, line := range strings.Split(answer, "\n") {
		trimmed := strings.TrimSpace(line)
		num, rest, ok := strings.Cut(trimmed, ".")
		if !ok {
			continue
		}
		idx, err := strconv.Atoi(strings.TrimSpace(num))
		if err != nil || idx < 1 || idx > n {
			continue
		}
		out[idx-1] = ParseAnswer(rest)
	}
	return out
}

// MeanLatencyPerPair returns the mean simulated latency per matched
// pair (requests are shared across batched pairs).
func MeanLatencyPerPair(r Result, pairs int) time.Duration {
	if pairs == 0 {
		return 0
	}
	return r.TotalLatency / time.Duration(pairs)
}
