package core

import (
	"errors"
	"strings"
	"testing"

	"llm4em/internal/datasets"
	"llm4em/internal/entity"
	"llm4em/internal/llm"
	"llm4em/internal/prompt"
)

func TestParseAnswer(t *testing.T) {
	tests := []struct {
		answer string
		want   bool
	}{
		{"Yes", true},
		{"Yes.", true},
		{"yes, they match", true},
		{"YES!", true},
		{"No", false},
		{"No, they do not match.", false},
		{"Yes, the two product descriptions refer to the same product.", true},
		{"The eyes have it", false}, // "yes" only inside a word
		{"It is not possible to say definitively whether they match.", false},
		{"", false},
		{"maybe", false},
		{"The answer is yes", true},
	}
	for _, tt := range tests {
		if got := ParseAnswer(tt.answer); got != tt.want {
			t.Errorf("ParseAnswer(%q) = %v, want %v", tt.answer, got, tt.want)
		}
	}
}

func testPair(match bool) entity.Pair {
	s := entity.Schema{Domain: entity.Product, Attributes: []string{"title", "price"}}
	if match {
		return entity.Pair{
			ID:    "m",
			A:     s.NewRecord("a", "Sony Cybershot DSC-120B camera black", "348.00"),
			B:     s.NewRecord("b", "sony dsc120b camera black", "350.00"),
			Match: true,
		}
	}
	return entity.Pair{
		ID:    "n",
		A:     s.NewRecord("a", "Sony Cybershot DSC-120B camera black", "348.00"),
		B:     s.NewRecord("b", "Makita LXT impact driver", "129.00"),
		Match: false,
	}
}

func newMatcher(t *testing.T, model, design string) *Matcher {
	t.Helper()
	d, err := prompt.DesignByName(design)
	if err != nil {
		t.Fatal(err)
	}
	return &Matcher{Client: llm.MustNew(model), Design: d, Domain: entity.Product}
}

func TestMatchPair(t *testing.T) {
	m := newMatcher(t, "GPT-4", "general-complex-force")
	d, err := m.MatchPair(testPair(true))
	if err != nil {
		t.Fatal(err)
	}
	if !d.Match || !d.Correct() {
		t.Errorf("GPT-4 should match, got %+v", d.Answer)
	}
	if d.Usage.PromptTokens == 0 || d.Usage.Latency == 0 {
		t.Error("usage accounting missing")
	}
	if !strings.Contains(d.Prompt, "DSC-120B") {
		t.Error("prompt not retained on decision")
	}
}

func TestEvaluateAggregates(t *testing.T) {
	m := newMatcher(t, "GPT-4", "general-complex-force")
	pairs := []entity.Pair{testPair(true), testPair(false)}
	r, err := m.Evaluate(pairs)
	if err != nil {
		t.Fatal(err)
	}
	if r.Requests != 2 || r.Confusion.Total() != 2 {
		t.Errorf("result = %+v", r)
	}
	if r.F1() != 100 {
		t.Errorf("easy pairs should score F1 100, got %.2f", r.F1())
	}
	if r.Decisions != nil {
		t.Error("Evaluate should not keep decisions")
	}
	rk, err := m.EvaluateKeeping(pairs)
	if err != nil {
		t.Fatal(err)
	}
	if len(rk.Decisions) != 2 {
		t.Errorf("EvaluateKeeping kept %d decisions", len(rk.Decisions))
	}
}

func TestResultMeans(t *testing.T) {
	var r Result
	if r.MeanPromptTokens() != 0 || r.MeanCompletionTokens() != 0 || r.MeanLatency() != 0 {
		t.Error("empty result means should be zero")
	}
	m := newMatcher(t, "GPT-mini", "general-complex-free")
	res, err := m.Evaluate([]entity.Pair{testPair(true), testPair(false)})
	if err != nil {
		t.Fatal(err)
	}
	if res.MeanPromptTokens() <= 0 || res.MeanCompletionTokens() <= 0 {
		t.Error("means should be positive")
	}
}

type errClient struct{}

func (errClient) Name() string { return "err" }
func (errClient) Chat([]llm.Message) (llm.Response, error) {
	return llm.Response{}, errors.New("boom")
}

func TestMatchPairPropagatesErrors(t *testing.T) {
	d, _ := prompt.DesignByName("general-complex-force")
	m := &Matcher{Client: errClient{}, Design: d, Domain: entity.Product}
	if _, err := m.MatchPair(testPair(true)); err == nil {
		t.Fatal("client error should propagate")
	}
	if _, err := m.Evaluate([]entity.Pair{testPair(true)}); err == nil {
		t.Fatal("Evaluate should propagate errors")
	}
}

type fixedSelector struct{ demos []entity.Pair }

func (f fixedSelector) Select(entity.Pair, int) []entity.Pair { return f.demos }

func TestMatcherWithDemonstrations(t *testing.T) {
	m := newMatcher(t, "GPT-4", "general-complex-force")
	m.Demos = fixedSelector{demos: []entity.Pair{testPair(true), testPair(false)}}
	m.Shots = 2
	p := m.BuildPrompt(testPair(true))
	if !strings.Contains(p, "Answer: Yes") || !strings.Contains(p, "Answer: No") {
		t.Errorf("demonstrations missing from prompt:\n%s", p)
	}
}

func TestMatcherWithRules(t *testing.T) {
	m := newMatcher(t, "Mixtral", "domain-complex-force")
	m.Rules = []string{"The model numbers must match."}
	p := m.BuildPrompt(testPair(true))
	if !strings.Contains(p, "model numbers must match") {
		t.Errorf("rules missing from prompt:\n%s", p)
	}
}

// TestGPT4BeatsMixtralOnSample is a smoke-level ordering check on a
// real dataset slice: the strongest model must not lose to the
// weakest on the same prompt.
func TestGPT4BeatsMixtralOnSample(t *testing.T) {
	ds := datasets.MustLoad("ab")
	pairs := ds.Test[:200]
	d, _ := prompt.DesignByName("domain-complex-force")
	g4 := &Matcher{Client: llm.MustNew("GPT-4"), Design: d, Domain: ds.Schema.Domain}
	mx := &Matcher{Client: llm.MustNew("Mixtral"), Design: d, Domain: ds.Schema.Domain}
	r4, err := g4.Evaluate(pairs)
	if err != nil {
		t.Fatal(err)
	}
	rx, err := mx.Evaluate(pairs)
	if err != nil {
		t.Fatal(err)
	}
	if r4.F1() <= rx.F1() {
		t.Errorf("GPT-4 (%.2f) should beat Mixtral (%.2f)", r4.F1(), rx.F1())
	}
}
