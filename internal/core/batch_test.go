package core

import (
	"testing"
	"testing/quick"

	"llm4em/internal/datasets"
	"llm4em/internal/entity"
	"llm4em/internal/llm"
)

func TestParseBatchAnswers(t *testing.T) {
	answer := "1. Yes\n2. No\n3. Yes"
	got := ParseBatchAnswers(answer, 3)
	want := []bool{true, false, true}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("answer %d = %v, want %v", i+1, got[i], want[i])
		}
	}
	// Missing and out-of-range numbers default to false.
	partial := ParseBatchAnswers("2. Yes\n9. Yes\nnot a line", 3)
	if partial[0] || !partial[1] || partial[2] {
		t.Errorf("partial = %v", partial)
	}
}

func TestParseBatchAnswersSeparators(t *testing.T) {
	// Models vary the list separator: "3. Yes", "3) Yes", "3: Yes".
	for _, answer := range []string{
		"1. Yes\n2) No\n3: Yes",
		"1) Yes\n2: No\n3. Yes",
		" 1 . Yes\n 2 ) No\n 3 : Yes",
	} {
		got := ParseBatchAnswers(answer, 3)
		want := []bool{true, false, true}
		for i := range want {
			if got[i] != want[i] {
				t.Errorf("%q: answer %d = %v, want %v", answer, i+1, got[i], want[i])
			}
		}
	}
}

func TestParseBatchAnswersOutOfRange(t *testing.T) {
	got := ParseBatchAnswers("0. Yes\n-1. Yes\n4. Yes\n1000000. Yes", 3)
	for i, v := range got {
		if v {
			t.Errorf("out-of-range numbers must not set index %d", i)
		}
	}
}

func TestParseBatchAnswersDuplicateNumbers(t *testing.T) {
	// When a number appears on several lines, the last occurrence
	// wins — a model correcting itself mid-answer.
	got := ParseBatchAnswers("1. Yes\n1. No\n2. No\n2. Yes", 2)
	if got[0] {
		t.Errorf("answer 1 = %v, want false (last occurrence)", got[0])
	}
	if !got[1] {
		t.Errorf("answer 2 = %v, want true (last occurrence)", got[1])
	}
}

func TestParseBatchAnswersEmpty(t *testing.T) {
	for _, answer := range []string{"", "\n\n", "no numbered lines here", ". Yes", ") Yes"} {
		got := ParseBatchAnswers(answer, 4)
		if len(got) != 4 {
			t.Fatalf("%q: length %d, want 4", answer, len(got))
		}
		for i, v := range got {
			if v {
				t.Errorf("%q: index %d = true, want all false", answer, i)
			}
		}
	}
}

func TestBatchMatcherEvaluate(t *testing.T) {
	ds := datasets.MustLoad("wdc")
	pairs := ds.Test[:60]
	m := &BatchMatcher{Client: llm.MustNew(llm.GPT4), Domain: ds.Schema.Domain, BatchSize: 5}
	r, err := m.Evaluate(pairs)
	if err != nil {
		t.Fatal(err)
	}
	if r.Requests != 12 {
		t.Errorf("requests = %d, want 12 (60 pairs / batch 5)", r.Requests)
	}
	if r.Confusion.Total() != 60 {
		t.Errorf("decisions = %d, want 60", r.Confusion.Total())
	}
	if r.F1() < 50 {
		t.Errorf("batched GPT-4 F1 = %.2f, unexpectedly low", r.F1())
	}
}

func TestBatchingReducesTokensPerPair(t *testing.T) {
	ds := datasets.MustLoad("wdc")
	pairs := ds.Test[:40]
	single := &BatchMatcher{Client: llm.MustNew(llm.GPTMini), Domain: ds.Schema.Domain, BatchSize: 1}
	batched := &BatchMatcher{Client: llm.MustNew(llm.GPTMini), Domain: ds.Schema.Domain, BatchSize: 10}
	rs, err := single.Evaluate(pairs)
	if err != nil {
		t.Fatal(err)
	}
	rb, err := batched.Evaluate(pairs)
	if err != nil {
		t.Fatal(err)
	}
	perPairSingle := float64(rs.PromptTokens) / float64(len(pairs))
	perPairBatched := float64(rb.PromptTokens) / float64(len(pairs))
	if perPairBatched >= perPairSingle {
		t.Errorf("batching should reduce prompt tokens per pair: %.1f vs %.1f", perPairBatched, perPairSingle)
	}
}

func TestBatchingDegradesQuality(t *testing.T) {
	ds := datasets.MustLoad("wdc")
	pairs := ds.Test[:300]
	single := &BatchMatcher{Client: llm.MustNew(llm.GPTMini), Domain: ds.Schema.Domain, BatchSize: 1}
	big := &BatchMatcher{Client: llm.MustNew(llm.GPTMini), Domain: ds.Schema.Domain, BatchSize: 20}
	rs, err := single.Evaluate(pairs)
	if err != nil {
		t.Fatal(err)
	}
	rb, err := big.Evaluate(pairs)
	if err != nil {
		t.Fatal(err)
	}
	if rb.F1() >= rs.F1() {
		t.Errorf("batch-20 F1 %.2f should trail batch-1 F1 %.2f", rb.F1(), rs.F1())
	}
}

func TestBatchSizeDefaultsToOne(t *testing.T) {
	ds := datasets.MustLoad("wdc")
	m := &BatchMatcher{Client: llm.MustNew(llm.GPT4), Domain: ds.Schema.Domain}
	r, err := m.Evaluate(ds.Test[:4])
	if err != nil {
		t.Fatal(err)
	}
	if r.Requests != 4 {
		t.Errorf("requests = %d, want 4", r.Requests)
	}
}

func TestMeanLatencyPerPair(t *testing.T) {
	var r Result
	if MeanLatencyPerPair(r, 0) != 0 {
		t.Error("zero pairs should yield zero latency")
	}
	r.TotalLatency = 100
	if MeanLatencyPerPair(r, 10) != 10 {
		t.Error("latency division wrong")
	}
	_ = entity.Pair{}
}

func TestParseBatchAnswersProperty(t *testing.T) {
	// Property: output length always equals n and out-of-range numbers
	// never panic.
	f := func(answer string, n uint8) bool {
		size := int(n%32) + 1
		out := ParseBatchAnswers(answer, size)
		return len(out) == size
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
