package core

import (
	"testing"

	"llm4em/internal/datasets"
	"llm4em/internal/entity"
	"llm4em/internal/llm"
	"llm4em/internal/prompt"
)

func testMatcher(t *testing.T, workers int) (*Matcher, []entity.Pair) {
	t.Helper()
	ds := datasets.MustLoad("wdc")
	design, err := prompt.DesignByName("general-complex-force")
	if err != nil {
		t.Fatal(err)
	}
	m := &Matcher{
		Client:  llm.MustNew(llm.GPT4),
		Design:  design,
		Domain:  ds.Schema.Domain,
		Workers: workers,
	}
	return m, ds.Test[:40]
}

// TestEvaluateConcurrentMatchesSequential pins the determinism
// guarantee of the pipeline rewiring: a concurrent evaluation returns
// exactly the sequential results.
func TestEvaluateConcurrentMatchesSequential(t *testing.T) {
	seq, pairs := testMatcher(t, 1)
	conc, _ := testMatcher(t, 8)
	rs, err := seq.EvaluateKeeping(pairs)
	if err != nil {
		t.Fatal(err)
	}
	rc, err := conc.EvaluateKeeping(pairs)
	if err != nil {
		t.Fatal(err)
	}
	if rs.Confusion != rc.Confusion {
		t.Fatalf("confusion differs: %+v vs %+v", rs.Confusion, rc.Confusion)
	}
	if rs.PromptTokens != rc.PromptTokens || rs.CompletionTokens != rc.CompletionTokens {
		t.Fatalf("token accounting differs: %d/%d vs %d/%d",
			rs.PromptTokens, rs.CompletionTokens, rc.PromptTokens, rc.CompletionTokens)
	}
	for i := range rs.Decisions {
		if rs.Decisions[i].Pair.ID != rc.Decisions[i].Pair.ID {
			t.Fatalf("decision %d: order differs", i)
		}
		if rs.Decisions[i].Answer != rc.Decisions[i].Answer {
			t.Fatalf("decision %d: answers differ", i)
		}
	}
}

func TestMatcherStream(t *testing.T) {
	m, pairs := testMatcher(t, 4)
	ch, wait := m.Stream(pairs)
	seen := map[string]bool{}
	for d := range ch {
		if seen[d.Pair.ID] {
			t.Fatalf("pair %s streamed twice", d.Pair.ID)
		}
		seen[d.Pair.ID] = true
	}
	r, err := wait()
	if err != nil {
		t.Fatal(err)
	}
	if len(seen) != len(pairs) {
		t.Fatalf("streamed %d decisions, want %d", len(seen), len(pairs))
	}
	if r.Requests != len(pairs) {
		t.Fatalf("result counts %d requests, want %d", r.Requests, len(pairs))
	}
	ref, err := m.Evaluate(pairs)
	if err != nil {
		t.Fatal(err)
	}
	if r.Confusion != ref.Confusion {
		t.Fatalf("streamed confusion %+v differs from Evaluate %+v", r.Confusion, ref.Confusion)
	}
}

// TestEvaluateDeduplicatesPrompts checks that duplicate pairs are
// answered from the prompt cache rather than by extra model calls.
func TestEvaluateDeduplicatesPrompts(t *testing.T) {
	m, pairs := testMatcher(t, 8)
	// Evaluate the same 10 pairs four times over.
	dup := make([]entity.Pair, 0, 40)
	for i := 0; i < 4; i++ {
		dup = append(dup, pairs[:10]...)
	}
	r, err := m.EvaluateKeeping(dup)
	if err != nil {
		t.Fatal(err)
	}
	cached := 0
	for _, d := range r.Decisions {
		if d.Cached {
			cached++
		}
	}
	if cached != 30 {
		t.Fatalf("%d cached decisions, want 30 (10 unique of 40)", cached)
	}
	// Accounting still counts every pair, per the paper's tables.
	if r.Requests != 40 {
		t.Fatalf("requests = %d, want 40", r.Requests)
	}
}

// TestEngineReusedAcrossEvaluations pins that one Matcher shares its
// prompt cache across calls: a second evaluation of the same pairs is
// answered entirely from the cache.
func TestEngineReusedAcrossEvaluations(t *testing.T) {
	m, pairs := testMatcher(t, 4)
	if _, err := m.Evaluate(pairs[:10]); err != nil {
		t.Fatal(err)
	}
	r, err := m.EvaluateKeeping(pairs[:10])
	if err != nil {
		t.Fatal(err)
	}
	for _, d := range r.Decisions {
		if !d.Cached {
			t.Fatalf("pair %s missed the cache on the second evaluation", d.Pair.ID)
		}
	}
	// Changing a knob rebuilds the engine (fresh cache).
	m.CacheSize = 64
	r, err = m.EvaluateKeeping(pairs[:10])
	if err != nil {
		t.Fatal(err)
	}
	if r.Decisions[0].Cached {
		t.Fatal("knob change should rebuild the engine with a fresh cache")
	}
}

// TestStreamWaitIdempotentAndAbandonable pins the Stream API
// hardening: wait may be called repeatedly, and abandoning the
// channel early neither deadlocks nor leaks.
func TestStreamWaitIdempotentAndAbandonable(t *testing.T) {
	m, pairs := testMatcher(t, 4)
	ch, wait := m.Stream(pairs)
	// Abandon after one decision; the buffered channel lets the
	// remaining workers finish without a consumer.
	<-ch
	r1, err := wait()
	if err != nil {
		t.Fatal(err)
	}
	r2, err := wait()
	if err != nil {
		t.Fatal(err)
	}
	if r1.Requests != len(pairs) || r2.Requests != r1.Requests {
		t.Fatalf("wait() not idempotent: %d then %d requests", r1.Requests, r2.Requests)
	}
}
