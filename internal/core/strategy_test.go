package core

import (
	"reflect"
	"testing"
)

// TestParseCompareAnswers pins the strict compare parser: clean
// replies in the tolerated numbering styles parse; every ambiguity —
// a missing pair, a duplicated index, an out-of-range candidate, an
// empty verdict — rejects the whole reply so the caller degrades to
// per-pair prompts instead of guessing.
func TestParseCompareAnswers(t *testing.T) {
	cases := []struct {
		name   string
		answer string
		n      int
		want   []bool
		ok     bool
	}{
		{name: "clean", answer: "1. Yes\n2. No\n3. Yes", n: 3, want: []bool{true, false, true}, ok: true},
		{name: "paren and colon styles", answer: "1) No\n2: Yes", n: 2, want: []bool{false, true}, ok: true},
		{name: "prose around the verdicts", answer: "Here are my verdicts:\n1. Yes\n2. No\nI hope this helps.", n: 2, want: []bool{true, false}, ok: true},
		{name: "missing pair", answer: "1. Yes\n3. No", n: 3, ok: false},
		{name: "duplicated index", answer: "1. Yes\n1. No\n2. Yes", n: 2, ok: false},
		{name: "out-of-range candidate", answer: "1. Yes\n2. No\n5. Yes", n: 2, ok: false},
		{name: "zero index", answer: "0. Yes\n1. No", n: 2, ok: false},
		{name: "empty verdict", answer: "1.\n2. No", n: 2, ok: false},
		{name: "no numbered lines", answer: "They all look plausible to me.", n: 2, ok: false},
		{name: "empty reply", answer: "", n: 2, ok: false},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			got, ok := ParseCompareAnswers(tc.answer, tc.n)
			if ok != tc.ok {
				t.Fatalf("ParseCompareAnswers(%q, %d) ok = %v, want %v", tc.answer, tc.n, ok, tc.ok)
			}
			if tc.ok && !reflect.DeepEqual(got, tc.want) {
				t.Fatalf("ParseCompareAnswers(%q, %d) = %v, want %v", tc.answer, tc.n, got, tc.want)
			}
			if !tc.ok && got != nil {
				t.Fatalf("failed parse returned verdicts %v, want nil", got)
			}
		})
	}
}

// TestParseSelectAnswer pins the strict select parser, including the
// empty-"none" ambiguity: "Answer:" with nothing after it fails
// rather than reading as "none".
func TestParseSelectAnswer(t *testing.T) {
	cases := []struct {
		name   string
		answer string
		n      int
		want   int
		ok     bool
	}{
		{name: "pick", answer: "Answer: 2", n: 3, want: 2, ok: true},
		{name: "pick with period", answer: "Answer: 2.", n: 3, want: 2, ok: true},
		{name: "none", answer: "Answer: none", n: 3, want: 0, ok: true},
		{name: "none case-insensitive", answer: "Answer: None", n: 3, want: 0, ok: true},
		{name: "prose around the answer", answer: "After comparing them all:\nAnswer: 1\nThat one shares the model number.", n: 2, want: 1, ok: true},
		{name: "repeated agreeing answers", answer: "Answer: 2\nAnswer: 2", n: 3, want: 2, ok: true},
		{name: "empty none answer", answer: "Answer:", n: 3, ok: false},
		{name: "out-of-range candidate", answer: "Answer: 7", n: 3, ok: false},
		{name: "zero candidate", answer: "Answer: 0", n: 3, ok: false},
		{name: "non-numeric", answer: "Answer: the first one", n: 3, ok: false},
		{name: "conflicting answers", answer: "Answer: 1\nAnswer: 2", n: 3, ok: false},
		{name: "no answer line", answer: "They are all quite similar.", n: 3, ok: false},
		{name: "empty reply", answer: "", n: 3, ok: false},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			got, ok := ParseSelectAnswer(tc.answer, tc.n)
			if ok != tc.ok {
				t.Fatalf("ParseSelectAnswer(%q, %d) ok = %v, want %v", tc.answer, tc.n, ok, tc.ok)
			}
			if tc.ok && got != tc.want {
				t.Fatalf("ParseSelectAnswer(%q, %d) = %d, want %d", tc.answer, tc.n, got, tc.want)
			}
		})
	}
}

// TestParseReasonAnswer pins the reason-verdict parser: the last
// "Final Answer:" line wins, and its absence reports !ok so the
// caller can fall back to the word-level parse.
func TestParseReasonAnswer(t *testing.T) {
	cases := []struct {
		name   string
		answer string
		match  bool
		ok     bool
	}{
		{name: "yes", answer: "Step 1: compared.\nFinal Answer: Yes", match: true, ok: true},
		{name: "no", answer: "Step 1: compared.\nFinal Answer: No", match: false, ok: true},
		{name: "last line wins", answer: "Final Answer: Yes\nOn reflection:\nFinal Answer: No", match: false, ok: true},
		{name: "missing line", answer: "The records seem to agree on most attributes.", ok: false},
		{name: "empty reply", answer: "", ok: false},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			match, ok := ParseReasonAnswer(tc.answer)
			if ok != tc.ok {
				t.Fatalf("ParseReasonAnswer(%q) ok = %v, want %v", tc.answer, ok, tc.ok)
			}
			if tc.ok && match != tc.match {
				t.Fatalf("ParseReasonAnswer(%q) = %v, want %v", tc.answer, match, tc.match)
			}
		})
	}
}
