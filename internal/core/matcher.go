// Package core implements the paper's primary contribution: the
// LLM-based entity matching pipeline. A Matcher serializes a pair of
// entity descriptions, builds a prompt from the configured design
// (optionally with in-context demonstrations and matching rules),
// queries a chat model, and parses the natural-language answer into a
// binary matching decision using the paper's rule (Section 2):
// lower-case the answer and look for the word "yes".
package core

import (
	"fmt"
	"strings"
	"time"

	"llm4em/internal/entity"
	"llm4em/internal/eval"
	"llm4em/internal/llm"
	"llm4em/internal/prompt"
)

// DemoSelector supplies per-query in-context demonstrations
// (Section 4.1). Implementations live in internal/icl.
type DemoSelector interface {
	// Select returns k demonstrations for the query pair, balanced
	// between matches and non-matches.
	Select(query entity.Pair, k int) []entity.Pair
}

// Matcher is the configured matching pipeline.
type Matcher struct {
	// Client is the language model to query.
	Client llm.Client
	// Design is the prompt design to use.
	Design prompt.Design
	// Domain is the topical domain of the task (selects the wording of
	// domain-scoped task descriptions).
	Domain entity.Domain
	// Rules are optional textual matching rules (Section 4.2).
	Rules []string
	// Demos optionally selects in-context demonstrations; Shots is how
	// many to request per query.
	Demos DemoSelector
	Shots int
}

// Decision is the outcome of matching one pair.
type Decision struct {
	// Pair is the evaluated pair.
	Pair entity.Pair
	// Match is the parsed decision.
	Match bool
	// Answer is the model's raw reply.
	Answer string
	// Prompt is the full prompt that was sent.
	Prompt string
	// Usage is the model's token and latency accounting.
	Usage llm.Response
}

// Correct reports whether the decision agrees with the gold label.
func (d Decision) Correct() bool { return d.Match == d.Pair.Match }

// BuildPrompt renders the prompt this matcher would send for a pair.
func (m *Matcher) BuildPrompt(pair entity.Pair) string {
	spec := prompt.Spec{Design: m.Design, Domain: m.Domain, Rules: m.Rules}
	if m.Demos != nil && m.Shots > 0 {
		spec.Demonstrations = m.Demos.Select(pair, m.Shots)
	}
	return spec.Build(pair)
}

// MatchPair runs the pipeline on a single pair.
func (m *Matcher) MatchPair(pair entity.Pair) (Decision, error) {
	p := m.BuildPrompt(pair)
	resp, err := m.Client.Chat([]llm.Message{{Role: llm.User, Content: p}})
	if err != nil {
		return Decision{}, fmt.Errorf("core: chat for pair %s: %w", pair.ID, err)
	}
	return Decision{
		Pair:   pair,
		Match:  ParseAnswer(resp.Content),
		Answer: resp.Content,
		Prompt: p,
		Usage:  resp,
	}, nil
}

// ParseAnswer converts a model reply into a binary matching decision
// using the paper's parsing rule: lower-case the answer and parse for
// the word "yes"; any other reply counts as a non-match.
func ParseAnswer(answer string) bool {
	lower := strings.ToLower(answer)
	// Word-level containment: "yes" must appear as its own token.
	start := 0
	for i := 0; i <= len(lower)-3; i++ {
		if lower[i:i+3] != "yes" {
			continue
		}
		beforeOK := i == start || !isWordByte(lower[i-1])
		afterOK := i+3 == len(lower) || !isWordByte(lower[i+3])
		if beforeOK && afterOK {
			return true
		}
	}
	return false
}

func isWordByte(b byte) bool {
	return b >= 'a' && b <= 'z' || b >= '0' && b <= '9'
}

// Result aggregates the evaluation of a matcher over a pair set.
type Result struct {
	// Confusion tallies the decisions against gold labels.
	Confusion eval.Confusion
	// PromptTokens and CompletionTokens are summed over all requests.
	PromptTokens     int
	CompletionTokens int
	// TotalLatency is the summed simulated request latency.
	TotalLatency time.Duration
	// Requests is the number of pairs evaluated.
	Requests int
	// Decisions holds per-pair outcomes when requested via
	// EvaluateKeeping.
	Decisions []Decision
}

// F1 returns the F1-score of the run in percent.
func (r Result) F1() float64 { return r.Confusion.F1() }

// MeanPromptTokens returns the mean prompt length in tokens.
func (r Result) MeanPromptTokens() float64 {
	if r.Requests == 0 {
		return 0
	}
	return float64(r.PromptTokens) / float64(r.Requests)
}

// MeanCompletionTokens returns the mean completion length in tokens.
func (r Result) MeanCompletionTokens() float64 {
	if r.Requests == 0 {
		return 0
	}
	return float64(r.CompletionTokens) / float64(r.Requests)
}

// MeanLatency returns the mean simulated latency per request.
func (r Result) MeanLatency() time.Duration {
	if r.Requests == 0 {
		return 0
	}
	return r.TotalLatency / time.Duration(r.Requests)
}

// Evaluate runs the matcher over the pairs and aggregates metrics.
func (m *Matcher) Evaluate(pairs []entity.Pair) (Result, error) {
	return m.evaluate(pairs, false)
}

// EvaluateKeeping is Evaluate but additionally retains every per-pair
// decision, which the explanation and error-analysis pipelines need.
func (m *Matcher) EvaluateKeeping(pairs []entity.Pair) (Result, error) {
	return m.evaluate(pairs, true)
}

func (m *Matcher) evaluate(pairs []entity.Pair, keep bool) (Result, error) {
	var r Result
	if keep {
		r.Decisions = make([]Decision, 0, len(pairs))
	}
	for _, p := range pairs {
		d, err := m.MatchPair(p)
		if err != nil {
			return Result{}, err
		}
		r.Confusion.Add(p.Match, d.Match)
		r.PromptTokens += d.Usage.PromptTokens
		r.CompletionTokens += d.Usage.CompletionTokens
		r.TotalLatency += d.Usage.Latency
		r.Requests++
		if keep {
			r.Decisions = append(r.Decisions, d)
		}
	}
	return r, nil
}
